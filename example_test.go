package tecopt_test

import (
	"fmt"
	"math"

	"tecopt"
)

// ExampleGreedyDeploy configures the Alpha study chip's cooling system
// end to end, exactly as the paper's Section VI.A does.
func ExampleGreedyDeploy() {
	_, _, tilePower := tecopt.AlphaChip()
	res, err := tecopt.GreedyDeploy(
		tecopt.Config{TilePower: tilePower},
		tecopt.CelsiusToKelvin(85),
		tecopt.CurrentOptions{},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("success: %v\n", res.Success)
	fmt.Printf("devices: %d\n", len(res.Sites))
	fmt.Printf("peak under limit: %v\n", tecopt.KelvinToCelsius(res.Current.PeakK) <= 85)
	// Output:
	// success: true
	// devices: 7
	// peak under limit: true
}

// ExampleSystem_RunawayLimit computes the thermal-runaway current limit
// lambda_m of Theorem 1 for a deployment.
func ExampleSystem_RunawayLimit() {
	_, _, tilePower := tecopt.AlphaChip()
	sys, err := tecopt.NewSystem(tecopt.Config{TilePower: tilePower}, []int{100, 101})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	lambda, err := sys.RunawayLimit(tecopt.RunawayOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Theorem 1 permits lambda_m = +Inf for unconditionally stable
	// arrays; check finiteness before driving the solver with it.
	if math.IsInf(lambda, 0) {
		fmt.Println("no finite limit")
		return
	}
	fmt.Printf("finite limit: %v\n", lambda > 0 && lambda < 1e6)
	// Currents beyond lambda_m are infeasible: the solve must fail.
	_, err = sys.SolveAt(lambda * 1.1)
	fmt.Printf("beyond limit solvable: %v\n", err == nil)
	// Output:
	// finite limit: true
	// beyond limit solvable: false
}

// ExampleFullCover reproduces the paper's baseline comparison: covering
// every tile is worse than the greedy deployment.
func ExampleFullCover() {
	_, _, tilePower := tecopt.AlphaChip()
	cfg := tecopt.Config{TilePower: tilePower}
	greedy, err := tecopt.GreedyDeploy(cfg, tecopt.CelsiusToKelvin(85), tecopt.CurrentOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fc, _, err := tecopt.FullCover(cfg, tecopt.CurrentOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("full cover worse: %v\n", fc.PeakK > greedy.Current.PeakK)
	// Output:
	// full cover worse: true
}

// ExampleHypotheticalChip generates one of the Section VI.B benchmark
// chips deterministically.
func ExampleHypotheticalChip() {
	chip, err := tecopt.HypotheticalChip("HC01", 1, tecopt.DefaultHCSpec())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("tiles: %d\n", chip.Grid.NumTiles())
	fmt.Printf("hot units: %d\n", len(chip.HotUnits))
	// Output:
	// tiles: 144
	// hot units: 2
}
