package tecopt

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"tecopt/internal/num"
)

func TestAlphaChipFacade(t *testing.T) {
	f, g, p := AlphaChip()
	if f == nil || g == nil || len(p) != 144 {
		t.Fatal("AlphaChip returned incomplete data")
	}
	var total float64
	for _, v := range p {
		total += v
	}
	if math.Abs(total-20.6) > 0.2 {
		t.Fatalf("Alpha total power %.2f W, want ~20.6", total)
	}
	if len(AlphaHotUnits()) == 0 {
		t.Fatal("no hot units listed")
	}
	// Returned slice must be a copy.
	hot := AlphaHotUnits()
	hot[0] = "mutated"
	if AlphaHotUnits()[0] == "mutated" {
		t.Fatal("AlphaHotUnits aliases internal state")
	}
}

func TestEndToEndGreedyFacade(t *testing.T) {
	_, _, p := AlphaChip()
	res, err := GreedyDeploy(Config{TilePower: p}, CelsiusToKelvin(85), CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("Alpha deployment failed: peak %.2f C", KelvinToCelsius(res.Current.PeakK))
	}
	if KelvinToCelsius(res.Current.PeakK) > 85 {
		t.Fatal("success but over limit")
	}
	if res.Current.IOpt < 1 || res.Current.IOpt > 15 {
		t.Fatalf("IOpt %.2f A outside plausible band", res.Current.IOpt)
	}
	// Deployment map renders with '#' markers.
	f, g, _ := AlphaChip()
	m := DeploymentMap(f, g, res.Sites)
	gridPart := m[:strings.Index(m, "legend:")] // the legend also mentions '#'
	if strings.Count(gridPart, "#") != len(res.Sites) {
		t.Fatalf("map shows %d TECs, want %d", strings.Count(gridPart, "#"), len(res.Sites))
	}
}

func TestHypotheticalSuiteFacade(t *testing.T) {
	chips, err := HypotheticalSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(chips) != 10 {
		t.Fatalf("suite size %d", len(chips))
	}
	one, err := HypotheticalChip("X", 42, DefaultHCSpec())
	if err != nil {
		t.Fatal(err)
	}
	if one.Name != "X" || len(one.TilePower) != 144 {
		t.Fatal("HypotheticalChip malformed")
	}
}

func TestTransientFacade(t *testing.T) {
	sys, err := NewSystem(Config{
		Cols: 6, Rows: 6, SpreaderCells: 8, SinkCells: 8,
		TilePower: uniformPower(36, 0.2),
	}, []int{14})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Simulate(sys, []Phase{{Current: 2, Duration: 5}}, TransientOptions{Dt: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) == 0 {
		t.Fatal("no samples")
	}
}

func TestConjectureFacade(t *testing.T) {
	rep := VerifyConjecture1(rand.New(rand.NewSource(1)), ConjectureOptions{Matrices: 5, MaxOrder: 6})
	if rep.Violations != 0 || rep.Matrices == 0 {
		t.Fatalf("unexpected report %+v", rep)
	}
}

func TestReferenceSolveFacade(t *testing.T) {
	res, err := ReferenceSolve(DefaultPackage(), 4, 4, uniformPower(16, 1), ReferenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TileTempsK) != 16 || res.PeakK <= CelsiusToKelvin(45) {
		t.Fatalf("reference result malformed: %+v", res)
	}
}

func TestDeviceAndGeometryDefaults(t *testing.T) {
	if err := ChowdhuryDevice().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultPackage().Validate(); err != nil {
		t.Fatal(err)
	}
	if !num.AlmostEqual(CelsiusToKelvin(KelvinToCelsius(300)), 300, 1e-9) {
		t.Fatal("temperature conversion round trip failed")
	}
}

func uniformPower(n int, w float64) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = w
	}
	return p
}
