// Package tecopt is a library for designing and optimizing on-chip
// active cooling systems built from thin-film thermoelectric coolers
// (TECs), reproducing Long, Ogrenci Memik and Grayson, "Optimization of
// an On-Chip Active Cooling System Based on Thin-Film Thermoelectric
// Coolers" (DATE 2010).
//
// The library models a chip package (silicon die, TIM, heat spreader,
// heat sink, convection) as a compact thermal network, inserts TEC
// devices into the TIM layer, and solves the cooling-system
// configuration problem: which tiles to cover with TECs and what shared
// supply current to drive them with, so that the worst-case peak silicon
// temperature stays below a limit.
//
// # Quick start
//
//	fp, grid, pwr := tecopt.AlphaChip()
//	res, err := tecopt.GreedyDeploy(tecopt.Config{TilePower: pwr},
//		tecopt.CelsiusToKelvin(85), tecopt.CurrentOptions{})
//	if err != nil { ... }
//	fmt.Println(res.Success, res.Sites, res.Current.IOpt)
//	fmt.Print(tecopt.DeploymentMap(fp, grid, res.Sites))
//
// Key concepts:
//
//   - Config describes a chip: package geometry, die tiling, TEC device
//     parameters and the worst-case per-tile power profile.
//   - NewSystem assembles the (G - i*D) theta = p model for a fixed TEC
//     deployment; System exposes steady-state solves, the thermal
//     runaway limit lambda_m, transfer coefficients h_kl(i) and the
//     convex current optimizer.
//   - GreedyDeploy runs the paper's deployment algorithm (Figure 5);
//     FullCover runs the paper's baseline for comparison.
//   - Simulate (package transient, re-exported here) integrates the
//     lumped-capacitance dynamics, including beyond-runaway behaviour.
package tecopt

import (
	"math/rand"

	"tecopt/internal/core"
	"tecopt/internal/dtm"
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/power"
	"tecopt/internal/refsolver"
	"tecopt/internal/tec"
	"tecopt/internal/transient"
)

// Re-exported model types. Aliases keep the internal packages private
// while making every field usable by downstream code.
type (
	// Config describes a chip and its cooling hardware (see core.Config).
	Config = core.Config
	// System is an assembled package+TEC thermal model.
	System = core.System
	// DeployResult is the outcome of GreedyDeploy.
	DeployResult = core.DeployResult
	// DeployIteration traces one greedy pass.
	DeployIteration = core.DeployIteration
	// CurrentResult is an optimized operating point.
	CurrentResult = core.CurrentResult
	// CurrentOptions tunes the supply-current optimization.
	CurrentOptions = core.CurrentOptions
	// RunawayOptions tunes the lambda_m computation.
	RunawayOptions = core.RunawayOptions
	// ConjectureOptions sizes a Conjecture-1 verification campaign.
	ConjectureOptions = core.ConjectureOptions
	// ConjectureReport summarizes a Conjecture-1 campaign.
	ConjectureReport = core.ConjectureReport

	// DeviceParams describes one thin-film TEC device.
	DeviceParams = tec.DeviceParams
	// PackageGeometry describes the layered chip package.
	PackageGeometry = material.PackageGeometry

	// Floorplan is a set of functional units tiling a die.
	Floorplan = floorplan.Floorplan
	// Grid is a die dissection into TEC-sized tiles.
	Grid = floorplan.Grid
	// Unit is a named functional unit.
	Unit = floorplan.Unit
	// Rect is an axis-aligned rectangle in meters.
	Rect = floorplan.Rect

	// HCChip is a generated hypothetical benchmark chip.
	HCChip = power.HCChip
	// HCSpec parameterizes the hypothetical-chip generator.
	HCSpec = power.HCSpec

	// ZonedSystem is a system whose TECs are partitioned into current
	// zones (the multi-pin extension beyond the paper's single pin).
	ZonedSystem = core.ZonedSystem
	// ZonedOptions tunes the multi-pin coordinate descent.
	ZonedOptions = core.ZonedOptions
	// ZonedResult is a multi-pin operating point.
	ZonedResult = core.ZonedResult

	// Phase is one segment of a transient current schedule.
	Phase = transient.Phase
	// TransientOptions configures a transient simulation.
	TransientOptions = transient.Options
	// Trace is a transient simulation result.
	Trace = transient.Trace

	// Controller is a runtime TEC current policy (DTM extension).
	Controller = dtm.Controller
	// PowerPhase is one segment of a time-varying workload.
	PowerPhase = dtm.PowerPhase
	// DTMOptions configures a policy simulation.
	DTMOptions = dtm.RunOptions
	// DTMResult aggregates a policy simulation.
	DTMResult = dtm.RunResult
)

// Runtime TEC current policies for RunDTM.
type (
	// AlwaysOff never powers the TECs.
	AlwaysOff = dtm.AlwaysOff
	// ConstantCurrent drives a fixed current unconditionally.
	ConstantCurrent = dtm.Constant
	// BangBang is a hysteresis on/off controller.
	BangBang = dtm.BangBang
	// Proportional ramps current with the temperature margin.
	Proportional = dtm.Proportional
)

// RunDTM simulates a runtime current policy against a time-varying
// workload on a deployed system (the synergistic DTM vision of the
// paper's introduction, built on the transient extension).
func RunDTM(sys *System, phases []PowerPhase, ctrl Controller, limitK float64, opt DTMOptions) (*DTMResult, error) {
	return dtm.Run(sys, phases, ctrl, limitK, opt)
}

// Current optimization methods.
const (
	CurrentGolden   = core.CurrentGolden
	CurrentGradient = core.CurrentGradient
	CurrentBrent    = core.CurrentBrent
)

// DefaultPackage returns the HotSpot-4.1-style package geometry used in
// the paper's experiments (6 mm x 6 mm die).
func DefaultPackage() PackageGeometry { return material.DefaultPackage() }

// ChowdhuryDevice returns thin-film TEC parameters derived from
// Chowdhury et al., Nature Nanotechnology 2009 (the paper's device).
func ChowdhuryDevice() DeviceParams { return tec.ChowdhuryDevice() }

// CelsiusToKelvin converts Celsius to kelvin.
func CelsiusToKelvin(c float64) float64 { return material.CelsiusToKelvin(c) }

// KelvinToCelsius converts kelvin to Celsius.
func KelvinToCelsius(k float64) float64 { return material.KelvinToCelsius(k) }

// AlphaChip returns the Alpha-21364-like study chip of Section VI.A: its
// floorplan, the canonical 12x12 tiling and the calibrated worst-case
// per-tile power vector (20.6 W total, IntReg at 282.4 W/cm^2).
func AlphaChip() (*Floorplan, *Grid, []float64) {
	f, g := floorplan.Alpha21364Grid()
	return f, g, power.AlphaTilePowers(f, g)
}

// AlphaHotUnits lists the high-power-density units of the Alpha chip.
func AlphaHotUnits() []string {
	out := make([]string, len(floorplan.AlphaHotUnits))
	copy(out, floorplan.AlphaHotUnits)
	return out
}

// DefaultHCSpec returns the hypothetical-chip generator parameters used
// for benchmarks HC01..HC10.
func DefaultHCSpec() HCSpec { return power.DefaultHCSpec() }

// HypotheticalChip generates one benchmark chip deterministically from a
// seed (Section VI.B).
func HypotheticalChip(name string, seed int64, spec HCSpec) (*HCChip, error) {
	return power.GenerateHC(name, seed, spec)
}

// HypotheticalSuite generates the canonical ten benchmark chips
// HC01..HC10.
func HypotheticalSuite() ([]*HCChip, error) {
	return power.GenerateHCSuite(power.DefaultHCSpec())
}

// NewSystem assembles a package+TEC model with the given TEC sites
// (tile indices); pass nil for a passive chip.
func NewSystem(cfg Config, sites []int) (*System, error) {
	return core.NewSystem(cfg, sites)
}

// GreedyDeploy runs the paper's deployment algorithm (Figure 5) against
// the maximum allowable silicon temperature limitK (kelvin).
func GreedyDeploy(cfg Config, limitK float64, opt CurrentOptions) (*DeployResult, error) {
	return core.GreedyDeploy(cfg, limitK, opt)
}

// FullCover runs the paper's baseline — a TEC on every tile with an
// optimized shared current — returning the operating point and system.
func FullCover(cfg Config, opt CurrentOptions) (*CurrentResult, *System, error) {
	return core.FullCover(cfg, opt)
}

// BudgetedOptions tunes BudgetedDeploy.
type BudgetedOptions = core.BudgetedOptions

// BudgetedResult is the outcome of BudgetedDeploy.
type BudgetedResult = core.BudgetedResult

// BudgetedDeploy answers the dual of the paper's Problem 1: with at most
// budget TEC devices, place them to minimize the peak temperature
// (greedy by marginal gain with peak-plateau group moves).
func BudgetedDeploy(cfg Config, budget int, opt BudgetedOptions) (*BudgetedResult, error) {
	return core.BudgetedDeploy(cfg, budget, opt)
}

// NewZonedSystem wraps a system with an explicit device-to-zone map for
// multi-pin current optimization.
func NewZonedSystem(sys *System, zoneOf []int) (*ZonedSystem, error) {
	return core.NewZonedSystem(sys, zoneOf)
}

// ZoneByColumns partitions a system's deployed TECs into k vertical die
// stripes, a simple routable multi-pin assignment.
func ZoneByColumns(sys *System, k int) ([]int, error) {
	return core.ZoneByColumns(sys, k)
}

// Simulate integrates the lumped-capacitance transient dynamics of a
// system through a piecewise-constant current schedule.
func Simulate(sys *System, schedule []Phase, opt TransientOptions) (*Trace, error) {
	return transient.Simulate(sys, schedule, opt)
}

// VerifyConjecture1 runs the randomized Conjecture-1 verification
// campaign of Section V.C.2.
func VerifyConjecture1(rng *rand.Rand, opt ConjectureOptions) ConjectureReport {
	return core.VerifyConjecture1(rng, opt)
}

// DeploymentMap renders an ASCII map of the floorplan with the TEC-
// covered tiles marked '#', in the style of Figure 7(b).
func DeploymentMap(f *Floorplan, g *Grid, sites []int) string {
	marked := make(map[int]bool, len(sites))
	for _, s := range sites {
		marked[s] = true
	}
	return floorplan.AsciiMap(f, g, marked)
}

// ReferenceOptions configures the independent fine-grid reference solver.
type ReferenceOptions = refsolver.Options

// ReferenceResult is the reference solver's output.
type ReferenceResult = refsolver.Result

// ReferenceSolve runs the fine-grid finite-volume reference solver (the
// HotSpot-4.1 stand-in used for model validation).
func ReferenceSolve(geom PackageGeometry, cols, rows int, tilePower []float64, opt ReferenceOptions) (*ReferenceResult, error) {
	return refsolver.Solve(geom, cols, rows, tilePower, opt)
}
