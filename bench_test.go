// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark prints
// its headline numbers through b.ReportMetric so a -bench run doubles as
// an experiment log; EXPERIMENTS.md records paper-vs-measured values.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package tecopt_test

import (
	"math/rand"
	"testing"

	"tecopt"
	"tecopt/internal/bench"
	"tecopt/internal/core"
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/power"
	"tecopt/internal/thermal"
)

// BenchmarkTableI_Alpha regenerates the Alpha row of Table I (paper:
// 91.8 C no-TEC, 16 TECs, 6.10 A, 1.31 W, full-cover 90.2 C, loss 5.2 C).
func BenchmarkTableI_Alpha(b *testing.B) {
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	var row *bench.TableIRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.RunTableIRow("Alpha", p, bench.TableIOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.NoTECPeakC, "noTECpeak_C")
	b.ReportMetric(float64(row.NumTECs), "TECs")
	b.ReportMetric(row.IOptA, "Iopt_A")
	b.ReportMetric(row.PTECW, "Ptec_W")
	b.ReportMetric(row.FullCoverMinPeakC, "fullcover_C")
	b.ReportMetric(row.SwingLossC, "swingloss_C")
}

// BenchmarkTableI_Hypothetical regenerates the HC01..HC10 rows (paper:
// peaks 89.4-95.3 C, 11-18 TECs, two failures at 85 C, avg loss 4.2 C).
func BenchmarkTableI_Hypothetical(b *testing.B) {
	chips, err := power.GenerateHCSuite(power.DefaultHCSpec())
	if err != nil {
		b.Fatal(err)
	}
	var rows []*bench.TableIRow
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, c := range chips {
			row, err := bench.RunTableIRow(c.Name, c.TilePower, bench.TableIOptions{})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row)
		}
	}
	b.ReportMetric(bench.AvgSwingLossC(rows), "avgswingloss_C")
	b.ReportMetric(bench.MaxCoolingSwingC(rows), "maxswing_C")
	b.ReportMetric(float64(len(bench.FailuresAtBase(rows))), "failures_at_85C")
}

// BenchmarkFigure6_RunawaySweep regenerates the h_kl(i) runaway curve
// (paper Figure 6: nonnegative, convex, diverging at lambda_m).
func BenchmarkFigure6_RunawaySweep(b *testing.B) {
	var res *bench.Figure6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunFigure6(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LambdaM, "lambda_m_A")
	b.ReportMetric(res.Hkl[0], "hkl_at_0_KperW")
}

// BenchmarkFigure7_DeploymentMap regenerates the deployment map of
// Figure 7(b) (paper: 16 shaded tiles over the high-density units).
func BenchmarkFigure7_DeploymentMap(b *testing.B) {
	var res *bench.Figure7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunFigure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Sites)), "TECs")
}

// BenchmarkValidation_RefSolver reproduces the Section-VI model
// validation (paper: worst-case difference vs HotSpot 4.1 below 1.5 C).
func BenchmarkValidation_RefSolver(b *testing.B) {
	var res *bench.ValidationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunValidation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WorstDiffC, "worstdiff_C")
	b.ReportMetric(res.FineWorstDiffC, "fine_worstdiff_C")
}

// BenchmarkValidation_PerWorkload repeats the validation for each of the
// ten synthetic SPEC traces (the paper's "set of power traces" wording).
func BenchmarkValidation_PerWorkload(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunWorkloadValidation()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.WorstDiffC > worst {
				worst = r.WorstDiffC
			}
		}
	}
	b.ReportMetric(worst, "worstdiff_C")
}

// BenchmarkValidation_ActiveTEC validates the compact model against the
// reference solver WITH powered TEC devices (extension beyond the
// paper's passive-only HotSpot check).
func BenchmarkValidation_ActiveTEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunActiveValidation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Resolution sweeps the compact model's coarse-layer
// resolution.
func BenchmarkAblation_Resolution(b *testing.B) {
	var rows []bench.ResolutionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunResolutionAblation([]int{10, 20, 30})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].PeakC-rows[0].PeakC, "peak_shift_C")
}

// BenchmarkConjecture1 runs the randomized Conjecture-1 campaign
// (paper: millions of matrices, zero violations).
func BenchmarkConjecture1(b *testing.B) {
	var violations int
	var pairs int
	for i := 0; i < b.N; i++ {
		rep := tecopt.VerifyConjecture1(rand.New(rand.NewSource(int64(i+1))),
			tecopt.ConjectureOptions{Matrices: 200, MaxOrder: 16, PairsPerMatrix: 8})
		violations += rep.Violations
		pairs += rep.PairsChecked
	}
	if violations != 0 {
		b.Fatalf("Conjecture 1 violated %d times", violations)
	}
	b.ReportMetric(float64(pairs)/float64(b.N), "pairs/op")
}

// BenchmarkEndToEnd_Alpha times the full configuration flow the paper
// bounds at "less than 3 minutes".
func BenchmarkEndToEnd_Alpha(b *testing.B) {
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	cfg := tecopt.Config{TilePower: p}
	_ = f
	_ = g
	for i := 0; i < b.N; i++ {
		res, err := tecopt.GreedyDeploy(cfg, tecopt.CelsiusToKelvin(85), tecopt.CurrentOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Success {
			b.Fatal("deployment failed")
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) -----------------

// BenchmarkAblation_Optimizer compares golden-section, Brent and the
// paper's gradient descent for the current setting.
func BenchmarkAblation_Optimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunOptimizerAblation()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("missing methods")
		}
	}
}

// BenchmarkAblation_Solver compares the banded direct solver against
// preconditioned CG for the steady-state solves.
func BenchmarkAblation_Solver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSolverAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ConvexityCheckRanges sweeps the Theorem-4 subrange
// count (runtime/pessimism trade-off).
func BenchmarkAblation_ConvexityCheckRanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunConvexityAblation([]int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		if !rows[len(rows)-1].Certified {
			b.Fatal("finest partition failed to certify")
		}
	}
}

// BenchmarkAblation_LambdaTolerance sweeps the lambda_m binary-search
// tolerance.
func BenchmarkAblation_LambdaTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunLambdaToleranceAblation([]float64{1e-4, 1e-8, 1e-12}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ContactSensitivity sweeps the TEC contact quality —
// the g_h role in runaway the paper highlights (Section IV.B).
func BenchmarkAblation_ContactSensitivity(b *testing.B) {
	var rows []bench.ContactSensitivityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunContactSensitivity([]float64{0.5, 1, 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].LambdaM, "nominal_lambda_m_A")
	b.ReportMetric(rows[1].SwingC, "nominal_swing_C")
}

// BenchmarkAblation_DeploymentStrategy compares the greedy deployment
// against equal-budget heuristics.
func BenchmarkAblation_DeploymentStrategy(b *testing.B) {
	var rows []bench.DeploymentStrategyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunDeploymentStrategies()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].PeakC, "greedy_peak_C")
}

// BenchmarkExtension_MultiPin quantifies the multi-pin extension (beyond
// the paper's single-pin constraint): peak-temperature gain of 2 current
// zones over the shared current on a two-hotspot chip.
func BenchmarkExtension_MultiPin(b *testing.B) {
	p := make([]float64, 144)
	for i := range p {
		p[i] = 0.06
	}
	for _, t := range []int{38, 39, 50, 51} {
		p[t] = 0.65
	}
	for _, t := range []int{92, 93, 104, 105} {
		p[t] = 0.35
	}
	sites := []int{38, 39, 50, 51, 92, 93, 104, 105}
	var gain float64
	for i := 0; i < b.N; i++ {
		sys, err := tecopt.NewSystem(tecopt.Config{TilePower: p}, sites)
		if err != nil {
			b.Fatal(err)
		}
		single, err := sys.OptimizeCurrent(tecopt.CurrentOptions{})
		if err != nil {
			b.Fatal(err)
		}
		zoneOf, err := tecopt.ZoneByColumns(sys, 2)
		if err != nil {
			b.Fatal(err)
		}
		zs, err := tecopt.NewZonedSystem(sys, zoneOf)
		if err != nil {
			b.Fatal(err)
		}
		zoned, err := zs.OptimizeZoned(tecopt.ZonedOptions{})
		if err != nil {
			b.Fatal(err)
		}
		gain = single.PeakK - zoned.PeakK
	}
	b.ReportMetric(gain, "gain_C")
}

// --- Solver micro-benchmarks --------------------------------------------

func alphaSystem(b *testing.B) *core.System {
	b.Helper()
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	sites := []int{100, 101, 102, 103, 112, 113, 114}
	sys, err := core.NewSystem(core.Config{TilePower: p}, sites)
	if err != nil {
		b.Fatal(err)
	}
	_ = f
	_ = g
	return sys
}

// BenchmarkSteadySolve_BandCholesky times one factor+solve of the
// ~1100-node compact model with the RCM+banded direct path.
func BenchmarkSteadySolve_BandCholesky(b *testing.B) {
	sys := alphaSystem(b)
	m := sys.Matrix(6)
	rhs := sys.RHS(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thermal.SolveSteady(m, rhs, thermal.MethodBandCholesky); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadySolve_CG times the same solve with IC(0)-preconditioned
// conjugate gradients.
func BenchmarkSteadySolve_CG(b *testing.B) {
	sys := alphaSystem(b)
	m := sys.Matrix(6)
	rhs := sys.RHS(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thermal.SolveSteady(m, rhs, thermal.MethodCG); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLambdaM times the runaway-limit binary search.
func BenchmarkLambdaM(b *testing.B) {
	sys := alphaSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunawayLimit(core.RunawayOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCurrentOptimization times one convex current setting.
func BenchmarkCurrentOptimization(b *testing.B) {
	sys := alphaSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.OptimizeCurrent(core.CurrentOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudy_Conditioning sweeps kappa_2(G - i*D) toward lambda_m —
// the numerical face of Theorem 2's divergence.
func BenchmarkStudy_Conditioning(b *testing.B) {
	sys := alphaSystem(b)
	var conds []float64
	for i := 0; i < b.N; i++ {
		var err error
		_, conds, err = sys.ConditionSweep([]float64{0, 0.9, 0.999})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(conds[0], "cond_at_0")
	b.ReportMetric(conds[len(conds)-1], "cond_at_0.999lambda")
}

// BenchmarkReferenceSolve times the fine-grid reference solver used in
// the validation experiment.
func BenchmarkReferenceSolve(b *testing.B) {
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	geom := material.DefaultPackage()
	_ = f
	_ = g
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tecopt.ReferenceSolve(geom, 12, 12, p, tecopt.ReferenceOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
