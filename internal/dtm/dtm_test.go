package dtm

import (
	"math"
	"testing"

	"tecopt/internal/core"
	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/tec"
)

// smallSystem is a fast 6x6 deployed system with a central hotspot.
func smallSystem(t *testing.T) (*core.System, []float64, []float64) {
	t.Helper()
	busy := make([]float64, 36)
	idle := make([]float64, 36)
	for i := range busy {
		busy[i] = 0.12
		idle[i] = 0.03
	}
	busy[14] = 1.1
	busy[15] = 0.8
	idle[14] = 0.1
	sys, err := core.NewSystem(core.Config{
		Cols: 6, Rows: 6, SpreaderCells: 8, SinkCells: 8,
		Device: tec.ChowdhuryDevice(), TilePower: busy,
	}, []int{14, 15})
	if err != nil {
		t.Fatal(err)
	}
	return sys, busy, idle
}

func TestControllersBasics(t *testing.T) {
	if !num.IsZero((AlwaysOff{}).Next(0, 400)) {
		t.Error("AlwaysOff returned current")
	}
	if !num.ExactEqual((Constant{CurrentA: 5}).Next(0, 0), 5) {
		t.Error("Constant wrong")
	}
	p := Proportional{SetpointK: 350, Gain: 2, MaxA: 6}
	if !num.IsZero(p.Next(0, 349)) {
		t.Error("Proportional below setpoint must be 0")
	}
	if got := p.Next(0, 351); math.Abs(got-2) > 1e-12 {
		t.Errorf("Proportional = %v, want 2", got)
	}
	if !num.ExactEqual(p.Next(0, 1000), 6) {
		t.Error("Proportional not clamped")
	}
	bb := &BangBang{OnAboveK: 360, OffBelowK: 355, CurrentA: 4}
	if !num.IsZero(bb.Next(0, 350)) {
		t.Error("BangBang on too early")
	}
	if !num.ExactEqual(bb.Next(0, 361), 4) {
		t.Error("BangBang failed to switch on")
	}
	// Hysteresis: stays on between the thresholds.
	if !num.ExactEqual(bb.Next(0, 357), 4) {
		t.Error("BangBang dropped out inside hysteresis band")
	}
	if !num.IsZero(bb.Next(0, 354)) {
		t.Error("BangBang failed to switch off")
	}
	for _, c := range []Controller{AlwaysOff{}, Constant{CurrentA: 1}, &BangBang{}, Proportional{}} {
		if c.Name() == "" {
			t.Error("controller without name")
		}
	}
}

func TestRunValidation(t *testing.T) {
	sys, busy, _ := smallSystem(t)
	if _, err := Run(sys, nil, AlwaysOff{}, 400, RunOptions{}); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := Run(sys, []PowerPhase{{Duration: -1, TilePower: busy}}, AlwaysOff{}, 400, RunOptions{}); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := Run(sys, []PowerPhase{{Duration: 1, TilePower: []float64{1}}}, AlwaysOff{}, 400, RunOptions{}); err == nil {
		t.Error("wrong power length accepted")
	}
	if _, err := Run(sys, []PowerPhase{{Duration: 1, TilePower: busy}}, AlwaysOff{}, 400, RunOptions{Theta0: []float64{1}}); err == nil {
		t.Error("wrong theta0 length accepted")
	}
}

func TestConstantCoolsBelowAlwaysOff(t *testing.T) {
	sys, busy, _ := smallSystem(t)
	phases := []PowerPhase{{Duration: 120, TilePower: busy}}
	limit := material.CelsiusToKelvin(85)
	opt := RunOptions{Dt: 0.05, ControlEvery: 10}

	off, err := Run(sys, phases, AlwaysOff{}, limit, opt)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(sys, phases, Constant{CurrentA: 4}, limit, opt)
	if err != nil {
		t.Fatal(err)
	}
	if on.MaxPeakK >= off.MaxPeakK {
		t.Fatalf("constant current did not cool: %.2f vs %.2f K", on.MaxPeakK, off.MaxPeakK)
	}
	if !num.IsZero(off.TECEnergyJ) {
		t.Fatalf("always-off consumed %.3f J", off.TECEnergyJ)
	}
	if on.TECEnergyJ <= 0 {
		t.Fatal("constant policy consumed no energy")
	}
}

func TestBangBangSavesEnergy(t *testing.T) {
	// Alternating busy/idle workload: the bang-bang policy should cut
	// TEC energy versus always-on while keeping the peak comparable.
	sys, busy, idle := smallSystem(t)
	phases := []PowerPhase{
		{Duration: 60, TilePower: busy},
		{Duration: 60, TilePower: idle},
		{Duration: 60, TilePower: busy},
		{Duration: 60, TilePower: idle},
	}
	// Pick thresholds around the steady busy peak with TEC on.
	limit := material.CelsiusToKelvin(85)
	opt := RunOptions{Dt: 0.05, ControlEvery: 5}

	always, err := Run(sys, phases, Constant{CurrentA: 4}, limit, opt)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Run(sys, phases, &BangBang{
		OnAboveK:  material.CelsiusToKelvin(70),
		OffBelowK: material.CelsiusToKelvin(65),
		CurrentA:  4,
	}, limit, opt)
	if err != nil {
		t.Fatal(err)
	}
	if bb.TECEnergyJ >= always.TECEnergyJ {
		t.Fatalf("bang-bang energy %.2f J >= always-on %.2f J", bb.TECEnergyJ, always.TECEnergyJ)
	}
	// During idle the controller must actually switch off at some point.
	sawOff := false
	for _, s := range bb.Samples {
		if num.IsZero(s.CurrentA) && s.TimeS > 60 {
			sawOff = true
			break
		}
	}
	if !sawOff {
		t.Fatal("bang-bang never switched off during idle")
	}
}

func TestProportionalTracksSetpoint(t *testing.T) {
	sys, busy, _ := smallSystem(t)
	limit := material.CelsiusToKelvin(85)
	// Run to near-steady state under proportional control.
	setpoint := material.CelsiusToKelvin(60)
	res, err := Run(sys, []PowerPhase{{Duration: 400, TilePower: busy}},
		Proportional{SetpointK: setpoint, Gain: 1.5, MaxA: 8},
		limit, RunOptions{Dt: 0.1, ControlEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Samples[len(res.Samples)-1]
	// The controller holds the peak above the setpoint (it cannot
	// overcool: i -> 0 below setpoint) but close to it given enough gain.
	if last.PeakK < setpoint-0.5 {
		t.Fatalf("peak %.2f K below setpoint %.2f K", last.PeakK, setpoint)
	}
	if last.PeakK > setpoint+8 {
		t.Fatalf("proportional control ineffective: peak %.2f K vs setpoint %.2f K", last.PeakK, setpoint)
	}
	if last.CurrentA <= 0 {
		t.Fatal("controller idle at steady state above setpoint")
	}
}

func TestTimeAboveLimitAccounting(t *testing.T) {
	sys, busy, _ := smallSystem(t)
	// Impossible limit: every step counts.
	res, err := Run(sys, []PowerPhase{{Duration: 10, TilePower: busy}}, AlwaysOff{},
		material.CelsiusToKelvin(-100), RunOptions{Dt: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TimeAboveLimitS-10) > 0.2 {
		t.Fatalf("TimeAboveLimit = %.2f s, want ~10", res.TimeAboveLimitS)
	}
	// Unreachable limit: zero.
	res, err = Run(sys, []PowerPhase{{Duration: 10, TilePower: busy}}, AlwaysOff{},
		material.CelsiusToKelvin(1000), RunOptions{Dt: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !num.IsZero(res.TimeAboveLimitS) {
		t.Fatalf("TimeAboveLimit = %v, want 0", res.TimeAboveLimitS)
	}
}
