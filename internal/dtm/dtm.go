// Package dtm implements dynamic thermal management policies on top of
// the transient package: runtime controllers that observe the peak
// silicon temperature and set the TEC supply current while the workload
// (per-tile power) varies over time.
//
// The paper's introduction motivates exactly this: "the active cooling
// system, the thermal monitoring system, and the architecture-level
// thermal management mechanisms can operate synergistically to achieve
// enhanced performance under a safe operating temperature." The paper
// itself only solves the static worst-case design problem; this package
// is the forward-looking extension — given the statically chosen
// deployment, compare runtime current policies (always-off, constant
// worst-case, hysteresis bang-bang, proportional) on energy and
// thermal-violation metrics.
package dtm

import (
	"context"
	"fmt"
	"math"

	"tecopt/internal/core"
	"tecopt/internal/num"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
	"tecopt/internal/thermal"
	"tecopt/internal/transient"
)

// Controller decides the TEC supply current from the observed peak
// silicon temperature. Implementations may keep state (hysteresis).
type Controller interface {
	// Next returns the supply current (A) for the next control period,
	// given the current time (s) and observed peak temperature (K).
	Next(timeS, peakK float64) float64
	// Name labels the policy in reports.
	Name() string
}

// AlwaysOff never powers the TECs (the passive baseline).
type AlwaysOff struct{}

// Next returns 0.
func (AlwaysOff) Next(_, _ float64) float64 { return 0 }

// Name returns the policy label.
func (AlwaysOff) Name() string { return "always-off" }

// Constant drives the worst-case optimal current at all times (the
// paper's static configuration running unconditionally).
type Constant struct{ CurrentA float64 }

// Next returns the constant current.
func (c Constant) Next(_, _ float64) float64 { return c.CurrentA }

// Name returns the policy label.
func (c Constant) Name() string { return fmt.Sprintf("constant-%.2fA", c.CurrentA) }

// BangBang switches the TECs fully on above OnAboveK and off below
// OffBelowK (OnAboveK > OffBelowK gives hysteresis).
type BangBang struct {
	OnAboveK  float64
	OffBelowK float64
	CurrentA  float64
	on        bool
}

// Next applies the hysteresis rule.
func (b *BangBang) Next(_, peakK float64) float64 {
	switch {
	case peakK >= b.OnAboveK:
		b.on = true
	case peakK <= b.OffBelowK:
		b.on = false
	}
	if b.on {
		return b.CurrentA
	}
	return 0
}

// Name returns the policy label.
func (b *BangBang) Name() string { return "bang-bang" }

// Proportional ramps the current linearly with the margin violation:
// i = Gain * (peak - SetpointK), clamped to [0, MaxA].
type Proportional struct {
	SetpointK float64
	Gain      float64 // A per kelvin
	MaxA      float64
}

// Next applies the proportional law.
func (p Proportional) Next(_, peakK float64) float64 {
	i := p.Gain * (peakK - p.SetpointK)
	if i < 0 {
		return 0
	}
	if i > p.MaxA {
		return p.MaxA
	}
	return i
}

// Name returns the policy label.
func (p Proportional) Name() string { return "proportional" }

// PowerPhase is one segment of a time-varying workload.
type PowerPhase struct {
	// Duration in seconds.
	Duration float64
	// TilePower is the per-tile power during the phase (W).
	TilePower []float64
}

// RunOptions configures a policy simulation.
type RunOptions struct {
	// Dt is the integration step (default 0.01 s).
	Dt float64
	// ControlEvery is the controller period in steps (default 10).
	ControlEvery int
	// CurrentQuantumA rounds commanded currents so factorizations can be
	// cached (default 0.05 A).
	CurrentQuantumA float64
	// Theta0 is the initial field (ambient when nil).
	Theta0 []float64
	// SampleEvery records every n-th step (default = ControlEvery).
	SampleEvery int
	// Ctx, when non-nil, cancels the simulation between steps. A
	// cancelled Run returns the partial result accumulated so far
	// alongside a tecerr.CodeCancelled error.
	Ctx context.Context
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Dt <= 0 {
		o.Dt = 0.01
	}
	if o.ControlEvery <= 0 {
		o.ControlEvery = 10
	}
	if o.CurrentQuantumA <= 0 {
		o.CurrentQuantumA = 0.05
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = o.ControlEvery
	}
	return o
}

// Sample is one recorded point of a policy run.
type Sample struct {
	TimeS    float64
	PeakK    float64
	CurrentA float64
}

// RunResult aggregates a policy simulation.
type RunResult struct {
	Policy string
	// MaxPeakK is the highest peak temperature seen.
	MaxPeakK float64
	// TimeAboveLimitS accumulates time with peak > limit.
	TimeAboveLimitS float64
	// TECEnergyJ integrates the electrical input power.
	TECEnergyJ float64
	// Samples traces the run.
	Samples []Sample
}

// Run simulates the controller against the workload phases on the given
// deployed system, using backward Euler with a factorization cache over
// the quantized currents.
func Run(sys *core.System, phases []PowerPhase, ctrl Controller, limitK float64, opt RunOptions) (*RunResult, error) {
	opt = opt.withDefaults()
	if len(phases) == 0 {
		return nil, tecerr.New(tecerr.CodeInvalidInput, "dtm.run", "dtm: no workload phases")
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	r := obs.Enabled()
	if r != nil {
		var sp obs.Span
		ctx, sp = r.StartSpanCtx(ctx, "dtm.run")
		sp.Annotate("policy", ctrl.Name())
		defer sp.End()
		r.Counter("dtm.runs").Inc()
	}
	n := sys.NumNodes()
	caps := transient.Capacitances(sys.PN)
	cOverDt := make([]float64, n)
	for i, c := range caps {
		cOverDt[i] = c / opt.Dt
	}

	theta := make([]float64, n)
	if opt.Theta0 != nil {
		if len(opt.Theta0) != n {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "dtm.run",
				"dtm: theta0 length %d, want %d", len(opt.Theta0), n)
		}
		copy(theta, opt.Theta0)
	} else {
		for i := range theta {
			theta[i] = sys.Cfg.Geom.AmbientK
		}
	}

	factCache := map[int64]*thermal.Factorization{}
	factorFor := func(i float64) (*thermal.Factorization, error) {
		key := int64(math.Round(i / opt.CurrentQuantumA))
		if f, ok := factCache[key]; ok {
			return f, nil
		}
		m := sys.Matrix(float64(key)*opt.CurrentQuantumA).AddScaledDiag(1, cOverDt)
		f, err := thermal.Factor(m, nil)
		if err != nil {
			return nil, fmt.Errorf("dtm: implicit matrix not factorable at i=%g: %w", i, err)
		}
		factCache[key] = f
		return f, nil
	}
	quantize := func(i float64) float64 {
		if i < 0 {
			i = 0
		}
		return math.Round(i/opt.CurrentQuantumA) * opt.CurrentQuantumA
	}

	res := &RunResult{Policy: ctrl.Name()}
	now := 0.0
	step := 0
	peak, _ := sys.PN.PeakSilicon(theta)
	current := quantize(ctrl.Next(now, peak))
	res.Samples = append(res.Samples, Sample{TimeS: now, PeakK: peak, CurrentA: current})
	res.MaxPeakK = peak

	rhs := make([]float64, n)
	for _, ph := range phases {
		if ph.Duration <= 0 {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "dtm.run",
				"dtm: nonpositive phase duration %g", ph.Duration)
		}
		base, err := sys.PN.PowerVector(ph.TilePower)
		if err != nil {
			return nil, err
		}
		amb := sys.PN.Net.BaseRHS()
		for i := range base {
			base[i] += amb[i]
		}
		steps := int(math.Ceil(ph.Duration / opt.Dt))
		for s := 0; s < steps; s++ {
			if step&63 == 0 {
				if err := ctx.Err(); err != nil {
					return res, tecerr.Cancelled("dtm.run", err)
				}
			}
			stepStart := r.Now()
			fact, err := factorFor(current)
			if err != nil {
				return nil, err
			}
			copy(rhs, base)
			sys.Array.JoulePower(rhs, current)
			for i := range rhs {
				rhs[i] += cOverDt[i] * theta[i]
			}
			if theta, err = fact.Solve(rhs); err != nil {
				return nil, err
			}
			if r != nil {
				r.Counter("dtm.steps").Inc()
				r.ObserveSince("dtm.step_ns", stepStart)
			}
			now += opt.Dt
			step++

			peak, _ = sys.PN.PeakSilicon(theta)
			if peak > res.MaxPeakK {
				res.MaxPeakK = peak
			}
			if peak > limitK {
				res.TimeAboveLimitS += opt.Dt
			}
			res.TECEnergyJ += sys.TECPower(theta, current) * opt.Dt

			if step%opt.ControlEvery == 0 {
				next := quantize(ctrl.Next(now, peak))
				if r != nil {
					r.Counter("dtm.control_decisions").Inc()
					if !num.ExactEqual(next, current) {
						r.Counter("dtm.current_changes").Inc()
						r.EventCtx(ctx, "dtm.current", next)
					}
					r.FloatGauge("dtm.last_current_a").Set(next)
				}
				current = next
			}
			if step%opt.SampleEvery == 0 {
				res.Samples = append(res.Samples, Sample{TimeS: now, PeakK: peak, CurrentA: current})
			}
		}
	}
	return res, nil
}
