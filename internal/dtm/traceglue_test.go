package dtm

import (
	"math"
	"testing"

	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/power"
)

func TestPhasesFromTrace(t *testing.T) {
	f, g := floorplan.Alpha21364Grid()
	tr := power.SynthesizeTrace(power.NewAlphaModel(), f, power.SyntheticSPECWorkloads())
	phases, err := PhasesFromTrace(tr, f, g, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != len(tr.Samples) {
		t.Fatalf("phases = %d, want %d", len(phases), len(tr.Samples))
	}
	for i, ph := range phases {
		if !num.ExactEqual(ph.Duration, 30) {
			t.Fatalf("phase %d duration %v", i, ph.Duration)
		}
		var tileSum, rowSum float64
		for _, p := range ph.TilePower {
			tileSum += p
		}
		for _, v := range tr.Samples[i] {
			rowSum += v
		}
		if math.Abs(tileSum-rowSum) > 1e-9*(1+rowSum) {
			t.Fatalf("phase %d power not conserved: tiles %.4f vs trace %.4f", i, tileSum, rowSum)
		}
	}
}

func TestPhasesFromTraceErrors(t *testing.T) {
	f, g := floorplan.Alpha21364Grid()
	tr := &power.Trace{Units: []string{"nosuch"}, Samples: [][]float64{{1}}}
	if _, err := PhasesFromTrace(tr, f, g, 1); err == nil {
		t.Error("unknown unit accepted")
	}
	tr2 := &power.Trace{Units: []string{"L2"}, Samples: [][]float64{{1, 2}}}
	if _, err := PhasesFromTrace(tr2, f, g, 1); err == nil {
		t.Error("ragged sample accepted")
	}
	tr3 := &power.Trace{Units: []string{"L2"}, Samples: [][]float64{{1}}}
	if _, err := PhasesFromTrace(tr3, f, g, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestTraceReplayEndToEnd(t *testing.T) {
	// Full loop: synthesize a trace, replay it under a controller on a
	// small system (downscaled trace so the small chip is sensible).
	sys, _, _ := smallSystem(t)
	tr := &power.Trace{
		Units:   []string{"whole"},
		Samples: [][]float64{{5}, {1.5}, {5}},
	}
	f := floorplan.New("small", 3e-3, 3e-3)
	if err := f.AddUnit(floorplan.Unit{Name: "whole", Rect: floorplan.Rect{X: 0, Y: 0, W: 3e-3, H: 3e-3}}); err != nil {
		t.Fatal(err)
	}
	g, err := f.Tile(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	phases, err := PhasesFromTrace(tr, f, g, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, phases, Constant{CurrentA: 2}, material.CelsiusToKelvin(85), RunOptions{Dt: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPeakK <= sys.Cfg.Geom.AmbientK {
		t.Fatal("replay produced no heating")
	}
}
