package dtm

import (
	"tecopt/internal/floorplan"
	"tecopt/internal/power"
	"tecopt/internal/tecerr"
)

// PhasesFromTrace converts a per-unit power trace into a time-varying
// workload: each trace sample becomes one phase of equal duration, its
// unit powers spread over the floorplan's tiles. This closes the loop
// between the paper's M5+Wattch-style traces and the DTM policy
// simulation: record a trace, replay it against a controller.
func PhasesFromTrace(tr *power.Trace, f *floorplan.Floorplan, g *floorplan.Grid, samplePeriodS float64) ([]PowerPhase, error) {
	if samplePeriodS <= 0 {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "dtm.trace", "dtm: nonpositive sample period %g", samplePeriodS)
	}
	for _, u := range tr.Units {
		if _, ok := f.Unit(u); !ok {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "dtm.trace",
				"dtm: trace unit %q not in floorplan %s", u, f.Name)
		}
	}
	phases := make([]PowerPhase, 0, len(tr.Samples))
	for s, row := range tr.Samples {
		if len(row) != len(tr.Units) {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "dtm.trace",
				"dtm: trace sample %d has %d values, want %d", s, len(row), len(tr.Units))
		}
		unitPower := make(map[string]float64, len(tr.Units))
		for u, v := range row {
			unitPower[tr.Units[u]] = v
		}
		phases = append(phases, PowerPhase{
			Duration:  samplePeriodS,
			TilePower: g.PowerPerTile(f, unitPower),
		})
	}
	return phases, nil
}
