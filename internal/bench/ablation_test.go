package bench

import (
	"math"
	"strings"
	"testing"
)

// skipIfRace skips the full-pipeline report tests under the race
// detector. The whole package is single-goroutine, so -race adds no
// coverage here, only a ~20x slowdown that pushes the full-size table
// generation past the package test timeout.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("full-size report generation is too slow under -race; run without -race for coverage")
	}
}

func TestRunOptimizerAblation(t *testing.T) {
	skipIfRace(t)
	rows, err := RunOptimizerAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All methods must find (near) the same minimum peak.
	base := rows[0].PeakC
	for _, r := range rows[1:] {
		if math.Abs(r.PeakC-base) > 0.05 {
			t.Errorf("%s peak %.3f C deviates from %s %.3f C", r.Method, r.PeakC, rows[0].Method, base)
		}
	}
	for _, r := range rows {
		if r.Evaluations <= 0 {
			t.Errorf("%s: no evaluations recorded", r.Method)
		}
	}
}

func TestRunSolverAblation(t *testing.T) {
	skipIfRace(t)
	rows, err := RunSolverAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The two backends must agree tightly.
	if rows[1].MaxDiffC > 1e-4 {
		t.Errorf("solver disagreement %.2e C", rows[1].MaxDiffC)
	}
	if math.Abs(rows[0].PeakC-rows[1].PeakC) > 1e-4 {
		t.Errorf("peaks differ: %.6f vs %.6f", rows[0].PeakC, rows[1].PeakC)
	}
}

func TestRunConvexityAblation(t *testing.T) {
	skipIfRace(t)
	rows, err := RunConvexityAblation([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// The paper notes the single-range check "would be quite pessimistic
	// since eta'(0) is a very loose lower bound" — so ranges=1 may fail
	// to certify (we log it), while a modest partition must certify.
	for _, r := range rows {
		t.Logf("ranges=%d certified=%v (%v)", r.Ranges, r.Certified, r.Runtime)
		if r.Ranges >= 4 && !r.Certified {
			t.Errorf("ranges=%d: physical system not certified", r.Ranges)
		}
	}
}

func TestRunLambdaToleranceAblation(t *testing.T) {
	skipIfRace(t)
	rows, err := RunLambdaToleranceAblation([]float64{1e-3, 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tightening the tolerance must not move lambda_m by more than the
	// loose tolerance itself.
	rel := math.Abs(rows[0].LambdaM-rows[1].LambdaM) / rows[1].LambdaM
	if rel > 2e-3 {
		t.Errorf("lambda_m moved %.2e with tolerance", rel)
	}
}

func TestFormatAblations(t *testing.T) {
	skipIfRace(t)
	opt, err := RunOptimizerAblation()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := RunSolverAblation()
	if err != nil {
		t.Fatal(err)
	}
	cvx, err := RunConvexityAblation([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	lam, err := RunLambdaToleranceAblation([]float64{1e-6})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatAblations(opt, sol, cvx, lam)
	for _, want := range []string{"optimizer", "solver", "subrange", "tolerance"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q section", want)
		}
	}
}
