package bench

import (
	"math"
	"strings"
	"testing"
)

func TestRunWorkloadValidationAllWithinBound(t *testing.T) {
	skipIfRace(t)
	rows, err := RunWorkloadValidation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 workloads", len(rows))
	}
	for _, r := range rows {
		// The paper's validation bound, per power trace.
		if r.WorstDiffC > 1.5 {
			t.Errorf("%s: worst diff %.3f C exceeds 1.5 C", r.Workload, r.WorstDiffC)
		}
		// Per-workload peaks must sit below the worst-case envelope peak.
		if r.PeakC > 92.5 {
			t.Errorf("%s: peak %.2f C above the envelope peak", r.Workload, r.PeakC)
		}
		if r.PeakC < 50 {
			t.Errorf("%s: peak %.2f C implausibly cold", r.Workload, r.PeakC)
		}
	}
}

func TestRunResolutionAblationConverges(t *testing.T) {
	skipIfRace(t)
	rows, err := RunResolutionAblation([]int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Node counts must grow, and the peak must converge: the 20->30 step
	// changes less than the 10->20 step.
	for i := 1; i < len(rows); i++ {
		if rows[i].Nodes <= rows[i-1].Nodes {
			t.Errorf("nodes not increasing: %+v", rows)
		}
	}
	d1 := math.Abs(rows[1].PeakC - rows[0].PeakC)
	d2 := math.Abs(rows[2].PeakC - rows[1].PeakC)
	if d2 > d1+1e-9 {
		t.Errorf("no convergence: steps %.4f then %.4f C", d1, d2)
	}
	// All resolutions agree within a degree (the coarse layers matter
	// little for silicon peaks).
	if math.Abs(rows[2].PeakC-rows[0].PeakC) > 1.0 {
		t.Errorf("resolution sensitivity too large: %+v", rows)
	}
}

func TestFormatValidationStudies(t *testing.T) {
	skipIfRace(t)
	rows, err := RunWorkloadValidation()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunResolutionAblation([]int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatValidationStudies(rows, res)
	if !strings.Contains(out, "workload") || !strings.Contains(out, "resolution") {
		t.Fatalf("report incomplete:\n%s", out)
	}
}
