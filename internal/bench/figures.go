package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"tecopt/internal/core"
	"tecopt/internal/engine"
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/power"
	"tecopt/internal/refsolver"
	"tecopt/internal/thermal"
)

// Figure 6: h_kl(i) as a function of the supply current — nonnegative,
// convex, diverging at lambda_m.

// Figure6Result carries the sampled runaway curve.
type Figure6Result struct {
	// LambdaM is the runaway limit of the system.
	LambdaM float64
	// Currents are the sampled supply currents (A).
	Currents []float64
	// Hkl are the transfer coefficients h_kl(i) (K/W); the last samples
	// approach the divergence.
	Hkl []float64
	// PeakC is the peak silicon temperature at each current — the
	// physically observable version of the same divergence.
	PeakC []float64
}

// Figure6Options configures the runaway-curve sweep.
type Figure6Options struct {
	// Points is the number of current samples (default 16, minimum 4).
	Points int
	// Parallel is the number of sample points solved concurrently: <= 0
	// uses GOMAXPROCS, 1 is the pure-serial fallback. Samples land in
	// index-addressed slices, so the curve is identical at every worker
	// count.
	Parallel int
	// Ctx, when non-nil, cancels the sweep between sample points and
	// flows into the deployment and runaway-limit stages.
	Ctx context.Context
}

// RunFigure6 sweeps the runaway curve serially with the given number of
// points. It is the legacy entry point kept for cmd/report; new callers
// should use RunFigure6Opts.
func RunFigure6(points int) (*Figure6Result, error) {
	return RunFigure6Opts(Figure6Options{Points: points})
}

// RunFigure6Opts builds the Alpha system with its greedy deployment and
// sweeps h_kl(i) from 0 toward lambda_m. k is the silicon node of the
// hottest tile and l the hot node of the first deployed device,
// the pairing whose divergence dominates the runaway. Only a loss of
// positive definiteness (thermal runaway) reads as +Inf; any other
// solver error aborts the sweep.
func RunFigure6Opts(opt Figure6Options) (*Figure6Result, error) {
	points := opt.Points
	if points < 4 {
		points = 16
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	cfg := core.Config{TilePower: p}
	dep, err := core.GreedyDeploy(cfg, material.CelsiusToKelvin(85), core.CurrentOptions{Ctx: opt.Ctx})
	if err != nil {
		return nil, err
	}
	sys := dep.System
	lambda, err := sys.RunawayLimit(core.RunawayOptions{Ctx: opt.Ctx})
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{
		LambdaM:  lambda,
		Currents: make([]float64, points),
		Hkl:      make([]float64, points),
		PeakC:    make([]float64, points),
	}
	k := sys.PN.SilNode[dep.Current.PeakTile]
	l := sys.Array.Hot[0]
	err = engine.Pool{Workers: opt.Parallel}.MapTasksCtx(ctx, points, func(tctx context.Context, n int) error {
		// Denser sampling near the limit, where the curve shoots up.
		frac := 1 - math.Pow(1-float64(n)/float64(points-1), 2)
		i := lambda * frac * (1 - 1e-6)
		res.Currents[n] = i
		h, err := sys.HklCtx(tctx, i, k, l)
		switch {
		case errors.Is(err, thermal.ErrNotPD):
			h = math.Inf(1)
		case err != nil:
			return fmt.Errorf("bench: figure 6 at i=%g A: %w", i, err)
		}
		res.Hkl[n] = h
		peak, _, _, err := sys.PeakAtCtx(tctx, i)
		switch {
		case errors.Is(err, thermal.ErrNotPD):
			res.PeakC[n] = math.Inf(1)
		case err != nil:
			return fmt.Errorf("bench: figure 6 peak at i=%g A: %w", i, err)
		default:
			res.PeakC[n] = material.KelvinToCelsius(peak)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// FormatFigure6 renders the series as an aligned table plus an ASCII
// sketch of the h_kl(i) curve.
func FormatFigure6(r *Figure6Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: h_kl(i) over [0, lambda_m), lambda_m = %.2f A\n", r.LambdaM)
	b.WriteString("   i (A)     h_kl (K/W)    peak (C)\n")
	for n := range r.Currents {
		fmt.Fprintf(&b, "%8.3f %12.4g %11.4g\n", r.Currents[n], r.Hkl[n], r.PeakC[n])
	}
	b.WriteString(sketch(r.Currents, r.Hkl, 18, 56))
	return b.String()
}

// sketch draws a crude ASCII plot of y(x) with log-scaled y.
func sketch(xs, ys []float64, hRows, wCols int) string {
	if len(xs) == 0 {
		return ""
	}
	logY := make([]float64, len(ys))
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i, y := range ys {
		if math.IsInf(y, 0) || y <= 0 {
			logY[i] = math.NaN()
			continue
		}
		logY[i] = math.Log10(y)
		minY = math.Min(minY, logY[i])
		maxY = math.Max(maxY, logY[i])
	}
	if !(maxY > minY) {
		return ""
	}
	grid := make([][]byte, hRows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", wCols))
	}
	xMax := xs[len(xs)-1]
	for i, x := range xs {
		if math.IsNaN(logY[i]) {
			continue
		}
		c := int(float64(wCols-1) * x / xMax)
		r := hRows - 1 - int(float64(hRows-1)*(logY[i]-minY)/(maxY-minY))
		grid[r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "log10(h_kl) sketch (y: %.2g .. %.2g, x: 0 .. %.3g A):\n", math.Pow(10, minY), math.Pow(10, maxY), xMax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", wCols) + "-> i\n")
	return b.String()
}

// Figure 7: the Alpha floorplan deployment map.

// Figure7Result carries the deployment and its rendering.
type Figure7Result struct {
	Sites []int
	Map   string
}

// RunFigure7 reproduces Figure 7(b): the set of tiles the greedy
// algorithm covers with TEC devices on the Alpha floorplan.
func RunFigure7() (*Figure7Result, error) {
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	dep, err := core.GreedyDeploy(core.Config{TilePower: p}, material.CelsiusToKelvin(85), core.CurrentOptions{})
	if err != nil {
		return nil, err
	}
	marked := make(map[int]bool, len(dep.Sites))
	for _, s := range dep.Sites {
		marked[s] = true
	}
	return &Figure7Result{Sites: dep.Sites, Map: floorplan.AsciiMap(f, g, marked)}, nil
}

// ValidationResult summarizes the compact-vs-reference comparison.
type ValidationResult struct {
	// WorstDiffC is the worst per-tile difference at matched lateral
	// granularity (the paper's < 1.5 C HotSpot check).
	WorstDiffC float64
	// FineWorstDiffC and FineMeanBiasC quantify sub-tile granularity
	// effects against a 2x finer reference grid.
	FineWorstDiffC, FineMeanBiasC float64
	// ReferenceNodes is the fine model size.
	ReferenceNodes int
}

// RunValidation reproduces the Section-VI model validation on the Alpha
// worst-case power map.
func RunValidation() (*ValidationResult, error) {
	geom := material.DefaultPackage()
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)

	pn, err := thermal.BuildPackage(geom, thermal.DefaultBuildOptions())
	if err != nil {
		return nil, err
	}
	theta, err := pn.SolvePassive(p, thermal.MethodAuto)
	if err != nil {
		return nil, err
	}
	compact := pn.SiliconTemps(theta)

	matched, err := refsolver.Solve(geom, 12, 12, p, refsolver.Options{FinePitch: geom.DieWidth / 12})
	if err != nil {
		return nil, err
	}
	fine, err := refsolver.Solve(geom, 12, 12, p, refsolver.Options{FinePitch: geom.DieWidth / 24})
	if err != nil {
		return nil, err
	}
	out := &ValidationResult{ReferenceNodes: fine.Nodes}
	for i := range compact {
		if d := math.Abs(compact[i] - matched.TileTempsK[i]); d > out.WorstDiffC {
			out.WorstDiffC = d
		}
		d := compact[i] - fine.TileTempsK[i]
		out.FineMeanBiasC += d
		if math.Abs(d) > out.FineWorstDiffC {
			out.FineWorstDiffC = math.Abs(d)
		}
	}
	out.FineMeanBiasC /= float64(len(compact))
	return out, nil
}
