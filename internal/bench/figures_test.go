package bench

import (
	"math"
	"strings"
	"testing"
)

func TestRunFigure6Shape(t *testing.T) {
	skipIfRace(t)
	res, err := RunFigure6(12)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.LambdaM, 1) || res.LambdaM <= 0 {
		t.Fatalf("lambda_m = %v", res.LambdaM)
	}
	if len(res.Currents) != 12 || len(res.Hkl) != 12 || len(res.PeakC) != 12 {
		t.Fatalf("series lengths wrong: %d %d %d", len(res.Currents), len(res.Hkl), len(res.PeakC))
	}
	// Figure 6's properties: nonnegative everywhere, divergence at the
	// end of the sweep.
	for n, h := range res.Hkl {
		if !math.IsInf(h, 1) && h < 0 {
			t.Fatalf("h_kl(%g) = %v < 0", res.Currents[n], h)
		}
	}
	first, last := res.Hkl[0], res.Hkl[len(res.Hkl)-1]
	if !(last > 50*first) {
		t.Fatalf("no divergence: h(0)=%v, h(near lambda)=%v", first, last)
	}
	// Currents strictly increasing and below lambda_m.
	for n := 1; n < len(res.Currents); n++ {
		if res.Currents[n] <= res.Currents[n-1] {
			t.Fatal("currents not increasing")
		}
	}
	if res.Currents[len(res.Currents)-1] >= res.LambdaM {
		t.Fatal("sample at or beyond lambda_m")
	}
	out := FormatFigure6(res)
	if !strings.Contains(out, "lambda_m") || !strings.Contains(out, "*") {
		t.Error("formatted figure incomplete")
	}
}

func TestRunFigure6ParallelDeterminism(t *testing.T) {
	skipIfRace(t)
	serial, err := RunFigure6Opts(Figure6Options{Points: 12, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunFigure6Opts(Figure6Options{Points: 12, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if FormatFigure6(serial) != FormatFigure6(parallel) {
		t.Error("parallel Figure 6 sweep differs from serial")
	}
}

func TestRunFigure7Map(t *testing.T) {
	skipIfRace(t)
	res, err := RunFigure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 {
		t.Fatal("no deployment")
	}
	gridPart := res.Map[:strings.Index(res.Map, "legend:")]
	if strings.Count(gridPart, "#") != len(res.Sites) {
		t.Fatalf("map markers %d != sites %d", strings.Count(gridPart, "#"), len(res.Sites))
	}
	// The paper's Figure 7(b): covered tiles lie over the high-density
	// integer cluster (rows 8-9 of the grid).
	for _, s := range res.Sites {
		row := s / 12
		if row < 7 || row > 10 {
			t.Errorf("TEC site %d (row %d) far from the hot cluster", s, row)
		}
	}
}

func TestRunValidationBounds(t *testing.T) {
	skipIfRace(t)
	res, err := RunValidation()
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstDiffC > 1.5 {
		t.Errorf("matched-granularity diff %.3f C exceeds the paper's 1.5 C", res.WorstDiffC)
	}
	if res.FineWorstDiffC > 4.0 {
		t.Errorf("fine-grid diff %.3f C beyond documented envelope", res.FineWorstDiffC)
	}
	if res.ReferenceNodes < 1000 {
		t.Errorf("reference model suspiciously small: %d nodes", res.ReferenceNodes)
	}
}

func TestSketchHandlesDegenerateInput(t *testing.T) {
	if s := sketch(nil, nil, 5, 10); s != "" {
		t.Error("empty input produced a sketch")
	}
	// Constant series: no range.
	if s := sketch([]float64{1, 2}, []float64{3, 3}, 5, 10); s != "" {
		t.Error("flat series produced a sketch")
	}
}
