package bench

import (
	"fmt"
	"testing"

	"tecopt/internal/core"
)

// Benchmarks for the engine-parallelized evaluation paths. Each has a
// serial sub-benchmark (Parallel: 1) and a parallel one (Parallel: 0 =
// GOMAXPROCS); comparing the two on a multicore host measures the
// worker-pool speedup. Full Table I is minutes of work per iteration —
// run it with -benchtime=1x:
//
//	go test ./internal/bench -bench BenchmarkEngine_TableI -benchtime=1x
func BenchmarkEngine_TableI(b *testing.B) {
	for _, bm := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bm.name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := RunTableI(TableIOptions{Parallel: bm.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngine_TableI_SMW is the CI-gated fast-path entry: the full
// serial Table I with the Sherman-Morrison-Woodbury per-current solves
// requested explicitly (cmd/benchjson -gate fails the build when this
// regresses against the BENCH_solver.json snapshot). Compare against
// BenchmarkEngine_TableI_Direct for the per-current refactorization
// cost the fast path removes.
func BenchmarkEngine_TableI_SMW(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := RunTableI(TableIOptions{Parallel: 1, Solve: core.SolveAuto}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine_TableI_Direct(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := RunTableI(TableIOptions{Parallel: 1, Solve: core.SolveDirect}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine_Figure6(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(fmt.Sprintf("%s/points=24", name), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := RunFigure6Opts(Figure6Options{Points: 24, Parallel: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
