package bench

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"tecopt/internal/core"
	"tecopt/internal/floorplan"
	"tecopt/internal/obs"
	"tecopt/internal/power"
)

// Observability acceptance tests for the ISSUE contract: with the obs
// flags off, experiment output is byte-identical to the pre-obs tree
// (pinned by goldens captured before the layer existed); with obs on,
// two identical serial runs produce byte-identical snapshots once the
// timing histograms ("_ns" metrics) are stripped.

// withRegistry installs a fresh registry for the duration of fn and
// restores the previous global afterwards.
func withRegistry(t *testing.T, fn func(r *obs.Registry)) {
	t.Helper()
	r := obs.New(nil)
	prev := obs.SetGlobal(r)
	defer obs.SetGlobal(prev)
	fn(r)
}

func readGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("reading golden (captured from the pre-obs tree): %v", err)
	}
	return string(b)
}

// TestDisabledObsTableIMatchesPreObsGolden pins the all-flags-off
// contract for Table I: the formatted Alpha row must be byte-identical
// to the output of the tree before the observability layer was added.
func TestDisabledObsTableIMatchesPreObsGolden(t *testing.T) {
	if obs.Enabled() != nil {
		t.Fatal("a global registry is installed; this test needs the disabled path")
	}
	core.ResetFactorCache()
	f, g := floorplan.Alpha21364Grid()
	row, err := RunTableIRow("Alpha", power.AlphaTilePowers(f, g), TableIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := FormatTableI([]*TableIRow{row})
	if want := readGolden(t, "golden_tablei_alpha.txt"); got != want {
		t.Errorf("Table I output differs from the pre-obs golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDisabledObsFigure6MatchesPreObsGolden is the same contract for
// the Figure 6 sweep.
func TestDisabledObsFigure6MatchesPreObsGolden(t *testing.T) {
	if obs.Enabled() != nil {
		t.Fatal("a global registry is installed; this test needs the disabled path")
	}
	core.ResetFactorCache()
	res, err := RunFigure6Opts(Figure6Options{Points: 8, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := FormatFigure6(res)
	if want := readGolden(t, "golden_figure6.txt"); got != want {
		t.Errorf("Figure 6 output differs from the pre-obs golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// figure6SnapshotJSON runs the serial Figure 6 sweep under a fresh
// registry from a cold factor cache and returns the non-timing view of
// the final snapshot.
func figure6SnapshotJSON(t *testing.T) []byte {
	t.Helper()
	var out []byte
	withRegistry(t, func(r *obs.Registry) {
		core.ResetFactorCache()
		if _, err := RunFigure6Opts(Figure6Options{Points: 8, Parallel: 1}); err != nil {
			t.Fatal(err)
		}
		b, err := r.Snapshot().WithoutTimings().JSON()
		if err != nil {
			t.Fatal(err)
		}
		out = b
	})
	return out
}

// TestSnapshotDeterministicAcrossSerialRuns runs the same serial
// workload twice and demands byte-identical snapshots modulo timing
// histograms: every count, iteration total, gauge and residual must
// reproduce exactly.
func TestSnapshotDeterministicAcrossSerialRuns(t *testing.T) {
	first := figure6SnapshotJSON(t)
	second := figure6SnapshotJSON(t)
	if string(first) != string(second) {
		t.Errorf("snapshots of identical serial runs differ\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if len(first) <= len("{}\n") {
		t.Fatalf("snapshot is empty; instrumentation did not fire:\n%s", first)
	}
}

// TestObsOverheadOnTableI measures the enabled-registry overhead on the
// BenchmarkEngine Table I path and fails above the 5%% budget. Wall
// timing is load-sensitive, so the test only runs when requested:
//
//	OBS_OVERHEAD=1 go test ./internal/bench -run TestObsOverheadOnTableI -v
//
// (the Makefile target obs-overhead, wired into CI, does exactly this).
func TestObsOverheadOnTableI(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD") == "" {
		t.Skip("set OBS_OVERHEAD=1 to measure instrumentation overhead")
	}
	f, g := floorplan.Alpha21364Grid()
	tp := power.AlphaTilePowers(f, g)
	run := func() {
		core.ResetFactorCache()
		if _, err := RunTableIRow("Alpha", tp, TableIOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Best-of-N wall time: the minimum is the least load-contaminated
	// estimate of the true cost.
	best := func(n int) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			start := time.Now()
			run()
			if d := time.Since(start); d < min {
				min = d
			}
		}
		return min
	}
	const reps = 3
	run() // warm-up: page in code and data before either measurement
	off := best(reps)
	prev := obs.SetGlobal(obs.New(nil))
	on := best(reps)
	obs.SetGlobal(prev)

	overhead := float64(on-off) / float64(off)
	t.Logf("obs off %v, on %v, overhead %.2f%%", off, on, 100*overhead)
	if overhead > 0.05 {
		t.Errorf("observability overhead %.2f%% exceeds the 5%% budget (off %v, on %v)", 100*overhead, off, on)
	}
}
