package bench

import (
	"strings"
	"testing"
)

func TestRunContactSensitivityMonotone(t *testing.T) {
	skipIfRace(t)
	rows, err := RunContactSensitivity([]float64{0.25, 1.0, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Better contacts -> higher runaway limit and larger swing.
	for i := 1; i < len(rows); i++ {
		if rows[i].LambdaM <= rows[i-1].LambdaM {
			t.Errorf("lambda_m not increasing with contact quality: %v", rows)
		}
		if rows[i].SwingC <= rows[i-1].SwingC {
			t.Errorf("swing not increasing with contact quality: %v", rows)
		}
	}
	// The nominal point must match the Table-I regime.
	if rows[1].IOptA < 3 || rows[1].IOptA > 12 {
		t.Errorf("nominal Iopt %.2f A out of regime", rows[1].IOptA)
	}
}

func TestRunDeploymentStrategies(t *testing.T) {
	skipIfRace(t)
	rows, err := RunDeploymentStrategies()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	budget := rows[0].NumTECs
	for _, r := range rows {
		if r.NumTECs != budget {
			t.Errorf("%s used %d devices, want the common budget %d", r.Strategy, r.NumTECs, budget)
		}
	}
	// The greedy (temperature-driven) choice must be at least as good as
	// the power heuristic within a small tolerance, and all three land
	// in the same regime on this chip.
	greedy := rows[0].PeakC
	for _, r := range rows[1:] {
		if greedy > r.PeakC+0.5 {
			t.Errorf("greedy (%.2f C) clearly worse than %s (%.2f C)", greedy, r.Strategy, r.PeakC)
		}
	}
}

func TestFormatSensitivity(t *testing.T) {
	skipIfRace(t)
	contact, err := RunContactSensitivity([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	strategies, err := RunDeploymentStrategies()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSensitivity(contact, strategies)
	if !strings.Contains(out, "contact conductance") || !strings.Contains(out, "greedy") {
		t.Fatalf("report incomplete:\n%s", out)
	}
}
