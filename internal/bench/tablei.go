// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI): Table I (Alpha + HC01..HC10, greedy vs
// full-cover), Figure 6 (h_kl(i) runaway curves), Figure 7 (deployment
// map), the HotSpot-validation experiment, the Conjecture-1 campaign,
// and the ablations called out in DESIGN.md. Each experiment returns
// structured rows plus a paper-style formatted table.
package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"tecopt/internal/core"
	"tecopt/internal/engine"
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/power"
)

// TableIRow is one benchmark row of Table I.
type TableIRow struct {
	Name string
	// NoTECPeakC is the passive peak temperature (Column "No TEC").
	NoTECPeakC float64
	// LimitC is the maximum allowable temperature used (85 C, or the
	// smallest integer limit at which the greedy succeeds, mirroring the
	// paper's 89/88 C retries for HC06/HC09).
	LimitC float64
	// FailedAt85 marks chips that needed a relaxed limit.
	FailedAt85 bool
	// NumTECs, IOptA, PTECW describe the greedy deployment.
	NumTECs int
	IOptA   float64
	PTECW   float64
	// GreedyPeakC is the achieved peak with the greedy deployment.
	GreedyPeakC float64
	// FullCoverMinPeakC is the baseline's best achievable peak
	// (Column "Full Cover / min theta_peak").
	FullCoverMinPeakC float64
	// SwingLossC = FullCoverMinPeakC - GreedyPeakC (Column "SwingLoss").
	SwingLossC float64
	// Iterations counts greedy passes; Runtime is wall-clock.
	Iterations int
	Runtime    time.Duration
	// Sites is the final deployment.
	Sites []int
}

// TableIOptions configures the Table I run.
type TableIOptions struct {
	// BaseLimitC is the initial allowable temperature (default 85).
	BaseLimitC float64
	// MaxLimitC caps the relaxation retries (default 95).
	MaxLimitC float64
	// Current tunes the inner convex current optimization.
	Current core.CurrentOptions
	// Solve selects the per-current solve path for every chip (forwarded
	// to core.Config.Solve): SolveAuto is the SMW fast path, SolveDirect
	// refactors at every current.
	Solve core.SolvePath
	// Parallel is the number of chips evaluated concurrently: <= 0 uses
	// GOMAXPROCS, 1 is the pure-serial fallback. Chips are independent
	// and rows are collected by chip index, so the table is identical at
	// every worker count (Runtime excepted, and FormatTableI does not
	// print it).
	Parallel int
	// Ctx, when non-nil, cancels the run between chips and between the
	// inner solves of each chip (it flows into the per-chip current
	// optimization unless Current.Ctx is set explicitly). On
	// cancellation RunTableI still returns the rows completed so far.
	Ctx context.Context
}

func (o TableIOptions) withDefaults() TableIOptions {
	if num.IsZero(o.BaseLimitC) {
		o.BaseLimitC = 85
	}
	if num.IsZero(o.MaxLimitC) {
		o.MaxLimitC = 95
	}
	if o.Current.Ctx == nil {
		o.Current.Ctx = o.Ctx
	}
	return o
}

// RunTableIRow evaluates one chip: passive peak, greedy deployment with
// relaxation retries, and the full-cover baseline.
func RunTableIRow(name string, tilePower []float64, opt TableIOptions) (*TableIRow, error) {
	opt = opt.withDefaults()
	cfg := core.Config{TilePower: tilePower, Solve: opt.Solve}
	start := time.Now()

	row := &TableIRow{Name: name, LimitC: opt.BaseLimitC}
	var res *core.DeployResult
	for limit := opt.BaseLimitC; limit <= opt.MaxLimitC; limit++ {
		r, err := core.GreedyDeploy(cfg, material.CelsiusToKelvin(limit), opt.Current)
		if err != nil {
			return nil, fmt.Errorf("bench: %s at %g C: %w", name, limit, err)
		}
		res = r
		row.LimitC = limit
		if r.Success {
			break
		}
		row.FailedAt85 = true
	}
	if res == nil || !res.Success {
		return nil, fmt.Errorf("bench: %s infeasible up to %g C", name, opt.MaxLimitC)
	}
	row.NoTECPeakC = material.KelvinToCelsius(res.NoTECPeakK)
	row.NumTECs = len(res.Sites)
	row.Sites = res.Sites
	row.IOptA = res.Current.IOpt
	row.PTECW = res.Current.TECPowerW
	row.GreedyPeakC = material.KelvinToCelsius(res.Current.PeakK)
	row.Iterations = len(res.Iterations)

	fc, _, err := core.FullCover(cfg, opt.Current)
	if err != nil {
		return nil, fmt.Errorf("bench: %s full cover: %w", name, err)
	}
	row.FullCoverMinPeakC = material.KelvinToCelsius(fc.PeakK)
	row.SwingLossC = row.FullCoverMinPeakC - row.GreedyPeakC
	row.Runtime = time.Since(start)
	return row, nil
}

// RunTableI reproduces the full Table I: the Alpha-21364-like chip plus
// the ten hypothetical chips. Chips run on an engine pool sized by
// opt.Parallel; on failure the error of the lowest-index chip is
// returned, exactly as the serial loop would report it.
//
// On error the rows completed before the failure are still returned —
// entries for failed or unstarted chips are nil — so a timed-out or
// degraded run can flush its partial table instead of discarding paid-for
// work. A nil error guarantees every row is non-nil.
func RunTableI(opt TableIOptions) ([]*TableIRow, error) {
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	f, g := floorplan.Alpha21364Grid()
	chips, err := power.GenerateHCSuite(power.DefaultHCSpec())
	if err != nil {
		return nil, err
	}
	names := []string{"Alpha"}
	powers := [][]float64{power.AlphaTilePowers(f, g)}
	for _, c := range chips {
		names = append(names, c.Name)
		powers = append(powers, c.TilePower)
	}

	rows := make([]*TableIRow, len(names))
	err = engine.Pool{Workers: opt.Parallel}.MapTasksCtx(ctx, len(names), func(tctx context.Context, i int) error {
		// Each chip runs under its task context, so cancellation still
		// flows and — when the flight recorder is on — the chip's whole
		// solve tree (greedy deploy, current optimization, runaway
		// search) nests under its pool task with the worker's track.
		// Current is forwarded as the caller set it: with Current.Ctx
		// unset, the row's withDefaults fills it from the task context;
		// an explicitly set one is respected.
		row, err := RunTableIRow(names[i], powers[i], TableIOptions{
			BaseLimitC: opt.BaseLimitC,
			MaxLimitC:  opt.MaxLimitC,
			Current:    opt.Current,
			Solve:      opt.Solve,
			Ctx:        tctx,
		})
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return rows, err
	}
	return rows, nil
}

// FormatTableI renders rows in the layout of the paper's Table I, with
// the trailing average row for P_TEC and SwingLoss.
func FormatTableI(rows []*TableIRow) string {
	var b strings.Builder
	b.WriteString("            No TEC  |        Greedy Deployment          | Full Cover\n")
	b.WriteString("Chip   theta_peak C | limit C #TECs  Iopt A  PTEC W peak C | min peak C  SwingLoss C\n")
	var sumPTEC, sumLoss float64
	for _, r := range rows {
		mark := " "
		if r.FailedAt85 {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-6s %10.1f |%s%6.0f %5d %7.2f %7.2f %6.1f | %10.1f %12.1f\n",
			r.Name, r.NoTECPeakC, mark, r.LimitC, r.NumTECs, r.IOptA, r.PTECW,
			r.GreedyPeakC, r.FullCoverMinPeakC, r.SwingLossC)
		sumPTEC += r.PTECW
		sumLoss += r.SwingLossC
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&b, "%-6s %10s |%7s %5s %7s %7.2f %6s | %10s %12.1f\n",
			"Avg.", "", "", "", "", sumPTEC/n, "", "", sumLoss/n)
	}
	b.WriteString("(* limit relaxed after failure at 85 C, per the paper's HC06/HC09 treatment)\n")
	return b.String()
}

// Summary statistics helpers for EXPERIMENTS.md and assertions.

// MaxCoolingSwingC returns the largest no-TEC-to-greedy peak drop across
// rows (the paper reports up to 7.5 C).
func MaxCoolingSwingC(rows []*TableIRow) float64 {
	best := math.Inf(-1)
	for _, r := range rows {
		if s := r.NoTECPeakC - r.GreedyPeakC; s > best {
			best = s
		}
	}
	return best
}

// AvgSwingLossC returns the average full-cover swing loss (paper: 4.2 C).
func AvgSwingLossC(rows []*TableIRow) float64 {
	var s float64
	for _, r := range rows {
		s += r.SwingLossC
	}
	return s / float64(len(rows))
}

// FailuresAtBase returns the chips that needed a relaxed limit.
func FailuresAtBase(rows []*TableIRow) []string {
	var out []string
	for _, r := range rows {
		if r.FailedAt85 {
			out = append(out, r.Name)
		}
	}
	return out
}
