package bench

import (
	"strings"
	"testing"

	"tecopt/internal/floorplan"
	"tecopt/internal/num"
	"tecopt/internal/power"
)

func TestRunTableIRowAlpha(t *testing.T) {
	skipIfRace(t)
	f, g := floorplan.Alpha21364Grid()
	row, err := RunTableIRow("Alpha", power.AlphaTilePowers(f, g), TableIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table I row "Alpha": theta_peak 91.8 C, 16 TECs, Iopt 6.10 A,
	// P_TEC 1.31 W, full-cover min peak 90.2 C, swing loss 5.2 C.
	// Our calibrated reproduction must match the shape:
	if row.NoTECPeakC < 90 || row.NoTECPeakC > 94 {
		t.Errorf("no-TEC peak %.1f C, want ~91.8", row.NoTECPeakC)
	}
	if row.FailedAt85 || !num.ExactEqual(row.LimitC, 85) {
		t.Errorf("Alpha must succeed at 85 C (limit used: %g)", row.LimitC)
	}
	if row.NumTECs < 4 || row.NumTECs > 24 {
		t.Errorf("#TECs = %d, want O(10) like the paper's 16", row.NumTECs)
	}
	if row.IOptA < 3 || row.IOptA > 12 {
		t.Errorf("Iopt %.2f A, want the paper's few-amp regime", row.IOptA)
	}
	if row.PTECW < 0.3 || row.PTECW > 4 {
		t.Errorf("P_TEC %.2f W, want ~1-2 W", row.PTECW)
	}
	if row.GreedyPeakC > 85 {
		t.Errorf("greedy peak %.2f C over the limit", row.GreedyPeakC)
	}
	// Full cover must lose: the paper's central claim.
	if row.SwingLossC < 2 || row.SwingLossC > 9 {
		t.Errorf("swing loss %.2f C, want ~4-6 like the paper's 5.2", row.SwingLossC)
	}
	if row.FullCoverMinPeakC <= 85 {
		t.Errorf("full cover reached %.2f C <= 85: should fail the limit like the paper's 90.2", row.FullCoverMinPeakC)
	}
	// Paper: "execution time of our algorithm is less than 3 minutes".
	if row.Runtime.Minutes() > 3 {
		t.Errorf("runtime %v exceeds the paper's 3-minute bound", row.Runtime)
	}
}

func TestRunTableIFull(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("full Table I in -short mode")
	}
	rows, err := RunTableI(TableIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11 (Alpha + HC01..HC10)", len(rows))
	}
	// Shape assertions mirroring the paper's aggregate claims.
	if s := MaxCoolingSwingC(rows); s < 5 || s > 25 {
		t.Errorf("max cooling swing %.1f C, paper reports up to 7.5 C", s)
	}
	if l := AvgSwingLossC(rows); l < 2 || l > 9 {
		t.Errorf("average swing loss %.1f C, paper reports 4.2 C", l)
	}
	fails := FailuresAtBase(rows)
	if len(fails) == 0 || len(fails) > 4 {
		t.Errorf("failures at 85 C: %v, paper has 2 (HC06, HC09)", fails)
	}
	for _, r := range rows {
		if r.GreedyPeakC > r.LimitC {
			t.Errorf("%s: peak %.2f over its limit %.0f", r.Name, r.GreedyPeakC, r.LimitC)
		}
		if !r.FailedAt85 && !num.ExactEqual(r.LimitC, 85) {
			t.Errorf("%s: limit %g without recorded failure", r.Name, r.LimitC)
		}
		if r.Runtime.Minutes() > 3 {
			t.Errorf("%s: runtime %v over 3 minutes", r.Name, r.Runtime)
		}
	}
	// Formatting.
	table := FormatTableI(rows)
	if !strings.Contains(table, "Alpha") || !strings.Contains(table, "HC10") {
		t.Error("formatted table missing rows")
	}
	if !strings.Contains(table, "Avg.") {
		t.Error("formatted table missing average row")
	}
	t.Logf("\n%s", table)

	// Determinism: the parallel run must render byte-identically to the
	// serial run above (FormatTableI prints no wall-clock fields).
	par, err := RunTableI(TableIOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if parTable := FormatTableI(par); parTable != table {
		t.Errorf("parallel Table I differs from serial:\nserial:\n%s\nparallel:\n%s", table, parTable)
	}
}
