package bench

import (
	"fmt"
	"math"
	"strings"

	"tecopt/internal/core"
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/power"
	"tecopt/internal/refsolver"
	"tecopt/internal/tec"
	"tecopt/internal/thermal"
)

// Extended validation studies.

// WorkloadValidationRow is the compact-vs-reference comparison for one
// workload's power profile.
type WorkloadValidationRow struct {
	Workload   string
	PeakC      float64 // compact-model peak
	WorstDiffC float64 // worst per-tile difference vs reference
}

// RunWorkloadValidation repeats the Section-VI validation for every
// synthetic SPEC workload individually — the paper's wording is "for a
// given floorplan and a set of power traces", i.e. per-trace agreement,
// not only the worst-case envelope.
func RunWorkloadValidation() ([]WorkloadValidationRow, error) {
	geom := material.DefaultPackage()
	f, g := floorplan.Alpha21364Grid()
	model := power.NewAlphaModel()

	pn, err := thermal.BuildPackage(geom, thermal.DefaultBuildOptions())
	if err != nil {
		return nil, err
	}

	var rows []WorkloadValidationRow
	for _, w := range power.SyntheticSPECWorkloads() {
		p := g.DensityPerTile(f, model.Densities(w))
		theta, err := pn.SolvePassive(p, thermal.MethodAuto)
		if err != nil {
			return nil, err
		}
		compact := pn.SiliconTemps(theta)
		ref, err := refsolver.Solve(geom, 12, 12, p, refsolver.Options{FinePitch: geom.DieWidth / 12})
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for i := range compact {
			if d := math.Abs(compact[i] - ref.TileTempsK[i]); d > worst {
				worst = d
			}
		}
		peak, _ := pn.PeakSilicon(theta)
		rows = append(rows, WorkloadValidationRow{
			Workload:   w.Name,
			PeakC:      material.KelvinToCelsius(peak),
			WorstDiffC: worst,
		})
	}
	return rows, nil
}

// ResolutionRow reports the compact model at one spreader/sink
// resolution.
type ResolutionRow struct {
	SpreaderCells, SinkCells int
	Nodes                    int
	PeakC                    float64
}

// RunResolutionAblation sweeps the compact model's coarse-layer
// resolutions on the Alpha worst case, quantifying the discretization
// choice baked into DefaultBuildOptions.
func RunResolutionAblation(cells []int) ([]ResolutionRow, error) {
	geom := material.DefaultPackage()
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	var rows []ResolutionRow
	for _, c := range cells {
		opts := thermal.BuildOptions{Cols: 12, Rows: 12, SpreaderCells: c, SinkCells: c}
		pn, err := thermal.BuildPackage(geom, opts)
		if err != nil {
			return nil, err
		}
		theta, err := pn.SolvePassive(p, thermal.MethodAuto)
		if err != nil {
			return nil, err
		}
		peak, _ := pn.PeakSilicon(theta)
		rows = append(rows, ResolutionRow{
			SpreaderCells: c, SinkCells: c,
			Nodes: pn.Net.NumNodes(),
			PeakC: material.KelvinToCelsius(peak),
		})
	}
	return rows, nil
}

// RunActiveValidation compares the compact and reference models WITH
// TEC devices inserted — an extension beyond the paper's passive-only
// HotSpot check — and returns a short report. Both the unpowered and
// the powered (6 A) cases are compared at matched granularity.
func RunActiveValidation() (string, error) {
	geom := material.DefaultPackage()
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	sites := []int{100, 101, 102, 103, 112, 113, 114}
	dev := tec.ChowdhuryDevice()

	var b strings.Builder
	b.WriteString("Active validation: compact vs reference with TEC devices\n")
	for _, current := range []float64{0, 6} {
		sys, err := core.NewSystem(core.Config{TilePower: p, Device: dev}, sites)
		if err != nil {
			return "", err
		}
		theta, err := sys.SolveAt(current)
		if err != nil {
			return "", err
		}
		compact := sys.PN.SiliconTemps(theta)
		ref, err := refsolver.Solve(geom, 12, 12, p, refsolver.Options{
			FinePitch: geom.DieWidth / 12,
			TEC: refsolver.TECSpec{
				Sites: sites, Current: current,
				Seebeck: dev.Seebeck, Resistance: dev.Resistance, Kappa: dev.Kappa,
				ContactCold: dev.ContactCold, ContactHot: dev.ContactHot,
			},
		})
		if err != nil {
			return "", err
		}
		worst := 0.0
		for i := range compact {
			if d := math.Abs(compact[i] - ref.TileTempsK[i]); d > worst {
				worst = d
			}
		}
		fmt.Fprintf(&b, "  i=%.1f A: worst tile difference %.3f C\n", current, worst)
	}
	return b.String(), nil
}

// FormatValidationStudies renders both studies.
func FormatValidationStudies(workloads []WorkloadValidationRow, res []ResolutionRow) string {
	var b strings.Builder
	b.WriteString("Validation per workload (compact vs reference, matched granularity)\n")
	for _, r := range workloads {
		fmt.Fprintf(&b, "  %-14s peak=%7.2f C  worst diff=%5.3f C\n", r.Workload, r.PeakC, r.WorstDiffC)
	}
	b.WriteString("Ablation: compact-model coarse-layer resolution\n")
	for _, r := range res {
		fmt.Fprintf(&b, "  %2dx%-2d cells  nodes=%5d  peak=%7.3f C\n",
			r.SpreaderCells, r.SinkCells, r.Nodes, r.PeakC)
	}
	return b.String()
}
