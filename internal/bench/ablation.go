package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"tecopt/internal/core"
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/power"
	"tecopt/internal/thermal"
)

// Ablation studies for the design choices called out in DESIGN.md.

// alphaDeployedSystem builds the Alpha chip with its greedy deployment.
func alphaDeployedSystem() (*core.System, error) {
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	dep, err := core.GreedyDeploy(core.Config{TilePower: p}, material.CelsiusToKelvin(85), core.CurrentOptions{})
	if err != nil {
		return nil, err
	}
	return dep.System, nil
}

// OptimizerAblationRow compares one current-setting method.
type OptimizerAblationRow struct {
	Method      string
	IOptA       float64
	PeakC       float64
	Evaluations int
	Runtime     time.Duration
}

// RunOptimizerAblation compares golden-section, Brent and gradient
// descent on the same deployed system. All must reach (near) the same
// minimum; the evaluation counts expose their relative cost.
func RunOptimizerAblation() ([]OptimizerAblationRow, error) {
	sys, err := alphaDeployedSystem()
	if err != nil {
		return nil, err
	}
	methods := []struct {
		name string
		m    core.CurrentMethod
	}{
		{"golden-section", core.CurrentGolden},
		{"brent", core.CurrentBrent},
		{"gradient-descent", core.CurrentGradient},
	}
	var rows []OptimizerAblationRow
	for _, md := range methods {
		start := time.Now()
		res, err := sys.OptimizeCurrent(core.CurrentOptions{Method: md.m})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", md.name, err)
		}
		rows = append(rows, OptimizerAblationRow{
			Method:      md.name,
			IOptA:       res.IOpt,
			PeakC:       material.KelvinToCelsius(res.PeakK),
			Evaluations: res.Evaluations,
			Runtime:     time.Since(start),
		})
	}
	return rows, nil
}

// SolverAblationRow compares one steady-state solver backend.
type SolverAblationRow struct {
	Method   string
	Runtime  time.Duration
	PeakC    float64
	MaxDiffC float64 // vs the direct solver
}

// RunSolverAblation solves the same deployed system at its optimum with
// the banded direct solver and with preconditioned CG.
func RunSolverAblation() ([]SolverAblationRow, error) {
	sys, err := alphaDeployedSystem()
	if err != nil {
		return nil, err
	}
	res, err := sys.OptimizeCurrent(core.CurrentOptions{})
	if err != nil {
		return nil, err
	}
	m := sys.Matrix(res.IOpt)
	rhs := sys.RHS(res.IOpt)

	start := time.Now()
	direct, err := thermal.SolveSteady(m, rhs, thermal.MethodBandCholesky)
	if err != nil {
		return nil, err
	}
	tDirect := time.Since(start)

	start = time.Now()
	cg, err := thermal.SolveSteady(m, rhs, thermal.MethodCG)
	if err != nil {
		return nil, err
	}
	tCG := time.Since(start)

	var maxDiff float64
	for i := range direct {
		if d := math.Abs(direct[i] - cg[i]); d > maxDiff {
			maxDiff = d
		}
	}
	peakD, _ := sys.PN.PeakSilicon(direct)
	peakC, _ := sys.PN.PeakSilicon(cg)
	return []SolverAblationRow{
		{Method: "band-cholesky (direct)", Runtime: tDirect, PeakC: material.KelvinToCelsius(peakD)},
		{Method: "pcg (ic0)", Runtime: tCG, PeakC: material.KelvinToCelsius(peakC), MaxDiffC: maxDiff},
	}, nil
}

// ConvexityAblationRow reports the Theorem-4 certificate at one subrange
// count.
type ConvexityAblationRow struct {
	Ranges    int
	Certified bool
	Runtime   time.Duration
}

// RunConvexityAblation sweeps the Theorem-4 subrange count — the
// runtime/accuracy trade-off the paper describes after Theorem 4 (more
// subranges tighten the eta' lower bound at higher cost).
func RunConvexityAblation(rangeCounts []int) ([]ConvexityAblationRow, error) {
	sys, err := alphaDeployedSystem()
	if err != nil {
		return nil, err
	}
	peakTile := sys.Sites()[0]
	var rows []ConvexityAblationRow
	for _, rc := range rangeCounts {
		start := time.Now()
		ok, err := sys.ConvexityCertificate(peakTile, rc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ConvexityAblationRow{Ranges: rc, Certified: ok, Runtime: time.Since(start)})
	}
	return rows, nil
}

// LambdaToleranceRow reports one lambda_m search tolerance.
type LambdaToleranceRow struct {
	RelTol  float64
	LambdaM float64
	Runtime time.Duration
}

// RunLambdaToleranceAblation sweeps the binary-search tolerance of the
// runaway-limit computation.
func RunLambdaToleranceAblation(tols []float64) ([]LambdaToleranceRow, error) {
	sys, err := alphaDeployedSystem()
	if err != nil {
		return nil, err
	}
	var rows []LambdaToleranceRow
	for _, tol := range tols {
		start := time.Now()
		lam, err := sys.RunawayLimit(core.RunawayOptions{RelTol: tol})
		if err != nil {
			return nil, err
		}
		rows = append(rows, LambdaToleranceRow{RelTol: tol, LambdaM: lam, Runtime: time.Since(start)})
	}
	return rows, nil
}

// FormatAblations renders all four ablations into one report.
func FormatAblations(opt []OptimizerAblationRow, sol []SolverAblationRow,
	cvx []ConvexityAblationRow, lam []LambdaToleranceRow) string {
	var b strings.Builder
	b.WriteString("Ablation: current-setting optimizer\n")
	for _, r := range opt {
		fmt.Fprintf(&b, "  %-18s Iopt=%6.3f A  peak=%7.3f C  evals=%3d  %v\n",
			r.Method, r.IOptA, r.PeakC, r.Evaluations, r.Runtime.Round(time.Millisecond))
	}
	b.WriteString("Ablation: steady-state solver\n")
	for _, r := range sol {
		fmt.Fprintf(&b, "  %-22s peak=%7.3f C  maxdiff=%.2e C  %v\n",
			r.Method, r.PeakC, r.MaxDiffC, r.Runtime.Round(time.Microsecond))
	}
	b.WriteString("Ablation: Theorem-4 subrange count\n")
	for _, r := range cvx {
		fmt.Fprintf(&b, "  ranges=%2d certified=%v  %v\n", r.Ranges, r.Certified, r.Runtime.Round(time.Millisecond))
	}
	b.WriteString("Ablation: lambda_m binary-search tolerance\n")
	for _, r := range lam {
		fmt.Fprintf(&b, "  tol=%.0e lambda_m=%.6f A  %v\n", r.RelTol, r.LambdaM, r.Runtime.Round(time.Millisecond))
	}
	return b.String()
}
