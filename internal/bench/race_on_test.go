//go:build race

package bench

// raceEnabled reports whether this test binary was built with the race
// detector. See skipIfRace.
const raceEnabled = true
