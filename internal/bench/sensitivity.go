package bench

import (
	"fmt"
	"strings"

	"tecopt/internal/core"
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/power"
	"tecopt/internal/tec"
)

// Device-parameter sensitivity and deployment-strategy studies.

// ContactSensitivityRow reports one contact-conductance scaling.
type ContactSensitivityRow struct {
	// Scale multiplies the nominal g_h and g_c.
	Scale float64
	// LambdaM is the runaway limit of the Alpha greedy deployment.
	LambdaM float64
	// IOptA, PeakC are the optimized operating point.
	IOptA float64
	PeakC float64
	// SwingC is the cooling swing vs the passive chip.
	SwingC float64
}

// RunContactSensitivity sweeps the TEC contact conductances. The paper
// singles out g_h — "such thermal conductors which lie between the hot
// side and the ambient end up playing an important role in the thermal
// runaway problem" — and this study quantifies it: poorer contacts lower
// lambda_m and shrink the achievable swing.
func RunContactSensitivity(scales []float64) ([]ContactSensitivityRow, error) {
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	passive, err := core.NewSystem(core.Config{TilePower: p}, nil)
	if err != nil {
		return nil, err
	}
	peak0, _, _, err := passive.PeakAt(0)
	if err != nil {
		return nil, err
	}
	// Fix the deployment to the nominal greedy choice so the sweep
	// isolates device quality.
	dep, err := core.GreedyDeploy(core.Config{TilePower: p}, material.CelsiusToKelvin(85), core.CurrentOptions{})
	if err != nil {
		return nil, err
	}

	var rows []ContactSensitivityRow
	for _, s := range scales {
		dev := tec.ChowdhuryDevice()
		dev.ContactCold *= s
		dev.ContactHot *= s
		sys, err := core.NewSystem(core.Config{TilePower: p, Device: dev}, dep.Sites)
		if err != nil {
			return nil, err
		}
		lambda, err := sys.RunawayLimit(core.RunawayOptions{})
		if err != nil {
			return nil, err
		}
		cur, err := sys.OptimizeCurrent(core.CurrentOptions{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ContactSensitivityRow{
			Scale:   s,
			LambdaM: lambda,
			IOptA:   cur.IOpt,
			PeakC:   material.KelvinToCelsius(cur.PeakK),
			SwingC:  peak0 - cur.PeakK,
		})
	}
	return rows, nil
}

// DeploymentStrategyRow compares one deployment heuristic.
type DeploymentStrategyRow struct {
	Strategy string
	NumTECs  int
	IOptA    float64
	PeakC    float64
}

// RunDeploymentStrategies compares the paper's greedy deployment against
// two natural heuristics with the same device budget: covering the
// highest-power tiles, and covering the passively hottest tiles. On the
// Alpha chip all three select overlapping hot-cluster tiles; the study
// quantifies how much the temperature-feedback in the greedy loop
// matters.
func RunDeploymentStrategies() ([]DeploymentStrategyRow, error) {
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	cfg := core.Config{TilePower: p}

	dep, err := core.GreedyDeploy(cfg, material.CelsiusToKelvin(85), core.CurrentOptions{})
	if err != nil {
		return nil, err
	}
	budget := len(dep.Sites)
	rows := []DeploymentStrategyRow{{
		Strategy: "greedy (paper)",
		NumTECs:  budget,
		IOptA:    dep.Current.IOpt,
		PeakC:    material.KelvinToCelsius(dep.Current.PeakK),
	}}

	run := func(name string, sites []int) error {
		sys, err := core.NewSystem(cfg, sites)
		if err != nil {
			return err
		}
		cur, err := sys.OptimizeCurrent(core.CurrentOptions{})
		if err != nil {
			return err
		}
		rows = append(rows, DeploymentStrategyRow{
			Strategy: name, NumTECs: len(sites),
			IOptA: cur.IOpt, PeakC: material.KelvinToCelsius(cur.PeakK),
		})
		return nil
	}

	// Top-power tiles.
	if err := run("top-power", power.TopTiles(p, budget)); err != nil {
		return nil, err
	}
	// Passively hottest tiles.
	passive, err := core.NewSystem(cfg, nil)
	if err != nil {
		return nil, err
	}
	theta, err := passive.SolveAt(0)
	if err != nil {
		return nil, err
	}
	sil := passive.PN.SiliconTemps(theta)
	if err := run("hottest-tiles", power.TopTiles(sil, budget)); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatSensitivity renders both studies.
func FormatSensitivity(contact []ContactSensitivityRow, strategies []DeploymentStrategyRow) string {
	var b strings.Builder
	b.WriteString("Sensitivity: TEC contact conductance scale (fixed Alpha deployment)\n")
	for _, r := range contact {
		fmt.Fprintf(&b, "  scale=%4.2f lambda_m=%8.2f A  Iopt=%6.2f A  peak=%7.2f C  swing=%5.2f C\n",
			r.Scale, r.LambdaM, r.IOptA, r.PeakC, r.SwingC)
	}
	b.WriteString("Study: deployment strategy at equal device budget\n")
	for _, r := range strategies {
		fmt.Fprintf(&b, "  %-16s #TEC=%2d  Iopt=%6.2f A  peak=%7.2f C\n",
			r.Strategy, r.NumTECs, r.IOptA, r.PeakC)
	}
	return b.String()
}
