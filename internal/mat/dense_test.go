package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/num"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if !num.IsZero(m.At(i, j)) {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseFrom(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if !num.ExactEqual(m.At(0, 1), 2) || !num.ExactEqual(m.At(1, 0), 3) {
		t.Fatalf("unexpected contents: %v", m)
	}
}

func TestNewDenseFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	NewDenseFrom([][]float64{{1, 2}, {3}})
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); !num.ExactEqual(got, 7) {
		t.Fatalf("At(0,1) = %v, want 7", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	m.At(2, 0)
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !num.ExactEqual(id.At(i, j), want) {
				t.Errorf("I(%d,%d) = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestDiagonal(t *testing.T) {
	d := Diagonal([]float64{1, -2, 3})
	if !num.ExactEqual(d.At(1, 1), -2) || !num.IsZero(d.At(0, 1)) {
		t.Fatalf("unexpected diagonal matrix: %v", d)
	}
}

func TestRowColClone(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	col := m.Col(2)
	if !EqualVec(row, []float64{4, 5, 6}, 0) {
		t.Errorf("Row(1) = %v", row)
	}
	if !EqualVec(col, []float64{3, 6}, 0) {
		t.Errorf("Col(2) = %v", col)
	}
	// Mutating copies must not affect the original.
	row[0] = 99
	col[0] = 99
	if !num.ExactEqual(m.At(1, 0), 4) || !num.ExactEqual(m.At(0, 2), 3) {
		t.Error("Row/Col returned aliases, want copies")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if !num.ExactEqual(m.At(0, 0), 1) {
		t.Error("Clone returned alias")
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := NewDenseFrom([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 0) {
		t.Fatalf("a*b = %v, want %v", got, want)
	}
}

func TestMulRectangular(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 0, 2}})     // 1x3
	b := NewDenseFrom([][]float64{{1}, {2}, {3}}) // 3x1
	got := a.Mul(b)
	if got.Rows() != 1 || got.Cols() != 1 || !num.ExactEqual(got.At(0, 0), 7) {
		t.Fatalf("got %v", got)
	}
}

func TestMulVec(t *testing.T) {
	a := NewDenseFrom([][]float64{{2, 0}, {1, 3}})
	got := a.MulVec([]float64{4, 5})
	if !EqualVec(got, []float64{8, 19}, 0) {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 || !num.ExactEqual(at.At(2, 0), 3) || !num.ExactEqual(at.At(0, 1), 4) {
		t.Fatalf("transpose wrong: %v", at)
	}
}

func TestAddSubAxpyScale(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{10, 20}, {30, 40}})
	if got := a.AddMat(b).At(1, 1); !num.ExactEqual(got, 44) {
		t.Errorf("AddMat = %v, want 44", got)
	}
	if got := b.SubMat(a).At(0, 0); !num.ExactEqual(got, 9) {
		t.Errorf("SubMat = %v, want 9", got)
	}
	if got := a.AxpyMat(-2, b).At(0, 1); !num.ExactEqual(got, -38) {
		t.Errorf("AxpyMat = %v, want -38", got)
	}
	if got := a.Clone().Scale(3).At(1, 0); !num.ExactEqual(got, 9) {
		t.Errorf("Scale = %v, want 9", got)
	}
}

func TestQuadratic(t *testing.T) {
	a := NewDenseFrom([][]float64{{2, 1}, {1, 3}})
	x := []float64{1, 2}
	// x'Ax = 2 + 2 + 2 + 12 = 18
	if got := a.Quadratic(x, x); !num.ExactEqual(got, 18) {
		t.Fatalf("Quadratic = %v, want 18", got)
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := NewDenseFrom([][]float64{{1, 2}, {2, 5}})
	asym := NewDenseFrom([][]float64{{1, 2}, {3, 5}})
	if !sym.IsSymmetric(0) {
		t.Error("sym reported asymmetric")
	}
	if asym.IsSymmetric(1e-9) {
		t.Error("asym reported symmetric")
	}
	if NewDense(2, 3).IsSymmetric(0) {
		t.Error("rectangular matrix reported symmetric")
	}
}

func TestMaxAbs(t *testing.T) {
	a := NewDenseFrom([][]float64{{-7, 2}, {3, 5}})
	if got := a.MaxAbs(); !num.ExactEqual(got, 7) {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
}

// Property: (A*B)' == B' * A' for random matrices.
func TestTransposeProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := randomDense(rng, r, k), randomDense(rng, k, c)
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		return lhs.Equal(rhs, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: A*(x+y) == A*x + A*y.
func TestMulVecLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomDense(rng, r, c)
		x, y := randomVec(rng, c), randomVec(rng, c)
		xy := make([]float64, c)
		for i := range xy {
			xy[i] = x[i] + y[i]
		}
		lhs := a.MulVec(xy)
		rhs := a.MulVec(x)
		Axpy(1, a.MulVec(y), rhs)
		return EqualVec(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestString(t *testing.T) {
	s := NewDenseFrom([][]float64{{1, 2}}).String()
	if s == "" || math.IsNaN(1) {
		t.Fatal("String returned empty")
	}
}
