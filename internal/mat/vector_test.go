package mat

import (
	"math"
	"testing"

	"tecopt/internal/num"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); !num.ExactEqual(got, 32) {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); !num.IsZero(got) {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
	// Overflow-resistant accumulation.
	huge := []float64{1e200, 1e200}
	if got := Norm2(huge); math.IsInf(got, 1) {
		t.Fatal("Norm2 overflowed for large entries")
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{-9, 2, 5}); !num.ExactEqual(got, 9) {
		t.Fatalf("NormInf = %v, want 9", got)
	}
}

func TestMaxMin(t *testing.T) {
	v := []float64{3, -1, 7, 7, 2}
	mx, i := Max(v)
	if !num.ExactEqual(mx, 7) || i != 2 {
		t.Errorf("Max = (%v,%d), want (7,2)", mx, i)
	}
	mn, j := Min(v)
	if !num.ExactEqual(mn, -1) || j != 1 {
		t.Errorf("Min = (%v,%d), want (-1,1)", mn, j)
	}
}

func TestMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Max(nil)
}

func TestSumAxpyScaleFill(t *testing.T) {
	if got := Sum([]float64{1, 2, 3.5}); !num.ExactEqual(got, 6.5) {
		t.Errorf("Sum = %v", got)
	}
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if !EqualVec(y, []float64{7, 9}, 0) {
		t.Errorf("Axpy = %v", y)
	}
	ScaleVec(0.5, y)
	if !EqualVec(y, []float64{3.5, 4.5}, 0) {
		t.Errorf("ScaleVec = %v", y)
	}
	Fill(y, -1)
	if !EqualVec(y, []float64{-1, -1}, 0) {
		t.Errorf("Fill = %v", y)
	}
}

func TestCloneVecIndependent(t *testing.T) {
	x := []float64{1, 2}
	y := CloneVec(x)
	y[0] = 9
	if !num.ExactEqual(x[0], 1) {
		t.Fatal("CloneVec aliased input")
	}
}

func TestUnit(t *testing.T) {
	e := Unit(4, 2)
	if !EqualVec(e, []float64{0, 0, 1, 0}, 0) {
		t.Fatalf("Unit = %v", e)
	}
}

func TestUnitOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Unit(3, 3)
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2}) {
		t.Error("finite slice reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}

func TestEqualVec(t *testing.T) {
	if !EqualVec([]float64{1, 2}, []float64{1.0000001, 2}, 1e-5) {
		t.Error("EqualVec too strict")
	}
	if EqualVec([]float64{1}, []float64{1, 2}, 1) {
		t.Error("EqualVec ignored length mismatch")
	}
}
