package mat

import (
	"errors"
	"fmt"
	"math"

	"tecopt/internal/num"
)

// ErrSingular is returned when a factorization encounters an (effectively)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting: P A = L U.
// It handles the general (possibly unsymmetric or indefinite) systems that
// arise when probing G - i*D beyond the runaway limit lambda_m, where
// Cholesky no longer applies.
type LU struct {
	n     int
	lu    *Dense // packed: L below diagonal (unit diag implicit), U on/above
	piv   []int  // row permutation
	signP float64
}

// NewLU factors the square matrix a with partial pivoting.
// It returns ErrSingular if a pivot is exactly zero.
func NewLU(a *Dense) (*LU, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("mat: LU of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		max := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > max {
				max, p = a, i
			}
		}
		if num.IsZero(max) {
			return nil, ErrSingular
		}
		if p != k {
			rowK := lu.data[k*n : (k+1)*n]
			rowP := lu.data[p*n : (p+1)*n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu.data[i*n+k] / pivVal
			lu.data[i*n+k] = m
			if num.IsZero(m) {
				continue
			}
			rowI := lu.data[i*n+k+1 : (i+1)*n]
			rowK := lu.data[k*n+k+1 : (k+1)*n]
			for j, v := range rowK {
				rowI[j] -= m * v
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, signP: sign}, nil
}

// Size returns the order of the factored matrix.
func (f *LU) Size() int { return f.n }

// Solve solves A x = b.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic(fmt.Sprintf("mat: LU.Solve rhs length %d, want %d", len(b), f.n))
	}
	n := f.n
	x := make([]float64, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward: L y = P b (unit lower triangular).
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu.data[i*n : i*n+i]
		for k, v := range row {
			s -= v * x[k]
		}
		x[i] = s
	}
	// Backward: U x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.lu.data[i*n+i+1 : (i+1)*n]
		for k, v := range row {
			s -= v * x[i+1+k]
		}
		x[i] = s / f.lu.data[i*n+i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.signP
	for i := 0; i < f.n; i++ {
		d *= f.lu.data[i*f.n+i]
	}
	return d
}

// Inverse returns A^{-1}.
func (f *LU) Inverse() *Dense {
	n := f.n
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		x := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.data[i*n+j] = x[i]
		}
		e[j] = 0
	}
	return inv
}

// SolveDense solves A X = B column by column and returns X.
func (f *LU) SolveDense(b *Dense) *Dense {
	if b.rows != f.n {
		panic(fmt.Sprintf("mat: LU.SolveDense rhs rows %d, want %d", b.rows, f.n))
	}
	x := NewDense(f.n, b.cols)
	col := make([]float64, f.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < f.n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		sol := f.Solve(col)
		for i := 0; i < f.n; i++ {
			x.data[i*b.cols+j] = sol[i]
		}
	}
	return x
}
