package mat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/num"
)

func TestIsStieltjes(t *testing.T) {
	good := NewDenseFrom([][]float64{
		{2, -1, 0},
		{-1, 3, -1},
		{0, -1, 2},
	})
	if !IsStieltjes(good, 1e-12) {
		t.Error("Laplacian-like matrix not recognized as Stieltjes")
	}
	badOffDiag := NewDenseFrom([][]float64{{2, 1}, {1, 2}})
	if IsStieltjes(badOffDiag, 1e-12) {
		t.Error("positive off-diagonal accepted")
	}
	asym := NewDenseFrom([][]float64{{2, -1}, {-0.5, 2}})
	if IsStieltjes(asym, 1e-12) {
		t.Error("asymmetric matrix accepted")
	}
}

func TestIsIrreducible(t *testing.T) {
	connected := NewDenseFrom([][]float64{
		{2, -1, 0},
		{-1, 3, -1},
		{0, -1, 2},
	})
	if !IsIrreducible(connected) {
		t.Error("connected matrix reported reducible")
	}
	// Block-diagonal (direct sum) => reducible per Definition 1.
	blockDiag := NewDenseFrom([][]float64{
		{2, -1, 0, 0},
		{-1, 2, 0, 0},
		{0, 0, 3, -1},
		{0, 0, -1, 3},
	})
	if IsIrreducible(blockDiag) {
		t.Error("direct sum reported irreducible")
	}
	if !IsIrreducible(NewDense(0, 0)) {
		t.Error("empty matrix should be trivially irreducible")
	}
	if IsIrreducible(NewDense(2, 3)) {
		t.Error("non-square matrix should be rejected")
	}
}

func TestIsDiagonallyDominant(t *testing.T) {
	strict := NewDenseFrom([][]float64{
		{3, -1},
		{-1, 1.5},
	})
	dom, s := IsDiagonallyDominant(strict)
	if !dom || !s {
		t.Errorf("strict DD matrix: dominant=%v strict=%v", dom, s)
	}
	// Pure Laplacian: weakly dominant, no strict row.
	lap := NewDenseFrom([][]float64{
		{1, -1},
		{-1, 1},
	})
	dom, s = IsDiagonallyDominant(lap)
	if !dom || s {
		t.Errorf("Laplacian: dominant=%v strict=%v, want true,false", dom, s)
	}
	not := NewDenseFrom([][]float64{
		{1, -2},
		{-2, 1},
	})
	if dom, _ = IsDiagonallyDominant(not); dom {
		t.Error("non-dominant matrix accepted")
	}
}

func TestDiagMul(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	got := DiagMul([]float64{2, 3}, a, []float64{5, 7})
	want := NewDenseFrom([][]float64{{10, 28}, {45, 84}})
	if !got.Equal(want, 0) {
		t.Fatalf("DiagMul = %v, want %v", got, want)
	}
	// Explicit check against full matrix products.
	d := Diagonal([]float64{2, 3})
	e := Diagonal([]float64{5, 7})
	if !got.Equal(d.Mul(a).Mul(e), 1e-12) {
		t.Fatal("DiagMul disagrees with DIAG(d)*A*DIAG(e)")
	}
}

func TestSymmetrize(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {4, 3}})
	Symmetrize(a)
	if !num.ExactEqual(a.At(0, 1), 3) || !num.ExactEqual(a.At(1, 0), 3) {
		t.Fatalf("Symmetrize = %v", a)
	}
}

func TestRandomStieltjesDeterministic(t *testing.T) {
	a := RandomStieltjes(rand.New(rand.NewSource(7)), 6, 0.4)
	b := RandomStieltjes(rand.New(rand.NewSource(7)), 6, 0.4)
	if !a.Equal(b, 0) {
		t.Fatal("RandomStieltjes not deterministic for fixed seed")
	}
}

func TestRandomStieltjesSizeOnePanicFree(t *testing.T) {
	a := RandomStieltjes(rand.New(rand.NewSource(1)), 1, 0.5)
	if !IsPositiveDefinite(a) {
		t.Fatal("1x1 random Stieltjes not PD")
	}
}

func TestRandomStieltjesZeroOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	RandomStieltjes(rand.New(rand.NewSource(1)), 0, 0.5)
}

// Property (Lemma 3): a PD Stieltjes matrix is inverse-positive — its
// inverse has only nonnegative entries. This underpins the physical
// sanity of the thermal model (positive power cannot cool any node).
func TestStieltjesInversePositiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := RandomStieltjes(rng, n, 0.3)
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		inv := c.Inverse()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if inv.At(i, j) < -1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the inverse of a symmetric matrix is symmetric (reciprocity of
// thermal transfer coefficients, h_kl = h_lk).
func TestInverseSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := RandomStieltjes(rng, n, 0.4)
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		return c.Inverse().IsSymmetric(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
