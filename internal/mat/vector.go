package mat

import (
	"fmt"
	"math"

	"tecopt/internal/num"
)

// Vector helpers. Thermal solvers pass temperature and power profiles as
// plain []float64; these free functions keep that code terse without a
// wrapper type.

// Dot returns the inner product x . y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for the huge temperatures that
	// appear when probing past the runaway limit.
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if num.IsZero(v) {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of x (0 for empty slices).
func NormInf(x []float64) float64 {
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Max returns the maximum entry of x and its index.
// It panics for empty slices.
func Max(x []float64) (float64, int) {
	if len(x) == 0 {
		panic("mat: Max of empty slice")
	}
	mx, idx := x[0], 0
	for i, v := range x[1:] {
		if v > mx {
			mx, idx = v, i+1
		}
	}
	return mx, idx
}

// Min returns the minimum entry of x and its index.
// It panics for empty slices.
func Min(x []float64) (float64, int) {
	if len(x) == 0 {
		panic("mat: Min of empty slice")
	}
	mn, idx := x[0], 0
	for i, v := range x[1:] {
		if v < mn {
			mn, idx = v, i+1
		}
	}
	return mn, idx
}

// Sum returns the sum of all entries.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Fill sets every entry of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Unit returns the standard basis vector e_i of length n.
func Unit(n, i int) []float64 {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("mat: Unit index %d out of range %d", i, n))
	}
	e := make([]float64, n)
	e[i] = 1
	return e
}

// EqualVec reports whether x and y agree element-wise within tol.
func EqualVec(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i, v := range x {
		if math.Abs(v-y[i]) > tol {
			return false
		}
	}
	return true
}

// AllFinite reports whether every entry of x is finite.
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
