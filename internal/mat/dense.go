// Package mat provides the dense linear-algebra substrate used by the
// thermal models and the cooling-system optimizer: dense matrices and
// vectors, Cholesky and LU factorizations, triangular solves, inverses,
// determinants and positive-definiteness tests.
//
// Everything is implemented from scratch on float64 and kept deliberately
// simple: the compact thermal networks solved in this repository have at
// most a few thousand nodes, so O(n^3) direct methods are perfectly
// adequate (and are exactly what the paper prescribes for its
// positive-definiteness checks). Larger grid models use package sparse.
package mat

import (
	"fmt"
	"math"
	"strings"

	"tecopt/internal/num"
)

// Dense is a row-major dense matrix.
//
// The zero value is an empty matrix; use NewDense or one of the
// constructors to create a usable instance.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewDense returns a rows x cols matrix of zeros.
// It panics if either dimension is negative.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of row slices.
// All rows must have equal length.
func NewDenseFrom(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged input: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diagonal returns a square matrix with d along its main diagonal.
func Diagonal(d []float64) *Dense {
	n := len(d)
	m := NewDense(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// IsSquare reports whether the matrix is square.
func (m *Dense) IsSquare() bool { return m.rows == m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Scale multiplies every element by s in place and returns the receiver.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMat returns m + b as a new matrix.
func (m *Dense) AddMat(b *Dense) *Dense {
	m.dimCheck(b)
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// SubMat returns m - b as a new matrix.
func (m *Dense) SubMat(b *Dense) *Dense {
	m.dimCheck(b)
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// AxpyMat computes m + s*b as a new matrix.
func (m *Dense) AxpyMat(s float64, b *Dense) *Dense {
	m.dimCheck(b)
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += s * v
	}
	return out
}

func (m *Dense) dimCheck(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product m * b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: product dimension mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*b.cols : (i+1)*b.cols]
		for k, mik := range mi {
			if num.IsZero(mik) {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * x.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range mi {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// IsSymmetric reports whether the matrix is symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	n := m.rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(m.data[i*n+j]-m.data[j*n+i]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Quadratic returns the quadratic form x' * m * y.
func (m *Dense) Quadratic(x, y []float64) float64 {
	if len(x) != m.rows || len(y) != m.cols {
		panic("mat: Quadratic dimension mismatch")
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		var row float64
		for j, v := range mi {
			row += v * y[j]
		}
		s += x[i] * row
	}
	return s
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .6g", m.data[i*m.cols+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Equal reports whether m and b have the same shape and elements within tol.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}
