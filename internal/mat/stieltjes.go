package mat

import (
	"math"
	"math/rand"

	"tecopt/internal/num"
)

// Stieltjes-matrix utilities.
//
// The paper's whole optimality theory (Section V) rests on G being an
// irreducible positive definite Stieltjes matrix: real, symmetric, with
// nonpositive off-diagonal entries (Definition 3, after Varga). These
// helpers verify that structure and generate random instances for the
// Conjecture-1 verification campaign.

// IsStieltjes reports whether a is symmetric (within tol) with nonpositive
// off-diagonal entries. Positive definiteness is checked separately.
func IsStieltjes(a *Dense, tol float64) bool {
	if !a.IsSymmetric(tol) {
		return false
	}
	n := a.rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && a.data[i*n+j] > tol {
				return false
			}
		}
	}
	return true
}

// IsIrreducible reports whether the square matrix a is irreducible, i.e.
// the directed graph with an edge i->j whenever a_ij != 0 is strongly
// connected (Definition 1). For the symmetric matrices used here this is
// plain graph connectivity, checked with a breadth-first search.
func IsIrreducible(a *Dense) bool {
	if !a.IsSquare() {
		return false
	}
	n := a.rows
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if v != u && !seen[v] && (!num.IsZero(a.data[u*n+v]) || !num.IsZero(a.data[v*n+u])) {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == n
}

// IsDiagonallyDominant reports whether every row of a satisfies
// |a_ii| >= sum_{j != i} |a_ij|, with strict inequality in at least one
// row. A symmetric Stieltjes matrix with this property and an irreducible
// sparsity pattern is positive definite — exactly the structure of the
// thermal conductance matrix G (ground legs via convection make some rows
// strictly dominant).
func IsDiagonallyDominant(a *Dense) (dominant, strictSomewhere bool) {
	if !a.IsSquare() {
		return false, false
	}
	n := a.rows
	strict := false
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(a.data[i*n+j])
			}
		}
		d := math.Abs(a.data[i*n+i])
		if d < off-1e-12*(d+off) {
			return false, false
		}
		if d > off+1e-12*(d+off) {
			strict = true
		}
	}
	return true, strict
}

// RandomStieltjes generates a random irreducible positive definite
// Stieltjes matrix of order n using the given source. The construction
// mirrors a thermal conductance network: a random connected graph with
// positive edge weights produces a weighted Laplacian (symmetric,
// nonpositive off-diagonals, singular), and random positive "ground legs"
// added to the diagonal make it strictly diagonally dominant, hence
// positive definite. density in (0,1] controls extra random edges beyond
// the connecting spanning tree.
func RandomStieltjes(rng *rand.Rand, n int, density float64) *Dense {
	if n <= 0 {
		panic("mat: RandomStieltjes order must be positive")
	}
	a := NewDense(n, n)
	addEdge := func(i, j int, w float64) {
		a.data[i*n+j] -= w
		a.data[j*n+i] -= w
		a.data[i*n+i] += w
		a.data[j*n+j] += w
	}
	// Random spanning tree keeps the matrix irreducible.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		addEdge(u, v, 0.1+rng.Float64())
	}
	// Extra edges.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density && num.IsZero(a.data[i*n+j]) {
				addEdge(i, j, 0.1+rng.Float64())
			}
		}
	}
	// Ground legs: at least one strict row; make all rows strict for
	// robust positive definiteness at every order.
	for i := 0; i < n; i++ {
		a.data[i*n+i] += 0.05 + rng.Float64()
	}
	return a
}

// DiagMul returns DIAG(d) * a * DIAG(e): element (i,j) becomes
// d_i * a_ij * e_j. This is the DIAG(h_k) * H * DIAG(h_l) construction of
// Conjecture 1.
func DiagMul(d []float64, a *Dense, e []float64) *Dense {
	if len(d) != a.rows || len(e) != a.cols {
		panic("mat: DiagMul dimension mismatch")
	}
	out := a.Clone()
	n := a.cols
	for i := 0; i < a.rows; i++ {
		for j := 0; j < n; j++ {
			out.data[i*n+j] *= d[i] * e[j]
		}
	}
	return out
}

// Symmetrize replaces a with (a + a')/2 in place and returns it. Useful to
// clean up tiny asymmetries before a Cholesky-based PD test.
func Symmetrize(a *Dense) *Dense {
	n := a.rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (a.data[i*n+j] + a.data[j*n+i])
			a.data[i*n+j] = v
			a.data[j*n+i] = v
		}
	}
	return a
}
