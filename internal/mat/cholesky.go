package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L * L'.
type Cholesky struct {
	n int
	l *Dense // lower triangular, upper part zero
}

// NewCholesky factors the symmetric positive definite matrix a.
// Only the lower triangle of a is read. It returns
// ErrNotPositiveDefinite if a pivot is not strictly positive, which is the
// paper's O(n^3) positive-definiteness test (Section V.C.1).
func NewCholesky(a *Dense) (*Cholesky, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("mat: Cholesky of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		// Diagonal pivot.
		d := a.data[j*n+j]
		lj := l.data[j*n : (j+1)*n]
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		piv := math.Sqrt(d)
		lj[j] = piv
		// Column below the pivot.
		for i := j + 1; i < n; i++ {
			s := a.data[i*n+j]
			li := l.data[i*n : i*n+j]
			for k, v := range li {
				s -= v * lj[k]
			}
			l.data[i*n+j] = s / piv
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// IsPositiveDefinite reports whether the symmetric matrix a is positive
// definite, using a Cholesky factorization attempt.
func IsPositiveDefinite(a *Dense) bool {
	_, err := NewCholesky(a)
	return err == nil
}

// Size returns the order of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// Solve solves A x = b for x, where A = L L' is the factored matrix.
func (c *Cholesky) Solve(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("mat: Cholesky.Solve rhs length %d, want %d", len(b), c.n))
	}
	y := c.forward(b)
	return c.backward(y)
}

// SolveInPlace solves A x = b and stores the result in dst (which may be b).
func (c *Cholesky) SolveInPlace(dst, b []float64) {
	x := c.Solve(b)
	copy(dst, x)
}

// forward solves L y = b.
func (c *Cholesky) forward(b []float64) []float64 {
	n := c.n
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		li := c.l.data[i*n : i*n+i]
		for k, v := range li {
			s -= v * y[k]
		}
		y[i] = s / c.l.data[i*n+i]
	}
	return y
}

// backward solves L' x = y.
func (c *Cholesky) backward(y []float64) []float64 {
	n := c.n
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.data[k*n+i] * x[k]
		}
		x[i] = s / c.l.data[i*n+i]
	}
	return x
}

// Inverse returns A^{-1} as a dense matrix, solving against the columns of
// the identity. For the compact thermal models this is H = (G - i D)^{-1},
// whose entries h_kl the paper analyzes directly.
func (c *Cholesky) Inverse() *Dense {
	n := c.n
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		x := c.Solve(e)
		for i := 0; i < n; i++ {
			inv.data[i*n+j] = x[i]
		}
		e[j] = 0
	}
	return inv
}

// LogDet returns the natural logarithm of det(A) = prod diag(L)^2.
// Working in log space avoids overflow for large networks.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.data[i*c.n+i])
	}
	return 2 * s
}

// Det returns det(A). It may overflow to +Inf for large systems; prefer
// LogDet when only the magnitude's sign/scale matters.
func (c *Cholesky) Det() float64 {
	return math.Exp(c.LogDet())
}
