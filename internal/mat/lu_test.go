package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolve(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{0, 2, 1}, // zero pivot forces a row swap
		{1, 1, 1},
		{2, 0, 3},
	})
	f, err := NewLU(a)
	if err != nil {
		t.Fatalf("NewLU: %v", err)
	}
	want := []float64{1, 2, -1}
	got := f.Solve(a.MulVec(want))
	if !EqualVec(got, want, 1e-12) {
		t.Fatalf("Solve = %v, want %v", got, want)
	}
}

func TestLUDet(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-2)) > 1e-12 {
		t.Fatalf("Det = %v, want -2", got)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := NewLU(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

// mustLU factors a known-nonsingular matrix, failing the test if the
// factorization unexpectedly reports an error.
func mustLU(t *testing.T, a *Dense) *LU {
	t.Helper()
	f, err := NewLU(a)
	if err != nil {
		t.Fatalf("NewLU: %v", err)
	}
	return f
}

func TestLUInverse(t *testing.T) {
	a := NewDenseFrom([][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}})
	f := mustLU(t, a)
	inv := f.Inverse()
	if got := a.Mul(inv); !got.Equal(Identity(3), 1e-12) {
		t.Fatalf("A*A^-1 = %v, want I", got)
	}
}

func TestLUSolveDense(t *testing.T) {
	a := NewDenseFrom([][]float64{{2, 1}, {1, 3}})
	x := NewDenseFrom([][]float64{{1, 0, 2}, {-1, 1, 0}})
	b := a.Mul(x)
	f := mustLU(t, a)
	got := f.SolveDense(b)
	if !got.Equal(x, 1e-12) {
		t.Fatalf("SolveDense = %v, want %v", got, x)
	}
}

func TestLUSolveWrongLenPanics(t *testing.T) {
	f := mustLU(t, Identity(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong rhs length")
		}
	}()
	f.Solve([]float64{1})
}

// Property: LU and Cholesky agree on random SPD systems.
func TestLUCholeskyAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		m := randomDense(rng, n, n)
		a := m.T().Mul(m)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		b := randomVec(rng, n)
		lu, err1 := NewLU(a)
		ch, err2 := NewCholesky(a)
		if err1 != nil || err2 != nil {
			return false
		}
		return EqualVec(lu.Solve(b), ch.Solve(b), 1e-7*(1+NormInf(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: det(A) from LU matches the 2x2/3x3 closed forms.
func TestLUDetClosedFormProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 2, 2)
		f2, err := NewLU(a)
		if err != nil {
			return true // singular random draws are fine to skip
		}
		want := a.At(0, 0)*a.At(1, 1) - a.At(0, 1)*a.At(1, 0)
		return math.Abs(f2.Det()-want) <= 1e-10*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
