package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/num"
)

func spd3() *Dense {
	// A small SPD matrix with known factor.
	return NewDenseFrom([][]float64{
		{4, 2, 0},
		{2, 5, 1},
		{0, 1, 3},
	})
}

// mustCholesky factors a known-SPD matrix, failing the test if the
// factorization unexpectedly reports an error.
func mustCholesky(t *testing.T, a *Dense) *Cholesky {
	t.Helper()
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	return c
}

func TestCholeskyReconstruction(t *testing.T) {
	a := spd3()
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	l := c.L()
	got := l.Mul(l.T())
	if !got.Equal(a, 1e-12) {
		t.Fatalf("L*L' = %v, want %v", got, a)
	}
	// Upper triangle of L must be zero.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if !num.IsZero(l.At(i, j)) {
				t.Errorf("L(%d,%d) = %v, want 0", i, j, l.At(i, j))
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	a := spd3()
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	got := c.Solve(b)
	if !EqualVec(got, want, 1e-12) {
		t.Fatalf("Solve = %v, want %v", got, want)
	}
}

func TestCholeskySolveInPlace(t *testing.T) {
	a := spd3()
	c := mustCholesky(t, a)
	want := []float64{0.5, 2, -1}
	b := a.MulVec(want)
	dst := make([]float64, 3)
	c.SolveInPlace(dst, b)
	if !EqualVec(dst, want, 1e-12) {
		t.Fatalf("SolveInPlace = %v, want %v", dst, want)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	// Indefinite matrix.
	a := NewDenseFrom([][]float64{{1, 2}, {2, 1}})
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if IsPositiveDefinite(a) {
		t.Error("IsPositiveDefinite = true for indefinite matrix")
	}
	if !IsPositiveDefinite(spd3()) {
		t.Error("IsPositiveDefinite = false for SPD matrix")
	}
}

func TestCholeskySingularRejected(t *testing.T) {
	// Singular PSD matrix (rank 1).
	a := NewDenseFrom([][]float64{{1, 1}, {1, 1}})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected failure for singular matrix")
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestCholeskyInverse(t *testing.T) {
	a := spd3()
	c := mustCholesky(t, a)
	inv := c.Inverse()
	if got := a.Mul(inv); !got.Equal(Identity(3), 1e-12) {
		t.Fatalf("A * A^-1 = %v, want I", got)
	}
}

func TestCholeskyDet(t *testing.T) {
	a := spd3()
	c := mustCholesky(t, a)
	// det = 4*(15-1) - 2*(6-0) = 56 - 12 = 44
	if got := c.Det(); math.Abs(got-44) > 1e-9 {
		t.Fatalf("Det = %v, want 44", got)
	}
	if got := c.LogDet(); math.Abs(got-math.Log(44)) > 1e-12 {
		t.Fatalf("LogDet = %v, want log(44)", got)
	}
}

func TestCholeskySolveWrongLenPanics(t *testing.T) {
	c := mustCholesky(t, spd3())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong rhs length")
		}
	}()
	c.Solve([]float64{1, 2})
}

// Property: for random SPD matrices A = M'M + eps*I, Cholesky succeeds and
// Solve inverts MulVec.
func TestCholeskyRandomSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		m := randomDense(rng, n, n)
		a := m.T().Mul(m)
		for i := 0; i < n; i++ {
			a.Add(i, i, 0.5)
		}
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		want := randomVec(rng, n)
		got := c.Solve(a.MulVec(want))
		return EqualVec(got, want, 1e-6*(1+NormInf(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: random Stieltjes matrices from our generator are PD and
// Cholesky-factorable.
func TestRandomStieltjesIsPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := RandomStieltjes(rng, n, 0.3)
		return IsStieltjes(a, 1e-12) && IsIrreducible(a) && IsPositiveDefinite(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
