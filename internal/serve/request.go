package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"

	"tecopt/internal/chipload"
	"tecopt/internal/core"
	"tecopt/internal/tecerr"
)

// ChipSpec selects the chip model for a request, mirroring the CLI
// tools' chip flags: either a named benchmark chip (alpha, hc01..hc10,
// hc:<seed>) or an explicit tiling with per-tile powers. File-based
// chips (.flp/.ptrace) are deliberately not exposed — the service does
// not read client-named paths.
type ChipSpec struct {
	// Name is "alpha" (the default), "hc01".."hc10", or "hc:<seed>".
	// Mutually exclusive with TilePowerW.
	Name string `json:"name,omitempty"`
	// Cols, Rows tile the die for an explicit power map (default
	// 12x12).
	Cols int `json:"cols,omitempty"`
	Rows int `json:"rows,omitempty"`
	// TilePowerW is the explicit worst-case per-tile power map (W),
	// length Cols*Rows.
	TilePowerW []float64 `json:"tile_power_w,omitempty"`
	// SpreaderCells, SinkCells set the coarse-layer resolutions for an
	// explicit power map (defaults 20, 20); ignored for named chips.
	SpreaderCells int `json:"spreader_cells,omitempty"`
	SinkCells     int `json:"sink_cells,omitempty"`
}

// common carries the request fields shared by every /v1 endpoint.
type common struct {
	Chip ChipSpec `json:"chip"`
	// Sites lists the tile indices carrying TECs (the deployment).
	Sites []int `json:"sites"`
	// DeadlineMS caps this request's wall time in milliseconds; 0
	// selects the server default, and the server maximum always
	// applies.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// envelope is the pre-decode peek that extracts only the deadline, so
// the pipeline can build the request context before the endpoint
// decodes its full body.
type envelope struct {
	DeadlineMS int64 `json:"deadline_ms"`
}

type solveRequest struct {
	common
	// CurrentA is the shared supply current (A).
	CurrentA float64 `json:"current_a"`
	// Field requests the full per-tile silicon temperature map in the
	// response.
	Field bool `json:"field,omitempty"`
}

type solveResponse struct {
	PeakC     float64   `json:"peak_c"`
	PeakTile  int       `json:"peak_tile"`
	TECPowerW float64   `json:"tec_power_w"`
	TilesC    []float64 `json:"tiles_c,omitempty"`
}

type optimizeRequest struct {
	common
	// Method is "golden" (default), "gradient", or "brent".
	Method string `json:"method,omitempty"`
}

type optimizeResponse struct {
	IOptA     float64 `json:"i_opt_a"`
	PeakC     float64 `json:"peak_c"`
	PeakTile  int     `json:"peak_tile"`
	TECPowerW float64 `json:"tec_power_w"`
	// LambdaMA is the runaway limit bounding the search; null when the
	// system has no finite limit (JSON cannot carry +Inf).
	LambdaMA    *float64 `json:"lambda_m_a"`
	Evaluations int      `json:"evaluations"`
}

type runawayRequest struct {
	common
}

type runawayResponse struct {
	// HasLimit reports whether the deployment has a finite thermal-
	// runaway current; LambdaMA is null when it does not.
	HasLimit bool     `json:"has_limit"`
	LambdaMA *float64 `json:"lambda_m_a"`
}

type sweepRequest struct {
	common
	// K, L select the transfer-matrix entry h_kl (tile indices;
	// default 0, 0).
	K int `json:"k"`
	L int `json:"l"`
	// CurrentsA are the sample currents (A).
	CurrentsA []float64 `json:"currents_a"`
}

// sweepPoint is one sample of the h_kl sweep. A point past the runaway
// limit (G - iD not positive definite) reports runaway=true with a
// null h — the mathematical value is +Inf, which JSON cannot carry.
type sweepPoint struct {
	CurrentA float64  `json:"current_a"`
	H        *float64 `json:"h,omitempty"`
	Runaway  bool     `json:"runaway,omitempty"`
}

// sweepResponse reports the sweep samples. On a deadline expiry the
// endpoint flushes this same shape as a partial result: Done < Total
// and unfinished entries in Points are null.
type sweepResponse struct {
	K      int           `json:"k"`
	L      int           `json:"l"`
	Points []*sweepPoint `json:"points"`
	Done   int           `json:"done"`
	Total  int           `json:"total"`
	// Coalesced counts points answered by piggybacking on an identical
	// in-flight computation instead of solving again.
	Coalesced int `json:"coalesced,omitempty"`
}

// errorResponse is the JSON body of every non-2xx API response. Code
// is the tecerr class string ("not_pd", "overload", ...), which is
// finer-grained than the HTTP status: several classes map to 500, so
// clients and chaos tests match on the code.
type errorResponse struct {
	Error errorBody `json:"error"`
	// Partial carries whatever the endpoint completed before failing
	// (sweeps flush finished points on a deadline expiry).
	Partial any `json:"partial,omitempty"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// resolveSystem turns a chip spec + deployment into a *core.System
// through the content-addressed cache: requests naming the same chip
// and sites share one assembled system — and through its generation,
// the process-wide factorization and SMW solver caches. The returned
// system is shared and read-only by contract (core.System solves are
// concurrency-safe).
func (s *Server) resolveSystem(spec ChipSpec, sites []int) (*core.System, error) {
	cfg, err := resolveConfig(spec)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	key, err := systemKey(cfg, sites)
	if err != nil {
		return nil, err
	}
	return s.systems.Do(key, func() (*core.System, error) {
		return core.NewSystem(cfg, sites)
	})
}

// resolveConfig maps the wire spec onto a core.Config.
func resolveConfig(spec ChipSpec) (core.Config, error) {
	if len(spec.TilePowerW) > 0 {
		if spec.Name != "" {
			return core.Config{}, tecerr.New(tecerr.CodeInvalidInput, "serve.request",
				"serve: chip.name and chip.tile_power_w are mutually exclusive")
		}
		for _, p := range spec.TilePowerW {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				// json.Unmarshal rejects non-finite literals already; this
				// guards any future decoder change.
				return core.Config{}, tecerr.New(tecerr.CodeInvalidInput, "serve.request",
					"serve: chip.tile_power_w has a non-finite entry")
			}
		}
		return core.Config{
			Cols: spec.Cols, Rows: spec.Rows,
			SpreaderCells: spec.SpreaderCells, SinkCells: spec.SinkCells,
			TilePower: spec.TilePowerW,
		}, nil
	}
	loaded, err := chipload.Load(chipload.Spec{Name: spec.Name, Cols: spec.Cols, Rows: spec.Rows})
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Geom: loaded.Geom,
		Cols: loaded.Grid.Cols, Rows: loaded.Grid.Rows,
		TilePower: loaded.TilePower,
	}, nil
}

// systemKey content-addresses a resolved configuration + deployment.
// The canonical form is the JSON encoding of the fully resolved
// Config and sorted-as-given sites: Go structs marshal fields in
// declaration order and float64s round-trip exactly, so equal inputs
// hash equal and any parameter change (geometry, device, powers,
// deployment) changes the key.
func systemKey(cfg core.Config, sites []int) (string, error) {
	canon, err := json.Marshal(struct {
		Cfg   core.Config
		Sites []int
	}{cfg, sites})
	if err != nil {
		return "", tecerr.Wrapf(tecerr.CodeInternal, "serve.request", err,
			"serve: canonicalizing system key")
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// finiteOrNil boxes v for JSON, mapping non-finite values (notably the
// +Inf runaway limit) to null.
func finiteOrNil(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}
