package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tecopt/internal/faults"
	"tecopt/internal/tecerr"
)

// tinyChip is a 4x4 explicit power map with coarse 5x5 layers — the
// same small model the library chaos tests use, kept fast under -race.
func tinyChip() ChipSpec {
	p := make([]float64, 16)
	for i := range p {
		p[i] = 0.15
	}
	p[5] = 1.2
	return ChipSpec{Cols: 4, Rows: 4, SpreaderCells: 5, SinkCells: 5, TilePowerW: p}
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one JSON request and decodes the response body into a
// generic map alongside the status code.
func post(t *testing.T, url string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("response %q is not JSON: %v", data, err)
	}
	return resp.StatusCode, m, resp.Header
}

// errCode extracts error.code from a decoded error body.
func errCode(t *testing.T, m map[string]any) string {
	t.Helper()
	e, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error object: %v", m)
	}
	code, _ := e["code"].(string)
	return code
}

func TestSolveEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, m, _ := post(t, ts.URL+"/v1/solve", solveRequest{
		common:   common{Chip: tinyChip(), Sites: []int{5}},
		CurrentA: 0.5,
		Field:    true,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %v", status, m)
	}
	peak, ok := m["peak_c"].(float64)
	if !ok || peak < 25 || peak > 200 {
		t.Errorf("peak_c = %v, want a plausible temperature", m["peak_c"])
	}
	if _, ok := m["tec_power_w"].(float64); !ok {
		t.Errorf("tec_power_w = %v, want a finite number", m["tec_power_w"])
	}
	tiles, ok := m["tiles_c"].([]any)
	if !ok || len(tiles) != 16 {
		t.Errorf("tiles_c has %d entries, want 16", len(tiles))
	}
}

func TestOptimizeAndRunawayEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := common{Chip: tinyChip(), Sites: []int{5}}

	status, m, _ := post(t, ts.URL+"/v1/runaway-limit", runawayRequest{common: req})
	if status != http.StatusOK {
		t.Fatalf("runaway status = %d, body %v", status, m)
	}
	if has, _ := m["has_limit"].(bool); !has {
		t.Fatalf("tiny system should have a finite runaway limit: %v", m)
	}
	lambda, _ := m["lambda_m_a"].(float64)
	if lambda <= 0 {
		t.Fatalf("lambda_m_a = %v, want > 0", m["lambda_m_a"])
	}

	status, m, _ = post(t, ts.URL+"/v1/optimize-current", optimizeRequest{common: req})
	if status != http.StatusOK {
		t.Fatalf("optimize status = %d, body %v", status, m)
	}
	iopt, _ := m["i_opt_a"].(float64)
	if iopt <= 0 || iopt >= lambda {
		t.Errorf("i_opt_a = %v, want in (0, lambda_m=%g)", m["i_opt_a"], lambda)
	}
	if m["evaluations"].(float64) <= 0 {
		t.Errorf("evaluations = %v, want > 0", m["evaluations"])
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, m, _ := post(t, ts.URL+"/v1/sweep", sweepRequest{
		common:    common{Chip: tinyChip(), Sites: []int{5}},
		K:         5,
		L:         5,
		CurrentsA: []float64{0, 0.2, 0.4, 0.6},
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %v", status, m)
	}
	if int(m["done"].(float64)) != 4 || int(m["total"].(float64)) != 4 {
		t.Fatalf("done/total = %v/%v, want 4/4", m["done"], m["total"])
	}
	points := m["points"].([]any)
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	for i, p := range points {
		pt := p.(map[string]any)
		if _, ok := pt["h"].(float64); !ok {
			t.Errorf("point %d has no finite h: %v", i, pt)
		}
	}
}

// TestSweepRunawayPoints pins the Theorem 2 contract on the wire: a
// current past lambda_m is a runaway=true point with a null h, not an
// error.
func TestSweepRunawayPoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, m, _ := post(t, ts.URL+"/v1/runaway-limit", runawayRequest{
		common: common{Chip: tinyChip(), Sites: []int{5}},
	})
	if status != http.StatusOK {
		t.Fatalf("runaway status = %d", status)
	}
	lambda := m["lambda_m_a"].(float64)

	status, m, _ = post(t, ts.URL+"/v1/sweep", sweepRequest{
		common:    common{Chip: tinyChip(), Sites: []int{5}},
		K:         5,
		L:         5,
		CurrentsA: []float64{lambda / 2, lambda * 1.5},
	})
	if status != http.StatusOK {
		t.Fatalf("sweep status = %d, body %v", status, m)
	}
	points := m["points"].([]any)
	first := points[0].(map[string]any)
	if _, ok := first["h"].(float64); !ok {
		t.Errorf("below-limit point has no h: %v", first)
	}
	second := points[1].(map[string]any)
	if run, _ := second["runaway"].(bool); !run {
		t.Errorf("past-limit point not marked runaway: %v", second)
	}
}

func TestInvalidInputs(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		path string
		body any
	}{
		{"bad chip name", "/v1/solve", solveRequest{common: common{Chip: ChipSpec{Name: "nope"}}, CurrentA: 0.1}},
		{"negative current", "/v1/solve", solveRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, CurrentA: -1}},
		{"name and powers", "/v1/solve", solveRequest{common: common{Chip: func() ChipSpec { c := tinyChip(); c.Name = "alpha"; return c }(), Sites: []int{5}}, CurrentA: 0.1}},
		{"empty sweep", "/v1/sweep", sweepRequest{common: common{Chip: tinyChip(), Sites: []int{5}}}},
		{"sweep tile range", "/v1/sweep", sweepRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, K: 99, CurrentsA: []float64{0.1}}},
		{"bad method", "/v1/optimize-current", optimizeRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, Method: "newton"}},
		{"negative deadline", "/v1/solve", map[string]any{"deadline_ms": -5}},
		{"bad site", "/v1/solve", solveRequest{common: common{Chip: tinyChip(), Sites: []int{99}}, CurrentA: 0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, m, _ := post(t, ts.URL+tc.path, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, body %v, want 400", status, m)
			}
			if code := errCode(t, m); code != "invalid_input" {
				t.Errorf("error.code = %q, want invalid_input", code)
			}
		})
	}

	t.Run("not json", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte("{nope")))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("wrong verb", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/solve")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status = %d, want 405", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Errorf("Allow = %q, want POST", allow)
		}
	})
}

// TestSystemCacheReuse pins the cross-request reuse contract: two
// requests naming the same chip+deployment share one assembled system
// through the content-addressed cache.
func TestSystemCacheReuse(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := solveRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, CurrentA: 0.4}
	var first float64
	for n := 0; n < 3; n++ {
		status, m, _ := post(t, ts.URL+"/v1/solve", req)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d, body %v", n, status, m)
		}
		if n == 0 {
			first = m["peak_c"].(float64)
		} else if got := m["peak_c"].(float64); math.Abs(got-first) > 1e-12 {
			t.Errorf("request %d: peak_c %v != first %v (cache must not change answers)", n, got, first)
		}
	}
	stats := s.SystemCacheStats()
	if stats.Misses != 1 || stats.Hits < 2 {
		t.Errorf("system cache stats = %+v, want 1 miss and >= 2 hits", stats)
	}
	// A different deployment must not alias.
	status, _, _ := post(t, ts.URL+"/v1/solve", solveRequest{common: common{Chip: tinyChip(), Sites: []int{6}}, CurrentA: 0.4})
	if status != http.StatusOK {
		t.Fatalf("second deployment: status %d", status)
	}
	if got := s.SystemCacheStats().Misses; got != 2 {
		t.Errorf("misses = %d after new deployment, want 2", got)
	}
}

// TestBackpressure429 pins the admission contract: with one worker, no
// waiting room, and an occupied slot, the next request is shed with
// 429, an overload code, and a Retry-After header.
func TestBackpressure429(t *testing.T) {
	faults.Install(faults.New(1).Arm(faults.Rule{
		Site: faults.SiteServeHandle, Kind: faults.KindSleep, Sleep: 400 * time.Millisecond,
	}))
	defer faults.Uninstall()

	s, ts := newTestServer(t, Options{Workers: 1, Queue: -1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, m, _ := post(t, ts.URL+"/v1/solve", solveRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, CurrentA: 0.3})
		if status != http.StatusOK {
			t.Errorf("slow occupant finished with %d, body %v", status, m)
		}
	}()
	// Wait until the occupant holds the only slot.
	waitFor(t, time.Second, func() bool { return s.Gate().Inflight() == 1 })

	status, m, hdr := post(t, ts.URL+"/v1/solve", solveRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, CurrentA: 0.3})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %v, want 429", status, m)
	}
	if code := errCode(t, m); code != "overload" {
		t.Errorf("error.code = %q, want overload", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	wg.Wait()
}

// TestDeadlinePartialSweep pins the 504 contract: a sweep whose
// deadline expires mid-flight answers 504 cancelled and flushes the
// points that finished as the partial payload.
func TestDeadlinePartialSweep(t *testing.T) {
	// Each sweep point is a pool task; 60ms of injected latency per
	// point against a 150ms deadline finishes 2-3 of the 8 points.
	faults.Install(faults.New(1).Arm(faults.Rule{
		Site: faults.SitePoolTask, Kind: faults.KindSleep, Sleep: 60 * time.Millisecond,
	}))
	defer faults.Uninstall()

	_, ts := newTestServer(t, Options{})
	status, m, _ := post(t, ts.URL+"/v1/sweep", sweepRequest{
		common:    common{Chip: tinyChip(), Sites: []int{5}, DeadlineMS: 150},
		K:         5,
		L:         5,
		CurrentsA: []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45},
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %v, want 504", status, m)
	}
	if code := errCode(t, m); code != "cancelled" {
		t.Errorf("error.code = %q, want cancelled", code)
	}
	partial, ok := m["partial"].(map[string]any)
	if !ok {
		t.Fatalf("504 body has no partial sweep: %v", m)
	}
	done := int(partial["done"].(float64))
	if done < 1 || done >= 8 {
		t.Errorf("partial done = %d, want in [1, 8)", done)
	}
	finished := 0
	for _, p := range partial["points"].([]any) {
		if p != nil {
			finished++
		}
	}
	if finished != done {
		t.Errorf("partial has %d non-null points but done = %d", finished, done)
	}
}

// TestDrain walks the graceful-drain state machine: draining flips
// healthz and sheds new requests with 503 while the in-flight request
// finishes, and Drain returns cleanly once it has.
func TestDrain(t *testing.T) {
	faults.Install(faults.New(1).Arm(faults.Rule{
		Site: faults.SiteServeHandle, Kind: faults.KindSleep, Sleep: 300 * time.Millisecond,
	}))
	defer faults.Uninstall()

	s, ts := newTestServer(t, Options{Workers: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, m, _ := post(t, ts.URL+"/v1/solve", solveRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, CurrentA: 0.3})
		if status != http.StatusOK {
			t.Errorf("in-flight request finished with %d, body %v, want 200 despite drain", status, m)
		}
	}()
	waitFor(t, time.Second, func() bool { return s.Gate().Inflight() == 1 })

	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	status, m, _ := post(t, ts.URL+"/v1/solve", solveRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, CurrentA: 0.3})
	if status != http.StatusServiceUnavailable {
		t.Errorf("new request during drain: status = %d, want 503", status)
	}
	if code := errCode(t, m); code != "unavailable" {
		t.Errorf("error.code = %q, want unavailable", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := s.Gate().Inflight(); got != 0 {
		t.Errorf("inflight after drain = %d, want 0", got)
	}
	wg.Wait()
}

// TestDrainDeadline pins the forced-shutdown arm: a drain that cannot
// finish in time reports a cancelled error instead of hanging.
func TestDrainDeadline(t *testing.T) {
	faults.Install(faults.New(1).Arm(faults.Rule{
		Site: faults.SiteServeHandle, Kind: faults.KindSleep, Sleep: 600 * time.Millisecond,
	}))
	defer faults.Uninstall()

	s, ts := newTestServer(t, Options{Workers: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts.URL+"/v1/solve", solveRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, CurrentA: 0.3})
	}()
	waitFor(t, time.Second, func() bool { return s.Gate().Inflight() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if !errors.Is(err, tecerr.ErrCancelled) {
		t.Fatalf("Drain past deadline = %v, want CodeCancelled", err)
	}
	wg.Wait()
}

// TestCoalescer unit-tests single-flight behavior deterministically:
// a follower arriving while the leader computes shares the result
// without recomputing.
func TestCoalescer(t *testing.T) {
	var c coalescer
	c.init()
	key := pointKey{current: 0.5, k: 1, l: 2}

	leaderIn := make(chan struct{})
	type out struct {
		v      float64
		shared bool
		err    error
	}
	leaderOut := make(chan out, 1)
	go func() {
		v, shared, err := c.do(context.Background(), key, func() (float64, error) {
			<-leaderIn
			return 42, nil
		})
		leaderOut <- out{v, shared, err}
	}()
	waitFor(t, time.Second, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.inflight) == 1
	})

	followerOut := make(chan out, 1)
	go func() {
		v, shared, err := c.do(context.Background(), key, func() (float64, error) {
			t.Error("follower recomputed despite in-flight leader")
			return 0, nil
		})
		followerOut <- out{v, shared, err}
	}()
	// Release the leader only after the follower is waiting on it.
	time.Sleep(20 * time.Millisecond)
	close(leaderIn)

	l := <-leaderOut
	if l.shared || int(l.v) != 42 || l.err != nil {
		t.Errorf("leader = %+v, want v=42 shared=false", l)
	}
	f := <-followerOut
	if !f.shared || int(f.v) != 42 || f.err != nil {
		t.Errorf("follower = %+v, want v=42 shared=true", f)
	}
	c.mu.Lock()
	if len(c.inflight) != 0 {
		t.Errorf("inflight map not empty after completion: %d", len(c.inflight))
	}
	c.mu.Unlock()
}

// TestCoalescerLeaderCancelled pins the fairness rule: a follower with
// a live context does not inherit the leader's cancellation — it
// recomputes.
func TestCoalescerLeaderCancelled(t *testing.T) {
	var c coalescer
	c.init()
	key := pointKey{current: 0.25, k: 0, l: 0}

	leaderIn := make(chan struct{})
	go func() {
		_, _, _ = c.do(context.Background(), key, func() (float64, error) {
			<-leaderIn
			return 0, tecerr.Cancelled("test", context.Canceled)
		})
	}()
	waitFor(t, time.Second, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.inflight) == 1
	})

	followerDone := make(chan struct{})
	var v float64
	var shared bool
	var err error
	go func() {
		defer close(followerDone)
		v, shared, err = c.do(context.Background(), key, func() (float64, error) { return 7, nil })
	}()
	time.Sleep(20 * time.Millisecond)
	close(leaderIn)
	<-followerDone
	if err != nil || int(v) != 7 || !shared {
		t.Errorf("follower after cancelled leader = (%v, %v, %v), want (7, true, nil)", v, shared, err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
