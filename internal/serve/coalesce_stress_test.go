package serve

import (
	"context"
	"sync"
	"testing"

	"tecopt/internal/tecerr"
)

// Coalescer cancellation stress, run under -race by `make serve-chaos`:
// a leader whose request is cancelled mid-compute must not poison the
// followers piled up behind it — each follower with a live context
// recomputes and gets the real value. Repeated rounds race the
// followers against the leader's map-delete/close on every schedule
// the runtime produces.
func TestCoalescerLeaderCancellationStress(t *testing.T) {
	var c coalescer
	c.init()
	key := pointKey{current: 1.5, k: 2, l: 3}

	const rounds = 50
	const followers = 8
	for r := 0; r < rounds; r++ {
		leaderCtx, cancelLeader := context.WithCancel(context.Background())
		leaderStarted := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = c.do(leaderCtx, key, func() (float64, error) {
				close(leaderStarted)
				<-leaderCtx.Done()
				return 0, tecerr.Cancelled("serve.point", context.Cause(leaderCtx))
			})
		}()
		<-leaderStarted

		errs := make(chan error, followers)
		vals := make(chan float64, followers)
		for i := 0; i < followers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, _, err := c.do(context.Background(), key, func() (float64, error) { return 7, nil })
				vals <- v
				errs <- err
			}()
		}
		cancelLeader()
		wg.Wait()
		close(vals)
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("round %d: follower inherited error %v", r, err)
			}
		}
		for v := range vals {
			if int(v) != 7 {
				t.Fatalf("round %d: follower got %v, want 7", r, v)
			}
		}
		c.mu.Lock()
		n := len(c.inflight)
		c.mu.Unlock()
		if n != 0 {
			t.Fatalf("round %d: inflight map holds %d entries after completion", r, n)
		}
	}
}
