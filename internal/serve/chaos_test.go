package serve

// Service-layer chaos: inject each failure class at the serve sites
// and prove the contract — every class maps to its documented HTTP
// status and tecerr code, the panic never leaves the request that
// suffered it, and the server keeps answering healthy traffic
// throughout. make serve-chaos runs this file under -race.

import (
	"net/http"
	"sync"
	"testing"

	"tecopt/internal/faults"
)

// TestChaosStatusContract drives one injected fault of every class
// through the full HTTP pipeline (specs via faults.ParseSpec, the same
// grammar tecserve's -faults flag uses) and asserts the status-code
// table, then proves the server still serves cleanly afterwards.
func TestChaosStatusContract(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	solve := solveRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, CurrentA: 0.3}

	cases := []struct {
		name   string
		spec   string
		status int
		code   string
	}{
		{"panic", "panic@serve.handle", http.StatusInternalServerError, "panic"},
		{"diverged", "error@serve.handle:code=diverged", http.StatusInternalServerError, "diverged"},
		{"not_pd", "error@serve.handle:code=not_pd", http.StatusUnprocessableEntity, "not_pd"},
		{"cancelled", "error@serve.handle:code=cancelled", http.StatusGatewayTimeout, "cancelled"},
		{"degraded", "error@serve.handle:code=degraded", http.StatusInternalServerError, "degraded"},
		{"internal", "error@serve.handle:code=internal", http.StatusInternalServerError, "internal"},
		{"invalid_input", "error@serve.admit:code=invalid_input", http.StatusBadRequest, "invalid_input"},
		{"overload", "error@serve.admit:code=overload", http.StatusTooManyRequests, "overload"},
		{"unavailable", "error@serve.admit:code=unavailable", http.StatusServiceUnavailable, "unavailable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, err := faults.ParseSpec(tc.spec)
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
			}
			faults.Install(in)
			defer faults.Uninstall()

			status, m, hdr := post(t, ts.URL+"/v1/solve", solve)
			if status != tc.status {
				t.Fatalf("status = %d, body %v, want %d", status, m, tc.status)
			}
			if code := errCode(t, m); code != tc.code {
				t.Errorf("error.code = %q, want %q", code, tc.code)
			}
			if tc.status == http.StatusTooManyRequests && hdr.Get("Retry-After") == "" {
				t.Error("429 missing Retry-After")
			}
			if fired := in.Fired(faults.SiteServeHandle) + in.Fired(faults.SiteServeAdmit); fired == 0 {
				t.Error("injected rule never fired")
			}

			// Availability: the very next request, faults off, succeeds.
			faults.Uninstall()
			status, m, _ = post(t, ts.URL+"/v1/solve", solve)
			if status != http.StatusOK {
				t.Fatalf("post-fault request: status %d, body %v — server did not recover", status, m)
			}
		})
	}
}

// TestChaosConcurrentAvailability hammers the server with seeded
// probabilistic faults — typed errors and worker panics mixed into
// concurrent traffic — and asserts per-request isolation: every
// response is either a clean 200 or a correctly-classed failure, the
// health probe never flinches, and full service resumes the moment
// the injector is removed.
func TestChaosConcurrentAvailability(t *testing.T) {
	in, err := faults.ParseSpec("seed=42;error@serve.handle:prob=0.3,code=diverged;panic@serve.handle:every=7")
	if err != nil {
		t.Fatal(err)
	}
	faults.Install(in)
	defer faults.Uninstall()

	_, ts := newTestServer(t, Options{Workers: 4, Queue: 64})
	solve := solveRequest{common: common{Chip: tinyChip(), Sites: []int{5}}, CurrentA: 0.3}

	const requests = 32
	counts := make(map[int]int)
	codes := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, m, _ := post(t, ts.URL+"/v1/solve", solve)
			mu.Lock()
			defer mu.Unlock()
			counts[status]++
			if status != http.StatusOK {
				codes[errCode(t, m)] = true
			}
		}()
	}
	wg.Wait()

	for status := range counts {
		if status != http.StatusOK && status != http.StatusInternalServerError {
			t.Errorf("unexpected status %d under handle-site chaos (counts %v)", status, counts)
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Error("no request succeeded under 30% fault probability — isolation failed")
	}
	if counts[http.StatusInternalServerError] == 0 {
		t.Error("no request failed — injector inert, test proves nothing")
	}
	for code := range codes {
		if code != "diverged" && code != "panic" {
			t.Errorf("failure carried unexpected code %q", code)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d under chaos, want 200", resp.StatusCode)
	}

	faults.Uninstall()
	status, m, _ := post(t, ts.URL+"/v1/solve", solve)
	if status != http.StatusOK {
		t.Fatalf("post-chaos request: status %d, body %v", status, m)
	}
}
