package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"tecopt/internal/core"
	"tecopt/internal/faults"
	"tecopt/internal/material"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

// endpoint wraps one endpoint body in the request pipeline every /v1
// route shares: draining refusal, admission faults, body limit,
// deadline, gate slot, per-request flight track, panic isolation, and
// the tecerr→HTTP status mapping on the way out.
func (s *Server) endpoint(name string, run func(ctx context.Context, body []byte) (any, error)) http.HandlerFunc {
	op := "tecserve." + name
	return func(w http.ResponseWriter, req *http.Request) {
		r := obs.Enabled()
		var start int64
		if r != nil {
			start = r.Now()
			r.Counter("tecserve.requests").Inc()
			r.Counter(op + ".requests").Inc()
			defer func() { r.ObserveSince(op+".latency_ns", start) }()
		}
		if req.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, name, nil, tecerr.Newf(tecerr.CodeInvalidInput, op,
				"serve: %s %s: use POST", req.Method, req.URL.Path), http.StatusMethodNotAllowed)
			return
		}
		// Refuse before reading the body: a draining server sheds load,
		// it does not spend on it.
		if s.draining.Load() {
			s.writeError(w, name, nil, tecerr.Newf(tecerr.CodeUnavailable, op,
				"serve: server is draining"), 0)
			return
		}
		if err := faults.Check(faults.SiteServeAdmit); err != nil {
			s.writeError(w, name, nil, err, 0)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.opt.MaxBodyBytes))
		if err != nil {
			s.writeError(w, name, nil, tecerr.Wrapf(tecerr.CodeInvalidInput, op, err,
				"serve: reading request body"), 0)
			return
		}
		ctx, cancel, err := s.requestContext(req.Context(), op, body)
		if err != nil {
			s.writeError(w, name, nil, err, 0)
			return
		}
		defer cancel()
		// Admission: block for a slot in the bounded queue. Shed (429)
		// when the queue is full, 504 when the deadline expires while
		// still queued.
		release, err := s.gate.Acquire(ctx)
		if err != nil {
			s.writeError(w, name, nil, err, 0)
			return
		}
		defer release()
		if r != nil {
			// Each admitted request gets its own flight-recorder lane, so
			// a Perfetto view of a busy server shows per-request spans
			// instead of one interleaved smear.
			ctx = obs.ContextWithTrack(ctx, obs.NextRequestTrack())
			var sp obs.Span
			ctx, sp = r.StartSpanCtx(ctx, "tecserve.request")
			sp.Annotate("endpoint", name)
			defer sp.End()
		}
		result, err := runProtected(ctx, op, func(ctx context.Context) (any, error) {
			return run(ctx, body)
		})
		if err != nil {
			s.writeError(w, name, result, err, 0)
			return
		}
		if r != nil {
			r.Counter("tecserve.status.200").Inc()
		}
		writeJSON(w, http.StatusOK, result)
	}
}

// requestContext derives the per-request deadline context: the body's
// deadline_ms when given (capped by MaxDeadline), the server default
// otherwise.
func (s *Server) requestContext(parent context.Context, op string, body []byte) (context.Context, context.CancelFunc, error) {
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, nil, tecerr.Wrapf(tecerr.CodeInvalidInput, op, err, "serve: decoding request")
	}
	if env.DeadlineMS < 0 {
		return nil, nil, tecerr.Newf(tecerr.CodeInvalidInput, op,
			"serve: deadline_ms %d is negative", env.DeadlineMS)
	}
	d := s.opt.DefaultDeadline
	if env.DeadlineMS > 0 {
		d = time.Duration(env.DeadlineMS) * time.Millisecond
	}
	if d > s.opt.MaxDeadline {
		d = s.opt.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(parent, d)
	return ctx, cancel, nil
}

// writeError renders err as the contracted JSON error body with the
// tecerr→HTTP status mapping (statusOverride, when nonzero, wins —
// method-not-allowed is HTTP-shaped, not a solver class). partial,
// when non-nil, rides along so deadline-expired sweeps still deliver
// their finished points.
func (s *Server) writeError(w http.ResponseWriter, name string, partial any, err error, statusOverride int) {
	status := tecerr.HTTPStatus(err)
	if statusOverride != 0 {
		status = statusOverride
	}
	code := tecerr.CodeOf(err)
	if status == http.StatusTooManyRequests {
		// Backpressure contract: tell well-behaved clients when to come
		// back. One second is one drain of a typical queue at the
		// measured service rate; precision is not the point, the header
		// is.
		w.Header().Set("Retry-After", "1")
	}
	if r := obs.Enabled(); r != nil {
		r.Counter("tecserve.status." + strconv.Itoa(status)).Inc()
		r.Counter("tecserve.errors." + code.String()).Inc()
		if name != "" {
			r.Counter("tecserve." + name + ".errors").Inc()
		}
	}
	writeJSON(w, status, errorResponse{
		Error:   errorBody{Code: code.String(), Message: err.Error()},
		Partial: partial,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// The client may already be gone (cancelled request); an encode
	// error here has no one left to report to.
	_ = enc.Encode(v)
}

// decode unmarshals an endpoint body, typing failures as invalid
// input.
func decode(body []byte, v any, op string) error {
	if err := json.Unmarshal(body, v); err != nil {
		return tecerr.Wrapf(tecerr.CodeInvalidInput, op, err, "serve: decoding request")
	}
	return nil
}

// runSolve answers /v1/solve: the steady-state field at one supply
// current.
func (s *Server) runSolve(ctx context.Context, body []byte) (any, error) {
	const op = "tecserve.solve"
	var req solveRequest
	if err := decode(body, &req, op); err != nil {
		return nil, err
	}
	if math.IsNaN(req.CurrentA) || math.IsInf(req.CurrentA, 0) || req.CurrentA < 0 {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, op,
			"serve: current_a %g must be finite and nonnegative", req.CurrentA)
	}
	sys, err := s.resolveSystem(req.Chip, req.Sites)
	if err != nil {
		return nil, err
	}
	peakK, tile, theta, err := sys.PeakAtCtx(ctx, req.CurrentA)
	if err != nil {
		return nil, err
	}
	resp := solveResponse{
		PeakC:     material.KelvinToCelsius(peakK),
		PeakTile:  tile,
		TECPowerW: sys.TECPower(theta, req.CurrentA),
	}
	if req.Field {
		resp.TilesC = make([]float64, len(sys.PN.SilNode))
		for t, n := range sys.PN.SilNode {
			resp.TilesC[t] = material.KelvinToCelsius(theta[n])
		}
	}
	return resp, nil
}

// runOptimizeCurrent answers /v1/optimize-current: the optimal shared
// supply current for the deployment.
func (s *Server) runOptimizeCurrent(ctx context.Context, body []byte) (any, error) {
	const op = "tecserve.optimize_current"
	var req optimizeRequest
	if err := decode(body, &req, op); err != nil {
		return nil, err
	}
	var m core.CurrentMethod
	switch req.Method {
	case "", "golden":
		m = core.CurrentGolden
	case "gradient":
		m = core.CurrentGradient
	case "brent":
		m = core.CurrentBrent
	default:
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, op,
			"serve: unknown method %q (want golden, gradient, or brent)", req.Method)
	}
	sys, err := s.resolveSystem(req.Chip, req.Sites)
	if err != nil {
		return nil, err
	}
	res, err := sys.OptimizeCurrent(core.CurrentOptions{Method: m, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	return optimizeResponse{
		IOptA:       res.IOpt,
		PeakC:       material.KelvinToCelsius(res.PeakK),
		PeakTile:    res.PeakTile,
		TECPowerW:   res.TECPowerW,
		LambdaMA:    finiteOrNil(res.LambdaM),
		Evaluations: res.Evaluations,
	}, nil
}

// runRunawayLimit answers /v1/runaway-limit: the thermal-runaway
// current lambda_m of the deployment.
func (s *Server) runRunawayLimit(ctx context.Context, body []byte) (any, error) {
	const op = "tecserve.runaway_limit"
	var req runawayRequest
	if err := decode(body, &req, op); err != nil {
		return nil, err
	}
	sys, err := s.resolveSystem(req.Chip, req.Sites)
	if err != nil {
		return nil, err
	}
	lambda, err := sys.RunawayLimit(core.RunawayOptions{Ctx: ctx})
	if err != nil {
		return nil, err
	}
	return runawayResponse{
		HasLimit: !math.IsInf(lambda, 1),
		LambdaMA: finiteOrNil(lambda),
	}, nil
}

// runSweep answers /v1/sweep: h_kl over a set of currents. It runs
// point-by-point (not core.HklSweepParallelCtx) so a deadline expiry
// can flush the points that finished — the partial-results contract —
// and so identical in-flight points coalesce across requests.
func (s *Server) runSweep(ctx context.Context, body []byte) (any, error) {
	const op = "tecserve.sweep"
	var req sweepRequest
	if err := decode(body, &req, op); err != nil {
		return nil, err
	}
	n := len(req.CurrentsA)
	if n == 0 {
		return nil, tecerr.New(tecerr.CodeInvalidInput, op, "serve: currents_a is empty")
	}
	if n > s.opt.MaxSweepPoints {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, op,
			"serve: %d sweep points exceed the per-request limit %d", n, s.opt.MaxSweepPoints)
	}
	sys, err := s.resolveSystem(req.Chip, req.Sites)
	if err != nil {
		return nil, err
	}
	tiles := len(sys.PN.SilNode)
	if req.K < 0 || req.K >= tiles || req.L < 0 || req.L >= tiles {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, op,
			"serve: sweep tiles (k=%d, l=%d) out of range %d", req.K, req.L, tiles)
	}
	// The wire carries tile indices (the paper's h_kl couples silicon
	// tiles); the solver wants network node indices.
	kn, ln := sys.PN.SilNode[req.K], sys.PN.SilNode[req.L]
	points := make([]*sweepPoint, n)
	var coalesced atomic.Int64
	err = s.pool.MapTasksCtx(ctx, n, func(tctx context.Context, idx int) error {
		i := req.CurrentsA[idx]
		v, shared, err := s.coal.do(tctx, pointKey{sys: sys, current: i, k: kn, l: ln},
			func() (float64, error) { return sys.HklCtx(tctx, i, kn, ln) })
		if shared {
			coalesced.Add(1)
		}
		if err != nil {
			if errors.Is(err, tecerr.ErrNotPD) {
				// Past the runaway limit h_kl diverges (Theorem 2): a
				// runaway point is an answer, not a failure.
				points[idx] = &sweepPoint{CurrentA: i, Runaway: true}
				return nil
			}
			return err
		}
		points[idx] = &sweepPoint{CurrentA: i, H: &v}
		return nil
	})
	done := 0
	for _, p := range points {
		if p != nil {
			done++
		}
	}
	if r := obs.Enabled(); r != nil && coalesced.Load() > 0 {
		r.Counter("tecserve.sweep.coalesced").Add(uint64(coalesced.Load()))
	}
	resp := sweepResponse{
		K: req.K, L: req.L,
		Points: points, Done: done, Total: n,
		Coalesced: int(coalesced.Load()),
	}
	if err != nil {
		if errors.Is(err, tecerr.ErrCancelled) {
			// Deadline expired mid-sweep: flush what finished as the
			// partial payload of the 504.
			return resp, err
		}
		return nil, err
	}
	return resp, nil
}
