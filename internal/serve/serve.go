// Package serve is the long-running thermal-solve service behind
// cmd/tecserve: HTTP+JSON endpoints over the core solver library, with
// robustness as the headline feature. Every request passes through one
// pipeline —
//
//	admission (draining? queue full?) → deadline → gate slot →
//	panic-isolated solve on a cached system → status-mapped response
//
// — so the service degrades predictably instead of falling over:
// overload sheds with 429 + Retry-After (bounded queue, never a
// growing backlog), deadlines cancel work mid-solve and answer 504
// (sweeps flush the points they finished), worker panics become 500s
// without killing the process, and SIGTERM drains gracefully (new
// requests see 503 while in-flight ones finish under a drain
// deadline).
//
// Cross-request performance comes from content addressing: chip +
// deployment hash to a key in a bounded system cache, so repeated
// requests against the same package network share one assembled
// core.System — and through its generation, one base factorization and
// one SMW fast-path state (EXPERIMENTS.md measures the resulting
// per-solve speedup at ~15000x over a cold factorization). Sweep
// points that race on the same (system, current, k, l) are coalesced:
// one computes, the rest wait and share.
//
// The package is stdlib-only plus the repo's own internal layers, and
// it deliberately contains no net.Listen call: main owns the listener
// and signal handling, tests own httptest servers.
package serve

import (
	"context"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"tecopt/internal/core"
	"tecopt/internal/engine"
	"tecopt/internal/faults"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

// Options configures a Server. The zero value is usable: see the
// field comments for the defaults withDefaults fills.
type Options struct {
	// Workers bounds concurrently executing requests (gate slots).
	// <= 0 selects engine.Pool's GOMAXPROCS default behavior via 0 →
	// defaulted to 4.
	Workers int
	// Queue bounds requests waiting for a worker slot; arrivals beyond
	// it are shed with 429. < 0 means no waiting room (admit only when
	// a slot is free); 0 selects the default 64.
	Queue int
	// DefaultDeadline applies when a request carries no deadline_ms
	// (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline caps any requested deadline (default 2m).
	MaxDeadline time.Duration
	// SweepWorkers sets the per-request pool width for sweep points
	// (default: the serial pool — request-level parallelism is the
	// gate's job; raise it for few-clients/huge-sweeps deployments).
	SweepWorkers int
	// MaxSweepPoints bounds the currents array of one sweep request
	// (default 20000).
	MaxSweepPoints int
	// MaxBodyBytes bounds a request body (default 16 MiB).
	MaxBodyBytes int64
	// SystemCache bounds the content-addressed chip+deployment cache
	// (default 16 systems).
	SystemCache int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	switch {
	case o.Queue < 0:
		o.Queue = 0
	case o.Queue == 0:
		o.Queue = 64
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 30 * time.Second
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 2 * time.Minute
	}
	if o.SweepWorkers <= 0 {
		o.SweepWorkers = 1
	}
	if o.MaxSweepPoints <= 0 {
		o.MaxSweepPoints = 20000
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	if o.SystemCache <= 0 {
		o.SystemCache = 16
	}
	return o
}

// Server is the thermal-solve service. Build with New, mount Handler
// on an http.Server, and call Drain on shutdown. All methods are safe
// for concurrent use.
type Server struct {
	opt      Options
	gate     *engine.Gate
	pool     engine.Pool
	systems  *engine.KeyedCache[string, *core.System]
	coal     coalescer
	draining atomic.Bool
	mux      *http.ServeMux
}

// New builds a Server.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:     opt,
		gate:    engine.NewGate("tecserve.gate", opt.Workers, opt.Queue),
		pool:    engine.Pool{Workers: opt.SweepWorkers},
		systems: engine.NewKeyedCache[string, *core.System]("tecserve.system_cache", opt.SystemCache),
	}
	s.coal.init()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/solve", s.endpoint("solve", s.runSolve))
	s.mux.HandleFunc("/v1/optimize-current", s.endpoint("optimize_current", s.runOptimizeCurrent))
	s.mux.HandleFunc("/v1/runaway-limit", s.endpoint("runaway_limit", s.runRunawayLimit))
	s.mux.HandleFunc("/v1/sweep", s.endpoint("sweep", s.runSweep))
	s.mux.HandleFunc("/healthz", s.healthz)
	return s
}

// Handler returns the service's HTTP handler: the four /v1 endpoints
// plus /healthz. /metrics and pprof are main's to mount (obs.DebugMux)
// so tests and embedders control exposure.
func (s *Server) Handler() http.Handler { return s.mux }

// Gate exposes the admission gate (load introspection for main and
// tests).
func (s *Server) Gate() *engine.Gate { return s.gate }

// SystemCacheStats reports the content-addressed system cache counters
// — the cross-request reuse scoreboard.
func (s *Server) SystemCacheStats() engine.CacheStats { return s.systems.Stats() }

// PublishStats pushes the system cache counters into an obs snapshot;
// register as a snapshot hook so /metrics always reflects the cache.
func (s *Server) PublishStats(r *obs.Registry) { s.systems.PublishStats(r) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain moves the server into the draining state: /healthz flips
// to 503 and every new API request is refused with 503 unavailable.
// In-flight requests are unaffected. Idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		if r := obs.Enabled(); r != nil {
			r.Counter("tecserve.drain.begun").Inc()
		}
	}
}

// Drain is the graceful-shutdown state machine: stop accepting
// (BeginDrain), then wait for every in-flight request to finish, up to
// ctx's deadline. It returns nil on a clean drain and a
// tecerr.CodeCancelled error when the deadline expired with work still
// running — the caller then force-closes. The server must not be used
// after Drain returns.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	err := s.gate.Drain(ctx)
	if r := obs.Enabled(); r != nil {
		if err == nil {
			r.Counter("tecserve.drain.clean").Inc()
		} else {
			r.Counter("tecserve.drain.forced").Inc()
		}
	}
	return err
}

// healthz is the liveness/readiness probe: 200 while serving, 503
// while draining (load balancers stop routing before the listener
// closes).
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, http.StatusText(http.StatusMethodNotAllowed), http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"status":"draining"}` + "\n"))
		return
	}
	_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
}

// runProtected executes one admitted request body with panic
// isolation: a panicking solve becomes a tecerr.CodePanic error (one
// 500 response), never a crashed process. The faults hook lets chaos
// runs inject exactly such panics, typed errors, and latency.
func runProtected(ctx context.Context, op string, run func(context.Context) (any, error)) (result any, err error) {
	defer func() {
		if v := recover(); v != nil {
			result, err = nil, tecerr.FromPanic(op, v, debug.Stack())
		}
	}()
	if err := faults.Check(faults.SiteServeHandle); err != nil {
		return nil, err
	}
	return run(ctx)
}
