package serve

import (
	"context"
	"sync"

	"tecopt/internal/core"
	"tecopt/internal/tecerr"
)

// pointKey identifies one sweep point computation. The system pointer
// stands in for the content hash (resolveSystem interns systems, so
// identical chip+deployment requests share the pointer), which makes
// the key comparable without re-hashing per point.
type pointKey struct {
	sys     *core.System
	current float64
	k, l    int
}

// pointCall is one in-flight point computation: the leader fills v/err
// and closes done; followers wait on done.
type pointCall struct {
	done chan struct{}
	v    float64
	err  error
}

// coalescer deduplicates identical in-flight sweep points across
// concurrent requests (single-flight): the first arrival computes, the
// rest wait and share the result. Unlike a cache it holds nothing
// after the computation finishes — completed values belong to the
// factorization/solver caches below; this only collapses the
// thundering herd of simultaneous identical work.
type coalescer struct {
	mu       sync.Mutex
	inflight map[pointKey]*pointCall
}

func (c *coalescer) init() {
	c.inflight = make(map[pointKey]*pointCall)
}

// do computes the point for key, coalescing with an identical
// in-flight computation when one exists. shared reports whether this
// call piggybacked instead of computing. Followers respect their own
// ctx while waiting; and when the leader's request was cancelled (its
// error, not ours), a follower with a live context recomputes rather
// than inheriting a cancellation it never suffered.
func (c *coalescer) do(ctx context.Context, key pointKey, compute func() (float64, error)) (v float64, shared bool, err error) {
	c.mu.Lock()
	if p, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-p.done:
		case <-ctx.Done():
			return 0, true, tecerr.Cancelled("serve.coalesce", context.Cause(ctx))
		}
		if p.err != nil && tecerr.CodeOf(p.err) == tecerr.CodeCancelled && ctx.Err() == nil {
			v, err := compute()
			return v, true, err
		}
		return p.v, true, p.err
	}
	p := &pointCall{done: make(chan struct{})}
	c.inflight[key] = p
	c.mu.Unlock()

	p.v, p.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(p.done)
	return p.v, false, p.err
}
