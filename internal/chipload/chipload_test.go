package chipload

import (
	"os"
	"path/filepath"
	"testing"

	"tecopt/internal/floorplan"
	"tecopt/internal/num"
	"tecopt/internal/power"
)

func TestLoadBuiltins(t *testing.T) {
	for _, name := range []string{"alpha", "", "hc01", "hc10", "hc:42"} {
		chip, err := Load(Spec{Name: name})
		if err != nil {
			t.Fatalf("Load(%q): %v", name, err)
		}
		if chip.Grid.NumTiles() != 144 || len(chip.TilePower) != 144 {
			t.Fatalf("Load(%q): malformed chip", name)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	for _, name := range []string{"nope", "hc99", "hc:x"} {
		if _, err := Load(Spec{Name: name}); err == nil {
			t.Errorf("Load(%q) accepted", name)
		}
	}
}

func TestLoadCustomFiles(t *testing.T) {
	dir := t.TempDir()

	// Write the Alpha floorplan and a synthesized trace to disk.
	f := floorplan.Alpha21364()
	flpPath := filepath.Join(dir, "chip.flp")
	ff, err := os.Create(flpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := floorplan.WriteFLP(ff, f); err != nil {
		t.Fatal(err)
	}
	ff.Close()

	tr := power.SynthesizeTrace(power.NewAlphaModel(), f, power.SyntheticSPECWorkloads())
	ptPath := filepath.Join(dir, "chip.ptrace")
	pf, err := os.Create(ptPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := power.WritePtrace(pf, tr); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	chip, err := Load(Spec{FLP: flpPath, Ptrace: ptPath})
	if err != nil {
		t.Fatal(err)
	}
	// The file-based path must reproduce the built-in Alpha powers.
	_, _, want := alphaRef()
	for i := range want {
		d := chip.TilePower[i] - want[i]
		if d > 1e-6 || d < -1e-6 {
			t.Fatalf("tile %d: file path %v vs builtin %v", i, chip.TilePower[i], want[i])
		}
	}
}

func alphaRef() (*floorplan.Floorplan, *floorplan.Grid, []float64) {
	f, g := floorplan.Alpha21364Grid()
	return f, g, power.AlphaTilePowers(f, g)
}

func TestLoadCustomErrors(t *testing.T) {
	if _, err := Load(Spec{FLP: "x.flp"}); err == nil {
		t.Error("missing ptrace accepted")
	}
	if _, err := Load(Spec{FLP: "/nonexistent.flp", Ptrace: "/nonexistent.ptrace"}); err == nil {
		t.Error("missing files accepted")
	}
}

func TestGeomFollowsDie(t *testing.T) {
	chip, err := Load(Spec{Name: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if !num.ExactEqual(chip.Geom.DieWidth, chip.Floorplan.DieW) || !num.ExactEqual(chip.Geom.DieHeight, chip.Floorplan.DieH) {
		t.Fatalf("geom die %gx%g != floorplan %gx%g",
			chip.Geom.DieWidth, chip.Geom.DieHeight, chip.Floorplan.DieW, chip.Floorplan.DieH)
	}
	if err := chip.Geom.Validate(); err != nil {
		t.Fatal(err)
	}
	// A large custom die must enlarge the spreader/sink consistently.
	big := geomFor(floorplan.New("big", 40e-3, 40e-3))
	if err := big.Validate(); err != nil {
		t.Fatalf("large-die geometry invalid: %v", err)
	}
	if big.SpreaderSide < 40e-3 || big.SinkSide < big.SpreaderSide {
		t.Fatalf("spreader/sink not scaled: %+v", big)
	}
}
