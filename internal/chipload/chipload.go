// Package chipload resolves benchmark-chip specifications for the CLI
// tools: the built-in Alpha chip, the canonical HC01..HC10 suite,
// arbitrary hc:<seed> draws, and user-supplied HotSpot-format floorplan
// (.flp) plus power-trace (.ptrace) files.
package chipload

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/power"
	"tecopt/internal/tecerr"
)

// Chip is a resolved benchmark chip ready for optimization.
type Chip struct {
	Name      string
	Floorplan *floorplan.Floorplan
	Grid      *floorplan.Grid
	TilePower []float64
	// Geom is the package geometry with the die dimensions taken from
	// the floorplan (custom .flp dies may differ from the default
	// 6 mm x 6 mm study chip).
	Geom material.PackageGeometry
}

// Spec selects a chip.
type Spec struct {
	// Name is "alpha", "hc01".."hc10", or "hc:<seed>"; ignored when FLP
	// is set.
	Name string
	// FLP is a path to a HotSpot .flp floorplan file (optional).
	FLP string
	// Ptrace is a path to a .ptrace power trace (required with FLP).
	Ptrace string
	// Cols, Rows tile the custom floorplan (default 12x12).
	Cols, Rows int
	// Margin is the worst-case guard band over the trace envelope
	// (default 1.2, the paper's +20%).
	Margin float64
}

// Load resolves the spec.
func Load(spec Spec) (*Chip, error) {
	if spec.FLP != "" {
		return loadCustom(spec)
	}
	switch {
	case spec.Name == "alpha" || spec.Name == "":
		f, g := floorplan.Alpha21364Grid()
		return &Chip{
			Name: "alpha", Floorplan: f, Grid: g,
			TilePower: power.AlphaTilePowers(f, g),
			Geom:      geomFor(f),
		}, nil
	case strings.HasPrefix(spec.Name, "hc:"):
		seed, err := strconv.ParseInt(spec.Name[3:], 10, 64)
		if err != nil {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "chipload",
				"chipload: bad hc seed in %q: %v", spec.Name, err)
		}
		return fromHC(spec.Name, seed)
	case strings.HasPrefix(spec.Name, "hc"):
		n, err := strconv.Atoi(spec.Name[2:])
		if err != nil || n < 1 || n > 10 {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "chipload",
				"chipload: unknown chip %q (want alpha, hc01..hc10, or hc:<seed>)", spec.Name)
		}
		return fromHC(fmt.Sprintf("HC%02d", n), int64(n))
	default:
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "chipload",
			"chipload: unknown chip %q (want alpha, hc01..hc10, or hc:<seed>)", spec.Name)
	}
}

func fromHC(name string, seed int64) (*Chip, error) {
	chip, err := power.GenerateHC(name, seed, power.DefaultHCSpec())
	if err != nil {
		return nil, err
	}
	return &Chip{
		Name: name, Floorplan: chip.Floorplan, Grid: chip.Grid,
		TilePower: chip.TilePower, Geom: geomFor(chip.Floorplan),
	}, nil
}

// geomFor adapts the default package to the floorplan's die dimensions,
// keeping the spreader/sink at least as large as the die.
func geomFor(f *floorplan.Floorplan) material.PackageGeometry {
	geom := material.DefaultPackage()
	geom.DieWidth = f.DieW
	geom.DieHeight = f.DieH
	side := f.DieW
	if f.DieH > side {
		side = f.DieH
	}
	if geom.SpreaderSide < side {
		geom.SpreaderSide = 5 * side
	}
	if geom.SinkSide < geom.SpreaderSide {
		geom.SinkSide = 2 * geom.SpreaderSide
	}
	return geom
}

func loadCustom(spec Spec) (*Chip, error) {
	if spec.Ptrace == "" {
		return nil, tecerr.New(tecerr.CodeInvalidInput, "chipload", "chipload: -flp requires a -ptrace power trace")
	}
	if spec.Cols <= 0 {
		spec.Cols = 12
	}
	if spec.Rows <= 0 {
		spec.Rows = 12
	}
	if spec.Margin <= 0 {
		spec.Margin = 1.2
	}
	ff, err := os.Open(spec.FLP)
	if err != nil {
		return nil, tecerr.Wrap(tecerr.CodeInvalidInput, "chipload", "chipload", err)
	}
	defer ff.Close()
	f, err := floorplan.ParseFLP(spec.FLP, ff)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(1e-6); err != nil {
		return nil, err
	}
	g, err := f.Tile(spec.Cols, spec.Rows)
	if err != nil {
		return nil, err
	}
	pf, err := os.Open(spec.Ptrace)
	if err != nil {
		return nil, tecerr.Wrap(tecerr.CodeInvalidInput, "chipload", "chipload", err)
	}
	defer pf.Close()
	tr, err := power.ParsePtrace(pf)
	if err != nil {
		return nil, err
	}
	tp, err := power.TilePowersFromTrace(tr, f, g, spec.Margin)
	if err != nil {
		return nil, err
	}
	if err := power.ValidateTilePower(tp); err != nil {
		return nil, err
	}
	return &Chip{Name: spec.FLP, Floorplan: f, Grid: g, TilePower: tp, Geom: geomFor(f)}, nil
}
