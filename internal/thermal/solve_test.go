package thermal

import (
	"errors"
	"math"
	"testing"

	"tecopt/internal/sparse"
)

func TestSolveSteadyMethodsAgree(t *testing.T) {
	pn := defaultPN(t, nil)
	tile := make([]float64, pn.NumTiles())
	tile[70] = 3
	tile[10] = 1
	p, err := pn.PowerVector(tile)
	if err != nil {
		t.Fatal(err)
	}
	rhs := pn.Net.BaseRHS()
	for i, v := range p {
		rhs[i] += v
	}
	g := pn.Net.G()

	band, err := SolveSteady(g, rhs, MethodBandCholesky)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := SolveSteady(g, rhs, MethodCG)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := SolveSteady(g, rhs, MethodDenseCholesky)
	if err != nil {
		t.Fatal(err)
	}
	for i := range band {
		if math.Abs(band[i]-cg[i]) > 1e-6 {
			t.Fatalf("band vs CG at node %d: %v vs %v", i, band[i], cg[i])
		}
		if math.Abs(band[i]-dense[i]) > 1e-6 {
			t.Fatalf("band vs dense at node %d: %v vs %v", i, band[i], dense[i])
		}
	}
}

func TestSolveSteadyUnknownMethod(t *testing.T) {
	pn := defaultPN(t, nil)
	if _, err := SolveSteady(pn.Net.G(), pn.Net.BaseRHS(), Method(99)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestSolveSteadyNotPD(t *testing.T) {
	// An indefinite matrix must yield ErrNotPD under every method.
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 0, -1)
	b.Add(1, 1, -1)
	m := b.Build()
	for _, method := range []Method{MethodBandCholesky, MethodCG, MethodDenseCholesky} {
		if _, err := SolveSteady(m, []float64{1, 1}, method); !errors.Is(err, ErrNotPD) {
			t.Errorf("method %d: err = %v, want ErrNotPD", method, err)
		}
	}
}

func TestFactorReusesPermutation(t *testing.T) {
	pn := defaultPN(t, nil)
	g := pn.Net.G()
	perm := sparse.RCM(g)
	f1, err := Factor(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Factor(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	rhs := pn.Net.BaseRHS()
	a, err := f1.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f2.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("permutation reuse changed the solution at node %d", i)
		}
	}
}
