package thermal

import (
	"tecopt/internal/floorplan"
	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/tecerr"
)

// BuildOptions configures the package discretization.
type BuildOptions struct {
	// Cols, Rows define the die tiling (the paper's pxq TEC-site grid).
	Cols, Rows int
	// SpreaderCells and SinkCells give the per-side cell counts of the
	// spreader and sink layer grids. Defaults (20, 20) put the spreader
	// at 1.5 mm pitch and the sink at 3 mm pitch for the default 30/60 mm
	// package, nesting the 0.5 mm die tiles exactly.
	SpreaderCells, SinkCells int
	// TECSites marks the silicon tiles whose TIM node is replaced by a
	// thin-film TEC (cold+hot node pair); the devices themselves are
	// attached afterwards via AttachTEC.
	TECSites map[int]bool
}

// DefaultBuildOptions returns the canonical 12x12 die tiling with the
// default spreader/sink resolutions and no TECs.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{Cols: 12, Rows: 12, SpreaderCells: 20, SinkCells: 20}
}

// SprShare describes how a die tile's footprint is split across spreader
// cells: the spreader node index and the shared (overlap) area in m^2.
type SprShare struct {
	Node int
	Area float64
}

// PackageNetwork is the assembled compact model of a chip package plus
// the bookkeeping needed to attach TEC devices and power profiles.
type PackageNetwork struct {
	Net  *Network
	Geom material.PackageGeometry
	Opts BuildOptions

	// SilNode[t] is the network node of silicon tile t.
	SilNode []int
	// TIMNode[t] is the TIM node over tile t, or -1 for TEC sites.
	TIMNode []int
	// ColdNode[t] and HotNode[t] are the TEC nodes over tile t, or -1
	// when tile t is not a TEC site / not yet attached.
	ColdNode, HotNode []int
	// SprShares[t] lists the spreader cells over tile t with overlap
	// areas; TEC hot sides attach through these.
	SprShares [][]SprShare

	// halfSilG[t] is the conductance of the lower half of the silicon
	// slab under tile t (used when wiring a TEC cold side).
	halfSilG []float64
	// halfSprPerArea is the conductance per unit area of the upper half
	// path into a spreader cell: k_spr/(t_spr/2).
	halfSprPerArea float64
}

// layerGrid is a uniform square-cell grid of one package layer, in global
// coordinates (all layers concentric).
type layerGrid struct {
	cells  int // per side
	pitch  float64
	origin float64 // lower-left corner coordinate (same for x and y)
	node   []int
}

func (lg *layerGrid) rect(c, r int) floorplan.Rect {
	return floorplan.Rect{
		X: lg.origin + float64(c)*lg.pitch,
		Y: lg.origin + float64(r)*lg.pitch,
		W: lg.pitch, H: lg.pitch,
	}
}

func (lg *layerGrid) idx(c, r int) int { return r*lg.cells + c }

// BuildPackage constructs the compact thermal model of the package
// described by geom, dissected per opts. TEC sites are left open (no TIM
// node) for AttachTEC to populate.
func BuildPackage(geom material.PackageGeometry, opts BuildOptions) (*PackageNetwork, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if opts.Cols <= 0 || opts.Rows <= 0 {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.build",
			"thermal: nonpositive die tiling %dx%d", opts.Cols, opts.Rows)
	}
	if opts.SpreaderCells <= 0 {
		opts.SpreaderCells = 20
	}
	if opts.SinkCells <= 0 {
		opts.SinkCells = 20
	}
	if !num.ExactEqual(geom.DieWidth, geom.DieHeight) && opts.Cols != opts.Rows {
		// Non-square dies are fine; the layer grids stay square.
		_ = geom
	}

	pn := &PackageNetwork{Net: NewNetwork(), Geom: geom, Opts: opts}
	nt := opts.Cols * opts.Rows
	pn.SilNode = make([]int, nt)
	pn.TIMNode = make([]int, nt)
	pn.ColdNode = make([]int, nt)
	pn.HotNode = make([]int, nt)
	pn.SprShares = make([][]SprShare, nt)
	pn.halfSilG = make([]float64, nt)
	for t := 0; t < nt; t++ {
		pn.TIMNode[t], pn.ColdNode[t], pn.HotNode[t] = -1, -1, -1
	}

	tileW := geom.DieWidth / float64(opts.Cols)
	tileH := geom.DieHeight / float64(opts.Rows)
	tileArea := tileW * tileH
	// Global coordinates centered at the package center.
	dieOrigX := -geom.DieWidth / 2
	dieOrigY := -geom.DieHeight / 2
	tileRect := func(t int) floorplan.Rect {
		c, r := t%opts.Cols, t/opts.Cols
		return floorplan.Rect{
			X: dieOrigX + float64(c)*tileW,
			Y: dieOrigY + float64(r)*tileH,
			W: tileW, H: tileH,
		}
	}

	kSil := material.Silicon.Conductivity
	kTIM := material.TIM.Conductivity
	kCu := material.Copper.Conductivity
	tSil := geom.DieThickness
	tTIM := geom.TIMThickness
	tSpr := geom.SpreaderThickness
	tSnk := geom.SinkThickness

	// --- Silicon layer -------------------------------------------------
	for t := 0; t < nt; t++ {
		pn.SilNode[t] = pn.Net.AddNode(Node{Kind: KindSilicon, Tile: t})
		pn.halfSilG[t] = kSil * tileArea / (tSil / 2)
	}
	// Lateral silicon conductances between adjacent tiles.
	lateral := func(nodeAt func(c, r int) int, cols, rows int, k, thick, pw, ph float64) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if c+1 < cols {
					// Shared edge ph, center distance pw.
					g := k * thick * ph / pw
					pn.Net.AddConductance(nodeAt(c, r), nodeAt(c+1, r), g)
				}
				if r+1 < rows {
					g := k * thick * pw / ph
					pn.Net.AddConductance(nodeAt(c, r), nodeAt(c, r+1), g)
				}
			}
		}
	}
	lateral(func(c, r int) int { return pn.SilNode[r*opts.Cols+c] }, opts.Cols, opts.Rows, kSil, tSil, tileW, tileH)

	// --- TIM layer (skipping TEC sites) --------------------------------
	for t := 0; t < nt; t++ {
		if opts.TECSites[t] {
			continue
		}
		pn.TIMNode[t] = pn.Net.AddNode(Node{Kind: KindTIM, Tile: t})
		// Vertical silicon <-> TIM: two half-slabs in series.
		g := tileArea / (tSil/(2*kSil) + tTIM/(2*kTIM))
		pn.Net.AddConductance(pn.SilNode[t], pn.TIMNode[t], g)
	}
	// Lateral TIM conductances between present neighbors.
	for r := 0; r < opts.Rows; r++ {
		for c := 0; c < opts.Cols; c++ {
			t := r*opts.Cols + c
			if pn.TIMNode[t] < 0 {
				continue
			}
			if c+1 < opts.Cols && pn.TIMNode[t+1] >= 0 {
				pn.Net.AddConductance(pn.TIMNode[t], pn.TIMNode[t+1], kTIM*tTIM*tileH/tileW)
			}
			if r+1 < opts.Rows && pn.TIMNode[t+opts.Cols] >= 0 {
				pn.Net.AddConductance(pn.TIMNode[t], pn.TIMNode[t+opts.Cols], kTIM*tTIM*tileW/tileH)
			}
		}
	}

	// --- Spreader layer -------------------------------------------------
	spr := &layerGrid{cells: opts.SpreaderCells, pitch: geom.SpreaderSide / float64(opts.SpreaderCells), origin: -geom.SpreaderSide / 2}
	spr.node = make([]int, spr.cells*spr.cells)
	for r := 0; r < spr.cells; r++ {
		for c := 0; c < spr.cells; c++ {
			spr.node[spr.idx(c, r)] = pn.Net.AddNode(Node{Kind: KindSpreader, Tile: -1})
		}
	}
	lateral(func(c, r int) int { return spr.node[spr.idx(c, r)] }, spr.cells, spr.cells, kCu, tSpr, spr.pitch, spr.pitch)
	pn.halfSprPerArea = kCu / (tSpr / 2)

	// TIM/TEC-site <-> spreader coupling by area overlap.
	for t := 0; t < nt; t++ {
		tr := tileRect(t)
		var shares []SprShare
		for r := 0; r < spr.cells; r++ {
			for c := 0; c < spr.cells; c++ {
				ov := tr.Overlap(spr.rect(c, r))
				if ov <= 0 {
					continue
				}
				shares = append(shares, SprShare{Node: spr.node[spr.idx(c, r)], Area: ov})
			}
		}
		pn.SprShares[t] = shares
		if pn.TIMNode[t] >= 0 {
			for _, sh := range shares {
				g := sh.Area / (tTIM/(2*kTIM) + tSpr/(2*kCu))
				pn.Net.AddConductance(pn.TIMNode[t], sh.Node, g)
			}
		}
	}

	// --- Sink layer -------------------------------------------------------
	snk := &layerGrid{cells: opts.SinkCells, pitch: geom.SinkSide / float64(opts.SinkCells), origin: -geom.SinkSide / 2}
	snk.node = make([]int, snk.cells*snk.cells)
	for r := 0; r < snk.cells; r++ {
		for c := 0; c < snk.cells; c++ {
			snk.node[snk.idx(c, r)] = pn.Net.AddNode(Node{Kind: KindSink, Tile: -1})
		}
	}
	lateral(func(c, r int) int { return snk.node[snk.idx(c, r)] }, snk.cells, snk.cells, kCu, tSnk, snk.pitch, snk.pitch)

	// Spreader <-> sink coupling by overlap.
	for r := 0; r < spr.cells; r++ {
		for c := 0; c < spr.cells; c++ {
			sr := spr.rect(c, r)
			for rr := 0; rr < snk.cells; rr++ {
				for cc := 0; cc < snk.cells; cc++ {
					ov := sr.Overlap(snk.rect(cc, rr))
					if ov <= 0 {
						continue
					}
					g := ov / (tSpr/(2*kCu) + tSnk/(2*kCu))
					pn.Net.AddConductance(spr.node[spr.idx(c, r)], snk.node[snk.idx(cc, rr)], g)
				}
			}
		}
	}

	// Convection to ambient: total 1/Rconvec split by sink cell area.
	gTotal := 1 / geom.ConvectionResistance
	cellFrac := 1 / float64(snk.cells*snk.cells)
	for _, node := range snk.node {
		pn.Net.AddGround(node, gTotal*cellFrac, geom.AmbientK)
	}

	return pn, nil
}

// NumTiles returns the number of silicon tiles.
func (pn *PackageNetwork) NumTiles() int { return pn.Opts.Cols * pn.Opts.Rows }

// AttachTEC wires a TEC device's two-node model (Figure 4) into TEC site
// t: a cold node coupled to the silicon tile through the contact
// conductance gc (in series with the lower half silicon slab) and a hot
// node coupled to the overlapping spreader cells through gh (split by
// overlap area, each in series with the upper half spreader slab), with
// the device conductance kappa between them. The Peltier conductors
// (+/- alpha*i) are NOT stamped here — they form the D matrix handled by
// the caller — and neither are the Joule heat sources, which depend on i.
//
// It returns the cold and hot node indices.
func (pn *PackageNetwork) AttachTEC(t int, gc, gh, kappa float64) (cold, hot int, err error) {
	if t < 0 || t >= pn.NumTiles() {
		return 0, 0, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.attach",
			"thermal: TEC site %d out of range %d", t, pn.NumTiles())
	}
	if !pn.Opts.TECSites[t] {
		return 0, 0, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.attach",
			"thermal: tile %d was not reserved as a TEC site", t)
	}
	if pn.ColdNode[t] >= 0 {
		return 0, 0, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.attach",
			"thermal: tile %d already has a TEC attached", t)
	}
	if !num.IsFinite(gc) || !num.IsFinite(gh) || !num.IsFinite(kappa) || gc <= 0 || gh <= 0 || kappa <= 0 {
		return 0, 0, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.attach",
			"thermal: TEC conductances must be positive (gc=%g gh=%g kappa=%g)", gc, gh, kappa)
	}
	cold = pn.Net.AddNode(Node{Kind: KindTECCold, Tile: t})
	hot = pn.Net.AddNode(Node{Kind: KindTECHot, Tile: t})
	pn.ColdNode[t], pn.HotNode[t] = cold, hot

	// Cold side to silicon: half silicon slab in series with contact.
	pn.Net.AddConductance(pn.SilNode[t], cold, seriesG(pn.halfSilG[t], gc))
	// Device conduction hot <-> cold.
	pn.Net.AddConductance(cold, hot, kappa)
	// Hot side to spreader cells, split by overlap area.
	var tileArea float64
	for _, sh := range pn.SprShares[t] {
		tileArea += sh.Area
	}
	for _, sh := range pn.SprShares[t] {
		frac := sh.Area / tileArea
		g := seriesG(gh*frac, pn.halfSprPerArea*sh.Area)
		pn.Net.AddConductance(hot, sh.Node, g)
	}
	return cold, hot, nil
}

func seriesG(a, b float64) float64 {
	if num.IsZero(a) || num.IsZero(b) {
		return 0
	}
	return a * b / (a + b)
}
