package thermal

import (
	"math"
	"testing"

	"tecopt/internal/floorplan"
	"tecopt/internal/mat"
	"tecopt/internal/material"
	"tecopt/internal/power"
)

func defaultPN(t *testing.T, tecSites map[int]bool) *PackageNetwork {
	t.Helper()
	opts := DefaultBuildOptions()
	opts.TECSites = tecSites
	pn, err := BuildPackage(material.DefaultPackage(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return pn
}

func TestBuildPackageNodeCounts(t *testing.T) {
	pn := defaultPN(t, nil)
	nt := pn.NumTiles()
	if nt != 144 {
		t.Fatalf("tiles = %d, want 144", nt)
	}
	wantNodes := 144 + 144 + 20*20 + 20*20
	if got := pn.Net.NumNodes(); got != wantNodes {
		t.Fatalf("nodes = %d, want %d", got, wantNodes)
	}
	if len(pn.Net.NodesOfKind(KindSilicon)) != 144 {
		t.Error("silicon node count wrong")
	}
	if len(pn.Net.NodesOfKind(KindTIM)) != 144 {
		t.Error("TIM node count wrong")
	}
}

func TestBuildPackageTECSitesSkipTIM(t *testing.T) {
	sites := map[int]bool{5: true, 77: true}
	pn := defaultPN(t, sites)
	if len(pn.Net.NodesOfKind(KindTIM)) != 142 {
		t.Fatalf("TIM nodes = %d, want 142", len(pn.Net.NodesOfKind(KindTIM)))
	}
	for tile := range sites {
		if pn.TIMNode[tile] != -1 {
			t.Errorf("TEC site %d still has a TIM node", tile)
		}
		if pn.ColdNode[tile] != -1 || pn.HotNode[tile] != -1 {
			t.Errorf("TEC site %d has device nodes before AttachTEC", tile)
		}
	}
}

func TestBuildPackageGroundConductanceMatchesConvection(t *testing.T) {
	pn := defaultPN(t, nil)
	want := 1 / pn.Geom.ConvectionResistance
	if got := pn.Net.TotalGroundConductance(); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("ground conductance = %v, want %v", got, want)
	}
}

func TestBuildPackageSprSharesCoverTiles(t *testing.T) {
	pn := defaultPN(t, nil)
	tileArea := (pn.Geom.DieWidth / float64(pn.Opts.Cols)) * (pn.Geom.DieHeight / float64(pn.Opts.Rows))
	for tt, shares := range pn.SprShares {
		var sum float64
		for _, sh := range shares {
			sum += sh.Area
		}
		if math.Abs(sum-tileArea) > 1e-9*tileArea {
			t.Fatalf("tile %d spreader shares sum to %g, want %g", tt, sum, tileArea)
		}
	}
}

func TestBuildPackageRejectsBadInputs(t *testing.T) {
	geom := material.DefaultPackage()
	if _, err := BuildPackage(geom, BuildOptions{Cols: 0, Rows: 12}); err == nil {
		t.Error("zero cols accepted")
	}
	geom.ConvectionResistance = -1
	if _, err := BuildPackage(geom, DefaultBuildOptions()); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestPassiveSolveUniformPower(t *testing.T) {
	pn := defaultPN(t, nil)
	// 20 W spread uniformly: all tile temperatures equal by symmetry,
	// and the mean sink rise must be ~ P * Rconv.
	tile := make([]float64, pn.NumTiles())
	for i := range tile {
		tile[i] = 20.0 / float64(len(tile))
	}
	theta, err := pn.SolvePassive(tile, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	sil := pn.SiliconTemps(theta)
	mn, _ := mat.Min(sil)
	mx, _ := mat.Max(sil)
	if mx-mn > 3 {
		t.Fatalf("uniform power but tile spread = %.2f K", mx-mn)
	}
	if mx < pn.Geom.AmbientK+5 {
		t.Fatalf("peak %.2f K barely above ambient %.2f K", mx, pn.Geom.AmbientK)
	}
	// 4-fold symmetry: corner tiles must match.
	g := pn.Opts.Cols
	c00 := sil[0]
	c11 := sil[g*g-1]
	if math.Abs(c00-c11) > 1e-6 {
		t.Fatalf("corner symmetry broken: %v vs %v", c00, c11)
	}
}

func TestPassiveSolveEnergyConservation(t *testing.T) {
	pn := defaultPN(t, nil)
	tile := make([]float64, pn.NumTiles())
	tile[57] = 5 // a single 5 W hotspot
	theta, err := pn.SolvePassive(tile, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	// All injected power must leave through the convection legs:
	// sum over grounds g*(theta_i - ambient) == 5 W.
	var out float64
	for _, gr := range pn.Net.grounds {
		out += gr.g * (theta[gr.i] - gr.sourceK)
	}
	if math.Abs(out-5) > 1e-6 {
		t.Fatalf("convected power = %v W, want 5", out)
	}
}

func TestPassiveSolveHotspotLocality(t *testing.T) {
	pn := defaultPN(t, nil)
	tile := make([]float64, pn.NumTiles())
	center := pn.Opts.Cols*6 + 6
	tile[center] = 2
	theta, err := pn.SolvePassive(tile, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	_, peakTile := pn.PeakSilicon(theta)
	if peakTile != center {
		t.Fatalf("peak at tile %d, want %d (the heated tile)", peakTile, center)
	}
	// Corner far from the hotspot must be much cooler.
	sil := pn.SiliconTemps(theta)
	if sil[center]-sil[0] < 1 {
		t.Fatalf("hotspot not localized: center %.3f corner %.3f", sil[center], sil[0])
	}
}

func TestAlphaPassivePeakCalibration(t *testing.T) {
	// The headline no-TEC number of Table I row "Alpha": theta_peak
	// should come out near the paper's 91.8 C for the calibrated power
	// model and package.
	pn := defaultPN(t, nil)
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)
	theta, err := pn.SolvePassive(p, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	peakK, tile := pn.PeakSilicon(theta)
	peakC := material.KelvinToCelsius(peakK)
	if peakC < 85 || peakC > 99 {
		t.Fatalf("Alpha no-TEC peak = %.1f C, want ~91.8 C", peakC)
	}
	// The hottest tile must belong to IntReg.
	intRegTiles := g.TilesOfUnit(f, "IntReg")
	found := false
	for _, tt := range intRegTiles {
		if tt == tile {
			found = true
		}
	}
	if !found {
		t.Errorf("peak tile %d not in IntReg %v", tile, intRegTiles)
	}
}

func TestAttachTECWiring(t *testing.T) {
	sites := map[int]bool{40: true}
	pn := defaultPN(t, sites)
	cold, hot, err := pn.AttachTEC(40, 0.25, 0.25, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if pn.ColdNode[40] != cold || pn.HotNode[40] != hot {
		t.Fatal("node bookkeeping wrong")
	}
	if pn.Net.Node(cold).Kind != KindTECCold || pn.Net.Node(hot).Kind != KindTECHot {
		t.Fatal("node kinds wrong")
	}
	// Double attach must fail.
	if _, _, err := pn.AttachTEC(40, 0.25, 0.25, 0.04); err == nil {
		t.Error("double attach accepted")
	}
	// Attaching on a non-site must fail.
	if _, _, err := pn.AttachTEC(41, 0.25, 0.25, 0.04); err == nil {
		t.Error("attach on non-site accepted")
	}
	if _, _, err := pn.AttachTEC(999, 0.25, 0.25, 0.04); err == nil {
		t.Error("attach out of range accepted")
	}
	// Bad conductances rejected (on a fresh site).
	pn2 := defaultPN(t, map[int]bool{7: true})
	if _, _, err := pn2.AttachTEC(7, 0, 0.25, 0.04); err == nil {
		t.Error("zero gc accepted")
	}
}

func TestAttachTECPassiveComparable(t *testing.T) {
	// With the TEC unpowered (i=0), the passive path through the device
	// should carry heat comparably to the TIM it replaced: peak within a
	// few degrees of the all-TIM case.
	f, g := floorplan.Alpha21364Grid()
	p := power.AlphaTilePowers(f, g)

	base := defaultPN(t, nil)
	thetaBase, err := base.SolvePassive(p, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	peakBase, _ := base.PeakSilicon(thetaBase)

	sites := map[int]bool{}
	for _, tt := range g.TilesOfUnit(f, "IntReg") {
		sites[tt] = true
	}
	withTEC := defaultPN(t, sites)
	for tt := range sites {
		// Plausible thin-film values: 0.25 W/K contacts, 0.04 W/K film.
		if _, _, err := withTEC.AttachTEC(tt, 0.25, 0.25, 0.04); err != nil {
			t.Fatal(err)
		}
	}
	thetaTEC, err := withTEC.SolvePassive(p, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	peakTEC, _ := withTEC.PeakSilicon(thetaTEC)
	if math.Abs(peakTEC-peakBase) > 10 {
		t.Fatalf("unpowered TEC changed peak by %.1f K (base %.1f, tec %.1f)",
			peakTEC-peakBase, peakBase, peakTEC)
	}
	if peakTEC < peakBase {
		t.Log("unpowered TEC slightly improves conduction (fine)")
	}
}

func TestPowerVectorValidation(t *testing.T) {
	pn := defaultPN(t, nil)
	if _, err := pn.PowerVector([]float64{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
	bad := make([]float64, pn.NumTiles())
	bad[0] = -1
	if _, err := pn.PowerVector(bad); err == nil {
		t.Error("negative power accepted")
	}
}

func TestGStructureFullPackage(t *testing.T) {
	pn := defaultPN(t, map[int]bool{10: true})
	if _, _, err := pn.AttachTEC(10, 0.25, 0.25, 0.04); err != nil {
		t.Fatal(err)
	}
	g := pn.Net.G()
	if !g.IsSymmetric(1e-9) {
		t.Fatal("G not symmetric")
	}
	// Spot-check Stieltjes sign structure on stored entries.
	for i := 0; i < g.Rows(); i++ {
		cols, vals := g.RowNNZ(i)
		for k, j := range cols {
			if i == j && vals[k] <= 0 {
				t.Fatalf("nonpositive diagonal at %d", i)
			}
			if i != j && vals[k] > 0 {
				t.Fatalf("positive off-diagonal at (%d,%d) = %g", i, j, vals[k])
			}
		}
	}
}
