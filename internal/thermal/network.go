// Package thermal builds and solves the compact thermal model of the
// chip package (Section IV of the paper).
//
// By the electro-thermal duality, heat flow through the package is
// modeled as current through a network of thermal conductances: each
// layer (silicon die, TIM, heat spreader, heat sink) is dissected into
// tiles, each tile becomes a network node, adjacent tiles are joined by
// conductances, the fan/heat-sink convection becomes conductances from
// the sink nodes to the ambient node, and the ambient is a fixed
// "voltage" (temperature) source against the absolute-zero ground.
// Dissipated power enters as current sources at the silicon nodes.
//
// The resulting steady-state equation is G*theta = p (Eq. 4 with i = 0),
// where G is an irreducible positive definite Stieltjes matrix; the TEC
// model of package tec extends it to (G - i*D)*theta = p.
package thermal

import (
	"fmt"

	"tecopt/internal/num"
	"tecopt/internal/sparse"
	"tecopt/internal/tecerr"
)

// NodeKind labels the physical role of a network node.
type NodeKind int

// Node kinds, from the active silicon down the cooling path. The paper's
// node sets SIL, HOT and CLD map to KindSilicon, KindTECHot and
// KindTECCold.
const (
	KindSilicon NodeKind = iota
	KindTIM
	KindSpreader
	KindSink
	KindTECCold
	KindTECHot
)

// String returns a short label for the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindSilicon:
		return "SIL"
	case KindTIM:
		return "TIM"
	case KindSpreader:
		return "SPR"
	case KindSink:
		return "SNK"
	case KindTECCold:
		return "CLD"
	case KindTECHot:
		return "HOT"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node carries a network node's identity.
type Node struct {
	Kind NodeKind
	// Tile is the silicon tile index this node sits over (or -1 for
	// spreader/sink nodes, which have their own layer grids).
	Tile int
}

// Network is a thermal conductance network under assembly. Conductances
// are in W/K, temperatures in kelvin, powers in watts.
type Network struct {
	nodes   []Node
	edges   []edge
	grounds []ground
}

type edge struct {
	i, j int
	g    float64
}

type ground struct {
	i       int
	g       float64
	sourceK float64 // temperature of the fixed node this leg connects to
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{} }

// AddNode appends a node and returns its index.
func (n *Network) AddNode(node Node) int {
	n.nodes = append(n.nodes, node)
	return len(n.nodes) - 1
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Node returns the node metadata for index i.
func (n *Network) Node(i int) Node { return n.nodes[i] }

// NodesOfKind returns the indices of all nodes of the given kind, in
// insertion order.
func (n *Network) NodesOfKind(k NodeKind) []int {
	var out []int
	for i, nd := range n.nodes {
		if nd.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// AddConductance joins nodes i and j with a thermal conductance g (W/K).
// Zero conductances are ignored; negative ones are rejected because a
// passive network cannot contain them (the TEC's negative Peltier
// "conductor" enters through the separate D matrix instead).
func (n *Network) AddConductance(i, j int, g float64) {
	if num.IsZero(g) {
		return
	}
	if !num.IsFinite(g) {
		panic(fmt.Sprintf("thermal: non-finite conductance %g between %d and %d", g, i, j))
	}
	if g < 0 {
		panic(fmt.Sprintf("thermal: negative conductance %g between %d and %d", g, i, j))
	}
	if i == j || i < 0 || j < 0 || i >= len(n.nodes) || j >= len(n.nodes) {
		panic(fmt.Sprintf("thermal: bad conductance endpoints (%d,%d) with %d nodes", i, j, len(n.nodes)))
	}
	n.edges = append(n.edges, edge{i, j, g})
}

// AddGround connects node i to a fixed-temperature node (typically the
// ambient) through conductance g. The fixed node is eliminated from the
// system: g lands on the diagonal of G and g*sourceK on the right-hand
// side, exactly the constant-voltage-source treatment of Section IV.A.
func (n *Network) AddGround(i int, g, sourceK float64) {
	if num.IsZero(g) {
		return
	}
	if !num.IsFinite(g) || !num.IsFinite(sourceK) {
		panic(fmt.Sprintf("thermal: non-finite ground leg (g=%g, sourceK=%g) at node %d", g, sourceK, i))
	}
	if g < 0 {
		panic(fmt.Sprintf("thermal: negative ground conductance %g at node %d", g, i))
	}
	if i < 0 || i >= len(n.nodes) {
		panic(fmt.Sprintf("thermal: ground at invalid node %d", i))
	}
	n.grounds = append(n.grounds, ground{i, g, sourceK})
}

// G assembles the conductance matrix: the weighted graph Laplacian of the
// edges plus the ground-leg conductances on the diagonal. The result is
// an irreducible positive definite Stieltjes matrix for any connected
// network with at least one ground leg (Lemma 1).
func (n *Network) G() *sparse.CSR {
	b := sparse.NewBuilder(len(n.nodes), len(n.nodes))
	for _, e := range n.edges {
		b.AddSym(e.i, e.j, -e.g)
		b.Add(e.i, e.i, e.g)
		b.Add(e.j, e.j, e.g)
	}
	for _, gr := range n.grounds {
		b.Add(gr.i, gr.i, gr.g)
	}
	return b.Build()
}

// BaseRHS returns the right-hand-side contribution of the eliminated
// fixed-temperature nodes: rhs[i] = sum of g*sourceK over node i's ground
// legs. Add per-node input powers on top to obtain the full p vector.
func (n *Network) BaseRHS() []float64 {
	rhs := make([]float64, len(n.nodes))
	for _, gr := range n.grounds {
		rhs[gr.i] += gr.g * gr.sourceK
	}
	return rhs
}

// Validate checks that the assembled network can yield a nonsingular
// positive definite G: it needs at least one node, at least one ground
// leg (otherwise the Laplacian is singular), and no isolated node (a
// node with neither an edge nor a ground leg produces an all-zero row).
// Edge and ground conductances are finite and non-negative by
// construction — AddConductance and AddGround reject everything else —
// so Validate only has to check the graph structure. Errors carry
// tecerr.CodeInvalidInput.
func (n *Network) Validate() error {
	if len(n.nodes) == 0 {
		return tecerr.New(tecerr.CodeInvalidInput, "thermal.validate",
			"thermal: network has no nodes")
	}
	if len(n.grounds) == 0 {
		return tecerr.New(tecerr.CodeInvalidInput, "thermal.validate",
			"thermal: network has no ground legs (G would be singular)")
	}
	touched := make([]bool, len(n.nodes))
	for _, e := range n.edges {
		touched[e.i], touched[e.j] = true, true
	}
	for _, gr := range n.grounds {
		touched[gr.i] = true
	}
	for i, ok := range touched {
		if !ok {
			return tecerr.Newf(tecerr.CodeInvalidInput, "thermal.validate",
				"thermal: node %d (%s) is isolated — no conductance or ground leg", i, n.nodes[i].Kind)
		}
	}
	return nil
}

// TotalGroundConductance returns the summed conductance to fixed nodes,
// useful for sanity checks (it must equal 1/Rconvec for the package
// model).
func (n *Network) TotalGroundConductance() float64 {
	var s float64
	for _, gr := range n.grounds {
		s += gr.g
	}
	return s
}
