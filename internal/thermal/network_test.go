package thermal

import (
	"math"
	"testing"

	"tecopt/internal/mat"
	"tecopt/internal/num"
	"tecopt/internal/sparse"
)

// tinyNetwork builds a 3-node chain with one ground leg:
//
//	n0 --2-- n1 --4-- n2 --(g=1, 300K)-- ambient
func tinyNetwork() *Network {
	n := NewNetwork()
	n0 := n.AddNode(Node{Kind: KindSilicon, Tile: 0})
	n1 := n.AddNode(Node{Kind: KindTIM, Tile: 0})
	n2 := n.AddNode(Node{Kind: KindSink, Tile: -1})
	n.AddConductance(n0, n1, 2)
	n.AddConductance(n1, n2, 4)
	n.AddGround(n2, 1, 300)
	return n
}

func TestNetworkGMatrix(t *testing.T) {
	n := tinyNetwork()
	g := n.G()
	want := [][]float64{
		{2, -2, 0},
		{-2, 6, -4},
		{0, -4, 5},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got := g.At(i, j); math.Abs(got-want[i][j]) > 1e-15 {
				t.Fatalf("G[%d][%d] = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
}

func TestNetworkBaseRHS(t *testing.T) {
	n := tinyNetwork()
	rhs := n.BaseRHS()
	want := []float64{0, 0, 300}
	for i := range want {
		if !num.ExactEqual(rhs[i], want[i]) {
			t.Fatalf("BaseRHS = %v, want %v", rhs, want)
		}
	}
	if g := n.TotalGroundConductance(); !num.ExactEqual(g, 1) {
		t.Fatalf("TotalGroundConductance = %v", g)
	}
}

func TestNetworkNoPowerEqualsAmbient(t *testing.T) {
	// With zero input power every node must sit at the ambient
	// temperature (equilibrium, no heat flow).
	n := tinyNetwork()
	theta, err := SolveSteady(n.G(), n.BaseRHS(), MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range theta {
		if math.Abs(v-300) > 1e-9 {
			t.Fatalf("theta[%d] = %v, want 300", i, v)
		}
	}
}

func TestNetworkPowerRaisesTemperature(t *testing.T) {
	n := tinyNetwork()
	rhs := n.BaseRHS()
	rhs[0] += 1 // 1 W at the silicon node
	theta, err := SolveSteady(n.G(), rhs, MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: the 1 W flows through 2, 4, 1 W/K in series:
	// theta2 = 300 + 1/1, theta1 = theta2 + 1/4, theta0 = theta1 + 1/2.
	want := []float64{301.75, 301.25, 301}
	for i := range want {
		if math.Abs(theta[i]-want[i]) > 1e-9 {
			t.Fatalf("theta = %v, want %v", theta, want)
		}
	}
}

func TestNetworkGIsStieltjesPD(t *testing.T) {
	n := tinyNetwork()
	g := n.G()
	dense := csrToDense(g)
	if !mat.IsStieltjes(dense, 1e-12) {
		t.Error("G is not Stieltjes")
	}
	if !mat.IsIrreducible(dense) {
		t.Error("G is not irreducible")
	}
	if !mat.IsPositiveDefinite(dense) {
		t.Error("G is not positive definite")
	}
}

func TestAddConductanceValidation(t *testing.T) {
	n := NewNetwork()
	a := n.AddNode(Node{})
	b := n.AddNode(Node{})
	n.AddConductance(a, b, 0) // ignored
	if len(n.edges) != 0 {
		t.Error("zero conductance stored")
	}
	for _, bad := range []func(){
		func() { n.AddConductance(a, b, -1) },
		func() { n.AddConductance(a, a, 1) },
		func() { n.AddConductance(a, 99, 1) },
		func() { n.AddGround(a, -1, 300) },
		func() { n.AddGround(99, 1, 300) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestNodesOfKind(t *testing.T) {
	n := tinyNetwork()
	if got := n.NodesOfKind(KindSilicon); len(got) != 1 || got[0] != 0 {
		t.Fatalf("NodesOfKind(SIL) = %v", got)
	}
	if got := n.NodesOfKind(KindTECHot); got != nil {
		t.Fatalf("NodesOfKind(HOT) = %v, want none", got)
	}
}

func TestNodeKindString(t *testing.T) {
	kinds := map[NodeKind]string{
		KindSilicon: "SIL", KindTIM: "TIM", KindSpreader: "SPR",
		KindSink: "SNK", KindTECCold: "CLD", KindTECHot: "HOT",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %s, want %s", int(k), k.String(), want)
		}
	}
	if NodeKind(99).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

// csrToDense converts for structural tests on small matrices.
func csrToDense(a *sparse.CSR) *mat.Dense {
	d := mat.NewDense(a.Rows(), a.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			d.Set(i, j, a.At(i, j))
		}
	}
	return d
}
