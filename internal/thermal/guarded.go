package thermal

import (
	"context"
	"errors"
	"strconv"

	"tecopt/internal/obs"
	"tecopt/internal/sparse"
	"tecopt/internal/tecerr"
)

// GuardedOptions configures the fallback-chain solve.
type GuardedOptions struct {
	// Chain lists the methods to try, in order. Empty selects the
	// default escalation CG+IC(0) -> banded Cholesky -> dense Cholesky:
	// cheapest first, and each later link is sturdier against the
	// ill-conditioning that builds up as i -> lambda_m (the direct band
	// factorization has no iteration to stall; the dense reference
	// factorization is the paper's own method and the last word).
	Chain []Method
	// CGTol is the relative residual tolerance of the CG link
	// (default 1e-12, matching SolveSteadyStats).
	CGTol float64
	// CGMaxIter caps the CG link's iterations (0 uses the sparse
	// package default).
	CGMaxIter int
	// X0 warm-starts the CG link from a previous nearby solution (nil
	// starts from zero). Along a current sweep or bisection, adjacent
	// operating points differ little, so the previous theta typically
	// cuts the iteration count substantially.
	X0 []float64
	// Precond overrides the CG link's preconditioner. Nil builds the
	// best one (IC(0), else Jacobi) from the system matrix per solve;
	// passing the base matrix's IC(0) amortizes its setup across the
	// nearby shifts of a sweep, for which it stays an effective
	// preconditioner.
	Precond sparse.Preconditioner
}

// GuardedAttempt records one failed link of the chain.
type GuardedAttempt struct {
	Method Method
	Err    error
}

// GuardedReport describes how a guarded solve succeeded.
type GuardedReport struct {
	// Method is the chain link that produced the solution.
	Method Method
	// Degraded is true when at least one earlier link failed, i.e. the
	// result is correct but was obtained on a fallback path. Callers
	// that must surface this can wrap it via tecerr.CodeDegraded.
	Degraded bool
	// Attempts lists the failed links, in chain order.
	Attempts []GuardedAttempt
	// Stats carries the iterative-path statistics when Method is CG.
	Stats SolveStats
}

// DefaultGuardedChain is the escalation order used when
// GuardedOptions.Chain is empty.
var DefaultGuardedChain = []Method{MethodCG, MethodBandCholesky, MethodDenseCholesky}

// SolveGuarded solves G*theta = rhs through a fallback chain of
// methods. Each link is tried in order; a link failure (divergence,
// non-convergence, factorization breakdown) is recorded and the next,
// sturdier link tried — this is the retry-with-escalation path for
// operating points near the runaway limit, where CG may stall on an
// arbitrarily ill-conditioned system that a direct factorization still
// handles. Degradations are counted and evented under
// "thermal.guarded.*" when observability is enabled.
//
// On success the report says which link won and whether the result is
// degraded (an earlier link failed). Cancellation aborts the chain
// immediately with a tecerr.CodeCancelled error. If every link fails,
// the returned error wraps the last link's failure — which, for a
// genuinely indefinite system (i beyond lambda_m), matches ErrNotPD the
// same way the unguarded path does.
func SolveGuarded(ctx context.Context, g *sparse.CSR, rhs []float64, opt GuardedOptions) ([]float64, *GuardedReport, error) {
	chain := opt.Chain
	if len(chain) == 0 {
		chain = DefaultGuardedChain
	}
	r := obs.Enabled()
	r.Counter("thermal.guarded.solves").Inc()
	var sp obs.Span
	if r.FlightOn() {
		// The per-solve span exists only in flight mode, keeping flat
		// JSONL traces byte-compatible. Annotate is a no-op on the zero
		// Span, so the success path below annotates unconditionally.
		ctx, sp = r.StartSpanCtx(ctx, "thermal.guarded.solve")
		defer sp.End()
	}
	report := &GuardedReport{}
	var lastErr error
	for _, m := range chain {
		if err := ctx.Err(); err != nil {
			return nil, nil, tecerr.Cancelled("thermal.guarded", err)
		}
		theta, st, err := solveLink(ctx, g, rhs, m, opt)
		if err == nil {
			report.Method = m
			report.Stats = st
			report.Degraded = len(report.Attempts) > 0
			if report.Degraded {
				r.Counter("thermal.guarded.degraded").Inc()
			}
			sp.Annotate("method", m.String())
			sp.AnnotateInt("failed_links", int64(len(report.Attempts)))
			if st.Iterative {
				sp.AnnotateInt("cg_iterations", int64(st.CGIterations))
				sp.Annotate("warm_start", strconv.FormatBool(opt.X0 != nil))
			}
			return theta, report, nil
		}
		if errors.Is(err, tecerr.ErrCancelled) {
			return nil, nil, err
		}
		report.Attempts = append(report.Attempts, GuardedAttempt{Method: m, Err: err})
		r.Counter("thermal.guarded.link_failures").Inc()
		r.EventCtx(ctx, "thermal.guarded.fallback", float64(m),
			obs.Attr{Key: "method", Value: m.String()},
			obs.Attr{Key: "reason", Value: tecerr.CodeOf(err).String()})
		lastErr = err
	}
	sp.Annotate("method", "exhausted")
	r.Counter("thermal.guarded.exhausted").Inc()
	return nil, nil, tecerr.Wrapf(tecerr.CodeOf(lastErr), "thermal.guarded", lastErr,
		"thermal: all %d solve methods failed", len(chain))
}

// solveLink runs one chain link. The CG link goes through SolveCGCtx so
// cancellation and the divergence guard apply; the direct links reuse
// the plain SolveSteadyStats paths (a factorization is one atomic unit
// of work — cancellation is honored between links).
func solveLink(ctx context.Context, g *sparse.CSR, rhs []float64, m Method, opt GuardedOptions) ([]float64, SolveStats, error) {
	var st SolveStats
	if m != MethodCG {
		return SolveSteadyStats(g, rhs, m)
	}
	tol := opt.CGTol
	if tol <= 0 {
		tol = 1e-12
	}
	pre := opt.Precond
	if pre == nil {
		pre = sparse.NewBestPreconditioner(g)
	}
	res, err := sparse.SolveCGCtx(ctx, g, rhs, sparse.CGOptions{
		Tol:     tol,
		MaxIter: opt.CGMaxIter,
		Precond: pre,
		X0:      opt.X0,
	})
	if res != nil {
		st = SolveStats{Iterative: true, CGIterations: res.Iterations, CGResidual: res.Residual}
	}
	if err != nil {
		if errors.Is(err, sparse.ErrBreakdown) {
			return nil, st, ErrNotPD
		}
		return nil, st, err
	}
	return res.X, st, nil
}

// SolveSteadyGuarded is the PackageNetwork-level convenience: assemble
// the passive power vector and solve through the fallback chain.
func (pn *PackageNetwork) SolveSteadyGuarded(ctx context.Context, tilePower []float64, opt GuardedOptions) ([]float64, *GuardedReport, error) {
	p, err := pn.PowerVector(tilePower)
	if err != nil {
		return nil, nil, err
	}
	rhs := pn.Net.BaseRHS()
	for i, v := range p {
		rhs[i] += v
	}
	return SolveGuarded(ctx, pn.Net.G(), rhs, opt)
}

// Validate checks the assembled package model: a structurally sound
// network (see Network.Validate) and a consistent tile-to-node mapping.
// Errors carry tecerr.CodeInvalidInput.
func (pn *PackageNetwork) Validate() error {
	if err := pn.Geom.Validate(); err != nil {
		return err
	}
	if err := pn.Net.Validate(); err != nil {
		return err
	}
	nt := pn.NumTiles()
	if len(pn.SilNode) != nt || len(pn.TIMNode) != nt || len(pn.ColdNode) != nt || len(pn.HotNode) != nt {
		return tecerr.Newf(tecerr.CodeInvalidInput, "thermal.validate",
			"thermal: tile node tables sized %d/%d/%d/%d, want %d",
			len(pn.SilNode), len(pn.TIMNode), len(pn.ColdNode), len(pn.HotNode), nt)
	}
	nn := pn.Net.NumNodes()
	for t := 0; t < nt; t++ {
		if pn.SilNode[t] < 0 || pn.SilNode[t] >= nn {
			return tecerr.Newf(tecerr.CodeInvalidInput, "thermal.validate",
				"thermal: tile %d silicon node %d out of range %d", t, pn.SilNode[t], nn)
		}
		if pn.TIMNode[t] < 0 && pn.ColdNode[t] < 0 && !pn.Opts.TECSites[t] {
			return tecerr.Newf(tecerr.CodeInvalidInput, "thermal.validate",
				"thermal: tile %d has neither a TIM node nor a TEC", t)
		}
	}
	return nil
}
