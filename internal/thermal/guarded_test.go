package thermal

import (
	"context"
	"errors"
	"math"
	"testing"

	"tecopt/internal/faults"
	"tecopt/internal/material"
	"tecopt/internal/sparse"
	"tecopt/internal/tecerr"
)

// testPackage builds the default package with a mild power profile and
// returns the network plus its assembled system.
func testPackage(t *testing.T) (*PackageNetwork, *sparse.CSR, []float64) {
	t.Helper()
	pn, err := BuildPackage(material.DefaultPackage(), DefaultBuildOptions())
	if err != nil {
		t.Fatalf("BuildPackage: %v", err)
	}
	tile := make([]float64, pn.NumTiles())
	for i := range tile {
		tile[i] = 0.5 + 0.01*float64(i%7)
	}
	p, err := pn.PowerVector(tile)
	if err != nil {
		t.Fatalf("PowerVector: %v", err)
	}
	rhs := pn.Net.BaseRHS()
	for i, v := range p {
		rhs[i] += v
	}
	return pn, pn.Net.G(), rhs
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestSolveGuardedHealthySystemUsesFirstLink(t *testing.T) {
	_, g, rhs := testPackage(t)
	theta, report, err := SolveGuarded(context.Background(), g, rhs, GuardedOptions{})
	if err != nil {
		t.Fatalf("SolveGuarded: %v", err)
	}
	if report.Degraded || report.Method != MethodCG || len(report.Attempts) != 0 {
		t.Fatalf("healthy solve degraded: %+v", report)
	}
	if !report.Stats.Iterative || report.Stats.CGIterations == 0 {
		t.Fatalf("CG stats missing: %+v", report.Stats)
	}
	ref, _, err := SolveSteadyStats(g, rhs, MethodDenseCholesky)
	if err != nil {
		t.Fatalf("dense reference: %v", err)
	}
	if d := maxAbsDiff(theta, ref); d > 1e-6 {
		t.Fatalf("guarded vs dense reference differ by %g K", d)
	}
}

func TestSolveGuardedFallsBackWhenCGFails(t *testing.T) {
	_, g, rhs := testPackage(t)
	// Force the CG link to fail on its first iteration; the chain must
	// degrade to the banded direct solver and still match the dense
	// reference.
	faults.Install(faults.New(1).Arm(faults.Rule{
		Site: faults.SiteCGIteration, Kind: faults.KindError, OnHit: 1,
		Err: sparse.ErrNotConverged,
	}))
	defer faults.Uninstall()
	theta, report, err := SolveGuarded(context.Background(), g, rhs, GuardedOptions{})
	if err != nil {
		t.Fatalf("SolveGuarded: %v", err)
	}
	if !report.Degraded || report.Method != MethodBandCholesky {
		t.Fatalf("expected band-Cholesky fallback, got %+v", report)
	}
	if len(report.Attempts) != 1 || !errors.Is(report.Attempts[0].Err, sparse.ErrNotConverged) {
		t.Fatalf("attempts = %+v", report.Attempts)
	}
	faults.Uninstall() // reference solve must run clean
	ref, _, err := SolveSteadyStats(g, rhs, MethodDenseCholesky)
	if err != nil {
		t.Fatalf("dense reference: %v", err)
	}
	if d := maxAbsDiff(theta, ref); d > 1e-6 {
		t.Fatalf("fallback result differs from dense reference by %g K", d)
	}
}

func TestSolveGuardedExhaustedOnIndefiniteSystem(t *testing.T) {
	// An indefinite 2x2: every link must fail, and the wrapped error
	// must still read as not-PD.
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	b.AddSym(0, 1, 2)
	a := b.Build()
	// rhs along the negative-eigenvalue direction, so CG hits negative
	// curvature immediately instead of converging inside the positive
	// subspace.
	_, report, err := SolveGuarded(context.Background(), a, []float64{1, -1}, GuardedOptions{})
	if err == nil || report != nil {
		t.Fatalf("indefinite system solved: report=%+v", report)
	}
	if !errors.Is(err, ErrNotPD) || !errors.Is(err, tecerr.ErrNotPD) {
		t.Fatalf("err = %v, want not-PD", err)
	}
}

func TestSolveGuardedCancellation(t *testing.T) {
	_, g, rhs := testPackage(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := SolveGuarded(ctx, g, rhs, GuardedOptions{})
	if !errors.Is(err, tecerr.ErrCancelled) {
		t.Fatalf("err = %v, want cancelled", err)
	}
}

func TestPackageNetworkValidate(t *testing.T) {
	pn, _, _ := testPackage(t)
	if err := pn.Validate(); err != nil {
		t.Fatalf("Validate on a healthy package: %v", err)
	}
}

func TestNetworkValidateRejectsDegenerateNetworks(t *testing.T) {
	empty := NewNetwork()
	if err := empty.Validate(); !errors.Is(err, tecerr.ErrInvalidInput) {
		t.Fatalf("empty network: %v", err)
	}
	ungrounded := NewNetwork()
	a := ungrounded.AddNode(Node{Kind: KindSilicon})
	b := ungrounded.AddNode(Node{Kind: KindTIM})
	ungrounded.AddConductance(a, b, 1)
	if err := ungrounded.Validate(); !errors.Is(err, tecerr.ErrInvalidInput) {
		t.Fatalf("ungrounded network: %v", err)
	}
	isolated := NewNetwork()
	c := isolated.AddNode(Node{Kind: KindSilicon})
	isolated.AddNode(Node{Kind: KindTIM}) // never wired
	isolated.AddGround(c, 1, 300)
	if err := isolated.Validate(); !errors.Is(err, tecerr.ErrInvalidInput) {
		t.Fatalf("isolated node: %v", err)
	}
}

func TestPowerVectorRejectsNonFinite(t *testing.T) {
	pn, _, _ := testPackage(t)
	tile := make([]float64, pn.NumTiles())
	tile[3] = math.NaN()
	if _, err := pn.PowerVector(tile); !errors.Is(err, tecerr.ErrInvalidInput) {
		t.Fatalf("NaN power: %v", err)
	}
	tile[3] = math.Inf(1)
	if _, err := pn.PowerVector(tile); !errors.Is(err, tecerr.ErrInvalidInput) {
		t.Fatalf("Inf power: %v", err)
	}
}

func TestAddConductancePanicsOnNaN(t *testing.T) {
	n := NewNetwork()
	a := n.AddNode(Node{Kind: KindSilicon})
	b := n.AddNode(Node{Kind: KindTIM})
	defer func() {
		if recover() == nil {
			t.Fatal("NaN conductance did not panic")
		}
	}()
	n.AddConductance(a, b, math.NaN())
}
