package thermal

import (
	"context"
	"errors"
	"math"
	"strconv"
	"sync/atomic"

	"tecopt/internal/num"
	"tecopt/internal/obs"
	"tecopt/internal/sparse"
	"tecopt/internal/tecerr"
)

// ReusableSystem owns one banded Cholesky factorization of the base
// matrix G and solves the whole current family (G - i*D) theta = rhs
// from it: per current it applies a Sherman-Morrison-Woodbury
// correction against the rank-2*#TEC capacitance matrix (sparse.SMW)
// instead of refactoring — the O(n*bw) fast path behind the runaway
// bisection, the current optimizer and the h_kl sweeps.
//
// The SMW eigendata also yields the spectral runaway limit
// lambda = 1/mu_max for free, so positive definiteness of G - i*D is a
// scalar comparison (PD) rather than a factorization attempt.
//
// Near the limit the capacitance matrix approaches singularity, so
// within a relative window around lambda SolveAtCurrent defers to an
// authoritative direct factorization of the shifted matrix (memoized
// for repeated solves at one current); should the conditioning guard
// trip outside that window — or under fault injection — it falls back
// to the SolveGuarded chain, warm-started from the last solution and
// preconditioned with the base matrix's IC(0), and reports the
// degradation in the GuardedReport.
//
// All methods are safe for concurrent use.
type ReusableSystem struct {
	g    *sparse.CSR
	d    []float64
	perm []int
	base *Factorization
	smw  *sparse.SMW
	// lambda is the spectral runaway limit 1/mu_max (+Inf when the
	// update has no positive direction); window is the relative
	// near-limit band handled by direct factorization.
	lambda float64
	window float64
	// pre is the base matrix's preconditioner, shared by every guarded
	// fallback (IC(0) of G stays effective for the nearby shifts).
	pre sparse.Preconditioner
	// near memoizes the last in-window direct factorization; warm holds
	// the last solution for CG warm starts.
	near atomic.Pointer[nearFactor]
	warm atomic.Pointer[[]float64]
}

// nearFactor is one memoized direct factorization of G - i*D inside the
// near-limit window (err keeps a not-PD outcome without refactoring).
type nearFactor struct {
	i   float64
	f   *Factorization
	err error
}

// reusableWindow is the relative band around the spectral limit where
// solves use a direct factorization: the spectral lambda and the
// Cholesky-breakdown boundary agree only to roughly eps*kappa(G), so
// within the band the factorization attempt is the authority on
// ErrNotPD, and the near-singular capacitance matrix could not hold the
// SMW accuracy contract anyway.
const reusableWindow = 1e-6

// NewReusableSystem factors G once (reusing perm as the RCM ordering
// when non-nil) and precomputes the SMW correction data for the
// diagonal update d. It returns ErrNotPD when G itself is not positive
// definite; an SMW setup failure (degenerate update) is returned as-is,
// and callers may fall back to per-current direct factorization.
func NewReusableSystem(g *sparse.CSR, d []float64, perm []int) (*ReusableSystem, error) {
	if g.Rows() != len(d) {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.reusable",
			"thermal: diagonal update length %d, want %d", len(d), g.Rows())
	}
	base, err := Factor(g, perm)
	if err != nil {
		return nil, err
	}
	smw, err := sparse.NewSMW(d, base.Solve)
	if err != nil {
		return nil, err
	}
	rs := &ReusableSystem{
		g:      g,
		d:      d,
		perm:   base.perm,
		base:   base,
		smw:    smw,
		lambda: smw.Lambda(),
		window: reusableWindow,
		pre:    sparse.NewBestPreconditioner(g),
	}
	if r := obs.Enabled(); r != nil {
		r.Counter("thermal.reusable.setups").Inc()
	}
	return rs, nil
}

// Lambda returns the spectral runaway limit 1/mu_max of the system
// (+Inf when it cannot run away).
func (rs *ReusableSystem) Lambda() float64 { return rs.lambda }

// Rank returns the SMW update rank (2 per deployed TEC).
func (rs *ReusableSystem) Rank() int { return rs.smw.Rank() }

// PD reports whether G - i*D is positive definite, decided spectrally
// in O(1): i < lambda. The spectral limit and the Cholesky-breakdown
// boundary agree to roughly eps*kappa(G) relative — far tighter than
// any physically meaningful probe — which makes PD the constant-time
// predicate behind the runaway bisection.
func (rs *ReusableSystem) PD(i float64) bool { return i < rs.lambda }

// SolveAtCurrent solves (G - i*D) theta = rhs. The report says which
// path produced the solution: MethodSMW for the fast path, a direct or
// guarded method otherwise (Degraded with the SMW attempt recorded when
// the conditioning guard forced the fallback). Currents at or beyond
// the runaway limit return ErrNotPD, matching the direct path.
func (rs *ReusableSystem) SolveAtCurrent(ctx context.Context, i float64, rhs []float64) ([]float64, *GuardedReport, error) {
	if !num.IsFinite(i) {
		return nil, nil, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.reusable",
			"thermal: non-finite supply current %g", i)
	}
	if len(rhs) != len(rs.d) {
		return nil, nil, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.reusable",
			"thermal: rhs length %d, want %d", len(rhs), len(rs.d))
	}
	r := obs.Enabled()
	var sp obs.Span
	if r.FlightOn() {
		// The per-solve span is the flight recorder's record of WHICH
		// regime this solve took; it exists only in flight mode so flat
		// traces stay byte-compatible. Annotate is a no-op on the zero
		// Span, so the regime paths below annotate unconditionally.
		ctx, sp = r.StartSpanCtx(ctx, "thermal.reusable.solve")
		sp.AnnotateFloat("current", i)
		defer sp.End()
	}
	if rs.smw.Rank() == 0 || num.IsZero(i) {
		x, err := rs.base.Solve(rhs)
		if err != nil {
			return nil, nil, err
		}
		if r != nil {
			r.Counter("thermal.reusable.smw_hits").Inc()
		}
		sp.Annotate("regime", "smw")
		return x, &GuardedReport{Method: MethodSMW}, nil
	}
	if !math.IsInf(rs.lambda, 1) {
		switch {
		case i >= rs.lambda*(1+rs.window):
			// Unambiguously beyond the limit: indefinite, like a failed
			// factorization attempt, without paying for one.
			if r != nil {
				r.Counter("thermal.reusable.beyond_limit").Inc()
			}
			sp.Annotate("regime", "beyond-limit")
			return nil, nil, ErrNotPD
		case i >= rs.lambda*(1-rs.window):
			return rs.solveNear(i, rhs, sp)
		}
	}

	y, err := rs.base.Solve(rhs)
	if err != nil {
		return nil, nil, err
	}
	cerr := rs.smw.Correct(i, y)
	if cerr == nil {
		if r != nil {
			r.Counter("thermal.reusable.smw_hits").Inc()
		}
		sp.Annotate("regime", "smw")
		warm := make([]float64, len(y))
		copy(warm, y)
		rs.warm.Store(&warm)
		return y, &GuardedReport{Method: MethodSMW}, nil
	}
	if errors.Is(cerr, tecerr.ErrInvalidInput) {
		return nil, nil, cerr
	}
	// Conditioning guard tripped (organically outside the near-limit
	// window only for pathological spectra, or under fault injection):
	// escalate through the guarded chain with the warm start and the
	// shared base preconditioner, and record the degradation.
	if r != nil {
		r.Counter("thermal.reusable.fallbacks").Inc()
	}
	sp.Annotate("regime", "guarded")
	sp.Annotate("guard_reason", tecerr.CodeOf(cerr).String())
	opts := GuardedOptions{Precond: rs.pre}
	if warm := rs.warm.Load(); warm != nil {
		opts.X0 = *warm
		if r != nil {
			r.Counter("thermal.reusable.warm_start_solves").Inc()
		}
	}
	sp.Annotate("warm_start", strconv.FormatBool(opts.X0 != nil))
	x, rep, err := SolveGuarded(ctx, rs.shifted(i), rhs, opts)
	if err != nil {
		return nil, nil, err
	}
	rep.Degraded = true
	rep.Attempts = append([]GuardedAttempt{{Method: MethodSMW, Err: cerr}}, rep.Attempts...)
	if r != nil && rep.Stats.Iterative {
		r.Counter("thermal.reusable.warm_start_iterations").Add(uint64(rep.Stats.CGIterations))
	}
	warm := make([]float64, len(x))
	copy(warm, x)
	rs.warm.Store(&warm)
	return x, rep, nil
}

// shifted materializes G - i*D.
func (rs *ReusableSystem) shifted(i float64) *sparse.CSR {
	return rs.g.AddScaledDiag(-i, rs.d)
}

// solveNear handles currents inside the near-limit window with a
// memoized direct factorization: deterministic, authoritative on
// ErrNotPD, and amortized across repeated solves at one current (the
// h_kl column sweeps solve many right-hand sides at the same i).
func (rs *ReusableSystem) solveNear(i float64, rhs []float64, sp obs.Span) ([]float64, *GuardedReport, error) {
	if r := obs.Enabled(); r != nil {
		r.Counter("thermal.reusable.near_limit").Inc()
	}
	sp.Annotate("regime", "direct")
	nf := rs.near.Load()
	memo := nf != nil && num.ExactEqual(nf.i, i)
	sp.Annotate("near_memo", strconv.FormatBool(memo))
	if !memo {
		f, err := Factor(rs.shifted(i), rs.perm)
		nf = &nearFactor{i: i, f: f, err: err}
		rs.near.Store(nf)
	}
	if nf.err != nil {
		return nil, nil, nf.err
	}
	x, err := nf.f.Solve(rhs)
	if err != nil {
		return nil, nil, err
	}
	return x, &GuardedReport{Method: MethodBandCholesky}, nil
}
