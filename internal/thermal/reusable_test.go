package thermal

import (
	"context"
	"errors"
	"math"
	"testing"

	"tecopt/internal/faults"
	"tecopt/internal/num"
	"tecopt/internal/obs"
	"tecopt/internal/sparse"
	"tecopt/internal/tecerr"
)

// testReusable builds a reusable system over the default package with a
// synthetic mixed-sign Seebeck-like diagonal on a few TEC-adjacent
// nodes, scaled so the runaway limit is finite and well inside the
// test's current range.
func testReusable(t *testing.T) (*ReusableSystem, *sparse.CSR, []float64, []float64) {
	t.Helper()
	_, g, rhs := testPackage(t)
	d := make([]float64, g.Rows())
	// Hot rows pump heat in (+), cold rows pump it out (-): the same
	// signature core.Array writes, without needing a deployment.
	for _, k := range []int{10, 25, 40, 55} {
		d[k] = 0.08
		d[k+1] = -0.05
	}
	rs, err := NewReusableSystem(g, d, nil)
	if err != nil {
		t.Fatalf("NewReusableSystem: %v", err)
	}
	return rs, g, d, rhs
}

// directAt is the reference: refactor the shifted matrix and solve.
func directAt(t *testing.T, g *sparse.CSR, d []float64, i float64, rhs []float64) []float64 {
	t.Helper()
	f, err := Factor(g.AddScaledDiag(-i, d), nil)
	if err != nil {
		t.Fatalf("direct factorization at i=%g: %v", i, err)
	}
	x, err := f.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestReusableMatchesDirectAcrossCurrents(t *testing.T) {
	rs, g, d, rhs := testReusable(t)
	lam := rs.Lambda()
	if math.IsInf(lam, 1) || lam <= 0 {
		t.Fatalf("lambda = %v, want finite positive", lam)
	}
	if rs.Rank() != 8 {
		t.Fatalf("rank = %d, want 8", rs.Rank())
	}
	ctx := context.Background()
	for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
		i := frac * lam
		x, rep, err := rs.SolveAtCurrent(ctx, i, rhs)
		if err != nil {
			t.Fatalf("SolveAtCurrent(%.3g*lambda): %v", frac, err)
		}
		if rep.Method != MethodSMW || rep.Degraded {
			t.Fatalf("i=%.3g*lambda: report %+v, want clean MethodSMW", frac, rep)
		}
		want := directAt(t, g, d, i, rhs)
		for k := range want {
			if math.Abs(x[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
				t.Fatalf("i=%.3g*lambda node %d: smw %v, direct %v", frac, k, x[k], want[k])
			}
		}
	}
}

// Inside the near-limit window the solve must come from the memoized
// direct factorization (the authority on ErrNotPD there) and still
// match a fresh direct solve exactly.
func TestReusableNearLimitWindow(t *testing.T) {
	rs, g, d, rhs := testReusable(t)
	i := rs.Lambda() * (1 - 1e-7) // inside the 1e-6 relative window
	x, rep, err := rs.SolveAtCurrent(context.Background(), i, rhs)
	if err != nil {
		t.Fatalf("near-limit solve: %v", err)
	}
	if rep.Method != MethodBandCholesky {
		t.Fatalf("near-limit method = %v, want MethodBandCholesky", rep.Method)
	}
	want := directAt(t, g, d, i, rhs)
	for k := range want {
		if !num.ExactEqual(x[k], want[k]) {
			t.Fatalf("memoized near-limit solve differs at node %d", k)
		}
	}
	// Second solve at the same current reuses the memo (same backing
	// factorization, identical output).
	x2, _, err := rs.SolveAtCurrent(context.Background(), i, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range x {
		if !num.ExactEqual(x[k], x2[k]) {
			t.Fatal("memoized factorization is not deterministic")
		}
	}
}

func TestReusableBeyondLimit(t *testing.T) {
	rs, _, _, rhs := testReusable(t)
	i := rs.Lambda() * (1 + 1e-3)
	if _, _, err := rs.SolveAtCurrent(context.Background(), i, rhs); !errors.Is(err, ErrNotPD) {
		t.Fatalf("beyond-limit err = %v, want ErrNotPD", err)
	}
	if rs.PD(i) {
		t.Fatal("PD true beyond lambda")
	}
	if !rs.PD(0.5 * rs.Lambda()) {
		t.Fatal("PD false below lambda")
	}
}

// A tripped conditioning guard must degrade to the guarded chain with
// the SMW attempt on the report, warm-start the second solve, and still
// deliver the direct answer.
func TestReusableGuardFallbackDegraded(t *testing.T) {
	r := obs.New(nil)
	prev := obs.SetGlobal(r)
	defer obs.SetGlobal(prev)

	rs, g, d, rhs := testReusable(t)
	i := 0.4 * rs.Lambda()
	// Seed the warm start with a clean solve before arming the fault.
	if _, _, err := rs.SolveAtCurrent(context.Background(), i, rhs); err != nil {
		t.Fatal(err)
	}
	faults.Install(faults.New(1).Arm(faults.Rule{
		Site: faults.SiteSMWGuard,
		Kind: faults.KindNaN,
	}))
	defer faults.Uninstall()

	x, rep, err := rs.SolveAtCurrent(context.Background(), i, rhs)
	if err != nil {
		t.Fatalf("degraded solve: %v", err)
	}
	if !rep.Degraded {
		t.Fatalf("report not degraded: %+v", rep)
	}
	if len(rep.Attempts) == 0 || rep.Attempts[0].Method != MethodSMW ||
		!errors.Is(rep.Attempts[0].Err, sparse.ErrSMWIllConditioned) {
		t.Fatalf("attempts = %+v, want leading SMW attempt with ErrSMWIllConditioned", rep.Attempts)
	}
	faults.Uninstall() // reference must run clean
	want := directAt(t, g, d, i, rhs)
	for k := range want {
		if math.Abs(x[k]-want[k]) > 1e-6*(1+math.Abs(want[k])) {
			t.Fatalf("degraded solve node %d: %v, direct %v", k, x[k], want[k])
		}
	}
	if got := r.Counter("thermal.reusable.fallbacks").Value(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
	if got := r.Counter("thermal.reusable.warm_start_solves").Value(); got != 1 {
		t.Fatalf("warm-start counter = %d, want 1 (warm start from the clean solve)", got)
	}
}

func TestReusableZeroRankAndZeroCurrent(t *testing.T) {
	_, g, rhs := testPackage(t)
	rs, err := NewReusableSystem(g, make([]float64, g.Rows()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rank() != 0 || !math.IsInf(rs.Lambda(), 1) {
		t.Fatalf("rank %d lambda %v, want 0 and +Inf", rs.Rank(), rs.Lambda())
	}
	want := directAt(t, g, make([]float64, g.Rows()), 0, rhs)
	for _, i := range []float64{0, 2.5} { // i is irrelevant when D = 0
		x, rep, err := rs.SolveAtCurrent(context.Background(), i, rhs)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Method != MethodSMW {
			t.Fatalf("method = %v, want MethodSMW", rep.Method)
		}
		for k := range want {
			if math.Abs(x[k]-want[k]) > 1e-12*(1+math.Abs(want[k])) {
				t.Fatalf("zero-rank solve differs at node %d", k)
			}
		}
	}
}

func TestReusableInvalidInput(t *testing.T) {
	rs, _, _, rhs := testReusable(t)
	ctx := context.Background()
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, _, err := rs.SolveAtCurrent(ctx, bad, rhs); !errors.Is(err, tecerr.ErrInvalidInput) {
			t.Errorf("current %v: err = %v, want CodeInvalidInput", bad, err)
		}
	}
	if _, _, err := rs.SolveAtCurrent(ctx, 0.1, rhs[:3]); !errors.Is(err, tecerr.ErrInvalidInput) {
		t.Errorf("short rhs err = %v, want CodeInvalidInput", err)
	}
	if _, err := NewReusableSystem(rs.g, make([]float64, 2), nil); !errors.Is(err, tecerr.ErrInvalidInput) {
		t.Errorf("mismatched d err = %v, want CodeInvalidInput", err)
	}
}
