package thermal

import (
	"errors"

	"tecopt/internal/faults"
	"tecopt/internal/mat"
	"tecopt/internal/num"
	"tecopt/internal/sparse"
	"tecopt/internal/tecerr"
)

// Solver method selection for steady-state solves.
type Method int

const (
	// MethodAuto picks BandCholesky (direct, exact) — the right choice
	// for the repeated factor-and-solve pattern of the optimizer.
	MethodAuto Method = iota
	// MethodBandCholesky forces the RCM + banded direct solver.
	MethodBandCholesky
	// MethodCG forces the preconditioned conjugate-gradient solver.
	MethodCG
	// MethodDenseCholesky forces a dense O(n^3) factorization — the
	// paper's stated method, practical for small models and useful as a
	// reference in solver-equivalence tests.
	MethodDenseCholesky
	// MethodSMW identifies the Sherman-Morrison-Woodbury fast path of
	// ReusableSystem in solve reports: one base factorization of G,
	// corrected per current against the rank-2*#TEC capacitance matrix.
	MethodSMW
)

// String names the method for reports, trace annotations and logs.
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodBandCholesky:
		return "band-cholesky"
	case MethodCG:
		return "cg"
	case MethodDenseCholesky:
		return "dense-cholesky"
	case MethodSMW:
		return "smw"
	default:
		return "unknown"
	}
}

// ErrNotPD reports that the system matrix is not positive definite, i.e.
// the operating point is at or beyond the thermal-runaway limit. It
// carries tecerr.CodeNotPD.
var ErrNotPD error = tecerr.New(tecerr.CodeNotPD, "thermal.factor",
	"thermal: system matrix not positive definite (beyond runaway limit?)")

// Factorization is a reusable direct factorization of a system matrix,
// with the RCM permutation folded in.
type Factorization struct {
	chol *sparse.BandCholesky
	perm []int // old -> new
	inv  []int // new -> old
}

// Factor computes an RCM-ordered banded Cholesky factorization of the
// symmetric positive definite matrix a. perm may be a precomputed RCM
// permutation for a's pattern (pass nil to compute one here); reusing a
// permutation across the many G - i*D factorizations of the optimizer
// saves the ordering cost, since the pattern never changes with i.
func Factor(a *sparse.CSR, perm []int) (*Factorization, error) {
	if perm == nil {
		perm = sparse.RCM(a)
	}
	ap := a.Permute(perm)
	chol, err := sparse.NewBandCholesky(ap)
	if err != nil {
		return nil, ErrNotPD
	}
	return &Factorization{chol: chol, perm: perm, inv: sparse.InvertPerm(perm)}, nil
}

// Solve solves A x = b using the factorization. A wrong-length rhs is
// reported as a tecerr.CodeInvalidInput error.
func (f *Factorization) Solve(b []float64) ([]float64, error) {
	if len(b) != len(f.perm) {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.factor",
			"thermal: Factorization.Solve rhs length %d, want %d", len(b), len(f.perm))
	}
	xp, err := f.chol.Solve(sparse.PermuteVec(f.perm, b))
	if err != nil {
		return nil, err
	}
	return sparse.PermuteVec(f.inv, xp), nil
}

// SolveStats reports per-solve statistics of the iterative path. For
// the direct methods it is the zero value (Iterative == false).
type SolveStats struct {
	// Iterative is true when the solve used CG; the remaining fields
	// are meaningful only then.
	Iterative bool
	// CGIterations is the iteration count the CG solve performed.
	CGIterations int
	// CGResidual is the final relative residual ||r|| / ||b||.
	CGResidual float64
}

// SolveSteady solves G*theta = rhs with the selected method.
func SolveSteady(g *sparse.CSR, rhs []float64, m Method) ([]float64, error) {
	theta, _, err := SolveSteadyStats(g, rhs, m)
	return theta, err
}

// SolveSteadyStats solves G*theta = rhs with the selected method and
// returns the solve statistics — for MethodCG, the iteration count and
// final residual that SolveSteady would otherwise discard.
func SolveSteadyStats(g *sparse.CSR, rhs []float64, m Method) ([]float64, SolveStats, error) {
	var st SolveStats
	switch m {
	case MethodAuto, MethodBandCholesky:
		f, err := Factor(g, nil)
		if err != nil {
			return nil, st, err
		}
		theta, err := f.Solve(rhs)
		return theta, st, err
	case MethodCG:
		res, err := sparse.SolveCG(g, rhs, sparse.CGOptions{
			Tol:     1e-12,
			Precond: sparse.NewBestPreconditioner(g),
		})
		if res != nil {
			st = SolveStats{Iterative: true, CGIterations: res.Iterations, CGResidual: res.Residual}
		}
		if err != nil {
			if errors.Is(err, sparse.ErrBreakdown) {
				return nil, st, ErrNotPD
			}
			return nil, st, err
		}
		return res.X, st, nil
	case MethodDenseCholesky:
		n := g.Rows()
		d := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			cols, vals := g.RowNNZ(i)
			for k, j := range cols {
				d.Set(i, j, vals[k])
			}
		}
		chol, err := mat.NewCholesky(d)
		if err != nil {
			return nil, st, ErrNotPD
		}
		return chol.Solve(rhs), st, nil
	default:
		return nil, st, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.solve",
			"thermal: unknown method %d", m)
	}
}

// PowerVector assembles the full nodal power vector p from per-tile
// silicon powers (W): p[SilNode[t]] = tilePower[t], everything else zero.
// Joule terms for active TECs are added by the caller, which owns the
// current level.
func (pn *PackageNetwork) PowerVector(tilePower []float64) ([]float64, error) {
	if len(tilePower) != pn.NumTiles() {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.power",
			"thermal: tile power length %d, want %d", len(tilePower), pn.NumTiles())
	}
	p := make([]float64, pn.Net.NumNodes())
	for t, pw := range tilePower {
		pw = faults.Float64(faults.SitePower, pw)
		if !num.IsFinite(pw) {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.power",
				"thermal: non-finite power %g at tile %d", pw, t)
		}
		if pw < 0 {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "thermal.power",
				"thermal: negative power %g at tile %d", pw, t)
		}
		p[pn.SilNode[t]] = pw
	}
	return p, nil
}

// SiliconTemps extracts the silicon-tile temperatures (kelvin) from a
// full nodal solution.
func (pn *PackageNetwork) SiliconTemps(theta []float64) []float64 {
	out := make([]float64, pn.NumTiles())
	for t, n := range pn.SilNode {
		out[t] = theta[n]
	}
	return out
}

// PeakSilicon returns the hottest silicon tile temperature and its index.
func (pn *PackageNetwork) PeakSilicon(theta []float64) (maxK float64, tile int) {
	maxK, tile = theta[pn.SilNode[0]], 0
	for t, n := range pn.SilNode[1:] {
		if theta[n] > maxK {
			maxK, tile = theta[n], t+1
		}
	}
	return maxK, tile
}

// SolvePassive is a convenience: solve the package with the given
// per-tile powers and no TEC current (pure conduction + convection).
func (pn *PackageNetwork) SolvePassive(tilePower []float64, m Method) ([]float64, error) {
	p, err := pn.PowerVector(tilePower)
	if err != nil {
		return nil, err
	}
	rhs := pn.Net.BaseRHS()
	for i, v := range p {
		rhs[i] += v
	}
	return SolveSteady(pn.Net.G(), rhs, m)
}
