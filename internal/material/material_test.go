package material

import (
	"math"
	"testing"

	"tecopt/internal/num"
)

func TestDefaultPackageValid(t *testing.T) {
	if err := DefaultPackage().Validate(); err != nil {
		t.Fatalf("DefaultPackage invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PackageGeometry)
	}{
		{"zero die width", func(g *PackageGeometry) { g.DieWidth = 0 }},
		{"negative die height", func(g *PackageGeometry) { g.DieHeight = -1 }},
		{"zero die thickness", func(g *PackageGeometry) { g.DieThickness = 0 }},
		{"zero tim thickness", func(g *PackageGeometry) { g.TIMThickness = 0 }},
		{"spreader smaller than die", func(g *PackageGeometry) { g.SpreaderSide = g.DieWidth / 2 }},
		{"sink smaller than spreader", func(g *PackageGeometry) { g.SinkSide = g.SpreaderSide / 2 }},
		{"zero spreader thickness", func(g *PackageGeometry) { g.SpreaderThickness = 0 }},
		{"zero sink thickness", func(g *PackageGeometry) { g.SinkThickness = 0 }},
		{"zero convection resistance", func(g *PackageGeometry) { g.ConvectionResistance = 0 }},
		{"nonpositive ambient", func(g *PackageGeometry) { g.AmbientK = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := DefaultPackage()
			c.mutate(&g)
			if g.Validate() == nil {
				t.Errorf("%s accepted", c.name)
			}
		})
	}
}

func TestTemperatureConversions(t *testing.T) {
	if got := CelsiusToKelvin(45); !num.AlmostEqual(got, 318.15, 1e-12) {
		t.Errorf("CelsiusToKelvin(45) = %v", got)
	}
	if got := KelvinToCelsius(318.15); math.Abs(got-45) > 1e-12 {
		t.Errorf("KelvinToCelsius(318.15) = %v", got)
	}
	// Round trip.
	if got := KelvinToCelsius(CelsiusToKelvin(85)); math.Abs(got-85) > 1e-12 {
		t.Errorf("round trip = %v", got)
	}
}

func TestSlabConductance(t *testing.T) {
	// 100 W/mK over 1 mm^2 through 0.1 mm: 100 * 1e-6 / 1e-4 = 1 W/K.
	got := SlabConductance(Silicon, 1e-6, 1e-4)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("SlabConductance = %v, want 1", got)
	}
}

func TestSlabConductancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero area")
		}
	}()
	SlabConductance(Silicon, 0, 1e-4)
}

func TestSeriesConductance(t *testing.T) {
	// Two 2 W/K conductances in series = 1 W/K.
	if got := SeriesConductance(2, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("SeriesConductance(2,2) = %v, want 1", got)
	}
	// A zero conductance breaks the path entirely.
	if got := SeriesConductance(2, 0); !num.IsZero(got) {
		t.Errorf("SeriesConductance(2,0) = %v, want 0", got)
	}
	if got := SeriesConductance(); !num.IsZero(got) {
		t.Errorf("SeriesConductance() = %v, want 0", got)
	}
}

func TestParallelConductance(t *testing.T) {
	if got := ParallelConductance(1, 2, 3); !num.ExactEqual(got, 6) {
		t.Errorf("ParallelConductance = %v, want 6", got)
	}
}

func TestMaterialConstantsSane(t *testing.T) {
	for _, m := range []Material{Silicon, TIM, Copper, Superlattice} {
		if m.Conductivity <= 0 || m.VolumetricHeatCapacity <= 0 {
			t.Errorf("%s has nonpositive properties: %+v", m.Name, m)
		}
	}
	if Copper.Conductivity <= Silicon.Conductivity {
		t.Error("copper should conduct better than silicon")
	}
	if Superlattice.Conductivity >= TIM.Conductivity {
		t.Error("superlattice film should conduct worse than TIM (that is its purpose)")
	}
}
