// Package material defines the thermal material properties and package
// geometry constants used by the compact and reference thermal models.
//
// Values follow the configuration the paper describes: silicon, TIM,
// copper spreader/sink constants "set according to an existing thermal
// simulator, HotSpot 4.1", and superlattice thin-film TEC properties from
// Chowdhury et al., Nature Nanotechnology 2009 (reference [1] of the
// paper). All quantities are SI: meters, watts, kelvins.
package material

import "tecopt/internal/num"

// Material groups the bulk properties needed for steady-state (k) and
// transient (C) thermal analysis.
type Material struct {
	Name string
	// Conductivity is the thermal conductivity in W/(m*K).
	Conductivity float64
	// VolumetricHeatCapacity is in J/(m^3*K); used by the transient
	// extension only.
	VolumetricHeatCapacity float64
}

// Standard chip-package materials (HotSpot 4.1 defaults).
var (
	// Silicon is the active die material.
	Silicon = Material{Name: "silicon", Conductivity: 100, VolumetricHeatCapacity: 1.75e6}
	// TIM is the thermal interface material layer in which the thin-film
	// TEC devices are immersed.
	TIM = Material{Name: "tim", Conductivity: 5, VolumetricHeatCapacity: 4.0e6}
	// Copper is used for the heat spreader and heat sink.
	Copper = Material{Name: "copper", Conductivity: 400, VolumetricHeatCapacity: 3.55e6}
	// Superlattice is the Bi2Te3/Sb2Te3 thin-film thermoelectric material
	// of Chowdhury et al. [1]; its low cross-plane conductivity is what
	// makes thin-film TECs viable.
	Superlattice = Material{Name: "superlattice", Conductivity: 1.2, VolumetricHeatCapacity: 1.2e6}
)

// PackageGeometry describes the layered chip package of Figure 2:
// silicon die, TIM (hosting the TECs), heat spreader, heat sink, and a
// fan/convection boundary to ambient.
type PackageGeometry struct {
	// DieWidth and DieHeight are the silicon die lateral dimensions (m).
	DieWidth, DieHeight float64
	// DieThickness is the silicon thickness (m).
	DieThickness float64
	// TIMThickness is the interface layer thickness (m); thin-film TEC
	// devices are flush with this layer.
	TIMThickness float64
	// SpreaderSide and SpreaderThickness describe the square copper
	// heat spreader (m).
	SpreaderSide, SpreaderThickness float64
	// SinkSide and SinkThickness describe the square copper heat sink
	// base (m).
	SinkSide, SinkThickness float64
	// ConvectionResistance is the total sink-to-ambient convection
	// resistance (K/W), lumping fins and airflow like HotSpot's r_convec.
	ConvectionResistance float64
	// AmbientK is the ambient temperature in kelvin.
	AmbientK float64
}

// DefaultPackage returns the package geometry used throughout the
// experiments: a 6 mm x 6 mm die (the paper's Alpha-21364-like chip) in a
// HotSpot-4.1-style package.
func DefaultPackage() PackageGeometry {
	return PackageGeometry{
		DieWidth:             6e-3,
		DieHeight:            6e-3,
		DieThickness:         0.15e-3,
		TIMThickness:         50e-6,
		SpreaderSide:         30e-3,
		SpreaderThickness:    1e-3,
		SinkSide:             60e-3,
		SinkThickness:        6.9e-3,
		ConvectionResistance: 0.894,
		AmbientK:             CelsiusToKelvin(45),
	}
}

// Validate reports whether the geometry is physically meaningful.
// Non-finite fields are rejected first: a NaN passes every `<= 0` sign
// test below (all comparisons with NaN are false), so without this
// check a NaN geometry would validate cleanly and poison the network
// assembly.
func (g PackageGeometry) Validate() error {
	for _, v := range []float64{
		g.DieWidth, g.DieHeight, g.DieThickness, g.TIMThickness,
		g.SpreaderSide, g.SpreaderThickness, g.SinkSide, g.SinkThickness,
		g.ConvectionResistance, g.AmbientK,
	} {
		if !num.IsFinite(v) {
			return errGeom("all dimensions must be finite")
		}
	}
	switch {
	case g.DieWidth <= 0 || g.DieHeight <= 0:
		return errGeom("die dimensions must be positive")
	case g.DieThickness <= 0 || g.TIMThickness <= 0:
		return errGeom("die and TIM thickness must be positive")
	case g.SpreaderSide < g.DieWidth || g.SpreaderSide < g.DieHeight:
		return errGeom("spreader must be at least as large as the die")
	case g.SinkSide < g.SpreaderSide:
		return errGeom("sink must be at least as large as the spreader")
	case g.SpreaderThickness <= 0 || g.SinkThickness <= 0:
		return errGeom("spreader and sink thickness must be positive")
	case g.ConvectionResistance <= 0:
		return errGeom("convection resistance must be positive")
	case g.AmbientK <= 0:
		return errGeom("ambient temperature must be positive kelvin")
	}
	return nil
}

type errGeom string

func (e errGeom) Error() string { return "material: invalid package geometry: " + string(e) }

// CelsiusToKelvin converts a Celsius temperature to kelvin.
func CelsiusToKelvin(c float64) float64 { return c + 273.15 }

// KelvinToCelsius converts a kelvin temperature to Celsius.
func KelvinToCelsius(k float64) float64 { return k - 273.15 }

// SlabConductance returns the through-thickness conductance k*A/t of a
// material slab with face area a (m^2) and thickness t (m).
func SlabConductance(m Material, a, t float64) float64 {
	if a <= 0 || t <= 0 {
		panic("material: slab area and thickness must be positive")
	}
	return m.Conductivity * a / t
}

// SeriesConductance combines conductances in series (zero if any is zero).
func SeriesConductance(gs ...float64) float64 {
	var r float64
	for _, g := range gs {
		if num.IsZero(g) {
			return 0
		}
		r += 1 / g
	}
	if num.IsZero(r) {
		return 0
	}
	return 1 / r
}

// ParallelConductance combines conductances in parallel.
func ParallelConductance(gs ...float64) float64 {
	var s float64
	for _, g := range gs {
		s += g
	}
	return s
}
