package optimize

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/num"
)

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.3) * (x - 1.3) }
	res, err := GoldenSection(f, -10, 10, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-1.3) > 1e-8 {
		t.Fatalf("X = %v, want 1.3", res.X)
	}
	if !res.Converged {
		t.Error("not converged")
	}
}

func TestGoldenSectionBoundaryMinimum(t *testing.T) {
	// Monotone increasing: minimum at the left edge.
	res, err := GoldenSection(func(x float64) float64 { return x }, 2, 5, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-2) > 1e-8 {
		t.Fatalf("X = %v, want 2", res.X)
	}
}

func TestGoldenSectionBadBracket(t *testing.T) {
	if _, err := GoldenSection(math.Sin, 3, 3, 1e-9, 0); !errors.Is(err, ErrInvalidBracket) {
		t.Fatalf("err = %v, want ErrInvalidBracket", err)
	}
}

func TestGoldenSectionMaxIter(t *testing.T) {
	_, err := GoldenSection(func(x float64) float64 { return x * x }, -1e9, 1e9, 1e-15, 3)
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("err = %v, want ErrMaxIterations", err)
	}
}

func TestBrentQuartic(t *testing.T) {
	f := func(x float64) float64 { return math.Pow(x+0.7, 4) + 2 }
	res, err := Brent(f, -5, 5, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X+0.7) > 1e-4 {
		t.Fatalf("X = %v, want -0.7", res.X)
	}
	if math.Abs(res.F-2) > 1e-9 {
		t.Fatalf("F = %v, want 2", res.F)
	}
}

func TestBrentMatchesGoldenSection(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) - 2*x } // min at ln 2
	g, err1 := GoldenSection(f, 0, 3, 1e-10, 0)
	b, err2 := Brent(f, 0, 3, 1e-10, 0)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if math.Abs(g.X-b.X) > 1e-6 || math.Abs(g.X-math.Ln2) > 1e-6 {
		t.Fatalf("golden %v vs brent %v, want ln2=%v", g.X, b.X, math.Ln2)
	}
}

func TestBrentBadBracket(t *testing.T) {
	if _, err := Brent(math.Sin, 1, 1, 1e-9, 0); !errors.Is(err, ErrInvalidBracket) {
		t.Fatalf("err = %v, want ErrInvalidBracket", err)
	}
}

func TestGradientDescentConvex(t *testing.T) {
	f := func(x float64) float64 { return (x - 2) * (x - 2) }
	res, err := GradientDescent(f, GradientDescentOptions{Lo: 0, Hi: 10, X0: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-2) > 1e-6 {
		t.Fatalf("X = %v, want 2", res.X)
	}
}

func TestGradientDescentAnalyticGrad(t *testing.T) {
	f := func(x float64) float64 { return x*x*x*x - 3*x }
	g := func(x float64) float64 { return 4*x*x*x - 3 }
	res, err := GradientDescent(f, GradientDescentOptions{Lo: 0, Hi: 2, X0: 2, Grad: g})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Cbrt(0.75)
	if math.Abs(res.X-want) > 1e-6 {
		t.Fatalf("X = %v, want %v", res.X, want)
	}
}

func TestGradientDescentProjectsToBoundary(t *testing.T) {
	// Unconstrained minimum at -3, feasible set [0, 5]: expect X ~ 0.
	f := func(x float64) float64 { return (x + 3) * (x + 3) }
	res, err := GradientDescent(f, GradientDescentOptions{Lo: 0, Hi: 5, X0: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.X > 1e-6 {
		t.Fatalf("X = %v, want 0 (projected)", res.X)
	}
}

func TestGradientDescentBadBracket(t *testing.T) {
	if _, err := GradientDescent(math.Sin, GradientDescentOptions{Lo: 2, Hi: 1}); !errors.Is(err, ErrInvalidBracket) {
		t.Fatalf("err = %v, want ErrInvalidBracket", err)
	}
}

func TestBisect(t *testing.T) {
	res, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-math.Sqrt2) > 1e-10 {
		t.Fatalf("X = %v, want sqrt(2)", res.X)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	res, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-12, 0)
	if err != nil || !num.IsZero(res.X) {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestBisectNoSignChange(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-9, 0); !errors.Is(err, ErrInvalidBracket) {
		t.Fatalf("err = %v, want ErrInvalidBracket", err)
	}
}

func TestBinarySearchBoundary(t *testing.T) {
	// pred true below 3.7.
	got, err := BinarySearchBoundary(func(x float64) bool { return x < 3.7 }, 0, 100, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3.7) > 1e-9 {
		t.Fatalf("boundary = %v, want 3.7", got)
	}
}

func TestBinarySearchBoundaryWholeRangeTrue(t *testing.T) {
	got, err := BinarySearchBoundary(func(x float64) bool { return true }, 0, 5, 1e-12, 0)
	if err != nil || !num.ExactEqual(got, 5) {
		t.Fatalf("got %v err %v, want 5", got, err)
	}
}

func TestBinarySearchBoundaryPredFalseAtLo(t *testing.T) {
	if _, err := BinarySearchBoundary(func(x float64) bool { return false }, 0, 1, 1e-9, 0); !errors.Is(err, ErrInvalidBracket) {
		t.Fatalf("err = %v, want ErrInvalidBracket", err)
	}
}

// Property: golden-section and gradient descent find the same minimizer of
// random positive-definite quadratics — the paper's two candidate current
// optimizers must agree.
func TestOptimizersAgreeOnQuadraticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.1 + rng.Float64()*5
		c := rng.Float64() * 10 // minimizer inside [0, 20]
		obj := func(x float64) float64 { return a * (x - c) * (x - c) }
		g, err1 := GoldenSection(obj, 0, 20, 1e-10, 0)
		d, err2 := GradientDescent(obj, GradientDescentOptions{Lo: 0, Hi: 20, X0: 20 * rng.Float64()})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(g.X-c) < 1e-6 && math.Abs(d.X-c) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Bisect finds a root with |f(root)| small for random monotone
// cubics with a sign change.
func TestBisectRootProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := -5 + 10*rng.Float64()
		fn := func(x float64) float64 { return (x - r) * (1 + x*x) }
		res, err := Bisect(fn, -6, 6, 1e-12, 0)
		if err != nil {
			return false
		}
		return math.Abs(res.X-r) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
