// Package optimize provides the one-dimensional optimization substrate
// used by the supply-current setting algorithm: golden-section search,
// Brent's method, gradient descent with backtracking line search (the
// method the paper names), bisection root finding, and the Lemma-4 convex
// feasibility test.
//
// The cooling-system current optimization (Problem 2 in the paper) is a
// one-dimensional convex program over i in [0, lambda_m); these routines
// are the "convex programming" machinery the paper invokes.
package optimize

import (
	"errors"
	"math"

	"tecopt/internal/num"
)

// ErrMaxIterations is returned when an iterative routine exhausts its
// budget before meeting its tolerance.
var ErrMaxIterations = errors.New("optimize: maximum iterations reached")

// ErrInvalidBracket is returned when a bracket [a, b] has a >= b or does
// not bracket the sought feature (e.g. no sign change for bisection).
var ErrInvalidBracket = errors.New("optimize: invalid bracket")

// Func is a scalar function of one variable.
type Func func(x float64) float64

// Result reports a scalar optimization outcome.
type Result struct {
	X          float64 // minimizer (or root) estimate
	F          float64 // function value at X
	Iterations int
	Converged  bool
}

// invPhi is 1/phi, the golden ratio section factor.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenSection minimizes a unimodal function on [a, b] to the absolute
// x-tolerance tol. It is derivative-free and robust, which suits
// max-of-convex objectives like the peak tile temperature whose derivative
// is only piecewise continuous.
func GoldenSection(f Func, a, b, tol float64, maxIter int) (Result, error) {
	if !(a < b) {
		return Result{}, ErrInvalidBracket
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	it := 0
	for ; it < maxIter && b-a > tol; it++ {
		if f1 <= f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	x := 0.5 * (a + b)
	res := Result{X: x, F: f(x), Iterations: it, Converged: b-a <= tol}
	if !res.Converged {
		return res, ErrMaxIterations
	}
	return res, nil
}

// Brent minimizes a unimodal function on [a, b] combining golden-section
// with successive parabolic interpolation. Typically 2-4x fewer function
// evaluations than pure golden-section on smooth objectives.
func Brent(f Func, a, b, tol float64, maxIter int) (Result, error) {
	if !(a < b) {
		return Result{}, ErrInvalidBracket
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	const cgold = 0.3819660112501051 // 2 - phi
	x := a + cgold*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	var d, e float64
	for it := 1; it <= maxIter; it++ {
		xm := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + 1e-15
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-0.5*(b-a) {
			return Result{X: x, F: fx, Iterations: it, Converged: true}, nil
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Parabolic fit through x, v, w.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etmp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || num.ExactEqual(w, x) {
				v, w = w, u
				fv, fw = fw, fu
			} else if fu <= fv || num.ExactEqual(v, x) || num.ExactEqual(v, w) {
				v, fv = u, fu
			}
		}
	}
	return Result{X: x, F: fx, Iterations: maxIter, Converged: false}, ErrMaxIterations
}

// GradientDescentOptions configures the projected gradient descent.
type GradientDescentOptions struct {
	// X0 is the starting point; clamped into [Lo, Hi].
	X0 float64
	// Lo, Hi bound the feasible interval (the paper's [0, lambda_m)).
	Lo, Hi float64
	// Step0 is the initial step size tried by the backtracking line
	// search. Defaults to (Hi-Lo)/4.
	Step0 float64
	// Tol is the convergence tolerance on |x_{k+1} - x_k|.
	Tol float64
	// GradEps is the finite-difference half-width used when Grad is nil.
	GradEps float64
	// Grad optionally supplies an analytic derivative.
	Grad Func
	// MaxIter caps the outer iterations. Defaults to 500.
	MaxIter int
}

// GradientDescent minimizes f over [Lo, Hi] with projected gradient
// descent and an Armijo backtracking line search. This mirrors the
// paper's Section V.C.3 ("we employ the gradient descent method");
// for 1-D convex objectives it converges to the same optimum as
// GoldenSection, which the tests verify.
func GradientDescent(f Func, opt GradientDescentOptions) (Result, error) {
	if !(opt.Lo < opt.Hi) {
		return Result{}, ErrInvalidBracket
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 500
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.Step0 <= 0 {
		opt.Step0 = (opt.Hi - opt.Lo) / 4
	}
	if opt.GradEps <= 0 {
		opt.GradEps = 1e-7 * (opt.Hi - opt.Lo)
	}
	clamp := func(x float64) float64 {
		if x < opt.Lo {
			return opt.Lo
		}
		if x > opt.Hi {
			return opt.Hi
		}
		return x
	}
	grad := opt.Grad
	if grad == nil {
		grad = func(x float64) float64 {
			h := opt.GradEps
			// One-sided differences at the interval boundaries.
			lo, hi := clamp(x-h), clamp(x+h)
			if num.ExactEqual(hi, lo) {
				return 0
			}
			return (f(hi) - f(lo)) / (hi - lo)
		}
	}

	x := clamp(opt.X0)
	fx := f(x)
	const armijo = 1e-4
	for it := 1; it <= opt.MaxIter; it++ {
		g := grad(x)
		if num.IsZero(g) {
			return Result{X: x, F: fx, Iterations: it, Converged: true}, nil
		}
		step := opt.Step0
		var xNew, fNew float64
		accepted := false
		for ls := 0; ls < 60; ls++ {
			xNew = clamp(x - step*g)
			fNew = f(xNew)
			if fNew <= fx-armijo*math.Abs(g*(xNew-x)) && !num.ExactEqual(xNew, x) {
				accepted = true
				break
			}
			step *= 0.5
		}
		if accepted {
			// Armijo alone can settle on a step that barely descends
			// (slow zig-zag on steep quadratics); keep halving while the
			// objective strictly improves and take the best point seen.
			for ls := 0; ls < 60; ls++ {
				step *= 0.5
				xTry := clamp(x - step*g)
				fTry := f(xTry)
				if fTry >= fNew || num.ExactEqual(xTry, x) {
					break
				}
				xNew, fNew = xTry, fTry
			}
		}
		if !accepted {
			// No descent possible: x is (numerically) optimal.
			return Result{X: x, F: fx, Iterations: it, Converged: true}, nil
		}
		if math.Abs(xNew-x) < opt.Tol {
			return Result{X: xNew, F: fNew, Iterations: it, Converged: true}, nil
		}
		x, fx = xNew, fNew
	}
	return Result{X: x, F: fx, Iterations: opt.MaxIter, Converged: false}, ErrMaxIterations
}

// Bisect finds a root of f in [a, b] (f(a) and f(b) must have opposite
// signs) to the absolute x-tolerance tol.
func Bisect(f Func, a, b, tol float64, maxIter int) (Result, error) {
	if !(a < b) {
		return Result{}, ErrInvalidBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	fa, fb := f(a), f(b)
	if num.IsZero(fa) {
		return Result{X: a, F: 0, Converged: true}, nil
	}
	if num.IsZero(fb) {
		return Result{X: b, F: 0, Converged: true}, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return Result{}, ErrInvalidBracket
	}
	var it int
	for it = 1; it <= maxIter && b-a > tol; it++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if num.IsZero(fm) {
			return Result{X: m, F: 0, Iterations: it, Converged: true}, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	x := 0.5 * (a + b)
	res := Result{X: x, F: f(x), Iterations: it, Converged: b-a <= tol}
	if !res.Converged {
		return res, ErrMaxIterations
	}
	return res, nil
}

// BinarySearchBoundary finds, within [lo, hi], the supremum of the set
// {x : pred(x)} assuming pred is true on a prefix [lo, x*) and false
// beyond. pred(lo) must hold. This implements the paper's lambda_m
// computation pattern: pred(i) = "G - i*D is positive definite".
func BinarySearchBoundary(pred func(float64) bool, lo, hi, tol float64, maxIter int) (float64, error) {
	if !(lo < hi) {
		return 0, ErrInvalidBracket
	}
	if !pred(lo) {
		return 0, ErrInvalidBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	if pred(hi) {
		// Boundary is at or beyond hi.
		return hi, nil
	}
	for it := 0; it < maxIter && hi-lo > tol*math.Max(1, math.Abs(hi)); it++ {
		m := 0.5 * (lo + hi)
		if pred(m) {
			lo = m
		} else {
			hi = m
		}
	}
	return lo, nil
}
