package optimize

import (
	"math"
	"testing"

	"tecopt/internal/num"
)

func TestCheckConvexInfeasibleNegativeDip(t *testing.T) {
	// (x-1)^2 - 0.5 dips below zero around x=1.
	lhs := func(x float64) float64 { return (x-1)*(x-1) - 0.5 }
	rep, err := CheckConvexInfeasible(lhs, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("negative dip not detected")
	}
	if math.Abs(rep.ArgMin-1) > 1e-6 || math.Abs(rep.MinValue+0.5) > 1e-9 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestCheckConvexInfeasibleNonnegative(t *testing.T) {
	lhs := func(x float64) float64 { return x * x }
	rep, err := CheckConvexInfeasible(lhs, -1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Fatal("nonnegative function reported feasible")
	}
}

func TestCheckConvexInfeasibleEndpointMinimum(t *testing.T) {
	// Decreasing on [0,1]: minimum at b=1 where value is -0.25.
	lhs := func(x float64) float64 { return 0.75 - x }
	rep, err := CheckConvexInfeasible(lhs, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || math.Abs(rep.ArgMin-1) > 1e-9 {
		t.Fatalf("rep = %+v, want feasible at x=1", rep)
	}
}

func TestCheckConvexInfeasibleDegenerateInterval(t *testing.T) {
	rep, err := CheckConvexInfeasible(func(x float64) float64 { return -1 }, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || !num.ExactEqual(rep.ArgMin, 2) {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestCheckConvexInfeasibleBadBracket(t *testing.T) {
	if _, err := CheckConvexInfeasible(math.Sin, 2, 1, 0); err == nil {
		t.Fatal("expected bracket error")
	}
}

func TestConvexityCheckCertifiesConvexCase(t *testing.T) {
	// eta(i) = 1/(1-i) on [0,1): convex, positive, increasing — the
	// canonical shape near the runaway limit. theta(i) = r i^2 eta/2 + ...
	// Lemma 4's sufficient condition r*eta + r*eta'(it)*i < 0 can never
	// hold (everything is nonnegative), so the check must certify.
	eta := func(i float64) float64 { return 1 / (1 - i) }
	etaPrime := func(i float64) float64 { return 1 / ((1 - i) * (1 - i)) }
	ok, failures := ConvexityCheck(eta, etaPrime, 1e-3, 1, 4)
	if !ok {
		t.Fatalf("convexity not certified, failures: %+v", failures)
	}
}

func TestConvexityCheckDetectsViolation(t *testing.T) {
	// A contrived strongly negative "eta" makes (12) feasible, so the
	// check must refuse to certify. (eta < 0 cannot arise physically —
	// Lemma 3 guarantees eta >= 0 — but the checker must still flag it.)
	eta := func(i float64) float64 { return -1.0 }
	etaPrime := func(i float64) float64 { return 0 }
	ok, failures := ConvexityCheck(eta, etaPrime, 1, 1, 2)
	if ok {
		t.Fatal("violation not detected")
	}
	if len(failures) == 0 {
		t.Fatal("no failure reports returned")
	}
}

func TestConvexityCheckRangesClamped(t *testing.T) {
	eta := func(i float64) float64 { return 1 }
	etaPrime := func(i float64) float64 { return 0 }
	ok, _ := ConvexityCheck(eta, etaPrime, 1, 1, 0) // ranges < 1 clamps to 1
	if !ok {
		t.Fatal("constant positive eta must certify")
	}
}
