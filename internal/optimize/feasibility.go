package optimize

import (
	"math"

	"tecopt/internal/num"
)

// Convex feasibility machinery for the paper's Lemma 4 / Theorem 4
// optimality check.
//
// Lemma 4: with eta convex and nonnegative on [0, lambda_m), theta_k(i) is
// convex on [i_t, i_{t+1}] whenever the convex feasibility problem
//
//	r*eta(i) + r*eta'(i_t)*i < 0,  i in [i_t, i_{t+1}]            (12)
//
// is infeasible. The left-hand side is convex (convex + linear), so
// infeasibility is decided by globally minimizing it over the interval and
// checking the minimum against zero.

// FeasibilityReport describes the outcome of a convex feasibility check.
type FeasibilityReport struct {
	Feasible bool    // a strictly negative point exists
	MinValue float64 // minimum of the LHS over the interval
	ArgMin   float64 // where the minimum is attained
}

// CheckConvexInfeasible decides whether the convex function lhs attains a
// strictly negative value on [a, b]. It minimizes lhs with golden-section
// (valid because a convex function is unimodal) and compares against
// -slack, where slack guards the strict inequality numerically.
func CheckConvexInfeasible(lhs Func, a, b, slack float64) (FeasibilityReport, error) {
	if !(a <= b) {
		return FeasibilityReport{}, ErrInvalidBracket
	}
	if slack < 0 {
		slack = 0
	}
	if num.ExactEqual(a, b) {
		v := lhs(a)
		return FeasibilityReport{Feasible: v < -slack, MinValue: v, ArgMin: a}, nil
	}
	res, err := GoldenSection(lhs, a, b, 1e-12*(1+math.Abs(b)), 300)
	if err != nil {
		return FeasibilityReport{}, err
	}
	// Endpoints can beat the interior estimate for monotone functions.
	minV, argMin := res.F, res.X
	if v := lhs(a); v < minV {
		minV, argMin = v, a
	}
	if v := lhs(b); v < minV {
		minV, argMin = v, b
	}
	return FeasibilityReport{Feasible: minV < -slack, MinValue: minV, ArgMin: argMin}, nil
}

// ConvexityCheck runs the paper's Theorem-4 test: it partitions [0, hi)
// into ranges subintervals 0 = i_0 < ... < i_m = hi and reports whether
// problem (12) is infeasible on each of them, which certifies that
// theta_k is convex on [0, hi).
//
// eta must be the (convex, nonnegative) network self-heating gain and
// etaPrime its derivative; r is the TEC electrical resistance. Increasing
// ranges tightens the lower bound eta'(i_t) <= eta'(i) at the cost of
// more subproblems, the runtime/accuracy trade-off the paper discusses.
func ConvexityCheck(eta, etaPrime Func, r, hi float64, ranges int) (certified bool, failures []FeasibilityReport) {
	if ranges < 1 {
		ranges = 1
	}
	// Stay strictly inside [0, hi): eta blows up at the runaway limit.
	const margin = 1e-6
	upper := hi * (1 - margin)
	for t := 0; t < ranges; t++ {
		it := upper * float64(t) / float64(ranges)
		it1 := upper * float64(t+1) / float64(ranges)
		slope := etaPrime(it)
		lhs := func(i float64) float64 { return r*eta(i) + r*slope*i }
		rep, err := CheckConvexInfeasible(lhs, it, it1, 0)
		if err != nil {
			failures = append(failures, FeasibilityReport{Feasible: true, MinValue: math.NaN(), ArgMin: it})
			continue
		}
		if rep.Feasible {
			failures = append(failures, rep)
		}
	}
	return len(failures) == 0, failures
}
