package eigen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/mat"
	"tecopt/internal/num"
)

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := mat.NewDenseFrom([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := SymEig(a, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("values = %v, want [1 3]", vals)
	}
	// Eigenvector check: A v = lambda v.
	for j := 0; j < 2; j++ {
		v := vecs.Col(j)
		av := a.MulVec(v)
		for i := range v {
			if math.Abs(av[i]-vals[j]*v[i]) > 1e-12 {
				t.Fatalf("A v != lambda v for pair %d", j)
			}
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := mat.Diagonal([]float64{5, -2, 7, 0})
	vals, _, err := SymEig(a, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-2, 0, 5, 7}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("values = %v, want %v", vals, want)
		}
	}
}

func TestSymEigEmptyAndNonSquare(t *testing.T) {
	if vals, _, err := SymEig(mat.NewDense(0, 0), false); err != nil || len(vals) != 0 {
		t.Fatalf("empty: %v %v", vals, err)
	}
	if _, _, err := SymEig(mat.NewDense(2, 3), false); err == nil {
		t.Fatal("non-square accepted")
	}
}

// Property: eigenvalues of random symmetric matrices satisfy trace and
// residual identities, and eigenvectors are orthonormal.
func TestSymEigRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEig(a, true)
		if err != nil {
			return false
		}
		// Trace identity.
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		for _, v := range vals {
			sum += v
		}
		if math.Abs(trace-sum) > 1e-8*(1+math.Abs(trace)) {
			return false
		}
		// Residuals and orthonormality.
		for j := 0; j < n; j++ {
			v := vecs.Col(j)
			av := a.MulVec(v)
			for i := range v {
				if math.Abs(av[i]-vals[j]*v[i]) > 1e-7*(1+math.Abs(vals[j])) {
					return false
				}
			}
			if math.Abs(mat.Norm2(v)-1) > 1e-8 {
				return false
			}
			for k := j + 1; k < n; k++ {
				if math.Abs(mat.Dot(v, vecs.Col(k))) > 1e-7 {
					return false
				}
			}
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPowerIterationDominant(t *testing.T) {
	a := mat.NewDenseFrom([][]float64{
		{4, 1, 0},
		{1, 3, 1},
		{0, 1, 2},
	})
	op := func(x []float64) []float64 { return a.MulVec(x) }
	lambda, vec, err := PowerIteration(op, 3, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, _ := SymEig(a, false)
	want := vals[len(vals)-1]
	if math.Abs(lambda-want) > 1e-8 {
		t.Fatalf("power iteration %v, dense %v", lambda, want)
	}
	if math.Abs(mat.Norm2(vec)-1) > 1e-9 {
		t.Fatal("eigenvector not normalized")
	}
}

func TestPowerIterationZeroOperator(t *testing.T) {
	op := func(x []float64) []float64 { return make([]float64, len(x)) }
	lambda, _, err := PowerIteration(op, 4, 1e-10, 0)
	if err != nil || !num.IsZero(lambda) {
		t.Fatalf("lambda=%v err=%v, want 0,nil", lambda, err)
	}
}

func TestLanczosMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	a := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	op := func(x []float64) []float64 { return a.MulVec(x) }
	ritz, err := Lanczos(op, n, n) // full-dimension Lanczos is exact
	if err != nil {
		t.Fatal(err)
	}
	dense, _, err := SymEig(a, false)
	if err != nil {
		t.Fatal(err)
	}
	// Extremal values must match tightly.
	if math.Abs(ritz[0]-dense[0]) > 1e-8 || math.Abs(ritz[len(ritz)-1]-dense[n-1]) > 1e-8 {
		t.Fatalf("extremal Ritz %v/%v vs dense %v/%v",
			ritz[0], ritz[len(ritz)-1], dense[0], dense[n-1])
	}
}

func TestLanczosPartialApproximatesExtremes(t *testing.T) {
	// A diagonal operator with a well-separated top eigenvalue: a few
	// Lanczos steps must capture it.
	n := 200
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = float64(i) / float64(n)
	}
	diag[n-1] = 10
	op := func(x []float64) []float64 {
		y := make([]float64, n)
		for i := range y {
			y[i] = diag[i] * x[i]
		}
		return y
	}
	ritz, err := Lanczos(op, n, 30)
	if err != nil {
		t.Fatal(err)
	}
	top := ritz[len(ritz)-1]
	if math.Abs(top-10) > 1e-6 {
		t.Fatalf("top Ritz value %v, want 10", top)
	}
}
