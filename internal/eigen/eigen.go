// Package eigen provides symmetric eigenvalue solvers: Householder
// tridiagonalization with implicit-shift QL for dense symmetric
// matrices, plus power iteration and Lanczos for extremal eigenvalues of
// large symmetric operators.
//
// In this repository the package serves as an independent cross-check of
// the thermal-runaway limit: Theorem 1's
//
//	lambda_m = min { theta' G theta : theta' D theta = 1 }
//
// equals 1 / mu_max where mu_max is the largest eigenvalue of
// L^{-1} D L^{-T} for the Cholesky factor G = L L' (a standard
// symmetric reduction of the generalized pencil (G, D)). The paper
// computes lambda_m by binary search over Cholesky positive-definiteness
// probes; core.System.RunawayLimitEigen uses this package to confirm the
// same limit spectrally.
package eigen

import (
	"errors"
	"fmt"
	"math"

	"tecopt/internal/mat"
	"tecopt/internal/num"
)

// ErrNotConverged is returned when an iterative eigenvalue routine fails
// to meet its tolerance within the iteration budget.
var ErrNotConverged = errors.New("eigen: iteration did not converge")

// SymEig computes all eigenvalues (ascending) and, when wantVectors is
// set, the corresponding orthonormal eigenvectors (as matrix columns) of
// the symmetric matrix a. Only the lower triangle is read.
func SymEig(a *mat.Dense, wantVectors bool) (values []float64, vectors *mat.Dense, err error) {
	if !a.IsSquare() {
		return nil, nil, fmt.Errorf("eigen: non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	if n == 0 {
		return nil, nil, nil
	}
	d, e, q := householderTridiag(a, wantVectors)
	if err := tql(d, e, q); err != nil {
		return nil, nil, err
	}
	// Sort ascending (tql leaves them unsorted in general).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && d[idx[j]] < d[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	values = make([]float64, n)
	for i, k := range idx {
		values[i] = d[k]
	}
	if wantVectors {
		vectors = mat.NewDense(n, n)
		for j, k := range idx {
			for i := 0; i < n; i++ {
				vectors.Set(i, j, q.At(i, k))
			}
		}
	}
	return values, vectors, nil
}

// householderTridiag reduces the symmetric matrix a to tridiagonal form,
// returning the diagonal d, subdiagonal e (e[0] unused), and — when
// wantQ — the accumulated orthogonal transform Q with A = Q T Q'.
func householderTridiag(a *mat.Dense, wantQ bool) (d, e []float64, q *mat.Dense) {
	n := a.Rows()
	// Work on a copy; classic Numerical-Recipes-style tred2.
	z := a.Clone()
	mat.Symmetrize(z)
	d = make([]float64, n)
	e = make([]float64, n)

	for i := n - 1; i >= 1; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if num.IsZero(scale) {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					z.Set(i, k, z.At(i, k)/scale)
					h += z.At(i, k) * z.At(i, k)
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Set(j, k, z.At(j, k)-f*e[k]-g*z.At(i, k))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	// Accumulate transforms.
	for i := 0; i < n; i++ {
		l := i - 1
		if !num.IsZero(d[i]) {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Set(k, j, z.At(k, j)-g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0)
			z.Set(i, j, 0)
		}
	}
	if wantQ {
		q = z
	}
	return d, e, q
}

// tql runs implicit-shift QL on the tridiagonal (d, e), optionally
// rotating the columns of q alongside (q may be nil).
func tql(d, e []float64, q *mat.Dense) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter > 50 {
				return ErrNotConverged
			}
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-16*dd {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if num.IsZero(r) {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if q != nil {
					for k := 0; k < q.Rows(); k++ {
						f := q.At(k, i+1)
						q.Set(k, i+1, s*q.At(k, i)+c*f)
						q.Set(k, i, c*q.At(k, i)-s*f)
					}
				}
			}
			if num.IsZero(r) && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// Op is a symmetric linear operator y = A x.
type Op func(x []float64) []float64

// PowerIteration estimates the dominant (largest |lambda|) eigenpair of
// the symmetric operator op of dimension n.
func PowerIteration(op Op, n int, tol float64, maxIter int) (lambda float64, vec []float64, err error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 5000
	}
	v := make([]float64, n)
	// Deterministic, non-degenerate start.
	for i := range v {
		v[i] = 1 + float64(i%7)/7
	}
	normalize(v)
	prev := math.Inf(1)
	for it := 0; it < maxIter; it++ {
		w := op(v)
		lambda = mat.Dot(v, w)
		nw := normalize(w)
		if num.IsZero(nw) {
			return 0, v, nil // operator annihilated the iterate: lambda ~ 0
		}
		v = w
		if math.Abs(lambda-prev) <= tol*(1+math.Abs(lambda)) {
			return lambda, v, nil
		}
		prev = lambda
	}
	return lambda, v, ErrNotConverged
}

// Lanczos estimates the extremal eigenvalues of the symmetric operator
// op of dimension n using k Lanczos steps with full reorthogonalization
// (robust for the modest k used here). It returns the Ritz values
// (ascending).
func Lanczos(op Op, n, k int) ([]float64, error) {
	if k <= 0 || k > n {
		k = n
		if k > 200 {
			k = 200
		}
	}
	vs := make([][]float64, 0, k+1)
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + float64(i%5)/5
	}
	normalize(v)
	vs = append(vs, v)
	alpha := make([]float64, 0, k)
	beta := make([]float64, 0, k)

	for j := 0; j < k; j++ {
		w := op(vs[j])
		a := mat.Dot(vs[j], w)
		alpha = append(alpha, a)
		mat.Axpy(-a, vs[j], w)
		if j > 0 {
			mat.Axpy(-beta[j-1], vs[j-1], w)
		}
		// Full reorthogonalization.
		for _, u := range vs {
			mat.Axpy(-mat.Dot(u, w), u, w)
		}
		b := mat.Norm2(w)
		if b < 1e-14 {
			break
		}
		beta = append(beta, b)
		mat.ScaleVec(1/b, w)
		vs = append(vs, w)
	}
	// Eigenvalues of the tridiagonal Ritz matrix.
	m := len(alpha)
	d := make([]float64, m)
	e := make([]float64, m)
	copy(d, alpha)
	for i := 1; i < m; i++ {
		e[i] = beta[i-1]
	}
	if err := tql(d, e, nil); err != nil {
		return nil, err
	}
	for i := 1; i < m; i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
	return d, nil
}

func normalize(v []float64) float64 {
	n := mat.Norm2(v)
	if num.IsZero(n) {
		return 0
	}
	mat.ScaleVec(1/n, v)
	return n
}
