package transient

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tecopt/internal/core"
	"tecopt/internal/num"
	"tecopt/internal/tec"
	"tecopt/internal/thermal"
)

// smallSystem builds a fast 6x6 configuration with a central hotspot.
func smallSystem(t *testing.T, sites []int) *core.System {
	t.Helper()
	p := make([]float64, 36)
	for i := range p {
		p[i] = 0.1
	}
	p[14] = 1.0
	sys, err := core.NewSystem(core.Config{
		Cols: 6, Rows: 6, SpreaderCells: 8, SinkCells: 8,
		Device: tec.ChowdhuryDevice(), TilePower: p,
	}, sites)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCapacitancesPositive(t *testing.T) {
	sys := smallSystem(t, []int{14})
	caps := Capacitances(sys.PN)
	if len(caps) != sys.NumNodes() {
		t.Fatalf("caps length %d, want %d", len(caps), sys.NumNodes())
	}
	for i, c := range caps {
		if c <= 0 {
			t.Fatalf("node %d (%v) has capacitance %v", i, sys.PN.Net.Node(i).Kind, c)
		}
	}
	// The sink plate holds far more heat than a silicon tile.
	var silMax, snkMin float64
	snkMin = math.Inf(1)
	for i, c := range caps {
		switch sys.PN.Net.Node(i).Kind {
		case thermal.KindSilicon:
			if c > silMax {
				silMax = c
			}
		case thermal.KindSink:
			if c < snkMin {
				snkMin = c
			}
		}
	}
	if snkMin <= silMax {
		t.Fatalf("sink cell capacity %v not above silicon tile %v", snkMin, silMax)
	}
}

func TestSimulateRelaxesToSteadyState(t *testing.T) {
	sys := smallSystem(t, nil)
	steady, err := sys.SolveAt(0)
	if err != nil {
		t.Fatal(err)
	}
	steadyPeak, _ := sys.PN.PeakSilicon(steady)
	// The sink-to-ambient time constant is ~C_sink*R_conv ~ 80 s, so
	// settle over many minutes. Backward Euler is unconditionally
	// stable, so a coarse step is fine.
	tr, err := Simulate(sys, []Phase{{Current: 0, Duration: 600}}, Options{Dt: 0.5, SampleEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Runaway {
		t.Fatal("stable system flagged as runaway")
	}
	last := tr.Samples[len(tr.Samples)-1]
	if math.Abs(last.PeakK-steadyPeak) > 0.2 {
		t.Fatalf("transient settled at %.3f K, steady state %.3f K", last.PeakK, steadyPeak)
	}
	// Monotone heat-up from ambient (no overshoot for this system).
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].PeakK < tr.Samples[i-1].PeakK-1e-6 {
			t.Fatalf("peak decreased during heat-up at sample %d", i)
		}
	}
}

func TestSimulateRunawayAboveLambda(t *testing.T) {
	sys := smallSystem(t, []int{14, 15})
	lambda, err := sys.RunawayLimit(core.RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Drive 20% beyond the runaway limit: the trajectory must blow up.
	tr, err := Simulate(sys, []Phase{{Current: lambda * 1.2, Duration: 300}}, Options{
		Dt: 0.02, SampleEvery: 50, RunawayCeilingK: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Runaway {
		last := tr.Samples[len(tr.Samples)-1]
		t.Fatalf("no runaway at i = 1.2*lambda_m; final peak %.1f K", last.PeakK)
	}
}

func TestSimulateStableJustBelowLambda(t *testing.T) {
	sys := smallSystem(t, []int{14, 15})
	lambda, err := sys.RunawayLimit(core.RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Simulate(sys, []Phase{{Current: lambda * 0.8, Duration: 30}}, Options{
		Dt: 0.05, SampleEvery: 20, RunawayCeilingK: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Runaway {
		t.Fatal("runaway below lambda_m")
	}
}

func TestSimulateScheduleSwitching(t *testing.T) {
	sys := smallSystem(t, []int{14})
	// Warm up passive, then switch the TEC on: the hotspot must cool.
	tr, err := Simulate(sys, []Phase{
		{Current: 0, Duration: 40},
		{Current: 4, Duration: 40},
	}, Options{Dt: 0.05, SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Find the peak temperature at the end of each phase.
	var endPassive, endActive float64
	for _, s := range tr.Samples {
		if s.TimeS <= 40 {
			endPassive = s.PeakK
		}
		endActive = s.PeakK
	}
	if endActive >= endPassive {
		t.Fatalf("switching the TEC on did not cool: %.3f -> %.3f K", endPassive, endActive)
	}
}

func TestSimulateValidation(t *testing.T) {
	sys := smallSystem(t, nil)
	if _, err := Simulate(sys, nil, Options{}); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := Simulate(sys, []Phase{{Current: 0, Duration: -1}}, Options{}); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := Simulate(sys, []Phase{{Current: -1, Duration: 1}}, Options{}); err == nil {
		t.Error("negative current accepted")
	}
	if _, err := Simulate(sys, []Phase{{Current: 0, Duration: 1}}, Options{Theta0: []float64{1}}); err == nil {
		t.Error("wrong theta0 length accepted")
	}
}

func TestSettleTimeAndSeries(t *testing.T) {
	sys := smallSystem(t, nil)
	tr, err := Simulate(sys, []Phase{{Current: 0, Duration: 50}}, Options{Dt: 0.05, SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.SettleTime(0.1)
	if st <= 0 || st > 50 {
		t.Fatalf("SettleTime = %v", st)
	}
	times, peaks := tr.PeakSeries()
	if len(times) != len(tr.Samples) || len(peaks) != len(times) {
		t.Fatal("PeakSeries length mismatch")
	}
	if peaks[0] >= peaks[len(peaks)-1] {
		t.Fatal("no heat-up visible in series")
	}
	if peaks[0] < 40 || peaks[0] > 50 {
		t.Fatalf("initial peak %.2f C, want ~ambient 45 C", peaks[0])
	}
	// Empty trace edge case.
	empty := &Trace{}
	if !num.IsZero(empty.SettleTime(1)) {
		t.Fatal("empty trace settle time not 0")
	}
}

// Property: backward Euler is unconditionally stable below lambda_m —
// for random step sizes and currents the trajectory stays bounded by the
// corresponding steady state (within tolerance).
func TestBackwardEulerUnconditionallyStableProperty(t *testing.T) {
	sys := smallSystem(t, []int{14, 15})
	lambda, err := sys.RunawayLimit(core.RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := math.Pow(10, -2+3*rng.Float64()) // 0.01 .. 10 s
		i := rng.Float64() * 0.9 * lambda
		steady, err := sys.SolveAt(i)
		if err != nil {
			return false
		}
		steadyPeak, _ := sys.PN.PeakSilicon(steady)
		tr, err := Simulate(sys, []Phase{{Current: i, Duration: 40 * dt}}, Options{
			Dt: dt, SampleEvery: 5, RunawayCeilingK: steadyPeak + 100,
		})
		if err != nil {
			return false
		}
		if tr.Runaway {
			return false
		}
		// Heat-up from ambient must never overshoot the steady state by
		// more than numerical noise.
		for _, s := range tr.Samples {
			if s.PeakK > steadyPeak+0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
