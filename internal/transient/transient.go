// Package transient extends the steady-state compact model with lumped
// thermal capacitances and a backward-Euler time integrator.
//
// The paper analyzes the steady state only and proves (Theorem 2) that
// for supply currents beyond lambda_m the steady-state temperatures
// diverge. This extension makes that statement dynamic: with node heat
// capacities C the package obeys
//
//	C dtheta/dt = -(G - i*D) theta + p(i),
//
// a linear ODE whose state matrix -(G - i*D) is Hurwitz exactly when
// G - i*D is positive definite. Below lambda_m every trajectory relaxes
// to the steady state; above it the runaway mode grows exponentially —
// the "thermal runaway of the system" the paper warns about, observable
// here as a rising trajectory rather than a failed factorization.
package transient

import (
	"context"
	"fmt"
	"math"

	"tecopt/internal/core"
	"tecopt/internal/material"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
	"tecopt/internal/thermal"
)

// Capacitances returns the lumped heat capacity (J/K) of every node of a
// package network: cell volume times the material's volumetric heat
// capacity. TEC hot/cold nodes get half the displaced TIM volume each
// (thin metal headers plus film, the same order of magnitude).
func Capacitances(pn *thermal.PackageNetwork) []float64 {
	geom := pn.Geom
	tileArea := (geom.DieWidth / float64(pn.Opts.Cols)) * (geom.DieHeight / float64(pn.Opts.Rows))
	sprCell := geom.SpreaderSide / float64(pn.Opts.SpreaderCells)
	snkCell := geom.SinkSide / float64(pn.Opts.SinkCells)

	caps := make([]float64, pn.Net.NumNodes())
	for i := range caps {
		switch pn.Net.Node(i).Kind {
		case thermal.KindSilicon:
			caps[i] = tileArea * geom.DieThickness * material.Silicon.VolumetricHeatCapacity
		case thermal.KindTIM:
			caps[i] = tileArea * geom.TIMThickness * material.TIM.VolumetricHeatCapacity
		case thermal.KindTECCold, thermal.KindTECHot:
			caps[i] = 0.5 * tileArea * geom.TIMThickness * material.Superlattice.VolumetricHeatCapacity
		case thermal.KindSpreader:
			caps[i] = sprCell * sprCell * geom.SpreaderThickness * material.Copper.VolumetricHeatCapacity
		case thermal.KindSink:
			caps[i] = snkCell * snkCell * geom.SinkThickness * material.Copper.VolumetricHeatCapacity
		}
	}
	return caps
}

// Phase is one segment of a piecewise-constant supply-current schedule.
type Phase struct {
	// Current is the TEC supply current during the phase (A).
	Current float64
	// Duration is the phase length in seconds.
	Duration float64
}

// Options configures a simulation.
type Options struct {
	// Dt is the time step (s). Default 1e-3.
	Dt float64
	// Theta0 is the initial field; defaults to the ambient temperature
	// everywhere.
	Theta0 []float64
	// RunawayCeilingK aborts the run when the peak silicon temperature
	// exceeds this value, flagging runaway. Default 1000 K.
	RunawayCeilingK float64
	// SampleEvery records every n-th step in the trace (default 1).
	SampleEvery int
	// Ctx, when non-nil, cancels the integration between steps. A
	// cancelled Simulate returns the partial trace accumulated so far
	// (Final set to the last field) alongside a tecerr.CodeCancelled
	// error, so callers can flush what was already integrated.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.Dt <= 0 {
		o.Dt = 1e-3
	}
	if o.RunawayCeilingK <= 0 {
		o.RunawayCeilingK = 1000
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	return o
}

// Sample is one recorded trajectory point.
type Sample struct {
	TimeS    float64
	PeakK    float64
	PeakTile int
	Current  float64
}

// Trace is a simulation result.
type Trace struct {
	Samples []Sample
	// Runaway is true when the simulation hit the temperature ceiling.
	Runaway bool
	// Final is the last full temperature field.
	Final []float64
}

// ErrBadSchedule reports an empty or non-positive schedule.
var ErrBadSchedule error = tecerr.New(tecerr.CodeInvalidInput, "transient.simulate",
	"transient: schedule must contain positive-duration phases")

// Simulate integrates the package ODE through the current schedule with
// backward Euler: (C/dt + G - i*D) theta_{n+1} = (C/dt) theta_n + p(i).
// Backward Euler is unconditionally stable for the stable regime and
// reproduces exponential growth in the runaway regime (for dt small
// against the unstable mode's time constant).
func Simulate(sys *core.System, schedule []Phase, opt Options) (*Trace, error) {
	opt = opt.withDefaults()
	if len(schedule) == 0 {
		return nil, ErrBadSchedule
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	r := obs.Enabled()
	if r != nil {
		var sp obs.Span
		ctx, sp = r.StartSpanCtx(ctx, "transient.simulate")
		defer sp.End()
		r.Counter("transient.simulations").Inc()
		r.Counter("transient.phases").Add(uint64(len(schedule)))
	}
	n := sys.NumNodes()
	caps := Capacitances(sys.PN)

	theta := make([]float64, n)
	if opt.Theta0 != nil {
		if len(opt.Theta0) != n {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "transient.simulate",
				"transient: theta0 length %d, want %d", len(opt.Theta0), n)
		}
		copy(theta, opt.Theta0)
	} else {
		for i := range theta {
			theta[i] = sys.Cfg.Geom.AmbientK
		}
	}

	tr := &Trace{}
	record := func(t float64, i float64) {
		peak, tile := sys.PN.PeakSilicon(theta)
		tr.Samples = append(tr.Samples, Sample{TimeS: t, PeakK: peak, PeakTile: tile, Current: i})
	}
	now := 0.0
	record(now, schedule[0].Current)

	cOverDt := make([]float64, n)
	for i, c := range caps {
		cOverDt[i] = c / opt.Dt
	}

	step := 0
	for _, ph := range schedule {
		// Each phase runs in a closure so its flight-recorder span (one
		// per factor-and-integrate segment) closes on every exit path.
		res, err := func(ph Phase) (*Trace, error) {
			if r.FlightOn() {
				var psp obs.Span
				_, psp = r.StartSpanCtx(ctx, "transient.phase")
				psp.AnnotateFloat("current", ph.Current)
				psp.AnnotateFloat("duration_s", ph.Duration)
				defer psp.End()
			}
			if ph.Duration <= 0 || ph.Current < 0 {
				return nil, ErrBadSchedule
			}
			// System matrix for this phase: (G - iD) + C/dt on the diagonal.
			m := sys.Matrix(ph.Current).AddScaledDiag(1, cOverDt)
			factStart := r.Now()
			fact, err := thermal.Factor(m, nil)
			if r != nil {
				r.ObserveSince("transient.phase_factor_ns", factStart)
			}
			if err != nil {
				// C/dt should dominate for reasonable dt; a failure means dt
				// is far too large for this current.
				return nil, fmt.Errorf("transient: implicit matrix not PD at i=%g (dt too large?): %w", ph.Current, err)
			}
			rhsConst := sys.RHS(ph.Current)
			steps := int(math.Ceil(ph.Duration / opt.Dt))
			rhs := make([]float64, n)
			for s := 0; s < steps; s++ {
				if step&63 == 0 {
					if err := ctx.Err(); err != nil {
						tr.Final = theta
						return tr, tecerr.Cancelled("transient.simulate", err)
					}
				}
				stepStart := r.Now()
				for i := range rhs {
					rhs[i] = rhsConst[i] + cOverDt[i]*theta[i]
				}
				if theta, err = fact.Solve(rhs); err != nil {
					return nil, err
				}
				if r != nil {
					r.Counter("transient.steps").Inc()
					r.ObserveSince("transient.step_ns", stepStart)
				}
				now += opt.Dt
				step++
				if step%opt.SampleEvery == 0 {
					record(now, ph.Current)
				}
				peak, _ := sys.PN.PeakSilicon(theta)
				if peak > opt.RunawayCeilingK {
					tr.Runaway = true
					tr.Final = theta
					record(now, ph.Current)
					return tr, nil
				}
			}
			return nil, nil
		}(ph)
		if res != nil || err != nil {
			return res, err
		}
	}
	tr.Final = theta
	return tr, nil
}

// SettleTime returns the first sample time at which the peak temperature
// stays within tolK of the final sample's peak, a crude settling-time
// estimate. Returns the last sample time if the trace never settles.
func (tr *Trace) SettleTime(tolK float64) float64 {
	if len(tr.Samples) == 0 {
		return 0
	}
	final := tr.Samples[len(tr.Samples)-1].PeakK
	for i, s := range tr.Samples {
		if math.Abs(s.PeakK-final) <= tolK {
			ok := true
			for _, later := range tr.Samples[i:] {
				if math.Abs(later.PeakK-final) > tolK {
					ok = false
					break
				}
			}
			if ok {
				return s.TimeS
			}
		}
	}
	return tr.Samples[len(tr.Samples)-1].TimeS
}

// PeakSeries extracts (time, peak Celsius) pairs for plotting.
func (tr *Trace) PeakSeries() (times, peaksC []float64) {
	times = make([]float64, len(tr.Samples))
	peaksC = make([]float64, len(tr.Samples))
	for i, s := range tr.Samples {
		times[i] = s.TimeS
		peaksC[i] = material.KelvinToCelsius(s.PeakK)
	}
	return times, peaksC
}
