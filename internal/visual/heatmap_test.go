package visual

import (
	"bytes"
	"image/png"
	"testing"

	"tecopt/internal/floorplan"
)

func testGrid(t *testing.T) (*floorplan.Floorplan, *floorplan.Grid) {
	t.Helper()
	f, g := floorplan.Alpha21364Grid()
	return f, g
}

func TestWriteHeatmapDecodes(t *testing.T) {
	f, g := testGrid(t)
	temps := make([]float64, g.NumTiles())
	for i := range temps {
		temps[i] = 320 + float64(i%12)
	}
	var buf bytes.Buffer
	err := WriteHeatmap(&buf, g, temps, HeatmapOptions{
		TECSites:  []int{100, 101},
		Floorplan: f,
		ColorBar:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("output is not valid PNG: %v", err)
	}
	b := img.Bounds()
	// 12x12 tiles at default 24 px plus a color bar.
	if b.Dx() != 12*24+36 || b.Dy() != 12*24 {
		t.Fatalf("image size %dx%d", b.Dx(), b.Dy())
	}
}

func TestWriteHeatmapLengthMismatch(t *testing.T) {
	_, g := testGrid(t)
	if err := WriteHeatmap(&bytes.Buffer{}, g, []float64{1}, HeatmapOptions{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestWriteHeatmapConstantField(t *testing.T) {
	// Constant temperatures: degenerate range must not divide by zero.
	_, g := testGrid(t)
	temps := make([]float64, g.NumTiles())
	for i := range temps {
		temps[i] = 300
	}
	var buf bytes.Buffer
	if err := WriteHeatmap(&buf, g, temps, HeatmapOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWriteHeatmapFixedScale(t *testing.T) {
	_, g := testGrid(t)
	temps := make([]float64, g.NumTiles())
	for i := range temps {
		temps[i] = 330
	}
	var buf bytes.Buffer
	err := WriteHeatmap(&buf, g, temps, HeatmapOptions{MinK: 318, MaxK: 365, CellPx: 8})
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 12*8 {
		t.Fatalf("CellPx not honored: %d", img.Bounds().Dx())
	}
}

func TestTempColorEndpoints(t *testing.T) {
	lo := tempColor(0)
	hi := tempColor(1)
	if lo.B <= lo.R {
		t.Errorf("cold color not blue-ish: %+v", lo)
	}
	if hi.R <= hi.B {
		t.Errorf("hot color not red-ish: %+v", hi)
	}
	// Clamping.
	if tempColor(-5) != lo || tempColor(9) != hi {
		t.Error("out-of-range fractions not clamped")
	}
}
