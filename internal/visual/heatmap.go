// Package visual renders temperature fields and deployment maps as PNG
// images (stdlib image/png only): per-tile heatmaps of the silicon layer
// with optional TEC-site markers and unit boundaries, plus a temperature
// color bar. Useful for inspecting optimization results beyond the
// ASCII maps.
package visual

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"tecopt/internal/floorplan"
	"tecopt/internal/num"
)

// HeatmapOptions configures rendering.
type HeatmapOptions struct {
	// CellPx is the pixel size of one tile (default 24).
	CellPx int
	// MinK, MaxK fix the color scale; when both zero the data range is
	// used.
	MinK, MaxK float64
	// TECSites marks tiles to outline as TEC devices.
	TECSites []int
	// Floorplan draws unit boundaries when non-nil (requires Grid's
	// tiling to match the floorplan's die).
	Floorplan *floorplan.Floorplan
	// ColorBar appends a vertical scale strip on the right.
	ColorBar bool
}

func (o HeatmapOptions) withDefaults() HeatmapOptions {
	if o.CellPx <= 0 {
		o.CellPx = 24
	}
	return o
}

// WriteHeatmap renders per-tile temperatures (kelvin, row-major with row
// 0 at the bottom, matching floorplan.Grid) into a PNG.
func WriteHeatmap(w io.Writer, g *floorplan.Grid, tileTempsK []float64, opt HeatmapOptions) error {
	if len(tileTempsK) != g.NumTiles() {
		return fmt.Errorf("visual: %d temperatures for %d tiles", len(tileTempsK), g.NumTiles())
	}
	opt = opt.withDefaults()
	minK, maxK := opt.MinK, opt.MaxK
	if num.IsZero(minK) && num.IsZero(maxK) {
		minK, maxK = tileTempsK[0], tileTempsK[0]
		for _, v := range tileTempsK {
			if v < minK {
				minK = v
			}
			if v > maxK {
				maxK = v
			}
		}
	}
	if !(maxK > minK) {
		maxK = minK + 1
	}

	cell := opt.CellPx
	wPx := g.Cols * cell
	hPx := g.Rows * cell
	barW := 0
	if opt.ColorBar {
		barW = cell + cell/2
	}
	img := image.NewRGBA(image.Rect(0, 0, wPx+barW, hPx))

	// Tiles.
	tecSet := map[int]bool{}
	for _, s := range opt.TECSites {
		tecSet[s] = true
	}
	for t := 0; t < g.NumTiles(); t++ {
		c, r := g.TileColRow(t)
		x0 := c * cell
		y0 := (g.Rows - 1 - r) * cell // row 0 at the bottom of the image
		col := tempColor((tileTempsK[t] - minK) / (maxK - minK))
		for y := y0; y < y0+cell; y++ {
			for x := x0; x < x0+cell; x++ {
				img.Set(x, y, col)
			}
		}
		if tecSet[t] {
			outlineRect(img, x0, y0, cell, cell, color.RGBA{0, 0, 0, 255}, 2)
		}
	}

	// Unit boundaries.
	if opt.Floorplan != nil {
		drawUnitBoundaries(img, g, opt.Floorplan, cell)
	}

	// Color bar.
	if opt.ColorBar {
		for y := 0; y < hPx; y++ {
			frac := 1 - float64(y)/float64(hPx-1)
			col := tempColor(frac)
			for x := wPx + cell/2; x < wPx+barW; x++ {
				img.Set(x, y, col)
			}
		}
	}
	return png.Encode(w, img)
}

// tempColor maps [0,1] onto a blue->cyan->yellow->red ramp.
func tempColor(frac float64) color.RGBA {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	// Piecewise-linear ramp through blue, cyan, yellow, red.
	type stop struct {
		at      float64
		r, g, b float64
	}
	stops := []stop{
		{0.00, 20, 50, 160},
		{0.33, 0, 200, 220},
		{0.66, 250, 220, 40},
		{1.00, 210, 30, 20},
	}
	for i := 1; i < len(stops); i++ {
		if frac <= stops[i].at {
			lo, hi := stops[i-1], stops[i]
			t := (frac - lo.at) / (hi.at - lo.at)
			return color.RGBA{
				R: uint8(lo.r + t*(hi.r-lo.r)),
				G: uint8(lo.g + t*(hi.g-lo.g)),
				B: uint8(lo.b + t*(hi.b-lo.b)),
				A: 255,
			}
		}
	}
	return color.RGBA{210, 30, 20, 255}
}

func outlineRect(img *image.RGBA, x0, y0, w, h int, col color.RGBA, thick int) {
	for d := 0; d < thick; d++ {
		for x := x0; x < x0+w; x++ {
			img.Set(x, y0+d, col)
			img.Set(x, y0+h-1-d, col)
		}
		for y := y0; y < y0+h; y++ {
			img.Set(x0+d, y, col)
			img.Set(x0+w-1-d, y, col)
		}
	}
}

// drawUnitBoundaries draws a thin line wherever horizontally or
// vertically adjacent tiles belong to different units.
func drawUnitBoundaries(img *image.RGBA, g *floorplan.Grid, f *floorplan.Floorplan, cell int) {
	line := color.RGBA{40, 40, 40, 255}
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			t := g.TileIndex(c, r)
			x0 := c * cell
			y0 := (g.Rows - 1 - r) * cell
			if c+1 < g.Cols && g.OwnerUnit[t] != g.OwnerUnit[g.TileIndex(c+1, r)] {
				for y := y0; y < y0+cell; y++ {
					img.Set(x0+cell-1, y, line)
				}
			}
			if r+1 < g.Rows && g.OwnerUnit[t] != g.OwnerUnit[g.TileIndex(c, r+1)] {
				for x := x0; x < x0+cell; x++ {
					img.Set(x, y0, line)
				}
			}
		}
	}
}
