package num

import (
	"math"
	"testing"
)

func TestIsZero(t *testing.T) {
	if !IsZero(0) || !IsZero(math.Copysign(0, -1)) {
		t.Error("IsZero must accept both signed zeros")
	}
	if IsZero(1e-300) || IsZero(-1e-300) {
		t.Error("IsZero must be bit-exact, not a nearness test")
	}
	if IsZero(math.NaN()) {
		t.Error("IsZero(NaN) must be false")
	}
}

func TestExactEqual(t *testing.T) {
	if !ExactEqual(1.5, 1.5) {
		t.Error("identical values must compare equal")
	}
	if ExactEqual(1.5, math.Nextafter(1.5, 2)) {
		t.Error("ExactEqual must not tolerate even one differing ulp")
	}
	if ExactEqual(math.NaN(), math.NaN()) {
		t.Error("NaN must not equal NaN")
	}
	if !ExactEqual(math.Inf(1), math.Inf(1)) {
		t.Error("equal infinities must compare equal")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("values within tol must compare equal")
	}
	if AlmostEqual(1.0, 1.1, 1e-9) {
		t.Error("values beyond tol must differ")
	}
	if !AlmostEqual(math.Inf(1), math.Inf(1), 1e-9) {
		t.Error("equal infinities must compare equal")
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1e-9) {
		t.Error("NaN compares equal to nothing")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative tolerance must panic")
		}
	}()
	AlmostEqual(1, 1, -1)
}

func TestEqualWithin(t *testing.T) {
	if !EqualWithin(1e12, 1e12*(1+1e-12), 1e-9) {
		t.Error("relative comparison must scale with magnitude")
	}
	if EqualWithin(1.0, 2.0, 1e-9) {
		t.Error("distinct values must differ")
	}
	if !EqualWithin(0, 1e-12, 1e-9) {
		t.Error("near zero the test must fall back to absolute tolerance")
	}
}
