// Package num provides the repository's approved floating-point
// comparison helpers. The teclint floateq analyzer forbids raw ==/!=
// between floats everywhere else; code states its intent by choosing
// one of these helpers instead:
//
//   - IsZero / ExactEqual for deliberate bit-exact comparisons
//     (sparsity sentinels, Brent-method progress checks, determinism
//     assertions),
//   - AlmostEqual / EqualWithin for numerical comparisons where two
//     mathematically equal values may differ by rounding.
//
// The helper names are registered in lint.FloatEqAllowlist, so their
// bodies are the only places a raw float comparison is permitted.
package num

import "math"

// IsZero reports whether v is exactly +0 or -0. Use it for bit-exact
// zero sentinels: structural zeros in sparse matrices, "option not set"
// defaults, division guards against literal zero. It is intentionally
// NOT a small-magnitude test; use AlmostEqual(v, 0, tol) to test
// nearness to zero.
func IsZero(v float64) bool { return v == 0 }

// ExactEqual reports whether a and b are bit-for-bit the same value
// (with +0 == -0, and NaN never equal, following IEEE-754 ==). Use it
// where exactness is the point: tie-breaking, caching, asserting that
// two code paths computed the identical float.
func ExactEqual(a, b float64) bool { return a == b }

// AlmostEqual reports whether a and b differ by at most tol in absolute
// value. Infinities of the same sign compare equal; NaN compares equal
// to nothing. tol must be non-negative.
func AlmostEqual(a, b, tol float64) bool {
	if tol < 0 {
		panic("num: negative tolerance")
	}
	if a == b {
		return true // handles equal infinities and exact hits
	}
	return math.Abs(a-b) <= tol
}

// IsFinite reports whether v is neither NaN nor an infinity. Input
// validation must use it instead of sign tests alone: `v <= 0` is false
// for NaN, so a bare positivity check silently accepts NaN parameters.
func IsFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// EqualWithin reports whether a and b agree to within rel relative
// error, falling back to absolute comparison near zero: the test is
// |a-b| <= rel * max(|a|, |b|, 1).
func EqualWithin(a, b, rel float64) bool {
	if rel < 0 {
		panic("num: negative tolerance")
	}
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= rel*scale
}
