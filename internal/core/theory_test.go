package core

import (
	"math"
	"math/rand"
	"testing"

	"tecopt/internal/mat"
	"tecopt/internal/sparse"
)

// Numerical verification of the paper's stated lemmas and theorems on
// real cooling systems (the formal proofs live in the authors'
// technical report [16]; here each statement is checked computationally
// on the assembled models).

// denseOf converts the (small) system matrix at current i to dense form.
func denseOf(s *System, i float64) *mat.Dense {
	m := s.Matrix(i)
	d := mat.NewDense(m.Rows(), m.Cols())
	for r := 0; r < m.Rows(); r++ {
		cols, vals := m.RowNNZ(r)
		for k, c := range cols {
			d.Set(r, c, vals[k])
		}
	}
	return d
}

// tinySystem builds a deliberately small model (4x4 die, 5x5 coarse
// layers) so dense O(n^3) theory checks stay fast: ~82 nodes.
func tinySystem(t *testing.T, sites []int) *System {
	t.Helper()
	p := make([]float64, 16)
	for i := range p {
		p[i] = 0.15
	}
	p[5] = 1.2
	sys, err := NewSystem(Config{
		Cols: 4, Rows: 4, SpreaderCells: 5, SinkCells: 5,
		TilePower: p,
	}, sites)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// Lemma 1: G is an irreducible positive definite Stieltjes matrix.
func TestLemma1GStructure(t *testing.T) {
	sys := tinySystem(t, []int{5})
	g := denseOf(sys, 0)
	if !mat.IsStieltjes(g, 1e-12) {
		t.Error("G is not a Stieltjes matrix")
	}
	if !mat.IsIrreducible(g) {
		t.Error("G is not irreducible")
	}
	if !mat.IsPositiveDefinite(g) {
		t.Error("G is not positive definite")
	}
	dom, strict := mat.IsDiagonallyDominant(g)
	if !dom || !strict {
		t.Errorf("G diagonal dominance: dominant=%v strict=%v", dom, strict)
	}
}

// Theorem 1: G - i*D is positive definite exactly on [0, lambda_m).
func TestTheorem1PDCharacterization(t *testing.T) {
	sys := tinySystem(t, []int{5, 6})
	lambda, err := sys.RunawayLimit(RunawayOptions{RelTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.3, 0.7, 0.999} {
		if !mat.IsPositiveDefinite(denseOf(sys, lambda*frac)) {
			t.Errorf("G - iD not PD at %.3f lambda_m", frac)
		}
	}
	for _, frac := range []float64{1.0001, 1.5, 3} {
		if mat.IsPositiveDefinite(denseOf(sys, lambda*frac)) {
			t.Errorf("G - iD PD at %.4f lambda_m", frac)
		}
	}
}

// Lemma 2: A = G - lambda_m*D is singular, while every minor A_kl
// (remove row k, column l) is nonsingular.
func TestLemma2SingularityStructure(t *testing.T) {
	sys := tinySystem(t, []int{5})
	lambda, err := sys.RunawayLimit(RunawayOptions{RelTol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	a := denseOf(sys, lambda)
	n := a.Rows()

	// Singularity of A: the smallest eigenvalue magnitude must be tiny
	// relative to the matrix scale. Use the determinant sign change
	// instead: det flips sign across lambda_m.
	detAt := func(i float64) float64 {
		lu, err := mat.NewLU(denseOf(sys, i))
		if err != nil {
			return 0
		}
		return lu.Det()
	}
	dBelow := detAt(lambda * (1 - 1e-6))
	dAbove := detAt(lambda * (1 + 1e-6))
	if !(dBelow > 0 && dAbove < 0) {
		t.Errorf("det(G-iD) does not cross zero at lambda_m: %.3g -> %.3g", dBelow, dAbove)
	}

	// Minors: sample several (k, l) pairs including device rows.
	rng := rand.New(rand.NewSource(11))
	hot := sys.Array.Hot[0]
	cold := sys.Array.Cold[0]
	pairs := [][2]int{{hot, hot}, {cold, hot}, {0, 0}, {n - 1, hot}}
	for p := 0; p < 6; p++ {
		pairs = append(pairs, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	for _, kl := range pairs {
		minor := removeRowCol(a, kl[0], kl[1])
		if _, err := mat.NewLU(minor); err != nil {
			t.Errorf("minor A_%d%d singular, Lemma 2 violated", kl[0], kl[1])
		}
	}
}

func removeRowCol(a *mat.Dense, k, l int) *mat.Dense {
	n := a.Rows()
	out := mat.NewDense(n-1, n-1)
	ri := 0
	for i := 0; i < n; i++ {
		if i == k {
			continue
		}
		ci := 0
		for j := 0; j < n; j++ {
			if j == l {
				continue
			}
			out.Set(ri, ci, a.At(i, j))
			ci++
		}
		ri++
	}
	return out
}

// Lemma 3: (G - i*D)^{-1} has nonnegative entries for i in [0, lambda_m)
// — inverse positivity survives the Peltier perturbation.
func TestLemma3InversePositivityUnderCurrent(t *testing.T) {
	sys := tinySystem(t, []int{5, 10})
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.5, 0.95} {
		a := denseOf(sys, lambda*frac)
		chol, err := mat.NewCholesky(a)
		if err != nil {
			t.Fatalf("not PD at %.2f lambda_m", frac)
		}
		h := chol.Inverse()
		for i := 0; i < h.Rows(); i++ {
			for j := 0; j < h.Cols(); j++ {
				if h.At(i, j) < -1e-10 {
					t.Fatalf("h[%d][%d] = %v < 0 at %.2f lambda_m", i, j, h.At(i, j), frac)
				}
			}
		}
	}
}

// Theorem 3: h_kl(i) is convex — verified via second finite differences
// at interior currents for several (k, l) pairs.
func TestTheorem3SecondDerivativeNonnegative(t *testing.T) {
	sys := tinySystem(t, []int{5, 6})
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{
		{sys.PN.SilNode[5], sys.Array.Hot[0]},
		{sys.PN.SilNode[0], sys.PN.SilNode[15]},
		{sys.Array.Cold[0], sys.Array.Cold[1]},
	}
	h := lambda * 1e-4
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		i := lambda * frac
		for _, kl := range pairs {
			f := func(x float64) float64 {
				v, err := sys.Hkl(x, kl[0], kl[1])
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			second := (f(i+h) - 2*f(i) + f(i-h)) / (h * h)
			if second < -1e-6*(1+math.Abs(second)) {
				t.Errorf("h''_%d%d(%.3f lambda) = %v < 0", kl[0], kl[1], frac, second)
			}
		}
	}
}

// The identity H'(i) = H D H from the proof of Theorem 3, checked
// against finite differences of full inverses.
func TestHPrimeIdentity(t *testing.T) {
	sys := tinySystem(t, []int{5})
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i := 0.4 * lambda
	h := lambda * 1e-6

	inv := func(x float64) *mat.Dense {
		chol, err := mat.NewCholesky(denseOf(sys, x))
		if err != nil {
			t.Fatal(err)
		}
		return chol.Inverse()
	}
	hMid := inv(i)
	fd := inv(i + h).SubMat(inv(i - h)).Scale(1 / (2 * h))
	// H D H with D as diagonal.
	d := mat.Diagonal(sys.d)
	hdh := hMid.Mul(d).Mul(hMid)
	if !fd.Equal(hdh, 1e-4*(1+hdh.MaxAbs())) {
		t.Fatalf("H' != HDH: max|fd-hdh| = %v", fd.SubMat(hdh).MaxAbs())
	}
}

// Eq. (3) global identity: p_TEC = q_h - q_c for every device in a
// solved field.
func TestEq3PowerBalancePerDevice(t *testing.T) {
	sys := tinySystem(t, []int{5, 6})
	theta, err := sys.SolveAt(3)
	if err != nil {
		t.Fatal(err)
	}
	for k := range sys.Array.Tiles {
		th, tc := theta[sys.Array.Hot[k]], theta[sys.Array.Cold[k]]
		qh := sys.Array.Params.HotSideFlux(3, th, tc)
		qc := sys.Array.Params.ColdSideFlux(3, th, tc)
		p := sys.Array.Params.InputPower(3, th, tc)
		if math.Abs(p-(qh-qc)) > 1e-12*(1+math.Abs(p)) {
			t.Fatalf("device %d: p=%v, qh-qc=%v", k, p, qh-qc)
		}
	}
}

// Permuted-system equivalence: the RCM-ordered banded path must agree
// with a direct dense solve of the original system.
func TestBandedPathMatchesDense(t *testing.T) {
	sys := tinySystem(t, []int{5})
	i := 2.0
	direct, err := sys.SolveAt(i)
	if err != nil {
		t.Fatal(err)
	}
	chol, err := mat.NewCholesky(denseOf(sys, i))
	if err != nil {
		t.Fatal(err)
	}
	dense := chol.Solve(sys.RHS(i))
	for n := range direct {
		if math.Abs(direct[n]-dense[n]) > 1e-7 {
			t.Fatalf("node %d: banded %v vs dense %v", n, direct[n], dense[n])
		}
	}
}

// The CSR system matrix must keep the sparsity pattern of G for every
// current (D only touches existing diagonal entries), so a single RCM
// ordering is valid across the whole sweep — the assumption behind the
// shared-permutation optimization.
func TestPatternStableAcrossCurrents(t *testing.T) {
	sys := tinySystem(t, []int{5, 6})
	base := sys.Matrix(0)
	probe := sys.Matrix(7)
	if base.NNZ() != probe.NNZ() {
		t.Fatalf("NNZ changed with current: %d vs %d", base.NNZ(), probe.NNZ())
	}
	for r := 0; r < base.Rows(); r++ {
		c0, _ := base.RowNNZ(r)
		c1, _ := probe.RowNNZ(r)
		if len(c0) != len(c1) {
			t.Fatalf("row %d pattern changed", r)
		}
		for k := range c0 {
			if c0[k] != c1[k] {
				t.Fatalf("row %d pattern changed at entry %d", r, k)
			}
		}
	}
	_ = sparse.Bandwidth(base)
}
