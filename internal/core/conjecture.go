package core

import (
	"context"
	"math/rand"

	"tecopt/internal/engine"
	"tecopt/internal/mat"
	"tecopt/internal/num"
)

// Conjecture-1 verification (Section V.C.2).
//
// Conjecture 1: for an nxn positive definite Stieltjes matrix S with
// H = S^{-1}, the matrix DIAG(h_k) * H * DIAG(h_l) is positive definite
// for every pair of rows h_k, h_l of H. The paper reports verifying it on
// millions of random matrices; VerifyConjecture1 reproduces that
// campaign at configurable scale.

// ConjectureReport summarizes one verification campaign.
type ConjectureReport struct {
	Matrices     int // matrices tested
	PairsChecked int // (k,l) pairs tested
	Violations   int // should stay 0
	// FirstViolation captures a counterexample if one is ever found.
	FirstViolation *ConjectureCase
}

// ConjectureCase pinpoints a (matrix, k, l) triple.
type ConjectureCase struct {
	S    *mat.Dense
	K, L int
}

// MatrixFamily selects the Stieltjes ensemble for a campaign. Beyond
// the paper's random matrices, the structured families mirror the
// conductance networks that actually arise in the thermal models.
type MatrixFamily int

const (
	// FamilyRandom draws random connected graphs (the paper's ensemble).
	FamilyRandom MatrixFamily = iota
	// FamilyGrid uses 2D grid Laplacians with random weights and ground
	// legs — the shape of a thermal layer.
	FamilyGrid
	// FamilyPath uses path-graph (tridiagonal) Laplacians — the shape of
	// a vertical layer stack.
	FamilyPath
	// FamilyTree uses random spanning trees only (no extra edges).
	FamilyTree
)

// ConjectureOptions sizes a campaign.
type ConjectureOptions struct {
	// Matrices is the number of random Stieltjes matrices (default 100).
	Matrices int
	// MaxOrder bounds the matrix order; orders are drawn uniformly from
	// [2, MaxOrder] (default 20).
	MaxOrder int
	// PairsPerMatrix samples this many (k,l) pairs per matrix; 0 checks
	// every pair.
	PairsPerMatrix int
	// Density is the extra-edge probability of the random generator.
	Density float64
	// Family selects the matrix ensemble (default FamilyRandom).
	Family MatrixFamily
	// Parallel is the campaign's worker count: <= 0 uses GOMAXPROCS, 1
	// is the pure-serial fallback. Every matrix is seeded independently
	// from the caller's source before any worker starts, so the report
	// is identical at every worker count.
	Parallel int
}

func (o ConjectureOptions) withDefaults() ConjectureOptions {
	if o.Matrices <= 0 {
		o.Matrices = 100
	}
	if o.MaxOrder < 2 {
		o.MaxOrder = 20
	}
	if o.Density <= 0 {
		o.Density = 0.3
	}
	return o
}

// VerifyConjecture1 runs the randomized campaign with the given source.
// The caller's rng is consumed serially up front to draw one seed per
// matrix; each trial then runs on its own deterministic sub-stream.
// This makes the trials independent — opt.Parallel fans them out over
// an engine pool with a report that is bit-identical to the serial run
// (merge order is matrix-index order, never completion order).
func VerifyConjecture1(rng *rand.Rand, opt ConjectureOptions) ConjectureReport {
	// conjectureTrial never fails, so without a cancellable context the
	// campaign cannot error (an injected pool fault is a test-only event
	// and surfaces through the Ctx variant).
	rep, _ := VerifyConjecture1Ctx(context.Background(), rng, opt)
	return rep
}

// VerifyConjecture1Ctx is VerifyConjecture1 under a context: cancelling
// ctx aborts the remaining trials and returns the partial report merged
// from the trials that did complete, alongside a tecerr.CodeCancelled
// error. The partial report is still deterministic per seed — each
// trial's slot is written exactly once — but which trials ran depends on
// timing, so a non-nil error means the counts are a lower bound.
func VerifyConjecture1Ctx(ctx context.Context, rng *rand.Rand, opt ConjectureOptions) (ConjectureReport, error) {
	opt = opt.withDefaults()
	seeds := make([]int64, opt.Matrices)
	for m := range seeds {
		seeds[m] = rng.Int63()
	}
	trials := make([]ConjectureReport, opt.Matrices)
	err := engine.Pool{Workers: opt.Parallel}.MapCtx(ctx, opt.Matrices, func(m int) error {
		trials[m] = conjectureTrial(seeds[m], opt)
		return nil
	})
	rep := ConjectureReport{}
	for _, tr := range trials {
		rep.Matrices += tr.Matrices
		rep.PairsChecked += tr.PairsChecked
		rep.Violations += tr.Violations
		if rep.FirstViolation == nil {
			rep.FirstViolation = tr.FirstViolation
		}
	}
	return rep, err
}

// conjectureTrial tests one matrix drawn from its own PRNG stream.
func conjectureTrial(seed int64, opt ConjectureOptions) ConjectureReport {
	rng := rand.New(rand.NewSource(seed))
	rep := ConjectureReport{}
	n := 2 + rng.Intn(opt.MaxOrder-1)
	s := drawStieltjes(rng, n, opt)
	chol, err := mat.NewCholesky(s)
	if err != nil {
		return rep // numerically degenerate draw; not a counterexample
	}
	h := chol.Inverse()
	rep.Matrices++

	check := func(k, l int) {
		rep.PairsChecked++
		hk, hl := h.Row(k), h.Row(l)
		m := mat.DiagMul(hk, h, hl)
		// DIAG(h_k) H DIAG(h_l) is generally nonsymmetric for k != l;
		// positive definiteness of a nonsymmetric real matrix means
		// x'Mx > 0 for all x != 0, equivalently its symmetric part is
		// positive definite.
		mat.Symmetrize(m)
		if !mat.IsPositiveDefinite(m) {
			rep.Violations++
			if rep.FirstViolation == nil {
				rep.FirstViolation = &ConjectureCase{S: s, K: k, L: l}
			}
		}
	}

	if opt.PairsPerMatrix <= 0 {
		for k := 0; k < n; k++ {
			for l := 0; l < n; l++ {
				check(k, l)
			}
		}
	} else {
		for p := 0; p < opt.PairsPerMatrix; p++ {
			check(rng.Intn(n), rng.Intn(n))
		}
	}
	return rep
}

// drawStieltjes samples one matrix from the selected family.
func drawStieltjes(rng *rand.Rand, n int, opt ConjectureOptions) *mat.Dense {
	switch opt.Family {
	case FamilyGrid:
		// Nearly square grid covering at least n vertices, truncated.
		cols := 1
		for cols*cols < n {
			cols++
		}
		return gridStieltjes(rng, n, cols)
	case FamilyPath:
		return pathStieltjes(rng, n)
	case FamilyTree:
		return mat.RandomStieltjes(rng, n, 0)
	default:
		return mat.RandomStieltjes(rng, n, opt.Density)
	}
}

// gridStieltjes builds a weighted grid Laplacian over n vertices laid
// out in rows of length cols, with random ground legs.
func gridStieltjes(rng *rand.Rand, n, cols int) *mat.Dense {
	a := mat.NewDense(n, n)
	addEdge := func(i, j int) {
		w := 0.1 + rng.Float64()
		a.Add(i, j, -w)
		a.Add(j, i, -w)
		a.Add(i, i, w)
		a.Add(j, j, w)
	}
	for v := 0; v < n; v++ {
		if v%cols != cols-1 && v+1 < n {
			addEdge(v, v+1)
		}
		if v+cols < n {
			addEdge(v, v+cols)
		}
	}
	// A degenerate single-column layout can leave vertex 0 isolated when
	// n < cols; connect sequentially as a fallback.
	for v := 1; v < n; v++ {
		if num.IsZero(a.At(v, v)) {
			addEdge(v-1, v)
		}
	}
	for v := 0; v < n; v++ {
		a.Add(v, v, 0.05+rng.Float64())
	}
	return a
}

// pathStieltjes builds a weighted path (tridiagonal) Laplacian with
// random ground legs.
func pathStieltjes(rng *rand.Rand, n int) *mat.Dense {
	a := mat.NewDense(n, n)
	for v := 1; v < n; v++ {
		w := 0.1 + rng.Float64()
		a.Add(v-1, v, -w)
		a.Add(v, v-1, -w)
		a.Add(v-1, v-1, w)
		a.Add(v, v, w)
	}
	for v := 0; v < n; v++ {
		a.Add(v, v, 0.05+rng.Float64())
	}
	return a
}
