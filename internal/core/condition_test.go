package core

import (
	"math"
	"testing"

	"tecopt/internal/mat"
	"tecopt/internal/num"
)

func TestConditionNumberAgainstDense(t *testing.T) {
	sys := tinySystem(t, []int{5})
	got, err := sys.ConditionNumber(2)
	if err != nil {
		t.Fatal(err)
	}
	// Dense reference: ratio of extremal eigenvalues (the matrix is
	// symmetric PD at 2 A).
	d := denseOf(sys, 2)
	mat.Symmetrize(d)
	chol, err := mat.NewCholesky(d)
	if err != nil {
		t.Fatal(err)
	}
	inv := chol.Inverse()
	// Largest eigenvalues via crude power iteration on dense products.
	big := powerDense(d)
	smallInv := powerDense(inv)
	want := big * smallInv
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("condition number %.4g, dense reference %.4g", got, want)
	}
}

func powerDense(a *mat.Dense) float64 {
	n := a.Rows()
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + float64(i%3)
	}
	var lambda float64
	for it := 0; it < 2000; it++ {
		w := a.MulVec(v)
		lambda = mat.Dot(v, w) / mat.Dot(v, v)
		nw := mat.Norm2(w)
		if num.IsZero(nw) {
			return 0
		}
		mat.ScaleVec(1/nw, w)
		v = w
	}
	return lambda
}

func TestConditionNumberDivergesAtLambda(t *testing.T) {
	sys := tinySystem(t, []int{5, 6})
	lambda, conds, err := sys.ConditionSweep([]float64{0, 0.5, 0.99, 0.99999})
	if err != nil {
		t.Fatal(err)
	}
	if lambda <= 0 {
		t.Fatalf("lambda = %v", lambda)
	}
	// Monotone growth toward the limit and a large final value.
	for i := 1; i < len(conds); i++ {
		if conds[i] < conds[i-1]*0.99 {
			t.Fatalf("condition number not growing: %v", conds)
		}
	}
	if conds[len(conds)-1] < 100*conds[0] {
		t.Fatalf("no conditioning blow-up near lambda_m: %v", conds)
	}
	// Beyond the limit: +Inf by convention.
	c, err := sys.ConditionNumber(lambda * 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c, 1) {
		t.Fatalf("condition beyond lambda_m = %v, want +Inf", c)
	}
}
