package core

import (
	"context"
	"fmt"
	"math"

	"tecopt/internal/obs"
	"tecopt/internal/optimize"
	"tecopt/internal/tecerr"
)

// Supply-current setting (Problem 2, Section V.C): choose the single
// shared current i in [0, lambda_m) minimizing the peak silicon tile
// temperature. Under Conjecture 1 the objective max_k theta_k(i) is a
// maximum of convex functions, hence convex; the paper solves it with
// gradient descent, and we provide both that and a golden-section variant
// (derivative-free, robust at the kinks of the max).

// CurrentMethod selects the optimizer.
type CurrentMethod int

const (
	// CurrentGolden uses golden-section search (default).
	CurrentGolden CurrentMethod = iota
	// CurrentGradient uses projected gradient descent with backtracking
	// (the paper's stated method).
	CurrentGradient
	// CurrentBrent uses Brent's method.
	CurrentBrent
)

// CurrentOptions tunes the current optimization.
type CurrentOptions struct {
	Method CurrentMethod
	// Tol is the absolute current tolerance in amperes (default 1e-4).
	Tol float64
	// SafetyMargin keeps the search away from lambda_m: the upper bound
	// is lambda_m*(1-SafetyMargin). Default 1e-3.
	SafetyMargin float64
	// Runaway tunes the lambda_m computation.
	Runaway RunawayOptions
	// Ctx, when non-nil, cancels the optimization between objective
	// evaluations; it also flows into the runaway-limit search unless
	// Runaway.Ctx is set explicitly. A cancelled run returns a
	// tecerr.CodeCancelled error.
	Ctx context.Context
}

func (o CurrentOptions) withDefaults() CurrentOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	if o.SafetyMargin <= 0 {
		o.SafetyMargin = 1e-3
	}
	return o
}

// CurrentResult reports the optimized operating point.
type CurrentResult struct {
	// IOpt is the optimal shared supply current (A).
	IOpt float64
	// PeakK is the minimized peak silicon temperature (kelvin).
	PeakK float64
	// PeakTile is the hottest tile at IOpt.
	PeakTile int
	// Theta is the full nodal field at IOpt.
	Theta []float64
	// TECPowerW is the array's electrical input power at IOpt (Eq. 3).
	TECPowerW float64
	// LambdaM is the runaway limit used to bound the search (may be
	// +Inf when unreachable).
	LambdaM float64
	// Evaluations counts objective evaluations (solves).
	Evaluations int
}

// maxBracketCurrentA caps the ascending-objective bracket expansion of
// OptimizeCurrent when lambda_m is unreachable. No physical device
// survives a mega-ampere, so failing to bracket by then means the model
// is broken, not that the search should silently truncate.
const maxBracketCurrentA = 1e6

// ErrBracketExhausted reports that OptimizeCurrent's bracket expansion
// hit its current cap without ever seeing the objective rise back above
// its i = 0 value, so no valid search interval exists. A physically
// meaningful model cannot do this — Joule heating (r i^2) eventually
// dominates — so it signals a broken device parameterization (for
// example a zero-resistance TEC) rather than an optimizer failure.
var ErrBracketExhausted error = tecerr.New(tecerr.CodeInvalidInput, "core.optimize_current",
	"core: current bracket expansion found no ascending objective")

// expandBracket doubles hi from start until objective(hi) >= f0, giving
// golden section an interval whose minimum is interior. It fails with
// ErrBracketExhausted instead of returning a truncated range when the
// objective is still descending at the max current.
func expandBracket(ctx context.Context, objective func(float64) float64, f0, start, max float64) (float64, error) {
	r := obs.Enabled()
	hi := start
	for objective(hi) < f0 {
		if hi >= max {
			return 0, fmt.Errorf("%w: objective still below its i=0 value %g at %g A", ErrBracketExhausted, f0, hi)
		}
		hi *= 2
		if r != nil {
			r.Counter("core.optimize_current.bracket_expansions").Inc()
			r.EventCtx(ctx, "core.optimize_current.bracket_hi", hi)
		}
	}
	return hi, nil
}

// OptimizeCurrent solves Problem 2 for the system's deployment. With no
// TECs deployed it degenerates to the passive solve at i = 0.
func (s *System) OptimizeCurrent(opt CurrentOptions) (*CurrentResult, error) {
	opt = opt.withDefaults()
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	r := obs.Enabled()
	evals := 0
	if r != nil {
		var sp obs.Span
		ctx, sp = r.StartSpanCtx(ctx, "core.optimize_current")
		defer sp.End()
		defer func() {
			// Registered after sp.End's defer: (LIFO) the annotation
			// lands before the span is flushed to the trace.
			sp.AnnotateInt("evaluations", int64(evals))
			r.Counter("core.optimize_current.runs").Inc()
			r.Counter("core.optimize_current.evaluations").Add(uint64(evals))
			r.Gauge("core.optimize_current.last_evaluations").Set(int64(evals))
		}()
	}
	if opt.Runaway.Ctx == nil {
		// The spanned ctx (not the raw opt.Ctx) flows into the runaway
		// search so its span nests under this optimization's.
		opt.Runaway.Ctx = ctx
	}
	if s.Array.Count() == 0 {
		peak, tile, theta, err := s.PeakAtCtx(ctx, 0)
		if err != nil {
			return nil, err
		}
		evals = 1
		return &CurrentResult{
			IOpt: 0, PeakK: peak, PeakTile: tile, Theta: theta,
			LambdaM: math.Inf(1), Evaluations: 1,
		}, nil
	}

	lambda, err := s.RunawayLimit(opt.Runaway)
	if err != nil {
		return nil, err
	}

	// Cancellation is latched: the scalar optimizers see +Inf and back
	// off, and the latched error is returned after they unwind.
	var ctxErr error
	objective := func(i float64) float64 {
		if ctxErr != nil {
			return math.Inf(1)
		}
		if err := ctx.Err(); err != nil {
			ctxErr = tecerr.Cancelled("core.optimize_current", err)
			return math.Inf(1)
		}
		evals++
		peak, _, _, err := s.PeakAtCtx(ctx, i)
		if err != nil {
			// At/beyond runaway: treat as +Inf so the optimizer backs off.
			return math.Inf(1)
		}
		return peak
	}

	// Upper search bound: inside the runaway limit, or found by bracket
	// expansion when lambda_m is unreachable (the convex objective must
	// eventually increase with i as Joule heating dominates). The
	// factorizations paid for here are cached, so the optimizer's later
	// endpoint evaluations at 0 and hi reuse them.
	var hi float64
	if math.IsInf(lambda, 1) {
		hi, err = expandBracket(ctx, objective, objective(0), 1.0, maxBracketCurrentA)
		if ctxErr != nil {
			return nil, ctxErr
		}
		if err != nil {
			return nil, err
		}
	} else {
		hi = lambda * (1 - opt.SafetyMargin)
	}
	if hi <= 0 {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.optimize_current",
			"core: empty feasible current range (lambda_m = %g)", lambda)
	}

	var iOpt float64
	switch opt.Method {
	case CurrentGolden:
		res, err := optimize.GoldenSection(objective, 0, hi, opt.Tol, 300)
		if ctxErr != nil {
			return nil, ctxErr
		}
		if err != nil {
			return nil, err
		}
		iOpt = res.X
	case CurrentBrent:
		res, err := optimize.Brent(objective, 0, hi, opt.Tol/math.Max(hi, 1), 300)
		if ctxErr != nil {
			return nil, ctxErr
		}
		if err != nil {
			return nil, err
		}
		iOpt = res.X
	case CurrentGradient:
		res, err := optimize.GradientDescent(objective, optimize.GradientDescentOptions{
			Lo: 0, Hi: hi, X0: hi / 4, Tol: opt.Tol, GradEps: opt.Tol / 4,
		})
		if ctxErr != nil {
			return nil, ctxErr
		}
		if err != nil {
			return nil, err
		}
		iOpt = res.X
	default:
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.optimize_current",
			"core: unknown current method %d", opt.Method)
	}
	if ctxErr != nil {
		return nil, ctxErr
	}

	// i = 0 is always feasible; never settle for a current that is worse
	// than doing nothing (can happen within tolerance at the boundary).
	peak0, tile0, theta0, err := s.PeakAtCtx(ctx, 0)
	if err != nil {
		return nil, err
	}
	peak, tile, theta, err := s.PeakAtCtx(ctx, iOpt)
	if err != nil {
		return nil, err
	}
	evals += 2
	if peak0 <= peak {
		iOpt, peak, tile, theta = 0, peak0, tile0, theta0
	}
	if r != nil {
		r.FloatGauge("core.optimize_current.last_iopt").Set(iOpt)
		r.FloatGauge("core.optimize_current.last_peak_k").Set(peak)
		sp := obs.SpanFromContext(ctx)
		sp.AnnotateFloat("iopt", iOpt)
		sp.AnnotateFloat("peak_k", peak)
	}
	return &CurrentResult{
		IOpt:        iOpt,
		PeakK:       peak,
		PeakTile:    tile,
		Theta:       theta,
		TECPowerW:   s.TECPower(theta, iOpt),
		LambdaM:     lambda,
		Evaluations: evals,
	}, nil
}
