package core

import (
	"math"

	"tecopt/internal/eigen"
)

// Conditioning diagnostics.
//
// Theorem 2's divergence of H(i) = (G - i*D)^{-1} is, numerically, the
// statement that the system matrix becomes singular at lambda_m: its
// smallest eigenvalue goes to zero, so the 2-norm condition number
// kappa_2 = mu_max / mu_min blows up. ConditionNumber exposes that
// directly — useful both as a solver-health diagnostic (how much
// precision a solve near the limit can retain) and as another view of
// the runaway phenomenon.

// ConditionNumber estimates kappa_2(G - i*D) via power iteration on the
// operator (largest eigenvalue) and on its inverse through the banded
// factorization (smallest eigenvalue). It returns +Inf past lambda_m.
func (s *System) ConditionNumber(i float64) (float64, error) {
	m := s.Matrix(i)
	fact, err := s.Factor(i)
	if err != nil {
		return math.Inf(1), nil // not PD: singular or indefinite
	}
	n := s.NumNodes()
	largest, _, err := eigen.PowerIteration(func(x []float64) []float64 {
		return m.MulVec(x)
	}, n, 1e-8, 3000)
	if err != nil {
		return 0, err
	}
	// Solve errors (impossible for power iteration's well-formed
	// vectors) are latched through the error-free Op signature.
	var opErr error
	invLargest, _, err := eigen.PowerIteration(func(x []float64) []float64 {
		y, err := fact.Solve(x)
		if err != nil {
			opErr = err
			return make([]float64, n)
		}
		return y
	}, n, 1e-8, 3000)
	if err != nil {
		return 0, err
	}
	if opErr != nil {
		return 0, opErr
	}
	if invLargest <= 0 {
		return math.Inf(1), nil
	}
	return largest * invLargest, nil
}

// ConditionSweep evaluates the condition number over fractions of
// lambda_m (fractions in [0,1)), for the conditioning study.
func (s *System) ConditionSweep(fractions []float64) (lambda float64, conds []float64, err error) {
	lambda, err = s.RunawayLimit(RunawayOptions{})
	if err != nil {
		return 0, nil, err
	}
	for _, f := range fractions {
		c, err := s.ConditionNumber(lambda * f)
		if err != nil {
			return 0, nil, err
		}
		conds = append(conds, c)
	}
	return lambda, conds, nil
}
