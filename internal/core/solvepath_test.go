package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tecopt/internal/faults"
	"tecopt/internal/num"
	"tecopt/internal/tecerr"
)

// randomChip builds a random hotspot chip configuration and TEC
// deployment for the solve-path equivalence property.
func randomChip(rng *rand.Rand) (Config, []int) {
	cfg := smallConfig()
	p := make([]float64, cfg.Cols*cfg.Rows)
	for i := range p {
		p[i] = 0.05 + 0.05*rng.Float64()
	}
	nHot := 1 + rng.Intn(4)
	for h := 0; h < nHot; h++ {
		p[rng.Intn(len(p))] = 0.4 + 0.5*rng.Float64()
	}
	cfg.TilePower = p
	seen := map[int]bool{}
	var sites []int
	for len(sites) < 2+rng.Intn(5) {
		s := rng.Intn(len(p))
		if !seen[s] {
			seen[s] = true
			sites = append(sites, s)
		}
	}
	return cfg, sites
}

// The SMW path (SolveAuto) must match per-current direct refactorization
// (SolveDirect) to 1e-9 relative across random chips and currents
// bracketing the runaway limit, and agree on ErrNotPD beyond it.
func TestSolvePathAutoMatchesDirectProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg, sites := randomChip(rng)

		cfg.Solve = SolveAuto
		auto := mustSystem(t, cfg, sites)
		cfg.Solve = SolveDirect
		direct := mustSystem(t, cfg, sites)

		lamA, err := auto.RunawayLimit(RunawayOptions{})
		if err != nil {
			t.Fatalf("seed %d: auto RunawayLimit: %v", seed, err)
		}
		lamD, err := direct.RunawayLimit(RunawayOptions{})
		if err != nil {
			t.Fatalf("seed %d: direct RunawayLimit: %v", seed, err)
		}
		if !num.IsFinite(lamA) || !num.IsFinite(lamD) || lamD <= 0 {
			t.Fatalf("seed %d: runaway limits not finite positive: %v / %v", seed, lamA, lamD)
		}
		if math.Abs(lamA-lamD) > 1e-6*lamD {
			t.Fatalf("seed %d: runaway limits disagree: spectral %v, bisection %v", seed, lamA, lamD)
		}

		for _, frac := range []float64{0, 0.25, 0.6, 0.9, 0.999} {
			i := frac * lamD
			xa, err := auto.SolveAt(i)
			if err != nil {
				t.Fatalf("seed %d i=%.3g*lambda: auto SolveAt: %v", seed, frac, err)
			}
			xd, err := direct.SolveAt(i)
			if err != nil {
				t.Fatalf("seed %d i=%.3g*lambda: direct SolveAt: %v", seed, frac, err)
			}
			for k := range xd {
				if math.Abs(xa[k]-xd[k]) > 1e-9*(1+math.Abs(xd[k])) {
					t.Fatalf("seed %d i=%.3g*lambda node %d: auto %v, direct %v",
						seed, frac, k, xa[k], xd[k])
				}
			}
		}

		// Beyond the limit both paths must agree on not-PD.
		beyond := lamD * 1.01
		if _, err := auto.SolveAt(beyond); !errors.Is(err, tecerr.ErrNotPD) {
			t.Fatalf("seed %d: auto beyond-limit err = %v, want ErrNotPD", seed, err)
		}
		if _, err := direct.SolveAt(beyond); !errors.Is(err, tecerr.ErrNotPD) {
			t.Fatalf("seed %d: direct beyond-limit err = %v, want ErrNotPD", seed, err)
		}
	}
}

// The optimizer must land on the same current and peak through either
// solve path.
func TestSolvePathOptimizeCurrentAgrees(t *testing.T) {
	cfg := smallConfig()
	sites := []int{27, 28, 35, 36}

	cfg.Solve = SolveAuto
	auto := mustSystem(t, cfg, sites)
	cfg.Solve = SolveDirect
	direct := mustSystem(t, cfg, sites)

	ra, err := auto.OptimizeCurrent(CurrentOptions{})
	if err != nil {
		t.Fatalf("auto OptimizeCurrent: %v", err)
	}
	rd, err := direct.OptimizeCurrent(CurrentOptions{})
	if err != nil {
		t.Fatalf("direct OptimizeCurrent: %v", err)
	}
	if math.Abs(ra.IOpt-rd.IOpt) > 1e-3*(1+rd.IOpt) {
		t.Fatalf("IOpt: auto %v, direct %v", ra.IOpt, rd.IOpt)
	}
	if math.Abs(ra.PeakK-rd.PeakK) > 1e-6*(1+rd.PeakK) {
		t.Fatalf("PeakK: auto %v, direct %v", ra.PeakK, rd.PeakK)
	}
}

// A fault-forced guard trip must route SolveAt through the guarded
// fallback without changing the answer.
func TestSolvePathGuardFallbackMatchesDirect(t *testing.T) {
	cfg := smallConfig()
	sites := []int{27, 28, 35, 36}
	cfg.Solve = SolveAuto
	auto := mustSystem(t, cfg, sites)
	cfg.Solve = SolveDirect
	direct := mustSystem(t, cfg, sites)

	lam, err := auto.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !num.IsFinite(lam) || lam <= 0 {
		t.Fatalf("lambda = %v, want finite positive", lam)
	}
	i := 0.5 * lam
	// Warm the reusable system (and its warm-start vector) first.
	if _, err := auto.SolveAt(i); err != nil {
		t.Fatal(err)
	}
	faults.Install(faults.New(3).Arm(faults.Rule{
		Site: faults.SiteSMWGuard,
		Kind: faults.KindNaN,
	}))
	xa, aerr := auto.SolveAt(i)
	faults.Uninstall()
	if aerr != nil {
		t.Fatalf("fallback SolveAt: %v", aerr)
	}
	xd, err := direct.SolveAt(i)
	if err != nil {
		t.Fatal(err)
	}
	for k := range xd {
		if math.Abs(xa[k]-xd[k]) > 1e-6*(1+math.Abs(xd[k])) {
			t.Fatalf("fallback node %d: auto %v, direct %v", k, xa[k], xd[k])
		}
	}
}

func TestConfigValidateRejectsUnknownSolvePath(t *testing.T) {
	cfg := smallConfig()
	cfg.Solve = SolvePath(99)
	if _, err := NewSystem(cfg, []int{27}); !errors.Is(err, tecerr.ErrInvalidInput) {
		t.Fatalf("err = %v, want CodeInvalidInput", err)
	}
}
