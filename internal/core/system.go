// Package core implements the paper's contribution: configuration of an
// on-chip active cooling system built from thin-film thermoelectric
// coolers. It assembles the coupled package+TEC model
// (G - i*D) theta = p, computes the thermal-runaway current limit
// lambda_m (Theorem 1), optimizes the shared TEC supply current by convex
// programming over [0, lambda_m) (Section V.C), decides the TEC
// deployment with the GreedyDeploy algorithm (Figure 5), certifies
// optimality via the Theorem-4 convexity check, and provides the
// Full-Cover baseline and the Conjecture-1 verification campaign of the
// experimental section.
package core

import (
	"context"

	"tecopt/internal/engine"
	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/obs"
	"tecopt/internal/power"
	"tecopt/internal/sparse"
	"tecopt/internal/tec"
	"tecopt/internal/tecerr"
	"tecopt/internal/thermal"
)

// Config bundles everything needed to instantiate a cooling-system model.
type Config struct {
	// Geom is the package geometry; defaults to material.DefaultPackage.
	Geom material.PackageGeometry
	// Cols, Rows define the die tiling (default 12x12).
	Cols, Rows int
	// SpreaderCells, SinkCells set the coarse-layer resolutions
	// (defaults 20, 20).
	SpreaderCells, SinkCells int
	// Device gives the TEC parameters; defaults to tec.ChowdhuryDevice.
	Device tec.DeviceParams
	// TilePower is the worst-case per-tile silicon power (W), length
	// Cols*Rows.
	TilePower []float64
	// Solve selects the per-current solve strategy (default SolveAuto:
	// the Sherman-Morrison-Woodbury fast path with guarded fallback).
	Solve SolvePath
}

// SolvePath selects how SolveAt/Hkl/RunawayLimit evaluate the current
// family (G - i*D) theta = p(i).
type SolvePath int

const (
	// SolveAuto factors G once and applies per-current SMW corrections
	// (thermal.ReusableSystem), falling back to direct factorization
	// near the runaway limit and to the guarded chain when the
	// capacitance matrix loses conditioning.
	SolveAuto SolvePath = iota
	// SolveDirect forces the legacy path: one banded Cholesky
	// factorization per current, through the shared factor cache.
	SolveDirect
)

// Validate checks the configuration before any network assembly: the
// tiling and tile-power vector must be consistent, every tile power
// finite and nonnegative, and the geometry and device parameters
// physical. CLIs call it up front so a bad input fails with a typed
// tecerr.CodeInvalidInput error instead of poisoning a solve.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Cols <= 0 || c.Rows <= 0 {
		return tecerr.Newf(tecerr.CodeInvalidInput, "core.validate",
			"core: tiling %dx%d must be positive", c.Cols, c.Rows)
	}
	nt := c.Cols * c.Rows
	if len(c.TilePower) != nt {
		return tecerr.Newf(tecerr.CodeInvalidInput, "core.validate",
			"core: tile power length %d, want %d", len(c.TilePower), nt)
	}
	if err := power.ValidateTilePower(c.TilePower); err != nil {
		return err
	}
	if err := c.Geom.Validate(); err != nil {
		return err
	}
	if c.Solve != SolveAuto && c.Solve != SolveDirect {
		return tecerr.Newf(tecerr.CodeInvalidInput, "core.validate",
			"core: unknown solve path %d", c.Solve)
	}
	return c.Device.Validate()
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Geom == (material.PackageGeometry{}) {
		c.Geom = material.DefaultPackage()
	}
	if c.Cols == 0 && c.Rows == 0 {
		c.Cols, c.Rows = 12, 12
	}
	if c.SpreaderCells == 0 {
		c.SpreaderCells = 20
	}
	if c.SinkCells == 0 {
		c.SinkCells = 20
	}
	if c.Device == (tec.DeviceParams{}) {
		c.Device = tec.ChowdhuryDevice()
	}
	return c
}

// System is an assembled thermal model of a package with a fixed TEC
// deployment, ready for current-domain analysis: (G - i*D) theta = p(i).
type System struct {
	Cfg   Config
	PN    *thermal.PackageNetwork
	Array *tec.Array // empty (Count()==0) when no TECs are deployed

	g    *sparse.CSR
	d    []float64
	base []float64 // ambient legs + silicon tile powers (current-free RHS)
	perm []int     // RCM ordering of g's pattern, shared by every G - i*D
	gen  uint64    // factorization-cache generation (unique per System)
}

// factorCache is the process-wide LRU of banded Cholesky factorizations,
// keyed by (system generation, current). Every System takes a fresh
// generation at construction, so a deployment change (a new System in
// the greedy loop) can never alias a cached factor; stale generations
// simply age out of the LRU. Safe for concurrent use — the engine pool
// workers of the parallel sweeps share it.
var factorCache = engine.NewFactorCache(engine.DefaultCacheCapacity)

// solverCache is the process-wide LRU of SMW fast-path states: one
// thermal.ReusableSystem per system generation (Key.Current is always
// zero), holding the base factorization of G plus the rank-2*#TEC
// correction data that every per-current solve of that system shares.
// One entry replaces the dozens of per-current factorizations a single
// OptimizeCurrent used to push through factorCache, which is what fixes
// the cache thrash of concurrent per-chip runs (Table I measured 80
// misses and 48 evictions per optimization against the 32-entry LRU).
var solverCache = engine.NewCache[*thermal.ReusableSystem]("solver_cache", 16)

// FactorCacheStats reports the cumulative hit/miss/eviction counters
// and resident entry count of the shared factorization cache
// (diagnostics and benchmarks).
func FactorCacheStats() engine.CacheStats { return factorCache.Stats() }

// SolverCacheStats is FactorCacheStats for the SMW fast-path cache.
func SolverCacheStats() engine.CacheStats { return solverCache.Stats() }

// The shared caches publish their counters into every obs snapshot, so
// a metrics dump at exit reflects them even for phases that ran before
// observability was enabled.
func init() {
	obs.RegisterSnapshotHook(func(r *obs.Registry) {
		factorCache.PublishStats(r)
		solverCache.PublishStats(r)
	})
}

// ResetFactorCache empties the shared factorization and solver caches
// and zeroes their counters. Tests and long-lived servers use it to
// establish a known cache state; correctness never depends on it.
func ResetFactorCache() {
	factorCache.Reset()
	solverCache.Reset()
}

// NewSystem builds the package network with the given TEC sites reserved,
// attaches one device per site, and assembles G, D and the base RHS.
// sites may be empty for a passive (no-TEC) model.
func NewSystem(cfg Config, sites []int) (*System, error) {
	cfg = cfg.withDefaults()
	nt := cfg.Cols * cfg.Rows
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opts := thermal.BuildOptions{
		Cols: cfg.Cols, Rows: cfg.Rows,
		SpreaderCells: cfg.SpreaderCells, SinkCells: cfg.SinkCells,
		TECSites: make(map[int]bool, len(sites)),
	}
	for _, s := range sites {
		if s < 0 || s >= nt {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.system",
				"core: TEC site %d out of range %d", s, nt)
		}
		if opts.TECSites[s] {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.system",
				"core: duplicate TEC site %d", s)
		}
		opts.TECSites[s] = true
	}
	pn, err := thermal.BuildPackage(cfg.Geom, opts)
	if err != nil {
		return nil, err
	}
	arr, err := tec.Attach(pn, cfg.Device, sites)
	if err != nil {
		return nil, err
	}

	g := pn.Net.G()
	base := pn.Net.BaseRHS()
	p, err := pn.PowerVector(cfg.TilePower)
	if err != nil {
		return nil, err
	}
	for i, v := range p {
		base[i] += v
	}
	return &System{
		Cfg:   cfg,
		PN:    pn,
		Array: arr,
		g:     g,
		d:     arr.DVector(pn.Net.NumNodes()),
		base:  base,
		perm:  sparse.RCM(g),
		gen:   engine.NextGeneration(),
	}, nil
}

// NumNodes returns the network size.
func (s *System) NumNodes() int { return s.PN.Net.NumNodes() }

// Sites returns the deployed TEC tiles.
func (s *System) Sites() []int { return s.Array.Tiles }

// Matrix returns G - i*D as a fresh CSR matrix.
func (s *System) Matrix(i float64) *sparse.CSR {
	if num.IsZero(i) || s.Array.Count() == 0 {
		return s.g
	}
	return s.g.AddScaledDiag(-i, s.d)
}

// Factor factors G - i*D (reusing the shared RCM ordering). It returns
// thermal.ErrNotPD when i is at or beyond the runaway limit. Repeated
// calls at the same current hit the process-wide factorization cache —
// golden-section endpoint re-evaluation, the Hkl-then-PeakAt pairs of
// the Figure 6 sweep and greedy re-solves all reuse one factorization.
// Factor is safe for concurrent use by the engine pool workers.
func (s *System) Factor(i float64) (*thermal.Factorization, error) {
	return s.factorCtx(context.Background(), i)
}

// factorCtx is Factor under a flight-recorder context: the cache
// lookup's hit/miss event parents to the context span.
func (s *System) factorCtx(ctx context.Context, i float64) (*thermal.Factorization, error) {
	return factorCache.DoCtx(ctx, engine.Key{Gen: s.gen, Current: i}, func() (*thermal.Factorization, error) {
		return thermal.Factor(s.Matrix(i), s.perm)
	})
}

// RHS assembles p(i): ambient legs + silicon tile powers + the r*i^2/2
// Joule sources of the deployed devices.
func (s *System) RHS(i float64) []float64 {
	rhs := make([]float64, len(s.base))
	copy(rhs, s.base)
	s.Array.JoulePower(rhs, i)
	return rhs
}

// reusable returns the system's SMW fast-path state, built on first use
// and cached by generation, or nil when the configuration forces the
// direct path or the setup failed (a degenerate update; the caller then
// factors per current exactly as before the fast path existed).
func (s *System) reusable() *thermal.ReusableSystem {
	return s.reusableCtx(context.Background())
}

// reusableCtx is reusable under a flight-recorder context.
func (s *System) reusableCtx(ctx context.Context) *thermal.ReusableSystem {
	if s.Cfg.Solve == SolveDirect {
		return nil
	}
	rs, err := solverCache.DoCtx(ctx, engine.Key{Gen: s.gen}, func() (*thermal.ReusableSystem, error) {
		return thermal.NewReusableSystem(s.g, s.d, s.perm)
	})
	if err != nil {
		// The error is cached per generation, so the direct fallback
		// costs one failed setup per System, not one per solve.
		if r := obs.Enabled(); r != nil {
			r.Counter("core.system.reusable_setup_failures").Inc()
		}
		return nil
	}
	return rs
}

// solveVec solves (G - i*D) x = rhs on the fastest available path: the
// SMW correction of the base factorization when the fast path is up,
// the cached per-current factorization otherwise. Both paths report
// ErrNotPD at or beyond the runaway limit.
func (s *System) solveVec(i float64, rhs []float64) ([]float64, error) {
	return s.solveVecCtx(context.Background(), i, rhs)
}

// solveVecCtx is solveVec under a flight-recorder context: the regime
// span of the solve (and any cache events along the way) parent to the
// span carried by ctx.
func (s *System) solveVecCtx(ctx context.Context, i float64, rhs []float64) ([]float64, error) {
	if rs := s.reusableCtx(ctx); rs != nil {
		x, _, err := rs.SolveAtCurrent(ctx, i, rhs)
		return x, err
	}
	f, err := s.factorCtx(ctx, i)
	if err != nil {
		return nil, err
	}
	return f.Solve(rhs)
}

// SolveAt solves the steady state at supply current i.
func (s *System) SolveAt(i float64) ([]float64, error) {
	return s.SolveAtCtx(context.Background(), i)
}

// SolveAtCtx is SolveAt under a context carrying the flight-recorder
// span of the caller, so the solve's trace records link into the
// caller's hierarchy. The context does not cancel the solve itself (a
// factorization is one atomic unit of work).
func (s *System) SolveAtCtx(ctx context.Context, i float64) ([]float64, error) {
	if !num.IsFinite(i) {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.system",
			"core: non-finite supply current %g", i)
	}
	if i < 0 {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.system",
			"core: negative supply current %g", i)
	}
	return s.solveVecCtx(ctx, i, s.RHS(i))
}

// PeakAt solves at current i and returns the hottest silicon tile
// temperature (kelvin) with its tile index and the full field.
func (s *System) PeakAt(i float64) (peakK float64, tile int, theta []float64, err error) {
	return s.PeakAtCtx(context.Background(), i)
}

// PeakAtCtx is PeakAt under a flight-recorder context (see SolveAtCtx).
func (s *System) PeakAtCtx(ctx context.Context, i float64) (peakK float64, tile int, theta []float64, err error) {
	theta, err = s.SolveAtCtx(ctx, i)
	if err != nil {
		return 0, 0, nil, err
	}
	peakK, tile = s.PN.PeakSilicon(theta)
	return peakK, tile, theta, nil
}

// OverLimitTiles returns the silicon tiles whose temperature exceeds
// limitK in the given field — the set T of the GreedyDeploy loop.
func (s *System) OverLimitTiles(theta []float64, limitK float64) []int {
	var out []int
	for t, n := range s.PN.SilNode {
		if theta[n] > limitK {
			out = append(out, t)
		}
	}
	return out
}

// TECPower evaluates the array's total electrical input power (Eq. 3) in
// the field theta at current i.
func (s *System) TECPower(theta []float64, i float64) float64 {
	return s.Array.TotalInputPower(theta, i)
}
