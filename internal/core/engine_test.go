package core

import (
	"math"
	"sync"
	"testing"

	"tecopt/internal/num"
)

// Tests for the engine integration: the shared factorization cache
// behind System.Factor and the safety of concurrent solves on one
// System (run under -race in CI via `make race-engine`).

func TestFactorCacheReusesSameCurrent(t *testing.T) {
	ResetFactorCache()
	sys := mustSystem(t, smallConfig(), []int{27, 28})
	f1, err := sys.Factor(2.5)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := sys.Factor(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("repeated Factor at one current rebuilt the factorization")
	}
	if FactorCacheStats().Hits == 0 {
		t.Fatal("no cache hit recorded for a repeated Factor")
	}
}

func TestFactorCacheKeysOnGeneration(t *testing.T) {
	// Two systems with identical configuration are different
	// generations: their factorizations must never alias, even at the
	// same current (the greedy loop depends on this).
	ResetFactorCache()
	a := mustSystem(t, smallConfig(), []int{27})
	b := mustSystem(t, smallConfig(), []int{27})
	fa, err := a.Factor(1.5)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Factor(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if fa == fb {
		t.Fatal("factorizations of distinct systems aliased in the cache")
	}
}

func TestFactorCachedSolveBitIdentical(t *testing.T) {
	// A cached factorization must reproduce the uncached solution
	// bit-for-bit — caching may never perturb Table I numbers.
	ResetFactorCache()
	sys := mustSystem(t, smallConfig(), []int{27, 28, 35, 36})
	first, err := sys.SolveAt(3.25)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sys.SolveAt(3.25) // factorization now cached
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if !num.ExactEqual(first[i], second[i]) {
			t.Fatalf("node %d: cached solve %v != fresh solve %v", i, second[i], first[i])
		}
	}
}

func TestConcurrentFactorAndSolveOnSharedSystem(t *testing.T) {
	// Many goroutines factor and solve the same System at overlapping
	// currents. Under -race this is the core concurrency-safety test;
	// in any mode it checks that every goroutine sees the exact serial
	// solution.
	ResetFactorCache()
	sys := mustSystem(t, smallConfig(), []int{27, 28})
	currents := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5}
	want := make([][]float64, len(currents))
	for idx, i := range currents {
		theta, err := sys.SolveAt(i)
		if err != nil {
			t.Fatal(err)
		}
		want[idx] = theta
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				idx := (g + rep) % len(currents)
				theta, err := sys.SolveAt(currents[idx])
				if err != nil {
					t.Errorf("solve at %g: %v", currents[idx], err)
					return
				}
				for n := range theta {
					if !num.ExactEqual(theta[n], want[idx][n]) {
						t.Errorf("current %g node %d: concurrent %v != serial %v",
							currents[idx], n, theta[n], want[idx][n])
						return
					}
				}
				if _, _, _, err := sys.PeakAt(currents[idx]); err != nil {
					t.Errorf("peak at %g: %v", currents[idx], err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentRunawayProbesShareCache(t *testing.T) {
	// Concurrent binary searches on the same system must agree and not
	// race; beyond-limit probes exercise the cached-failure path.
	sys := mustSystem(t, smallConfig(), []int{27, 28, 35, 36})
	ref, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lam, err := sys.RunawayLimit(RunawayOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			if !num.ExactEqual(lam, ref) || math.IsInf(lam, 1) {
				t.Errorf("concurrent lambda_m %v != %v", lam, ref)
			}
		}()
	}
	wg.Wait()
}
