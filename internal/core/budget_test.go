package core

import (
	"testing"

	"tecopt/internal/num"
)

func TestBudgetedDeployImprovesMonotonically(t *testing.T) {
	cfg := smallConfig()
	res, err := BudgetedDeploy(cfg, 4, BudgetedOptions{Candidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 {
		t.Fatal("no devices placed")
	}
	var placed int
	for _, st := range res.Steps {
		placed += len(st.Tiles)
	}
	if placed != len(res.Sites) {
		t.Fatalf("sites %d vs placed %d", len(res.Sites), placed)
	}
	// Each round must strictly improve the peak.
	passive := mustSystem(t, cfg, nil)
	prev, _, _, err := passive.PeakAt(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Steps {
		if st.PeakK >= prev {
			t.Fatalf("round %d did not improve: %.3f -> %.3f K", i, prev, st.PeakK)
		}
		prev = st.PeakK
	}
	// Placements must land on hotspot tiles (the 2x2 block): the flat
	// hotspot forces the plateau group move.
	hot := map[int]bool{27: true, 28: true, 35: true, 36: true}
	for _, s := range res.Sites {
		if !hot[s] {
			t.Fatalf("placement at tile %d, want hotspot tiles only", s)
		}
	}
}

func TestBudgetedDeployStopsWhenNoGain(t *testing.T) {
	// A device with terrible contacts is a net heater: the greedy must
	// recognize that no placement improves the peak and stop at zero.
	cfg := smallConfig()
	dev := cfg.Device
	dev.ContactCold /= 50
	dev.ContactHot /= 50
	cfg.Device = dev
	res, err := BudgetedDeploy(cfg, 8, BudgetedOptions{Candidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != 0 {
		t.Fatalf("greedy placed %d useless devices", len(res.Sites))
	}
	// The result still carries the passive operating point.
	if res.Current == nil || !num.IsZero(res.Current.IOpt) {
		t.Fatalf("expected passive fallback, got %+v", res.Current)
	}
}

func TestBudgetedDeployValidation(t *testing.T) {
	if _, err := BudgetedDeploy(smallConfig(), 0, BudgetedOptions{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestBudgetedBeatsNaiveAtSameBudget(t *testing.T) {
	// With budget 2 on the two-hotspot chip, the marginal-gain greedy
	// must do at least as well as covering the two highest-power tiles.
	cfg := twoHotspotConfig()
	res, err := BudgetedDeploy(cfg, 2, BudgetedOptions{Candidates: 6})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewSystem(cfg, []int{18, 45})
	if err != nil {
		t.Fatal(err)
	}
	naiveCur, err := naive.OptimizeCurrent(CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Current.PeakK > naiveCur.PeakK+0.05 {
		t.Fatalf("budgeted greedy %.3f K worse than naive %.3f K",
			res.Current.PeakK, naiveCur.PeakK)
	}
}
