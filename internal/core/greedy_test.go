package core

import (
	"math"
	"testing"

	"tecopt/internal/material"
	"tecopt/internal/num"
)

func TestGreedyDeployTrivialWhenCool(t *testing.T) {
	cfg := smallConfig()
	res, err := GreedyDeploy(cfg, material.CelsiusToKelvin(200), CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || len(res.Sites) != 0 {
		t.Fatalf("cool chip should need no TECs: success=%v sites=%v", res.Success, res.Sites)
	}
	if !num.IsZero(res.Current.IOpt) {
		t.Fatalf("IOpt = %v, want 0", res.Current.IOpt)
	}
}

func TestGreedyDeploySuccess(t *testing.T) {
	cfg := smallConfig()
	// Pick a limit between the passive peak and what the TECs achieve.
	passive := mustSystem(t, cfg, nil)
	peak0, _, _, _ := passive.PeakAt(0)
	limit := peak0 - 2
	res, err := GreedyDeploy(cfg, limit, CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("greedy failed; final peak %.2f K, limit %.2f K", res.Current.PeakK, limit)
	}
	if res.Current.PeakK > limit {
		t.Fatalf("success reported but peak %.3f > limit %.3f", res.Current.PeakK, limit)
	}
	if len(res.Sites) == 0 || len(res.Iterations) == 0 {
		t.Fatal("no deployment recorded")
	}
	if !num.ExactEqual(res.NoTECPeakK, peak0) {
		t.Fatalf("NoTECPeakK = %v, want %v", res.NoTECPeakK, peak0)
	}
	// Every deployed site must have been over-limit at some iteration:
	// the greedy covers exactly the union of added sets.
	added := map[int]bool{}
	for _, it := range res.Iterations {
		for _, tt := range it.Added {
			added[tt] = true
		}
	}
	for _, s := range res.Sites {
		if !added[s] {
			t.Fatalf("site %d never in an over-limit set", s)
		}
	}
	// Cooling swing must be positive.
	if res.NoTECPeakK-res.Current.PeakK <= 0 {
		t.Fatal("no cooling swing")
	}
}

func TestGreedyDeployFailureWhenLimitUnreachable(t *testing.T) {
	cfg := smallConfig()
	// A limit far below what any deployment can reach.
	res, err := GreedyDeploy(cfg, material.CelsiusToKelvin(50), CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("impossible limit reported as success")
	}
	if len(res.Iterations) == 0 {
		t.Fatal("failure without iterations")
	}
	last := res.Iterations[len(res.Iterations)-1]
	if len(last.OverLimit) == 0 {
		t.Fatal("failure but no tiles over limit")
	}
	// Failure condition of Figure 5: every over-limit tile covered.
	covered := map[int]bool{}
	for _, s := range res.Sites {
		covered[s] = true
	}
	for _, tt := range last.OverLimit {
		if !covered[tt] {
			t.Fatalf("failure reported but tile %d is over limit and uncovered", tt)
		}
	}
}

func TestGreedyDeployCascade(t *testing.T) {
	// Engineer the "two consequences" phenomenon of Section V.B: tiles
	// just below the limit that the first deployment's TEC heat pushes
	// over, forcing a second iteration. A ring of near-limit tiles
	// surrounds a hot core; the ring is far enough to receive little
	// lateral cooling but shares the package heating.
	cfg := smallConfig()
	p := make([]float64, 64)
	for i := range p {
		p[i] = 0.05
	}
	p[27] = 1.1 // hot core, clearly over the limit
	// Distant warm tiles just below the limit.
	for _, tt := range []int{0, 7, 56, 63} {
		p[tt] = 0.62
	}
	cfg.TilePower = p
	passive, err := NewSystem(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, theta, _ := passive.PeakAt(0)
	sil := passive.PN.SiliconTemps(theta)
	// Set the limit between the corner temperature and the core, just a
	// hair above the corners.
	corner := sil[0]
	limit := corner + 0.05
	if sil[27] <= limit {
		t.Skip("power profile did not produce the intended ordering")
	}
	res, err := GreedyDeploy(cfg, limit, CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) < 2 {
		t.Fatalf("expected a cascade (>= 2 iterations), got %d; sites %v",
			len(res.Iterations), res.Sites)
	}
	// The cascade must have recruited the corner tiles.
	foundCorner := false
	for _, s := range res.Sites {
		if s == 0 || s == 7 || s == 56 || s == 63 {
			foundCorner = true
		}
	}
	if !foundCorner {
		t.Fatalf("cascade did not recruit near-limit tiles: %v", res.Sites)
	}
}

func TestFullCoverWorseThanGreedy(t *testing.T) {
	// The paper's central comparison: covering every tile reduces the
	// achievable minimum peak temperature (cooling swing loss).
	cfg := smallConfig()
	passive := mustSystem(t, cfg, nil)
	peak0, _, _, _ := passive.PeakAt(0)
	res, err := GreedyDeploy(cfg, peak0-2, CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fc, fcSys, err := FullCover(cfg, CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fcSys.Array.Count() != 64 {
		t.Fatalf("full cover attached %d devices, want 64", fcSys.Array.Count())
	}
	if fc.PeakK <= res.Current.PeakK {
		t.Fatalf("full cover (%.2f K) not worse than greedy (%.2f K)",
			fc.PeakK, res.Current.PeakK)
	}
	loss := fc.PeakK - res.Current.PeakK
	if loss < 0.5 || loss > 20 {
		t.Fatalf("swing loss %.2f K outside plausible range", loss)
	}
}

func TestGreedyDeployDeterministic(t *testing.T) {
	cfg := smallConfig()
	passive := mustSystem(t, cfg, nil)
	peak0, _, _, _ := passive.PeakAt(0)
	a, err := GreedyDeploy(cfg, peak0-2, CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyDeploy(cfg, peak0-2, CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sites) != len(b.Sites) || math.Abs(a.Current.IOpt-b.Current.IOpt) > 1e-12 {
		t.Fatal("GreedyDeploy not deterministic")
	}
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatal("site sets differ between runs")
		}
	}
}
