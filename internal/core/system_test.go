package core

import (
	"math"
	"testing"

	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/tec"
)

// smallConfig builds a fast 8x8-die configuration with a single dominant
// hotspot plus a uniform background, for use across the core tests.
func smallConfig() Config {
	geom := material.DefaultPackage()
	p := make([]float64, 64)
	for i := range p {
		p[i] = 0.08 // ~5 W background
	}
	// A 2x2 hotspot block near the center, ~8x the background density.
	for _, t := range []int{27, 28, 35, 36} {
		p[t] = 0.7
	}
	return Config{
		Geom: geom, Cols: 8, Rows: 8,
		SpreaderCells: 10, SinkCells: 10,
		Device:    tec.ChowdhuryDevice(),
		TilePower: p,
	}
}

// mustSystem builds a System from a known-good configuration, failing
// the test immediately if construction reports an error.
func mustSystem(t *testing.T, cfg Config, sites []int) *System {
	t.Helper()
	sys, err := NewSystem(cfg, sites)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	cfg := smallConfig()
	if _, err := NewSystem(Config{TilePower: []float64{1}}, nil); err == nil {
		t.Error("wrong tile power length accepted")
	}
	if _, err := NewSystem(cfg, []int{999}); err == nil {
		t.Error("out-of-range site accepted")
	}
	if _, err := NewSystem(cfg, []int{3, 3}); err == nil {
		t.Error("duplicate site accepted")
	}
}

func TestNewSystemDefaults(t *testing.T) {
	cfg := Config{TilePower: make([]float64, 144)}
	sys, err := NewSystem(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cfg.Cols != 12 || sys.Cfg.Rows != 12 {
		t.Errorf("default grid = %dx%d", sys.Cfg.Cols, sys.Cfg.Rows)
	}
	if num.IsZero(sys.Cfg.Device.Seebeck) {
		t.Error("default device not applied")
	}
}

func TestSolveAtZeroMatchesPassive(t *testing.T) {
	cfg := smallConfig()
	sys, err := NewSystem(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	theta, err := sys.SolveAt(0)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.PN.SolvePassive(cfg.TilePower, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range theta {
		if math.Abs(theta[i]-direct[i]) > 1e-6 {
			t.Fatalf("node %d: %v vs %v", i, theta[i], direct[i])
		}
	}
}

func TestSolveAtNegativeCurrent(t *testing.T) {
	sys := mustSystem(t, smallConfig(), nil)
	if _, err := sys.SolveAt(-1); err == nil {
		t.Fatal("negative current accepted")
	}
}

func TestOverLimitTiles(t *testing.T) {
	sys := mustSystem(t, smallConfig(), nil)
	_, _, theta, err := sys.PeakAt(0)
	if err != nil {
		t.Fatal(err)
	}
	// With the limit at the peak no tile is strictly over it.
	peak, peakTile := sys.PN.PeakSilicon(theta)
	if over := sys.OverLimitTiles(theta, peak); len(over) != 0 {
		t.Fatalf("tiles over the peak: %v", over)
	}
	// Slightly below the peak the hottest tile must appear.
	over := sys.OverLimitTiles(theta, peak-1e-9)
	found := false
	for _, tt := range over {
		if tt == peakTile {
			found = true
		}
	}
	if !found {
		t.Fatalf("peak tile %d not in over set %v", peakTile, over)
	}
}

func TestTECCoolingReducesHotspot(t *testing.T) {
	cfg := smallConfig()
	passive := mustSystem(t, cfg, nil)
	peak0, tile0, _, err := passive.PeakAt(0)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg, []int{27, 28, 35, 36})
	if err != nil {
		t.Fatal(err)
	}
	peak5, _, _, err := sys.PeakAt(5)
	if err != nil {
		t.Fatal(err)
	}
	if peak5 >= peak0 {
		t.Fatalf("TEC at 5 A did not cool: %.2f -> %.2f K", peak0, peak5)
	}
	if tile0 != 27 && tile0 != 28 && tile0 != 35 && tile0 != 36 {
		t.Fatalf("passive peak tile %d outside hotspot", tile0)
	}
}

func TestJouleHeatingDominatesAtHighCurrent(t *testing.T) {
	cfg := smallConfig()
	sys, err := NewSystem(cfg, []int{27, 28, 35, 36})
	if err != nil {
		t.Fatal(err)
	}
	peak0, _, _, _ := sys.PeakAt(0)
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probe := math.Min(60, lambda*0.5)
	peakHigh, _, _, err := sys.PeakAt(probe)
	if err != nil {
		t.Fatal(err)
	}
	if peakHigh <= peak0 {
		t.Fatalf("improper (excessive) current did not overheat: %.2f vs %.2f K at %.1f A",
			peakHigh, peak0, probe)
	}
}

func TestTECPowerMatchesEq3(t *testing.T) {
	cfg := smallConfig()
	sys, err := NewSystem(cfg, []int{27})
	if err != nil {
		t.Fatal(err)
	}
	i := 4.0
	theta, err := sys.SolveAt(i)
	if err != nil {
		t.Fatal(err)
	}
	got := sys.TECPower(theta, i)
	hot, cold := sys.Array.Hot[0], sys.Array.Cold[0]
	want := cfg.Device.Resistance*i*i + cfg.Device.Seebeck*i*(theta[hot]-theta[cold])
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TECPower = %v, want %v", got, want)
	}
	if got <= 0 {
		t.Fatal("TEC input power not positive at 4 A")
	}
}

func TestEnergyBalanceWithTEC(t *testing.T) {
	// Steady state: chip power + TEC electrical power must equal the heat
	// convected to ambient. This is the global sanity check that the
	// Peltier "conductors to ground" do not create or destroy energy
	// beyond the electrical input.
	cfg := smallConfig()
	sys, err := NewSystem(cfg, []int{27, 28})
	if err != nil {
		t.Fatal(err)
	}
	i := 6.0
	theta, err := sys.SolveAt(i)
	if err != nil {
		t.Fatal(err)
	}
	var chipPower float64
	for _, p := range cfg.TilePower {
		chipPower += p
	}
	tecPower := sys.TECPower(theta, i)

	// Heat leaving through the convection legs is the only path out.
	// The network stores only g_leg * T_amb per node (BaseRHS); since all
	// legs share the ambient temperature, g_leg = BaseRHS[n]/T_amb and
	// the convected power is sum g_leg * (theta_n - T_amb). The chip
	// power is injected before BaseRHS is queried here, so rebuild it
	// from a fresh passive system instead of s.base.
	amb := sys.Cfg.Geom.AmbientK
	var convected float64
	for n, v := range sys.PN.Net.BaseRHS() {
		if num.IsZero(v) {
			continue
		}
		gi := v / amb
		convected += gi * (theta[n] - amb)
	}
	if math.Abs(convected-(chipPower+tecPower)) > 1e-6*(chipPower+tecPower) {
		t.Fatalf("energy balance broken: convected %.6f W, input %.6f W",
			convected, chipPower+tecPower)
	}
}
