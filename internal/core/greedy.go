package core

import (
	"context"
	"sort"
	"strconv"

	"tecopt/internal/obs"
)

// GreedyDeploy (Figure 5): iteratively cover every over-limit tile with a
// TEC device, re-optimize the shared supply current, and repeat until
// either no tile exceeds the limit (success) or all over-limit tiles are
// already covered (failure — the TECs cannot cool the chip to the limit,
// as happens for benchmarks HC06 and HC09 at 85 C).

// DeployIteration records one pass of the greedy loop for analysis.
type DeployIteration struct {
	// Added lists the tiles newly covered this iteration.
	Added []int
	// IOpt and PeakK are the optimized operating point afterwards.
	IOpt  float64
	PeakK float64
	// OverLimit lists tiles still above the limit afterwards.
	OverLimit []int
}

// DeployResult is the outcome of GreedyDeploy.
type DeployResult struct {
	// Success is true when the final peak temperature meets the limit.
	Success bool
	// Sites is the final TEC deployment (sorted tile indices).
	Sites []int
	// Current holds the final optimized operating point.
	Current *CurrentResult
	// NoTECPeakK is the passive peak temperature (Table I column 1).
	NoTECPeakK float64
	// Iterations traces the greedy loop.
	Iterations []DeployIteration
	// System is the final assembled system (for further analysis).
	System *System
}

// GreedyDeploy runs the paper's deployment algorithm for the given
// configuration and maximum allowable silicon temperature limitK.
func GreedyDeploy(cfg Config, limitK float64, opt CurrentOptions) (res *DeployResult, err error) {
	if r := obs.Enabled(); r.FlightOn() {
		// One span per deployment: the root of a chip's solve tree in
		// Table I flight recordings (each OptimizeCurrent iteration
		// nests under it via opt.Ctx).
		if opt.Ctx == nil {
			opt.Ctx = context.Background()
		}
		var sp obs.Span
		opt.Ctx, sp = r.StartSpanCtx(opt.Ctx, "core.greedy_deploy")
		defer func() {
			if res != nil {
				sp.Annotate("success", strconv.FormatBool(res.Success))
				sp.AnnotateInt("sites", int64(len(res.Sites)))
				sp.AnnotateInt("iterations", int64(len(res.Iterations)))
			}
			sp.End()
		}()
	}
	// Line 3-4: passive solve, initial over-limit set.
	passive, err := NewSystem(cfg, nil)
	if err != nil {
		return nil, err
	}
	peak0, _, theta0, err := passive.PeakAt(0)
	if err != nil {
		return nil, err
	}
	res = &DeployResult{NoTECPeakK: peak0}
	overLimit := passive.OverLimitTiles(theta0, limitK)
	if len(overLimit) == 0 {
		// Already compliant: no TECs needed.
		res.Success = true
		res.System = passive
		res.Current = &CurrentResult{IOpt: 0, PeakK: peak0, Theta: theta0}
		return res, nil
	}

	covered := make(map[int]bool)
	for {
		// Line 7: S_TEC = S_TEC u T.
		var added []int
		for _, t := range overLimit {
			if !covered[t] {
				covered[t] = true
				added = append(added, t)
			}
		}
		sites := sortedKeys(covered)

		// Line 8-9: optimize the current for this deployment and solve.
		sys, err := NewSystem(cfg, sites)
		if err != nil {
			return nil, err
		}
		cur, err := sys.OptimizeCurrent(opt)
		if err != nil {
			return nil, err
		}

		// Line 10: recompute T.
		overLimit = sys.OverLimitTiles(cur.Theta, limitK)
		res.Iterations = append(res.Iterations, DeployIteration{
			Added: added, IOpt: cur.IOpt, PeakK: cur.PeakK, OverLimit: overLimit,
		})
		res.Sites = sites
		res.Current = cur
		res.System = sys

		// Line 11-12: success when T is empty.
		if len(overLimit) == 0 {
			res.Success = true
			return res, nil
		}
		// Line 13-14: failure when every over-limit tile is already
		// covered — adding more TECs cannot help.
		allCovered := true
		for _, t := range overLimit {
			if !covered[t] {
				allCovered = false
				break
			}
		}
		if allCovered {
			res.Success = false
			return res, nil
		}
	}
}

// FullCover runs the paper's baseline: a TEC on every tile, with the
// supply current still optimized by the convex programming routine. The
// comparison quantifies the "cooling swing loss" of excessive deployment
// (Table I columns under Full Cover).
func FullCover(cfg Config, opt CurrentOptions) (*CurrentResult, *System, error) {
	cfg = cfg.withDefaults()
	nt := cfg.Cols * cfg.Rows
	sites := make([]int, nt)
	for i := range sites {
		sites[i] = i
	}
	sys, err := NewSystem(cfg, sites)
	if err != nil {
		return nil, nil, err
	}
	cur, err := sys.OptimizeCurrent(opt)
	if err != nil {
		return nil, nil, err
	}
	return cur, sys, nil
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
