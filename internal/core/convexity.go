package core

import (
	"math"

	"tecopt/internal/num"
	"tecopt/internal/optimize"
	"tecopt/internal/tecerr"
)

// Optimality certification (Section V.C.2).
//
// Eq. (10) splits a node temperature as
//
//	theta_k(i) = (r i^2 / 2) * eta(i) + zeta(i)
//	eta(i)  = sum_{l in HOT u CLD} h_kl(i)
//	zeta(i) = sum_{l in SIL} h_kl(i) * p_l      (+ ambient-leg terms here)
//
// Under Conjecture 1 every h_kl is convex (Theorem 3), so eta and zeta
// are convex; only the product term r i^2 eta(i)/2 needs the Lemma-4
// feasibility test, partitioned over subranges per Theorem 4.

// EtaZeta evaluates eta(i), eta'(i) and zeta(i) for silicon tile k.
// eta' uses the identity H'(i) = H D H (proof of Theorem 3):
// eta'(i) = sum_{l in HOT u CLD} (H D H)_{kl} = x' D y with
// x = H e_k and y = H 1_{HOT u CLD} — two linear solves.
func (s *System) EtaZeta(i float64, tile int) (eta, etaPrime, zeta float64, err error) {
	if tile < 0 || tile >= s.PN.NumTiles() {
		return 0, 0, 0, tecerr.Newf(tecerr.CodeInvalidInput, "core.convexity", "core: tile %d out of range", tile)
	}
	n := s.NumNodes()
	k := s.PN.SilNode[tile]

	// x = H e_k (row k of H by symmetry).
	e := make([]float64, n)
	e[k] = 1
	x, err := s.solveVec(i, e)
	if err != nil {
		return 0, 0, 0, err
	}

	// Indicator of HOT u CLD.
	ind := make([]float64, n)
	for idx := range s.Array.Tiles {
		ind[s.Array.Hot[idx]] = 1
		ind[s.Array.Cold[idx]] = 1
	}
	for l, on := range ind {
		if !num.IsZero(on) {
			eta += x[l]
		}
	}
	// zeta: transfer from the current-independent RHS (tile powers and
	// ambient legs).
	for l, b := range s.base {
		if !num.IsZero(b) {
			zeta += x[l] * b
		}
	}
	// eta' = x' D y with y = H 1_{HC}.
	y, err := s.solveVec(i, ind)
	if err != nil {
		return 0, 0, 0, err
	}
	for l, dv := range s.d {
		if !num.IsZero(dv) {
			etaPrime += x[l] * dv * y[l]
		}
	}
	return eta, etaPrime, zeta, nil
}

// ThetaDecomposition cross-checks Eq. (10): it evaluates
// r i^2 eta/2 + zeta and the directly solved theta_k, returning both.
func (s *System) ThetaDecomposition(i float64, tile int) (viaEq10, direct float64, err error) {
	eta, _, zeta, err := s.EtaZeta(i, tile)
	if err != nil {
		return 0, 0, err
	}
	theta, err := s.SolveAt(i)
	if err != nil {
		return 0, 0, err
	}
	r := s.Array.Params.Resistance
	return 0.5*r*i*i*eta + zeta, theta[s.PN.SilNode[tile]], nil
}

// ConvexityCertificate runs the Theorem-4 check for tile k over
// [0, lambda_m) partitioned into ranges subranges. It returns whether
// convexity of theta_k is certified; when it is, and Conjecture 1 holds,
// the current returned by OptimizeCurrent is globally optimal.
//
// More subranges tighten the eta'(i_t) lower bound at higher cost — the
// runtime/accuracy trade-off the paper describes after Theorem 4.
func (s *System) ConvexityCertificate(tile, ranges int) (bool, error) {
	if s.Array.Count() == 0 {
		return true, nil // theta is constant in i without TECs
	}
	lambda, err := s.RunawayLimit(RunawayOptions{})
	if err != nil {
		return false, err
	}
	hi := lambda
	if math.IsInf(hi, 1) {
		// No finite runaway limit: certify over the practically relevant
		// range instead (up to the current where Joule heating clearly
		// dominates; 10x the optimum search cap is ample).
		hi = 1e3
	}
	eta := func(i float64) float64 {
		e, _, _, err := s.EtaZeta(i, tile)
		if err != nil {
			return math.Inf(1)
		}
		return e
	}
	etaPrime := func(i float64) float64 {
		_, ep, _, err := s.EtaZeta(i, tile)
		if err != nil {
			return math.Inf(1)
		}
		return ep
	}
	ok, _ := optimize.ConvexityCheck(eta, etaPrime, s.Array.Params.Resistance, hi, ranges)
	return ok, nil
}
