package core

import (
	"testing"

	"tecopt/internal/engine"
)

// BenchmarkEngine_FactorCache measures what the factorization cache
// buys on a repeated operating point: "miss" pays the full banded
// Cholesky on every iteration, "hit" reuses one cached factorization.
// This speedup is per-thread and shows up even on a single core.
func BenchmarkEngine_FactorCache(b *testing.B) {
	sys, err := NewSystem(smallConfig(), []int{27, 28, 35, 36})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("miss", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			ResetFactorCache()
			if _, err := sys.Factor(2.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		ResetFactorCache()
		if _, err := sys.Factor(2.5); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := sys.Factor(2.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngine_HklSweep measures the worker pool on the Figure-6
// inner loop: one h_kl evaluation per current-grid point. On a
// multicore host the parallel sub-benchmark should approach
// serial/GOMAXPROCS.
func BenchmarkEngine_HklSweep(b *testing.B) {
	sys, err := NewSystem(smallConfig(), []int{27, 28})
	if err != nil {
		b.Fatal(err)
	}
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		b.Fatal(err)
	}
	currents := make([]float64, 32)
	for i := range currents {
		currents[i] = lambda * float64(i) / float64(len(currents))
	}
	k := sys.PN.SilNode[27]
	for _, bm := range []struct {
		name string
		pool engine.Pool
	}{{"serial", engine.Serial}, {"parallel", engine.Pool{}}} {
		b.Run(bm.name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				ResetFactorCache() // measure solves, not cache hits
				if _, err := sys.HklSweepParallel(k, k, currents, bm.pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngine_HklSweep_SMW isolates the per-current solve path on
// the same sweep: "smw" pays one base factorization plus a rank-m
// correction per current, "direct" refactors the shifted matrix at
// every grid point. Both run serial from a cold cache, so the ratio is
// the pure algorithmic win.
func BenchmarkEngine_HklSweep_SMW(b *testing.B) {
	for _, bm := range []struct {
		name string
		path SolvePath
	}{{"smw", SolveAuto}, {"direct", SolveDirect}} {
		b.Run(bm.name, func(b *testing.B) {
			cfg := smallConfig()
			cfg.Solve = bm.path
			sys, err := NewSystem(cfg, []int{27, 28})
			if err != nil {
				b.Fatal(err)
			}
			lambda, err := sys.RunawayLimit(RunawayOptions{})
			if err != nil {
				b.Fatal(err)
			}
			currents := make([]float64, 32)
			for i := range currents {
				currents[i] = lambda * float64(i) / float64(len(currents))
			}
			k := sys.PN.SilNode[27]
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				ResetFactorCache()
				if _, err := sys.HklSweepParallel(k, k, currents, engine.Serial); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
