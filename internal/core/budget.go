package core

import (
	"sort"

	"tecopt/internal/tecerr"
)

// Budgeted placement: the dual of the paper's Problem 1.
//
// GreedyDeploy minimizes the device count subject to a temperature
// limit. BudgetedDeploy answers the dual question a cost-constrained
// designer asks: with at most K devices (pins, TIM area and dollars are
// all proportional to K), where should they go to minimize the peak
// temperature? The algorithm adds devices one at a time, each round
// placing a device on the candidate tile with the best marginal
// peak-temperature reduction at a re-optimized shared current — a
// submodular-style greedy on top of the paper's convex current setting.

// BudgetedOptions tunes the placement search.
type BudgetedOptions struct {
	// Candidates caps the tiles considered each round: the N hottest
	// uncovered tiles in the current operating point (default 8).
	// Larger values search better and cost proportionally more.
	Candidates int
	// PlateauEpsK groups near-peak tiles: when no single device helps
	// (cooling one tile of a flat hotspot just shifts the peak to its
	// neighbor), the whole plateau — uncovered tiles within PlateauEpsK
	// of the peak — is tried as one group, budget permitting.
	// Default 0.75 K.
	PlateauEpsK float64
	// Current tunes the inner supply-current optimization.
	Current CurrentOptions
}

func (o BudgetedOptions) withDefaults() BudgetedOptions {
	if o.Candidates <= 0 {
		o.Candidates = 8
	}
	if o.PlateauEpsK <= 0 {
		o.PlateauEpsK = 0.75
	}
	return o
}

// BudgetedStep records one placement round.
type BudgetedStep struct {
	// Tiles are the sites added this round (one, or a peak plateau).
	Tiles []int
	// PeakK is the optimized peak after placing them.
	PeakK float64
	// IOpt is the re-optimized shared current.
	IOpt float64
}

// BudgetedResult is the outcome of BudgetedDeploy.
type BudgetedResult struct {
	Sites   []int
	Current *CurrentResult
	Steps   []BudgetedStep
	System  *System
}

// BudgetedDeploy places up to budget TEC devices greedily by marginal
// peak reduction. It stops early when no candidate improves the peak.
func BudgetedDeploy(cfg Config, budget int, opt BudgetedOptions) (*BudgetedResult, error) {
	opt = opt.withDefaults()
	if budget <= 0 {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.budgeted", "core: nonpositive device budget %d", budget)
	}
	cfg = cfg.withDefaults()

	covered := map[int]bool{}
	res := &BudgetedResult{}

	// Current best operating point (starts passive).
	sys, err := NewSystem(cfg, nil)
	if err != nil {
		return nil, err
	}
	best, err := sys.OptimizeCurrent(opt.Current)
	if err != nil {
		return nil, err
	}
	res.System, res.Current = sys, best

	type trial struct {
		tiles []int
		cur   *CurrentResult
		sys   *System
	}
	evaluate := func(extra []int) (*trial, error) {
		sites := sortedKeys(covered)
		sites = append(sites, extra...)
		sort.Ints(sites)
		trialSys, err := NewSystem(cfg, sites)
		if err != nil {
			return nil, err
		}
		cur, err := trialSys.OptimizeCurrent(opt.Current)
		if err != nil {
			return nil, err
		}
		return &trial{tiles: extra, cur: cur, sys: trialSys}, nil
	}

	for len(covered) < budget {
		// Candidate tiles: hottest uncovered silicon tiles at the
		// current operating point.
		sil := res.System.PN.SiliconTemps(res.Current.Theta)
		peakNow := res.Current.PeakK
		type cand struct {
			tile int
			temp float64
		}
		cands := make([]cand, 0, len(sil))
		for t, v := range sil {
			if !covered[t] {
				cands = append(cands, cand{t, v})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].temp > cands[b].temp })
		if len(cands) == 0 {
			break
		}
		singles := cands
		if len(singles) > opt.Candidates {
			singles = singles[:opt.Candidates]
		}

		// Single-device trials.
		var bestTrial *trial
		for _, c := range singles {
			tr, err := evaluate([]int{c.tile})
			if err != nil {
				return nil, err
			}
			if bestTrial == nil || tr.cur.PeakK < bestTrial.cur.PeakK {
				bestTrial = tr
			}
		}
		// Plateau trial: cover the whole near-peak group at once when a
		// single device cannot move a flat hotspot.
		var plateau []int
		for _, c := range cands {
			if c.temp >= peakNow-opt.PlateauEpsK {
				plateau = append(plateau, c.tile)
			}
		}
		if len(plateau) > 1 && len(covered)+len(plateau) <= budget {
			tr, err := evaluate(plateau)
			if err != nil {
				return nil, err
			}
			if bestTrial == nil || tr.cur.PeakK < bestTrial.cur.PeakK {
				bestTrial = tr
			}
		}

		if bestTrial == nil || bestTrial.cur.PeakK >= peakNow-1e-9 {
			break // nothing improves: adding more devices only heats
		}
		for _, t := range bestTrial.tiles {
			covered[t] = true
		}
		res.Sites = sortedKeys(covered)
		res.Current = bestTrial.cur
		res.System = bestTrial.sys
		res.Steps = append(res.Steps, BudgetedStep{
			Tiles: bestTrial.tiles, PeakK: bestTrial.cur.PeakK, IOpt: bestTrial.cur.IOpt,
		})
	}
	return res, nil
}
