package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"

	"tecopt/internal/engine"
	"tecopt/internal/faults"
	"tecopt/internal/num"
	"tecopt/internal/obs"
	"tecopt/internal/optimize"
	"tecopt/internal/tecerr"
	"tecopt/internal/thermal"
)

// Thermal-runaway analysis (Section V.C.1).
//
// Theorem 1 defines lambda_m = min{ theta' G theta : theta' D theta = 1 }:
// G - i*D is positive definite for 0 <= i < lambda_m and loses positive
// definiteness beyond it. Theorem 2 shows every entry of
// H(i) = (G - i*D)^{-1} diverges to +infinity as i -> lambda_m^-, i.e.
// the whole chip overheats without bound: thermal runaway. The paper
// computes lambda_m by binary search with Cholesky positive-definiteness
// tests, which is exactly what RunawayLimit does (using the banded
// factorization for O(n*bw^2) probes).

// ErrNoRunawayLimit indicates an operation that needs a finite lambda_m
// (such as RunawayMode) was asked about a system that has none because D
// has no positive diagonal entry — G - i*D stays positive definite for
// every i >= 0. This happens only for systems without TEC devices.
//
// Note the contract: RunawayLimit and RunawayLimitEigen do NOT return
// this error. "No runaway limit" is a legitimate answer for them —
// lambda_m = +Inf — not a failure, so they report (+Inf, nil) and
// callers that care can ask HasRunawayLimit. Only operations that are
// meaningless without a finite limit return the sentinel.
var ErrNoRunawayLimit error = tecerr.New(tecerr.CodeInvalidInput, "core.runaway",
	"core: system has no runaway limit (no TEC devices)")

// HasRunawayLimit reports whether the system can run away at all: true
// iff D has a positive diagonal entry, i.e. at least one TEC device is
// deployed, so G - i*D eventually loses positive definiteness.
func (s *System) HasRunawayLimit() bool {
	for _, v := range s.d {
		if v > 0 {
			return true
		}
	}
	return false
}

// RunawayOptions tunes the lambda_m search.
type RunawayOptions struct {
	// RelTol is the relative tolerance of the binary search (1e-10).
	RelTol float64
	// BracketMax caps the geometric bracketing phase; if G - i*D is
	// still positive definite at BracketMax amperes the limit is
	// reported as +Inf. Default 1e6 A.
	BracketMax float64
	// Ctx, when non-nil, cancels the search between positive-
	// definiteness probes; a cancelled search returns a
	// tecerr.CodeCancelled error.
	Ctx context.Context
}

func (o RunawayOptions) withDefaults() RunawayOptions {
	if o.RelTol <= 0 {
		o.RelTol = 1e-10
	}
	if o.BracketMax <= 0 {
		o.BracketMax = 1e6
	}
	return o
}

// RunawayLimit computes lambda_m for the system. A system that cannot
// run away — no TEC deployed (see HasRunawayLimit), or a limit beyond
// BracketMax — reports lambda_m = +Inf with a nil error; an error is
// returned only for genuine failures (G not positive definite at i = 0,
// or a broken binary search). The returned value is meaningful exactly
// when the error is nil.
func (s *System) RunawayLimit(opt RunawayOptions) (float64, error) {
	opt = opt.withDefaults()
	if !s.HasRunawayLimit() {
		return math.Inf(1), nil
	}

	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	r := obs.Enabled()
	var probes int64
	if r != nil {
		var sp obs.Span
		ctx, sp = r.StartSpanCtx(ctx, "core.runaway_limit")
		defer sp.End()
		defer func() {
			// The probe count is the search's iteration count: geometric
			// bracketing plus the binary-search PD tests. Registered after
			// sp.End's defer, so (LIFO) the annotation lands before the
			// span is flushed to the trace.
			sp.AnnotateInt("probes", probes)
			r.Counter("core.runaway.searches").Inc()
			r.Counter("core.runaway.probes").Add(uint64(probes))
			r.Gauge("core.runaway.last_probes").Set(probes)
		}()
	}
	// The probes cannot return an error through the boolean predicate, so
	// cancellation is latched here and re-checked after every search stage.
	// With the SMW fast path up, each probe is the O(1) spectral
	// comparison i < 1/mu_max instead of a factorization attempt — the
	// bisection converges to the same limit (the spectral and
	// Cholesky-breakdown boundaries agree far inside RelTol's bracket)
	// for the cost of none of the probes.
	rs := s.reusableCtx(ctx)
	flight := r.FlightOn()
	var ctxErr error
	pd := func(i float64) bool {
		if ctxErr != nil {
			return false
		}
		if err := ctx.Err(); err != nil {
			ctxErr = tecerr.Cancelled("core.runaway", err)
			return false
		}
		probes++
		var ok bool
		if rs != nil {
			ok = rs.PD(i)
		} else {
			_, err := s.factorCtx(ctx, i)
			ok = err == nil
		}
		if flight {
			// Per-probe outcomes are flight-only: they are the record of
			// the bisection's path, but would bloat (and change) flat
			// traces.
			r.EventCtx(ctx, "core.runaway.probe", i,
				obs.Attr{Key: "pd", Value: strconv.FormatBool(ok)})
		}
		return ok
	}
	if !pd(0) {
		if ctxErr != nil {
			return 0, ctxErr
		}
		// G itself must be PD (Lemma 1); anything else is a modeling bug.
		return 0, tecerr.New(tecerr.CodeNotPD, "core.runaway", "core: G is not positive definite at i=0")
	}
	// Geometric bracketing.
	hi := 1.0
	for pd(hi) {
		hi *= 2
		r.EventCtx(ctx, "core.runaway.bracket_hi", hi)
		if hi > opt.BracketMax {
			return math.Inf(1), nil
		}
	}
	if ctxErr != nil {
		return 0, ctxErr
	}
	lo := hi / 2
	if num.ExactEqual(hi, 1.0) {
		lo = 0
	}
	r.EventCtx(ctx, "core.runaway.bracket_lo", lo)
	lambda, err := optimize.BinarySearchBoundary(pd, lo, hi, opt.RelTol, 200)
	if ctxErr != nil {
		return 0, ctxErr
	}
	if err != nil {
		return 0, err
	}
	if r != nil {
		r.FloatGauge("core.runaway.lambda_m").Set(lambda)
		obs.SpanFromContext(ctx).AnnotateFloat("lambda_m", lambda)
	}
	return lambda, nil
}

// RunawayMode returns an approximate runaway mode: the temperature field
// shape that blows up at lambda_m, computed by one inverse-iteration-like
// solve just below the limit. The returned vector is normalized to unit
// maximum entry. Useful for visualizing which region runs away first.
func (s *System) RunawayMode(lambda float64) ([]float64, error) {
	if math.IsInf(lambda, 1) {
		return nil, ErrNoRunawayLimit
	}
	// Slightly inside the limit the solution is dominated by the
	// diverging mode (Theorem 2).
	i := lambda * (1 - 1e-7)
	f, err := s.Factor(i)
	if err != nil {
		// Numerical edge: retreat further from the limit.
		i = lambda * (1 - 1e-5)
		if f, err = s.Factor(i); err != nil {
			return nil, err
		}
	}
	x, err := f.Solve(s.RHS(i))
	if err != nil {
		return nil, err
	}
	mx := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if num.IsZero(mx) {
		return x, nil
	}
	for k := range x {
		x[k] /= mx
	}
	return x, nil
}

// Hkl returns the transfer coefficient h_kl(i) = e_k' (G - i*D)^{-1} e_l,
// the temperature of node k per watt injected at node l (the quantity of
// Figure 6). The factorization is reused across l via one solve with e_l.
func (s *System) Hkl(i float64, k, l int) (float64, error) {
	return s.HklCtx(context.Background(), i, k, l)
}

// HklCtx is Hkl under a flight-recorder context: the underlying
// solve's regime span and cache events parent to the span carried by
// ctx (worker tasks of the parallel sweeps pass their task context).
func (s *System) HklCtx(ctx context.Context, i float64, k, l int) (float64, error) {
	if n := s.NumNodes(); k < 0 || k >= n || l < 0 || l >= n {
		return 0, tecerr.Newf(tecerr.CodeInvalidInput, "core.hkl",
			"core: Hkl nodes (%d, %d) out of range %d", k, l, n)
	}
	if r := obs.Enabled(); r != nil {
		r.Counter("core.hkl.evals").Inc()
		defer r.ObserveSince("core.hkl.eval_ns", r.Now())
	}
	e := make([]float64, s.NumNodes())
	e[l] = 1
	x, err := s.solveVecCtx(ctx, i, e)
	if err != nil {
		return 0, err
	}
	return x[k], nil
}

// HklSweep evaluates h_kl over a set of currents, for regenerating
// Figure 6. Currents at or beyond lambda_m yield +Inf entries — the
// divergence of Theorem 2, detected by the factorization losing
// positive definiteness (thermal.ErrNotPD). Any other failure is a
// genuine numerical or model error, not runaway, and is returned
// instead of being folded into the curve.
func (s *System) HklSweep(k, l int, currents []float64) ([]float64, error) {
	return s.HklSweepParallel(k, l, currents, engine.Serial)
}

// HklSweepParallel is HklSweep with the sweep points evaluated by the
// given worker pool. Each current is an independent factor-and-solve,
// and the result slice is index-addressed, so the output is identical
// to the serial sweep at every worker count.
func (s *System) HklSweepParallel(k, l int, currents []float64, pool engine.Pool) ([]float64, error) {
	return s.HklSweepParallelCtx(context.Background(), k, l, currents, pool)
}

// HklSweepParallelCtx is HklSweepParallel under a context: cancellation
// between sweep points aborts the remaining work and returns a
// tecerr.CodeCancelled error. Completed points are discarded — a partial
// Figure 6 curve with unwritten zeros is worse than no curve.
func (s *System) HklSweepParallelCtx(ctx context.Context, k, l int, currents []float64, pool engine.Pool) ([]float64, error) {
	r := obs.Enabled()
	if r != nil {
		var sp obs.Span
		ctx, sp = r.StartSpanCtx(ctx, "core.hkl_sweep")
		defer sp.End()
		r.Counter("core.hkl_sweep.sweeps").Inc()
		r.Counter("core.hkl_sweep.points").Add(uint64(len(currents)))
	}
	out := make([]float64, len(currents))
	err := pool.MapTasksCtx(ctx, len(currents), func(tctx context.Context, idx int) error {
		if err := faults.Check(faults.SiteSweepPoint); err != nil {
			return err
		}
		if r != nil {
			defer r.ObserveSince("core.hkl_sweep.point_ns", r.Now())
		}
		v, err := s.HklCtx(tctx, currents[idx], k, l)
		if err != nil {
			if errors.Is(err, thermal.ErrNotPD) {
				out[idx] = math.Inf(1) // at/beyond lambda_m: true runaway
				return nil
			}
			return fmt.Errorf("core: h_kl sweep at i=%g: %w", currents[idx], err)
		}
		out[idx] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// HColumns solves for the requested columns of H(i) = (G - i*D)^{-1}:
// column l is the full nodal response to one watt injected at node l
// (h_kl for all k at once). The base state is prepared once (the SMW
// fast-path data, or one shared factorization on the direct path) and
// the unit solves run on the given worker pool; results are ordered as
// cols and identical to per-column Hkl calls at every worker count.
func (s *System) HColumns(i float64, cols []int, pool engine.Pool) ([][]float64, error) {
	n := s.NumNodes()
	for _, l := range cols {
		if l < 0 || l >= n {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.hkl",
				"core: HColumns node %d out of range %d", l, n)
		}
	}
	if s.reusable() == nil {
		// Direct path: surface a not-PD current before spawning the
		// column solves (they would all fail identically).
		if _, err := s.Factor(i); err != nil {
			return nil, err
		}
	}
	out := make([][]float64, len(cols))
	err := pool.MapTasksCtx(context.Background(), len(cols), func(tctx context.Context, idx int) error {
		e := make([]float64, n)
		e[cols[idx]] = 1
		x, err := s.solveVecCtx(tctx, i, e)
		if err != nil {
			return err
		}
		out[idx] = x
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
