package core

import (
	"errors"
	"math"

	"tecopt/internal/num"
	"tecopt/internal/optimize"
)

// Thermal-runaway analysis (Section V.C.1).
//
// Theorem 1 defines lambda_m = min{ theta' G theta : theta' D theta = 1 }:
// G - i*D is positive definite for 0 <= i < lambda_m and loses positive
// definiteness beyond it. Theorem 2 shows every entry of
// H(i) = (G - i*D)^{-1} diverges to +infinity as i -> lambda_m^-, i.e.
// the whole chip overheats without bound: thermal runaway. The paper
// computes lambda_m by binary search with Cholesky positive-definiteness
// tests, which is exactly what RunawayLimit does (using the banded
// factorization for O(n*bw^2) probes).

// ErrNoRunawayLimit indicates D has no positive diagonal entry, so
// G - i*D stays positive definite for every i >= 0 (no finite lambda_m);
// this happens only for systems without TEC devices.
var ErrNoRunawayLimit = errors.New("core: system has no runaway limit (no TEC devices)")

// RunawayOptions tunes the lambda_m search.
type RunawayOptions struct {
	// RelTol is the relative tolerance of the binary search (1e-10).
	RelTol float64
	// BracketMax caps the geometric bracketing phase; if G - i*D is
	// still positive definite at BracketMax amperes the limit is
	// reported as +Inf. Default 1e6 A.
	BracketMax float64
}

func (o RunawayOptions) withDefaults() RunawayOptions {
	if o.RelTol <= 0 {
		o.RelTol = 1e-10
	}
	if o.BracketMax <= 0 {
		o.BracketMax = 1e6
	}
	return o
}

// RunawayLimit computes lambda_m for the system. It returns
// ErrNoRunawayLimit when no TEC is deployed, and +Inf (no error) when the
// limit exceeds BracketMax.
func (s *System) RunawayLimit(opt RunawayOptions) (float64, error) {
	opt = opt.withDefaults()
	hasPositive := false
	for _, v := range s.d {
		if v > 0 {
			hasPositive = true
			break
		}
	}
	if !hasPositive {
		return math.Inf(1), ErrNoRunawayLimit
	}

	pd := func(i float64) bool {
		_, err := s.Factor(i)
		return err == nil
	}
	if !pd(0) {
		// G itself must be PD (Lemma 1); anything else is a modeling bug.
		return 0, errors.New("core: G is not positive definite at i=0")
	}
	// Geometric bracketing.
	hi := 1.0
	for pd(hi) {
		hi *= 2
		if hi > opt.BracketMax {
			return math.Inf(1), nil
		}
	}
	lo := hi / 2
	if num.ExactEqual(hi, 1.0) {
		lo = 0
	}
	lambda, err := optimize.BinarySearchBoundary(pd, lo, hi, opt.RelTol, 200)
	if err != nil {
		return 0, err
	}
	return lambda, nil
}

// RunawayMode returns an approximate runaway mode: the temperature field
// shape that blows up at lambda_m, computed by one inverse-iteration-like
// solve just below the limit. The returned vector is normalized to unit
// maximum entry. Useful for visualizing which region runs away first.
func (s *System) RunawayMode(lambda float64) ([]float64, error) {
	if math.IsInf(lambda, 1) {
		return nil, ErrNoRunawayLimit
	}
	// Slightly inside the limit the solution is dominated by the
	// diverging mode (Theorem 2).
	i := lambda * (1 - 1e-7)
	f, err := s.Factor(i)
	if err != nil {
		// Numerical edge: retreat further from the limit.
		i = lambda * (1 - 1e-5)
		if f, err = s.Factor(i); err != nil {
			return nil, err
		}
	}
	x := f.Solve(s.RHS(i))
	mx := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if num.IsZero(mx) {
		return x, nil
	}
	for k := range x {
		x[k] /= mx
	}
	return x, nil
}

// Hkl returns the transfer coefficient h_kl(i) = e_k' (G - i*D)^{-1} e_l,
// the temperature of node k per watt injected at node l (the quantity of
// Figure 6). The factorization is reused across l via one solve with e_l.
func (s *System) Hkl(i float64, k, l int) (float64, error) {
	f, err := s.Factor(i)
	if err != nil {
		return 0, err
	}
	e := make([]float64, s.NumNodes())
	e[l] = 1
	x := f.Solve(e)
	return x[k], nil
}

// HklSweep evaluates h_kl over a set of currents, for regenerating
// Figure 6. Currents at or beyond lambda_m yield +Inf entries.
func (s *System) HklSweep(k, l int, currents []float64) []float64 {
	out := make([]float64, len(currents))
	for idx, i := range currents {
		v, err := s.Hkl(i, k, l)
		if err != nil {
			out[idx] = math.Inf(1)
			continue
		}
		out[idx] = v
	}
	return out
}
