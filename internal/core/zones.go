package core

import (
	"math"
	"sort"

	"tecopt/internal/num"
	"tecopt/internal/optimize"
	"tecopt/internal/sparse"
	"tecopt/internal/tecerr"
)

// Multi-pin extension.
//
// The paper restricts the cooling system to a single extra package pin,
// so every TEC shares one supply current (Section III.B). This file
// implements the natural generalization it leaves open: K pins, with the
// deployed devices partitioned into K zones and a per-zone current
// vector i = (i_1 .. i_K). The model becomes
//
//	(G - sum_k i_k * D_k) theta = p(i),
//
// with D_k the Peltier diagonal of zone k and the Joule sources r*i_k^2/2
// on zone k's device nodes. Each coordinate of the peak-temperature
// objective is (under Conjecture 1) the familiar one-dimensional convex
// problem, so cyclic coordinate descent with the paper's 1-D machinery
// converges to a coordinate-wise minimum; with K=1 it reduces exactly to
// OptimizeCurrent.

// ZonedSystem augments a System with a zone partition of its TEC array.
type ZonedSystem struct {
	*System
	// ZoneOf[j] is the zone index of the j-th device (parallel to
	// Array.Tiles); zones are 0..Zones-1.
	ZoneOf []int
	// Zones is the number of zones (pins).
	Zones int
	dZone [][]float64 // per-zone D diagonals
}

// NewZonedSystem wraps a system with an explicit device->zone map.
func NewZonedSystem(sys *System, zoneOf []int) (*ZonedSystem, error) {
	if len(zoneOf) != sys.Array.Count() {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.zoned",
			"core: zone map length %d, want %d devices", len(zoneOf), sys.Array.Count())
	}
	zones := 0
	for _, z := range zoneOf {
		if z < 0 {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.zoned", "core: negative zone index %d", z)
		}
		if z+1 > zones {
			zones = z + 1
		}
	}
	if zones == 0 {
		return nil, tecerr.New(tecerr.CodeInvalidInput, "core.zoned", "core: no zones (no devices deployed?)")
	}
	// Every zone must be nonempty.
	seen := make([]bool, zones)
	for _, z := range zoneOf {
		seen[z] = true
	}
	for z, ok := range seen {
		if !ok {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.zoned", "core: zone %d is empty", z)
		}
	}
	zs := &ZonedSystem{System: sys, ZoneOf: zoneOf, Zones: zones}
	zs.dZone = make([][]float64, zones)
	n := sys.NumNodes()
	for z := range zs.dZone {
		zs.dZone[z] = make([]float64, n)
	}
	alpha := sys.Array.Params.Seebeck
	for j := range sys.Array.Tiles {
		z := zoneOf[j]
		zs.dZone[z][sys.Array.Hot[j]] += alpha
		zs.dZone[z][sys.Array.Cold[j]] -= alpha
	}
	return zs, nil
}

// ZoneByColumns partitions the deployed devices into k vertical stripes
// of the die — a simple, routable pin assignment. Devices are ordered by
// tile column; stripe boundaries balance device counts.
func ZoneByColumns(sys *System, k int) ([]int, error) {
	nDev := sys.Array.Count()
	if k <= 0 || nDev == 0 {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.zoned",
			"core: cannot build %d zones over %d devices", k, nDev)
	}
	if k > nDev {
		k = nDev
	}
	type devCol struct{ dev, col int }
	dc := make([]devCol, nDev)
	for j, tile := range sys.Array.Tiles {
		dc[j] = devCol{dev: j, col: tile % sys.Cfg.Cols}
	}
	sort.Slice(dc, func(a, b int) bool {
		if dc[a].col != dc[b].col {
			return dc[a].col < dc[b].col
		}
		return dc[a].dev < dc[b].dev
	})
	zoneOf := make([]int, nDev)
	for rank, d := range dc {
		zoneOf[d.dev] = rank * k / nDev
	}
	return zoneOf, nil
}

// MatrixZoned returns G - sum_k i_k D_k.
func (zs *ZonedSystem) MatrixZoned(currents []float64) *sparse.CSR {
	total := make([]float64, zs.NumNodes())
	for z, i := range currents {
		if num.IsZero(i) {
			continue
		}
		for n, dv := range zs.dZone[z] {
			total[n] += i * dv
		}
	}
	return zs.g.AddScaledDiag(-1, total)
}

// RHSZoned assembles p(i) with per-zone Joule sources.
func (zs *ZonedSystem) RHSZoned(currents []float64) []float64 {
	rhs := make([]float64, len(zs.base))
	copy(rhs, zs.base)
	r := zs.Array.Params.Resistance
	for j := range zs.Array.Tiles {
		i := currents[zs.ZoneOf[j]]
		half := 0.5 * r * i * i
		rhs[zs.Array.Hot[j]] += half
		rhs[zs.Array.Cold[j]] += half
	}
	return rhs
}

// SolveAtZoned solves the steady state for a current vector.
func (zs *ZonedSystem) SolveAtZoned(currents []float64) ([]float64, error) {
	if len(currents) != zs.Zones {
		return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.zoned",
			"core: current vector length %d, want %d zones", len(currents), zs.Zones)
	}
	for _, i := range currents {
		if i < 0 {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "core.zoned", "core: negative zone current %g", i)
		}
	}
	f, err := factorCSR(zs.MatrixZoned(currents), zs.perm)
	if err != nil {
		return nil, err
	}
	return f.Solve(zs.RHSZoned(currents))
}

// PeakAtZoned returns the peak silicon temperature at a current vector.
func (zs *ZonedSystem) PeakAtZoned(currents []float64) (float64, error) {
	theta, err := zs.SolveAtZoned(currents)
	if err != nil {
		return 0, err
	}
	peak, _ := zs.PN.PeakSilicon(theta)
	return peak, nil
}

// TECPowerZoned evaluates the total electrical input power over zones.
func (zs *ZonedSystem) TECPowerZoned(theta []float64, currents []float64) float64 {
	var s float64
	for j := range zs.Array.Tiles {
		i := currents[zs.ZoneOf[j]]
		s += zs.Array.Params.InputPower(i, theta[zs.Array.Hot[j]], theta[zs.Array.Cold[j]])
	}
	return s
}

// ZonedResult is the outcome of the multi-pin optimization.
type ZonedResult struct {
	Currents  []float64
	PeakK     float64
	Theta     []float64
	TECPowerW float64
	// Sweeps is the number of coordinate-descent passes executed.
	Sweeps int
}

// ZonedOptions tunes the coordinate descent.
type ZonedOptions struct {
	// Tol is the per-coordinate current tolerance (default 1e-3 A).
	Tol float64
	// MaxSweeps caps the coordinate passes (default 12).
	MaxSweeps int
	// CoordinateMax bounds each zone current's search interval when no
	// finite runaway bracket is found (default 64 A).
	CoordinateMax float64
}

func (o ZonedOptions) withDefaults() ZonedOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-3
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 12
	}
	if o.CoordinateMax <= 0 {
		o.CoordinateMax = 64
	}
	return o
}

// OptimizeZoned minimizes the peak temperature over the per-zone current
// vector by cyclic coordinate descent, each coordinate solved by
// golden-section on an adaptively bracketed interval (positive-
// definiteness failures evaluate as +Inf, keeping the search inside the
// runaway region's boundary).
//
// The descent starts from the single-pin optimum replicated across
// zones, so the result can never be worse than the paper's shared-
// current configuration; the peak-temperature objective is a maximum of
// convex functions, whose kinks can stall coordinate descent started
// elsewhere.
func (zs *ZonedSystem) OptimizeZoned(opt ZonedOptions) (*ZonedResult, error) {
	opt = opt.withDefaults()
	cur := make([]float64, zs.Zones)
	if single, err := zs.System.OptimizeCurrent(CurrentOptions{Tol: opt.Tol}); err == nil {
		for z := range cur {
			cur[z] = single.IOpt
		}
	}
	peak, err := zs.PeakAtZoned(cur)
	if err != nil {
		return nil, err
	}

	eval := func(z int, iz float64, base []float64) float64 {
		trial := make([]float64, len(base))
		copy(trial, base)
		trial[z] = iz
		p, err := zs.PeakAtZoned(trial)
		if err != nil {
			return math.Inf(1)
		}
		return p
	}

	sweeps := 0
	for ; sweeps < opt.MaxSweeps; sweeps++ {
		moved := false
		for z := 0; z < zs.Zones; z++ {
			// Bracket: grow until the objective worsens or PD fails.
			hi := 1.0
			f0 := eval(z, cur[z], cur)
			for hi < opt.CoordinateMax {
				if v := eval(z, cur[z]+hi, cur); math.IsInf(v, 1) || v > f0 {
					break
				}
				hi *= 2
			}
			lo := math.Max(0, cur[z]-hi)
			res, err := optimize.GoldenSection(func(iz float64) float64 {
				return eval(z, iz, cur)
			}, lo, cur[z]+hi, opt.Tol, 200)
			if err != nil {
				return nil, err
			}
			if res.F < peak-1e-9 {
				if math.Abs(res.X-cur[z]) > opt.Tol/2 {
					moved = true
				}
				cur[z] = res.X
				peak = res.F
			}
		}
		if !moved {
			sweeps++
			break
		}
	}

	theta, err := zs.SolveAtZoned(cur)
	if err != nil {
		return nil, err
	}
	peakK, _ := zs.PN.PeakSilicon(theta)
	return &ZonedResult{
		Currents:  cur,
		PeakK:     peakK,
		Theta:     theta,
		TECPowerW: zs.TECPowerZoned(theta, cur),
		Sweeps:    sweeps,
	}, nil
}

// factorCSR is Factor for an explicit matrix with a shared ordering.
func factorCSR(m *sparse.CSR, perm []int) (*permSolver, error) {
	ap := m.Permute(perm)
	chol, err := sparse.NewBandCholesky(ap)
	if err != nil {
		return nil, err
	}
	return &permSolver{chol: chol, perm: perm, inv: sparse.InvertPerm(perm)}, nil
}

type permSolver struct {
	chol *sparse.BandCholesky
	perm []int
	inv  []int
}

func (p *permSolver) Solve(b []float64) ([]float64, error) {
	xp, err := p.chol.Solve(sparse.PermuteVec(p.perm, b))
	if err != nil {
		return nil, err
	}
	return sparse.PermuteVec(p.inv, xp), nil
}
