package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"tecopt/internal/material"
	"tecopt/internal/num"
)

func TestExpandBracketFindsAscent(t *testing.T) {
	// Convex parabola with its minimum at 3: expansion from 1 must stop
	// at the first doubled point whose value is back above f(0).
	f := func(i float64) float64 { return (i - 3) * (i - 3) }
	hi, err := expandBracket(context.Background(), f, f(0), 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if f(hi) < f(0) {
		t.Fatalf("bracket top %g still below f(0)", hi)
	}
	if !num.ExactEqual(hi, 8) {
		t.Fatalf("hi = %g, want 8 (1 -> 2 -> 4 -> 8)", hi)
	}
	// A constant objective is trivially bracketed at the start point.
	hi, err = expandBracket(context.Background(), func(float64) float64 { return 1 }, 1, 1, 1e6)
	if err != nil || !num.ExactEqual(hi, 1) {
		t.Fatalf("constant objective: hi = %g, err = %v", hi, err)
	}
}

func TestExpandBracketErrorsWhenExhausted(t *testing.T) {
	// Regression: a monotonically decreasing objective used to make the
	// expansion exit silently at 1e6 A, truncating the search range as
	// if it were a valid bracket. It must now fail loudly.
	calls := 0
	f := func(i float64) float64 { calls++; return -i }
	_, err := expandBracket(context.Background(), f, 0, 1, 1e6)
	if err == nil {
		t.Fatal("exhausted bracket expansion returned no error")
	}
	if !errors.Is(err, ErrBracketExhausted) {
		t.Fatalf("err = %v, want ErrBracketExhausted", err)
	}
	if calls > 64 {
		t.Fatalf("%d objective calls to cover [1, 1e6] by doubling", calls)
	}
}

func TestOptimizeCurrentNoTEC(t *testing.T) {
	sys := mustSystem(t, smallConfig(), nil)
	res, err := sys.OptimizeCurrent(CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !num.IsZero(res.IOpt) {
		t.Fatalf("IOpt = %v, want 0 without TECs", res.IOpt)
	}
	if !math.IsInf(res.LambdaM, 1) {
		t.Fatalf("LambdaM = %v, want +Inf", res.LambdaM)
	}
}

func TestOptimizeCurrentImprovesOnPassive(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27, 28, 35, 36})
	if err != nil {
		t.Fatal(err)
	}
	peak0, _, _, _ := sys.PeakAt(0)
	res, err := sys.OptimizeCurrent(CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakK >= peak0 {
		t.Fatalf("optimized peak %.2f K not below passive %.2f K", res.PeakK, peak0)
	}
	if res.IOpt <= 0 || res.IOpt >= res.LambdaM {
		t.Fatalf("IOpt = %v outside (0, lambda_m=%v)", res.IOpt, res.LambdaM)
	}
	if res.TECPowerW <= 0 {
		t.Fatalf("TECPowerW = %v", res.TECPowerW)
	}
	if res.Evaluations <= 0 {
		t.Fatal("no evaluations recorded")
	}
	// The field must be consistent with an independent solve at IOpt.
	peak, tile, _, err := sys.PeakAt(res.IOpt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peak-res.PeakK) > 1e-9 || tile != res.PeakTile {
		t.Fatal("reported operating point inconsistent with direct solve")
	}
}

func TestOptimizeCurrentMethodsAgree(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27, 28, 35, 36})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := sys.OptimizeCurrent(CurrentOptions{Method: CurrentGolden})
	if err != nil {
		t.Fatal(err)
	}
	grad, err := sys.OptimizeCurrent(CurrentOptions{Method: CurrentGradient})
	if err != nil {
		t.Fatal(err)
	}
	brent, err := sys.OptimizeCurrent(CurrentOptions{Method: CurrentBrent})
	if err != nil {
		t.Fatal(err)
	}
	// The objective is flat near the optimum, so compare peaks not
	// currents: all three must find (near) the same minimum temperature.
	if math.Abs(golden.PeakK-grad.PeakK) > 0.05 {
		t.Errorf("golden %.4f vs gradient %.4f K", golden.PeakK, grad.PeakK)
	}
	if math.Abs(golden.PeakK-brent.PeakK) > 0.05 {
		t.Errorf("golden %.4f vs brent %.4f K", golden.PeakK, brent.PeakK)
	}
	if math.Abs(golden.IOpt-brent.IOpt) > 0.5 {
		t.Errorf("golden IOpt %.3f vs brent %.3f A", golden.IOpt, brent.IOpt)
	}
}

func TestOptimizeCurrentStaysBelowRunaway(t *testing.T) {
	// Full cover on the small chip: low lambda_m; the optimizer must
	// respect it.
	all := make([]int, 64)
	for i := range all {
		all[i] = i
	}
	sys, err := NewSystem(smallConfig(), all)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.OptimizeCurrent(CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOpt >= res.LambdaM {
		t.Fatalf("IOpt %.3f >= lambda_m %.3f", res.IOpt, res.LambdaM)
	}
}

func TestOptimizeCurrentUnknownMethod(t *testing.T) {
	sys := mustSystem(t, smallConfig(), []int{27})
	if _, err := sys.OptimizeCurrent(CurrentOptions{Method: CurrentMethod(99)}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestOptimalCurrentInPaperRange(t *testing.T) {
	// On the small hotspot chip the optimum should land in the few-amp
	// regime the paper reports (Table I: 5.05 - 10.42 A); allow a wide
	// but physical band.
	sys, err := NewSystem(smallConfig(), []int{27, 28, 35, 36})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.OptimizeCurrent(CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOpt < 1 || res.IOpt > 20 {
		t.Fatalf("IOpt = %.2f A, want ~3-12 A", res.IOpt)
	}
	cooled := material.KelvinToCelsius(res.PeakK)
	if cooled < 40 || cooled > 120 {
		t.Fatalf("cooled peak %.1f C implausible", cooled)
	}
}
