package core

import (
	"math"
	"testing"
)

// twoHotspotConfig puts two hotspots of different intensity on the die,
// the situation where per-zone currents genuinely beat a shared one.
func twoHotspotConfig() Config {
	cfg := smallConfig()
	p := make([]float64, 64)
	for i := range p {
		p[i] = 0.08
	}
	p[18] = 0.8  // strong hotspot (row 2, col 2)
	p[45] = 0.45 // weaker hotspot (row 5, col 5)
	cfg.TilePower = p
	return cfg
}

func TestNewZonedSystemValidation(t *testing.T) {
	sys, err := NewSystem(twoHotspotConfig(), []int{18, 45})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewZonedSystem(sys, []int{0}); err == nil {
		t.Error("short zone map accepted")
	}
	if _, err := NewZonedSystem(sys, []int{0, -1}); err == nil {
		t.Error("negative zone accepted")
	}
	if _, err := NewZonedSystem(sys, []int{0, 2}); err == nil {
		t.Error("empty zone accepted")
	}
	passive := mustSystem(t, twoHotspotConfig(), nil)
	if _, err := NewZonedSystem(passive, nil); err == nil {
		t.Error("zoning a passive system accepted")
	}
}

func TestZoneByColumns(t *testing.T) {
	sys, err := NewSystem(twoHotspotConfig(), []int{18, 45, 19, 46})
	if err != nil {
		t.Fatal(err)
	}
	zoneOf, err := ZoneByColumns(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(zoneOf) != 4 {
		t.Fatalf("zone map length %d", len(zoneOf))
	}
	// Tiles 18,19 (cols 2,3) must share a zone distinct from 45,46
	// (cols 5,6). Array.Tiles order is the sites order given above.
	z18, z45 := zoneOf[0], zoneOf[1]
	if z18 == z45 {
		t.Fatalf("columns not separated: %v", zoneOf)
	}
	// Requesting more zones than devices clamps.
	zoneOf, err = ZoneByColumns(sys, 99)
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, z := range zoneOf {
		if z > max {
			max = z
		}
	}
	if max > 3 {
		t.Fatalf("zone index %d beyond device count", max)
	}
	if _, err := ZoneByColumns(sys, 0); err == nil {
		t.Error("zero zones accepted")
	}
}

func TestZonedMatchesSingleCurrentWhenK1(t *testing.T) {
	sys, err := NewSystem(twoHotspotConfig(), []int{18, 45})
	if err != nil {
		t.Fatal(err)
	}
	zs, err := NewZonedSystem(sys, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// At any shared current the zoned model must equal the single-pin one.
	for _, i := range []float64{0, 3, 7} {
		a, err := sys.SolveAt(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := zs.SolveAtZoned([]float64{i})
		if err != nil {
			t.Fatal(err)
		}
		for n := range a {
			if math.Abs(a[n]-b[n]) > 1e-8 {
				t.Fatalf("i=%g node %d: %v vs %v", i, n, a[n], b[n])
			}
		}
	}
}

func TestZonedSolveValidation(t *testing.T) {
	sys := mustSystem(t, twoHotspotConfig(), []int{18, 45})
	zs, _ := NewZonedSystem(sys, []int{0, 1})
	if _, err := zs.SolveAtZoned([]float64{1}); err == nil {
		t.Error("wrong current vector length accepted")
	}
	if _, err := zs.SolveAtZoned([]float64{1, -1}); err == nil {
		t.Error("negative current accepted")
	}
}

func TestOptimizeZonedBeatsSinglePin(t *testing.T) {
	// Two unequal hotspots: the strong one wants a higher current than
	// the weak one, so two pins must do at least as well as one — and on
	// this profile strictly better.
	sys, err := NewSystem(twoHotspotConfig(), []int{18, 45})
	if err != nil {
		t.Fatal(err)
	}
	single, err := sys.OptimizeCurrent(CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	zs, err := NewZonedSystem(sys, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	zoned, err := zs.OptimizeZoned(ZonedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if zoned.PeakK > single.PeakK+1e-6 {
		t.Fatalf("2 pins (%.4f K) worse than 1 pin (%.4f K)", zoned.PeakK, single.PeakK)
	}
	improvement := single.PeakK - zoned.PeakK
	t.Logf("single %.3f K at %.2f A; zoned %.3f K at %v A (improvement %.3f K)",
		single.PeakK, single.IOpt, zoned.PeakK, zoned.Currents, improvement)
	if improvement < 0.01 {
		t.Fatalf("no measurable multi-pin benefit on unequal hotspots (%.4f K)", improvement)
	}
	// The strong hotspot's zone should run a higher current.
	if zoned.Currents[0] <= zoned.Currents[1] {
		t.Fatalf("strong hotspot current %.2f <= weak %.2f", zoned.Currents[0], zoned.Currents[1])
	}
	if zoned.TECPowerW <= 0 || zoned.Sweeps <= 0 {
		t.Fatalf("malformed result: %+v", zoned)
	}
}

func TestOptimizeZonedStaysStable(t *testing.T) {
	// Even with a generous coordinate bound the optimizer must not step
	// into the runaway region (it treats PD failures as +Inf).
	sys, err := NewSystem(twoHotspotConfig(), []int{18, 45})
	if err != nil {
		t.Fatal(err)
	}
	zs, err := NewZonedSystem(sys, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := zs.OptimizeZoned(ZonedOptions{CoordinateMax: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zs.SolveAtZoned(res.Currents); err != nil {
		t.Fatalf("optimized currents not solvable: %v", err)
	}
}
