package core

import (
	"math"

	"tecopt/internal/eigen"
	"tecopt/internal/num"
	"tecopt/internal/sparse"
)

// Spectral cross-check of the runaway limit.
//
// Theorem 1's lambda_m = min{theta' G theta : theta' D theta = 1} is the
// reciprocal of the largest eigenvalue of the symmetrically reduced
// pencil: with G = L L',
//
//	G - i*D > 0  <=>  I - i * L^{-1} D L^{-T} > 0
//	             <=>  i * mu_max(L^{-1} D L^{-T}) < 1,
//
// so lambda_m = 1 / mu_max (and +Inf when mu_max <= 0). The operator
// L^{-1} D L^{-T} has rank at most 2 * #TEC (D is zero away from the
// device nodes), so a short Lanczos run resolves mu_max exactly. This is
// an independent algorithm from the paper's binary search; the tests
// require the two to agree to high precision.

// RunawayLimitEigen computes lambda_m spectrally. Like RunawayLimit, a
// system with no positive D entry (no TEC deployed) has no finite limit
// and reports (+Inf, nil); errors are reserved for genuine failures.
func (s *System) RunawayLimitEigen() (float64, error) {
	nnz := 0
	for _, v := range s.d {
		if !num.IsZero(v) {
			nnz++
		}
	}
	if !s.HasRunawayLimit() {
		return math.Inf(1), nil
	}

	// Factor G (permuted) once.
	gp := s.g.Permute(s.perm)
	chol, err := sparse.NewBandCholesky(gp)
	if err != nil {
		return 0, err
	}
	dp := sparse.PermuteVec(s.perm, s.d)

	n := s.NumNodes()
	// The eigen.Op signature cannot return an error, so triangular-solve
	// failures (impossible for the well-formed vectors Lanczos feeds in,
	// but part of the typed-error contract) are latched and checked
	// after the iteration.
	var opErr error
	op := func(x []float64) []float64 {
		z, err := chol.SolveLT(x)
		if err != nil {
			opErr = err
			return make([]float64, n)
		}
		for i, dv := range dp {
			z[i] *= dv
		}
		z, err = chol.SolveL(z)
		if err != nil {
			opErr = err
			return make([]float64, n)
		}
		return z
	}
	// rank(D) + slack Lanczos steps capture the full nonzero spectrum.
	k := nnz + 8
	if k > n {
		k = n
	}
	ritz, err := eigen.Lanczos(op, n, k)
	if err != nil {
		return 0, err
	}
	if opErr != nil {
		return 0, opErr
	}
	muMax := ritz[len(ritz)-1]
	if muMax <= 0 {
		return math.Inf(1), nil
	}
	return 1 / muMax, nil
}
