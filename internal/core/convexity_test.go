package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestThetaDecompositionEq10(t *testing.T) {
	// Eq. (10): theta_k(i) = r i^2 eta(i)/2 + zeta(i) must match the
	// directly solved temperature for every tile and current probed.
	sys, err := NewSystem(smallConfig(), []int{27, 28, 35, 36})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []float64{0, 3, 8} {
		for _, tile := range []int{0, 27, 36, 63} {
			via, direct, err := sys.ThetaDecomposition(i, tile)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(via-direct) > 1e-6*(1+math.Abs(direct)) {
				t.Fatalf("Eq.10 mismatch at i=%g tile=%d: %v vs %v", i, tile, via, direct)
			}
		}
	}
}

func TestEtaProperties(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27, 28})
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tile := 27
	etas := make([]float64, 0, 4)
	for _, frac := range []float64{0, 0.3, 0.6, 0.9} {
		i := lambda * frac
		eta, etaPrime, zeta, err := sys.EtaZeta(i, tile)
		if err != nil {
			t.Fatal(err)
		}
		// Lemma 3: eta and zeta are nonnegative sums of h_kl.
		if eta < 0 || zeta < 0 {
			t.Fatalf("negative eta=%v or zeta=%v at i=%g", eta, zeta, i)
		}
		// eta' from HDH must match a finite-difference estimate.
		h := lambda * 1e-6
		ep, _, _, err := sys.EtaZeta(i+h, tile)
		if err != nil {
			t.Fatal(err)
		}
		em := eta
		if i > h {
			em, _, _, err = sys.EtaZeta(i-h, tile)
			if err != nil {
				t.Fatal(err)
			}
			fd := (ep - em) / (2 * h)
			if math.Abs(fd-etaPrime) > 1e-3*(1+math.Abs(fd)) {
				t.Fatalf("eta'(%g) = %v, finite difference %v", i, etaPrime, fd)
			}
		}
		etas = append(etas, eta)
	}
	// Figure 6 shape: h_kl (hence eta) is convex and diverges at
	// lambda_m — it may dip first, but very close to the limit it must
	// dominate every earlier sample.
	nearLimit, _, _, err := sys.EtaZeta(lambda*(1-1e-8), tile)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range etas {
		if nearLimit < 10*e {
			t.Fatalf("eta near lambda_m (%v) does not dominate eta=%v", nearLimit, e)
		}
	}
	// Convexity midpoint check on the sampled grid (equispaced fracs).
	if etas[1] > (etas[0]+etas[2])/2+1e-9*(1+etas[1]) {
		t.Fatalf("eta midpoint violation: %v > avg(%v, %v)", etas[1], etas[0], etas[2])
	}
}

func TestEtaZetaBadTile(t *testing.T) {
	sys := mustSystem(t, smallConfig(), []int{27})
	if _, _, _, err := sys.EtaZeta(0, -1); err == nil {
		t.Error("negative tile accepted")
	}
	if _, _, _, err := sys.EtaZeta(0, 9999); err == nil {
		t.Error("out-of-range tile accepted")
	}
}

func TestConvexityCertificate(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27, 28, 35, 36})
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 4 with a handful of subranges must certify the physical
	// system (eta is positive here, making problem (12) infeasible).
	ok, err := sys.ConvexityCertificate(27, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("convexity not certified for the physical system")
	}
	// No-TEC systems certify trivially.
	passive := mustSystem(t, smallConfig(), nil)
	ok, err = passive.ConvexityCertificate(27, 1)
	if err != nil || !ok {
		t.Fatalf("passive certificate: ok=%v err=%v", ok, err)
	}
}

func TestObjectiveConvexityNumeric(t *testing.T) {
	// Midpoint test for the peak-temperature objective on [0, 0.9
	// lambda_m]: convex under Conjecture 1 (Theorem 3 + max of convex).
	sys, err := NewSystem(smallConfig(), []int{27, 28, 35, 36})
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	peak := func(i float64) float64 {
		p, _, _, err := sys.PeakAt(i)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for trial := 0; trial < 10; trial++ {
		a := rng.Float64() * 0.9 * lambda
		b := rng.Float64() * 0.9 * lambda
		if a > b {
			a, b = b, a
		}
		mid := (a + b) / 2
		if peak(mid) > (peak(a)+peak(b))/2+1e-6 {
			t.Fatalf("objective midpoint violation on [%g, %g]", a, b)
		}
	}
}

func TestConjecture1Campaign(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rep := VerifyConjecture1(rng, ConjectureOptions{Matrices: 40, MaxOrder: 12, PairsPerMatrix: 6})
	if rep.Matrices == 0 || rep.PairsChecked == 0 {
		t.Fatalf("empty campaign: %+v", rep)
	}
	if rep.Violations != 0 {
		t.Fatalf("Conjecture 1 violated: %+v (first: %+v)", rep, rep.FirstViolation)
	}
}

func TestConjecture1StructuredFamilies(t *testing.T) {
	// Beyond the paper's random ensemble, the structured families that
	// mirror actual thermal networks must also satisfy Conjecture 1.
	for fam, name := range map[MatrixFamily]string{
		FamilyGrid: "grid", FamilyPath: "path", FamilyTree: "tree",
	} {
		rng := rand.New(rand.NewSource(int64(fam) + 31))
		rep := VerifyConjecture1(rng, ConjectureOptions{
			Matrices: 25, MaxOrder: 14, PairsPerMatrix: 6, Family: fam,
		})
		if rep.Matrices == 0 {
			t.Errorf("%s family: no matrices tested", name)
		}
		if rep.Violations != 0 {
			t.Errorf("%s family: Conjecture 1 violated: %+v", name, rep)
		}
	}
}

func TestConjectureParallelMatchesSerial(t *testing.T) {
	// Same seed, different worker counts: the report must be identical
	// (per-matrix sub-streams are drawn serially before workers start,
	// and merging is by matrix index, never completion order).
	run := func(workers int) ConjectureReport {
		rng := rand.New(rand.NewSource(99))
		return VerifyConjecture1(rng, ConjectureOptions{
			Matrices: 40, MaxOrder: 12, PairsPerMatrix: 6, Parallel: workers,
		})
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 0} {
		if par := run(workers); par != serial {
			t.Errorf("workers=%d: report %+v != serial %+v", workers, par, serial)
		}
	}
}

func TestConjecture1AllPairsSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rep := VerifyConjecture1(rng, ConjectureOptions{Matrices: 10, MaxOrder: 6})
	if rep.Violations != 0 {
		t.Fatalf("violations on exhaustive small campaign: %+v", rep)
	}
	// Exhaustive: pairs = sum of n^2 over matrices >= matrices * 4.
	if rep.PairsChecked < rep.Matrices*4 {
		t.Fatalf("expected exhaustive pair coverage, got %d pairs over %d matrices",
			rep.PairsChecked, rep.Matrices)
	}
}
