package core

import (
	"math"
	"testing"

	"tecopt/internal/material"
	"tecopt/internal/num"
)

// Rectangular-die and non-square-grid coverage: nothing in the model
// assumes Cols == Rows or DieWidth == DieHeight; these tests pin that
// down end to end.

func rectConfig() Config {
	geom := material.DefaultPackage()
	geom.DieWidth = 8e-3
	geom.DieHeight = 4e-3
	p := make([]float64, 16*8) // 16 cols x 8 rows of 0.5 mm tiles
	for i := range p {
		p[i] = 0.1
	}
	// A 2-tile hotspot at columns 7-8, symmetric about the die's
	// vertical center line (between columns 7 and 8 of 16).
	p[16*4+7] = 0.9
	p[16*4+8] = 0.9
	return Config{
		Geom: geom, Cols: 16, Rows: 8,
		SpreaderCells: 10, SinkCells: 10,
		TilePower: p,
	}
}

func TestRectangularDiePassive(t *testing.T) {
	sys, err := NewSystem(rectConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	peak, tile, theta, err := sys.PeakAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if tile != 16*4+7 && tile != 16*4+8 {
		t.Fatalf("peak at tile %d, want one of the heated tiles", tile)
	}
	if peak <= sys.Cfg.Geom.AmbientK {
		t.Fatal("no heating")
	}
	// Mirror symmetry across the vertical center line (between columns
	// 7 and 8): the flanking tiles at columns 6 and 9 must match.
	sil := sys.PN.SiliconTemps(theta)
	l := sil[16*4+6]
	r := sil[16*4+9]
	if math.Abs(l-r) > 1e-6 {
		t.Fatalf("flank symmetry broken: %v vs %v", l, r)
	}
}

func TestRectangularDieDeployAndOptimize(t *testing.T) {
	cfg := rectConfig()
	passive, err := NewSystem(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	peak0, _, _, err := passive.PeakAt(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyDeploy(cfg, peak0-1.5, CurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("greedy failed on rectangular die: peak %.2f", res.Current.PeakK)
	}
	if len(res.Sites) == 0 || res.Current.IOpt <= 0 {
		t.Fatalf("degenerate result: %+v", res.Current)
	}
	// lambda_m must be finite and consistent between algorithms.
	bin, err := res.System.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := res.System.RunawayLimitEigen()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bin-spec)/bin > 1e-6 {
		t.Fatalf("lambda_m mismatch on rectangular die: %v vs %v", bin, spec)
	}
}

func TestRectangularEnergyConservation(t *testing.T) {
	cfg := rectConfig()
	sys, err := NewSystem(cfg, []int{16*4 + 7, 16*4 + 8})
	if err != nil {
		t.Fatal(err)
	}
	i := 3.0
	theta, err := sys.SolveAt(i)
	if err != nil {
		t.Fatal(err)
	}
	var chip float64
	for _, p := range cfg.TilePower {
		chip += p
	}
	amb := sys.Cfg.Geom.AmbientK
	var convected float64
	for n, v := range sys.PN.Net.BaseRHS() {
		if !num.IsZero(v) {
			convected += (v / amb) * (theta[n] - amb)
		}
	}
	want := chip + sys.TECPower(theta, i)
	if math.Abs(convected-want) > 1e-6*want {
		t.Fatalf("energy balance: convected %.6f vs input %.6f", convected, want)
	}
}
