package core

import (
	"math"
	"testing"

	"tecopt/internal/engine"
	"tecopt/internal/num"
)

func TestRunawayLimitNoTEC(t *testing.T) {
	// Contract: "no runaway limit" is an answer (lambda_m = +Inf), not
	// an error. The old API returned a meaningful value alongside
	// ErrNoRunawayLimit, forcing every caller to remember errors.Is.
	sys := mustSystem(t, smallConfig(), nil)
	if sys.HasRunawayLimit() {
		t.Fatal("passive system claims a runaway limit")
	}
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatalf("err = %v, want nil (no-TEC is not a failure)", err)
	}
	if !math.IsInf(lambda, 1) {
		t.Fatalf("lambda = %v, want +Inf", lambda)
	}
}

func TestHasRunawayLimitWithTECs(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.HasRunawayLimit() {
		t.Fatal("deployed system reports no runaway limit")
	}
}

func TestRunawayLimitBoundary(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27, 28, 35, 36})
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(lambda, 1) || lambda <= 0 {
		t.Fatalf("lambda = %v, want finite positive", lambda)
	}
	// Theorem 1: PD strictly below, not PD above.
	if _, err := sys.Factor(lambda * (1 - 1e-6)); err != nil {
		t.Errorf("G - iD not PD just below lambda_m: %v", err)
	}
	if _, err := sys.Factor(lambda * (1 + 1e-6)); err == nil {
		t.Error("G - iD still PD just above lambda_m")
	}
}

func TestRunawayLimitDecreasesWithMoreTECs(t *testing.T) {
	// More devices -> more negative-conductor mass -> earlier runaway.
	cfg := smallConfig()
	few, err := NewSystem(cfg, []int{27})
	if err != nil {
		t.Fatal(err)
	}
	lambdaFew, err := few.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, 64)
	for i := range all {
		all[i] = i
	}
	many, err := NewSystem(cfg, all)
	if err != nil {
		t.Fatal(err)
	}
	lambdaMany, err := many.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lambdaMany >= lambdaFew {
		t.Fatalf("lambda_m(64 TECs) = %.2f >= lambda_m(1 TEC) = %.2f", lambdaMany, lambdaFew)
	}
}

func TestThermalRunawayDivergence(t *testing.T) {
	// Theorem 2: temperatures blow up as i -> lambda_m^-.
	sys, err := NewSystem(smallConfig(), []int{27, 28})
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	peakMid, _, _, err := sys.PeakAt(lambda * 0.5)
	if err != nil {
		t.Fatal(err)
	}
	peakNear, _, _, err := sys.PeakAt(lambda * (1 - 1e-8))
	if err != nil {
		t.Fatal(err)
	}
	if peakNear < 100*peakMid {
		t.Fatalf("no divergence near lambda_m: %.3g vs %.3g K", peakNear, peakMid)
	}
}

func TestRunawayMode(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27, 28})
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mode, err := sys.RunawayMode(lambda)
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := 0.0
	for _, v := range mode {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if math.Abs(maxAbs-1) > 1e-9 {
		t.Fatalf("mode not normalized: max |v| = %v", maxAbs)
	}
	// No-TEC systems have no mode.
	passive := mustSystem(t, smallConfig(), nil)
	if _, err := passive.RunawayMode(math.Inf(1)); err == nil {
		t.Error("RunawayMode accepted infinite lambda")
	}
}

func TestHklProperties(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27, 28})
	if err != nil {
		t.Fatal(err)
	}
	k := sys.PN.SilNode[27]
	l := sys.Array.Hot[0]
	// Lemma 3: nonnegative entries of H.
	for _, i := range []float64{0, 2, 5} {
		v, err := sys.Hkl(i, k, l)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 {
			t.Fatalf("h_kl(%g) = %v < 0", i, v)
		}
		// Symmetry h_kl = h_lk.
		w, err := sys.Hkl(i, l, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-w) > 1e-9*(1+math.Abs(v)) {
			t.Fatalf("h_kl != h_lk at i=%g: %v vs %v", i, v, w)
		}
	}
	// Theorem 3 (under Conjecture 1): convexity along i.
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := 0.0, lambda*0.9
	mid := (a + b) / 2
	ha, _ := sys.Hkl(a, k, l)
	hb, _ := sys.Hkl(b, k, l)
	hm, _ := sys.Hkl(mid, k, l)
	if hm > (ha+hb)/2+1e-9 {
		t.Fatalf("h_kl midpoint %v above chord %v (convexity violated)", hm, (ha+hb)/2)
	}
}

func TestHklSweepInfinityBeyondLimit(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27})
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := sys.PN.SilNode[27]
	vals, err := sys.HklSweep(k, k, []float64{0, lambda / 2, lambda * (1 - 1e-9), lambda * 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(vals[0], 1) || math.IsInf(vals[1], 1) {
		t.Fatal("finite currents produced infinite h_kk")
	}
	if !math.IsInf(vals[3], 1) {
		t.Fatalf("beyond-limit current gave finite h_kk = %v", vals[3])
	}
	// Figure 6 shape: h_kk may dip at moderate currents (that is the
	// useful cooling region) but must blow up approaching lambda_m.
	if !(vals[2] > 100*vals[0]) {
		t.Fatalf("h_kk near lambda_m (%v) does not diverge past h_kk(0)=%v", vals[2], vals[0])
	}
}

func TestHklSweepPropagatesModelErrors(t *testing.T) {
	// Regression: the sweep used to fold EVERY error into +Inf, so a
	// genuine model error (here: a node index out of range) was
	// indistinguishable from thermal runaway. Only not-PD currents may
	// read as +Inf; everything else must surface.
	sys, err := NewSystem(smallConfig(), []int{27})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.HklSweep(sys.NumNodes()+5, 0, []float64{0, 1}); err == nil {
		t.Fatal("out-of-range node k was silently reported as +Inf")
	}
	if _, err := sys.Hkl(1, 0, -1); err == nil {
		t.Fatal("Hkl accepted a negative node index")
	}
}

func TestHklSweepParallelMatchesSerial(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27, 28})
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := sys.RunawayLimit(RunawayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	currents := make([]float64, 24)
	for i := range currents {
		currents[i] = lambda * float64(i) / float64(len(currents)) * 1.05
	}
	k := sys.PN.SilNode[27]
	serial, err := sys.HklSweep(k, k, currents)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sys.HklSweepParallel(k, k, currents, engine.Pool{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !num.ExactEqual(serial[i], parallel[i]) && !(math.IsInf(serial[i], 1) && math.IsInf(parallel[i], 1)) {
			t.Fatalf("point %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

func TestHColumnsMatchHkl(t *testing.T) {
	sys, err := NewSystem(smallConfig(), []int{27})
	if err != nil {
		t.Fatal(err)
	}
	cols := []int{sys.PN.SilNode[27], sys.Array.Hot[0], sys.Array.Cold[0]}
	h, err := sys.HColumns(2.0, cols, engine.Pool{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for idx, l := range cols {
		for _, k := range []int{0, sys.PN.SilNode[5], sys.NumNodes() - 1} {
			want, err := sys.Hkl(2.0, k, l)
			if err != nil {
				t.Fatal(err)
			}
			if !num.ExactEqual(h[idx][k], want) {
				t.Fatalf("H[%d][%d] = %v, want h_kl = %v", idx, k, h[idx][k], want)
			}
		}
	}
	if _, err := sys.HColumns(2.0, []int{-1}, engine.Serial); err == nil {
		t.Fatal("HColumns accepted an out-of-range column")
	}
}
