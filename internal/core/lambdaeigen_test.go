package core

import (
	"math"
	"testing"
)

func TestRunawayLimitEigenMatchesBinarySearch(t *testing.T) {
	for _, sites := range [][]int{{27}, {27, 28}, {27, 28, 35, 36}} {
		sys, err := NewSystem(smallConfig(), sites)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := sys.RunawayLimit(RunawayOptions{RelTol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		spec, err := sys.RunawayLimitEigen()
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(bin-spec) / bin
		if rel > 1e-7 {
			t.Fatalf("%d TECs: binary %.9f vs spectral %.9f (rel %.2e)",
				len(sites), bin, spec, rel)
		}
	}
}

func TestRunawayLimitEigenNoTEC(t *testing.T) {
	// Same contract as RunawayLimit: +Inf with a nil error — "cannot
	// run away" is an answer, not a failure.
	sys := mustSystem(t, smallConfig(), nil)
	lam, err := sys.RunawayLimitEigen()
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if !math.IsInf(lam, 1) {
		t.Fatalf("lambda = %v, want +Inf", lam)
	}
}

func TestRunawayLimitEigenPDAtBoundary(t *testing.T) {
	// Consistency: G - i*D must be PD just below the spectral lambda_m
	// and not PD just above.
	sys, err := NewSystem(smallConfig(), []int{27, 36})
	if err != nil {
		t.Fatal(err)
	}
	lam, err := sys.RunawayLimitEigen()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(lam, 0) || math.IsNaN(lam) {
		t.Fatalf("spectral lambda_m is not finite: %v", lam)
	}
	if _, err := sys.Factor(lam * (1 - 1e-6)); err != nil {
		t.Errorf("not PD just below spectral lambda_m: %v", err)
	}
	if _, err := sys.Factor(lam * (1 + 1e-6)); err == nil {
		t.Error("still PD just above spectral lambda_m")
	}
}
