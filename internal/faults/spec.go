package faults

import (
	"strconv"
	"strings"
	"time"

	"tecopt/internal/tecerr"
)

// ParseSpec builds an injector from a compact textual rule list, the
// syntax behind tecserve's -faults flag (service-layer chaos without
// recompiling):
//
//	spec  := [ "seed=" N ";" ] rule { ";" rule }
//	rule  := kind "@" site [ ":" param { "," param } ]
//	kind  := "error" | "panic" | "nan" | "posinf" | "perturb" | "sleep"
//	param := "onhit=" N | "every=" N | "prob=" F
//	       | "scale=" F | "ms=" N | "code=" NAME
//
// Sites are the Site* constants ("serve.handle", "sparse.cg.residual",
// ...). "code" names a tecerr code ("not_pd", "diverged", ...) and
// turns an error rule into that class, so a chaos run can prove each
// failure class maps to its contracted HTTP status. "ms" is the
// KindSleep latency in milliseconds. With no selector param the rule
// fires on every hit. Examples:
//
//	-faults 'panic@serve.handle:onhit=3'
//	-faults 'seed=7;error@serve.handle:prob=0.2,code=diverged;sleep@serve.handle:every=5,ms=50'
//
// KindCall rules are not expressible — they carry a func payload.
func ParseSpec(spec string) (*Injector, error) {
	var seed int64
	parts := splitNonEmpty(spec, ";")
	if len(parts) == 0 {
		return nil, tecerr.New(tecerr.CodeInvalidInput, "faults.spec", "faults: empty fault spec")
	}
	if strings.HasPrefix(parts[0], "seed=") {
		n, err := strconv.ParseInt(strings.TrimPrefix(parts[0], "seed="), 10, 64)
		if err != nil {
			return nil, tecerr.Newf(tecerr.CodeInvalidInput, "faults.spec",
				"faults: bad seed in %q: %v", parts[0], err)
		}
		seed = n
		parts = parts[1:]
	}
	if len(parts) == 0 {
		return nil, tecerr.New(tecerr.CodeInvalidInput, "faults.spec", "faults: spec has a seed but no rules")
	}
	in := New(seed)
	for _, p := range parts {
		r, err := parseRule(p)
		if err != nil {
			return nil, err
		}
		in.Arm(r)
	}
	return in, nil
}

// parseRule parses one kind@site:params clause.
func parseRule(s string) (Rule, error) {
	head, params, _ := strings.Cut(s, ":")
	kindName, site, ok := strings.Cut(head, "@")
	if !ok || site == "" {
		return Rule{}, tecerr.Newf(tecerr.CodeInvalidInput, "faults.spec",
			"faults: rule %q is not kind@site", s)
	}
	var r Rule
	r.Site = site
	switch kindName {
	case "error":
		r.Kind = KindError
	case "panic":
		r.Kind = KindPanic
	case "nan":
		r.Kind = KindNaN
	case "posinf":
		r.Kind = KindPosInf
	case "perturb":
		r.Kind = KindPerturb
	case "sleep":
		r.Kind = KindSleep
	default:
		return Rule{}, tecerr.Newf(tecerr.CodeInvalidInput, "faults.spec",
			"faults: unknown kind %q in rule %q (want error, panic, nan, posinf, perturb or sleep)", kindName, s)
	}
	selectors := 0
	for _, p := range splitNonEmpty(params, ",") {
		key, val, ok := strings.Cut(p, "=")
		if !ok {
			return Rule{}, tecerr.Newf(tecerr.CodeInvalidInput, "faults.spec",
				"faults: bad param %q in rule %q", p, s)
		}
		switch key {
		case "onhit":
			n, err := parseUint(val)
			if err != nil {
				return Rule{}, badParam(s, p, err)
			}
			r.OnHit = n
			selectors++
		case "every":
			n, err := parseUint(val)
			if err != nil {
				return Rule{}, badParam(s, p, err)
			}
			r.Every = n
			selectors++
		case "prob":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return Rule{}, tecerr.Newf(tecerr.CodeInvalidInput, "faults.spec",
					"faults: prob %q in rule %q must be in (0, 1]", val, s)
			}
			r.Prob = f
			selectors++
		case "scale":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Rule{}, badParam(s, p, err)
			}
			r.Scale = f
		case "ms":
			n, err := parseUint(val)
			if err != nil {
				return Rule{}, badParam(s, p, err)
			}
			r.Sleep = time.Duration(n) * time.Millisecond
		case "code":
			code, ok := codeByName(val)
			if !ok {
				return Rule{}, tecerr.Newf(tecerr.CodeInvalidInput, "faults.spec",
					"faults: unknown tecerr code %q in rule %q", val, s)
			}
			r.Err = tecerr.Wrapf(code, "faults", ErrInjected,
				"faults: injected %s error at %s", val, site)
		default:
			return Rule{}, tecerr.Newf(tecerr.CodeInvalidInput, "faults.spec",
				"faults: unknown param %q in rule %q", key, s)
		}
	}
	if selectors > 1 {
		return Rule{}, tecerr.Newf(tecerr.CodeInvalidInput, "faults.spec",
			"faults: rule %q sets more than one of onhit/every/prob", s)
	}
	return r, nil
}

// codeByName resolves a tecerr code's String() name. The scan is
// bounded by the first unnamed code, so it tracks the enum without a
// parallel table here.
func codeByName(name string) (tecerr.Code, bool) {
	for c := tecerr.Code(0); ; c++ {
		s := c.String()
		if strings.HasPrefix(s, "Code(") {
			return 0, false
		}
		if s == name {
			return c, true
		}
	}
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(s, 10, 64)
}

func badParam(rule, param string, err error) error {
	return tecerr.Newf(tecerr.CodeInvalidInput, "faults.spec",
		"faults: bad param %q in rule %q: %v", param, rule, err)
}

// splitNonEmpty splits s on sep, dropping empty and whitespace-only
// segments ("" splits to nothing, not [""]).
func splitNonEmpty(s, sep string) []string {
	var out []string
	for _, p := range strings.Split(s, sep) {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
