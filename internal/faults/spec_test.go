package faults

import (
	"errors"
	"math"
	"testing"
	"time"

	"tecopt/internal/tecerr"
)

func TestParseSpecRules(t *testing.T) {
	in, err := ParseSpec("seed=7;panic@serve.handle:onhit=3;error@serve.handle:prob=0.25,code=not_pd;sleep@serve.admit:every=2,ms=50")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if in.seed != 7 {
		t.Errorf("seed = %d, want 7", in.seed)
	}
	handle := in.rules[SiteServeHandle]
	if len(handle) != 2 {
		t.Fatalf("serve.handle rules = %d, want 2", len(handle))
	}
	if handle[0].Kind != KindPanic || handle[0].OnHit != 3 {
		t.Errorf("rule 0 = %+v, want panic onhit=3", handle[0].Rule)
	}
	if handle[1].Kind != KindError || math.Abs(handle[1].Prob-0.25) > 1e-15 {
		t.Errorf("rule 1 = %+v, want error prob=0.25", handle[1].Rule)
	}
	if !errors.Is(handle[1].Err, tecerr.ErrNotPD) || !errors.Is(handle[1].Err, ErrInjected) {
		t.Errorf("code=not_pd payload %v must match ErrNotPD and ErrInjected", handle[1].Err)
	}
	admit := in.rules[SiteServeAdmit]
	if len(admit) != 1 || admit[0].Kind != KindSleep || admit[0].Sleep != 50*time.Millisecond || admit[0].Every != 2 {
		t.Errorf("serve.admit rule = %+v, want sleep every=2 ms=50", admit[0].Rule)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"seed=1",
		"seed=x;panic@a",
		"panic",
		"panic@",
		"warp@site",
		"error@site:prob=2",
		"error@site:onhit=1,every=2",
		"error@site:code=warp",
		"error@site:frequency=1",
		"error@site:onhit=abc",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); !errors.Is(err, tecerr.ErrInvalidInput) {
			t.Errorf("ParseSpec(%q) = %v, want CodeInvalidInput", s, err)
		}
	}
}

// TestKindSleepBlocks pins the latency primitive: Check at an armed
// sleep site blocks for the configured duration and returns nil.
func TestKindSleepBlocks(t *testing.T) {
	in := New(1).Arm(Rule{Site: SiteServeHandle, Kind: KindSleep, Sleep: 30 * time.Millisecond})
	Install(in)
	defer Uninstall()
	start := time.Now()
	if err := Check(SiteServeHandle); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("Check returned after %v, want >= 30ms sleep", d)
	}
}

// TestCodeByNameCoversTaxonomy checks the name scan resolves every
// named tecerr code (the serve chaos specs depend on it).
func TestCodeByNameCoversTaxonomy(t *testing.T) {
	for _, name := range []string{"internal", "invalid_input", "not_pd", "diverged", "cancelled", "degraded", "panic", "overload", "unavailable"} {
		c, ok := codeByName(name)
		if !ok {
			t.Errorf("codeByName(%q) not found", name)
			continue
		}
		if c.String() != name {
			t.Errorf("codeByName(%q) = %v", name, c)
		}
	}
	if _, ok := codeByName("definitely-not-a-code"); ok {
		t.Error("codeByName accepted an unknown name")
	}
}
