// Package faults is a deterministic, seed-keyed fault-injection harness
// for the solve stack. Chaos tests build an Injector, arm Rules against
// named sites (a panic inside a pool worker, a NaN in a power map, a
// forced CG non-convergence, a mid-sweep cancellation, perturbed matrix
// entries), install it, and run the real pipeline; instrumented code
// consults the injector through the package-level hooks (Check,
// Float64, Perturb) at each site.
//
// Production builds pay one atomic pointer load per hook: with no
// injector installed every hook is an immediate no-op, mirroring the
// internal/obs nil-registry pattern. Nothing outside a test should ever
// call Install.
//
// Determinism: probabilistic rules (Prob) decide each hit from a hash
// of (injector seed, site, hit number) — never from the wall clock or a
// shared RNG — so a chaos run with a fixed seed fires the exact same
// faults at the exact same hits regardless of goroutine scheduling.
// Hit counters are per-rule atomics, so concurrent workers hitting one
// site observe a consistent total.
//
// The package imports only tecerr and the standard library, so every
// solver package can hook into it without import cycles.
package faults

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"tecopt/internal/tecerr"
)

// Site names. Constants rather than free strings so chaos tests and
// instrumented code cannot drift apart.
const (
	// SitePoolTask fires at the start of every engine.Pool task.
	SitePoolTask = "engine.pool.task"
	// SiteCGIteration fires once per CG iteration, before the matvec.
	SiteCGIteration = "sparse.cg.iteration"
	// SiteCGResidual filters the relative residual of every CG iteration.
	SiteCGResidual = "sparse.cg.residual"
	// SiteBandMatrix perturbs the loaded band of a Cholesky factorization.
	SiteBandMatrix = "sparse.band.matrix"
	// SitePower filters every per-tile power entering a power vector.
	SitePower = "thermal.power"
	// SiteSweepPoint fires at every h_kl sweep sample point.
	SiteSweepPoint = "core.sweep.point"
	// SiteSMWGuard filters the capacitance-matrix conditioning margin of
	// every Sherman-Morrison-Woodbury correction, so chaos tests can
	// force the guard to trip and exercise the guarded-chain fallback.
	SiteSMWGuard = "sparse.smw.guard"
	// SiteServeAdmit fires as the serving layer (tecserve) classifies a
	// request, before admission control — faults here exercise the
	// reject-early paths (shed, unavailable, malformed).
	SiteServeAdmit = "serve.admit"
	// SiteServeHandle fires inside a serving-layer worker as an admitted
	// request starts executing — faults here (panics, typed errors,
	// injected latency) exercise per-request isolation and the
	// status-code mapping with the request already holding a slot.
	SiteServeHandle = "serve.handle"
)

// ErrInjected is the cause wrapped by every injected error, so tests
// can tell an injected failure from an organic one with errors.Is.
var ErrInjected = errors.New("faults: injected error")

// Kind selects what an armed rule does when it fires.
type Kind int

const (
	// KindError makes Check return Rule.Err (or a generic injected
	// error wrapping ErrInjected).
	KindError Kind = iota
	// KindPanic makes Check panic, exercising worker recovery paths.
	KindPanic
	// KindCall makes Check invoke Rule.Call — e.g. a context.CancelFunc
	// to cancel a sweep from the middle of the sweep itself.
	KindCall
	// KindNaN makes Float64 return NaN.
	KindNaN
	// KindPosInf makes Float64 return +Inf.
	KindPosInf
	// KindPerturb makes Float64 scale its value by (1 + Scale*u) with a
	// deterministic u in [-1, 1), and Perturb do the same elementwise.
	KindPerturb
	// KindSleep makes Check block for Rule.Sleep before returning nil —
	// injected latency, the service-layer chaos primitive that turns a
	// fast handler into a slow one so backpressure, deadline, and drain
	// paths can be exercised deterministically.
	KindSleep
)

// Rule arms one fault at one site. Exactly one of the firing selectors
// should be set: OnHit fires on the nth hit only, Every fires on every
// nth hit, Prob fires each hit with the given seed-keyed probability,
// and with none set the rule fires on every hit.
type Rule struct {
	Site  string
	Kind  Kind
	OnHit uint64  // fire on this 1-based hit only
	Every uint64  // fire on every Every-th hit
	Prob  float64 // fire each hit with this probability (seed-keyed)
	Err   error         // KindError payload; nil uses a generic injected error
	Scale float64       // KindPerturb relative amplitude
	Call  func()        // KindCall payload
	Sleep time.Duration // KindSleep latency
}

// armed is a Rule plus its runtime counters.
type armed struct {
	Rule
	hits  atomic.Uint64
	fired atomic.Uint64
}

// step records one hit and reports whether the rule fires on it.
func (a *armed) step(seed uint64) (n uint64, fire bool) {
	n = a.hits.Add(1)
	switch {
	case a.OnHit > 0:
		fire = n == a.OnHit
	case a.Every > 0:
		fire = n%a.Every == 0
	case a.Prob > 0:
		fire = u01(seed, a.Site, n) < a.Prob
	default:
		fire = true
	}
	if fire {
		a.fired.Add(1)
	}
	return n, fire
}

// Injector holds a set of armed rules. Build with New, arm with Arm,
// activate with Install. Arm is not safe to call after Install.
type Injector struct {
	seed  uint64
	rules map[string][]*armed
}

// New returns an empty injector keyed by seed.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed), rules: map[string][]*armed{}}
}

// Arm adds a rule and returns the injector for chaining.
func (in *Injector) Arm(r Rule) *Injector {
	in.rules[r.Site] = append(in.rules[r.Site], &armed{Rule: r})
	return in
}

// Hits returns the total number of times site was evaluated against
// this injector's rules (max over the site's rules, which all see every
// applicable hook call of their kind class).
func (in *Injector) Hits(site string) uint64 {
	var n uint64
	for _, a := range in.rules[site] {
		if h := a.hits.Load(); h > n {
			n = h
		}
	}
	return n
}

// Fired returns how many times the site's rules fired.
func (in *Injector) Fired(site string) uint64 {
	var n uint64
	for _, a := range in.rules[site] {
		n += a.fired.Load()
	}
	return n
}

// current is the installed injector; nil means fault injection is off
// and every hook is a single atomic load.
var current atomic.Pointer[Injector]

// Install activates in (nil deactivates). Tests must pair Install with
// a deferred Uninstall so faults never leak across tests.
func Install(in *Injector) { current.Store(in) }

// Uninstall deactivates fault injection.
func Uninstall() { current.Store(nil) }

// Enabled returns the installed injector, or nil when off.
func Enabled() *Injector { return current.Load() }

// Check evaluates the control-flow rules (KindError, KindPanic,
// KindCall) armed at site. It returns the injected error, panics, or
// invokes the armed callback when a rule fires; otherwise returns nil.
func Check(site string) error {
	in := current.Load()
	if in == nil {
		return nil
	}
	for _, a := range in.rules[site] {
		switch a.Kind {
		case KindError, KindPanic, KindCall, KindSleep:
		default:
			continue
		}
		n, fire := a.step(in.seed)
		if !fire {
			continue
		}
		switch a.Kind {
		case KindPanic:
			panic(fmt.Sprintf("faults: injected panic at %s (hit %d)", site, n))
		case KindCall:
			if a.Call != nil {
				a.Call()
			}
		case KindSleep:
			time.Sleep(a.Sleep)
		default:
			if a.Err != nil {
				return a.Err
			}
			return tecerr.Wrapf(tecerr.CodeInternal, "faults", ErrInjected,
				"faults: injected error at %s (hit %d)", site, n)
		}
	}
	return nil
}

// Float64 filters one value through the value rules (KindNaN,
// KindPosInf, KindPerturb) armed at site, returning it unchanged when
// nothing fires.
func Float64(site string, v float64) float64 {
	in := current.Load()
	if in == nil {
		return v
	}
	for _, a := range in.rules[site] {
		switch a.Kind {
		case KindNaN, KindPosInf, KindPerturb:
		default:
			continue
		}
		n, fire := a.step(in.seed)
		if !fire {
			continue
		}
		switch a.Kind {
		case KindNaN:
			return math.NaN()
		case KindPosInf:
			return math.Inf(1)
		default:
			return v * (1 + a.Scale*jitter(in.seed, a.Site, n, 0))
		}
	}
	return v
}

// Perturb applies the KindPerturb rules armed at site elementwise to
// xs, in place. One call counts as one hit.
func Perturb(site string, xs []float64) {
	in := current.Load()
	if in == nil {
		return
	}
	for _, a := range in.rules[site] {
		if a.Kind != KindPerturb {
			continue
		}
		n, fire := a.step(in.seed)
		if !fire {
			continue
		}
		for i := range xs {
			xs[i] *= 1 + a.Scale*jitter(in.seed, a.Site, n, uint64(i))
		}
	}
}

// u01 maps (seed, site, hit) to a deterministic value in [0, 1).
func u01(seed uint64, site string, n uint64) float64 {
	return float64(mix(seed^fnv64(site)^n)>>11) / float64(1<<53)
}

// jitter maps (seed, site, hit, index) to a deterministic value in
// [-1, 1).
func jitter(seed uint64, site string, n, i uint64) float64 {
	return 2*float64(mix(seed^fnv64(site)^n^(i*0x9e3779b97f4a7c15))>>11)/float64(1<<53) - 1
}

// mix is the splitmix64 finalizer.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv64 is the FNV-1a hash of s.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
