package faults

import (
	"errors"
	"math"
	"testing"
)

func TestDisabledHooksAreNoOps(t *testing.T) {
	Uninstall()
	if err := Check("any.site"); err != nil {
		t.Fatalf("Check with no injector: %v", err)
	}
	if v := Float64("any.site", 1.5); v != 1.5 { // teclint:ignore floateq disabled path must be bit-exact pass-through
		t.Fatalf("Float64 with no injector = %g", v)
	}
	xs := []float64{1, 2, 3}
	Perturb("any.site", xs)
	if xs[0] != 1 || xs[1] != 2 || xs[2] != 3 { // teclint:ignore floateq disabled path must be bit-exact pass-through
		t.Fatal("Perturb with no injector modified its input")
	}
}

func TestOnHitFiresExactlyOnce(t *testing.T) {
	in := New(1).Arm(Rule{Site: "s", Kind: KindError, OnHit: 3})
	Install(in)
	defer Uninstall()
	for n := 1; n <= 5; n++ {
		err := Check("s")
		if (n == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", n, err)
		}
		if n == 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("injected error %v does not match ErrInjected", err)
		}
	}
	if got := in.Fired("s"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	if got := in.Hits("s"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	in := New(1).Arm(Rule{Site: "s", Kind: KindError, Every: 2})
	Install(in)
	defer Uninstall()
	var fired int
	for n := 0; n < 10; n++ {
		if Check("s") != nil {
			fired++
		}
	}
	if fired != 5 {
		t.Fatalf("fired %d times over 10 hits with Every=2", fired)
	}
}

func TestProbIsSeedDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed).Arm(Rule{Site: "s", Kind: KindError, Prob: 0.5})
		Install(in)
		defer Uninstall()
		out := make([]bool, 64)
		for n := range out {
			out[n] = Check("s") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-hit patterns")
	}
}

func TestCustomErrorPayload(t *testing.T) {
	want := errors.New("forced")
	Install(New(1).Arm(Rule{Site: "s", Kind: KindError, Err: want}))
	defer Uninstall()
	if err := Check("s"); !errors.Is(err, want) {
		t.Fatalf("Check = %v, want %v", err, want)
	}
}

func TestPanicKind(t *testing.T) {
	Install(New(1).Arm(Rule{Site: "s", Kind: KindPanic}))
	defer Uninstall()
	defer func() {
		if recover() == nil {
			t.Fatal("KindPanic did not panic")
		}
	}()
	_ = Check("s")
}

func TestCallKind(t *testing.T) {
	called := 0
	Install(New(1).Arm(Rule{Site: "s", Kind: KindCall, OnHit: 2, Call: func() { called++ }}))
	defer Uninstall()
	for n := 0; n < 4; n++ {
		if err := Check("s"); err != nil {
			t.Fatalf("KindCall returned error %v", err)
		}
	}
	if called != 1 {
		t.Fatalf("callback ran %d times, want 1", called)
	}
}

func TestFloat64Kinds(t *testing.T) {
	Install(New(1).
		Arm(Rule{Site: "nan", Kind: KindNaN}).
		Arm(Rule{Site: "inf", Kind: KindPosInf}).
		Arm(Rule{Site: "pert", Kind: KindPerturb, Scale: 0.1}))
	defer Uninstall()
	if v := Float64("nan", 1); !math.IsNaN(v) {
		t.Fatalf("KindNaN = %g", v)
	}
	if v := Float64("inf", 1); !math.IsInf(v, 1) {
		t.Fatalf("KindPosInf = %g", v)
	}
	v := Float64("pert", 100)
	if v == 100 || math.Abs(v-100) > 10 { // teclint:ignore floateq perturbation must change the bits
		t.Fatalf("KindPerturb = %g, want within 10%% of 100 and not exact", v)
	}
}

func TestPerturbIsDeterministicAndBounded(t *testing.T) {
	run := func() []float64 {
		Install(New(7).Arm(Rule{Site: "m", Kind: KindPerturb, Scale: 0.01}))
		defer Uninstall()
		xs := []float64{1, 2, 3, 4}
		Perturb("m", xs)
		return xs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] { // teclint:ignore floateq seeded replay must be bit-identical
			t.Fatalf("perturbation not deterministic at %d: %g vs %g", i, a[i], b[i])
		}
		orig := float64(i + 1)
		if math.Abs(a[i]-orig) > 0.01*orig {
			t.Fatalf("perturbation at %d exceeds Scale: %g from %g", i, a[i], orig)
		}
	}
}

func TestControlAndValueKindsKeepSeparateCounters(t *testing.T) {
	// A value rule must not consume hits from Check, and vice versa.
	in := New(1).
		Arm(Rule{Site: "s", Kind: KindError, OnHit: 2}).
		Arm(Rule{Site: "s", Kind: KindNaN, OnHit: 2})
	Install(in)
	defer Uninstall()
	if Check("s") != nil {
		t.Fatal("error rule fired on hit 1")
	}
	if v := Float64("s", 1); v != 1 { // teclint:ignore floateq unfired rule must be bit-exact pass-through
		t.Fatalf("value hit 1 = %g", v)
	}
	if v := Float64("s", 1); !math.IsNaN(v) { // NaN on its own 2nd hit
		t.Fatalf("value rule did not fire on its 2nd hit: %g", v)
	}
	if Check("s") == nil {
		t.Fatal("error rule did not fire on its 2nd hit")
	}
}
