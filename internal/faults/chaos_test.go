// Chaos suite: a seeded injector crossed with {panic, NaN, cancel,
// non-convergence} crossed with {serial, parallel}, run against the
// real solve pipeline. The contract under test is the PR's robustness
// invariant: every injected fault must surface as a typed tecerr error
// or as a recorded degraded-but-correct result — never as a crash, a
// deadlock, or a silently wrong answer. CI runs this file under -race
// (make chaos).
//
// The injector is process-global, so no test here calls t.Parallel;
// each installs its injector and defers Uninstall.
package faults_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"tecopt/internal/core"
	"tecopt/internal/engine"
	"tecopt/internal/faults"
	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/tecerr"
	"tecopt/internal/thermal"
)

// tinySystem builds a small model (4x4 die, 5x5 coarse layers, one TEC)
// so chaos runs stay fast under -race.
func tinySystem(t *testing.T) *core.System {
	t.Helper()
	p := make([]float64, 16)
	for i := range p {
		p[i] = 0.15
	}
	p[5] = 1.2
	sys, err := core.NewSystem(core.Config{
		Cols: 4, Rows: 4, SpreaderCells: 5, SinkCells: 5,
		TilePower: p,
	}, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// tinyNetwork builds the matching bare package network plus its
// tile-power map for thermal-layer chaos.
func tinyNetwork(t *testing.T) (*thermal.PackageNetwork, []float64) {
	t.Helper()
	pn, err := thermal.BuildPackage(material.DefaultPackage(), thermal.BuildOptions{
		Cols: 4, Rows: 4, SpreaderCells: 5, SinkCells: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tp := make([]float64, 16)
	for i := range tp {
		tp[i] = 0.15
	}
	tp[5] = 1.2
	return pn, tp
}

// sweepCurrents samples well inside the runaway limit so a healthy
// sweep cannot fail on its own.
func sweepCurrents(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.1 * float64(i) / float64(n)
	}
	return out
}

// eachPool runs the body once serially and once on the full worker
// pool — the {serial, parallel} axis of the chaos matrix.
func eachPool(t *testing.T, body func(t *testing.T, pool engine.Pool)) {
	t.Helper()
	t.Run("serial", func(t *testing.T) { body(t, engine.Pool{Workers: 1}) })
	t.Run("parallel", func(t *testing.T) { body(t, engine.Pool{Workers: 0}) })
}

// TestChaosSweepPanic injects a panic into a pool worker mid-sweep and
// demands it comes back as a typed CodePanic error with the recovered
// stack — not a process crash and not a deadlocked WaitGroup.
func TestChaosSweepPanic(t *testing.T) {
	sys := tinySystem(t)
	k := sys.PN.SilNode[5]
	l := sys.Array.Hot[0]
	eachPool(t, func(t *testing.T, pool engine.Pool) {
		faults.Install(faults.New(1).Arm(faults.Rule{
			Site: faults.SitePoolTask, Kind: faults.KindPanic, OnHit: 3,
		}))
		defer faults.Uninstall()
		_, err := sys.HklSweepParallelCtx(context.Background(), k, l, sweepCurrents(16), pool)
		if !errors.Is(err, tecerr.ErrPanic) {
			t.Fatalf("injected worker panic surfaced as %v, want CodePanic", err)
		}
		var te *tecerr.Error
		if !errors.As(err, &te) || len(te.Stack) == 0 {
			t.Fatalf("recovered panic lost its stack: %#v", err)
		}
	})
}

// TestChaosSweepInjectedError arms a plain injected error at a sweep
// point and checks it propagates unmangled (errors.Is reaches the
// ErrInjected cause through every wrapping layer).
func TestChaosSweepInjectedError(t *testing.T) {
	sys := tinySystem(t)
	k := sys.PN.SilNode[5]
	l := sys.Array.Hot[0]
	eachPool(t, func(t *testing.T, pool engine.Pool) {
		faults.Install(faults.New(2).Arm(faults.Rule{
			Site: faults.SiteSweepPoint, Kind: faults.KindError, OnHit: 2,
		}))
		defer faults.Uninstall()
		_, err := sys.HklSweepParallelCtx(context.Background(), k, l, sweepCurrents(16), pool)
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("injected sweep error surfaced as %v, want ErrInjected in the chain", err)
		}
	})
}

// TestChaosCancelMidSweep cancels the sweep's own context from inside a
// sweep point. Serially the remaining points must be abandoned with a
// typed CodeCancelled error; in parallel the workers race the cancel,
// so either the typed error surfaces or the sweep completed with every
// sample finite — never a partial slice passed off as complete.
func TestChaosCancelMidSweep(t *testing.T) {
	sys := tinySystem(t)
	k := sys.PN.SilNode[5]
	l := sys.Array.Hot[0]
	eachPool(t, func(t *testing.T, pool engine.Pool) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		faults.Install(faults.New(3).Arm(faults.Rule{
			Site: faults.SiteSweepPoint, Kind: faults.KindCall, OnHit: 2, Call: cancel,
		}))
		defer faults.Uninstall()
		hs, err := sys.HklSweepParallelCtx(ctx, k, l, sweepCurrents(64), pool)
		if err != nil {
			if !errors.Is(err, tecerr.ErrCancelled) {
				t.Fatalf("mid-sweep cancel surfaced as %v, want CodeCancelled", err)
			}
			return
		}
		for i, h := range hs {
			if !num.IsFinite(h) {
				t.Fatalf("nil-error sweep has non-finite sample %g at %d", h, i)
			}
		}
	})
}

// TestChaosCGDivergenceFallsBack poisons every CG residual with NaN:
// the divergence guard must classify the link as CodeDiverged, and the
// guarded chain must recover on the banded direct solver with a result
// matching the dense reference — degraded, recorded, and correct.
func TestChaosCGDivergenceFallsBack(t *testing.T) {
	pn, tp := tinyNetwork(t)
	ref, err := pn.SolvePassive(tp, thermal.MethodDenseCholesky)
	if err != nil {
		t.Fatal(err)
	}
	faults.Install(faults.New(4).Arm(faults.Rule{
		Site: faults.SiteCGResidual, Kind: faults.KindNaN,
	}))
	defer faults.Uninstall()
	theta, rep, err := pn.SolveSteadyGuarded(context.Background(), tp, thermal.GuardedOptions{
		Chain: []thermal.Method{thermal.MethodCG, thermal.MethodBandCholesky},
	})
	if err != nil {
		t.Fatalf("guarded solve failed outright: %v", err)
	}
	if !rep.Degraded || rep.Method != thermal.MethodBandCholesky {
		t.Fatalf("report = %+v, want degraded band-Cholesky recovery", rep)
	}
	if len(rep.Attempts) != 1 || !errors.Is(rep.Attempts[0].Err, tecerr.ErrDiverged) {
		t.Fatalf("CG attempt recorded as %v, want CodeDiverged", rep.Attempts)
	}
	for i := range ref {
		if !num.EqualWithin(theta[i], ref[i], 1e-8) {
			t.Fatalf("degraded result wrong at node %d: %g vs reference %g", i, theta[i], ref[i])
		}
	}
}

// TestChaosCGNonConvergenceFallsBack forces the CG link to fail with an
// injected iteration error (the forced non-convergence axis) and checks
// the chain still lands on a correct direct solve.
func TestChaosCGNonConvergenceFallsBack(t *testing.T) {
	pn, tp := tinyNetwork(t)
	ref, err := pn.SolvePassive(tp, thermal.MethodDenseCholesky)
	if err != nil {
		t.Fatal(err)
	}
	faults.Install(faults.New(5).Arm(faults.Rule{
		Site: faults.SiteCGIteration, Kind: faults.KindError,
	}))
	defer faults.Uninstall()
	theta, rep, err := pn.SolveSteadyGuarded(context.Background(), tp, thermal.GuardedOptions{})
	if err != nil {
		t.Fatalf("guarded solve failed outright: %v", err)
	}
	if !rep.Degraded {
		t.Fatalf("report = %+v, want a degraded recovery", rep)
	}
	if len(rep.Attempts) == 0 || !errors.Is(rep.Attempts[0].Err, faults.ErrInjected) {
		t.Fatalf("CG attempt recorded as %v, want the injected error", rep.Attempts)
	}
	for i := range ref {
		if !num.EqualWithin(theta[i], ref[i], 1e-8) {
			t.Fatalf("degraded result wrong at node %d: %g vs reference %g", i, theta[i], ref[i])
		}
	}
}

// TestChaosPowerNaN injects NaN into a power map and demands the typed
// invalid-input rejection before anything is solved.
func TestChaosPowerNaN(t *testing.T) {
	pn, tp := tinyNetwork(t)
	faults.Install(faults.New(6).Arm(faults.Rule{
		Site: faults.SitePower, Kind: faults.KindNaN, OnHit: 3,
	}))
	defer faults.Uninstall()
	_, _, err := pn.SolveSteadyGuarded(context.Background(), tp, thermal.GuardedOptions{})
	if !errors.Is(err, tecerr.ErrInvalidInput) {
		t.Fatalf("NaN power surfaced as %v, want CodeInvalidInput", err)
	}
}

// TestChaosBandPerturbEscalatesToDense corrupts the banded
// factorization's loaded band hard enough to destroy positive
// definiteness. The chain must either recover on the dense reference
// factorization (which reads the uncorrupted matrix) with a correct
// answer, or fail typed as CodeNotPD — depending on whether the
// corruption broke the factorization or merely bent it, in which case
// only the dense link's answer is trustworthy.
func TestChaosBandPerturbEscalatesToDense(t *testing.T) {
	pn, tp := tinyNetwork(t)
	ref, err := pn.SolvePassive(tp, thermal.MethodDenseCholesky)
	if err != nil {
		t.Fatal(err)
	}
	faults.Install(faults.New(7).Arm(faults.Rule{
		Site: faults.SiteBandMatrix, Kind: faults.KindPerturb, Scale: 50,
	}))
	defer faults.Uninstall()
	theta, rep, err := pn.SolveSteadyGuarded(context.Background(), tp, thermal.GuardedOptions{
		Chain: []thermal.Method{thermal.MethodBandCholesky, thermal.MethodDenseCholesky},
	})
	if err != nil {
		if !errors.Is(err, tecerr.ErrNotPD) {
			t.Fatalf("band corruption surfaced as %v, want CodeNotPD", err)
		}
		return
	}
	if !rep.Degraded || rep.Method != thermal.MethodDenseCholesky {
		t.Fatalf("report = %+v, want degraded dense recovery", rep)
	}
	for i := range ref {
		if !num.EqualWithin(theta[i], ref[i], 1e-8) {
			t.Fatalf("degraded result wrong at node %d: %g vs reference %g", i, theta[i], ref[i])
		}
	}
}

// TestChaosConjectureCancel cancels a Conjecture-1 campaign from inside
// a pool task and checks the partial report plus the typed error come
// back instead of a hang or a fabricated full count.
func TestChaosConjectureCancel(t *testing.T) {
	t.Run("serial", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		faults.Install(faults.New(8).Arm(faults.Rule{
			Site: faults.SitePoolTask, Kind: faults.KindCall, OnHit: 5, Call: cancel,
		}))
		defer faults.Uninstall()
		rep, err := core.VerifyConjecture1Ctx(ctx, rand.New(rand.NewSource(9)), core.ConjectureOptions{
			Matrices: 20, MaxOrder: 6, Parallel: 1,
		})
		if !errors.Is(err, tecerr.ErrCancelled) {
			t.Fatalf("mid-campaign cancel surfaced as %v, want CodeCancelled", err)
		}
		if rep.Matrices == 0 || rep.Matrices >= 20 {
			t.Fatalf("partial report covers %d matrices, want a strict nonzero subset of 20", rep.Matrices)
		}
		if rep.Violations != 0 {
			t.Fatalf("partial report fabricated %d violations", rep.Violations)
		}
	})
	t.Run("parallel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		faults.Install(faults.New(8).Arm(faults.Rule{
			Site: faults.SitePoolTask, Kind: faults.KindCall, OnHit: 5, Call: cancel,
		}))
		defer faults.Uninstall()
		rep, err := core.VerifyConjecture1Ctx(ctx, rand.New(rand.NewSource(9)), core.ConjectureOptions{
			Matrices: 64, MaxOrder: 6, Parallel: 0,
		})
		// Workers race the cancel: either the typed error surfaces with a
		// partial count, or every trial beat it and the report is full.
		if err != nil && !errors.Is(err, tecerr.ErrCancelled) {
			t.Fatalf("mid-campaign cancel surfaced as %v, want CodeCancelled", err)
		}
		if err == nil && rep.Matrices != 64 {
			t.Fatalf("nil error with %d of 64 matrices: partial report passed off as complete", rep.Matrices)
		}
		if rep.Violations != 0 {
			t.Fatalf("report fabricated %d violations", rep.Violations)
		}
	})
}

// TestGuardedMatchesReferenceOnHealthySystems is the property half of
// the suite: with no faults installed, every fallback chain — and every
// individual link — must agree with the dense reference factorization
// to solver tolerance. The fallback machinery must be invisible on
// healthy systems.
func TestGuardedMatchesReferenceOnHealthySystems(t *testing.T) {
	pn, tp := tinyNetwork(t)
	uniform := make([]float64, len(tp))
	for i := range uniform {
		uniform[i] = 0.4
	}
	chains := map[string][]thermal.Method{
		"default": nil,
		"cg":      {thermal.MethodCG},
		"band":    {thermal.MethodBandCholesky},
		"dense":   {thermal.MethodDenseCholesky},
	}
	for name, tilePower := range map[string][]float64{"hotspot": tp, "uniform": uniform} {
		ref, err := pn.SolvePassive(tilePower, thermal.MethodDenseCholesky)
		if err != nil {
			t.Fatal(err)
		}
		for cname, chain := range chains {
			theta, rep, err := pn.SolveSteadyGuarded(context.Background(), tilePower,
				thermal.GuardedOptions{Chain: chain})
			if err != nil {
				t.Fatalf("%s/%s: healthy guarded solve failed: %v", name, cname, err)
			}
			if rep.Degraded {
				t.Fatalf("%s/%s: healthy solve reported degraded: %+v", name, cname, rep)
			}
			for i := range ref {
				if !num.EqualWithin(theta[i], ref[i], 1e-8) {
					t.Fatalf("%s/%s: node %d: %g vs reference %g", name, cname, i, theta[i], ref[i])
				}
			}
		}
	}
}
