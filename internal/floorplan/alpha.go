package floorplan

// Alpha21364 returns the Alpha-21364-like floorplan of the paper's
// Section VI.A: a 6 mm x 6 mm die (65 nm scaling of the EV7-class part)
// whose functional units align exactly with the 12x12 grid of
// 0.5 mm x 0.5 mm tiles, one tile per candidate TEC site.
//
// The layout follows the EV6/EV7 organization reproduced in Figure 7(a):
// the L2 cache wraps the lower half and the sides of the core, the L1
// caches sit mid-die, and the dense integer cluster (IntReg, IntExec, IQ,
// LSQ) plus the FP multiplier/adder — the units the paper identifies as
// consuming 28.1% of the power in 10.4% of the area — cluster near the
// top. The 21364's on-chip router and memory controller occupy the top
// corners band.
func Alpha21364() *Floorplan {
	const tile = 0.5e-3 // tile pitch (m)
	f := New("alpha21364", 12*tile, 12*tile)
	// Units specified in tile-grid coordinates (col, row, wTiles, hTiles),
	// row 0 at the bottom of the die.
	add := func(name string, col, row, w, h int) {
		err := f.AddUnit(Unit{Name: name, Rect: Rect{
			X: float64(col) * tile,
			Y: float64(row) * tile,
			W: float64(w) * tile,
			H: float64(h) * tile,
		}})
		if err != nil {
			panic(err) // the static layout below is tested to be exact
		}
	}

	add("L2", 0, 0, 12, 4)       // lower cache band
	add("L2_left", 0, 4, 2, 6)   // left cache wing
	add("L2_right", 10, 4, 2, 6) // right cache wing
	add("Icache", 2, 4, 4, 3)    // L1 instruction cache
	add("Dcache", 6, 4, 4, 3)    // L1 data cache
	add("FPAdd", 2, 7, 2, 1)     // floating-point adder (hot)
	add("FPReg", 4, 7, 1, 1)     // floating-point register file
	add("FPMul", 5, 7, 1, 1)     // floating-point multiplier (hot)
	add("FPMap", 6, 7, 1, 1)     // floating-point mapper
	add("IntMap", 7, 7, 1, 1)    // integer mapper
	add("FPQ", 8, 7, 2, 1)       // floating-point issue queue
	add("IntQ", 2, 8, 2, 1)      // integer issue queue (hot)
	add("IntReg", 4, 8, 4, 1)    // integer register file (hottest unit)
	add("LdStQ", 8, 8, 2, 2)     // load/store queue (hot)
	add("ITB", 2, 9, 1, 1)       // instruction TLB
	add("IntExec", 3, 9, 5, 1)   // integer execution cluster (hot)
	add("Bpred", 0, 10, 2, 2)    // branch predictor (top-left)
	add("Router", 2, 10, 4, 2)   // 21364 interprocessor router
	add("MemCtrl", 6, 10, 4, 2)  // 21364 on-chip memory controller
	add("DTB", 10, 10, 2, 2)     // data TLB (top-right)
	return f
}

// Alpha21364Grid returns the floorplan together with its canonical 12x12
// tiling.
func Alpha21364Grid() (*Floorplan, *Grid) {
	f := Alpha21364()
	g, err := f.Tile(12, 12)
	if err != nil {
		panic(err)
	}
	return f, g
}

// AlphaHotUnits lists the high-power-density units the paper calls out:
// together they consume 28.1% of total power in 10.4% of the die area.
var AlphaHotUnits = []string{"IntReg", "IntExec", "IntQ", "LdStQ", "FPMul", "FPAdd"}
