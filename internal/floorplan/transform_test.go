package floorplan

import (
	"math"
	"testing"

	"tecopt/internal/num"
)

func TestMirrorXPreservesValidity(t *testing.T) {
	f := Alpha21364()
	m := f.MirrorX()
	if err := m.Validate(1e-9); err != nil {
		t.Fatalf("mirrored floorplan invalid: %v", err)
	}
	// Mirroring twice restores the original geometry.
	back := m.MirrorX()
	for i, u := range f.Units {
		b := back.Units[i]
		if math.Abs(b.X-u.X) > 1e-12 || math.Abs(b.Y-u.Y) > 1e-12 {
			t.Fatalf("double mirror moved unit %s", u.Name)
		}
	}
	// Left wing becomes right wing.
	l2l, _ := m.Unit("L2_left")
	if l2l.X < f.DieW/2 {
		t.Fatalf("L2_left did not move right: x=%g", l2l.X)
	}
}

func TestMirrorYPreservesValidity(t *testing.T) {
	f := Alpha21364()
	m := f.MirrorY()
	if err := m.Validate(1e-9); err != nil {
		t.Fatalf("mirrored floorplan invalid: %v", err)
	}
	// The bottom L2 band must move to the top.
	l2, _ := m.Unit("L2")
	if l2.Y < f.DieH/2 {
		t.Fatalf("L2 band did not move up: y=%g", l2.Y)
	}
}

func TestRotate90(t *testing.T) {
	f := Alpha21364()
	r := f.Rotate90()
	if err := r.Validate(1e-9); err != nil {
		t.Fatalf("rotated floorplan invalid: %v", err)
	}
	if !num.ExactEqual(r.DieW, f.DieH) || !num.ExactEqual(r.DieH, f.DieW) {
		t.Fatalf("die dims not swapped: %g x %g", r.DieW, r.DieH)
	}
	// Area preserved per unit.
	for _, u := range f.Units {
		ru, ok := r.Unit(u.Name)
		if !ok {
			t.Fatalf("unit %s lost in rotation", u.Name)
		}
		if math.Abs(ru.Area()-u.Area()) > 1e-15 {
			t.Fatalf("unit %s area changed", u.Name)
		}
	}
	// Four rotations restore the original.
	r4 := r.Rotate90().Rotate90().Rotate90()
	for i, u := range f.Units {
		b := r4.Units[i]
		if math.Abs(b.X-u.X) > 1e-12 || math.Abs(b.Y-u.Y) > 1e-12 ||
			math.Abs(b.W-u.W) > 1e-12 || math.Abs(b.H-u.H) > 1e-12 {
			t.Fatalf("four rotations moved unit %s", u.Name)
		}
	}
}

func TestScale(t *testing.T) {
	f := Alpha21364()
	s, err := f.Scale(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(1e-9); err != nil {
		t.Fatalf("scaled floorplan invalid: %v", err)
	}
	if math.Abs(s.DieW-3e-3) > 1e-12 {
		t.Fatalf("die width %g, want 3 mm", s.DieW)
	}
	if math.Abs(s.TotalUnitArea()-0.25*f.TotalUnitArea()) > 1e-15 {
		t.Fatal("area did not scale quadratically")
	}
	if _, err := f.Scale(0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestRenameUnit(t *testing.T) {
	f := Alpha21364()
	r, err := f.RenameUnit("IntReg", "IREG")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Unit("IntReg"); ok {
		t.Fatal("old name survived")
	}
	if _, ok := r.Unit("IREG"); !ok {
		t.Fatal("new name missing")
	}
	if _, err := f.RenameUnit("nosuch", "x"); err == nil {
		t.Fatal("missing unit accepted")
	}
	if _, err := f.RenameUnit("IntReg", "L2"); err == nil {
		t.Fatal("collision accepted")
	}
}

// Invariance: the optimizer's result must be unchanged under mirroring
// (physics has no preferred orientation). Checked at the tiling level:
// mirrored power maps must produce mirrored temperature fields.
func TestMirrorInvarianceOfTiling(t *testing.T) {
	f := Alpha21364()
	m := f.MirrorX()
	g, err := f.Tile(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := m.Tile(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	density := map[string]float64{"IntReg": 100, "L2": 10}
	p := g.DensityPerTile(f, density)
	pm := gm.DensityPerTile(m, density)
	for r := 0; r < 12; r++ {
		for c := 0; c < 12; c++ {
			if math.Abs(p[g.TileIndex(c, r)]-pm[gm.TileIndex(11-c, r)]) > 1e-15 {
				t.Fatalf("mirrored power map mismatch at (%d,%d)", c, r)
			}
		}
	}
}
