package floorplan

import (
	"fmt"
)

// Floorplan transforms: rotation, mirroring, scaling and unit renaming.
// Standard EDA bookkeeping — useful when adapting published floorplans
// (drawn in varying orientations) to the coordinate convention used
// here (row 0 at the bottom), and exercised by the generator tests as
// invariance checks (a rotated chip must optimize identically).

// MirrorX returns the floorplan mirrored about the vertical axis
// (left-right flip).
func (f *Floorplan) MirrorX() *Floorplan {
	out := New(f.Name+"-mx", f.DieW, f.DieH)
	for _, u := range f.Units {
		nu := Unit{Name: u.Name, Rect: Rect{
			X: f.DieW - u.X - u.W,
			Y: u.Y,
			W: u.W, H: u.H,
		}}
		if err := out.AddUnit(nu); err != nil {
			panic(err) // mirroring preserves validity by construction
		}
	}
	return out
}

// MirrorY returns the floorplan mirrored about the horizontal axis
// (top-bottom flip).
func (f *Floorplan) MirrorY() *Floorplan {
	out := New(f.Name+"-my", f.DieW, f.DieH)
	for _, u := range f.Units {
		nu := Unit{Name: u.Name, Rect: Rect{
			X: u.X,
			Y: f.DieH - u.Y - u.H,
			W: u.W, H: u.H,
		}}
		if err := out.AddUnit(nu); err != nil {
			panic(err)
		}
	}
	return out
}

// Rotate90 returns the floorplan rotated 90 degrees counter-clockwise;
// the die dimensions swap.
func (f *Floorplan) Rotate90() *Floorplan {
	out := New(f.Name+"-r90", f.DieH, f.DieW)
	for _, u := range f.Units {
		// CCW: (x, y) -> (-y, x); shift back into the first quadrant.
		nu := Unit{Name: u.Name, Rect: Rect{
			X: f.DieH - u.Y - u.H,
			Y: u.X,
			W: u.H, H: u.W,
		}}
		if err := out.AddUnit(nu); err != nil {
			panic(err)
		}
	}
	return out
}

// Scale returns the floorplan with all coordinates multiplied by s
// (e.g. a technology shrink). s must be positive.
func (f *Floorplan) Scale(s float64) (*Floorplan, error) {
	if s <= 0 {
		return nil, fmt.Errorf("floorplan: nonpositive scale %g", s)
	}
	out := New(f.Name+"-scaled", f.DieW*s, f.DieH*s)
	for _, u := range f.Units {
		nu := Unit{Name: u.Name, Rect: Rect{
			X: u.X * s, Y: u.Y * s, W: u.W * s, H: u.H * s,
		}}
		if err := out.AddUnit(nu); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RenameUnit returns a copy with one unit renamed; it fails if the old
// name is absent or the new name collides.
func (f *Floorplan) RenameUnit(oldName, newName string) (*Floorplan, error) {
	if _, ok := f.Unit(oldName); !ok {
		return nil, fmt.Errorf("floorplan: no unit %q", oldName)
	}
	if _, ok := f.Unit(newName); ok && oldName != newName {
		return nil, fmt.Errorf("floorplan: unit %q already exists", newName)
	}
	out := New(f.Name, f.DieW, f.DieH)
	for _, u := range f.Units {
		nu := u
		if u.Name == oldName {
			nu.Name = newName
		}
		if err := out.AddUnit(nu); err != nil {
			return nil, err
		}
	}
	return out, nil
}
