// Package floorplan models microprocessor floorplans: rectangular
// functional units tiling a silicon die, HotSpot-style .flp text
// serialization, and the dissection of the die into the equal-area tiles
// that the cooling-system optimizer works on (one tile per candidate TEC
// site, Section V Problem 1 of the paper).
package floorplan

import (
	"fmt"
	"math"
	"sort"
)

// Rect is an axis-aligned rectangle. X, Y locate the lower-left corner;
// all quantities are in meters.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the rectangle area in m^2.
func (r Rect) Area() float64 { return r.W * r.H }

// Contains reports whether the point (x, y) lies inside the rectangle
// (closed on the low edges, open on the high edges, so adjacent
// rectangles partition points uniquely).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Overlap returns the area of the intersection of r and s.
func (r Rect) Overlap(s Rect) float64 {
	w := math.Min(r.X+r.W, s.X+s.W) - math.Max(r.X, s.X)
	h := math.Min(r.Y+r.H, s.Y+s.H) - math.Max(r.Y, s.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Unit is a named functional unit occupying a rectangle of the die.
type Unit struct {
	Name string
	Rect
}

// Floorplan is a set of functional units tiling a rectangular die.
type Floorplan struct {
	Name   string
	DieW   float64 // die width (m)
	DieH   float64 // die height (m)
	Units  []Unit
	byName map[string]int
}

// New creates a floorplan with the given die dimensions.
func New(name string, dieW, dieH float64) *Floorplan {
	if dieW <= 0 || dieH <= 0 {
		panic(fmt.Sprintf("floorplan: nonpositive die %g x %g", dieW, dieH))
	}
	return &Floorplan{Name: name, DieW: dieW, DieH: dieH, byName: make(map[string]int)}
}

// AddUnit appends a unit. It returns an error for duplicate names or
// units extending beyond the die.
func (f *Floorplan) AddUnit(u Unit) error {
	if u.W <= 0 || u.H <= 0 {
		return fmt.Errorf("floorplan: unit %q has nonpositive size %g x %g", u.Name, u.W, u.H)
	}
	if _, dup := f.byName[u.Name]; dup {
		return fmt.Errorf("floorplan: duplicate unit %q", u.Name)
	}
	const eps = 1e-12
	if u.X < -eps || u.Y < -eps || u.X+u.W > f.DieW+eps || u.Y+u.H > f.DieH+eps {
		return fmt.Errorf("floorplan: unit %q [%g,%g,%g,%g] outside die %g x %g",
			u.Name, u.X, u.Y, u.W, u.H, f.DieW, f.DieH)
	}
	f.byName[u.Name] = len(f.Units)
	f.Units = append(f.Units, u)
	return nil
}

// Unit returns the unit with the given name.
func (f *Floorplan) Unit(name string) (Unit, bool) {
	i, ok := f.byName[name]
	if !ok {
		return Unit{}, false
	}
	return f.Units[i], true
}

// UnitNames returns the unit names in insertion order.
func (f *Floorplan) UnitNames() []string {
	names := make([]string, len(f.Units))
	for i, u := range f.Units {
		names[i] = u.Name
	}
	return names
}

// TotalUnitArea returns the summed area of all units.
func (f *Floorplan) TotalUnitArea() float64 {
	var a float64
	for _, u := range f.Units {
		a += u.Area()
	}
	return a
}

// Validate checks that the units exactly tile the die: total area matches
// and no pair of units overlaps. tol is a relative area tolerance.
func (f *Floorplan) Validate(tol float64) error {
	die := f.DieW * f.DieH
	if math.Abs(f.TotalUnitArea()-die) > tol*die {
		return fmt.Errorf("floorplan %s: unit area %.6g != die area %.6g", f.Name, f.TotalUnitArea(), die)
	}
	for i := range f.Units {
		for j := i + 1; j < len(f.Units); j++ {
			if ov := f.Units[i].Overlap(f.Units[j].Rect); ov > tol*die {
				return fmt.Errorf("floorplan %s: units %q and %q overlap by %.3g m^2",
					f.Name, f.Units[i].Name, f.Units[j].Name, ov)
			}
		}
	}
	return nil
}

// Grid is a dissection of the die into Cols x Rows equal tiles, mirroring
// the paper's "pxq tiles ... where each tile has the same area as a TEC
// device". Tile (c, r) spans [c*Pitch, (c+1)*PitchX) x [r*Pitch, ...),
// with tile index r*Cols + c (row-major, row 0 at the bottom).
type Grid struct {
	Cols, Rows     int
	PitchX, PitchY float64 // tile dimensions (m)
	// OwnerUnit[t] is the index into Floorplan.Units of the unit owning
	// the largest share of tile t (-1 if the tile is uncovered).
	OwnerUnit []int
}

// NumTiles returns Cols*Rows.
func (g *Grid) NumTiles() int { return g.Cols * g.Rows }

// TileIndex maps (col, row) to the flat tile index.
func (g *Grid) TileIndex(col, row int) int {
	if col < 0 || col >= g.Cols || row < 0 || row >= g.Rows {
		panic(fmt.Sprintf("floorplan: tile (%d,%d) out of %dx%d grid", col, row, g.Cols, g.Rows))
	}
	return row*g.Cols + col
}

// TileColRow is the inverse of TileIndex.
func (g *Grid) TileColRow(t int) (col, row int) {
	if t < 0 || t >= g.NumTiles() {
		panic(fmt.Sprintf("floorplan: tile %d out of range %d", t, g.NumTiles()))
	}
	return t % g.Cols, t / g.Cols
}

// TileRect returns the rectangle of tile t.
func (g *Grid) TileRect(t int) Rect {
	c, r := g.TileColRow(t)
	return Rect{X: float64(c) * g.PitchX, Y: float64(r) * g.PitchY, W: g.PitchX, H: g.PitchY}
}

// TileArea returns the area of one tile in m^2.
func (g *Grid) TileArea() float64 { return g.PitchX * g.PitchY }

// Tile dissects the floorplan into cols x rows tiles and assigns each
// tile to the unit with the greatest area overlap.
func (f *Floorplan) Tile(cols, rows int) (*Grid, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("floorplan: nonpositive grid %dx%d", cols, rows)
	}
	g := &Grid{
		Cols:   cols,
		Rows:   rows,
		PitchX: f.DieW / float64(cols),
		PitchY: f.DieH / float64(rows),
	}
	g.OwnerUnit = make([]int, g.NumTiles())
	for t := range g.OwnerUnit {
		tr := g.TileRect(t)
		best, bestOv := -1, 0.0
		for ui, u := range f.Units {
			if ov := tr.Overlap(u.Rect); ov > bestOv {
				best, bestOv = ui, ov
			}
		}
		g.OwnerUnit[t] = best
	}
	return g, nil
}

// TilesOfUnit returns (sorted) tile indices owned by the named unit.
func (g *Grid) TilesOfUnit(f *Floorplan, name string) []int {
	ui, ok := f.byName[name]
	if !ok {
		return nil
	}
	var tiles []int
	for t, owner := range g.OwnerUnit {
		if owner == ui {
			tiles = append(tiles, t)
		}
	}
	sort.Ints(tiles)
	return tiles
}

// PowerPerTile distributes per-unit total powers (W) uniformly over each
// unit's tiles and returns the per-tile power vector. Units absent from
// the map get zero power.
func (g *Grid) PowerPerTile(f *Floorplan, unitPower map[string]float64) []float64 {
	// Count tiles per unit first.
	count := make([]int, len(f.Units))
	for _, owner := range g.OwnerUnit {
		if owner >= 0 {
			count[owner]++
		}
	}
	p := make([]float64, g.NumTiles())
	for t, owner := range g.OwnerUnit {
		if owner < 0 {
			continue
		}
		u := f.Units[owner]
		if pw, ok := unitPower[u.Name]; ok && count[owner] > 0 {
			p[t] = pw / float64(count[owner])
		}
	}
	return p
}

// DensityPerTile converts per-unit power densities (W/m^2) into per-tile
// powers (W), assigning each tile its owner's density times the tile area.
func (g *Grid) DensityPerTile(f *Floorplan, unitDensity map[string]float64) []float64 {
	p := make([]float64, g.NumTiles())
	area := g.TileArea()
	for t, owner := range g.OwnerUnit {
		if owner < 0 {
			continue
		}
		if d, ok := unitDensity[f.Units[owner].Name]; ok {
			p[t] = d * area
		}
	}
	return p
}
