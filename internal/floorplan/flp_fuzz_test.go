package floorplan

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseFLP hardens the floorplan parser: it must either error or
// produce a floorplan whose units all lie within the inferred die, and
// whose serialization re-parses.
func FuzzParseFLP(f *testing.F) {
	f.Add("core\t0.5\t1.0\t0.0\t0.0\n")
	f.Add("# comment\na 1 1 0 0\nb 1 1 1 0\n")
	f.Add("")
	f.Add("x 0 0 0 0\n")
	f.Add("u -1 1 0 0\n")
	f.Add("dup 1 1 0 0\ndup 1 1 0 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		fp, err := ParseFLP("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		if len(fp.Units) == 0 {
			t.Fatal("accepted floorplan without units")
		}
		const eps = 1e-9
		for _, u := range fp.Units {
			if u.W <= 0 || u.H <= 0 {
				t.Fatalf("unit %q has nonpositive size", u.Name)
			}
			if u.X < -eps || u.Y < -eps || u.X+u.W > fp.DieW+eps || u.Y+u.H > fp.DieH+eps {
				t.Fatalf("unit %q outside inferred die", u.Name)
			}
		}
		var buf bytes.Buffer
		if err := WriteFLP(&buf, fp); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ParseFLP("fuzz2", &buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(back.Units) != len(fp.Units) {
			t.Fatal("round trip changed unit count")
		}
	})
}
