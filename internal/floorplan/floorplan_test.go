package floorplan

import (
	"math"
	"testing"

	"tecopt/internal/num"
)

func TestRectAreaOverlapContains(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 3, H: 4}
	if !num.ExactEqual(r.Area(), 12) {
		t.Errorf("Area = %v", r.Area())
	}
	if !r.Contains(1, 2) {
		t.Error("lower-left corner must be inside (closed low edge)")
	}
	if r.Contains(4, 2) {
		t.Error("right edge must be outside (open high edge)")
	}
	s := Rect{X: 2, Y: 3, W: 10, H: 10}
	if ov := r.Overlap(s); math.Abs(ov-2*3) > 1e-15 {
		t.Errorf("Overlap = %v, want 6", ov)
	}
	if ov := r.Overlap(Rect{X: 100, Y: 100, W: 1, H: 1}); !num.IsZero(ov) {
		t.Errorf("disjoint Overlap = %v", ov)
	}
}

func TestAddUnitValidation(t *testing.T) {
	f := New("t", 1, 1)
	if err := f.AddUnit(Unit{Name: "a", Rect: Rect{0, 0, 0.5, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddUnit(Unit{Name: "a", Rect: Rect{0.5, 0, 0.5, 1}}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := f.AddUnit(Unit{Name: "b", Rect: Rect{0.9, 0, 0.5, 1}}); err == nil {
		t.Error("unit outside die accepted")
	}
	if err := f.AddUnit(Unit{Name: "c", Rect: Rect{0, 0, 0, 1}}); err == nil {
		t.Error("zero-width unit accepted")
	}
}

func TestValidateCoverage(t *testing.T) {
	f := New("t", 1, 1)
	_ = f.AddUnit(Unit{Name: "a", Rect: Rect{0, 0, 0.5, 1}})
	if err := f.Validate(1e-9); err == nil {
		t.Error("half-covered die passed validation")
	}
	_ = f.AddUnit(Unit{Name: "b", Rect: Rect{0.5, 0, 0.5, 1}})
	if err := f.Validate(1e-9); err != nil {
		t.Errorf("full tiling failed validation: %v", err)
	}
}

func TestValidateOverlapDetected(t *testing.T) {
	f := New("t", 1, 1)
	_ = f.AddUnit(Unit{Name: "a", Rect: Rect{0, 0, 0.75, 1}})
	_ = f.AddUnit(Unit{Name: "b", Rect: Rect{0.25, 0, 0.75, 1}})
	// Total area is 1.5 -> area check fires; shrink to make area pass but
	// overlap remain would require a gap elsewhere, so just check error.
	if err := f.Validate(1e-9); err == nil {
		t.Error("overlapping floorplan passed validation")
	}
}

func TestUnitLookup(t *testing.T) {
	f := New("t", 1, 1)
	_ = f.AddUnit(Unit{Name: "core", Rect: Rect{0, 0, 1, 1}})
	u, ok := f.Unit("core")
	if !ok || u.Name != "core" {
		t.Fatal("Unit lookup failed")
	}
	if _, ok := f.Unit("nope"); ok {
		t.Fatal("missing unit reported found")
	}
	names := f.UnitNames()
	if len(names) != 1 || names[0] != "core" {
		t.Fatalf("UnitNames = %v", names)
	}
}

func TestTileIndexRoundTrip(t *testing.T) {
	f := New("t", 1, 1)
	_ = f.AddUnit(Unit{Name: "a", Rect: Rect{0, 0, 1, 1}})
	g, err := f.Tile(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < g.NumTiles(); tt++ {
		c, r := g.TileColRow(tt)
		if g.TileIndex(c, r) != tt {
			t.Fatalf("round trip failed for tile %d", tt)
		}
	}
	if g.NumTiles() != 12 {
		t.Fatalf("NumTiles = %d", g.NumTiles())
	}
	if math.Abs(g.TileArea()-(0.25/3)) > 1e-15 {
		t.Fatalf("TileArea = %v", g.TileArea())
	}
}

func TestTileOwnership(t *testing.T) {
	f := New("t", 1, 1)
	_ = f.AddUnit(Unit{Name: "left", Rect: Rect{0, 0, 0.5, 1}})
	_ = f.AddUnit(Unit{Name: "right", Rect: Rect{0.5, 0, 0.5, 1}})
	g, _ := f.Tile(4, 2)
	leftTiles := g.TilesOfUnit(f, "left")
	rightTiles := g.TilesOfUnit(f, "right")
	if len(leftTiles) != 4 || len(rightTiles) != 4 {
		t.Fatalf("tile counts: left=%v right=%v", leftTiles, rightTiles)
	}
	for _, tt := range leftTiles {
		c, _ := g.TileColRow(tt)
		if c > 1 {
			t.Errorf("left unit owns right-half tile %d", tt)
		}
	}
	if g.TilesOfUnit(f, "missing") != nil {
		t.Error("missing unit returned tiles")
	}
}

func TestPowerPerTile(t *testing.T) {
	f := New("t", 1, 1)
	_ = f.AddUnit(Unit{Name: "left", Rect: Rect{0, 0, 0.5, 1}})
	_ = f.AddUnit(Unit{Name: "right", Rect: Rect{0.5, 0, 0.5, 1}})
	g, _ := f.Tile(2, 2)
	p := g.PowerPerTile(f, map[string]float64{"left": 4})
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-4) > 1e-12 {
		t.Fatalf("power not conserved: sum = %v", sum)
	}
	// Left tiles get 2 W each, right tiles 0.
	if !num.ExactEqual(p[g.TileIndex(0, 0)], 2) || !num.IsZero(p[g.TileIndex(1, 0)]) {
		t.Fatalf("power distribution wrong: %v", p)
	}
}

func TestDensityPerTile(t *testing.T) {
	f := New("t", 1e-3, 1e-3)
	_ = f.AddUnit(Unit{Name: "u", Rect: Rect{0, 0, 1e-3, 1e-3}})
	g, _ := f.Tile(2, 2)
	p := g.DensityPerTile(f, map[string]float64{"u": 1e4}) // 1 W/cm^2
	want := 1e4 * g.TileArea()
	for _, v := range p {
		if math.Abs(v-want) > 1e-18 {
			t.Fatalf("DensityPerTile = %v, want %v each", p, want)
		}
	}
}

func TestTileBadGrid(t *testing.T) {
	f := New("t", 1, 1)
	if _, err := f.Tile(0, 3); err == nil {
		t.Error("zero cols accepted")
	}
}

func TestAlpha21364Exact(t *testing.T) {
	f := Alpha21364()
	if err := f.Validate(1e-9); err != nil {
		t.Fatalf("Alpha floorplan invalid: %v", err)
	}
	if math.Abs(f.DieW-6e-3) > 1e-12 || math.Abs(f.DieH-6e-3) > 1e-12 {
		t.Fatalf("die = %g x %g, want 6mm x 6mm", f.DieW, f.DieH)
	}
	if len(f.Units) != 20 {
		t.Fatalf("unit count = %d, want 20", len(f.Units))
	}
}

func TestAlpha21364GridHotUnitStats(t *testing.T) {
	f, g := Alpha21364Grid()
	if g.NumTiles() != 144 {
		t.Fatalf("tiles = %d, want 144 (12x12)", g.NumTiles())
	}
	// Every tile must be owned.
	for tt, owner := range g.OwnerUnit {
		if owner < 0 {
			t.Fatalf("tile %d unowned", tt)
		}
	}
	// The paper: hot units occupy ~10.4% of the area. Our grid-exact
	// layout gives 18/144 = 12.5%; assert the intended range.
	hot := 0
	for _, name := range AlphaHotUnits {
		n := len(g.TilesOfUnit(f, name))
		if n == 0 {
			t.Errorf("hot unit %s owns no tiles", name)
		}
		hot += n
	}
	frac := float64(hot) / 144
	if frac < 0.08 || frac > 0.15 {
		t.Fatalf("hot unit area fraction = %.3f, want ~0.10-0.13", frac)
	}
	// IntReg must be 4 tiles (1 mm^2) per the calibrated power model.
	if n := len(g.TilesOfUnit(f, "IntReg")); n != 4 {
		t.Fatalf("IntReg tiles = %d, want 4", n)
	}
}
