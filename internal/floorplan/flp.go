package floorplan

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// HotSpot-style .flp serialization.
//
// Each non-comment line reads:
//
//	<unit-name> <width> <height> <left-x> <bottom-y>
//
// in meters, matching the format consumed by HotSpot 4.1 (which the paper
// uses for validation). Lines starting with '#' and blank lines are
// ignored. Die dimensions are inferred as the bounding box of the units.

// ParseFLP reads a floorplan in .flp format.
func ParseFLP(name string, r io.Reader) (*Floorplan, error) {
	type row struct {
		name       string
		w, h, x, y float64
	}
	var rows []row
	var maxX, maxY float64
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("floorplan: %s:%d: want 5 fields, have %d", name, lineNo, len(fields))
		}
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("floorplan: %s:%d: bad number %q: %v", name, lineNo, fields[i+1], err)
			}
			vals[i] = v
		}
		rw := row{name: fields[0], w: vals[0], h: vals[1], x: vals[2], y: vals[3]}
		if rw.w <= 0 || rw.h <= 0 {
			return nil, fmt.Errorf("floorplan: %s:%d: unit %q has nonpositive size %g x %g", name, lineNo, rw.name, rw.w, rw.h)
		}
		if rw.x < 0 || rw.y < 0 {
			return nil, fmt.Errorf("floorplan: %s:%d: unit %q has negative origin (%g, %g)", name, lineNo, rw.name, rw.x, rw.y)
		}
		rows = append(rows, rw)
		maxX = math.Max(maxX, rw.x+rw.w)
		maxY = math.Max(maxY, rw.y+rw.h)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("floorplan: reading %s: %v", name, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("floorplan: %s: no units", name)
	}
	f := New(name, maxX, maxY)
	for _, rw := range rows {
		if err := f.AddUnit(Unit{Name: rw.name, Rect: Rect{X: rw.x, Y: rw.y, W: rw.w, H: rw.h}}); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// WriteFLP writes the floorplan in .flp format. Units appear in
// insertion order.
func WriteFLP(w io.Writer, f *Floorplan) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# floorplan %s: die %g x %g m\n", f.Name, f.DieW, f.DieH)
	fmt.Fprintf(bw, "# <unit-name> <width> <height> <left-x> <bottom-y>\n")
	for _, u := range f.Units {
		fmt.Fprintf(bw, "%s\t%.9g\t%.9g\t%.9g\t%.9g\n", u.Name, u.W, u.H, u.X, u.Y)
	}
	return bw.Flush()
}

// AsciiMap renders the grid's unit ownership as an ASCII art map with one
// letter per tile (row 0 printed last so the map is oriented like Figure
// 7), plus a legend. Tiles in marked get uppercase '#'-style emphasis by
// being wrapped in brackets when wide is true; more simply, marked tiles
// are drawn as '#'.
func AsciiMap(f *Floorplan, g *Grid, marked map[int]bool) string {
	letters := "abcdefghijklmnopqrstuvwxyz0123456789"
	var b strings.Builder
	for row := g.Rows - 1; row >= 0; row-- {
		for col := 0; col < g.Cols; col++ {
			t := g.TileIndex(col, row)
			if marked[t] {
				b.WriteByte('#')
				continue
			}
			owner := g.OwnerUnit[t]
			if owner < 0 || owner >= len(letters) {
				b.WriteByte('.')
			} else {
				b.WriteByte(letters[owner])
			}
		}
		b.WriteByte('\n')
	}
	// Legend, insertion order.
	b.WriteString("legend:")
	for i, u := range f.Units {
		if i < len(letters) {
			fmt.Fprintf(&b, " %c=%s", letters[i], u.Name)
		}
	}
	if len(marked) > 0 {
		b.WriteString(" #=TEC")
	}
	b.WriteByte('\n')
	return b.String()
}

// SortedTiles returns the keys of a tile set in ascending order.
func SortedTiles(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for t, on := range set {
		if on {
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}
