package floorplan

import (
	"bytes"
	"strings"
	"testing"

	"tecopt/internal/num"
)

func TestWriteParseRoundTrip(t *testing.T) {
	f := Alpha21364()
	var buf bytes.Buffer
	if err := WriteFLP(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFLP("alpha21364", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Units) != len(f.Units) {
		t.Fatalf("unit count %d != %d", len(back.Units), len(f.Units))
	}
	near := func(a, b float64) bool { d := a - b; return d < 1e-12 && d > -1e-12 }
	for i, u := range f.Units {
		b := back.Units[i]
		if b.Name != u.Name || !near(b.X, u.X) || !near(b.Y, u.Y) || !near(b.W, u.W) || !near(b.H, u.H) {
			t.Fatalf("unit %d mismatch: %+v vs %+v", i, b, u)
		}
	}
	if err := back.Validate(1e-9); err != nil {
		t.Fatalf("round-tripped floorplan invalid: %v", err)
	}
}

func TestParseFLPCommentsAndBlank(t *testing.T) {
	src := `# a comment

core	0.5	1.0	0.0	0.0
io	0.5	1.0	0.5	0.0
`
	f, err := ParseFLP("test", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Units) != 2 {
		t.Fatalf("units = %d, want 2", len(f.Units))
	}
	if !num.ExactEqual(f.DieW, 1.0) || !num.ExactEqual(f.DieH, 1.0) {
		t.Fatalf("die inferred as %g x %g, want 1 x 1", f.DieW, f.DieH)
	}
}

func TestParseFLPErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "core 0.5 1.0 0.0\n",
		"bad number":     "core 0.5 1.0 zero 0.0\n",
		"empty":          "# nothing\n",
		"duplicate":      "a 1 1 0 0\na 1 1 0 0\n",
	}
	for name, src := range cases {
		if _, err := ParseFLP("t", strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAsciiMap(t *testing.T) {
	f, g := Alpha21364Grid()
	m := AsciiMap(f, g, map[int]bool{g.TileIndex(4, 8): true})
	lines := strings.Split(strings.TrimRight(m, "\n"), "\n")
	if len(lines) != 13 { // 12 rows + legend
		t.Fatalf("map lines = %d, want 13", len(lines))
	}
	for i := 0; i < 12; i++ {
		if len(lines[i]) != 12 {
			t.Fatalf("row %d width = %d, want 12", i, len(lines[i]))
		}
	}
	if !strings.Contains(m, "#") {
		t.Error("marked tile not rendered")
	}
	if !strings.Contains(lines[12], "IntReg") {
		t.Error("legend missing unit name")
	}
	// Row 8 is printed at line index 12-1-8 = 3; col 4 is '#'.
	if lines[3][4] != '#' {
		t.Errorf("marked tile not at expected position; line %q", lines[3])
	}
}

func TestSortedTiles(t *testing.T) {
	got := SortedTiles(map[int]bool{5: true, 1: true, 3: false, 2: true})
	want := []int{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("SortedTiles = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedTiles = %v, want %v", got, want)
		}
	}
}
