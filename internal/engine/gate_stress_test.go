package engine

import (
	"context"
	"sync"
	"testing"
	"time"
)

// Gate shutdown stress, run under -race by `make serve-chaos`: Drain
// seizes worker slots while releases, queued waiters, and abandoning
// (timed-out) acquirers are all still in motion. The race detector
// watches the atomics/channel interplay; the assertions pin the
// contract — Drain completes once traffic stops, and the counters
// return to zero.

// TestGateDrainAcquireStress hammers Acquire/release from many
// goroutines, cuts traffic off, then drains: the drain must complete
// and leave no inflight or queued callers behind.
func TestGateDrainAcquireStress(t *testing.T) {
	g := NewGate("stress.gate", 4, 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				rel, err := g.Acquire(ctx)
				cancel()
				if err == nil {
					rel()
				}
			}
		}()
	}
	time.Sleep(25 * time.Millisecond)
	close(stop)
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Drain(ctx); err != nil {
		t.Fatalf("drain after traffic stopped: %v", err)
	}
	if n := g.Inflight(); n != 0 {
		t.Errorf("inflight = %d after drain, want 0", n)
	}
	if n := g.Queued(); n != 0 {
		t.Errorf("queued = %d after drain, want 0", n)
	}
}

// TestGateDrainContention overlaps Drain with live holders releasing
// and queued waiters abandoning on their own deadlines: Drain competes
// for slots with the waiters and must still finish once every holder
// releases and every waiter times out.
func TestGateDrainContention(t *testing.T) {
	g := NewGate("stress.gate.contention", 2, 4)

	// Occupy both slots.
	holders := make([]func(), 0, 2)
	for i := 0; i < 2; i++ {
		rel, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatalf("initial acquire %d: %v", i, err)
		}
		holders = append(holders, rel)
	}

	// Queue waiters that will abandon on their own short deadlines.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			if rel, err := g.Acquire(ctx); err == nil {
				rel()
			}
		}()
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- g.Drain(ctx)
	}()

	// Release the holders while the drain and the waiters race for the
	// freed slots.
	for _, rel := range holders {
		go rel()
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain with contention: %v", err)
	}
	wg.Wait()
	if n := g.Inflight(); n != 0 {
		t.Errorf("inflight = %d after drain, want 0", n)
	}
}
