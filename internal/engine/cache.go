package engine

import (
	"container/list"
	"sync"

	"tecopt/internal/thermal"
)

// Key identifies one cached factorization: the generation of the system
// that owns the matrix pattern and values, and the supply current i of
// G - i*D. Currents compare bit-exactly — the optimizer re-evaluates
// the very same float64 (golden-section endpoints, the final PeakAt of
// OptimizeCurrent, the Hkl-then-PeakAt pairs of the Figure 6 sweep), so
// exact matching is both correct and sufficient; nearby-but-different
// currents are different operating points and must not alias.
type Key struct {
	Gen     uint64
	Current float64
}

// FactorCache is a bounded, concurrency-safe LRU cache of banded
// Cholesky factorizations. A failed factorization (not positive
// definite, i.e. at or beyond the runaway limit) is cached too: the
// matrix for a given key is deterministic, so the binary search's
// repeated probes of an infeasible current need not refactor to refail.
//
// Concurrent requests for the same key are deduplicated: one goroutine
// builds, the rest block on the entry's sync.Once and share the result.
// FactorCache must not be copied after first use.
type FactorCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; elements hold *entry
	items map[Key]*list.Element

	hits, misses uint64
}

// entry is one cache slot. val and err are written exactly once, inside
// once; readers always go through once.Do so the happens-before edge is
// the Once itself, not the cache lock.
type entry struct {
	key  Key
	once sync.Once
	val  *thermal.Factorization
	err  error
}

// DefaultCacheCapacity bounds the process-wide factorization cache. A
// 12x12-tile default package factors to a few hundred kilobytes, so 32
// entries keep the working set of one optimization (endpoints, the
// current golden-section bracket, the sweep grid) resident for a few
// megabytes.
const DefaultCacheCapacity = 32

// NewFactorCache creates a cache holding at most capacity
// factorizations (capacity <= 0 selects DefaultCacheCapacity).
func NewFactorCache(capacity int) *FactorCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &FactorCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[Key]*list.Element, capacity),
	}
}

// Do returns the factorization for k, building it with build on the
// first request. The build runs outside the cache lock, so a slow
// factorization never blocks hits on other keys; concurrent callers of
// the same key share one build.
func (c *FactorCache) Do(k Key, build func() (*thermal.Factorization, error)) (*thermal.Factorization, error) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*entry)
		c.mu.Unlock()
		e.once.Do(func() { e.val, e.err = build() }) // waits if mid-build
		return e.val, e.err
	}
	e := &entry{key: k}
	el := c.ll.PushFront(e)
	c.items[k] = el
	c.misses++
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
	}
	c.mu.Unlock()

	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// Len reports the number of resident entries.
func (c *FactorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hit and miss counts.
func (c *FactorCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops every entry and zeroes the counters (test hook).
func (c *FactorCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[Key]*list.Element, c.cap)
	c.hits, c.misses = 0, 0
}
