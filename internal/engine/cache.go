package engine

import (
	"container/list"
	"context"
	"strconv"
	"strings"
	"sync"

	"tecopt/internal/num"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
	"tecopt/internal/thermal"
)

// Key identifies one cached value: the generation of the system that
// owns the matrix pattern and values, and the supply current i of
// G - i*D. Currents compare bit-exactly — the optimizer re-evaluates
// the very same float64 (golden-section endpoints, the final PeakAt of
// OptimizeCurrent, the Hkl-then-PeakAt pairs of the Figure 6 sweep), so
// exact matching is both correct and sufficient; nearby-but-different
// currents are different operating points and must not alias. Do
// rejects non-finite currents up front: NaN is never equal to itself as
// a map key, so a NaN entry could only grow the LRU with dead weight.
type Key struct {
	Gen     uint64
	Current float64
}

// KeyedCache is a bounded, concurrency-safe LRU generic over both the
// key and the cached value. It is the machinery beneath Cache (keyed by
// the solver's (generation, current) Key) and beneath the serving
// layer's content-hash-keyed system cache, where the key is a string. A
// failed build is cached too: the value for a given key is
// deterministic, so repeated requests for an infeasible input need not
// rebuild to refail.
//
// Concurrent requests for the same key are deduplicated: one goroutine
// builds, the rest block on the entry's sync.Once and share the result.
// A KeyedCache must not be copied after first use.
type KeyedCache[K comparable, V any] struct {
	metric string // metrics namespace, e.g. "engine.factor_cache"
	// flight renders a key as its flight-recorder event value and
	// attributes; nil suppresses the hit/miss events.
	flight func(K) (float64, []obs.Attr)

	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; elements hold *entry[K, V]
	items map[K]*list.Element

	hits, misses, evictions uint64
}

// Cache is the solver-side LRU keyed by Key — banded Cholesky
// factorizations for the per-current direct path, whole ReusableSystem
// fast-path states for the SMW path. It is a KeyedCache plus the
// Key-specific contract: Do/DoCtx reject non-finite currents with a
// tecerr.CodeInvalidInput error before touching the cache.
type Cache[V any] struct {
	KeyedCache[Key, V]
}

// FactorCache is the cache of banded Cholesky factorizations behind the
// per-current direct solve path.
type FactorCache = Cache[*thermal.Factorization]

// CacheStats is a consistent view of the cache counters, taken under
// the cache lock so hits/misses/evictions belong to one instant.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Len       int    `json:"len"`
}

// entry is one cache slot. val and err are written exactly once, inside
// once; readers always go through once.Do so the happens-before edge is
// the Once itself, not the cache lock.
type entry[K comparable, V any] struct {
	key  K
	once sync.Once
	val  V
	err  error
}

// DefaultCacheCapacity bounds the process-wide factorization cache. A
// 12x12-tile default package factors to a few hundred kilobytes, so 32
// entries keep the working set of one optimization (endpoints, the
// current golden-section bracket, the sweep grid) resident for a few
// megabytes.
const DefaultCacheCapacity = 32

// init sets up the embedded machinery. A name with no dot is scoped
// under "engine." (the historical metric names); a dotted name is used
// verbatim, so other layers (tecserve) can cache under their own
// namespace.
func (c *KeyedCache[K, V]) init(name string, capacity int) {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	c.metric = name
	if !strings.Contains(name, ".") {
		c.metric = "engine." + name
	}
	c.cap = capacity
	c.ll = list.New()
	c.items = make(map[K]*list.Element, capacity)
}

// NewKeyedCache creates a cache holding at most capacity values
// (capacity <= 0 selects DefaultCacheCapacity). A dotted name is the
// metric namespace verbatim; an undotted one reports under
// "engine.<name>.*".
func NewKeyedCache[K comparable, V any](name string, capacity int) *KeyedCache[K, V] {
	c := &KeyedCache[K, V]{}
	c.init(name, capacity)
	return c
}

// NewCache creates a Key-addressed cache holding at most capacity
// values (capacity <= 0 selects DefaultCacheCapacity). name scopes the
// metric names to "engine.<name>.*".
func NewCache[V any](name string, capacity int) *Cache[V] {
	c := &Cache[V]{}
	c.init(name, capacity)
	c.flight = cacheFlight
	return c
}

// NewFactorCache creates a factorization cache holding at most capacity
// entries (capacity <= 0 selects DefaultCacheCapacity), reporting under
// "engine.factor_cache.*".
func NewFactorCache(capacity int) *FactorCache {
	return NewCache[*thermal.Factorization]("factor_cache", capacity)
}

// Do returns the value for k, building it with build on the first
// request. The build runs outside the cache lock, so a slow build never
// blocks hits on other keys; concurrent callers of the same key share
// one build. A non-finite current is rejected with a
// tecerr.CodeInvalidInput error before touching the cache. When
// observability is enabled the cache reports hits/misses/evictions and
// the build latency under its metric namespace.
func (c *Cache[V]) Do(k Key, build func() (V, error)) (V, error) {
	return c.DoCtx(context.Background(), k, build)
}

// DoCtx is Do linked into the flight recorder: when hierarchical
// tracing is on, every lookup emits a ".hit" or ".miss" event parented
// to the context span, carrying the cache generation and current as
// attributes — so a solve's trace records whether its factorization was
// resident. With the recorder off it is exactly Do (the events are
// suppressed to keep flat traces byte-compatible).
func (c *Cache[V]) DoCtx(ctx context.Context, k Key, build func() (V, error)) (V, error) {
	if !num.IsFinite(k.Current) {
		var zero V
		return zero, tecerr.Newf(tecerr.CodeInvalidInput, "engine.cache",
			"engine: non-finite current %g in cache key", k.Current)
	}
	return c.KeyedCache.DoCtx(ctx, k, build)
}

// Do is DoCtx without a flight-recorder context.
func (c *KeyedCache[K, V]) Do(k K, build func() (V, error)) (V, error) {
	return c.DoCtx(context.Background(), k, build)
}

// DoCtx returns the value for k, building it with build on the first
// request; see Cache.DoCtx for the caching and observability contract.
func (c *KeyedCache[K, V]) DoCtx(ctx context.Context, k K, build func() (V, error)) (V, error) {
	r := obs.Enabled()
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*entry[K, V])
		c.mu.Unlock()
		if r != nil {
			r.Counter(c.metric + ".hits").Inc()
			if r.FlightOn() && c.flight != nil {
				v, attrs := c.flight(k)
				r.EventCtx(ctx, c.metric+".hit", v, attrs...)
			}
		}
		e.once.Do(func() { e.val, e.err = build() }) // waits if mid-build
		return e.val, e.err
	}
	e := &entry[K, V]{key: k}
	el := c.ll.PushFront(e)
	c.items[k] = el
	c.misses++
	var evicted uint64
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
		c.evictions++
		evicted++
	}
	resident := c.ll.Len()
	c.mu.Unlock()

	if r != nil {
		r.Counter(c.metric + ".misses").Inc()
		if r.FlightOn() && c.flight != nil {
			v, attrs := c.flight(k)
			r.EventCtx(ctx, c.metric+".miss", v, attrs...)
		}
		if evicted > 0 {
			r.Counter(c.metric + ".evictions").Add(evicted)
		}
		r.Gauge(c.metric + ".len").Set(int64(resident))
		start := r.Now()
		e.once.Do(func() { e.val, e.err = build() })
		r.Histogram(c.metric + ".build_ns").Observe(clampNS(r.Now() - start))
		return e.val, e.err
	}
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// Len reports the number of resident entries.
func (c *KeyedCache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports the cumulative hit/miss/eviction counters and the
// resident entry count. Safe to call concurrently with Do.
func (c *KeyedCache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.ll.Len()}
}

// ResetStats zeroes the counters while keeping every resident entry —
// the benchmark hook for measuring one phase of a longer run. Safe to
// call concurrently with Do; in-flight operations are attributed to
// whichever side of the reset their counter increment lands on.
func (c *KeyedCache[K, V]) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// Reset drops every entry and zeroes the counters (test hook).
func (c *KeyedCache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[K]*list.Element, c.cap)
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// PublishStats copies the current counters into registry r as
// "<metric>.{hits,misses,evictions,len}" so a snapshot taken at exit
// reflects the cache even if parts of the run executed before
// observability was enabled. Callers register it as a snapshot hook:
// obs.RegisterSnapshotHook(cache.PublishStats).
func (c *KeyedCache[K, V]) PublishStats(r *obs.Registry) {
	if r == nil {
		return
	}
	st := c.Stats()
	// Counters are monotonic: top them up to the locked-in totals
	// rather than double-adding.
	topUp(r.Counter(c.metric+".hits"), st.Hits)
	topUp(r.Counter(c.metric+".misses"), st.Misses)
	topUp(r.Counter(c.metric+".evictions"), st.Evictions)
	r.Gauge(c.metric + ".len").Set(int64(st.Len))
}

// cacheFlight renders a solver cache key as its flight-recorder event
// value (the current) and attributes.
func cacheFlight(k Key) (float64, []obs.Attr) {
	return k.Current, []obs.Attr{
		{Key: "gen", Value: strconv.FormatUint(k.Gen, 10)},
		{Key: "current", Value: strconv.FormatFloat(k.Current, 'g', -1, 64)},
	}
}

// topUp raises counter c to at least total.
func topUp(c *obs.Counter, total uint64) {
	if cur := c.Value(); total > cur {
		c.Add(total - cur)
	}
}
