package engine

import (
	"sync/atomic"
	"testing"

	"tecopt/internal/thermal"
)

// BenchmarkEngine_Map measures pool dispatch overhead against the bare
// serial loop on trivially cheap work items — the floor any real
// speedup has to clear.
func BenchmarkEngine_Map(b *testing.B) {
	const n = 256
	var sink atomic.Int64
	work := func(i int) error {
		sink.Add(int64(i))
		return nil
	}
	for _, bm := range []struct {
		name string
		pool Pool
	}{{"serial", Serial}, {"parallel", Pool{}}} {
		b.Run(bm.name, func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				if err := bm.pool.Map(n, work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngine_CacheDo compares a cache hit against rebuilding the
// factorization on every call.
func BenchmarkEngine_CacheDo(b *testing.B) {
	build := func() (*thermal.Factorization, error) {
		return thermal.Factor(tinySPD(64, 0.1), nil)
	}
	b.Run("miss", func(b *testing.B) {
		c := NewFactorCache(4)
		for n := 0; n < b.N; n++ {
			c.Reset()
			if _, err := c.Do(Key{Gen: 1, Current: 1}, build); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		c := NewFactorCache(4)
		if _, err := c.Do(Key{Gen: 1, Current: 1}, build); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := c.Do(Key{Gen: 1, Current: 1}, build); err != nil {
				b.Fatal(err)
			}
		}
	})
}
