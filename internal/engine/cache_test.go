package engine

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"tecopt/internal/sparse"
	"tecopt/internal/tecerr"
	"tecopt/internal/thermal"
)

// tinySPD builds a small tridiagonal SPD matrix (a 1-D conduction
// chain with ground legs) for factorization tests.
func tinySPD(n int, diagBoost float64) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2+diagBoost)
		if i+1 < n {
			b.Add(i, i+1, -1)
			b.Add(i+1, i, -1)
		}
	}
	return b.Build()
}

func factorTiny(t *testing.T, diagBoost float64) func() (*thermal.Factorization, error) {
	t.Helper()
	return func() (*thermal.Factorization, error) {
		return thermal.Factor(tinySPD(8, diagBoost), nil)
	}
}

func TestCacheHitReturnsSameFactorization(t *testing.T) {
	c := NewFactorCache(4)
	k := Key{Gen: 1, Current: 2.5}
	f1, err := c.Do(k, factorTiny(t, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := c.Do(k, func() (*thermal.Factorization, error) {
		t.Fatal("second Do rebuilt a cached key")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("cache returned a different factorization for the same key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %d hits %d misses, want 1/1", st.Hits, st.Misses)
	}
}

func TestCacheKeysAreExact(t *testing.T) {
	c := NewFactorCache(8)
	var builds atomic.Int64
	build := func() (*thermal.Factorization, error) {
		builds.Add(1)
		return thermal.Factor(tinySPD(8, 0.1), nil)
	}
	// Different generation, same current: distinct entries.
	if _, err := c.Do(Key{Gen: 1, Current: 1}, build); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(Key{Gen: 2, Current: 1}, build); err != nil {
		t.Fatal(err)
	}
	// Same generation, nearby-but-different current: distinct entry.
	if _, err := c.Do(Key{Gen: 1, Current: 1 + 1e-15}, build); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 3 {
		t.Fatalf("%d builds, want 3 (no key aliasing)", got)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewFactorCache(2)
	var builds atomic.Int64
	build := func() (*thermal.Factorization, error) {
		builds.Add(1)
		return thermal.Factor(tinySPD(8, 0.1), nil)
	}
	a, b, d := Key{Gen: 1, Current: 1}, Key{Gen: 1, Current: 2}, Key{Gen: 1, Current: 3}
	c.Do(a, build)
	c.Do(b, build)
	c.Do(a, build) // refresh a: b is now least recently used
	c.Do(d, build) // evicts b
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	c.Do(a, build) // still resident
	c.Do(b, build) // evicted: rebuild
	if got := builds.Load(); got != 4 {
		t.Fatalf("%d builds, want 4 (a, b, d, then b again)", got)
	}
}

func TestCacheCachesFailures(t *testing.T) {
	c := NewFactorCache(4)
	var builds atomic.Int64
	notPD := func() (*thermal.Factorization, error) {
		builds.Add(1)
		// Indefinite: the chain Laplacian with a large negative shift.
		return thermal.Factor(tinySPD(8, -10), nil)
	}
	k := Key{Gen: 7, Current: math.Pi}
	if _, err := c.Do(k, notPD); err == nil {
		t.Fatal("expected a not-PD error")
	}
	if _, err := c.Do(k, notPD); err == nil {
		t.Fatal("expected the cached not-PD error")
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("%d builds, want 1 (failures are cached too)", got)
	}
}

func TestCacheConcurrentSameKeyBuildsOnce(t *testing.T) {
	c := NewFactorCache(4)
	var builds atomic.Int64
	k := Key{Gen: 3, Current: 6.5}
	const goroutines = 16
	results := make([]*thermal.Factorization, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f, err := c.Do(k, func() (*thermal.Factorization, error) {
				builds.Add(1)
				return thermal.Factor(tinySPD(64, 0.1), nil)
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = f
		}(g)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("%d builds for one key under contention, want 1", got)
	}
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatal("goroutines saw different factorizations for one key")
		}
	}
}

func TestCacheEvictionCount(t *testing.T) {
	c := NewFactorCache(2)
	build := factorBoost(0.1)
	for i := 0; i < 5; i++ {
		if _, err := c.Do(Key{Gen: 1, Current: float64(i)}, build); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Misses != 5 || st.Evictions != 3 || st.Len != 2 {
		t.Fatalf("stats = %+v, want 5 misses, 3 evictions, len 2", st)
	}
}

func TestCacheResetStatsKeepsEntries(t *testing.T) {
	c := NewFactorCache(4)
	build := factorBoost(0.1)
	k := Key{Gen: 9, Current: 1.5}
	if _, err := c.Do(k, build); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 {
		t.Fatalf("counters after ResetStats = %+v, want zeros", st)
	}
	if st.Len != 1 {
		t.Fatalf("ResetStats dropped entries: len = %d, want 1", st.Len)
	}
	// The entry must still hit without rebuilding.
	if _, err := c.Do(k, func() (*thermal.Factorization, error) {
		t.Fatal("ResetStats invalidated a resident entry")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("hits after post-reset access = %d, want 1", st.Hits)
	}
}

// TestCacheStatsRaceWithConcurrentDo exercises Stats and ResetStats
// while Do traffic is in flight — the -race gate for the stats API the
// obs snapshot reads (see ISSUE satellite: safe Stats/ResetStats under
// concurrent Factor calls).
func TestCacheStatsRaceWithConcurrentDo(t *testing.T) {
	c := NewFactorCache(4)
	var workers sync.WaitGroup
	for g := 0; g < 6; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < 60; i++ {
				k := Key{Gen: uint64((g + i) % 5), Current: float64(i % 9)}
				if _, err := c.Do(k, factorBoost(0.1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st := c.Stats()
			if st.Len > 4 {
				t.Errorf("resident entries %d exceed capacity", st.Len)
				return
			}
			if i%10 == 0 {
				c.ResetStats()
			}
		}
	}()
	workers.Wait()
	close(stop)
	<-readerDone
	// Final coherence: counters are non-decreasing between reads.
	a := c.Stats()
	b := c.Stats()
	if b.Hits < a.Hits || b.Misses < a.Misses || b.Evictions < a.Evictions {
		t.Fatalf("counters went backwards: %+v then %+v", a, b)
	}
}

// A NaN current can never be found again (NaN != NaN as a map key), so
// the cache must reject non-finite keys at the boundary with a typed
// invalid-input error instead of leaking one unreachable entry per call.
func TestCacheRejectsNonFiniteCurrent(t *testing.T) {
	c := NewFactorCache(4)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		f, err := c.Do(Key{Gen: 1, Current: bad}, func() (*thermal.Factorization, error) {
			t.Fatalf("build ran for non-finite current %v", bad)
			return nil, nil
		})
		if f != nil {
			t.Fatalf("current %v returned a factorization alongside the error", bad)
		}
		if !errors.Is(err, tecerr.ErrInvalidInput) {
			t.Fatalf("current %v: err = %v, want CodeInvalidInput", bad, err)
		}
	}
	st := c.Stats()
	if st.Len != 0 || st.Misses != 0 {
		t.Fatalf("rejected keys touched the cache: %+v", st)
	}
}

// factorBoost returns a build function for a small SPD chain with the
// given diagonal boost.
func factorBoost(diagBoost float64) func() (*thermal.Factorization, error) {
	return func() (*thermal.Factorization, error) {
		return thermal.Factor(tinySPD(8, diagBoost), nil)
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	// Hammer the cache with more keys than capacity from many
	// goroutines; under -race this is the cache's core safety test.
	c := NewFactorCache(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := Key{Gen: uint64(i % 10), Current: float64(i % 7)}
				f, err := c.Do(k, func() (*thermal.Factorization, error) {
					return thermal.Factor(tinySPD(8, 0.1), nil)
				})
				if err != nil {
					t.Error(err)
					return
				}
				// Solves on a shared factorization must be safe.
				x, err := f.Solve([]float64{1, 0, 0, 0, 0, 0, 0, 1})
				if err != nil {
					t.Error(err)
					return
				}
				if len(x) != 8 {
					t.Errorf("solve length %d", len(x))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 4 {
		t.Fatalf("cache grew to %d entries, cap is 4", c.Len())
	}
}
