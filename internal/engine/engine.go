// Package engine is the parallel solve-execution layer of the
// reproduction: a bounded worker pool for embarrassingly parallel index
// spaces (Table I chips, Conjecture-1 trials, current-grid sweeps,
// H-column solves) plus an LRU cache of banded-Cholesky factorizations
// keyed by (system generation, supply current), so that repeated
// Factor(i) calls at the same operating point — golden-section endpoint
// re-evaluation, h_kl sweeps followed by peak solves, greedy-deploy
// re-solves — reuse one factorization instead of rebuilding G - i*D
// from scratch.
//
// Everything is stdlib-only (sync, sync/atomic, container/list). The
// pool guarantees deterministic results: work items are identified by
// index, callers write into index-addressed slices, and the error
// reported for a failed run is always the one at the lowest index, so
// output is byte-identical to the serial loop at any worker count.
package engine

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"tecopt/internal/faults"
	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

// Pool is a bounded worker pool. The zero value runs with
// runtime.GOMAXPROCS(0) workers; Workers == 1 is the pure-serial
// fallback (a plain loop on the calling goroutine, no goroutines
// spawned).
type Pool struct {
	// Workers caps concurrency. <= 0 means GOMAXPROCS; 1 runs serially.
	Workers int
}

// Serial is the explicit serial-execution pool.
var Serial = Pool{Workers: 1}

// workers resolves the effective worker count.
func (p Pool) workers() int {
	if p.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Workers
}

// Map runs fn(i) for every i in [0, n), with at most p.Workers calls in
// flight at once. fn must write its result into caller-owned storage at
// index i; Map itself imposes no ordering on completion, which is why
// results must be index-addressed.
//
// Error contract: if any fn returns a non-nil error, Map returns the
// error with the lowest index, matching what the serial loop would have
// reported first (task errors are returned as-is, never wrapped).
// Workers stop claiming new indices once an error is observed, but
// indices below the failing one are always evaluated, so the winning
// error is deterministic.
//
// Panic contract: a panicking task cannot crash or deadlock the
// process. The panic is recovered, its goroutine stack captured, and it
// enters the error contract above as a tecerr.CodePanic error at the
// panicking index (match with errors.Is(err, tecerr.ErrPanic)).
func (p Pool) Map(n int, fn func(i int) error) error {
	return p.MapCtx(context.Background(), n, fn)
}

// MapCtx is Map with cancellation: workers stop claiming new indices
// once ctx is done, and MapCtx returns a tecerr.CodeCancelled error
// wrapping ctx.Err(). Cancellation is checked between tasks, so an
// in-flight fn always runs to completion; fn implementations that want
// finer granularity must watch ctx themselves. When cancellation and a
// task failure race, the task's lowest-index error wins if any task
// completed with one; the deterministic-winner guarantee otherwise
// applies only to uncancelled runs (cancellation legitimately skips
// indices below a would-be failure).
func (p Pool) MapCtx(ctx context.Context, n int, fn func(i int) error) error {
	return p.MapTasksCtx(ctx, n, func(_ context.Context, i int) error { return fn(i) })
}

// MapTasksCtx is MapCtx for context-aware tasks: each fn call receives
// a task-scoped context derived from ctx. It is the flight-recorder
// entry point of the pool — when hierarchical tracing is on, each
// worker goroutine gets its own track (1..W; the serial path inherits
// the caller's track) and each task runs inside an "engine.pool.task"
// span parented to the surrounding "engine.pool.map" span, so callers
// that start spans inside fn with the task context get correct
// parent links and worker attribution. With the recorder off, the task
// context is ctx itself (plus the obs wrapper) and the trace output is
// unchanged from MapCtx.
func (p Pool) MapTasksCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return tecerr.Cancelled("engine.pool", err)
	}
	r := obs.Enabled()
	if r != nil {
		// Wrap fn so every task reports its queue wait (Map entry to
		// task start) and run time, and the queue-depth gauge tracks
		// unclaimed work. The wrapper is installed only when a registry
		// exists: the disabled path costs one atomic load + nil check.
		var sp obs.Span
		ctx, sp = r.StartSpanCtx(ctx, "engine.pool.map")
		defer sp.End()
		r.Counter("engine.pool.maps").Inc()
		r.Counter("engine.pool.tasks").Add(uint64(n))
		mapStart := r.Now()
		flight := r.FlightOn()
		inner := fn
		fn = func(tctx context.Context, i int) error {
			start := r.Now()
			r.Gauge("engine.pool.queue_depth").Set(int64(n - 1 - i))
			r.Histogram("engine.pool.wait_ns").Observe(clampNS(start - mapStart))
			if flight {
				// The per-task span exists only in flight mode so flat
				// JSONL traces and metric snapshots stay byte-identical
				// to the pre-flight format.
				var tsp obs.Span
				tctx, tsp = r.StartSpanCtx(tctx, "engine.pool.task")
				tsp.AnnotateInt("index", int64(i))
				defer tsp.End()
			}
			err := inner(tctx, i)
			r.Histogram("engine.pool.task_ns").Observe(clampNS(r.Now() - start))
			return err
		}
	}
	w := p.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return tecerr.Cancelled("engine.pool", err)
			}
			if err := runTask(ctx, fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		wctx := ctx
		if r.FlightOn() {
			// Each worker is one track: spans recorded inside its tasks
			// render as one lane per worker in the Perfetto view.
			wctx = obs.ContextWithTrack(ctx, int64(k+1))
		}
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || cancelled.Load() {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runTask(wctx, fn, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// Indices are claimed in ascending order, so every index below a
	// failed one has been evaluated: the first non-nil error here is
	// exactly the serial loop's first error.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if cancelled.Load() {
		return tecerr.Cancelled("engine.pool", context.Cause(ctx))
	}
	return nil
}

// runTask executes one task with panic isolation: a panic inside fn is
// recovered and converted to a tecerr.CodePanic error carrying the
// goroutine stack, so it flows through Map's normal error contract
// instead of unwinding a worker (which would kill the process and, by
// taking wg.Done with it on a non-main goroutine, could never be
// recovered by the caller). The faults hook lets chaos tests inject
// exactly such panics.
func runTask(ctx context.Context, fn func(context.Context, int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = tecerr.FromPanic("engine.pool", v, debug.Stack())
		}
	}()
	if err := faults.Check(faults.SitePoolTask); err != nil {
		return err
	}
	return fn(ctx, i)
}

// clampNS converts a clock difference to a histogram value, flooring
// negative diffs (possible only with a misbehaving injected clock) at
// zero.
func clampNS(d int64) uint64 {
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// generation is the process-wide system-generation counter; see
// NextGeneration.
var generation atomic.Uint64

// NextGeneration returns a fresh, process-unique generation number.
// Every assembled core.System takes one at construction, and the
// factorization cache keys on it: a deployment change means a new
// System, hence a new generation, hence no stale cache hits — the old
// generation's entries simply age out of the LRU.
func NextGeneration() uint64 {
	return generation.Add(1)
}
