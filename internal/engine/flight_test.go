package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"tecopt/internal/obs"
)

// TestMapTasksCtxFlightHierarchy drives the pool with the flight
// recorder on from many workers (run it under -race): nested spans and
// events from every task must link back to recorded parents, task
// spans must land on worker tracks 1..W, and the Perfetto export must
// be valid JSON with one named thread row per track.
func TestMapTasksCtxFlightHierarchy(t *testing.T) {
	const workers, tasks = 8, 64
	r := obs.New(&obs.ManualClock{})
	r.EnableTraceOpts(obs.TraceOptions{Flight: true})
	prev := obs.SetGlobal(r)
	defer obs.SetGlobal(prev)

	err := Pool{Workers: workers}.MapTasksCtx(context.Background(), tasks,
		func(tctx context.Context, i int) error {
			ictx, inner := r.StartSpanCtx(tctx, "task.inner")
			inner.AnnotateInt("i", int64(i))
			r.EventCtx(ictx, "task.note", float64(i))
			_, leaf := r.StartSpanCtx(ictx, "task.leaf")
			leaf.End()
			inner.End()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	ids := map[uint64]string{} // span id -> name
	type rec struct {
		ev   obs.TraceEvent
		line string
	}
	var records []rec
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev obs.TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line: %v\n%s", err, line)
		}
		records = append(records, rec{ev, line})
		if ev.Kind == "span" {
			if ev.ID == 0 {
				t.Fatalf("flight span without ID: %s", line)
			}
			ids[ev.ID] = ev.Name
		}
	}

	counts := map[string]int{}
	for _, rc := range records {
		ev := rc.ev
		counts[ev.Name]++
		// Every parent link must resolve to a recorded span.
		if ev.Parent != 0 {
			if _, ok := ids[ev.Parent]; !ok {
				t.Errorf("%s: parent %d not recorded", rc.line, ev.Parent)
			}
		}
		switch ev.Name {
		case "engine.pool.task":
			if ev.Track < 1 || ev.Track > workers {
				t.Errorf("task span on track %d, want 1..%d", ev.Track, workers)
			}
			if ids[ev.Parent] != "engine.pool.map" {
				t.Errorf("task span parent = %q, want engine.pool.map", ids[ev.Parent])
			}
		case "task.inner":
			if ids[ev.Parent] != "engine.pool.task" {
				t.Errorf("inner span parent = %q, want engine.pool.task", ids[ev.Parent])
			}
		case "task.leaf":
			if ids[ev.Parent] != "task.inner" {
				t.Errorf("leaf span parent = %q, want task.inner", ids[ev.Parent])
			}
		case "task.note":
			if ids[ev.Parent] != "task.inner" {
				t.Errorf("note event parent = %q, want task.inner", ids[ev.Parent])
			}
		}
	}
	for _, name := range []string{"engine.pool.task", "task.inner", "task.leaf", "task.note"} {
		if counts[name] != tasks {
			t.Errorf("%s count = %d, want %d", name, counts[name], tasks)
		}
	}
	if counts["engine.pool.map"] != 1 {
		t.Errorf("map span count = %d, want 1", counts["engine.pool.map"])
	}

	// Perfetto export: valid JSON, one named thread row per track.
	var pbuf strings.Builder
	if err := r.WriteTracePerfetto(&pbuf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TID   int64          `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(pbuf.String()), &doc); err != nil {
		t.Fatalf("perfetto export not valid JSON: %v", err)
	}
	threadNames := map[int64]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			if _, dup := threadNames[ev.TID]; dup {
				t.Errorf("duplicate thread_name for tid %d", ev.TID)
			}
			threadNames[ev.TID], _ = ev.Args["name"].(string)
		}
	}
	if threadNames[0] != "main" {
		t.Errorf("tid 0 = %q, want main", threadNames[0])
	}
	// Worker tracks appear only if a worker claimed at least one task;
	// with 64 tasks across 8 workers every observed track must be named.
	tracks := map[int64]bool{}
	for _, rc := range records {
		tracks[rc.ev.Track] = true
	}
	for tr := range tracks {
		want := "main"
		if tr != 0 {
			want = fmt.Sprintf("worker %02d", tr)
		}
		if threadNames[tr] != want {
			t.Errorf("track %d thread name = %q, want %q", tr, threadNames[tr], want)
		}
	}
}

// TestMapTasksCtxSerialInheritsTrack checks the serial path records
// tasks on the caller's track instead of minting worker lanes.
func TestMapTasksCtxSerialInheritsTrack(t *testing.T) {
	r := obs.New(&obs.ManualClock{})
	r.EnableTraceOpts(obs.TraceOptions{Flight: true})
	prev := obs.SetGlobal(r)
	defer obs.SetGlobal(prev)

	ctx := obs.ContextWithTrack(context.Background(), 7)
	err := Serial.MapTasksCtx(ctx, 3, func(tctx context.Context, i int) error {
		if got := obs.TrackFromContext(tctx); got != 7 {
			t.Errorf("serial task track = %d, want 7", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev obs.TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Track != 7 {
			t.Errorf("serial %s span on track %d, want 7", ev.Name, ev.Track)
		}
	}
}
