package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"tecopt/internal/tecerr"
)

// TestMapTasksCtxNoGoroutineLeakOnCancel is the server's per-request
// cancellation guard: a pool map cancelled mid-flight must not strand
// worker goroutines. A long-running service calls MapTasksCtx once per
// request; a single leaked worker per cancelled request would grow
// without bound. The test parks tasks on a channel, cancels the map,
// releases the tasks, and requires the goroutine count to return to
// its pre-map baseline.
func TestMapTasksCtxNoGoroutineLeakOnCancel(t *testing.T) {
	const tasks, workers = 64, 8
	baseline := stableGoroutines(t)

	for round := 0; round < 4; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		release := make(chan struct{})
		var started atomic.Int64
		done := make(chan error, 1)
		go func() {
			done <- Pool{Workers: workers}.MapTasksCtx(ctx, tasks, func(tctx context.Context, i int) error {
				started.Add(1)
				<-release // park: the map cannot finish until released
				return nil
			})
		}()

		// Wait until every worker is parked inside a task, then cancel:
		// this is mid-flight cancellation, not pre-start.
		for i := 0; started.Load() < workers && i < 5000; i++ {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
		close(release)

		err := <-done
		if !errors.Is(err, tecerr.ErrCancelled) {
			t.Fatalf("round %d: MapTasksCtx = %v, want CodeCancelled", round, err)
		}
	}

	// Workers must unwind completely: the count returns to baseline
	// (with slack for runtime housekeeping goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, now)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// stableGoroutines samples the goroutine count after letting any
// stragglers from other tests unwind.
func stableGoroutines(t *testing.T) int {
	t.Helper()
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(2 * time.Millisecond)
		now := runtime.NumGoroutine()
		if now == prev {
			return now
		}
		prev = now
	}
	return prev
}
