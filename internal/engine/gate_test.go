package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"tecopt/internal/tecerr"
)

// TestGateAdmitsUpToWorkers checks the concurrency bound: W slots
// admit immediately, the W+1st waits, and beyond the queue cap the
// gate sheds with CodeOverload.
func TestGateAdmitsUpToWorkers(t *testing.T) {
	g := NewGate("test.gate", 2, 1)
	ctx := context.Background()

	rel1, err := g.Acquire(ctx)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	rel2, err := g.Acquire(ctx)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := g.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}

	// Third caller queues (cap 1). Run it in a goroutine; it must be
	// granted once a slot frees.
	granted := make(chan error, 1)
	go func() {
		rel, err := g.Acquire(ctx)
		if err == nil {
			defer rel()
		}
		granted <- err
	}()
	// Wait for it to be queued so the fourth caller overflows.
	for i := 0; g.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.Queued() != 1 {
		t.Fatalf("queued = %d, want 1", g.Queued())
	}

	// Fourth caller: queue full, shed immediately.
	if _, err := g.Acquire(ctx); !errors.Is(err, tecerr.ErrOverload) {
		t.Fatalf("overflow acquire error = %v, want CodeOverload", err)
	}

	rel1()
	if err := <-granted; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	rel2()
}

// TestGateAcquireCancelledWhileQueued checks that a caller abandoned
// by its context while waiting gets a CodeCancelled error and frees
// its queue slot.
func TestGateAcquireCancelledWhileQueued(t *testing.T) {
	g := NewGate("test.gate", 1, 4)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		done <- err
	}()
	for i := 0; g.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, tecerr.ErrCancelled) {
		t.Fatalf("cancelled acquire error = %v, want CodeCancelled", err)
	}
	if g.Queued() != 0 {
		t.Fatalf("queued = %d after abandonment, want 0", g.Queued())
	}
}

// TestGateDrain checks the shutdown path: Drain returns once every
// in-flight holder releases, and reports CodeCancelled when the drain
// deadline expires with work still running.
func TestGateDrain(t *testing.T) {
	g := NewGate("test.gate", 3, 0)
	var rels []func()
	for i := 0; i < 3; i++ {
		rel, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rels = append(rels, rel)
	}

	// Deadline expires first: drain must fail cancelled.
	expired, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := g.Drain(expired); !errors.Is(err, tecerr.ErrCancelled) {
		t.Fatalf("drain with work in flight = %v, want CodeCancelled", err)
	}

	// Release everything concurrently; drain must complete.
	var wg sync.WaitGroup
	for _, rel := range rels {
		wg.Add(1)
		go func(rel func()) { defer wg.Done(); rel() }(rel)
	}
	drained := make(chan error, 1)
	go func() { drained <- g.Drain(context.Background()) }()
	wg.Wait()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not complete after all releases")
	}
	if g.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain, want 0", g.Inflight())
	}
}

// TestGateConcurrentLoad hammers the gate from many goroutines under
// the race detector: the concurrency bound must never be exceeded and
// every admit must be released.
func TestGateConcurrentLoad(t *testing.T) {
	const workers, queue, callers = 4, 8, 64
	g := NewGate("test.gate", workers, queue)
	var peak atomic64Max
	var admitted sync.WaitGroup
	admitted.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer admitted.Done()
			rel, err := g.Acquire(context.Background())
			if err != nil {
				if !errors.Is(err, tecerr.ErrOverload) {
					t.Errorf("unexpected acquire error: %v", err)
				}
				return
			}
			peak.observe(int64(g.Inflight()))
			time.Sleep(time.Millisecond)
			rel()
		}()
	}
	admitted.Wait()
	if p := peak.load(); p > workers {
		t.Fatalf("observed %d concurrent holders, bound is %d", p, workers)
	}
	if err := g.Drain(context.Background()); err != nil {
		t.Fatalf("drain after load: %v", err)
	}
}

// atomic64Max tracks a maximum across goroutines.
type atomic64Max struct {
	mu sync.Mutex
	v  int64
}

func (m *atomic64Max) observe(v int64) {
	m.mu.Lock()
	if v > m.v {
		m.v = v
	}
	m.mu.Unlock()
}

func (m *atomic64Max) load() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.v
}
