package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"tecopt/internal/tecerr"
)

func TestMapRecoversTaskPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var ran atomic.Int64
			err := Pool{Workers: workers}.Map(32, func(i int) error {
				if i == 5 {
					panic("kaboom")
				}
				ran.Add(1)
				return nil
			})
			if err == nil {
				t.Fatal("panicking task returned nil error")
			}
			if !errors.Is(err, tecerr.ErrPanic) {
				t.Fatalf("err = %v, want tecerr.ErrPanic match", err)
			}
			var te *tecerr.Error
			if !errors.As(err, &te) {
				t.Fatalf("err %T is not *tecerr.Error", err)
			}
			if len(te.Stack) == 0 {
				t.Error("recovered panic carries no stack")
			}
			if !strings.Contains(te.Error(), "kaboom") {
				t.Errorf("panic value lost from message %q", te.Error())
			}
		})
	}
}

func TestMapPanicKeepsLowestIndexErrorContract(t *testing.T) {
	// A panic at index 3 and a plain error at index 7: the panic error
	// wins at every worker count, exactly like a plain error at 3 would.
	for _, workers := range []int{1, 2, 8} {
		err := Pool{Workers: workers}.Map(16, func(i int) error {
			switch i {
			case 3:
				panic("first failure")
			case 7:
				return errors.New("later failure")
			}
			return nil
		})
		if !errors.Is(err, tecerr.ErrPanic) {
			t.Fatalf("workers=%d: err = %v, want the index-3 panic", workers, err)
		}
	}
}

func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Pool{Workers: 4}.MapCtx(ctx, 8, func(i int) error {
		t.Error("task ran under a pre-cancelled context")
		return nil
	})
	if !errors.Is(err, tecerr.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want cancelled", err)
	}
}

func TestMapCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var ran atomic.Int64
			err := Pool{Workers: workers}.MapCtx(ctx, 1000, func(i int) error {
				if ran.Add(1) == 10 {
					cancel()
				}
				return nil
			})
			if !errors.Is(err, tecerr.ErrCancelled) {
				t.Fatalf("err = %v, want cancelled", err)
			}
			if n := ran.Load(); n >= 1000 {
				t.Errorf("all %d tasks ran despite mid-run cancellation", n)
			}
		})
	}
}

func TestMapCtxNilErrorOnCompletion(t *testing.T) {
	// A context cancelled only after every index is claimed must not
	// turn a fully successful run into an error.
	err := Pool{Workers: 2}.MapCtx(context.Background(), 64, func(i int) error { return nil })
	if err != nil {
		t.Fatalf("MapCtx = %v", err)
	}
}
