package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolMapComputesEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		p := Pool{Workers: workers}
		n := 101
		out := make([]int, n)
		if err := p.Map(n, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestPoolMapEmpty(t *testing.T) {
	called := false
	if err := (Pool{}).Map(0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n = 0")
	}
}

func TestPoolMapLowestIndexError(t *testing.T) {
	// Several indices fail; the reported error must always be the one
	// the serial loop would hit first, at any worker count.
	fail := map[int]bool{5: true, 17: true, 60: true}
	for _, workers := range []int{1, 2, 8} {
		err := Pool{Workers: workers}.Map(100, func(i int) error {
			if fail[i] {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 5" {
			t.Fatalf("workers=%d: err = %v, want boom at 5", workers, err)
		}
	}
}

func TestPoolMapStopsClaimingAfterError(t *testing.T) {
	// After an early failure the pool should not chew through the whole
	// index space. With one worker the loop must stop immediately.
	var calls atomic.Int64
	err := Serial.Map(1000, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("serial pool made %d calls after failing at index 3, want 4", got)
	}
}

func TestPoolMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	err := Pool{Workers: workers}.Map(200, func(i int) error {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		runtime.Gosched()
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, cap is %d", p, workers)
	}
}

func TestPoolSerialSpawnsNoGoroutines(t *testing.T) {
	// Workers == 1 must run on the calling goroutine (the documented
	// pure-serial fallback): fn can prove it by writing to a variable
	// without synchronization under -race.
	sum := 0
	if err := Serial.Map(50, func(i int) error {
		sum += i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 49*50/2 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestNextGenerationUnique(t *testing.T) {
	const goroutines, per = 8, 100
	seen := make([]uint64, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[g*per+i] = NextGeneration()
			}
		}(g)
	}
	wg.Wait()
	uniq := make(map[uint64]bool, len(seen))
	for _, v := range seen {
		if v == 0 {
			t.Fatal("generation 0 issued; 0 is reserved for 'unset'")
		}
		if uniq[v] {
			t.Fatalf("generation %d issued twice", v)
		}
		uniq[v] = true
	}
}
