package engine

import (
	"context"
	"sync/atomic"

	"tecopt/internal/obs"
	"tecopt/internal/tecerr"
)

// Gate is a two-stage admission controller for a long-running service:
// at most Workers acquisitions run concurrently, at most Queue callers
// wait for a slot, and everything beyond that is shed immediately with
// a tecerr.CodeOverload error. Shedding at admission is the
// backpressure contract — a bounded queue converts overload into fast
// 429s instead of an ever-growing backlog of requests whose clients
// have long since given up.
//
// A Gate publishes its load under "<name>.*" when observability is on:
// admitted/shed/abandoned counters, inflight and queue_depth gauges,
// and a queue_wait_ns histogram (time from arrival to slot grant).
type Gate struct {
	metric string
	slots  chan struct{}
	queue  int64

	queued   atomic.Int64 // callers waiting for a slot
	inflight atomic.Int64 // callers holding a slot
}

// NewGate builds a gate with the given concurrency and queue bounds.
// workers <= 0 selects 1; queue < 0 selects 0 (admit only when a slot
// is immediately free). name is the metric namespace (e.g.
// "tecserve.gate").
func NewGate(name string, workers, queue int) *Gate {
	if workers <= 0 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Gate{
		metric: name,
		slots:  make(chan struct{}, workers),
		queue:  int64(queue),
	}
}

// Workers returns the concurrency bound.
func (g *Gate) Workers() int { return cap(g.slots) }

// QueueCap returns the waiting bound.
func (g *Gate) QueueCap() int { return int(g.queue) }

// Inflight returns the number of callers currently holding a slot.
func (g *Gate) Inflight() int { return int(g.inflight.Load()) }

// Queued returns the number of callers currently waiting for a slot.
func (g *Gate) Queued() int { return int(g.queued.Load()) }

// Acquire admits the caller: it waits (bounded by the queue cap) for a
// worker slot and returns a release func that MUST be called exactly
// once when the work finishes. It fails fast with a
// tecerr.CodeOverload error when the queue is full, and with a
// tecerr.CodeCancelled error when ctx expires while waiting — the
// caller never runs in either case.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	r := obs.Enabled()
	// Fast path: a free slot admits without queueing.
	select {
	case g.slots <- struct{}{}:
		g.granted(r, 0, 0)
		return g.releaseFunc(r), nil
	default:
	}
	if q := g.queued.Add(1); q > g.queue {
		g.queued.Add(-1)
		if r != nil {
			r.Counter(g.metric + ".shed").Inc()
		}
		return nil, tecerr.Newf(tecerr.CodeOverload, "engine.gate",
			"engine: admission queue full (%d running, %d waiting)", cap(g.slots), g.queue)
	}
	var start int64
	if r != nil {
		start = r.Now()
		r.Gauge(g.metric + ".queue_depth").Set(g.queued.Load())
	}
	select {
	case g.slots <- struct{}{}:
		g.queued.Add(-1)
		g.granted(r, start, 1)
		return g.releaseFunc(r), nil
	case <-ctx.Done():
		g.queued.Add(-1)
		if r != nil {
			r.Counter(g.metric + ".abandoned").Inc()
			r.Gauge(g.metric + ".queue_depth").Set(g.queued.Load())
		}
		return nil, tecerr.Cancelled("engine.gate", context.Cause(ctx))
	}
}

// granted records a slot grant. queuedPath is 1 when the caller waited.
func (g *Gate) granted(r *obs.Registry, start int64, queuedPath int64) {
	g.inflight.Add(1)
	if r == nil {
		return
	}
	r.Counter(g.metric + ".admitted").Inc()
	r.Gauge(g.metric + ".inflight").Set(g.inflight.Load())
	r.Gauge(g.metric + ".queue_depth").Set(g.queued.Load())
	if queuedPath == 1 {
		r.Histogram(g.metric + ".queue_wait_ns").Observe(clampNS(r.Now() - start))
	} else {
		r.Histogram(g.metric + ".queue_wait_ns").Observe(0)
	}
}

// releaseFunc builds the slot-returning closure handed to an admitted
// caller.
func (g *Gate) releaseFunc(r *obs.Registry) func() {
	return func() {
		g.inflight.Add(-1)
		<-g.slots
		if r != nil {
			r.Gauge(g.metric + ".inflight").Set(g.inflight.Load())
		}
	}
}

// Drain waits until no caller holds a slot, or ctx expires (returning
// a tecerr.CodeCancelled error). It works by acquiring every worker
// slot, so it must only be called once new Acquire traffic has been
// cut off upstream (a draining server rejects before the gate);
// concurrent Acquire calls racing a Drain would be starved, not
// failed. The gate is unusable after a successful Drain — it is the
// last act of a shutting-down server.
func (g *Gate) Drain(ctx context.Context) error {
	for i := 0; i < cap(g.slots); i++ {
		select {
		case g.slots <- struct{}{}:
		case <-ctx.Done():
			return tecerr.Wrapf(tecerr.CodeCancelled, "engine.gate", context.Cause(ctx),
				"engine: drain abandoned with %d request(s) still in flight", g.Inflight())
		}
	}
	return nil
}
