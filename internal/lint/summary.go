package lint

// summary.go is the bottom-up function-summary layer on top of the
// call graph (callgraph.go). The loader harvests a FuncSummary for
// every function of every module package it type-checks — imports
// included, callee-SCCs first — so the interprocedural analyzers
// (dimflow, nanflow, goroleak, cachegen) can ask about callees outside
// the unit under analysis without re-reading their source.
//
// A summary records four fact families, one per analyzer:
//
//   - Params/Results: the physical dimension of each parameter and
//     result, inferred from the unit naming conventions (limitK,
//     currentA, condWperK, Seebeck, theta...) and, for unnamed
//     results, from the dimensions of the returned expressions —
//     the bottom-up half of dimflow.
//   - CanNaN: whether a floating-point result can be NaN/±Inf — it
//     derives from math.Sqrt/Log/NaN/Inf (or a CanNaN callee) and the
//     body never guards it with IsNaN/IsInf/IsFinite. Division is
//     deliberately not a source (every solver line divides; the rule
//     targets the provably-poisonous producers).
//   - NeverTerminates: the body's CFG cannot reach its exit block
//     (for {} with no break, select {}), the fact goroleak checks for
//     spawned functions.
//   - MutatesCacheKeyed/BumpsGeneration: whether the function writes
//     fields of a generation-keyed type (one whose generation field is
//     somewhere assigned from NextGeneration()) and whether it bumps
//     such a generation itself — the cachegen contract.
//   - Concurrency effects (concsummary.go): per-parameter channel
//     operations, WaitGroup deltas, may-block, and cancellation
//     observation — the facts behind chanflow, wgbalance, mutexblock,
//     and spawnctx.
//
// Summaries are computed once per type-checked package, keyed by
// object identity (*types.Func), and are safe to read concurrently
// once loading finishes (cmd/teclint analyzes units in parallel).

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Dim is a physical dimension: integer exponents over the base
// quantities kelvin (temperature), watt (power), and ampere (current).
// Everything the paper's model manipulates is expressible in them:
// volts are W/A, ohms W/A^2, a Seebeck coefficient V/K = W/(A*K), a
// thermal conductance W/K, Peltier heat S*T*I = W. The zero Dim is
// dimensionless (a pure number), which is distinct from "unknown" —
// DimInfo carries the Known flag.
type Dim struct {
	K, W, A int8
}

// Mul returns the dimension of a product.
func (d Dim) Mul(e Dim) Dim { return Dim{d.K + e.K, d.W + e.W, d.A + e.A} }

// Div returns the dimension of a quotient.
func (d Dim) Div(e Dim) Dim { return Dim{d.K - e.K, d.W - e.W, d.A - e.A} }

// IsDimensionless reports whether d is the pure-number dimension.
func (d Dim) IsDimensionless() bool { return d == Dim{} }

// String renders the dimension for diagnostics: "K", "W/K",
// "W/(A*K)", "A^2", "1" for dimensionless.
func (d Dim) String() string {
	var num, den []string
	part := func(sym string, exp int8) {
		switch {
		case exp == 1:
			num = append(num, sym)
		case exp > 1:
			num = append(num, fmt.Sprintf("%s^%d", sym, exp))
		case exp == -1:
			den = append(den, sym)
		case exp < -1:
			den = append(den, fmt.Sprintf("%s^%d", sym, -exp))
		}
	}
	part("W", d.W)
	part("A", d.A)
	part("K", d.K)
	switch {
	case len(num) == 0 && len(den) == 0:
		return "1"
	case len(den) == 0:
		return strings.Join(num, "*")
	case len(num) == 0:
		if len(den) == 1 {
			return "1/" + den[0]
		}
		return "1/(" + strings.Join(den, "*") + ")"
	case len(den) == 1:
		return strings.Join(num, "*") + "/" + den[0]
	default:
		return strings.Join(num, "*") + "/(" + strings.Join(den, "*") + ")"
	}
}

// DimInfo is a possibly-unknown dimension.
type DimInfo struct {
	Dim   Dim
	Known bool
}

// unitTokens maps the single-suffix vocabulary (the same convention
// unitsanity keys kelvin slots off) to dimensions. Compound suffixes
// are formed with "per": WperK is W/K, VperK is W/(A*K).
var unitTokens = map[string]Dim{
	"K":   {K: 1},
	"W":   {W: 1},
	"A":   {A: 1},
	"V":   {W: 1, A: -1},
	"Ohm": {W: 1, A: -2},
}

// semanticNames maps physics vocabulary that appears without a unit
// suffix in this repository. Matched case-insensitively; prefix
// entries end in '*'.
var semanticNames = []struct {
	pattern string
	dim     Dim
}{
	{"seebeck", Dim{W: 1, A: -1, K: -1}}, // V/K
	{"resistance", Dim{W: 1, A: -2}},     // ohm
	{"kappa", Dim{W: 1, K: -1}},          // W/K
	{"conductance", Dim{W: 1, K: -1}},    // W/K
	{"current*", Dim{A: 1}},              // supply/zone currents
	{"theta*", Dim{K: 1}},                // temperature fields
	{"tilepower", Dim{W: 1}},             // per-tile silicon power
	{"powerdensity", Dim{W: 1}},          // treated as W per fixed tile
}

// NameDim infers the physical dimension a declared name carries, or
// Known=false when the name says nothing. Precedence: compound
// "XperY" suffix, then a single unit-token suffix (requiring a
// non-empty stem ending in a lowercase letter or digit, so `W` the
// rectangle-width field or `DVector` never match), then the semantic
// vocabulary.
func NameDim(name string) DimInfo {
	if d, ok := compoundSuffixDim(name); ok {
		return DimInfo{Dim: d, Known: true}
	}
	if d, ok := tokenSuffixDim(name); ok {
		return DimInfo{Dim: d, Known: true}
	}
	lower := strings.ToLower(name)
	for _, s := range semanticNames {
		if pat, isPrefix := strings.CutSuffix(s.pattern, "*"); isPrefix {
			if strings.HasPrefix(lower, pat) {
				return DimInfo{Dim: s.dim, Known: true}
			}
		} else if lower == pat {
			return DimInfo{Dim: s.dim, Known: true}
		}
	}
	return DimInfo{}
}

// compoundSuffixDim matches "...XperY" suffixes: condWperK -> W/K,
// seebeckVperK -> W/(A*K), invKperW -> K/W. The whole name may be the
// compound (WperK).
func compoundSuffixDim(name string) (Dim, bool) {
	best := ""
	var bestDim Dim
	for x, dx := range unitTokens {
		for y, dy := range unitTokens {
			suffix := x + "per" + y
			if !strings.HasSuffix(name, suffix) || len(suffix) < len(best) {
				continue
			}
			stem := name[:len(name)-len(suffix)]
			if stem != "" && !lowerOrDigit(stem[len(stem)-1]) {
				continue
			}
			best, bestDim = suffix, dx.Div(dy)
		}
	}
	return bestDim, best != ""
}

// tokenSuffixDim matches single unit-token suffixes with a non-empty
// stem: limitK, tilePowerW, maxBracketCurrentA, rOhm, dropV.
func tokenSuffixDim(name string) (Dim, bool) {
	best := ""
	var bestDim Dim
	for tok, d := range unitTokens {
		if !strings.HasSuffix(name, tok) || len(tok) < len(best) {
			continue
		}
		stem := name[:len(name)-len(tok)]
		if stem == "" || !lowerOrDigit(stem[len(stem)-1]) {
			continue
		}
		best, bestDim = tok, d
	}
	return bestDim, best != ""
}

func lowerOrDigit(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
}

// FuncSummary is the interprocedural fact record of one declared
// function, computed bottom-up in call-graph SCC order.
type FuncSummary struct {
	// Params and Results give the inferred dimension of each parameter
	// and result (indexes follow the signature). Parameters are named
	// only; results fall back to the dimensions of returned
	// expressions when the signature leaves them unnamed.
	Params  []DimInfo
	Results []DimInfo
	// CanNaN reports that some floating-point result can be NaN or
	// ±Inf: it derives from a NaN-capable producer and the body never
	// checks it with IsNaN/IsInf/IsFinite.
	CanNaN bool
	// NeverTerminates reports that the body's CFG cannot reach its
	// exit: a goroutine running this function can never finish.
	NeverTerminates bool
	// MutatesCacheKeyed reports a write to a non-generation field of a
	// generation-keyed type somewhere in the body.
	MutatesCacheKeyed bool
	// BumpsGeneration reports that the body calls NextGeneration()
	// itself, or calls a callee that both bumps and receives a
	// generation-keyed value (so the bump can reach the caller's
	// object).
	BumpsGeneration bool

	// Concurrency effects (concsummary.go). All facts are "may"
	// facts: they claim an effect can happen on some execution, never
	// that it must.

	// ChanParams records, per channel-typed parameter index, which
	// channel operations the body (or a summarized callee the
	// parameter is forwarded to) may perform on it.
	ChanParams map[int]ChanEffect
	// WGParams records sync.WaitGroup effects per *sync.WaitGroup
	// parameter index: Add deltas, Done calls, and Wait.
	WGParams map[int]WGEffect
	// MayBlock reports that calling the function can park the calling
	// goroutine: a channel op outside a select-with-default, a
	// WaitGroup/Cond Wait, time.Sleep, network or file I/O, or a call
	// to a callee that may block. BlockWhy names the first source
	// found, for diagnostics.
	MayBlock bool
	BlockWhy string
	// ObservesCancel reports that the body (outside nested function
	// literals and spawned goroutines) observes cancellation: a
	// ctx.Done() receive, a ctx.Err() call, a comma-ok channel
	// receive, a range over a channel, or a call to a callee that
	// does.
	ObservesCancel bool
	// HasUnobservedLoop reports that the body contains an
	// unconditional `for` loop with a cycle that passes no
	// cancellation observation — a goroutine running this function
	// can iterate forever without noticing ctx.Done() or a closed
	// channel (the spawnctx fact).
	HasUnobservedLoop bool
}

// Summary returns the recorded summary for fn, or nil when fn was
// never summarized (stdlib functions, function literals).
func (f *FactStore) Summary(fn *types.Func) *FuncSummary {
	if f == nil || fn == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.summaries[fn]
}

// GenField reports the generation-field name of a cache-keyed type:
// a named struct type some field of which is assigned from
// NextGeneration(). t may be the named type or a pointer to it.
func (f *FactStore) GenField(t types.Type) (string, bool) {
	if f == nil || t == nil {
		return "", false
	}
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return "", false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	field, ok := f.genTypes[named]
	return field, ok
}

// recordSummaries computes and stores summaries for every function
// declared in files. Must run after recordNoReturns (the CFG used for
// NeverTerminates relies on no-return facts).
func (f *FactStore) recordSummaries(info *types.Info, files []*ast.File) {
	if f == nil {
		return
	}
	f.harvestGenTypes(info, files)
	graph := BuildCallGraph(info, files)
	for _, scc := range graph.SCCs() {
		// Seed every member first so mutual recursion resolves against
		// in-progress (conservative) summaries instead of nil.
		for _, node := range scc {
			f.setSummary(node.Fn, f.seedSummary(node))
		}
		// Iterate the component to a local fixpoint: facts only flip
		// false->true or unknown->known, so this terminates quickly.
		for changed := true; changed; {
			changed = false
			for _, node := range scc {
				if f.refineSummary(info, node) {
					changed = true
				}
			}
		}
	}
}

func (f *FactStore) setSummary(fn *types.Func, s *FuncSummary) {
	f.mu.Lock()
	f.summaries[fn] = s
	f.mu.Unlock()
}

// seedSummary computes the facts that need no callee information:
// name-derived parameter/result dimensions and CFG termination.
func (f *FactStore) seedSummary(node *CGNode) *FuncSummary {
	sig, _ := node.Fn.Type().(*types.Signature)
	s := &FuncSummary{}
	if sig != nil {
		s.Params = make([]DimInfo, sig.Params().Len())
		for i := range s.Params {
			s.Params[i] = NameDim(sig.Params().At(i).Name())
		}
		s.Results = make([]DimInfo, sig.Results().Len())
		for i := range s.Results {
			s.Results[i] = NameDim(sig.Results().At(i).Name())
		}
	}
	return s
}

// refineSummary recomputes the callee-dependent facts of one node and
// reports whether anything changed.
func (f *FactStore) refineSummary(info *types.Info, node *CGNode) bool {
	s := f.Summary(node.Fn)
	changed := false

	if !s.NeverTerminates && f.bodyNeverReachesExit(info, node.Decl.Body) {
		s.NeverTerminates = true
		changed = true
	}
	if f.refineResultDims(info, node, s) {
		changed = true
	}
	if !s.CanNaN && f.resultCanNaN(info, node) {
		s.CanNaN = true
		changed = true
	}
	mut, bump := f.cacheEffects(info, node)
	if mut && !s.MutatesCacheKeyed {
		s.MutatesCacheKeyed = true
		changed = true
	}
	if bump && !s.BumpsGeneration {
		s.BumpsGeneration = true
		changed = true
	}
	if f.refineConcurrency(info, node, s) {
		changed = true
	}
	return changed
}

// bodyNeverReachesExit builds the function's CFG and reports whether
// the exit block is unreachable from entry — the summary behind
// goroleak's "this goroutine can never finish".
func (f *FactStore) bodyNeverReachesExit(info *types.Info, body *ast.BlockStmt) bool {
	g := BuildCFG(body, TerminatesCall(info, f))
	reached := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, succ := range b.Succs {
			if !reached[succ] {
				reached[succ] = true
				work = append(work, succ)
			}
		}
	}
	return !reached[g.Exit]
}

// refineResultDims fills unknown result dimensions from the returned
// expressions: if every return statement agrees on a known dimension
// for result i, the function result carries it.
func (f *FactStore) refineResultDims(info *types.Info, node *CGNode, s *FuncSummary) bool {
	unknown := false
	for _, r := range s.Results {
		if !r.Known {
			unknown = true
		}
	}
	if !unknown {
		return false
	}
	agreed := make([]DimInfo, len(s.Results))
	sawReturn := make([]bool, len(s.Results))
	conflict := make([]bool, len(s.Results))
	eval := &dimEval{info: info, facts: f}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != len(s.Results) {
			return true
		}
		for i, e := range ret.Results {
			d := eval.exprDim(e)
			if !d.Known || d.Dim.IsDimensionless() {
				conflict[i] = true // a unit-less return leaves it unknown
				continue
			}
			if sawReturn[i] && agreed[i].Dim != d.Dim {
				conflict[i] = true
				continue
			}
			agreed[i], sawReturn[i] = d, true
		}
		return true
	})
	changed := false
	for i := range s.Results {
		if !s.Results[i].Known && sawReturn[i] && !conflict[i] {
			s.Results[i] = agreed[i]
			changed = true
		}
	}
	return changed
}

// nanSources is the standard-library NaN/Inf producer list: functions
// whose float result is NaN or ±Inf on reachable inputs. Division is
// deliberately excluded (see the package comment).
var nanSources = map[string]bool{
	"Sqrt": true, "Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Asin": true, "Acos": true, "Acosh": true, "Atanh": true,
	"NaN": true, "Inf": true,
}

// nanGuards are the sanctioned checks: once a value has been through
// one, it is considered guarded.
var nanGuards = map[string]bool{"IsNaN": true, "IsInf": true, "IsFinite": true}

// isMathSource reports whether the call is a std NaN/Inf producer
// (math.Sqrt and friends).
func isMathSource(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !nanSources[sel.Sel.Name] {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "math"
}

// isNaNGuardCall reports whether the call is an IsNaN/IsInf/IsFinite
// check, returning the checked expression.
func isNaNGuardCall(call *ast.CallExpr) (ast.Expr, bool) {
	if calleeName(call) == "" || !nanGuards[calleeName(call)] || len(call.Args) == 0 {
		return nil, false
	}
	return call.Args[0], true
}

// resultCanNaN is the bottom-up CanNaN inference: a single forward
// scan collects locals assigned from NaN-capable expressions, removes
// every local the body guards, and reports whether a float result can
// carry the taint out.
func (f *FactStore) resultCanNaN(info *types.Info, node *CGNode) bool {
	sig, _ := node.Fn.Type().(*types.Signature)
	if sig == nil || !hasFloatResult(sig) {
		return false
	}
	tainted := make(map[types.Object]bool)
	guarded := make(map[types.Object]bool)
	capable := func(e ast.Expr) bool { return f.exprNaNCapable(info, e, tainted) }

	// Pass 1: collect taints and guards in source order. Guards apply
	// function-wide — the contract is "checked somewhere", not a path
	// property, at summary granularity.
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && capable(n.Rhs[i]) {
					tainted[obj] = true
				}
			}
		case *ast.CallExpr:
			if arg, ok := isNaNGuardCall(n); ok {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						guarded[obj] = true
					}
				}
			}
		}
		return true
	})
	for obj := range guarded {
		delete(tainted, obj)
	}

	// Pass 2: does any return statement carry taint out in a float
	// result?
	canNaN := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return !canNaN
		}
		for _, e := range ret.Results {
			if t := info.TypeOf(e); t != nil && isFloat(t) && capable(e) {
				canNaN = true
			}
		}
		return true
	})
	return canNaN
}

// exprNaNCapable reports whether e can evaluate to NaN/±Inf: it
// mentions a tainted local, calls a std producer, or calls a module
// function whose summary says CanNaN.
func (f *FactStore) exprNaNCapable(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	capable := false
	ast.Inspect(e, func(n ast.Node) bool {
		if capable {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && tainted[obj] {
				capable = true
			}
		case *ast.CallExpr:
			if isMathSource(info, n) {
				capable = true
				return false
			}
			if callee := staticCallee(info, n); callee != nil {
				if s := f.Summary(callee); s != nil && s.CanNaN {
					capable = true
					return false
				}
			}
		}
		return true
	})
	return capable
}

func hasFloatResult(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isFloat(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// harvestGenTypes records every named struct type whose field is
// assigned from a NextGeneration() call — by field assignment or
// composite literal — as cache-keyed, remembering the generation
// field's name.
func (f *FactStore) harvestGenTypes(info *types.Info, files []*ast.File) {
	record := func(t types.Type, field string) {
		if named, ok := derefType(t).(*types.Named); ok {
			f.mu.Lock()
			f.genTypes[named] = field
			f.mu.Unlock()
		}
	}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !isNextGenerationCall(n.Rhs[i]) {
						continue
					}
					if t := info.TypeOf(sel.X); t != nil {
						record(t, sel.Sel.Name)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok || !isNextGenerationCall(kv.Value) {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if t := info.TypeOf(n); t != nil {
						record(t, key.Name)
					}
				}
			}
			return true
		})
	}
}

// isNextGenerationCall matches a call to a function named
// NextGeneration (the generation allocator; matched by name so
// fixtures can define their own).
func isNextGenerationCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && calleeName(call) == "NextGeneration"
}

// cacheEffects scans one function for generation-cache effects:
// mut — a write to a non-generation field of a cache-keyed type;
// bump — a NextGeneration() call, or a call to a callee that bumps
// and receives a cache-keyed value (so its bump can cover the
// caller's object).
func (f *FactStore) cacheEffects(info *types.Info, node *CGNode) (mut, bump bool) {
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, _, ok := f.cacheKeyedFieldWrite(info, lhs); ok {
					mut = true
				}
			}
			for _, rhs := range n.Rhs {
				if isNextGenerationCall(rhs) {
					bump = true
				}
			}
		case *ast.IncDecStmt:
			if _, _, ok := f.cacheKeyedFieldWrite(info, n.X); ok {
				mut = true
			}
		case *ast.CallExpr:
			if calleeName(n) == "NextGeneration" {
				bump = true
				return true
			}
			if callee := staticCallee(info, n); callee != nil {
				if s := f.Summary(callee); s != nil && s.BumpsGeneration && receivesCacheKeyed(f, callee) {
					bump = true
				}
			}
		}
		return true
	})
	return mut, bump
}

// cacheKeyedFieldWrite reports whether lhs writes a non-generation
// field of a cache-keyed type: x.f, x.f[i], or x.f.g where x's type
// is generation-keyed.
func (f *FactStore) cacheKeyedFieldWrite(info *types.Info, lhs ast.Expr) (sel *ast.SelectorExpr, field string, ok bool) {
	e := ast.Unparen(lhs)
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = v.X
			continue
		case *ast.SelectorExpr:
			if t := info.TypeOf(v.X); t != nil {
				if genField, keyed := f.GenField(t); keyed && v.Sel.Name != genField {
					return v, v.Sel.Name, true
				}
			}
			e = v.X
			continue
		}
		return nil, "", false
	}
}

// receivesCacheKeyed reports whether fn's receiver or any parameter
// is (a pointer to) a cache-keyed type — the condition under which
// its generation bump can cover a caller's object.
func receivesCacheKeyed(f *FactStore, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		if _, keyed := f.GenField(recv.Type()); keyed {
			return true
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if _, keyed := f.GenField(sig.Params().At(i).Type()); keyed {
			return true
		}
	}
	return false
}

// dimEval evaluates expression dimensions against the naming
// vocabulary and the summary store. The zero conflict callback makes
// evaluation silent (summary inference); dimflow installs a reporter.
type dimEval struct {
	info  *types.Info
	facts *FactStore
	// onConflict, when non-nil, is invoked for every additive or
	// comparison operand pair with conflicting known dimensions.
	onConflict func(n ast.Node, op string, a, b Dim)
}

// mathPassThrough lists math functions transparent to dimensions:
// the result carries the first argument's unit.
var mathPassThrough = map[string]bool{
	"Abs": true, "Max": true, "Min": true, "Floor": true, "Ceil": true,
	"Round": true, "Trunc": true, "Mod": true, "Copysign": true,
}

// exprDim infers the dimension of e, Known=false when the names along
// the way say nothing.
func (ev *dimEval) exprDim(e ast.Expr) DimInfo {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.exprDim(e.X)
	case *ast.Ident:
		return ev.identDim(e)
	case *ast.SelectorExpr:
		// A field or package-level var selection carries its name's
		// unit; method values and package names carry none.
		if obj := ev.info.Uses[e.Sel]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return NameDim(e.Sel.Name)
			}
		}
		return DimInfo{}
	case *ast.IndexExpr:
		// tileTempsK[i] carries the slice name's unit per element.
		return ev.exprDim(e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "-" || e.Op.String() == "+" {
			return ev.exprDim(e.X)
		}
		return DimInfo{}
	case *ast.BasicLit:
		return DimInfo{Known: true} // pure number
	case *ast.BinaryExpr:
		return ev.binaryDim(e)
	case *ast.CallExpr:
		return ev.callDim(e)
	}
	return DimInfo{}
}

func (ev *dimEval) identDim(id *ast.Ident) DimInfo {
	obj := ev.info.Uses[id]
	if obj == nil {
		obj = ev.info.Defs[id]
	}
	switch obj.(type) {
	case *types.Var:
		return NameDim(id.Name)
	case *types.Const:
		// A unit-named constant (roomTempK) carries its unit; other
		// constants are pure numbers only when untyped numeric —
		// leave named constants without a unit suffix unknown.
		if d := NameDim(id.Name); d.Known {
			return d
		}
	}
	return DimInfo{}
}

func (ev *dimEval) binaryDim(e *ast.BinaryExpr) DimInfo {
	a, b := ev.exprDim(e.X), ev.exprDim(e.Y)
	switch e.Op.String() {
	case "*":
		if a.Known && b.Known {
			return DimInfo{Dim: a.Dim.Mul(b.Dim), Known: true}
		}
		// A pure-number factor is transparent: 2*limitK is still K.
		if a.Known && a.Dim.IsDimensionless() {
			return b
		}
		if b.Known && b.Dim.IsDimensionless() {
			return a
		}
		return DimInfo{}
	case "/":
		if a.Known && b.Known {
			return DimInfo{Dim: a.Dim.Div(b.Dim), Known: true}
		}
		if b.Known && b.Dim.IsDimensionless() {
			return a // x/2 keeps x's unit
		}
		return DimInfo{}
	case "+", "-":
		ev.checkAdditive(e, a, b)
		if a.Known && !a.Dim.IsDimensionless() {
			return a
		}
		if b.Known && !b.Dim.IsDimensionless() {
			return b
		}
		if a.Known && b.Known {
			return a
		}
		return DimInfo{}
	case "<", "<=", ">", ">=", "==", "!=":
		ev.checkAdditive(e, a, b)
		return DimInfo{} // boolean result carries no unit
	}
	return DimInfo{}
}

// checkAdditive fires the conflict callback when two operands that
// must share a dimension (addition, subtraction, comparison) carry
// different known, non-pure-number dimensions.
func (ev *dimEval) checkAdditive(e *ast.BinaryExpr, a, b DimInfo) {
	if ev.onConflict == nil || !a.Known || !b.Known {
		return
	}
	if a.Dim.IsDimensionless() || b.Dim.IsDimensionless() {
		return // literals and counts mix with anything
	}
	if a.Dim != b.Dim {
		ev.onConflict(e, e.Op.String(), a.Dim, b.Dim)
	}
}

// callDim infers a call expression's dimension: conversions are
// transparent, math helpers pass their argument's unit through, and
// module callees answer from their summary (named results, or
// bottom-up inference).
func (ev *dimEval) callDim(call *ast.CallExpr) DimInfo {
	// Conversion: float64(x) keeps x's unit.
	if len(call.Args) == 1 {
		if tv, ok := ev.info.Types[call.Fun]; ok && tv.IsType() {
			return ev.exprDim(call.Args[0])
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && mathPassThrough[sel.Sel.Name] && len(call.Args) >= 1 {
		if fn, ok := ev.info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "math" {
			return ev.exprDim(call.Args[0])
		}
	}
	callee := staticCallee(ev.info, call)
	if callee == nil {
		return DimInfo{}
	}
	s := ev.facts.Summary(callee)
	if s == nil || len(s.Results) == 0 {
		// No summary (stdlib): fall back to the result names in the
		// signature, which go/types preserves for source imports.
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Results().Len() >= 1 {
			return NameDim(sig.Results().At(0).Name())
		}
		return DimInfo{}
	}
	return s.Results[0]
}

// sortedFuncNames is a test helper: the names of all summarized
// functions, sorted, for deterministic assertions.
func (f *FactStore) sortedFuncNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.summaries))
	for fn := range f.summaries {
		names = append(names, fn.Name())
	}
	sort.Strings(names)
	return names
}
