package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockBalance verifies that every sync.Mutex.Lock / sync.RWMutex.Lock /
// RLock acquired in a function body is released on every path to
// function exit — either by a matching Unlock/RUnlock reachable on each
// path, or by a deferred release (`defer mu.Unlock()`, including
// releases inside a deferred function literal). The solver caches and
// the metrics registry both take locks on hot paths; a branch that
// returns early while holding one deadlocks the next Table I sweep
// rather than failing loudly.
//
// Mutexes are identified textually by their receiver expression
// (types.ExprString), which is exact for the repository's idioms
// (`mu`, `c.mu`, `r.mu`) and conservative otherwise: two spellings of
// the same mutex are tracked separately, so a release through an alias
// is not credited. Such code can carry a
// `teclint:ignore lockbalance <reason>` directive. TryLock is ignored
// (its acquisition is conditional by design), and lock operations
// inside nested function literals are analyzed with their own body.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "a Lock/RLock must be released by Unlock/RUnlock or a defer on every path to function exit",
	Run:  runLockBalance,
}

func runLockBalance(pass *Pass) {
	forEachFuncBody(pass, func(body *ast.BlockStmt) {
		a := &lbAnalysis{pass: pass, deferred: deferredReleases(pass, body)}
		g := BuildCFG(body, pass.Terminates)
		res := RunForward(g, a)
		if exit, ok := res.In[g.Exit]; ok {
			for key, pos := range exit.(lbState) {
				pass.Reportf(pos, "%s acquired here is not released on every path to return; add a matching %s (or defer it)", key.desc(), key.release())
			}
		}
	})
}

// lbKey identifies one acquisition: the receiver expression's source
// text plus whether it was a read lock. Lock and RLock on the same
// mutex are separate obligations with distinct releases.
type lbKey struct {
	recv string
	read bool
}

func (k lbKey) desc() string {
	if k.read {
		return k.recv + ".RLock()"
	}
	return k.recv + ".Lock()"
}

func (k lbKey) release() string {
	if k.read {
		return k.recv + ".RUnlock()"
	}
	return k.recv + ".Unlock()"
}

// lbState maps held acquisitions to the position of the acquiring call.
type lbState map[lbKey]token.Pos

type lbAnalysis struct {
	pass *Pass
	// deferred holds the keys released by defer statements anywhere in
	// the body; acquisitions of those keys are never considered held at
	// exit. Tracking defers flow-insensitively is sound enough here: a
	// defer that textually follows the Lock is the universal idiom, and
	// treating a defer on a never-taken path as a release costs at most
	// a false negative, never a false positive.
	deferred map[lbKey]bool
}

func (a *lbAnalysis) Entry() FlowState { return lbState{} }

func (a *lbAnalysis) Equal(x, y FlowState) bool {
	sx, sy := x.(lbState), y.(lbState)
	if len(sx) != len(sy) {
		return false
	}
	for k, v := range sx {
		if w, ok := sy[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// Join unions held locks: held on either incoming path means possibly
// held, which is what "not released on every path" asks about. The
// earlier acquisition position wins for determinism.
func (a *lbAnalysis) Join(x, y FlowState) FlowState {
	sx, sy := x.(lbState), y.(lbState)
	out := make(lbState, len(sx)+len(sy))
	for k, v := range sx {
		out[k] = v
	}
	for k, v := range sy {
		if w, ok := out[k]; !ok || v < w {
			out[k] = v
		}
	}
	return out
}

func (a *lbAnalysis) Transfer(n ast.Node, in FlowState) FlowState {
	ops := lockOps(a.pass, n)
	if len(ops) == 0 {
		return in
	}
	st := in.(lbState)
	out := make(lbState, len(st)+1)
	for k, v := range st {
		out[k] = v
	}
	for _, op := range ops {
		if op.acquire {
			if !a.deferred[op.key] {
				out[op.key] = op.pos
			}
		} else {
			delete(out, op.key)
		}
	}
	return out
}

type lockOp struct {
	key     lbKey
	pos     token.Pos
	acquire bool
}

// lockOps extracts the sync lock/unlock calls performed directly by
// node n (not inside nested function literals, and not inside defer
// statements — deferred releases are collected separately).
func lockOps(pass *Pass, n ast.Node) []lockOp {
	if _, ok := n.(*ast.DeferStmt); ok {
		return nil
	}
	var out []lockOp
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if op, ok := syncLockOp(pass, n); ok {
				out = append(out, op)
			}
		}
		return true
	})
	return out
}

// syncLockOp decodes a call as a sync mutex operation. TryLock and
// TryRLock are skipped: their acquisition is conditional, and the
// repository convention is to release them inside the guarded branch.
func syncLockOp(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	recv := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return lockOp{key: lbKey{recv: recv}, pos: call.Pos(), acquire: true}, true
	case "Unlock":
		return lockOp{key: lbKey{recv: recv}}, true
	case "RLock":
		return lockOp{key: lbKey{recv: recv, read: true}, pos: call.Pos(), acquire: true}, true
	case "RUnlock":
		return lockOp{key: lbKey{recv: recv, read: true}}, true
	}
	return lockOp{}, false
}

// deferredReleases collects the lock keys released by defer statements
// in the body: both `defer mu.Unlock()` and releases inside a deferred
// function literal (`defer func() { ...; mu.Unlock() }()`). Defers
// inside nested function literals belong to that literal's body and
// are skipped here.
func deferredReleases(pass *Pass, body *ast.BlockStmt) map[lbKey]bool {
	out := make(map[lbKey]bool)
	record := func(call *ast.CallExpr) {
		if op, ok := syncLockOp(pass, call); ok && !op.acquire {
			out[op.key] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false
					}
					if call, ok := n.(*ast.CallExpr); ok {
						record(call)
					}
					return true
				})
				return false
			}
			record(n.Call)
			return false
		}
		return true
	})
	return out
}
