package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureLoader builds a loader rooted at the enclosing module so
// fixtures under testdata/ type-check with the same machinery teclint
// uses.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("creating loader: %v", err)
	}
	return loader
}

// wantedFindings scans fixture sources for "// want <rule>" markers and
// returns the expected "file:line" keys.
func wantedFindings(t *testing.T, dir, rule string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("opening fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), "// want "+rule) {
				want[fmt.Sprintf("%s:%d", path, line)] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning fixture: %v", err)
		}
		f.Close()
	}
	return want
}

// runFixture runs one analyzer over its fixture package and checks the
// findings match the // want markers exactly.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	loader := fixtureLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", a.Name))
	if err != nil {
		t.Fatalf("resolving fixture dir: %v", err)
	}
	units, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture package: %v", err)
	}
	if len(units) == 0 {
		t.Fatalf("no packages loaded from %s", dir)
	}
	got := make(map[string]bool)
	for _, unit := range units {
		for _, d := range Run(unit, []*Analyzer{a}) {
			key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
			if got[key] {
				t.Errorf("duplicate finding at %s", key)
			}
			got[key] = true
		}
	}
	want := wantedFindings(t, dir, a.Name)
	if len(want) == 0 {
		t.Fatalf("fixture for %s has no // want markers; it would not prove the rule fires", a.Name)
	}
	for key := range want {
		if !got[key] {
			t.Errorf("%s: expected finding at %s, got none", a.Name, key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("%s: unexpected finding at %s", a.Name, key)
		}
	}
}

func TestFloatEqFixture(t *testing.T)       { runFixture(t, FloatEq) }
func TestDroppedErrFixture(t *testing.T)    { runFixture(t, DroppedErr) }
func TestLockCopyFixture(t *testing.T)      { runFixture(t, LockCopy) }
func TestMapOrderFixture(t *testing.T)      { runFixture(t, MapOrder) }
func TestObsClockFixture(t *testing.T)      { runFixture(t, ObsClock) }
func TestTestHelperFixture(t *testing.T)    { runFixture(t, TestHelper) }
func TestTypedErrFixture(t *testing.T)      { runFixture(t, TypedErr) }
func TestUnitSanityFixture(t *testing.T)    { runFixture(t, UnitSanity) }
func TestCtxFlowFixture(t *testing.T)       { runFixture(t, CtxFlow) }
func TestErrPathFixture(t *testing.T)       { runFixture(t, ErrPath) }
func TestLockBalanceFixture(t *testing.T)   { runFixture(t, LockBalance) }
func TestValidateFirstFixture(t *testing.T) { runFixture(t, ValidateFirst) }
func TestDimFlowFixture(t *testing.T)       { runFixture(t, DimFlow) }
func TestNaNFlowFixture(t *testing.T)       { runFixture(t, NaNFlow) }
func TestGoroLeakFixture(t *testing.T)      { runFixture(t, GoroLeak) }
func TestCacheGenFixture(t *testing.T)      { runFixture(t, CacheGen) }
func TestChanFlowFixture(t *testing.T)      { runFixture(t, ChanFlow) }
func TestWGBalanceFixture(t *testing.T)     { runFixture(t, WGBalance) }
func TestMutexBlockFixture(t *testing.T)    { runFixture(t, MutexBlock) }
func TestOnceMisuseFixture(t *testing.T)    { runFixture(t, OnceMisuse) }
func TestSpawnCtxFixture(t *testing.T)      { runFixture(t, SpawnCtx) }

// TestBadIgnoreFixture exercises the framework-level badignore
// pseudo-rule: reasonless teclint:ignore directives are reported by Run
// itself, with no analyzer registered at all.
func TestBadIgnoreFixture(t *testing.T) {
	loader := fixtureLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "badignore"))
	if err != nil {
		t.Fatalf("resolving fixture dir: %v", err)
	}
	units, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture package: %v", err)
	}
	got := make(map[string]bool)
	for _, unit := range units {
		for _, d := range Run(unit, nil) {
			if d.Rule != BadIgnoreRule {
				t.Errorf("unexpected rule %q at %s:%d", d.Rule, d.Pos.Filename, d.Pos.Line)
				continue
			}
			got[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)] = true
		}
	}
	want := wantedFindings(t, dir, BadIgnoreRule)
	if len(want) == 0 {
		t.Fatal("badignore fixture has no // want markers")
	}
	for key := range want {
		if !got[key] {
			t.Errorf("expected badignore finding at %s, got none", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected badignore finding at %s", key)
		}
	}
}

// TestAllAnalyzersRegistered pins the suite composition: adding an
// analyzer without registering it in All() would silently drop it from
// teclint and CI.
func TestAllAnalyzersRegistered(t *testing.T) {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
	sort.Strings(names)
	want := []string{"cachegen", "chanflow", "ctxflow", "dimflow", "droppederr", "errpath", "floateq", "goroleak", "lockbalance", "lockcopy", "maporder", "mutexblock", "nanflow", "obsclock", "oncemisuse", "spawnctx", "testhelper", "typederr", "unitsanity", "validatefirst", "wgbalance"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("registered analyzers = %v, want %v", names, want)
	}
}

func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		comment string
		rules   string // comma-joined expected rule list
		reason  string
		ok      bool
	}{
		{"//teclint:ignore floateq bit-exact sentinel", "floateq", "bit-exact sentinel", true},
		{"// teclint:ignore maporder reason", "maporder", "reason", true},
		{"/* teclint:ignore droppederr reason */", "droppederr", "reason", true},
		{"/* teclint:ignore floateq */", "floateq", "", true}, // reasonless: still parses, badignore flags it
		{"//teclint:ignore errpath", "errpath", "", true},
		{"//teclint:ignore dimflow,nanflow both fire on the seeded mismatch", "dimflow,nanflow", "both fire on the seeded mismatch", true},
		{"// teclint:ignore dimflow, nanflow stray space splits the list", "dimflow", "nanflow stray space splits the list", true},
		{"// regular comment", "", "", false},
		{"//teclint:ignore", "", "", true}, // bare directive parses; badignore reports it as unscoped
	}
	for _, c := range cases {
		rules, reason, ok := parseIgnore(c.comment)
		if strings.Join(rules, ",") != c.rules || reason != c.reason || ok != c.ok {
			t.Errorf("parseIgnore(%q) = %q,%q,%v want %q,%q,%v", c.comment, strings.Join(rules, ","), reason, ok, c.rules, c.reason, c.ok)
		}
	}
}

// TestDiagnosticString pins the output format golden-tested end-to-end
// in cmd/teclint.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "floateq", Message: "msg"}
	d.Pos.Filename = "internal/core/greedy.go"
	d.Pos.Line = 42
	if got, want := d.String(), "internal/core/greedy.go:42: [floateq] msg"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
