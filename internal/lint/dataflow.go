package lint

// dataflow.go is the forward-dataflow fixpoint engine that runs on the
// CFGs built by cfg.go. An analysis supplies a lattice (Join/Equal), a
// transfer function over single nodes, and an entry state; the engine
// computes the state at the entry of every reachable block.
//
// The analyzers built on it (validatefirst, errpath, lockbalance) use
// finite fact sets keyed by local variables or source positions, so
// the lattice has finite height and the worklist terminates as long as
// Transfer and Join are monotone. A defensive step bound makes the
// engine fail open (no facts, hence no findings) rather than hang on a
// pathological graph.

import "go/ast"

// FlowState is one analysis's abstract state at a program point.
// States are treated as immutable: Transfer and Join must return fresh
// values (or unmodified inputs), never mutate their arguments. nil is
// the bottom state (unreachable).
type FlowState any

// FlowAnalysis defines a forward dataflow problem.
type FlowAnalysis interface {
	// Entry is the state on function entry.
	Entry() FlowState
	// Transfer applies one CFG node (a simple statement or an
	// evaluated expression; see cfg.go for the node inventory) to the
	// incoming state.
	Transfer(n ast.Node, in FlowState) FlowState
	// Join merges the states of two predecessor edges. Neither
	// argument is nil.
	Join(a, b FlowState) FlowState
	// Equal reports whether two states carry the same facts; the
	// fixpoint has converged when every block's input is Equal to the
	// previous round's.
	Equal(a, b FlowState) bool
}

// FlowResult holds the fixpoint: the state at the entry of each block.
// Blocks unreachable from Entry are absent.
type FlowResult struct {
	In map[*Block]FlowState
}

// BlockOut replays the block's transfer functions over its input state,
// returning the state at the block's exit. Analyzers use it (and
// Transfer directly, node by node) in their reporting pass.
func (r *FlowResult) BlockOut(a FlowAnalysis, b *Block) FlowState {
	s, ok := r.In[b]
	if !ok {
		return nil
	}
	for _, n := range b.Nodes {
		s = a.Transfer(n, s)
	}
	return s
}

// maxFlowSteps bounds the number of block visits per function as a
// hang-proof backstop; structured code converges in a few passes, so
// hitting the bound means a non-monotone analysis bug, and the engine
// fails open by returning the partial result.
const maxFlowSteps = 64

// RunForward computes the forward dataflow fixpoint of a over g with a
// deterministic worklist (block index order), so diagnostics derived
// from the result are stable across runs.
func RunForward(g *CFG, a FlowAnalysis) *FlowResult {
	res := &FlowResult{In: make(map[*Block]FlowState, len(g.Blocks))}
	res.In[g.Entry] = a.Entry()
	preds := g.Preds()

	for pass := 0; pass < maxFlowSteps; pass++ {
		changed := false
		for _, b := range g.Blocks {
			if b == g.Entry {
				continue // entry state is fixed
			}
			in, reachable := joinPreds(a, res, preds[b])
			if !reachable {
				continue
			}
			old, seen := res.In[b]
			if !seen || !a.Equal(old, in) {
				res.In[b] = in
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return res
}

// joinPreds folds the predecessor out-states into a block's in-state.
// reachable is false when no predecessor has been reached yet.
func joinPreds(a FlowAnalysis, res *FlowResult, preds []*Block) (FlowState, bool) {
	var acc FlowState
	reached := false
	for _, p := range preds {
		in, ok := res.In[p]
		if !ok {
			continue
		}
		out := in
		for _, n := range p.Nodes {
			out = a.Transfer(n, out)
		}
		if !reached {
			acc, reached = out, true
		} else {
			acc = a.Join(acc, out)
		}
	}
	return acc, reached
}
