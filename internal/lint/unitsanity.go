package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
)

// Celsius-looking range: on-chip temperature limits and ambients live
// in roughly 20–150 °C; the same quantities in kelvin are near 300–400.
// A raw literal below the bound passed into a kelvin-typed slot is
// almost certainly a forgotten CelsiusToKelvin conversion, which shifts
// every limit by 273.15 K and silently deactivates the optimizer's
// constraint (nothing crashes; Table I just reproduces wrong).
const (
	celsiusLikeMin = 15
	celsiusLikeMax = 200
)

// UnitSanity flags raw numeric literals that look like Celsius passed
// where kelvin is expected: call arguments bound to parameters whose
// names end in "K" and composite-literal fields ending in "K"
// (AmbientK, limitK, PeakK, ...). Kelvin-denominated *differences*
// (delta/tolerance/step parameters) are exempt, since a 10 K delta is
// legitimate. Fix with material.CelsiusToKelvin(...) or suppress with
// "teclint:ignore unitsanity <reason>".
var UnitSanity = &Analyzer{
	Name: "unitsanity",
	Doc:  "flags raw Celsius-looking literals passed to kelvin parameters/fields; use CelsiusToKelvin",
	Run:  runUnitSanity,
}

func runUnitSanity(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkCallKelvinArgs(pass, e)
			case *ast.CompositeLit:
				checkCompositeKelvinFields(pass, e)
			}
			return true
		})
	}
}

func checkCallKelvinArgs(pass *Pass, call *ast.CallExpr) {
	sig, ok := calleeSignature(pass, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		idx := i
		if sig.Variadic() && idx >= params.Len()-1 {
			idx = params.Len() - 1
		}
		if idx >= params.Len() {
			break
		}
		pname := params.At(idx).Name()
		if !kelvinName(pname) {
			continue
		}
		if v, ok := celsiusLikeLiteral(pass, arg); ok {
			pass.Reportf(arg.Pos(), "raw literal %g passed to kelvin parameter %q looks like Celsius; wrap it in CelsiusToKelvin", v, pname)
		}
	}
}

func checkCompositeKelvinFields(pass *Pass, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !kelvinName(key.Name) {
			continue
		}
		if v, ok := celsiusLikeLiteral(pass, kv.Value); ok {
			pass.Reportf(kv.Value.Pos(), "raw literal %g assigned to kelvin field %q looks like Celsius; wrap it in CelsiusToKelvin", v, key.Name)
		}
	}
}

// kelvinName reports whether a parameter or field name denotes an
// absolute kelvin temperature: it ends in "K" (limitK, AmbientK) and is
// not a kelvin-denominated difference (delta, tolerance, step, span).
func kelvinName(name string) bool {
	if len(name) < 2 || !strings.HasSuffix(name, "K") {
		return false
	}
	lower := strings.ToLower(name)
	for _, diff := range []string{"delta", "tol", "step", "diff", "span", "drop", "rise", "eps"} {
		if strings.Contains(lower, diff) {
			return false
		}
	}
	return true
}

// celsiusLikeLiteral reports the value of expr when it is a plain
// numeric literal (possibly negated or parenthesized) in the
// Celsius-looking range. Named constants and arithmetic expressions are
// deliberately not matched: `limit` or `273.15 + 85` states intent.
func celsiusLikeLiteral(pass *Pass, expr ast.Expr) (float64, bool) {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return celsiusLikeLiteral(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB {
			// Negative Celsius is plausible, but negative kelvin is
			// impossible — flag any negative literal in a kelvin slot.
			if v, ok := literalValue(pass, e.X); ok {
				return -v, true
			}
		}
		return 0, false
	case *ast.BasicLit:
		v, ok := literalValue(pass, e)
		if !ok || v < celsiusLikeMin || v > celsiusLikeMax {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

func literalValue(pass *Pass, expr ast.Expr) (float64, bool) {
	lit, ok := expr.(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return 0, false
	}
	tv := pass.Info.Types[lit]
	if tv.Value == nil {
		return 0, false
	}
	f := constant.ToFloat(tv.Value)
	if f.Kind() != constant.Float {
		return 0, false
	}
	v, _ := constant.Float64Val(f)
	return v, true
}
