package lint

import (
	"go/types"
	"testing"
)

func TestNameDim(t *testing.T) {
	cases := []struct {
		name  string
		dim   string
		known bool
	}{
		{"tempK", "K", true},
		{"limitK", "K", true},
		{"tilePowerW", "W", true},
		{"currentA", "A", true},
		{"maxBracketCurrentA", "A", true},
		{"dropV", "W/A", true},
		{"rOhm", "W/A^2", true},
		{"condWperK", "W/K", true},
		{"seebeckVperK", "W/(A*K)", true},
		{"WperK", "W/K", true},
		{"Seebeck", "W/(A*K)", true},
		{"Resistance", "W/A^2", true},
		{"Kappa", "W/K", true},
		{"thetaHot", "K", true},
		{"currents", "A", true},
		{"TilePower", "W", true},
		// Non-matches: uppercase before the token, bare tokens, and
		// names the vocabulary says nothing about.
		{"K", "", false},
		{"DVector", "", false},
		{"OK", "", false},
		{"count", "", false},
		{"tol", "", false},
	}
	for _, c := range cases {
		got := NameDim(c.name)
		if got.Known != c.known {
			t.Errorf("NameDim(%q).Known = %v, want %v", c.name, got.Known, c.known)
			continue
		}
		if c.known && got.Dim.String() != c.dim {
			t.Errorf("NameDim(%q) = %s, want %s", c.name, got.Dim, c.dim)
		}
	}
}

func TestDimAlgebra(t *testing.T) {
	v := Dim{W: 1, A: -1}
	k := Dim{K: 1}
	a := Dim{A: 1}
	// Peltier heat: S*T*I with S in V/K gives watts.
	w := v.Div(k).Mul(k).Mul(a)
	if (w != Dim{W: 1}) {
		t.Fatalf("V/K * K * A = %s, want W", w)
	}
	if !(Dim{}).IsDimensionless() || w.IsDimensionless() {
		t.Fatal("IsDimensionless misclassifies")
	}
	if got := (Dim{W: 1, A: -2}).String(); got != "W/A^2" {
		t.Fatalf("ohm String() = %q", got)
	}
	if got := (Dim{}).String(); got != "1" {
		t.Fatalf("dimensionless String() = %q", got)
	}
	if got := (Dim{K: -1}).String(); got != "1/K" {
		t.Fatalf("inverse-kelvin String() = %q", got)
	}
}

// summarize type-checks src and runs the summary pass, returning a
// lookup by function name.
func summarize(t *testing.T, src string) map[string]*FuncSummary {
	t.Helper()
	info, files, facts := checkSrc(t, src)
	facts.recordSummaries(info, files)
	out := make(map[string]*FuncSummary)
	facts.mu.Lock()
	for fn, s := range facts.summaries {
		out[fn.Name()] = s
	}
	facts.mu.Unlock()
	return out
}

func TestSummaryResultDimInference(t *testing.T) {
	sums := summarize(t, `package p
func rise(powerW, condWperK float64) float64 { return powerW / condWperK }
func named(q float64) (outK float64)         { return q }
func viaCall(powerW, condWperK float64) float64 { return 2 * rise(powerW, condWperK) }
`)
	if s := sums["rise"]; !s.Results[0].Known || s.Results[0].Dim.String() != "K" {
		t.Errorf("rise result = %+v, want inferred K", s.Results[0])
	}
	if s := sums["named"]; !s.Results[0].Known || s.Results[0].Dim.String() != "K" {
		t.Errorf("named result = %+v, want K from result name", s.Results[0])
	}
	if s := sums["viaCall"]; !s.Results[0].Known || s.Results[0].Dim.String() != "K" {
		t.Errorf("viaCall result = %+v, want K through callee summary", s.Results[0])
	}
}

func TestSummaryCanNaN(t *testing.T) {
	sums := summarize(t, `package p
import "math"
func raw(q float64) float64 { return math.Sqrt(q) }
func guarded(q float64) float64 {
	r := math.Sqrt(q)
	if math.IsNaN(r) { return 0 }
	return r
}
func caller(q float64) float64 { return raw(q) + 1 }
func callerGuards(q float64) float64 {
	v := raw(q)
	if math.IsInf(v, 0) { return 0 }
	return v
}
func nonFloat(q float64) error { _ = math.Sqrt(q); return nil }
`)
	for name, want := range map[string]bool{
		"raw": true, "guarded": false, "caller": true,
		"callerGuards": false, "nonFloat": false,
	} {
		if got := sums[name].CanNaN; got != want {
			t.Errorf("CanNaN(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestSummaryNeverTerminates(t *testing.T) {
	sums := summarize(t, `package p
func spin()                { for {} }
func drain(ch chan int)    { for range ch {} }
func block()               { select {} }
func normal(ch chan int)   { ch <- 1 }
`)
	for name, want := range map[string]bool{
		"spin": true, "drain": false, "block": true, "normal": false,
	} {
		if got := sums[name].NeverTerminates; got != want {
			t.Errorf("NeverTerminates(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestSummaryCacheEffects(t *testing.T) {
	info, files, facts := checkSrc(t, `package p
var ctr uint64
func NextGeneration() uint64 { ctr++; return ctr }
type sys struct {
	scale float64
	gen   uint64
}
func fresh() *sys                { return &sys{gen: NextGeneration()} }
func (s *sys) mutate(v float64)  { s.scale = v }
func (s *sys) bump(v float64)    { s.scale = v; s.gen = NextGeneration() }
func (s *sys) inval()            { s.gen = NextGeneration() }
func (s *sys) viaHelper(v float64) { s.scale = v; s.inval() }
func unrelated()                 { _ = NextGeneration() }
`)
	facts.recordSummaries(info, files)
	sums := make(map[string]*FuncSummary)
	facts.mu.Lock()
	for fn, s := range facts.summaries {
		sums[fn.Name()] = s
	}
	var sysType *types.Named
	for named := range facts.genTypes {
		sysType = named
	}
	facts.mu.Unlock()

	if sysType == nil {
		t.Fatal("sys not harvested as cache-keyed")
	}
	if field, ok := facts.GenField(types.NewPointer(sysType)); !ok || field != "gen" {
		t.Fatalf("GenField = %q,%v want gen,true", field, ok)
	}
	type want struct{ mut, bump bool }
	for name, w := range map[string]want{
		"fresh":     {false, true}, // composite literal is construction, not mutation
		"mutate":    {true, false},
		"bump":      {true, true},
		"inval":     {false, true},
		"viaHelper": {true, true}, // bump propagates through the receiver-typed callee
		"unrelated": {false, true},
	} {
		s := sums[name]
		if s.MutatesCacheKeyed != w.mut || s.BumpsGeneration != w.bump {
			t.Errorf("%s: mut=%v bump=%v, want mut=%v bump=%v",
				name, s.MutatesCacheKeyed, s.BumpsGeneration, w.mut, w.bump)
		}
	}
}
