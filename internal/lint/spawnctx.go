package lint

import (
	"go/ast"
	"strings"
)

// SpawnCtx tightens goroleak for request-path packages (the serving
// layer: internal/serve, internal/engine, and the commands). goroleak
// asks "can this goroutine ever reach return?" — a loop with a
// conditional return passes even when nothing ever flips the
// condition. SpawnCtx asks the stronger question a serving goroutine
// must answer: can its unconditional loops iterate forever WITHOUT
// observing cancellation? A loop body that can cycle back to its head
// through no ctx.Done() receive, ctx.Err() check, comma-ok receive,
// range-over-channel head, select polling a cancellation channel, or
// call to a summarized observer, keeps a drained server's goroutine
// spinning (or parked mid-loop) after every request is gone.
//
// For spawned function literals the loop analysis runs directly on the
// literal's body; for named callees the HasUnobservedLoop summary fact
// answers, so `go s.worker()` is caught at the spawn site even when
// the worker lives in another file. Conditional and range loops are
// exempt — their condition or channel close bounds them — and test
// files are exempt (tests spawn bounded helpers, not request-path
// workers).
var SpawnCtx = &Analyzer{
	Name: "spawnctx",
	Doc:  "request-path goroutines (internal/serve, internal/engine, cmd) must observe ctx.Done() or channel close on every unconditional-loop cycle",
	Run:  runSpawnCtx,
}

// spawnCtxPaths are the import-path fragments that mark a package as
// request-path: goroutines spawned there serve traffic and must be
// cancellable. The testdata fragment keeps the analyzer's own fixtures
// in scope.
var spawnCtxPaths = []string{
	"internal/serve",
	"internal/engine",
	"/cmd/",
	"testdata/spawnctx",
}

func spawnCtxTargeted(path string) bool {
	for _, frag := range spawnCtxPaths {
		if strings.Contains(path, frag) {
			return true
		}
	}
	return strings.HasPrefix(path, "cmd/")
}

func runSpawnCtx(pass *Pass) {
	if pass.Pkg == nil || !spawnCtxTargeted(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkSpawn(pass, g)
			return true
		})
	}
}

func checkSpawn(pass *Pass, g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		for _, pos := range pass.Facts.unobservedLoops(pass.Info, fun.Body) {
			pass.Reportf(pos, "goroutine loop can iterate forever without observing ctx.Done() or a channel close; add a ctx.Done()/comma-ok receive to the loop")
		}
	default:
		callee := staticCallee(pass.Info, g.Call)
		if callee == nil {
			return
		}
		if s := pass.Facts.Summary(callee); s != nil && s.HasUnobservedLoop {
			pass.Reportf(g.Pos(), "goroutine runs %s, whose loop can iterate forever without observing ctx.Done() or a channel close; add a cancellation exit to its loop", callee.Name())
		}
	}
}
