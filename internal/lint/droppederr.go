package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErrAPIs lists name fragments of solver and factorization APIs
// whose error results must never be discarded: a swallowed
// ErrNotPositiveDefinite from a Cholesky factorization turns the
// lambda_m runaway search (Section V.C.1) into silent garbage, and a
// dropped CG non-convergence error corrupts every downstream
// temperature. A callee matches when its name contains one of these
// fragments (case-sensitive).
var DroppedErrAPIs = []string{
	"Cholesky",
	"LU",
	"Solve",
	"LambdaM",
	"CG",
	"NewSystem",
	"IC0",
	"Factor",
	"Parse",
}

// DroppedErr flags calls to matching APIs whose error result is
// discarded — either the whole call used as a statement, or the error
// assigned to the blank identifier.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "flags discarded errors from solver/factorization APIs (Cholesky, LU, Solve, LambdaM, CG, NewSystem, ...)",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, nil)
				}
			case *ast.GoStmt:
				checkDroppedCall(pass, st.Call, nil)
			case *ast.DeferStmt:
				checkDroppedCall(pass, st.Call, nil)
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				checkDroppedCall(pass, call, st.Lhs)
			}
			return true
		})
	}
}

// checkDroppedCall reports the call if it returns an error that the
// surrounding statement throws away. lhs is nil for statement-position
// calls (every result dropped); otherwise the error result is dropped
// when its left-hand side is the blank identifier.
func checkDroppedCall(pass *Pass, call *ast.CallExpr, lhs []ast.Expr) {
	name := calleeName(call)
	if name == "" || !matchesDroppedErrAPI(name) {
		return
	}
	sig, ok := calleeSignature(pass, call)
	if !ok {
		return
	}
	errIdx := errorResultIndex(sig)
	if errIdx < 0 {
		return
	}
	if lhs == nil {
		pass.Reportf(call.Pos(), "error returned by %s is discarded; handle it or assign it explicitly", name)
		return
	}
	if errIdx >= len(lhs) {
		return
	}
	if id, ok := lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(lhs[errIdx].Pos(), "error returned by %s is assigned to _; handle it or add a teclint:ignore droppederr directive explaining why failure is impossible", name)
	}
}

func matchesDroppedErrAPI(name string) bool {
	for _, frag := range DroppedErrAPIs {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

func calleeSignature(pass *Pass, call *ast.CallExpr) (*types.Signature, bool) {
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// errorResultIndex returns the index of the last result whose type is
// error, or -1 if the signature returns no error.
func errorResultIndex(sig *types.Signature) int {
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if isErrorType(res.At(i).Type()) {
			return i
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}
