package lint

// dimflow is the interprocedural unit-dimension analyzer. The
// repository's physics code carries its units in names — limitK,
// tilePowerW, currentA, condWperK, Seebeck — a convention unitsanity
// already polices for kelvin slots. dimflow turns the convention into
// dimensional analysis: every named value gets a dimension over
// {K, W, A} (volts are W/A, ohms W/A^2), expressions combine them by
// the usual rules (multiply adds exponents, divide subtracts, add/
// subtract/compare require agreement), and calls resolve through the
// bottom-up function summaries so a mismatch crossing a function
// boundary — passing a current where a conductance is expected,
// adding K to the W/K a helper returns — is caught at the call site.
//
// The analysis only speaks when both sides are known and neither is a
// pure number: literals, loop counters, and unnamed intermediates mix
// with anything. That makes name collisions harmless (a geometry
// tileW "width" never meets a genuine watt in the same expression
// with both sides known) and keeps the rule silent on code that does
// not opt into the convention.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var DimFlow = &Analyzer{
	Name: "dimflow",
	Doc:  "physical dimensions inferred from unit-suffix names (tempK, condWperK, currentA) must agree across +,-,comparisons, assignments, call arguments, returns, and struct fields, with callee dimensions resolved through function summaries",
	Run:  runDimFlow,
}

func runDimFlow(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDimFlow(pass, fd)
		}
	}
}

func checkDimFlow(pass *Pass, fd *ast.FuncDecl) {
	reported := make(map[token.Pos]bool)
	ev := &dimEval{info: pass.Info, facts: pass.Facts}
	ev.onConflict = func(n ast.Node, op string, a, b Dim) {
		if !reported[n.Pos()] {
			reported[n.Pos()] = true
			pass.Reportf(n.Pos(), "dimension mismatch: %s %s %s", a, op, b)
		}
	}
	var results *types.Tuple
	if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok {
			results = sig.Results()
		}
	}
	walkDimBody(pass, ev, fd.Body, results)
}

// walkDimBody checks one function body, recursing into function
// literals with their own result tuple so return statements are
// matched against the right signature.
func walkDimBody(pass *Pass, ev *dimEval, body *ast.BlockStmt, results *types.Tuple) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			var inner *types.Tuple
			if sig, ok := pass.TypeOf(n).(*types.Signature); ok {
				inner = sig.Results()
			}
			walkDimBody(pass, ev, n.Body, inner)
			return false
		case *ast.BinaryExpr:
			// Evaluation fires the additive/comparison conflict
			// callback; nested operands dedupe via ev's reported map.
			ev.exprDim(n)
		case *ast.AssignStmt:
			checkDimAssign(pass, ev, n)
		case *ast.ValueSpec:
			checkDimValueSpec(pass, ev, n)
		case *ast.CallExpr:
			checkDimCall(pass, ev, n)
		case *ast.ReturnStmt:
			checkDimReturn(pass, ev, results, n)
		case *ast.CompositeLit:
			checkDimComposite(pass, ev, n)
		}
		return true
	})
}

// dimsDisagree is the single speak-up condition: both dimensions
// known, neither a pure number, and they differ.
func dimsDisagree(a, b DimInfo) bool {
	return a.Known && b.Known &&
		!a.Dim.IsDimensionless() && !b.Dim.IsDimensionless() &&
		a.Dim != b.Dim
}

func checkDimAssign(pass *Pass, ev *dimEval, s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		name := assignTargetName(lhs)
		if name == "" {
			continue
		}
		want := NameDim(name)
		got := ev.exprDim(s.Rhs[i])
		if dimsDisagree(want, got) {
			pass.Reportf(s.Rhs[i].Pos(), "assigning %s value to %q (%s)", got.Dim, name, want.Dim)
		}
	}
}

func checkDimValueSpec(pass *Pass, ev *dimEval, vs *ast.ValueSpec) {
	for i, nameID := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		want := NameDim(nameID.Name)
		got := ev.exprDim(vs.Values[i])
		if dimsDisagree(want, got) {
			pass.Reportf(vs.Values[i].Pos(), "assigning %s value to %q (%s)", got.Dim, nameID.Name, want.Dim)
		}
	}
}

// assignTargetName extracts the declared name an assignment writes:
// a plain identifier or the field of a selector.
func assignTargetName(lhs ast.Expr) string {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return ""
		}
		return lhs.Name
	case *ast.SelectorExpr:
		return lhs.Sel.Name
	}
	return ""
}

// checkDimCall matches argument dimensions against the callee's
// summarized (or signature-named) parameter dimensions.
func checkDimCall(pass *Pass, ev *dimEval, call *ast.CallExpr) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	callee := staticCallee(pass.Info, call)
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := paramDims(pass.Facts, callee, sig)
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed-- // leave variadic tails unchecked
	}
	for i, arg := range call.Args {
		if i >= fixed {
			break
		}
		want := params[i]
		got := ev.exprDim(arg)
		if dimsDisagree(want, got) {
			pass.Reportf(arg.Pos(), "passing %s value as %q (%s) in call to %s", got.Dim, sig.Params().At(i).Name(), want.Dim, callee.Name())
		}
	}
}

// paramDims answers parameter dimensions from the summary store when
// the callee was summarized, falling back to the signature's names
// (which go/types keeps for source-imported stdlib too).
func paramDims(facts *FactStore, callee *types.Func, sig *types.Signature) []DimInfo {
	if s := facts.Summary(callee); s != nil && len(s.Params) == sig.Params().Len() {
		return s.Params
	}
	dims := make([]DimInfo, sig.Params().Len())
	for i := range dims {
		dims[i] = NameDim(sig.Params().At(i).Name())
	}
	return dims
}

// checkDimReturn matches returned expressions against the enclosing
// function's named results.
func checkDimReturn(pass *Pass, ev *dimEval, results *types.Tuple, ret *ast.ReturnStmt) {
	if results == nil || len(ret.Results) != results.Len() {
		return
	}
	for i, e := range ret.Results {
		name := results.At(i).Name()
		if name == "" {
			continue
		}
		want := NameDim(name)
		got := ev.exprDim(e)
		if dimsDisagree(want, got) {
			pass.Reportf(e.Pos(), "returning %s value as result %q (%s)", got.Dim, name, want.Dim)
		}
	}
}

// checkDimComposite matches struct-literal field values against the
// field names' dimensions: Config{LimitK: powerW} is a mixed unit
// even though both are float64.
func checkDimComposite(pass *Pass, ev *dimEval, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		want := NameDim(key.Name)
		got := ev.exprDim(kv.Value)
		if dimsDisagree(want, got) {
			pass.Reportf(kv.Value.Pos(), "field %q (%s) set from %s value", key.Name, want.Dim, got.Dim)
		}
	}
}
