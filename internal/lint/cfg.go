package lint

// cfg.go builds an intraprocedural control-flow graph over a single
// function body. The CFG is the substrate for the path-sensitive
// analyzers (ctxflow, validatefirst, errpath, lockbalance): the purely
// syntactic rules can say "this statement looks wrong", but only a CFG
// can say "this error escapes unchecked on the early-return path" or
// "this Lock has no Unlock when the loop breaks" — the class of silent
// bug that corrupts Table I / Figure 6 numerically instead of crashing.
//
// Design notes:
//
//   - Blocks hold a flat []ast.Node slice in execution order. Compound
//     statements never appear whole: an *ast.IfStmt contributes its
//     Init statement and Cond expression to the predecessor block and
//     nothing else; loops contribute their header expressions to the
//     header block. The two exceptions are *ast.RangeStmt and
//     *ast.TypeSwitchStmt, whose per-iteration (resp. per-case)
//     bindings are inseparable from the statement node itself; they
//     appear in their header block and transfer functions must treat
//     them shallowly (Key/Value/X resp. Assign), never recursing into
//     the nested body.
//   - Terminating calls (panic, os.Exit, log.Fatal*, runtime.Goexit,
//     and module-local functions the FactStore proved never return)
//     edge straight to Exit, so "after fatal(err)" is not a path.
//   - goto/labelled break/continue are supported; computed control flow
//     (no such thing in Go) and inter-procedural effects are not.
//   - Code made unreachable by return/branch statements still gets
//     blocks (they may carry labels), but no predecessor edges; the
//     dataflow engine never visits them.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Block is one basic block: a maximal run of nodes with a single entry
// and single exit in the control-flow graph.
type Block struct {
	// Index is the block's position in CFG.Blocks, stable across runs.
	Index int
	// Kind is a human-readable label ("entry", "if.then", "for.head",
	// ...) used by the String dump and the structural tests.
	Kind string
	// Nodes are the statements and expressions executed by this block,
	// in order. See the package comment for which node kinds appear.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
	// Loop is the loop statement this block heads (*ast.ForStmt or
	// *ast.RangeStmt), nil for every other block. It lets loop-shaped
	// analyses (spawnctx's unobserved-cycle check) map a syntactic loop
	// to its header without re-deriving the builder's block layout.
	Loop ast.Stmt
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the first block executed; Exit is the single synthetic
	// block every return, panic, and fall-off-the-end path reaches.
	Entry, Exit *Block
	// Blocks lists every block in creation order; Blocks[i].Index == i.
	Blocks []*Block
}

// String renders the CFG in the compact one-line-per-block form pinned
// by the structural tests:
//
//	b0[entry] n=2 -> b1 b2
//	b1[if.then] n=1 -> b3
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d[%s] n=%d ->", b.Index, b.Kind, len(b.Nodes))
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Preds computes the predecessor lists of every block.
func (g *CFG) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// BuildCFG constructs the CFG of body. terminates reports whether a
// call expression never returns (panic, os.Exit, ...); nil means only
// the builtin panic terminates. Pass the function body of an
// *ast.FuncDecl or *ast.FuncLit; nested function literals inside the
// body are treated as opaque values (their bodies are separate CFGs).
func BuildCFG(body *ast.BlockStmt, terminates func(*ast.CallExpr) bool) *CFG {
	b := &cfgBuilder{
		cfg:        &CFG{},
		terminates: terminates,
		labels:     make(map[string]*labelInfo),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.cfg.Exit) // fall off the end
	return b.cfg
}

// labelInfo tracks one label: the block a goto jumps to, plus the
// break/continue targets when the label names a loop/switch/select.
type labelInfo struct {
	target         *Block // goto target (start of the labelled statement)
	breakTarget    *Block
	continueTarget *Block
}

type cfgBuilder struct {
	cfg        *CFG
	cur        *Block
	terminates func(*ast.CallExpr) bool

	// breakStack / continueStack are the innermost targets for
	// unlabelled break and continue statements.
	breakStack    []*Block
	continueStack []*Block
	// fallStack is the target of a fallthrough in the current switch.
	fallStack []*Block
	labels    map[string]*labelInfo
	// pendingLabel is the label naming the statement about to be built,
	// consumed by the loop/switch/select builders to register
	// labelled break/continue targets.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// deadBlock starts a fresh block with no predecessors, for code
// following a terminator (return, break, goto, panic).
func (b *cfgBuilder) deadBlock() {
	b.cur = b.newBlock("unreachable")
}

// takeLabel consumes the pending label, registering its break/continue
// targets, and returns its name (empty when the statement is unlabelled).
func (b *cfgBuilder) takeLabel(breakTo, continueTo *Block) string {
	name := b.pendingLabel
	b.pendingLabel = ""
	if name == "" {
		return ""
	}
	li := b.labelRef(name)
	li.breakTarget = breakTo
	li.continueTarget = continueTo
	return name
}

// labelRef returns the label record for name, creating it (with a
// fresh goto-target block) on first reference so forward gotos work.
func (b *cfgBuilder) labelRef(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{target: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// callTerminates reports whether the call never returns: the builtin
// panic, or anything the caller-provided predicate recognizes
// (os.Exit, log.Fatal*, module-local fatal helpers, ...).
func (b *cfgBuilder) callTerminates(call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
		// Builtin panic unless shadowed; with type info the caller's
		// predicate gives the authoritative answer, this is the
		// fallback for bare parses (fuzzing).
		return true
	}
	return b.terminates != nil && b.terminates(call)
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// A label names exactly the statement it precedes; any other
	// statement kind consumes it as a plain goto target only.
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
	default:
		b.pendingLabel = ""
	}

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.labelRef(s.Label.Name)
		b.edge(b.cur, li.target)
		b.cur = li.target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.deadBlock()

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.callTerminates(call) {
			b.edge(b.cur, b.cfg.Exit)
			b.deadBlock()
		}

	case *ast.EmptyStmt:
		// no effect

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, DeferStmt,
		// GoStmt: straight-line nodes.
		b.add(s)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	var target *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				target = li.breakTarget
			}
		} else if n := len(b.breakStack); n > 0 {
			target = b.breakStack[n-1]
		}
	case token.CONTINUE:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				target = li.continueTarget
			}
		} else if n := len(b.continueStack); n > 0 {
			target = b.continueStack[n-1]
		}
	case token.GOTO:
		if s.Label != nil {
			target = b.labelRef(s.Label.Name).target
		}
	case token.FALLTHROUGH:
		if n := len(b.fallStack); n > 0 {
			target = b.fallStack[n-1]
		}
	}
	if target != nil {
		b.edge(b.cur, target)
	} else {
		// Malformed code (break outside a loop, unknown label): treat
		// as an exit so analysis stays conservative instead of
		// panicking — the type checker rejects such code anyway.
		b.edge(b.cur, b.cfg.Exit)
	}
	b.deadBlock()
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Cond != nil {
		b.add(s.Cond)
	}
	cond := b.cur
	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur

	var elseEnd *Block
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	after := b.newBlock("if.after")
	b.edge(thenEnd, after)
	if elseEnd != nil {
		b.edge(elseEnd, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	head.Loop = s
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	// continue jumps to the post statement when present, else the head.
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.takeLabel(after, post)
	b.breakStack = append(b.breakStack, after)
	b.continueStack = append(b.continueStack, post)

	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, post)
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	}

	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.continueStack = b.continueStack[:len(b.continueStack)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock("range.head")
	head.Loop = s
	b.edge(b.cur, head)
	// The RangeStmt node itself carries the per-iteration Key/Value
	// bindings and the ranged expression X; transfer functions treat it
	// shallowly.
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	b.edge(head, body)
	b.edge(head, after)

	b.takeLabel(after, head)
	b.breakStack = append(b.breakStack, after)
	b.continueStack = append(b.continueStack, head)

	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head)

	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.continueStack = b.continueStack[:len(b.continueStack)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	tag := b.cur
	after := b.newBlock("switch.after")
	b.takeLabel(after, nil)
	b.breakStack = append(b.breakStack, after)

	b.caseClauses(s.Body, tag, after)

	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	// The Assign statement (`v := x.(type)` or bare `x.(type)`) holds
	// the scrutinized expression; per-clause bindings live in
	// types.Info.Implicits keyed by the CaseClause.
	b.add(s.Assign)
	tag := b.cur
	after := b.newBlock("switch.after")
	b.takeLabel(after, nil)
	b.breakStack = append(b.breakStack, after)

	b.caseClauses(s.Body, tag, after)

	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.cur = after
}

// caseClauses wires the clause blocks of a switch or type switch:
// every clause is entered from the tag block, falls through to the
// next clause body on an explicit fallthrough, and exits to after.
//
// Case expressions live in the tag block, not the clause blocks:
// dispatch evaluates them (in order, until one matches) before any
// clause body runs, so their reads must be visible on every outgoing
// path — including the no-match edge straight to after. A tagless
// `switch { case errors.Is(err, ...): }` reads err even when no case
// matches; placing the expressions per-clause would hide that read
// from the no-match path and make errpath-style analyses report
// dispatch-checked errors as dropped.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, tag, after *Block) {
	var clauses []*ast.CaseClause
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		tag.Nodes = append(tag.Nodes, exprNodes(cc.List)...)
		blocks[i] = b.newBlock("case")
		b.edge(tag, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(tag, after)
	}
	for i, cc := range clauses {
		// A fallthrough (only legal as the final statement) continues
		// into the next clause's block.
		fallTo := after
		if i+1 < len(blocks) {
			fallTo = blocks[i+1]
		}
		b.fallStack = append(b.fallStack, fallTo)
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
		b.fallStack = b.fallStack[:len(b.fallStack)-1]
	}
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock("select.after")
	b.takeLabel(after, nil)
	b.breakStack = append(b.breakStack, after)

	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.case")
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	// A select with no cases blocks forever: no edge from head to
	// after, and after is only reachable through a clause.

	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.cur = after
}

func exprNodes(exprs []ast.Expr) []ast.Node {
	nodes := make([]ast.Node, len(exprs))
	for i, e := range exprs {
		nodes[i] = e
	}
	return nodes
}

// TerminatesCall returns a predicate for BuildCFG that recognizes the
// standard never-returning calls — panic, os.Exit, runtime.Goexit,
// log.Fatal/Fatalf/Fatalln, (*testing.T).Fatal-family — plus any
// module-local function the FactStore proved no-return (e.g. the CLI
// `fatal` helpers that print and os.Exit).
func TerminatesCall(info *types.Info, facts *FactStore) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "panic" {
				if obj, ok := info.Uses[fn]; !ok || obj == nil || obj == types.Universe.Lookup("panic") {
					return true
				}
			}
			if f, ok := info.Uses[fn].(*types.Func); ok {
				return facts.NoReturn(f)
			}
		case *ast.SelectorExpr:
			obj, ok := info.Uses[fn.Sel].(*types.Func)
			if !ok {
				return false
			}
			if stdNoReturn(obj) {
				return true
			}
			return facts.NoReturn(obj)
		}
		return false
	}
}

// stdNoReturn recognizes the standard library's terminating functions.
func stdNoReturn(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	case "testing":
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "SkipNow", "Skip", "Skipf":
			return true
		}
	}
	return false
}
