package lint

// All returns every analyzer in the suite, in the fixed order used by
// cmd/teclint. The order only affects tie-breaking of diagnostics at
// identical positions; Run sorts findings by position and rule name.
func All() []*Analyzer {
	return []*Analyzer{
		CacheGen,
		ChanFlow,
		CtxFlow,
		DimFlow,
		DroppedErr,
		ErrPath,
		FloatEq,
		GoroLeak,
		LockBalance,
		LockCopy,
		MapOrder,
		MutexBlock,
		NaNFlow,
		ObsClock,
		OnceMisuse,
		SpawnCtx,
		TestHelper,
		TypedErr,
		UnitSanity,
		ValidateFirst,
		WGBalance,
	}
}
