package lint

// nanflow is the interprocedural NaN/Inf taint analysis. The solver's
// conditioning-sensitive spots — matrix assembly, factorizations, and
// the factor cache key — silently absorb a NaN and emit plausible
// wrong temperatures, so any value that *can* be NaN or ±Inf must be
// checked before it reaches them. Sources are the standard producers
// (math.Sqrt, Log family, Asin/Acos, math.NaN/Inf — division is
// deliberately excluded as hopelessly noisy in solver code) plus any
// module function whose bottom-up summary says CanNaN (RunawayLimit
// returning +Inf for an unconditionally stable array is the canonical
// case). Sinks are matrix-entry and factorization entry points
// (Factor, SolveAt, Matrix, AddScaledDiag, sparse Builder.Add/AddSym)
// and cache-key composite literals. Sanitizers are the sanctioned
// checks math.IsNaN/math.IsInf/num.IsFinite; passing a tainted value
// to any non-sink call also stops tracking it (the callee may guard
// on the caller's behalf), mirroring validatefirst's escape policy.
//
// The analysis is path-sensitive over the CFG: a value checked on
// every path to the sink is clean, one checked on only some paths is
// still reported.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var NaNFlow = &Analyzer{
	Name: "nanflow",
	Doc:  "values that can be NaN/Inf (math.Sqrt/Log, CanNaN callees per function summary) must pass math.IsNaN/IsInf or num.IsFinite before flowing into matrix entries, factorizations, or cache keys",
	Run:  runNaNFlow,
}

func runNaNFlow(pass *Pass) {
	forEachFuncBody(pass, func(body *ast.BlockStmt) {
		a := &nanAnalysis{pass: pass}
		g := BuildCFG(body, pass.Terminates)
		res := RunForward(g, a)
		reportNaNFlow(pass, a, g, res)
	})
}

// nanFact records where a possibly-NaN value came from, for the
// diagnostic.
type nanFact struct {
	origin token.Pos
	desc   string // "math.Sqrt", "RunawayLimit result"
}

// nanState maps tainted locals to their origin. Immutable; transfer
// clones before modifying.
type nanState map[types.Object]nanFact

type nanAnalysis struct{ pass *Pass }

func (a *nanAnalysis) Entry() FlowState { return nanState{} }

func (a *nanAnalysis) Equal(x, y FlowState) bool {
	sx, sy := x.(nanState), y.(nanState)
	if len(sx) != len(sy) {
		return false
	}
	for k, v := range sx {
		w, ok := sy[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

// Join unions taint: a value unchecked on either incoming path is
// still dangerous.
func (a *nanAnalysis) Join(x, y FlowState) FlowState {
	sx, sy := x.(nanState), y.(nanState)
	out := make(nanState, len(sx)+len(sy))
	for k, v := range sx {
		out[k] = v
	}
	for k, v := range sy {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func (a *nanAnalysis) Transfer(n ast.Node, in FlowState) FlowState {
	st := in.(nanState)
	out := st
	cloned := false
	ensure := func() nanState {
		if !cloned {
			c := make(nanState, len(st)+1)
			for k, v := range st {
				c[k] = v
			}
			out, cloned = c, true
		}
		return out
	}

	// Pass 1: calls. A guard call clears its argument; a non-sink,
	// non-source call that receives a tainted variable stops tracking
	// it (the callee may guard it for us). Sink calls never clear —
	// the reporting pass flags them.
	eachShallowCall(n, func(call *ast.CallExpr) {
		if arg, ok := isNaNGuardCall(call); ok {
			if obj := usedIdent(a.pass, arg); obj != nil {
				if _, tracked := out[obj]; tracked {
					delete(ensure(), obj)
				}
			}
			return
		}
		if isNaNSink(a.pass, call) || isMathSource(a.pass.Info, call) {
			return
		}
		for _, obj := range sinkOperands(a.pass, call) {
			if _, tracked := out[obj]; tracked {
				delete(ensure(), obj)
			}
		}
	})

	// Pass 2: assignments create, propagate, and kill taint.
	switch s := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			obj := assignedObj(a.pass, lhs)
			if obj == nil {
				continue
			}
			if fact, tainted := a.exprTaint(s.Rhs[i], out); tainted {
				ensure()[obj] = fact
			} else if _, tracked := out[obj]; tracked {
				delete(ensure(), obj)
			}
		}
		// Multi-value form x, err := f(): taint every float result of
		// a CanNaN callee.
		if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if fact, tainted := a.callTaint(call, out); tainted {
					for _, lhs := range s.Lhs {
						obj := assignedObj(a.pass, lhs)
						if obj != nil && isFloat(obj.Type()) {
							ensure()[obj] = fact
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if obj := assignedObj(a.pass, e); obj != nil {
				if _, tracked := out[obj]; tracked {
					delete(ensure(), obj)
				}
			}
		}
	}
	if cloned {
		return out
	}
	return st
}

// exprTaint reports whether e can be NaN/Inf under the current state,
// with the originating fact.
func (a *nanAnalysis) exprTaint(e ast.Expr, st nanState) (nanFact, bool) {
	var fact nanFact
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := a.pass.Info.Uses[n]; obj != nil {
				if f, tainted := st[obj]; tainted {
					fact, found = f, true
				}
			}
		case *ast.CallExpr:
			if f, tainted := a.callTaint(n, st); tainted {
				fact, found = f, true
				return false
			}
		}
		return true
	})
	return fact, found
}

// callTaint classifies a call as a NaN/Inf source: a std math
// producer or a module callee whose summary says CanNaN.
func (a *nanAnalysis) callTaint(call *ast.CallExpr, _ nanState) (nanFact, bool) {
	if isMathSource(a.pass.Info, call) {
		return nanFact{origin: call.Pos(), desc: "math." + calleeName(call)}, true
	}
	if callee := staticCallee(a.pass.Info, call); callee != nil {
		if s := a.pass.Facts.Summary(callee); s != nil && s.CanNaN {
			return nanFact{origin: call.Pos(), desc: callee.Name() + " result"}, true
		}
	}
	return nanFact{}, false
}

// nanSinkNames are the method/function names guarding matrix entries
// and factorizations. Add/AddSym are restricted to sparse-builder
// receivers below.
var nanSinkNames = map[string]bool{
	"Factor": true, "SolveAt": true, "Matrix": true, "AddScaledDiag": true,
}

// isNaNSink reports whether the call is a NaN-sensitive entry point.
func isNaNSink(pass *Pass, call *ast.CallExpr) bool {
	name := calleeName(call)
	if nanSinkNames[name] {
		return true
	}
	if name != "Add" && name != "AddSym" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named, ok := derefType(t).(*types.Named)
	return ok && named.Obj().Name() == "Builder"
}

// isCacheKeyLit reports whether the composite literal builds a cache
// key (a struct type named Key).
func isCacheKeyLit(pass *Pass, lit *ast.CompositeLit) bool {
	t := pass.TypeOf(lit)
	if t == nil {
		return false
	}
	named, ok := derefType(t).(*types.Named)
	return ok && named.Obj().Name() == "Key"
}

// reportNaNFlow replays reachable blocks against the fixpoint and
// flags tainted values reaching sinks.
func reportNaNFlow(pass *Pass, a *nanAnalysis, g *CFG, res *FlowResult) {
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, fact nanFact, sink string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		origin := pass.Fset.Position(fact.origin)
		pass.Reportf(pos, "possible NaN/Inf from %s (line %d) reaches %s; check with math.IsNaN/math.IsInf or num.IsFinite first", fact.desc, origin.Line, sink)
	}
	for _, b := range g.Blocks {
		stIn, ok := res.In[b]
		if !ok {
			continue
		}
		st := stIn
		for _, n := range b.Nodes {
			cur := st.(nanState)
			ast.Inspect(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					if !isNaNSink(pass, x) {
						return true
					}
					for _, arg := range x.Args {
						if fact, tainted := a.exprTaint(arg, cur); tainted {
							report(x.Pos(), fact, calleeName(x)+" call")
						}
					}
				case *ast.CompositeLit:
					if !isCacheKeyLit(pass, x) {
						return true
					}
					for _, elt := range x.Elts {
						e := elt
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							e = kv.Value
						}
						if fact, tainted := a.exprTaint(e, cur); tainted {
							report(x.Pos(), fact, "cache key")
						}
					}
				}
				return true
			})
			st = a.Transfer(n, st)
		}
	}
}

// usedIdent resolves e (possibly parenthesized) to a used variable.
func usedIdent(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.Uses[id]
}
