package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose body accumulates into a
// floating-point variable or appends to a slice declared outside the
// loop. Go's map iteration order is randomized per run; feeding it into
// float accumulation makes the rounding order — and hence the low bits
// of every reproduced Table I / Figure 6 number — nondeterministic, and
// appending builds result slices in random order. Fix by iterating
// sorted keys, or suppress with "teclint:ignore maporder <reason>" when
// order provably cannot matter (e.g. max/min reductions or integer
// counts).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags range-over-map loops that accumulate floats or append results in nondeterministic order",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		// Collect function bodies up front so each map-range can find
		// its innermost enclosing body by position; the sorted-keys
		// idiom (append inside the loop, sort.X afterwards) needs the
		// surrounding function to be recognized as deterministic.
		var bodies []*ast.BlockStmt
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if kind := mapOrderHazard(pass, rs, innermostBody(bodies, rs)); kind != "" {
				pass.Reportf(rs.For, "range over map with %s in the loop body is order-dependent; iterate sorted keys for deterministic output", kind)
			}
			return true
		})
	}
}

// innermostBody returns the smallest function body enclosing n.
func innermostBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || (best.End()-best.Pos()) > (b.End()-b.Pos()) {
				best = b
			}
		}
	}
	return best
}

// mapOrderHazard scans the loop body for order-sensitive effects on
// variables declared outside the range statement, returning a short
// description of the first hazard found ("" if none). enclosing is the
// surrounding function body, used to whitelist appends whose target
// slice is later sorted.
func mapOrderHazard(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) string {
	hazard := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if pass.IsFloat(lhs) && declaredOutside(pass, lhs, rs) && !keyedByLoopVar(pass, lhs, rs) {
					hazard = "floating-point accumulation"
					return false
				}
			}
		case token.ASSIGN:
			// x = append(x, ...) onto an outer slice — unless x is
			// later sorted in the enclosing function (the canonical
			// deterministic sorted-keys idiom).
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) {
					continue
				}
				if i < len(as.Lhs) && declaredOutside(pass, as.Lhs[i], rs) && !sortedLater(pass, as.Lhs[i], rs, enclosing) {
					hazard = "append to an outer slice"
					return false
				}
			}
			// Plain x = x + v float accumulation.
			for i, rhs := range as.Rhs {
				be, ok := rhs.(*ast.BinaryExpr)
				if !ok || i >= len(as.Lhs) {
					continue
				}
				switch be.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					lhs := as.Lhs[i]
					if pass.IsFloat(lhs) && declaredOutside(pass, lhs, rs) && mentionsExpr(be, lhs) && !keyedByLoopVar(pass, lhs, rs) {
						hazard = "floating-point accumulation"
						return false
					}
				}
			}
		}
		return true
	})
	return hazard
}

// declaredOutside reports whether the variable behind expr was declared
// outside the range statement rs. Non-identifier lvalues (index and
// field expressions rooted at outer objects) count as outside.
func declaredOutside(pass *Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	id := rootIdent(expr)
	if id == nil {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// keyedByLoopVar reports whether lhs is an element expression whose
// index mentions the loop's key or value variable — e.g.
// out[k] += v inside `for k, v := range m`. Each iteration then writes
// a distinct slot, so iteration order cannot change the result.
func keyedByLoopVar(pass *Pass, lhs ast.Expr, rs *ast.RangeStmt) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	loopObjs := make(map[types.Object]bool)
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				loopObjs[obj] = true
			}
			if obj := pass.Info.Uses[id]; obj != nil {
				loopObjs[obj] = true
			}
		}
	}
	if len(loopObjs) == 0 {
		return false
	}
	found := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && loopObjs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortedLater reports whether the slice behind lhs is passed to a
// sorting call (sort.*, slices.Sort*) somewhere after the range loop in
// the enclosing function body, making the append order immaterial.
func sortedLater(pass *Pass, lhs ast.Expr, rs *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	root := rootIdent(lhs)
	if root == nil || enclosing == nil {
		return false
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			id := rootIdent(arg)
			if id == nil {
				continue
			}
			if o := pass.Info.Uses[id]; o != nil && o == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort-package calls and anything whose callee
// name contains "Sort" (slices.Sort, sort.Slice, custom SortTiles...).
func isSortCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return strings.Contains(fn.Name, "Sort") || strings.Contains(fn.Name, "sort")
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok && (x.Name == "sort" || x.Name == "slices") {
			return true
		}
		return strings.Contains(fn.Sel.Name, "Sort")
	}
	return false
}

// mentionsExpr reports whether tree contains an identifier with the
// same root name as lhs (the self-reference in x = x + v).
func mentionsExpr(tree ast.Expr, lhs ast.Expr) bool {
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(tree, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == root.Name {
			found = true
			return false
		}
		return true
	})
	return found
}
