package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the repository's context-plumbing contract inside
// any function (or function literal) that has a context.Context
// parameter in scope:
//
//  1. a call to a function or method that has a Ctx sibling (Foo ->
//     FooCtx, taking a context.Context first) must use the sibling —
//     calling the plain variant silently severs cancellation, which is
//     how a -timeout run ends up completing a full lambda_m search it
//     was told to abandon;
//  2. context.Background() / context.TODO() must not be called — the
//     in-scope ctx is the one to pass;
//  3. the context must not be stored into a struct field via
//     assignment (x.f = ctx): a context outlives its call once
//     latched into a long-lived struct. Constructing an options
//     literal (CurrentOptions{Ctx: ctx}) that is handed straight to a
//     callee is the repository's sanctioned forwarding idiom and is
//     not flagged.
//
// A call that already passes any context-typed argument is considered
// to forward cancellation and is not flagged under rule 1.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "in ctx-taking functions: use FooCtx variants, never context.Background/TODO, never store ctx in a struct field",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Body != nil {
				w := &ctxWalker{pass: pass, inScope: make(map[types.Object]bool)}
				w.addParams(fd.Type)
				w.walk(fd.Body)
			}
			return false
		})
	}
}

// ctxWalker walks one function body, tracking the set of named
// context.Context parameters in scope (outer function plus any
// enclosing function literals at the current depth).
type ctxWalker struct {
	pass    *Pass
	inScope map[types.Object]bool
}

// addParams records the named context parameters of a function type,
// returning the objects added so the caller can remove them when the
// literal's scope ends.
func (w *ctxWalker) addParams(ft *ast.FuncType) []types.Object {
	var added []types.Object
	if ft == nil || ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := w.pass.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) && !w.inScope[obj] {
				w.inScope[obj] = true
				added = append(added, obj)
			}
		}
	}
	return added
}

func (w *ctxWalker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			added := w.addParams(n.Type)
			w.walk(n.Body)
			for _, obj := range added {
				delete(w.inScope, obj)
			}
			return false
		case *ast.AssignStmt:
			w.checkStore(n)
		case *ast.CallExpr:
			w.checkCall(n)
		}
		return true
	})
}

// ctxInScope reports whether any context parameter is visible.
func (w *ctxWalker) ctxInScope() bool { return len(w.inScope) > 0 }

// checkStore flags `x.f = ctx` where ctx is an in-scope context
// parameter: storing a context in a struct field retains it beyond
// the call.
func (w *ctxWalker) checkStore(assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		id, ok := assign.Rhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if obj := w.pass.Info.Uses[id]; obj != nil && w.inScope[obj] {
			w.pass.Reportf(sel.Pos(), "context parameter %s is stored in struct field %s; pass it as an argument (or an options literal forwarded to the callee) instead of retaining it", id.Name, sel.Sel.Name)
		}
	}
}

func (w *ctxWalker) checkCall(call *ast.CallExpr) {
	if !w.ctxInScope() {
		return
	}
	// Rule 2: context.Background()/TODO() with a ctx in scope.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := w.pass.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "context" {
				w.pass.Reportf(call.Pos(), "context.%s() called while a context parameter is in scope; pass the caller's ctx", sel.Sel.Name)
				return
			}
		}
	}
	// Rule 1: a Ctx sibling exists and no context argument is passed.
	callee := calleeFunc(w.pass, call)
	if callee == nil {
		return
	}
	for _, arg := range call.Args {
		if t := w.pass.TypeOf(arg); t != nil && isContextType(t) {
			return // forwards some context already
		}
	}
	if variant := w.pass.Facts.CtxVariant(callee); variant != nil {
		w.pass.Reportf(call.Pos(), "%s does not forward the in-scope ctx; call %s so cancellation propagates", callee.Name(), variant.Name())
	}
}

// calleeFunc resolves the called function or method object, or nil for
// conversions, builtins, and indirect calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
