package lint

// callgraph.go builds a package-level static call graph over the
// loader's type information. It is the substrate for the bottom-up
// function summaries in summary.go: summaries must be computed callees
// first, so that when dimflow asks "what unit does peak() return" or
// nanflow asks "can COP() be NaN", the answer for every callee of the
// function under analysis is already in the store.
//
// The graph is deliberately modest — exactly what a summary pass
// needs and nothing more:
//
//   - Nodes are the functions and methods *declared in the package
//     being type-checked* (ast.FuncDecl with a body). Function
//     literals are not nodes; the analyzers treat them as opaque
//     values and analyze their bodies separately.
//   - Edges are static calls resolved through types.Info.Uses: direct
//     calls (f(...)), method calls (x.M(...)), and package-qualified
//     calls (pkg.F(...)). Calls through function values, interface
//     method calls, and go/defer of computed expressions contribute no
//     edge — the summary layer treats an unresolved callee as unknown,
//     which every client interprets conservatively.
//   - Cross-package callees appear as edge targets but not nodes; the
//     loader type-checks imports before importers, so their summaries
//     are already final by the time this package's are computed.
//
// Bottom-up order is strongly-connected-component order: Tarjan's
// algorithm yields SCCs with every callee-SCC emitted before its
// callers, so recursion (direct or mutual) becomes one SCC whose
// summaries are iterated to a local fixpoint.

import (
	"go/ast"
	"go/types"
	"sort"
)

// CGNode is one declared function in the call graph.
type CGNode struct {
	// Fn is the declared function object.
	Fn *types.Func
	// Decl is its declaration, Body non-nil.
	Decl *ast.FuncDecl
	// Callees lists the statically resolved call targets, deduplicated,
	// in first-call order (deterministic: source order, not map order).
	Callees []*types.Func
}

// CallGraph is the static call graph of one type-checked package.
type CallGraph struct {
	// Nodes maps each declared function to its node.
	Nodes map[*types.Func]*CGNode
	// order preserves declaration order for deterministic traversal.
	order []*CGNode
}

// BuildCallGraph constructs the call graph of the declared functions
// in files, resolving callees through info.
func BuildCallGraph(info *types.Info, files []*ast.File) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CGNode)}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CGNode{Fn: fn, Decl: fd}
			seen := make(map[*types.Func]bool)
			// Collect static callees in source order, including calls
			// inside nested function literals: a literal runs (or may
			// run) on behalf of its enclosing function, so for summary
			// purposes its callees belong to the declaring function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := staticCallee(info, call); callee != nil && !seen[callee] {
					seen[callee] = true
					node.Callees = append(node.Callees, callee)
				}
				return true
			})
			g.Nodes[fn] = node
			g.order = append(g.order, node)
		}
	}
	return g
}

// staticCallee resolves the *types.Func a call statically targets, or
// nil for builtins, conversions, and calls through function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// SCCs returns the strongly connected components of the graph in
// bottom-up (reverse topological) order: every component is emitted
// after all components it calls into. Functions inside one component
// are mutually recursive and must be summarized together to a local
// fixpoint. The result is deterministic: Tarjan's algorithm visits
// nodes in declaration order and callees in first-call order.
func (g *CallGraph) SCCs() [][]*CGNode {
	t := &tarjan{
		graph:   g,
		index:   make(map[*CGNode]int),
		lowlink: make(map[*CGNode]int),
		onStack: make(map[*CGNode]bool),
	}
	for _, n := range g.order {
		if _, visited := t.index[n]; !visited {
			t.strongConnect(n)
		}
	}
	return t.sccs
}

type tarjan struct {
	graph   *CallGraph
	counter int
	index   map[*CGNode]int
	lowlink map[*CGNode]int
	onStack map[*CGNode]bool
	stack   []*CGNode
	sccs    [][]*CGNode
}

// strongConnect is Tarjan's recursive step. Lint targets are
// human-written packages, so recursion depth is bounded by call-chain
// length within one package — no explicit stack needed.
func (t *tarjan) strongConnect(v *CGNode) {
	t.index[v] = t.counter
	t.lowlink[v] = t.counter
	t.counter++
	t.stack = append(t.stack, v)
	t.onStack[v] = true

	for _, calleeFn := range v.Callees {
		w, inPkg := t.graph.Nodes[calleeFn]
		if !inPkg {
			continue // cross-package or bodiless: already summarized
		}
		if _, visited := t.index[w]; !visited {
			t.strongConnect(w)
			if t.lowlink[w] < t.lowlink[v] {
				t.lowlink[v] = t.lowlink[w]
			}
		} else if t.onStack[w] && t.index[w] < t.lowlink[v] {
			t.lowlink[v] = t.index[w]
		}
	}

	if t.lowlink[v] == t.index[v] {
		var scc []*CGNode
		for {
			n := len(t.stack) - 1
			w := t.stack[n]
			t.stack = t.stack[:n]
			t.onStack[w] = false
			scc = append(scc, w)
			if w == v {
				break
			}
		}
		// Present members in declaration order so fixpoint iteration
		// and any diagnostics derived from it are stable.
		sort.Slice(scc, func(i, j int) bool {
			return scc[i].Decl.Pos() < scc[j].Decl.Pos()
		})
		t.sccs = append(t.sccs, scc)
	}
}
