package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// obsImportPath is the observability package whose registry clock
// instrumented code must use instead of the wall clock.
const obsImportPath = "tecopt/internal/obs"

// ObsClock flags direct wall-clock reads — time.Now() and
// time.Since() — inside instrumented packages, i.e. non-main packages
// that import tecopt/internal/obs. Instrumented code must time itself
// on the registry's injected monotonic clock (obs.Registry.Now,
// StartSpan, ObserveSince): that is what keeps span timings coherent
// with each other and lets tests drive time deterministically through
// a ManualClock. A stray time.Now() in a hot path silently mixes two
// clocks in one trace. Test files are exempt (they may measure real
// time) and do not make a package instrumented — only obs imports in
// non-test files count, so a package whose tests exercise obs keeps
// wall-clock freedom in production code it never instruments. Main
// packages are exempt too (flag parsing and progress output
// legitimately use the wall clock), as is the obs package itself,
// which implements the wall clock.
var ObsClock = &Analyzer{
	Name: "obsclock",
	Doc:  "flags time.Now/time.Since in non-main packages that import tecopt/internal/obs (use the registry clock)",
	Run:  runObsClock,
}

func runObsClock(pass *Pass) {
	if pass.Pkg == nil || pass.Pkg.Name() == "main" {
		return
	}
	instrumented := false
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) == obsImportPath {
				instrumented = true
			}
		}
	}
	if !instrumented {
		return
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Now" && sel.Sel.Name != "Since") {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(call.Pos(), "time.%s in an instrumented package; use the obs registry clock (r.Now, StartSpan, ObserveSince) so timings stay on one monotonic clock", sel.Sel.Name)
			return true
		})
	}
}
