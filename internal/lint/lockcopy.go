package lint

import (
	"go/ast"
	"go/types"
)

// LockCopy flags expressions that copy a struct containing a sync lock
// by value: assignments from an existing value, by-value call
// arguments, by-value returns, and range-over-slice value variables. A
// copied sync.Mutex (or a struct embedding one, like the engine's
// FactorCache) is a new, unlocked lock that no longer guards the state
// it was copied from — the classic silent way to unprotect the
// factorization cache or a wait group. Creating a fresh value via a
// composite literal is fine; only copies of existing values are
// flagged. Suppress with "teclint:ignore lockcopy <reason>" when the
// copy provably happens before the value is ever shared.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "flags by-value copies of structs containing sync.Mutex, RWMutex, WaitGroup, Once, Cond, Map or Pool",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					// `_ = x` evaluates and discards: no live copy escapes.
					if len(st.Lhs) == len(st.Rhs) {
						if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if lock := copiedLock(pass, rhs); lock != "" {
						pass.Reportf(rhs.Pos(), "assignment copies %s containing %s by value; use a pointer", typeName(pass, rhs), lock)
					}
				}
			case *ast.CallExpr:
				for _, arg := range st.Args {
					if lock := copiedLock(pass, arg); lock != "" {
						pass.Reportf(arg.Pos(), "call passes %s containing %s by value; pass a pointer", typeName(pass, arg), lock)
					}
				}
			case *ast.ReturnStmt:
				for _, res := range st.Results {
					if lock := copiedLock(pass, res); lock != "" {
						pass.Reportf(res.Pos(), "return copies %s containing %s by value; return a pointer", typeName(pass, res), lock)
					}
				}
			case *ast.RangeStmt:
				if st.Value == nil {
					break
				}
				if lock := lockInType(pass.TypeOf(st.Value)); lock != "" {
					pass.Reportf(st.Value.Pos(), "range value copies %s containing %s per iteration; range over indices or pointers", typeName(pass, st.Value), lock)
				}
			}
			return true
		})
	}
}

// copiedLock reports the sync type inside expr's type when expr reads
// an EXISTING value — an identifier, field, element, or dereference.
// Composite literals, calls, and address-of expressions create or
// reference values rather than copying a live lock here, so they pass.
func copiedLock(pass *Pass, expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return lockInType(pass.TypeOf(expr))
	case *ast.ParenExpr:
		return copiedLock(pass, e.X)
	}
	return ""
}

// syncLockNames are the sync types that must never be copied after
// first use (each either is a lock or embeds one).
var syncLockNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

// lockInType walks t's value-embedded structure (struct fields and
// array elements; never pointers, slices, maps or interfaces, which
// share rather than copy) and returns the first sync lock type found,
// or "". A seen-set guards against recursive named types.
func lockInType(t types.Type) string {
	return lockWalk(t, make(map[types.Type]bool))
}

func lockWalk(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "sync" && syncLockNames[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockWalk(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockWalk(u.Elem(), seen)
	}
	return ""
}

// typeName renders expr's type for diagnostics, qualified relative to
// the package under analysis.
func typeName(pass *Pass, expr ast.Expr) string {
	t := pass.TypeOf(expr)
	if t == nil {
		return "value"
	}
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}
