// Package lint is a self-contained static-analysis framework for this
// repository, built only on the standard library (go/ast, go/parser,
// go/types). It exists because the reproduction hangs on numerically
// delicate code — Cholesky positive-definiteness tests deciding the
// runaway limit lambda_m, convexity checks over h_kl(i), and greedy
// deployment driven by floating-point temperature comparisons — where
// bugs do not crash but quietly corrupt Table I / Figure 6 outputs.
//
// The framework deliberately mirrors the shape of golang.org/x/tools
// analysis passes (Analyzer, Pass, Diagnostic) without importing them,
// so the repository keeps its zero-dependency go.mod.
//
// Suppressing a finding: add a comment of the form
//
//	"teclint:ignore <rule>[,<rule>...] <reason>"
//
// on the flagged line (or the line directly above it). The rule list is
// mandatory; a finding is only suppressed by a directive naming its
// rule, so a suppression never hides diagnostics from other analyzers.
// A directive with no rule list, or naming a rule that does not exist,
// suppresses nothing and is itself reported under the "badignore"
// pseudo-rule. The reason is mandatory too: a directive with a bare
// rule list still suppresses its targets, but the framework reports the
// directive itself under badignore, so a suppression can never pass the
// lint gate without recording why it is safe. badignore findings cannot
// themselves be suppressed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"time"
)

// Analyzer is one static-analysis rule. Run inspects a single package
// unit and reports findings through the Pass.
type Analyzer struct {
	// Name is the short rule identifier printed as "[name]" in findings
	// and matched by ignore directives.
	Name string
	// Doc is a one-paragraph description of what the rule flags and why.
	Doc string
	// Run inspects pass.Files and calls pass.Report for each finding.
	Run func(pass *Pass)
}

// Pass carries one type-checked package unit through an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Facts is the loader's cross-package fact store (may be nil in
	// hand-built passes; FactStore methods tolerate a nil receiver).
	Facts *FactStore

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Terminates reports whether the call can never return (panic,
// os.Exit, a module-local fatal helper, ...): the predicate the
// CFG-based analyzers hand to BuildCFG.
func (p *Pass) Terminates(call *ast.CallExpr) bool {
	return TerminatesCall(p.Info, p.Facts)(call)
}

// Reportf records a finding at pos under the current analyzer's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// IsFloat reports whether e has floating-point type (possibly via a
// named type whose underlying type is float32/float64).
func (p *Pass) IsFloat(e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String formats the finding in the canonical "file:line: [rule] msg"
// shape that cmd/teclint prints and the golden tests pin down.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Run applies each analyzer to the unit and returns the surviving
// findings: suppressed diagnostics (teclint:ignore directives) are
// filtered out, and the rest are sorted by file, line, column, rule so
// output is deterministic across runs.
func Run(unit *Unit, analyzers []*Analyzer) []Diagnostic {
	return RunStats(unit, analyzers, nil)
}

// RunStats is Run with per-analyzer accounting: each analyzer's wall
// time and surviving finding count accumulate into stats (nil skips
// collection entirely).
func RunStats(unit *Unit, analyzers []*Analyzer, stats *StatsCollector) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     unit.Fset,
			Files:    unit.Files,
			Pkg:      unit.Pkg,
			Info:     unit.Info,
			Facts:    unit.Facts,
			analyzer: a,
			diags:    &diags,
		}
		start := time.Now()
		a.Run(pass)
		stats.addTime(a.Name, time.Since(start))
	}
	diags = filterSuppressed(unit, diags)
	diags = append(diags, badIgnores(unit)...)
	SortDiagnostics(diags)
	stats.addFindings(diags)
	return diags
}

// BadIgnoreRule is the pseudo-rule under which the framework reports
// malformed teclint:ignore directives: no rule list, an unknown rule
// name, or no reason. It is emitted by Run itself (not an Analyzer),
// after suppression filtering, so it can never be suppressed.
const BadIgnoreRule = "badignore"

// knownRules is the set of rule names a directive may scope itself
// to: every registered analyzer plus the badignore pseudo-rule (which
// is listable in a directive for documentation purposes only — its
// findings are emitted after filtering and never suppressed).
func knownRules() map[string]bool {
	known := map[string]bool{BadIgnoreRule: true}
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

// badIgnores reports every malformed teclint:ignore directive in the
// unit: one with no rule list (it would otherwise silence nothing and
// rot), one naming a rule that does not exist (usually a typo that
// silently stops suppressing), and one with no reason (a suppression
// must say why it is safe).
func badIgnores(unit *Unit) []Diagnostic {
	known := knownRules()
	var diags []Diagnostic
	report := func(c *ast.Comment, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     unit.Fset.Position(c.Pos()),
			Rule:    BadIgnoreRule,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, reason, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				if len(rules) == 0 {
					report(c, "teclint:ignore has no rule list; write `teclint:ignore <rule>[,<rule>] <why this is safe>`")
					continue
				}
				for _, rule := range rules {
					if !known[rule] {
						report(c, "teclint:ignore names unknown rule %q; it suppresses nothing", rule)
					}
				}
				if strings.TrimSpace(reason) == "" {
					list := strings.Join(rules, ",")
					report(c, "teclint:ignore %s has no reason; write `teclint:ignore %s <why this is safe>`", list, list)
				}
			}
		}
	}
	return diags
}

// filterSuppressed drops diagnostics whose line (or the line directly
// above) carries a "teclint:ignore <rule>" comment naming their rule.
func filterSuppressed(unit *Unit, diags []Diagnostic) []Diagnostic {
	// Map file -> set of lines suppressed per rule.
	suppressed := make(map[string]map[int]map[string]bool)
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, _, ok := parseIgnore(c.Text)
				if !ok || len(rules) == 0 {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				byLine := suppressed[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					suppressed[pos.Filename] = byLine
				}
				// The directive covers its own line and the next one,
				// so it works both trailing and standalone-above.
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if byLine[ln] == nil {
						byLine[ln] = make(map[string]bool)
					}
					for _, rule := range rules {
						byLine[ln][rule] = true
					}
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if rules := suppressed[d.Pos.Filename][d.Pos.Line]; rules != nil && rules[d.Rule] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseIgnore extracts the rule list and reason text from a
// "teclint:ignore <rule>[,<rule>...] <reason>" comment, reporting
// ok=false for comments without the directive. The directive must
// begin the comment (after the // or /* marker); that keeps prose
// *mentioning* teclint:ignore — rule docs, this very comment — from
// parsing as a directive. A bare directive parses with an empty rule
// list; Run flags it (and directives with empty reasons or unknown
// rule names) under the badignore pseudo-rule.
func parseIgnore(comment string) (rules []string, reason string, ok bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(strings.TrimSpace(text), "*/")
	text = strings.TrimSpace(text)
	const directive = "teclint:ignore"
	rest, found := strings.CutPrefix(text, directive)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, "", false
	}
	list, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
	for _, rule := range strings.Split(list, ",") {
		if rule = strings.TrimSpace(rule); rule != "" {
			rules = append(rules, rule)
		}
	}
	return rules, strings.TrimSpace(reason), true
}
