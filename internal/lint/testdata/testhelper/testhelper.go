// Package testhelpertest seeds violations and clean code for the
// testhelper analyzer fixture tests. The file is deliberately a
// non-_test file so the fixture loads as an ordinary package; importing
// "testing" outside a test file is legal Go.
package testhelpertest

import "testing"

type fixture struct{ n int }

func badHelper(t *testing.T, got, want int) { // want testhelper
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func badTBHelper(tb testing.TB, cond bool) { // want testhelper
	if !cond {
		tb.Error("condition failed")
	}
}

func badBenchHelper(b *testing.B, n int) { // want testhelper
	if n <= 0 {
		b.Fatal("bad n")
	}
}

func goodHelper(t *testing.T, got, want int) {
	t.Helper()
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func goodTBHelper(tb testing.TB, cond bool) {
	tb.Helper()
	if !cond {
		tb.Error("condition failed")
	}
}

func goodFixtureBuilder(t *testing.T) *fixture {
	// Never reports a failure itself: not required to call Helper.
	return &fixture{n: 1}
}

func goodSubtestRunner(t *testing.T) {
	// Failures happen inside the subtest closure, which owns its own
	// *testing.T; the runner is not a helper.
	t.Run("sub", func(t *testing.T) {
		t.Fatal("inner failure belongs to the subtest")
	})
}

func TestLooksLikeATest(t *testing.T) {
	t.Fatal("Test functions are exempt")
}

func BenchmarkLooksLikeABench(b *testing.B) {
	b.Fatal("Benchmark functions are exempt")
}

func FuzzLooksLikeAFuzz(f *testing.F) {
	f.Fatal("Fuzz functions are exempt")
}

//teclint:ignore testhelper fixture demonstrates suppression
func suppressedHelper(t *testing.T) {
	t.Fatal("suppressed")
}
