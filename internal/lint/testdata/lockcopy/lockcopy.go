// Package lockcopytest seeds violations and clean code for the
// lockcopy analyzer fixture tests.
package lockcopytest

import "sync"

// Guarded mimics the engine's FactorCache: a mutex guarding state.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// wrapper embeds the lock one struct level down.
type wrapper struct {
	g     Guarded
	label string
}

func consume(Guarded) {}

func badDerefAssign(g *Guarded) {
	snapshot := *g // want lockcopy
	_ = snapshot
}

func badIdentAssign(w wrapper) {
	w2 := w // want lockcopy
	_ = w2
}

func badFieldAssign(w *wrapper) {
	g := w.g // want lockcopy
	_ = g
}

func badElementAssign(gs []Guarded) {
	first := gs[0] // want lockcopy
	_ = first
}

func badCallArg(g *Guarded) {
	consume(*g) // want lockcopy
}

func badReturn(g *Guarded) Guarded {
	return *g // want lockcopy
}

func badRangeValue(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want lockcopy
		total += g.n
	}
	return total
}

func badWaitGroupCopy(wg *sync.WaitGroup) {
	local := *wg // want lockcopy
	_ = local
}

// goodFreshLiteral creates a new value: nothing live is copied.
func goodFreshLiteral() *Guarded {
	g := Guarded{n: 1}
	return &g
}

// goodPointerFlow shares the value instead of copying it.
func goodPointerFlow(g *Guarded) *Guarded {
	alias := g
	return alias
}

// goodRangeIndex iterates without copying elements.
func goodRangeIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// goodPlainStruct has no lock anywhere: copying is fine.
func goodPlainStruct() {
	type point struct{ x, y float64 }
	p := point{1, 2}
	q := p
	_ = q
}

// goodSuppressed demonstrates the escape hatch for copies made before
// the value is ever shared.
func goodSuppressed(g *Guarded) {
	c := *g // teclint:ignore lockcopy copied before first use in this fixture
	_ = c
}
