// Package nanflow exercises the NaN/Inf taint analyzer: values from
// math.Sqrt/Log/Inf (or module callees whose summary says CanNaN) must
// pass an IsNaN/IsInf/IsFinite check before reaching matrix entries,
// factorizations, or cache keys.
package nanflow

import "math"

// Key mirrors the engine's factor-cache key shape.
type Key struct {
	Gen     uint64
	Current float64
}

type sys struct{ last float64 }

func (s *sys) Factor(i float64)          { s.last = i }
func (s *sys) SolveAt(i float64) float64 { return i }

// Builder mirrors the sparse matrix builder sink.
type Builder struct{ vals []float64 }

func (b *Builder) Add(r, c int, v float64) { b.vals = append(b.vals, v) }

// limit mirrors RunawayLimit: +Inf on one path, so its summary says
// CanNaN and callers must guard the result.
func limit(q float64) float64 {
	if q < 0 {
		return math.Inf(1)
	}
	return q
}

// safeRoot guards internally, so its summary is clean.
func safeRoot(q float64) float64 {
	r := math.Sqrt(q)
	if math.IsNaN(r) {
		return 0
	}
	return r
}

func observe(v float64) {}

func direct(s *sys, d float64) {
	r := math.Sqrt(d)
	s.Factor(r) // want nanflow
}

func inline(s *sys, d float64) {
	s.Factor(math.Sqrt(d)) // want nanflow
}

func guarded(s *sys, d float64) {
	r := math.Sqrt(d)
	if math.IsNaN(r) {
		return
	}
	s.Factor(r)
}

func partialGuard(s *sys, d float64, strict bool) {
	r := math.Sqrt(d)
	if strict {
		if math.IsNaN(r) {
			return
		}
	}
	s.Factor(r) // want nanflow
}

func viaSummary(s *sys, q float64) {
	v := limit(q)
	s.Factor(v) // want nanflow
}

func viaCleanSummary(s *sys, q float64) {
	v := safeRoot(q)
	s.Factor(v)
}

func intoKey(d float64) Key {
	r := math.Sqrt(d)
	return Key{Gen: 1, Current: r} // want nanflow
}

func intoBuilder(b *Builder, d float64) {
	v := math.Log(d)
	b.Add(0, 0, v) // want nanflow
}

func escapes(s *sys, d float64) {
	r := math.Sqrt(d)
	observe(r) // the callee may guard; tracking stops
	s.Factor(r)
}

func overwritten(s *sys, d float64) {
	r := math.Sqrt(d)
	r = 1.5
	s.Factor(r)
}
