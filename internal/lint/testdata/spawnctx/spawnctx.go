// Package spawnctx exercises the request-path goroutine analyzer: an
// unconditional loop in a spawned goroutine must not be able to cycle
// without observing cancellation — a ctx.Done() receive, a ctx.Err()
// check, a comma-ok receive, ranging over a channel, or a call to a
// summarized observer. Conditional and range loops are exempt (their
// condition or channel close bounds them), and named callees answer
// through the HasUnobservedLoop summary fact.
package spawnctx

import (
	"context"
	"time"
)

func pollLoop(ctx context.Context, stop func() bool) {
	go func() {
		for { // want spawnctx
			if stop() {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
}

// selectLoop is clean: the select polls ctx.Done alongside the work
// channel, so every cycle observes cancellation.
func selectLoop(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

func bareRecvLoop(work chan int, sink chan int) {
	go func() {
		for { // want spawnctx
			v := <-work
			if v < 0 {
				return
			}
			sink <- v
		}
	}()
}

// commaOkLoop is clean: the comma-ok receive observes channel close.
func commaOkLoop(work chan int) {
	go func() {
		for {
			v, ok := <-work
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// rangeLoop is clean: range over a channel exits on close.
func rangeLoop(work chan int) {
	go func() {
		for v := range work {
			_ = v
		}
	}()
}

// busyWorker never checks its context; the HasUnobservedLoop summary
// fact carries that to the spawn site.
func busyWorker(ctx context.Context, stop func() bool) {
	for {
		if stop() {
			return
		}
	}
}

func spawnBusyWorker(ctx context.Context, stop func() bool) {
	go busyWorker(ctx, stop) // want spawnctx
}

// ctxWorker polls ctx.Err every iteration, so its loop observes.
func ctxWorker(ctx context.Context, stop func() bool) {
	for {
		if ctx.Err() != nil {
			return
		}
		if stop() {
			return
		}
	}
}

func spawnCtxWorker(ctx context.Context, stop func() bool) {
	go ctxWorker(ctx, stop)
}

// checkCancel is an observing helper: a loop that calls it observes
// cancellation through the summary.
func checkCancel(ctx context.Context) bool {
	return ctx.Err() != nil
}

func spawnHelperObserved(ctx context.Context) {
	go func() {
		for {
			if checkCancel(ctx) {
				return
			}
		}
	}()
}
