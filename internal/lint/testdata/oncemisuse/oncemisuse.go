// Package oncemisuse exercises the sync.Once contract analyzer:
// by-value Once parameters fork the done flag, reassignment races
// concurrent Do callers, and Do calls with different functions on the
// same Once silently skip all but the first. Do sites are grouped by
// Once identity (variable object, or receiver type plus field path)
// and the argument is fingerprinted by printed source, so textually
// identical closures at several sites do not fire.
package oncemisuse

import "sync"

type lazy struct {
	once sync.Once
	v    int
}

// get and getAgain run the same textual closure: same fingerprint, no
// finding.
func (l *lazy) get() int {
	l.once.Do(func() { l.v = 42 })
	return l.v
}

func (l *lazy) getAgain() int {
	l.once.Do(func() { l.v = 42 })
	return l.v
}

func (l *lazy) getOther() int {
	l.once.Do(func() { l.v = 7 }) // want oncemisuse
	return l.v
}

func reset(l *lazy) {
	l.once = sync.Once{} // want oncemisuse
}

func byValueParam(o sync.Once) { // want oncemisuse
	o.Do(func() {})
}

// localOnces is clean: distinct Once objects group separately.
func localOnces() {
	var a sync.Once
	var b sync.Once
	a.Do(func() { _ = 1 })
	b.Do(func() { _ = 2 })
}
