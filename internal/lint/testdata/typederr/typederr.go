// Package typederrtest seeds violations and clean code for the
// typederr analyzer fixture tests. The package imports
// tecopt/internal/tecerr, so it has adopted the typed taxonomy and
// every bare fmt.Errorf (literal format without %w) is a violation;
// lines carrying one end with a want-rule marker.
package typederrtest

import (
	"fmt"

	"tecopt/internal/tecerr"
)

// typedOrigin originates an error the approved way: through the
// taxonomy, so it carries a code, an op, and an exit status.
func typedOrigin(n int) error {
	return tecerr.Newf(tecerr.CodeInvalidInput, "fixture.origin", "fixture: bad order %d", n)
}

// wrappedUpstream is also clean: %w keeps the upstream code reachable
// through errors.Is/As classification.
func wrappedUpstream(err error) error {
	return fmt.Errorf("fixture: solve stage: %w", err)
}

func bareOrigin(n int) error {
	return fmt.Errorf("fixture: bad order %d", n) // want typederr
}

func bareWithVerbSoup(name string, v float64) error {
	return fmt.Errorf("fixture: %s diverged at %g", name, v) // want typederr
}

// swallowedUpstream is the worst shape: the upstream error is rendered
// with %v, so its tecerr code is destroyed, not wrapped.
func swallowedUpstream(err error) error {
	return fmt.Errorf("fixture: solve stage: %v", err) // want typederr
}

// nonLiteralFormat shows the documented blind spot: a computed format
// string cannot be inspected for %w, so it is not flagged.
func nonLiteralFormat(format string, err error) error {
	return fmt.Errorf(format, err)
}

// sprintfIsFine shows only Errorf is policed: plain formatting does not
// originate errors.
func sprintfIsFine(n int) string {
	return fmt.Sprintf("fixture: order %d", n)
}
