// Package chanflow exercises the channel state analyzer: closing a
// channel twice or sending on a closed channel panics, and receiving
// from an unbuffered channel nothing ever writes blocks forever.
// Callee effects flow through the concurrency summaries, so a helper
// that closes (or sends on) its channel parameter is visible at the
// call site.
package chanflow

func doubleClose() {
	ch := make(chan int, 1)
	close(ch)
	close(ch) // want chanflow
}

func closeThenSend() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want chanflow
}

func closedOnSomePath(flag bool) {
	ch := make(chan int, 1)
	if flag {
		close(ch)
	}
	ch <- 1 // want chanflow
}

func maybeDoubleClose(flag bool) {
	ch := make(chan int, 1)
	if flag {
		close(ch)
	}
	close(ch) // want chanflow
}

// reopened is clean: reassignment resets the tracked state.
func reopened() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
	close(ch)
}

// sendBeforeClose is the correct producer shutdown order.
func sendBeforeClose() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}

// closeArg closes its parameter; the concurrency summary carries the
// effect to callers.
func closeArg(c chan int) {
	close(c)
}

func summarizedClose() {
	ch := make(chan int, 1)
	closeArg(ch)
	ch <- 1 // want chanflow
}

func deadRecv() {
	ch := make(chan struct{})
	<-ch // want chanflow
}

// recvWithGoroutineSender is clean: the spawned literal writes.
func recvWithGoroutineSender() {
	ch := make(chan struct{})
	go func() {
		ch <- struct{}{}
	}()
	<-ch
}

// sendArg sends on its parameter: passing a channel to it counts as a
// write for the never-written check.
func sendArg(c chan struct{}) {
	c <- struct{}{}
}

func recvWithSummarizedSender() {
	ch := make(chan struct{})
	go sendArg(ch)
	<-ch
}

// recvAfterEscape is clean: once the channel is handed to an
// unsummarized function value, someone else may write it.
func recvAfterEscape(sink func(chan struct{})) {
	ch := make(chan struct{})
	sink(ch)
	<-ch
}

// bufferedRecv is clean: only unbuffered channels are checked.
func bufferedRecv() {
	ch := make(chan int, 1)
	<-ch
}
