// Package badignoretest seeds reasonless and well-formed
// teclint:ignore directives for the badignore framework tests.
package badignoretest

func approxZero(x float64) bool {
	// A reasoned directive: suppresses floateq, emits nothing.
	return x == 0 //teclint:ignore floateq exact zero sentinel comparison
}

func approxEqual(a, b float64) bool {
	// A bare directive still suppresses floateq on its line, but the
	// directive itself is reported so the gate stays red.
	return a == b /* teclint:ignore floateq */ // want badignore
}

func approxClose(a, b float64) bool {
	/* teclint:ignore floateq */ // want badignore
	return a == b
}
