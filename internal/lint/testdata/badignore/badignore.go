// Package badignoretest seeds reasonless, unscoped, misspelled, and
// well-formed teclint:ignore directives for the badignore framework
// tests.
package badignoretest

func approxZero(x float64) bool {
	// A reasoned directive: suppresses floateq, emits nothing.
	return x == 0 //teclint:ignore floateq exact zero sentinel comparison
}

func approxEqual(a, b float64) bool {
	// A bare directive still suppresses floateq on its line, but the
	// directive itself is reported so the gate stays red.
	return a == b /* teclint:ignore floateq */ // want badignore
}

func approxClose(a, b float64) bool {
	/* teclint:ignore floateq */ // want badignore
	return a == b
}

func approxBoth(a, b float64) bool {
	// A reasoned rule list: suppresses every listed rule, emits nothing.
	return a == b //teclint:ignore floateq,dimflow comparing like-for-like sentinels
}

func unscoped(a, b float64) bool {
	// No rule list at all: suppresses nothing and is itself flagged.
	return a == b /* teclint:ignore */ // want badignore
}

func reasonOnly(a, b float64) bool {
	// A reason with no rule list: the first word parses as an unknown
	// rule, suppresses nothing, and the directive is flagged.
	return a == b //teclint:ignore totally safe here // want badignore
}

func misspelled(a, b float64) bool {
	// An unknown rule name suppresses nothing; flag the typo.
	return a == b //teclint:ignore floateqq sentinel comparison // want badignore
}
