// Package lockbalancetest seeds violations and clean code for the
// lockbalance analyzer fixture tests.
package lockbalancetest

import "sync"

type cache struct {
	mu      sync.RWMutex
	entries map[string]float64
}

func badEarlyReturn(m *sync.Mutex, skip bool) int {
	m.Lock() // want lockbalance
	if skip {
		return 0
	}
	m.Unlock()
	return 1
}

func (c *cache) badReadPathLeak(key string) (float64, bool) {
	c.mu.RLock() // want lockbalance
	v, ok := c.entries[key]
	if !ok {
		return 0, false
	}
	c.mu.RUnlock()
	return v, true
}

// badKindMismatch releases a read lock with the writer Unlock: the
// RLock obligation is never discharged (and the Unlock panics at
// runtime).
func badKindMismatch(m *sync.RWMutex) {
	m.RLock() // want lockbalance
	m.Unlock()
}

func goodDefer(m *sync.Mutex) int {
	m.Lock()
	defer m.Unlock()
	return 1
}

func (c *cache) goodDeferredLiteral(key string, v float64) {
	c.mu.Lock()
	defer func() {
		delete(c.entries, "stale")
		c.mu.Unlock()
	}()
	c.entries[key] = v
}

func goodBranchBalanced(m *sync.Mutex, b bool) int {
	m.Lock()
	if b {
		m.Unlock()
		return 0
	}
	m.Unlock()
	return 1
}

func (c *cache) goodReadBalanced(key string) (float64, bool) {
	c.mu.RLock()
	v, ok := c.entries[key]
	c.mu.RUnlock()
	return v, ok
}

// goodTryLock: TryLock acquisition is conditional by design and is not
// tracked.
func goodTryLock(m *sync.Mutex) bool {
	if m.TryLock() {
		m.Unlock()
		return true
	}
	return false
}
