// Package droppederrtest seeds violations and clean code for the
// droppederr analyzer fixture tests.
package droppederrtest

import "errors"

var errNotPD = errors.New("not positive definite")

type chol struct{}

func newCholesky(spd bool) (*chol, error) {
	if !spd {
		return nil, errNotPD
	}
	return &chol{}, nil
}

func (c *chol) Solve(b []float64) ([]float64, error) { return b, nil }

func solveCG() error { return nil }

func computeLambdaM() (float64, error) { return 1.5, nil }

func unrelatedHelper() {}

func noErrorSolver() float64 { return 0 } // name doesn't match the API set

func badStatementCall() {
	solveCG() // want droppederr
}

func badBlankFactor() {
	_, _ = newCholesky(true) // want droppederr
}

func badBlankSolve(c *chol, b []float64) []float64 {
	x, _ := c.Solve(b) // want droppederr
	return x
}

func badDefer() {
	defer solveCG() // want droppederr
}

func badGo() {
	go solveCG() // want droppederr
}

func goodHandled(b []float64) ([]float64, error) {
	if err := solveCG(); err != nil {
		return nil, err
	}
	c, err := newCholesky(true)
	if err != nil {
		return nil, err
	}
	return c.Solve(b)
}

func goodUnrelated() {
	unrelatedHelper() // non-matching callee: clean
	_ = noErrorSolver()
}

func suppressed() {
	_, _ = computeLambdaM() //teclint:ignore droppederr fixture demonstrates suppression
}
