// Package floateqtest seeds violations and clean code for the floateq
// analyzer fixture tests. Lines carrying a violation end with a
// want-rule marker; every other line must stay silent.
package floateqtest

import "math"

const tol = 1e-9

// almostEqual is on the FloatEqAllowlist: the exact shortcut before the
// tolerance test is permitted inside it.
func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func badEq(a, b float64) bool {
	return a == b // want floateq
}

func badNeq(a, b float32) bool {
	return a != b // want floateq
}

func badZeroCompare(x float64) bool {
	return x == 0 // want floateq
}

func badNamedFloat() bool {
	type kelvin float64
	var a, b kelvin
	return a == b // want floateq
}

func nanProbe(x float64) bool {
	return x != x // NaN idiom: exact by design, clean
}

func constantFold() bool {
	return 0.1+0.2 == 0.3 // both operands compile-time constants: clean
}

func intCompare(a, b int) bool {
	return a == b // integers: clean
}

func viaHelper(a, b float64) bool {
	return almostEqual(a, b)
}

func suppressed(a, b float64) bool {
	return a == b //teclint:ignore floateq fixture demonstrates bit-exact suppression
}

func suppressedAbove(a, b float64) bool {
	//teclint:ignore floateq directive on the line above also suppresses
	return a == b
}
