// Package cachegen exercises the cache-generation analyzer: writes to
// fields of a generation-keyed type (one whose generation field is
// assigned from NextGeneration()) must be paired with a generation
// bump, directly or through a bumping helper that receives the value.
package cachegen

var counter uint64

// NextGeneration mirrors engine.NextGeneration; the analyzer matches
// the allocator by name so fixtures stay self-contained.
func NextGeneration() uint64 {
	counter++
	return counter
}

type system struct {
	scale float64
	hits  int
	gen   uint64
}

// newSystem builds with a fresh generation: composite literals are
// not mutations, so constructors stay clean.
func newSystem() *system {
	return &system{scale: 1, gen: NextGeneration()}
}

func (s *system) SetScaleBad(v float64) {
	s.scale = v // want cachegen
}

func (s *system) GrowBad() {
	s.hits++ // want cachegen
}

func (s *system) SetScaleGood(v float64) {
	s.scale = v
	s.gen = NextGeneration()
}

// invalidate is the bumping helper; callers that hand it the system
// are covered.
func (s *system) invalidate() {
	s.gen = NextGeneration()
}

func (s *system) SetScaleViaHelper(v float64) {
	s.scale = v
	s.invalidate()
}

// reset receives the system as a parameter rather than a receiver;
// its bump covers callers the same way.
func reset(s *system) {
	s.scale = 1
	s.gen = NextGeneration()
}

func SetAndReset(s *system, v float64) {
	s.scale = v
	reset(s)
}

// plain is not cache-keyed: no generation field, no findings.
type plain struct{ scale float64 }

func (p *plain) SetScale(v float64) {
	p.scale = v
}
