// Package unitsanitytest seeds violations and clean code for the
// unitsanity analyzer fixture tests.
package unitsanitytest

func celsiusToKelvin(c float64) float64 { return c + 273.15 }

type config struct {
	AmbientK  float64
	LimitK    float64
	DeltaTolK float64 // kelvin-denominated difference: exempt
	StepK     float64 // exempt
	Name      string
}

func deploy(limitK float64) float64 { return limitK }

func overLimit(tempsK []float64, limitK float64) int {
	n := 0
	for _, t := range tempsK {
		if t > limitK {
			n++
		}
	}
	return n
}

func bad() {
	deploy(85)               // want unitsanity
	_ = deploy(45.0)         // want unitsanity
	_ = overLimit(nil, 100)  // want unitsanity
	_ = config{AmbientK: 45} // want unitsanity
	_ = config{LimitK: 85.0} // want unitsanity
	deploy(-10)              // want unitsanity
}

func good() {
	deploy(celsiusToKelvin(85)) // converted: clean
	deploy(358.15)              // already kelvin-range: clean
	_ = config{AmbientK: 318.15}
	_ = config{DeltaTolK: 10} // difference in kelvin: clean
	_ = config{StepK: 25}     // difference in kelvin: clean
	const limitC = 85.0
	deploy(limitC + 273.15) // arithmetic states intent: clean
	_ = config{Name: "hc01"}
	deploy(300)
}

func suppressed() {
	deploy(85) //teclint:ignore unitsanity fixture demonstrates suppression
}
