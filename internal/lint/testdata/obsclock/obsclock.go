// Package obsclocktest seeds violations and clean code for the
// obsclock analyzer fixture tests. The package imports
// tecopt/internal/obs, so it counts as instrumented and every direct
// wall-clock read is a violation; lines carrying one end with a
// want-rule marker.
package obsclocktest

import (
	"context"
	"time"

	"tecopt/internal/obs"
)

// registryClock times work the approved way: on the injected
// monotonic clock of the installed registry.
func registryClock() int64 {
	r := obs.Enabled()
	if r == nil {
		return 0
	}
	start := r.Now()
	r.ObserveSince("fixture.work_ns", start)
	return r.Now() - start
}

// spanClock is also clean: spans read the registry clock internally.
func spanClock() {
	r := obs.Enabled()
	sp := r.StartSpan("fixture.op")
	defer sp.End()
}

func wallClockLeak() time.Time {
	return time.Now() // want obsclock
}

func wallDurationLeak() time.Duration {
	start := time.Now()      // want obsclock
	return time.Since(start) // want obsclock
}

// timeValuesAreFine shows that only the clock reads are flagged: other
// uses of the time package (durations, formatting constants) are
// legitimate in instrumented code.
func timeValuesAreFine() time.Duration {
	return 5 * time.Millisecond
}

// structuredLogIsFine: logging through the installed slog handler is
// clean under obsclock. slog stamps each record with a wall-clock
// timestamp internally, but that read happens inside log/slog, not in
// the instrumented package — the rule governs durations *measured* by
// instrumented code (which must come from the registry clock), not
// log-record metadata. The span handler's span_id/parent_id stamping
// reads no clock at all.
func structuredLogIsFine(ctx context.Context) {
	if l := obs.Logger(); l != nil {
		l.InfoContext(ctx, "fixture event", "detail", 42)
	}
}
