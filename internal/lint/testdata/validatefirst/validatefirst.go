// Package validatefirsttest seeds violations and clean code for the
// validatefirst analyzer fixture tests.
package validatefirsttest

import "errors"

// Config mirrors the solver configuration types: constructed or
// loaded, then Validate() gates the solve.
type Config struct {
	N     int
	Power float64
}

func (c *Config) Validate() error {
	if c.N <= 0 {
		return errors.New("N must be positive")
	}
	return nil
}

// LoadConfig mirrors chipload.Load: a taint source by name (Load*) and
// result type (has Validate).
func LoadConfig() (Config, error) { return Config{N: 8}, nil }

// SolveSteady is a sink by name prefix.
func SolveSteady(cfg Config) float64 { return float64(cfg.N) }

// RunawayLimit is a sink by exact name.
func RunawayLimit(cfg *Config) float64 { return cfg.Power }

func tweak(cfg *Config) { cfg.N++ }

func badSkipValidate(fast bool) float64 {
	cfg, err := LoadConfig()
	if err != nil {
		return -1
	}
	if !fast {
		if err := cfg.Validate(); err != nil {
			return -1
		}
	}
	return SolveSteady(cfg) // want validatefirst
}

func badNoValidate() float64 {
	cfg, err := LoadConfig()
	if err != nil {
		return -1
	}
	return SolveSteady(cfg) // want validatefirst
}

func badLiteral() float64 {
	cfg := &Config{N: 8}
	return RunawayLimit(cfg) // want validatefirst
}

func badCopyPropagates() float64 {
	cfg, err := LoadConfig()
	if err != nil {
		return -1
	}
	alias := cfg
	return SolveSteady(alias) // want validatefirst
}

func goodValidated() float64 {
	cfg, err := LoadConfig()
	if err != nil {
		return -1
	}
	if err := cfg.Validate(); err != nil {
		return -1
	}
	return SolveSteady(cfg)
}

func goodLiteralValidated() float64 {
	cfg := &Config{N: 8}
	if err := cfg.Validate(); err != nil {
		return -1
	}
	return RunawayLimit(cfg)
}

// goodEscape: a value handed to another function first may have been
// validated (or mutated) on the caller's behalf; tracking stops.
func goodEscape() float64 {
	cfg := Config{N: 8}
	tweak(&cfg)
	return SolveSteady(cfg)
}

// goodUnrelatedSource: values of types without Validate are never
// tracked, whatever the producing call is named.
func LoadWeights() ([]float64, error) { return nil, nil }

func goodUnrelatedSource() float64 {
	w, err := LoadWeights()
	if err != nil {
		return -1
	}
	_ = w
	return SolveSteady(Config{N: 1})
}
