// Package ctxflowtest seeds violations and clean code for the ctxflow
// analyzer fixture tests.
package ctxflowtest

import "context"

// search / searchCtx form a Ctx-sibling pair: inside a ctx-taking
// function, calling search severs cancellation.
func search(n int) int { return n * 2 }

func searchCtx(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return n * 2
}

type sweeper struct{ budget int }

func (s *sweeper) run(n int) int { return n + s.budget }

func (s *sweeper) runCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n + s.budget
}

type server struct {
	ctx    context.Context
	budget int
}

type options struct {
	Ctx context.Context
	N   int
}

func solveWith(o options) int { return o.N }

func badPlainCall(ctx context.Context) int {
	return search(8) // want ctxflow
}

func badMethodCall(ctx context.Context, s *sweeper) int {
	return s.run(8) // want ctxflow
}

func badBackground(ctx context.Context) int {
	return searchCtx(context.Background(), 8) // want ctxflow
}

func badTODO(ctx context.Context) int {
	return searchCtx(context.TODO(), 8) // want ctxflow
}

func badStore(ctx context.Context, s *server) {
	s.ctx = ctx // want ctxflow
}

func badInsideLiteral(ctx context.Context) func() int {
	return func() int {
		return search(4) // want ctxflow
	}
}

func goodForward(ctx context.Context, s *sweeper) int {
	return searchCtx(ctx, 8) + s.runCtx(ctx, 8)
}

// goodNoCtxInScope: without a context parameter, the plain variants
// and context.Background() are the correct spellings.
func goodNoCtxInScope() int {
	return search(8) + searchCtx(context.Background(), 8)
}

// goodOptionsLiteral: latching ctx into an options literal that is
// handed straight to the callee is the sanctioned forwarding idiom.
func goodOptionsLiteral(ctx context.Context) int {
	return solveWith(options{Ctx: ctx, N: 8})
}

// goodDerivedCtx: passing a context derived from the in-scope one
// still forwards cancellation.
func goodDerivedCtx(ctx context.Context) int {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return searchCtx(sub, 8)
}
