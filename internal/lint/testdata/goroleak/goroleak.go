// Package goroleak exercises the goroutine-lifetime analyzer: every go
// statement must spawn a body whose CFG can reach its exit — a
// ctx.Done() select arm, a channel-close range exit, or plain
// completion. Named callees answer through their function summaries.
package goroleak

import "context"

func spawnForever() {
	go func() { // want goroleak
		for {
		}
	}()
}

func spawnEmptySelect() {
	go func() { // want goroleak
		select {}
	}()
}

func spawnCtxLoop(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

func spawnRangeDrain(work chan int) {
	go func() {
		for v := range work {
			_ = v
		}
	}()
}

func spawnOneShot(done chan struct{}) {
	go func() {
		done <- struct{}{}
	}()
}

// worker forgot its exit path; its summary says NeverTerminates, so
// spawning it is flagged at the go statement even though the loop
// lives elsewhere.
func worker(work chan int) {
	for {
		<-work
	}
}

// drainer has a termination path: range exits when work is closed.
func drainer(work chan int) {
	for range work {
	}
}

func spawnNamedBad(work chan int) {
	go worker(work) // want goroleak
}

func spawnNamedGood(work chan int) {
	go drainer(work)
}
