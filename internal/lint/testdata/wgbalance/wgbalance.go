// Package wgbalance exercises the WaitGroup bookkeeping analyzer:
// Add/Done deltas are tracked along CFG paths, spawned goroutines
// credit the Dones their bodies (or summarized callees) perform, and
// only provable imbalance reports — joins that disagree go to
// "unknown", which is silent.
package wgbalance

import "sync"

func waitWithoutDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Wait() // want wgbalance
}

// balancedSpawn is the canonical fan-out: Add before go, Done in the
// spawned body.
func balancedSpawn() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func loopBalanced(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func addTwoSpawnOne() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
	}()
	wg.Wait() // want wgbalance
}

func doubleDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Done()
	wg.Done() // want wgbalance
}

func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want wgbalance
		defer wg.Done()
	}()
	wg.Wait()
}

func byValueParam(wg sync.WaitGroup) { // want wgbalance
	wg.Wait()
}

// worker is the callee side of a fan-out Add: its summary carries the
// Done to spawn sites.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

func spawnSummarizedWorker() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

// condImbalance is silent by design: the join of +1 and 0 is unknown,
// and unknown deltas never report.
func condImbalance(flag bool) {
	var wg sync.WaitGroup
	if flag {
		wg.Add(1)
	}
	wg.Wait()
}
