// Package mapordertest seeds violations and clean code for the
// maporder analyzer fixture tests.
package mapordertest

import "sort"

func badFloatSum(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // want maporder
		total += v
	}
	return total
}

func badPlainAssignSum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want maporder
		s = s + v
	}
	return s
}

func badAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want maporder
		keys = append(keys, k)
	}
	return keys
}

func badSubAccumulate(m map[int]float64, z float64) float64 {
	for _, v := range m { // want maporder
		z -= v
	}
	return z
}

func goodSortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m { // append later sorted: deterministic, clean
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

func goodIntCount(m map[string]int) int {
	n := 0
	for range m {
		n++ // integer count: order-independent, clean
	}
	return n
}

func goodLocalAccumulator(m map[int][]float64) {
	for _, vs := range m {
		var rowSum float64 // declared inside the loop: clean
		for _, v := range vs {
			rowSum += v
		}
		_ = rowSum
	}
}

func goodSliceRange(xs []float64) float64 {
	var s float64
	for _, v := range xs { // slice iteration is ordered: clean
		s += v
	}
	return s
}

func goodKeyedWrite(m map[string]float64, scale map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] += v * scale[k] // distinct slot per key: order-independent, clean
	}
	return out
}

func goodMaxReduction(m map[int]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v // conditional overwrite, not accumulation: clean
		}
	}
	return best
}

func suppressedSum(m map[int]float64) float64 {
	var s float64
	//teclint:ignore maporder fixture demonstrates suppression on the line above
	for _, v := range m {
		s += v
	}
	return s
}
