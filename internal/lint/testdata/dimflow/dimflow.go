// Package dimflow exercises the unit-dimension analyzer: dimensions
// inferred from names (tempK, condWperK, currentA, seebeck) must agree
// across operators, assignments, call boundaries, returns, and struct
// fields. Clean code in here must stay silent; every deliberate
// mismatch carries a want marker.
package dimflow

import "math"

type tuning struct {
	LimitK  float64
	BudgetW float64
}

// peakRiseK divides power by conductance: W / (W/K) = K. Consistent.
func peakRiseK(powerW, condWperK float64) float64 {
	return powerW / condWperK
}

// inputPowerW is Joule heating plus nothing fancy: A^2 * W/A^2 = W.
func inputPowerW(currentA, resistanceOhm float64) (powerW float64) {
	return currentA * currentA * resistanceOhm
}

// coldFluxW has an unnamed result; the summary layer infers W from
// the returned expression: V/K * A * K = W.
func coldFluxW(seebeck, currentA, thetaColdK float64) float64 {
	return seebeck * currentA * thetaColdK
}

func cleanUses(tempK, condWperK, currentA, resistanceOhm float64) float64 {
	riseK := peakRiseK(inputPowerW(currentA, resistanceOhm), condWperK)
	halfK := riseK / 2           // pure numbers scale freely
	total := tempK + 2*halfK     // K + K
	margin := math.Abs(total)    // math helpers pass units through
	count := 3                   // dimensionless
	return margin * float64(count)
}

func mixedAdd(tempK, condWperK float64) float64 {
	return tempK + condWperK // want dimflow
}

func mixedCompare(limitK, budgetW float64) bool {
	return limitK > budgetW // want dimflow
}

func badArgument(currentA, condWperK float64) float64 {
	return peakRiseK(currentA, condWperK) // want dimflow
}

func badAssign(currentA, resistanceOhm float64) float64 {
	var limitK float64
	limitK = inputPowerW(currentA, resistanceOhm) // want dimflow
	return limitK
}

func badInferredResult(seebeck, currentA, thetaColdK float64) float64 {
	tempsK := coldFluxW(seebeck, currentA, thetaColdK) // want dimflow
	return tempsK
}

func badReturn(powerW float64) (riseK float64) {
	return powerW // want dimflow
}

func badField(totalPowerW float64) tuning {
	return tuning{LimitK: totalPowerW} // want dimflow
}

func goodField(totalPowerW, limitK float64) tuning {
	return tuning{LimitK: limitK, BudgetW: totalPowerW}
}
