// Package mutexblock exercises the lock-held-across-blocking-call
// analyzer. Deferred unlocks keep the mutex held until return, channel
// ops in a select with a default are non-blocking, summarized module
// callees that may block are caught at the call site, and direct
// sync.Cond.Wait is exempt (it parks with its mutex held by design).
package mutexblock

import (
	"sync"
	"time"
)

type store struct {
	mu sync.Mutex
	v  int
}

func (s *store) sleepUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want mutexblock
}

func (s *store) sendUnderLock(ch chan int) {
	s.mu.Lock()
	ch <- s.v // want mutexblock
	s.mu.Unlock()
}

// recvAfterUnlock is clean: the critical section closes before the
// blocking receive.
func (s *store) recvAfterUnlock(ch chan int) {
	s.mu.Lock()
	s.v++
	s.mu.Unlock()
	<-ch
}

// tryPublish is clean: a select with a default never blocks.
func (s *store) tryPublish(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- s.v:
	default:
	}
}

func (s *store) waitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want mutexblock
}

// park blocks on a channel receive; its concurrency summary says so.
func park(ch chan struct{}) {
	<-ch
}

func (s *store) summarizedBlockUnderLock(ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	park(ch) // want mutexblock
}

// condWait is clean: Cond.Wait releases the mutex while parked.
func (s *store) condWait(c *sync.Cond) {
	c.L.Lock()
	defer c.L.Unlock()
	for s.v == 0 {
		c.Wait()
	}
}
