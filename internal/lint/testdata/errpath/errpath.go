// Package errpathtest seeds violations and clean code for the errpath
// analyzer fixture tests.
package errpathtest

import (
	"errors"
	"fmt"
)

var errDiverged = errors.New("diverged")

func refine() error        { return nil }
func cleanup() error       { return nil }
func load() (int, error)   { return 0, nil }
func coarse() int          { return 1 }
func use(int)              {}
func wrap(err error) error { return fmt.Errorf("refine: %w", err) }

func badBranchDrop(fast bool) int {
	err := refine() // want errpath
	if fast {
		return coarse()
	}
	if err != nil {
		return -1
	}
	return 0
}

func badOverwrite() error {
	err := refine() // want errpath
	err = cleanup()
	return err
}

func badMultiValueDrop(fast bool) int {
	n, err := load() // want errpath
	if fast {
		return n
	}
	if err != nil {
		return -1
	}
	return n
}

func badSwitchDrop(mode int) error {
	err := refine() // want errpath
	switch mode {
	case 0:
		return nil
	default:
		return err
	}
}

func goodAllPaths(fast bool) (int, error) {
	err := refine()
	if fast {
		return coarse(), err
	}
	if err != nil {
		return 0, err
	}
	return 0, nil
}

func goodWrapOverwrite() error {
	err := refine()
	err = wrap(err) // consumes the pending value in the same statement
	return err
}

func goodInitCond() error {
	if err := refine(); err != nil {
		return err
	}
	return nil
}

// goodClosureLatch: variables written inside function literals follow
// defer/goroutine flow the intraprocedural analysis cannot see; they
// are excluded rather than reported.
func goodClosureLatch() error {
	var err error
	func() { err = refine() }()
	return err
}

// goodNamedResult: a named error result is implicitly read by a bare
// return; it is declared in the signature, not the body, so it is
// never tracked.
func goodNamedResult() (err error) {
	err = refine()
	return
}

// goodErrorPrecedence: the early return carries another error value
// (cancellation wins over the stale solver error), so no path reports
// success with err unexamined.
func goodErrorPrecedence(ctxErr error) error {
	err := refine()
	if ctxErr != nil {
		return ctxErr
	}
	return err
}

// goodDispatchRead: a tagless switch reads err during case dispatch on
// every path, including the no-match one.
func goodDispatchRead() int {
	err := refine()
	switch {
	case errDiverged == err:
		return -1
	case err != nil:
		return -2
	}
	return 0
}

// goodFatalExit: a terminating call ends the path loudly; pending
// errors there are not silent drops.
func goodFatalExit(fail bool) error {
	err := refine()
	if fail {
		panic("fatal")
	}
	return err
}

// goodShortCircuit: the error is consulted on the only live path; the
// early return terminates the other one.
func goodShortCircuit(n int) error {
	err := refine()
	if n == 0 {
		return err
	}
	use(n)
	return err
}
