package lint

import (
	"go/ast"
	"go/token"
)

// FloatEqAllowlist names tolerance-helper functions inside which direct
// float ==/!= is permitted: a helper like almostEqual may legitimately
// shortcut `a == b` before the relative-error test so that exact values
// and infinities compare equal. Extend this set rather than sprinkling
// ignore directives when adding a new tolerance helper.
var FloatEqAllowlist = map[string]bool{
	// internal/num, the canonical helpers.
	"IsZero":      true,
	"ExactEqual":  true,
	"AlmostEqual": true,
	"EqualWithin": true,
	// Conventional spellings of local tolerance helpers.
	"almostEqual": true,
	"approxEqual": true,
	"withinTol":   true,
	"near":        true,
	"ApproxEqual": true,
	"WithinTol":   true,
}

// FloatEq flags == and != between floating-point operands. Direct float
// equality silently breaks the numerics this repo depends on (greedy
// tile selection, lambda_m bracketing, convexity checks): two
// mathematically equal temperatures rarely compare equal after
// different summation orders. Allowed escapes: the x != x NaN idiom,
// comparisons where both operands are compile-time constants, bodies of
// FloatEqAllowlist tolerance helpers, and explicit
// "teclint:ignore floateq <reason>" directives for intentional
// bit-exact comparisons.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= between floating-point operands outside approved tolerance helpers",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && FloatEqAllowlist[fn.Name.Name] {
				return false // tolerance helper: skip its body entirely
			}
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !pass.IsFloat(be.X) || !pass.IsFloat(be.Y) {
				return true
			}
			// x != x / x == x is the standard NaN probe; exact by design.
			if sameIdent(be.X, be.Y) {
				return true
			}
			// Both sides compile-time constants: evaluated exactly.
			if pass.Info.Types[be.X].Value != nil && pass.Info.Types[be.Y].Value != nil {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison; use a tolerance helper (e.g. math.Abs(a-b) <= tol) or add a teclint:ignore floateq directive stating bit-exact intent", be.Op)
			return true
		})
	}
}

func sameIdent(x, y ast.Expr) bool {
	xi, ok1 := x.(*ast.Ident)
	yi, ok2 := y.(*ast.Ident)
	return ok1 && ok2 && xi.Name == yi.Name
}
