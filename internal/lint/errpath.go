package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrPath is the path-sensitive upgrade of droppederr: an error value
// assigned from a call must, on every subsequent path, be examined
// (compared, passed along, wrapped via tecerr, returned) before the
// function exits or the variable is overwritten. The syntactic
// droppederr only sees errors discarded at the assignment itself
// (`_ =` or statement position); errpath catches the branch-shaped
// drops —
//
//	err := refine(sys)
//	if fast {
//		return coarse(sys) // err from refine never consulted
//	}
//	return err
//
// — which are invisible statement by statement and exactly the shape
// that silently degrades Table I numbers (a skipped refinement error
// means the coarse value is reported as refined).
//
// To stay precise the analysis is deliberately narrow: it tracks only
// error-typed local variables assigned directly from a call, and it
// abandons any variable that is read or written inside a nested
// function literal (defer/closure error latching is a supported idiom,
// not a drop). Intentional discards take a
// `teclint:ignore errpath <reason>` on the assignment line.
var ErrPath = &Analyzer{
	Name: "errpath",
	Doc:  "an error assigned from a call must be checked, returned, or wrapped on every path before exit or overwrite",
	Run:  runErrPath,
}

func runErrPath(pass *Pass) {
	forEachFuncBody(pass, func(body *ast.BlockStmt) {
		a := &epAnalysis{pass: pass, body: body, excluded: closureReferencedObjs(pass, body)}
		g := BuildCFG(body, pass.Terminates)
		res := RunForward(g, a)
		reportErrPath(pass, a, g, res)
	})
}

// closureReferencedObjs collects every object referenced inside a
// nested function literal: such variables live beyond straight-line
// flow (deferred error latching, goroutine writes) and are excluded
// from tracking.
func closureReferencedObjs(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
			return true
		})
		return true
	})
	return out
}

// epState maps a tracked error variable to the position of its still
// unconsumed assignment.
type epState map[types.Object]token.Pos

type epAnalysis struct {
	pass *Pass
	// body is the block under analysis; only error variables declared
	// inside it are tracked. Writes to free variables (captured by a
	// closure from an enclosing function) and to named error results
	// (declared in the signature, implicitly read by a bare return)
	// escape this body's flow and must not be reported against it.
	body     *ast.BlockStmt
	excluded map[types.Object]bool
}

// tracks reports whether obj is an error variable this body owns.
func (a *epAnalysis) tracks(obj types.Object) bool {
	return obj.Pos() >= a.body.Pos() && obj.Pos() <= a.body.End() && !a.excluded[obj]
}

func (a *epAnalysis) Entry() FlowState { return epState{} }

func (a *epAnalysis) Equal(x, y FlowState) bool {
	sx, sy := x.(epState), y.(epState)
	if len(sx) != len(sy) {
		return false
	}
	for k, v := range sx {
		if w, ok := sy[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// Join unions pending assignments: an error unconsumed on either
// incoming path is still unconsumed. When the same variable is pending
// from two different assignments, the earlier position wins so
// diagnostics are deterministic.
func (a *epAnalysis) Join(x, y FlowState) FlowState {
	sx, sy := x.(epState), y.(epState)
	out := make(epState, len(sx)+len(sy))
	for k, v := range sx {
		out[k] = v
	}
	for k, v := range sy {
		if w, ok := out[k]; !ok || v < w {
			out[k] = v
		}
	}
	return out
}

func (a *epAnalysis) Transfer(n ast.Node, in FlowState) FlowState {
	st := in.(epState)
	out := st
	cloned := false
	ensure := func() epState {
		if !cloned {
			c := make(epState, len(st)+1)
			for k, v := range st {
				c[k] = v
			}
			out, cloned = c, true
		}
		return out
	}

	// Reads consume: any use of the variable outside an assignment
	// target means the error was examined or handed off.
	for _, obj := range errReads(a.pass, n) {
		if _, ok := out[obj]; ok {
			delete(ensure(), obj)
		}
	}
	// Error-precedence exits discharge everything pending: a return
	// that carries some other non-nil error value (`return nil, ctxErr`
	// while err holds a stale solver error — cancellation wins), or a
	// terminating call (`fatal(err)`, panic, os.Exit), is not a silent
	// success. The rule only polices paths that report success with an
	// error still unexamined.
	if len(out) > 0 && exitsWithError(a.pass, n) {
		st = epState{}
		out, cloned = st, false
	}
	// Writes (re)arm: an assignment from a call makes the variable
	// pending; any other assignment clears it (the overwrite itself is
	// reported by the reporting pass against the pre-state).
	for _, wr := range errWrites(a.pass, n) {
		if !a.tracks(wr.obj) {
			continue
		}
		if wr.fromCall {
			ensure()[wr.obj] = wr.pos
		} else if _, ok := out[wr.obj]; ok {
			delete(ensure(), wr.obj)
		}
	}
	if cloned {
		return out
	}
	return st
}

// exitsWithError reports whether node n leaves the function loudly: a
// return statement with a non-nil error-typed result, or a call that
// never returns (the CFG gives such nodes an edge straight to Exit).
func exitsWithError(pass *Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			t := pass.TypeOf(res)
			if t == nil {
				continue
			}
			if isErrorType(t) {
				return true
			}
			if tup, ok := t.(*types.Tuple); ok { // return f() forwarding (T, error)
				for i := 0; i < tup.Len(); i++ {
					if isErrorType(tup.At(i).Type()) {
						return true
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			return pass.Terminates(call)
		}
	}
	return false
}

type errWrite struct {
	obj      types.Object
	pos      token.Pos
	fromCall bool
}

// errWrites lists the error-typed variables assigned by node n.
func errWrites(pass *Pass, n ast.Node) []errWrite {
	var out []errWrite
	add := func(lhs ast.Expr, fromCall bool) {
		obj := assignedObj(pass, lhs)
		if obj != nil && isErrorType(obj.Type()) {
			out = append(out, errWrite{obj: obj, pos: lhs.Pos(), fromCall: fromCall})
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
			_, isCall := s.Rhs[0].(*ast.CallExpr)
			for _, lhs := range s.Lhs {
				add(lhs, isCall)
			}
			return out
		}
		for i, lhs := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			_, isCall := s.Rhs[i].(*ast.CallExpr)
			add(lhs, isCall)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			if len(vs.Names) > 1 && len(vs.Values) == 1 {
				_, isCall := vs.Values[0].(*ast.CallExpr)
				for _, name := range vs.Names {
					add(name, isCall)
				}
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					break
				}
				_, isCall := vs.Values[i].(*ast.CallExpr)
				add(name, isCall)
			}
		}
	}
	return out
}

// errReads lists error-typed variable uses in n, excluding assignment
// targets and anything inside nested function literals.
func errReads(pass *Pass, n ast.Node) []types.Object {
	writes := make(map[*ast.Ident]bool)
	if s, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				writes[id] = true
			}
		}
	}
	var out []types.Object
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if writes[n] {
				return true
			}
			if obj := pass.Info.Uses[n]; obj != nil && isErrorType(obj.Type()) {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// reportErrPath flags (1) pending errors overwritten before any use
// and (2) pending errors alive at function exit. Both anchor the
// diagnostic at the original assignment: that is the statement whose
// result can silently vanish.
func reportErrPath(pass *Pass, a *epAnalysis, g *CFG, res *FlowResult) {
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, b := range g.Blocks {
		stIn, ok := res.In[b]
		if !ok {
			continue
		}
		st := stIn
		for _, n := range b.Nodes {
			cur := st.(epState)
			for _, wr := range errWrites(pass, n) {
				pendingAt, pending := cur[wr.obj]
				if pending && pendingAt != wr.pos && !readsBeforeWrite(pass, n, wr.obj) {
					report(pendingAt, "error assigned to %s may be overwritten at line %d before being checked on some path; check it, or discard with a teclint:ignore errpath directive", wr.obj.Name(), pass.Fset.Position(wr.pos).Line)
				}
			}
			st = a.Transfer(n, st)
		}
	}
	if exit, ok := res.In[g.Exit]; ok {
		for obj, pos := range exit.(epState) {
			report(pos, "error assigned to %s is not checked, returned, or wrapped on every path to return; handle it on each path or discard with a teclint:ignore errpath directive", obj.Name())
		}
	}
}

// readsBeforeWrite reports whether node n reads obj (outside its own
// assignment targets), e.g. `err = wrap(err)` consumes the pending
// value in the same statement that overwrites it.
func readsBeforeWrite(pass *Pass, n ast.Node, obj types.Object) bool {
	for _, r := range errReads(pass, n) {
		if r == obj {
			return true
		}
	}
	return false
}
