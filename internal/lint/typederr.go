package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// tecerrImportPath is the typed-error package whose taxonomy solver
// code must speak once it has adopted it.
const tecerrImportPath = "tecopt/internal/tecerr"

// TypedErr flags bare fmt.Errorf calls — ones whose literal format
// string carries no %w verb — inside solver packages, i.e. non-main
// packages that import tecopt/internal/tecerr. Once a package has
// adopted the typed taxonomy, every error it originates must either be
// a tecerr value (New/Newf/Wrap/Cancelled, which attach a code, an op,
// and an exit status) or wrap an upstream error with %w so the code
// survives errors.Is/As classification. A bare fmt.Errorf severs that
// chain: the CLI exit-status mapping sees CodeInternal, fallback
// accounting loses the failure class, and callers matching sentinels
// silently stop matching. Main packages are exempt (flag-parsing
// errors print and exit; they never travel), as are test files and the
// tecerr package itself. Non-literal format strings are not flagged —
// the analyzer cannot see their verbs — so the rule stays free of
// false positives at the cost of a narrow blind spot.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc:  "flags fmt.Errorf without %w in non-main packages that import tecopt/internal/tecerr (use the tecerr taxonomy or wrap with %w)",
	Run:  runTypedErr,
}

func runTypedErr(pass *Pass) {
	if pass.Pkg == nil || pass.Pkg.Name() == "main" || pass.Pkg.Path() == tecerrImportPath {
		return
	}
	typed := false
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) == tecerrImportPath {
				typed = true
			}
		}
	}
	if !typed {
		return
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "fmt" {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || strings.Contains(lit.Value, "%w") {
				return true
			}
			pass.Reportf(call.Pos(), "bare fmt.Errorf in a typed-error package; originate errors with tecerr (New/Newf/Wrap) or wrap an upstream error with %%w so its code survives classification")
			return true
		})
	}
}
