package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanFlow tracks the open/closed state of channels through each
// function's CFG. Closing a channel twice or sending on a closed
// channel panics at runtime — in the serving layer that is a crash
// under exactly the load patterns unit tests never produce (a drain
// racing a late producer). The analyzer reports:
//
//   - close of a channel already closed (on every path, or on some
//     path — the messages differ);
//   - send on a channel closed on every or some path;
//   - receive from a locally-made unbuffered channel that nothing in
//     the function ever sends on or closes — a guaranteed deadlock
//     when the channel never escapes.
//
// Channels are tracked by object identity (parameters and locals as
// *ast.Ident), so aliasing through another variable loses track —
// a false-negative direction, never false-positive. Callee effects
// come from the concurrency summaries: a helper that closes its
// channel parameter moves the caller's channel to "maybe closed", and
// a helper that sends on its parameter counts as a writer for the
// never-written check.
var ChanFlow = &Analyzer{
	Name: "chanflow",
	Doc:  "flags double-close, send-on-closed-channel (definite or some-path), and receives from never-written unbuffered local channels",
	Run:  runChanFlow,
}

func runChanFlow(pass *Pass) {
	forEachFuncBody(pass, func(body *ast.BlockStmt) {
		checkChanStates(pass, body)
		checkDeadRecv(pass, body)
	})
}

// chanAbs is the abstract open/closed state of one channel object.
type chanAbs uint8

const (
	chanOpen chanAbs = iota
	chanMaybeClosed
	chanClosed
)

// cfState maps channel objects to their abstract state. Untracked
// objects are open/unknown — only a close on the analyzed path can
// move a channel toward closed.
type cfState map[types.Object]chanAbs

type cfAnalysis struct {
	pass *Pass
}

func (a *cfAnalysis) Entry() FlowState { return cfState{} }

func (a *cfAnalysis) Equal(x, y FlowState) bool {
	sx, sy := x.(cfState), y.(cfState)
	if len(sx) != len(sy) {
		return false
	}
	for k, v := range sx {
		if w, ok := sy[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// Join merges path states: agreeing states keep their value, a channel
// closed on one path but not the other becomes maybe-closed. A channel
// tracked on only one incoming path counts as open on the other (its
// declaration dominates both, and no close happened there).
func (a *cfAnalysis) Join(x, y FlowState) FlowState {
	sx, sy := x.(cfState), y.(cfState)
	out := make(cfState, len(sx)+len(sy))
	for k, v := range sx {
		out[k] = joinChanAbs(v, sy[k])
	}
	for k, v := range sy {
		if _, ok := sx[k]; !ok {
			out[k] = joinChanAbs(v, chanOpen)
		}
	}
	// Drop opens: absent means open, keeping states small and Equal
	// independent of which paths mentioned the channel.
	for k, v := range out {
		if v == chanOpen {
			delete(out, k)
		}
	}
	return out
}

func joinChanAbs(a, b chanAbs) chanAbs {
	if a == b {
		return a
	}
	return chanMaybeClosed
}

func (a *cfAnalysis) Transfer(n ast.Node, in FlowState) FlowState {
	ops := chanOps(a.pass, n)
	if len(ops) == 0 {
		return in
	}
	st := in.(cfState)
	out := make(cfState, len(st)+1)
	for k, v := range st {
		out[k] = v
	}
	for _, op := range ops {
		switch op.kind {
		case chanOpClose:
			out[op.obj] = chanClosed
		case chanOpMaybeClose:
			if out[op.obj] != chanClosed {
				out[op.obj] = chanMaybeClosed
			}
		case chanOpReopen:
			delete(out, op.obj)
		}
	}
	return out
}

type chanOpKind uint8

const (
	chanOpSend chanOpKind = iota
	chanOpClose
	chanOpMaybeClose // callee may close the forwarded channel
	chanOpReopen     // reassignment: state unknown again
)

type chanOp struct {
	obj  types.Object
	kind chanOpKind
	pos  token.Pos
}

// chanOps extracts the channel state transitions and sends performed
// directly by CFG node n. Nested function literals run on their own
// schedule and are analyzed with their own body.
func chanOps(pass *Pass, n ast.Node) []chanOp {
	var out []chanOp
	obj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		o := pass.Info.Uses[id]
		if o == nil {
			o = pass.Info.Defs[id]
		}
		if o == nil || !isChanType(o.Type()) {
			return nil
		}
		return o
	}
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			// A CFG range head carries the whole statement; the body's
			// ops replay in their own blocks, so only the ranged
			// expression is evaluated here.
			ast.Inspect(n.X, walk)
			return false
		case *ast.SendStmt:
			if o := obj(n.Chan); o != nil {
				out = append(out, chanOp{obj: o, kind: chanOpSend, pos: n.Arrow})
			}
		case *ast.AssignStmt:
			// Any assignment to a tracked channel variable resets its
			// state to unknown — a fresh make is open, an alias is
			// untrackable.
			for _, lhs := range n.Lhs {
				if o := obj(lhs); o != nil {
					out = append(out, chanOp{obj: o, kind: chanOpReopen, pos: n.Pos()})
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) == 1 && isBuiltinIdent(pass.Info, id, "close") {
				if o := obj(n.Args[0]); o != nil {
					out = append(out, chanOp{obj: o, kind: chanOpClose, pos: n.Pos()})
				}
				return true
			}
			// Forwarding to a summarized callee that may close it.
			if callee := staticCallee(pass.Info, n); callee != nil {
				if s := pass.Facts.Summary(callee); s != nil {
					for ai, arg := range n.Args {
						if e, ok := s.ChanParams[ai]; ok && e.Closes {
							if o := obj(arg); o != nil {
								out = append(out, chanOp{obj: o, kind: chanOpMaybeClose, pos: n.Pos()})
							}
						}
					}
				}
			}
		}
		return true
	}
	ast.Inspect(n, walk)
	return out
}

// checkChanStates runs the dataflow fixpoint and replays reachable
// blocks in order, reporting sends and closes that hit a (maybe-)
// closed channel.
func checkChanStates(pass *Pass, body *ast.BlockStmt) {
	a := &cfAnalysis{pass: pass}
	g := BuildCFG(body, pass.Terminates)
	res := RunForward(g, a)
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue // unreachable
		}
		st := in
		for _, n := range b.Nodes {
			for _, op := range chanOps(pass, n) {
				state := st.(cfState)[op.obj]
				switch op.kind {
				case chanOpSend:
					switch state {
					case chanClosed:
						pass.Reportf(op.pos, "send on %s, which was closed before this point; sending on a closed channel panics", op.obj.Name())
					case chanMaybeClosed:
						pass.Reportf(op.pos, "send on %s, which is closed on some path to this point; sending on a closed channel panics", op.obj.Name())
					}
				case chanOpClose:
					switch state {
					case chanClosed:
						pass.Reportf(op.pos, "%s is already closed at this point; closing a closed channel panics", op.obj.Name())
					case chanMaybeClosed:
						pass.Reportf(op.pos, "%s may already be closed on some path to this point; closing a closed channel panics", op.obj.Name())
					}
				}
			}
			st = a.Transfer(n, st)
		}
	}
}

// checkDeadRecv reports receives from locally-made unbuffered channels
// that nothing in the function — including its goroutines and
// summarized callees — ever sends on or closes: such a receive blocks
// forever. Channels that escape (stored, returned, captured by a call
// we cannot summarize) are trusted.
func checkDeadRecv(pass *Pass, body *ast.BlockStmt) {
	// Locally-made unbuffered channels.
	local := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil || !isUnbufferedMake(pass, as.Rhs[i]) {
				continue
			}
			local[obj] = true
		}
		return true
	})
	if len(local) == 0 {
		return
	}

	// Classify every use of each candidate, parents tracked by a
	// manual stack so each identifier is judged in context.
	written := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)
	firstRecv := make(map[types.Object]token.Pos)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !local[obj] {
			return true
		}
		parent := stack[len(stack)-2]
		switch p := parent.(type) {
		case *ast.SendStmt:
			if p.Chan == id {
				written[obj] = true
				return true
			}
		case *ast.UnaryExpr:
			if p.Op == token.ARROW {
				if _, ok := firstRecv[obj]; !ok {
					firstRecv[obj] = p.OpPos
				}
				return true
			}
		case *ast.RangeStmt:
			if p.X == id {
				if _, ok := firstRecv[obj]; !ok {
					firstRecv[obj] = p.For
				}
				return true
			}
		case *ast.CallExpr:
			if fid, ok := p.Fun.(*ast.Ident); ok && isBuiltinIdent(pass.Info, fid, "close") {
				written[obj] = true // close unblocks the receive
				return true
			}
			for ai, arg := range p.Args {
				if arg != ast.Expr(id) {
					continue
				}
				if callee := staticCallee(pass.Info, p); callee != nil {
					if s := pass.Facts.Summary(callee); s != nil {
						if e, ok := s.ChanParams[ai]; ok && (e.Sends || e.Closes) {
							written[obj] = true
							return true
						}
						if e, ok := s.ChanParams[ai]; ok && e.Recvs {
							return true // pure reader: not a writer, not an escape
						}
					}
				}
				escaped[obj] = true
				return true
			}
		}
		escaped[obj] = true
		return true
	})
	for obj, pos := range firstRecv {
		if written[obj] || escaped[obj] {
			continue
		}
		pass.Reportf(pos, "receive from unbuffered channel %s, which is never sent on or closed in this function: this blocks forever", obj.Name())
	}
}

// isUnbufferedMake reports whether e is make(chan T) or
// make(chan T, 0).
func isUnbufferedMake(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || !isBuiltinIdent(pass.Info, id, "make") {
		return false
	}
	if len(call.Args) == 0 || !isChanType(pass.TypeOf(call.Args[0])) {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	if n, ok := constIntArg(pass.Info, call.Args[1]); ok {
		return n == 0
	}
	return false
}
