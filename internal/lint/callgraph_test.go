package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSrc type-checks one source string into the pieces the call
// graph and summary layers consume.
func checkSrc(t *testing.T, src string) (*types.Info, []*ast.File, *FactStore) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	return info, []*ast.File{f}, NewFactStore()
}

func sccNames(sccs [][]*CGNode) []string {
	var out []string
	for _, scc := range sccs {
		var names []string
		for _, n := range scc {
			names = append(names, n.Fn.Name())
		}
		out = append(out, strings.Join(names, "+"))
	}
	return out
}

func TestCallGraphEdgesAndOrder(t *testing.T) {
	info, files, _ := checkSrc(t, `package p
func leaf() int { return 1 }
func mid() int  { return leaf() + leaf() }
func top() int  { return mid() + leaf() }
`)
	g := BuildCallGraph(info, files)
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(g.Nodes))
	}
	var mid *CGNode
	for fn, n := range g.Nodes {
		if fn.Name() == "top" {
			if len(n.Callees) != 2 {
				t.Errorf("top callees = %d, want 2 (deduplicated)", len(n.Callees))
			}
		}
		if fn.Name() == "mid" {
			mid = n
		}
	}
	if mid == nil || len(mid.Callees) != 1 || mid.Callees[0].Name() != "leaf" {
		t.Fatalf("mid callees wrong: %+v", mid)
	}
	got := sccNames(g.SCCs())
	want := []string{"leaf", "mid", "top"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("SCC order = %v, want %v (bottom-up)", got, want)
	}
}

func TestCallGraphMutualRecursionSCC(t *testing.T) {
	info, files, _ := checkSrc(t, `package p
func even(n int) bool { if n == 0 { return true }; return odd(n - 1) }
func odd(n int) bool  { if n == 0 { return false }; return even(n - 1) }
func user(n int) bool { return even(n) }
`)
	got := sccNames(BuildCallGraph(info, files).SCCs())
	want := []string{"even+odd", "user"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}
}

func TestCallGraphSeesCallsInsideFuncLits(t *testing.T) {
	info, files, _ := checkSrc(t, `package p
func helper() {}
func spawner() { go func() { helper() }() }
`)
	g := BuildCallGraph(info, files)
	for fn, n := range g.Nodes {
		if fn.Name() != "spawner" {
			continue
		}
		if len(n.Callees) != 1 || n.Callees[0].Name() != "helper" {
			t.Fatalf("spawner callees = %v, want [helper]", n.Callees)
		}
		return
	}
	t.Fatal("spawner not in graph")
}

func TestStaticCalleeUnresolved(t *testing.T) {
	info, files, _ := checkSrc(t, `package p
func apply(f func()) { f() }
`)
	found := false
	ast.Inspect(files[0], func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			found = true
			if callee := staticCallee(info, call); callee != nil {
				t.Errorf("function-value call resolved to %v, want nil", callee)
			}
		}
		return true
	})
	if !found {
		t.Fatal("no call found in source")
	}
}
