package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TestHelper flags test helper functions — named functions taking a
// *testing.T, *testing.B, or testing.TB parameter that call a failing
// method (Error, Fatal, Skip, ...) on it — which never call
// t.Helper(). Without t.Helper(), failures are reported at the line
// inside the helper instead of at the call site, which makes
// table-driven numeric test failures (the bulk of this repo's suite)
// needlessly hard to localize.
var TestHelper = &Analyzer{
	Name: "testhelper",
	Doc:  "flags test helpers taking *testing.T that don't call t.Helper()",
	Run:  runTestHelper,
}

// failingMethods are the *testing.T methods whose report location
// t.Helper() redirects.
var failingMethods = map[string]bool{
	"Error": true, "Errorf": true,
	"Fatal": true, "Fatalf": true,
	"Fail": true, "FailNow": true,
	"Skip": true, "Skipf": true, "SkipNow": true,
	"Log": true, "Logf": true,
}

func runTestHelper(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if strings.HasPrefix(name, "Test") || strings.HasPrefix(name, "Benchmark") || strings.HasPrefix(name, "Fuzz") || name == "TestMain" {
				continue
			}
			param := testingParam(pass, fn)
			if param == "" {
				continue
			}
			callsFailing, callsHelper := scanHelperBody(fn.Body, param)
			if callsFailing && !callsHelper {
				pass.Reportf(fn.Name.Pos(), "test helper %s calls %s.Error/Fatal/Skip but not %s.Helper(); add %s.Helper() as the first statement", name, param, param, param)
			}
		}
	}
}

// testingParam returns the name of the first parameter whose type is
// *testing.T, *testing.B, *testing.F, or testing.TB ("" if none).
func testingParam(pass *Pass, fn *ast.FuncDecl) string {
	if fn.Type.Params == nil {
		return ""
	}
	for _, field := range fn.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !isTestingType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

func isTestingType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "testing" {
		return false
	}
	switch obj.Name() {
	case "T", "B", "F", "TB":
		return true
	}
	return false
}

// scanHelperBody reports whether the body calls a failing method on the
// named testing parameter, and whether it calls <param>.Helper().
func scanHelperBody(body *ast.BlockStmt, param string) (callsFailing, callsHelper bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok || recv.Name != param {
			return true
		}
		switch {
		case sel.Sel.Name == "Helper":
			callsHelper = true
		case failingMethods[sel.Sel.Name]:
			callsFailing = true
		case sel.Sel.Name == "Run":
			// Subtests get their own *testing.T; what happens inside
			// t.Run does not make the enclosing function a helper.
			return false
		}
		return true
	})
	return callsFailing, callsHelper
}
