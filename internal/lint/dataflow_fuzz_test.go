package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// isolationCheck wraps assignNames and records every state the engine
// receives from Entry/Transfer/Join together with a snapshot taken at
// that moment. The engine's contract is that states are immutable once
// produced; if it (or BlockOut replay) ever wrote into a stored state,
// the state would drift from its snapshot.
type isolationCheck struct {
	assignNames
	states *[]anState
	snaps  *[]anState
}

func (c isolationCheck) record(s FlowState) FlowState {
	m := s.(anState)
	snap := make(anState, len(m))
	for k := range m {
		snap[k] = true
	}
	*c.states = append(*c.states, m)
	*c.snaps = append(*c.snaps, snap)
	return s
}

func (c isolationCheck) Entry() FlowState { return c.record(c.assignNames.Entry()) }

func (c isolationCheck) Transfer(n ast.Node, in FlowState) FlowState {
	return c.record(c.assignNames.Transfer(n, in))
}

func (c isolationCheck) Join(a, b FlowState) FlowState {
	return c.record(c.assignNames.Join(a, b))
}

// FuzzDataflow pushes arbitrary parseable function bodies through the
// CFG builder and the forward fixpoint engine, asserting the
// hang-proofing and immutability contracts dataflow.go documents:
// RunForward returns for every graph (even under an analysis that
// never converges, where only the step bound stops it), and no state
// handed to the engine is ever mutated afterwards — Transfer and Join
// results must stay exactly as produced, including through BlockOut
// replay.
func FuzzDataflow(f *testing.F) {
	seeds := []string{
		"x := 1\ny := x",
		"if a { x := 1; _ = x } else { y := 2; _ = y }",
		"for i := 0; i < 10; i++ { if i == 3 { continue }; x := i; _ = x }",
		"for { x := 1; _ = x }",
		"switch x { case 1: a := 1; _ = a\ncase 2: b := 2; _ = b\ndefault: }",
		"select { case <-c: v := 1; _ = v\ndefault: }",
		"L: for { if done { break L }; goto L }",
		"defer f()\nx := g()\nif x != nil { return }",
		// Channel-op bodies: the chanflow/wgbalance/mutexblock
		// transfer functions walk exactly these node shapes, so the
		// fixpoint engine must stay bounded and isolation-clean on
		// them — including the RangeStmt head that replays the whole
		// statement and detached select.case comm clauses.
		"ch := make(chan int)\nch <- 1\nclose(ch)\nclose(ch)",
		"for v := range ch { x := v; _ = x; ch2 <- v }",
		"select { case ch <- 1: x := 1; _ = x\ncase v, ok := <-ch2: _ = v; _ = ok\ndefault: }",
		"var wg sync.WaitGroup\nwg.Add(1)\ngo func() { defer wg.Done() }()\nwg.Wait()",
		"mu.Lock()\n<-ch\nmu.Unlock()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2048 {
			t.Skip() // keep per-input work bounded
		}
		file := "package p\nfunc f() {\n" + src + "\n}\n"
		parsed, err := parser.ParseFile(token.NewFileSet(), "f.go", file, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		for _, d := range parsed.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := BuildCFG(fd.Body, nil)

			// Termination under the step bound: divergent's Equal is
			// always false, so only maxFlowSteps stops the engine. A
			// hang here is a fuzz finding (the harness times out).
			RunForward(g, divergent{})

			// Clone isolation: run a converging analysis, replay every
			// block, then verify no recorded state drifted from its
			// snapshot.
			var states, snaps []anState
			chk := isolationCheck{states: &states, snaps: &snaps}
			res := RunForward(g, chk)
			if _, ok := res.In[g.Entry]; !ok {
				t.Fatal("fixpoint lost the entry block")
			}
			for b := range res.In {
				_ = res.BlockOut(chk, b)
			}
			for i := range states {
				if !(assignNames{}).Equal(states[i], snaps[i]) {
					t.Fatalf("state %d mutated after hand-off: %v, snapshot %v", i, states[i], snaps[i])
				}
			}
		}
	})
}
