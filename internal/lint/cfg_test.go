package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
	"time"
)

// parseBody wraps src in a function and returns its parsed body. Tests
// build CFGs from bare syntax (no type info), matching how the fuzz
// harness drives the builder.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing body: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in wrapped source")
	return nil
}

// TestBuildCFGShapes pins the exact block structure the builder
// produces for each control construct: the String() dump is the
// contract the dataflow analyzers rely on.
func TestBuildCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "straight line",
			src:  "x := 1\ny := x\n_ = y",
			want: `
b0[entry] n=3 -> b1
b1[exit] n=0 ->`,
		},
		{
			name: "if without else",
			src:  "if x > 0 {\n\tx++\n}\nreturn",
			want: `
b0[entry] n=1 -> b2 b3
b1[exit] n=0 ->
b2[if.then] n=1 -> b3
b3[if.after] n=1 -> b1
b4[unreachable] n=0 -> b1`,
		},
		{
			name: "if else both return",
			src:  "if c {\n\treturn\n} else {\n\treturn\n}",
			want: `
b0[entry] n=1 -> b2 b4
b1[exit] n=0 ->
b2[if.then] n=1 -> b1
b3[unreachable] n=0 -> b6
b4[if.else] n=1 -> b1
b5[unreachable] n=0 -> b6
b6[if.after] n=0 -> b1`,
		},
		{
			name: "for with cond and post",
			src:  "for i := 0; i < n; i++ {\n\tuse(i)\n}",
			want: `
b0[entry] n=1 -> b2
b1[exit] n=0 ->
b2[for.head] n=1 -> b3 b4
b3[for.body] n=1 -> b5
b4[for.after] n=0 -> b1
b5[for.post] n=1 -> b2`,
		},
		{
			name: "infinite for with break",
			src:  "for {\n\tif done {\n\t\tbreak\n\t}\n\tstep()\n}",
			want: `
b0[entry] n=0 -> b2
b1[exit] n=0 ->
b2[for.head] n=0 -> b3
b3[for.body] n=1 -> b5 b7
b4[for.after] n=0 -> b1
b5[if.then] n=1 -> b4
b6[unreachable] n=0 -> b7
b7[if.after] n=1 -> b2`,
		},
		{
			name: "range",
			src:  "for _, v := range xs {\n\tuse(v)\n}",
			want: `
b0[entry] n=0 -> b2
b1[exit] n=0 ->
b2[range.head] n=1 -> b3 b4
b3[range.body] n=1 -> b2
b4[range.after] n=0 -> b1`,
		},
		{
			name: "switch with default and fallthrough",
			// Case expressions (1, 2) are evaluated during dispatch, so
			// they live in the tag block b0, not the clause blocks.
			src: "switch x {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\tc()\n}",
			want: `
b0[entry] n=3 -> b3 b4 b5
b1[exit] n=0 ->
b2[switch.after] n=0 -> b1
b3[case] n=2 -> b4
b4[case] n=1 -> b2
b5[case] n=1 -> b2
b6[unreachable] n=0 -> b2`,
		},
		{
			name: "switch without default exits via tag",
			src:  "switch x {\ncase 1:\n\ta()\n}",
			want: `
b0[entry] n=2 -> b3 b2
b1[exit] n=0 ->
b2[switch.after] n=0 -> b1
b3[case] n=1 -> b2`,
		},
		{
			name: "type switch",
			src:  "switch v := x.(type) {\ncase int:\n\tuse(v)\n}",
			want: `
b0[entry] n=2 -> b3 b2
b1[exit] n=0 ->
b2[switch.after] n=0 -> b1
b3[case] n=1 -> b2`,
		},
		{
			name: "select with default",
			src:  "select {\ncase <-ch:\n\ta()\ndefault:\n\tb()\n}",
			want: `
b0[entry] n=0 -> b3 b4
b1[exit] n=0 ->
b2[select.after] n=0 -> b1
b3[select.case] n=2 -> b2
b4[select.case] n=1 -> b2`,
		},
		{
			name: "empty select blocks forever",
			src:  "select {}\nafterwards()",
			want: `
b0[entry] n=0 ->
b1[exit] n=0 ->
b2[select.after] n=1 -> b1`,
		},
		{
			name: "goto forward label",
			src:  "if c {\n\tgoto done\n}\na()\ndone:\nb()",
			want: `
b0[entry] n=1 -> b2 b5
b1[exit] n=0 ->
b2[if.then] n=1 -> b3
b3[label.done] n=1 -> b1
b4[unreachable] n=0 -> b5
b5[if.after] n=1 -> b3`,
		},
		{
			name: "labelled break from nested loop",
			src:  "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}\ndone()",
			want: `
b0[entry] n=0 -> b2
b1[exit] n=0 ->
b2[label.outer] n=0 -> b3
b3[for.head] n=0 -> b4
b4[for.body] n=0 -> b6
b5[for.after] n=1 -> b1
b6[for.head] n=0 -> b7
b7[for.body] n=1 -> b5
b8[for.after] n=0 -> b3
b9[unreachable] n=0 -> b6`,
		},
		{
			name: "panic terminates the then branch",
			src:  "if c {\n\tpanic(\"x\")\n}\na()",
			want: `
b0[entry] n=1 -> b2 b4
b1[exit] n=0 ->
b2[if.then] n=1 -> b1
b3[unreachable] n=0 -> b4
b4[if.after] n=1 -> b1`,
		},
		{
			name: "defer and go are straight line",
			src:  "defer cleanup()\ngo worker()\nreturn",
			want: `
b0[entry] n=3 -> b1
b1[exit] n=0 ->
b2[unreachable] n=0 -> b1`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := BuildCFG(parseBody(t, tc.src), nil)
			got := strings.TrimSpace(g.String())
			want := strings.TrimSpace(tc.want)
			if got != want {
				t.Errorf("CFG mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCFGInvariants checks the structural promises every analyzer
// depends on, over all shape-test inputs.
func TestCFGInvariants(t *testing.T) {
	srcs := []string{
		"x := 1",
		"if a {\n\tb()\n} else if c {\n\td()\n}",
		"for {\n}",
		"L:\nfor i := range xs {\n\tcontinue L\n}",
		"switch {\ncase a:\ncase b:\n}",
	}
	for _, src := range srcs {
		g := BuildCFG(parseBody(t, src), nil)
		for i, b := range g.Blocks {
			if b.Index != i {
				t.Errorf("%q: Blocks[%d].Index = %d", src, i, b.Index)
			}
			for _, s := range b.Succs {
				if g.Blocks[s.Index] != s {
					t.Errorf("%q: successor of b%d not in Blocks", src, i)
				}
			}
		}
		if len(g.Exit.Succs) != 0 {
			t.Errorf("%q: exit block has successors %v", src, g.Exit.Succs)
		}
		if g.Entry != g.Blocks[0] || g.Exit != g.Blocks[1] {
			t.Errorf("%q: entry/exit not at fixed indices", src)
		}
	}
}

// TestBuildCFGNilBody mirrors function declarations without bodies.
func TestBuildCFGNilBody(t *testing.T) {
	g := BuildCFG(nil, nil)
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("nil body: entry succs = %v", g.Entry.Succs)
	}
}

// assignNames is a toy forward analysis used to exercise the engine:
// the state is the set of variable names assigned so far.
type assignNames struct{}

type anState map[string]bool

func (assignNames) Entry() FlowState { return anState{} }

func (assignNames) Equal(a, b FlowState) bool {
	x, y := a.(anState), b.(anState)
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if !y[k] {
			return false
		}
	}
	return true
}

func (assignNames) Join(a, b FlowState) FlowState {
	x, y := a.(anState), b.(anState)
	out := make(anState, len(x)+len(y))
	for k := range x {
		out[k] = true
	}
	for k := range y {
		out[k] = true
	}
	return out
}

func (assignNames) Transfer(n ast.Node, in FlowState) FlowState {
	s, ok := n.(*ast.AssignStmt)
	if !ok {
		return in
	}
	out := make(anState, len(in.(anState))+1)
	for k := range in.(anState) {
		out[k] = true
	}
	for _, lhs := range s.Lhs {
		if id, isIdent := lhs.(*ast.Ident); isIdent {
			out[id.Name] = true
		}
	}
	return out
}

// TestRunForwardFixpoint drives the engine over a branchy, loopy body
// and checks the state that reaches the exit block.
func TestRunForwardFixpoint(t *testing.T) {
	body := parseBody(t, `
a := 1
if cond {
	b := 2
	_ = b
} else {
	c := 3
	_ = c
}
for range xs {
	d := 4
	_ = d
}
`)
	g := BuildCFG(body, nil)
	res := RunForward(g, assignNames{})
	exit, ok := res.In[g.Exit]
	if !ok {
		t.Fatal("exit block unreached")
	}
	got := exit.(anState)
	// a always assigned; b, c, d each only on some path, but the
	// union-join records "assigned on some path".
	for _, name := range []string{"a", "b", "c", "d"} {
		if !got[name] {
			t.Errorf("exit state missing %q: %v", name, got)
		}
	}
	if got["cond"] || got["xs"] {
		t.Errorf("exit state tracked non-assigned names: %v", got)
	}
}

// TestRunForwardUnreachable: blocks with no path from entry get no
// in-state, so analyzers never report on dead code.
func TestRunForwardUnreachable(t *testing.T) {
	body := parseBody(t, "return\nx := 1\n_ = x")
	g := BuildCFG(body, nil)
	res := RunForward(g, assignNames{})
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" {
			if _, ok := res.In[b]; ok {
				t.Errorf("unreachable block b%d has an in-state", b.Index)
			}
		}
	}
	if exit := res.In[g.Exit].(anState); len(exit) != 0 {
		t.Errorf("exit state should be empty, got %v", exit)
	}
}

// divergent never converges (Equal is always false); the step bound
// must stop the engine anyway.
type divergent struct{ assignNames }

func (divergent) Equal(a, b FlowState) bool { return false }

func TestRunForwardStepBound(t *testing.T) {
	body := parseBody(t, "for {\n\tx := 1\n\t_ = x\n}")
	g := BuildCFG(body, nil)
	done := make(chan struct{})
	go func() {
		RunForward(g, divergent{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunForward did not terminate under a non-converging analysis")
	}
}

// FuzzCFG asserts the builder never panics and always produces a
// well-indexed graph for any parseable function body.
func FuzzCFG(f *testing.F) {
	seeds := []string{
		"x := 1",
		"if a { return }",
		"for i := 0; i < 10; i++ { if i == 3 { continue }; if i == 5 { break } }",
		"switch x { case 1: fallthrough\ncase 2: }",
		"select { case <-c: default: }",
		"L: for { goto L }",
		"defer f()\npanic(\"boom\")",
		"goto missing",
		// Channel-op shapes the concurrency analyzers walk: sends,
		// closes, range-over-channel (whose head block carries the
		// whole RangeStmt), and comm clauses detached into
		// select.case blocks.
		"ch := make(chan int)\nch <- 1\nclose(ch)",
		"for v := range ch { ch2 <- v }",
		"select { case ch <- 1: case v := <-ch2: _ = v\ncase <-done: return }",
		"go func() { for { select { case <-ctx.Done(): return\ndefault: } } }()",
		"var wg sync.WaitGroup\nwg.Add(1)\ngo func() { defer wg.Done() }()\nwg.Wait()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file := "package p\nfunc f() {\n" + src + "\n}\n"
		parsed, err := parser.ParseFile(token.NewFileSet(), "f.go", file, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		for _, d := range parsed.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := BuildCFG(fd.Body, nil)
			for i, b := range g.Blocks {
				if b.Index != i {
					t.Fatalf("block index %d at position %d", b.Index, i)
				}
			}
			_ = g.String()
		}
	})
}
