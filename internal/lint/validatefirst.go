package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ValidateFirst is a path-sensitive taint analysis enforcing the
// validate-before-solve contract: a configuration value produced in a
// function — by a Load*/Parse* call (chipload.Load, flag-driven
// loaders) or by constructing a composite literal of a type carrying a
// Validate() error method — must reach a Validate() call on every
// path before it flows into a solver entry point (a Solve* function,
// RunawayLimit, RunawayLimitEigen, or OptimizeCurrent). An
// unvalidated config does not crash the solver; it poisons every
// iteration of the optimize loop and skews Table I / Figure 6
// silently, which is exactly why the syntactic analyzers cannot be
// trusted to catch it: the bug is the *path* that skips Validate, not
// any single statement.
//
// The analysis is intraprocedural and deliberately conservative about
// escapes: passing a tracked value (or its address) to any non-sink
// call, or calling any method on it other than Validate, stops
// tracking it — the callee may validate on the caller's behalf (the
// way core.NewSystem validates its Config), and a lost true positive
// is better than a false alarm against sound code.
var ValidateFirst = &Analyzer{
	Name: "validatefirst",
	Doc:  "loaded/constructed configs must pass Validate() on every path before reaching Solve*/RunawayLimit/OptimizeCurrent",
	Run:  runValidateFirst,
}

func runValidateFirst(pass *Pass) {
	forEachFuncBody(pass, func(body *ast.BlockStmt) {
		a := &vfAnalysis{pass: pass}
		g := BuildCFG(body, pass.Terminates)
		res := RunForward(g, a)
		reportValidateFirst(pass, a, g, res)
	})
}

// forEachFuncBody invokes fn once per function body in the unit:
// every declared function and every function literal. Each body is
// analyzed as its own CFG; literals are opaque values to the enclosing
// function's graph.
func forEachFuncBody(pass *Pass, fn func(*ast.BlockStmt)) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				if n.Body != nil {
					fn(n.Body)
				}
			}
			return true
		})
	}
}

// vfFact is the per-variable taint state: where the value came from
// and whether Validate() has been called on every path so far.
type vfFact struct {
	validated bool
	origin    token.Pos
	desc      string // "chipload.Load call", "core.Config literal"
}

// vfState maps tracked local variables to their taint fact. Treated
// as immutable; transfer clones before modifying.
type vfState map[types.Object]vfFact

type vfAnalysis struct{ pass *Pass }

func (a *vfAnalysis) Entry() FlowState { return vfState{} }

func (a *vfAnalysis) Equal(x, y FlowState) bool {
	sx, sy := x.(vfState), y.(vfState)
	if len(sx) != len(sy) {
		return false
	}
	for k, v := range sx {
		w, ok := sy[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

// Join keeps a variable tainted when it is unvalidated on either
// path; a value validated on one path but untracked on the other is
// dropped (unknown provenance is not reported).
func (a *vfAnalysis) Join(x, y FlowState) FlowState {
	sx, sy := x.(vfState), y.(vfState)
	out := vfState{}
	for k, v := range sx {
		w, ok := sy[k]
		switch {
		case ok && v.validated && w.validated:
			out[k] = v
		case ok: // present in both, unvalidated somewhere
			if v.validated {
				v = w
			}
			v.validated = false
			out[k] = v
		case !v.validated: // one-sided taint survives
			out[k] = v
		}
	}
	for k, w := range sy {
		if _, ok := sx[k]; !ok && !w.validated {
			out[k] = w
		}
	}
	return out
}

func (a *vfAnalysis) Transfer(n ast.Node, in FlowState) FlowState {
	st := in.(vfState)
	out := st
	cloned := false
	ensure := func() vfState {
		if !cloned {
			c := make(vfState, len(st)+1)
			for k, v := range st {
				c[k] = v
			}
			out, cloned = c, true
		}
		return out
	}

	// Pass 1: calls. x.Validate() sanitizes x; any other call that
	// receives a tracked variable (or its address, or a method call on
	// it) stops tracking it.
	eachShallowCall(n, func(call *ast.CallExpr) {
		if recv, ok := validateReceiver(a.pass, call); ok {
			if f, tracked := out[recv]; tracked {
				f.validated = true
				ensure()[recv] = f
			}
			return
		}
		for _, obj := range escapingVars(a.pass, call) {
			if _, tracked := out[obj]; tracked {
				delete(ensure(), obj)
			}
		}
	})

	// Pass 2: assignments create, propagate, and kill facts.
	switch s := n.(type) {
	case *ast.AssignStmt:
		a.transferAssign(s, ensure)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					a.transferVarSpec(vs, ensure)
				}
			}
		}
	case *ast.RangeStmt:
		// Per-iteration bindings have unknown provenance.
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := a.pass.Info.Defs[id]; obj != nil {
					delete(ensure(), obj)
				} else if obj := a.pass.Info.Uses[id]; obj != nil {
					delete(ensure(), obj)
				}
			}
		}
	}
	if cloned {
		return out
	}
	return st
}

func (a *vfAnalysis) transferAssign(s *ast.AssignStmt, ensure func() vfState) {
	// Multi-value call: x, err := Load(...) — facts attach positionally.
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		for i, lhs := range s.Lhs {
			obj := assignedObj(a.pass, lhs)
			if obj == nil {
				continue
			}
			if ok {
				if fact, isSrc := a.callSourceFact(call, i); isSrc {
					ensure()[obj] = fact
					continue
				}
			}
			delete(ensure(), obj)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		obj := assignedObj(a.pass, lhs)
		if obj == nil {
			continue
		}
		if fact, isSrc := a.sourceFact(s.Rhs[i]); isSrc {
			ensure()[obj] = fact
			continue
		}
		// Plain copy of a tracked value propagates its fact.
		if id, ok := s.Rhs[i].(*ast.Ident); ok {
			if src := a.pass.Info.Uses[id]; src != nil {
				if f, tracked := ensure()[src]; tracked {
					ensure()[obj] = f
					continue
				}
			}
		}
		delete(ensure(), obj)
	}
}

func (a *vfAnalysis) transferVarSpec(vs *ast.ValueSpec, ensure func() vfState) {
	if len(vs.Names) > 1 && len(vs.Values) == 1 {
		if call, ok := vs.Values[0].(*ast.CallExpr); ok {
			for i, name := range vs.Names {
				obj := a.pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				if fact, isSrc := a.callSourceFact(call, i); isSrc {
					ensure()[obj] = fact
				} else {
					delete(ensure(), obj)
				}
			}
			return
		}
	}
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		obj := a.pass.Info.Defs[name]
		if obj == nil {
			continue
		}
		if fact, isSrc := a.sourceFact(vs.Values[i]); isSrc {
			ensure()[obj] = fact
		} else {
			delete(ensure(), obj)
		}
	}
}

// sourceFact classifies an expression as a taint source: a Load*/
// Parse* call returning a validatable type, or a composite literal
// (optionally address-taken) of a validatable type.
func (a *vfAnalysis) sourceFact(e ast.Expr) (vfFact, bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		return a.callSourceFact(e, 0)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return a.sourceFact(e.X)
		}
	case *ast.CompositeLit:
		t := a.pass.TypeOf(e)
		if t != nil && a.pass.Facts.HasValidate(t) {
			return vfFact{origin: e.Pos(), desc: typeDesc(t) + " literal"}, true
		}
	}
	return vfFact{}, false
}

// callSourceFact reports whether result index i of the call is a
// taint source: the callee name starts with Load or Parse and the
// result type has a Validate() error method.
func (a *vfAnalysis) callSourceFact(call *ast.CallExpr, i int) (vfFact, bool) {
	name := calleeName(call)
	if !strings.HasPrefix(name, "Load") && !strings.HasPrefix(name, "Parse") {
		return vfFact{}, false
	}
	sig, ok := calleeSignature(a.pass, call)
	if !ok || i >= sig.Results().Len() {
		return vfFact{}, false
	}
	t := derefType(sig.Results().At(i).Type())
	if !a.pass.Facts.HasValidate(t) {
		return vfFact{}, false
	}
	return vfFact{origin: call.Pos(), desc: name + " result"}, true
}

// reportValidateFirst is the reporting pass: with the fixpoint in
// hand, walk each reachable block and flag sink calls that receive a
// tracked, not-everywhere-validated value.
func reportValidateFirst(pass *Pass, a *vfAnalysis, g *CFG, res *FlowResult) {
	seen := make(map[token.Pos]bool)
	for _, b := range g.Blocks {
		stIn, ok := res.In[b]
		if !ok {
			continue
		}
		st := stIn
		for _, n := range b.Nodes {
			cur := st.(vfState)
			eachShallowCall(n, func(call *ast.CallExpr) {
				name := calleeName(call)
				if !isSolveSink(name) {
					return
				}
				for _, obj := range sinkOperands(pass, call) {
					f, tracked := cur[obj]
					if !tracked || f.validated || seen[call.Pos()] {
						continue
					}
					seen[call.Pos()] = true
					origin := pass.Fset.Position(f.origin)
					pass.Reportf(call.Pos(), "%s may receive %s unvalidated (%s at line %d); call %s.Validate() on every path first", name, obj.Name(), f.desc, origin.Line, obj.Name())
				}
			})
			st = a.Transfer(n, st)
		}
	}
}

// isSolveSink matches the solver entry points of the contract.
func isSolveSink(name string) bool {
	switch name {
	case "RunawayLimit", "RunawayLimitEigen", "OptimizeCurrent":
		return true
	}
	return strings.HasPrefix(name, "Solve")
}

// sinkOperands returns the local variables flowing into a sink call:
// the method receiver plus every argument passed directly or by
// address.
func sinkOperands(pass *Pass, call *ast.CallExpr) []types.Object {
	var objs []types.Object
	appendIdent := func(e ast.Expr) {
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		appendIdent(sel.X)
	}
	for _, arg := range call.Args {
		appendIdent(arg)
	}
	return objs
}

// validateReceiver matches x.Validate() calls, returning the receiver
// variable.
func validateReceiver(pass *Pass, call *ast.CallExpr) (types.Object, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Validate" {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil, false
	}
	return obj, true
}

// escapingVars lists variables whose tracking must stop at this call:
// arguments passed by value or address, and the receiver of a
// non-Validate method call.
func escapingVars(pass *Pass, call *ast.CallExpr) []types.Object {
	return sinkOperands(pass, call)
}

// eachShallowCall invokes fn for every call expression syntactically
// inside n, without descending into nested function literals (their
// bodies are separate CFGs).
func eachShallowCall(n ast.Node, fn func(*ast.CallExpr)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn(n)
		}
		return true
	})
}

// assignedObj resolves the variable object written by an assignment
// target, or nil for blank, field, and index targets.
func assignedObj(pass *Pass, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// typeDesc renders a type name without its package path prefix noise.
func typeDesc(t types.Type) string {
	t = derefType(t)
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			return pkg.Name() + "." + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return t.String()
}
