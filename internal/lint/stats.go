package lint

import (
	"sort"
	"sync"
	"time"
)

// AnalyzerStat is one analyzer's aggregated work across every unit of
// a lint run: total wall time inside its Run and the number of
// findings that survived suppression under its rule. The badignore
// pseudo-rule appears with zero time (it is emitted by the framework,
// not an analyzer).
type AnalyzerStat struct {
	Name     string `json:"name"`
	Nanos    int64  `json:"nanos"`
	Findings int    `json:"findings"`
}

// StatsCollector accumulates AnalyzerStats across units; safe for the
// parallel runner (units fan out over a worker pool). All methods are
// nil-safe so the non-stats path costs nothing.
type StatsCollector struct {
	mu      sync.Mutex
	entries map[string]*AnalyzerStat
}

// NewStatsCollector returns an empty collector.
func NewStatsCollector() *StatsCollector {
	return &StatsCollector{entries: make(map[string]*AnalyzerStat)}
}

func (c *StatsCollector) entry(name string) *AnalyzerStat {
	e := c.entries[name]
	if e == nil {
		e = &AnalyzerStat{Name: name}
		c.entries[name] = e
	}
	return e
}

// addTime charges d to the named analyzer (and ensures it has a row
// even when it never finds anything).
func (c *StatsCollector) addTime(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entry(name).Nanos += d.Nanoseconds()
	c.mu.Unlock()
}

// addFindings counts surviving findings per rule.
func (c *StatsCollector) addFindings(diags []Diagnostic) {
	if c == nil || len(diags) == 0 {
		return
	}
	c.mu.Lock()
	for _, d := range diags {
		c.entry(d.Rule).Findings++
	}
	c.mu.Unlock()
}

// Stats returns the per-analyzer rows sorted by name, for
// deterministic output.
func (c *StatsCollector) Stats() []AnalyzerStat {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]AnalyzerStat, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
