package lint

// concsummary.go is the concurrency-effects half of the function
// summary layer (summary.go): per-parameter channel operations,
// WaitGroup deltas, may-block, and cancellation observation, harvested
// bottom-up over the call graph in the same SCC fixpoint as the other
// summary facts. The five concurrency analyzers (chanflow, wgbalance,
// mutexblock, oncemisuse, spawnctx) consume these facts so that a
// channel closed inside a helper, a Done performed by a spawned
// worker, or a block hidden two calls deep is still visible at the
// call site under analysis.
//
// Every fact here is a MAY fact — "this effect can happen on some
// execution" — never a MUST fact. That keeps the lattice monotone
// (booleans flip false->true, effect sets only grow) and the fixpoint
// trivially terminating, at the cost of the soundness limits
// documented in DESIGN §15: effects inside spawned goroutines are
// attributed to the spawning function, function values and interface
// methods contribute nothing, and aliasing is ignored.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ChanEffect records which operations a function may perform on a
// channel-typed parameter: sends, receives, closes.
type ChanEffect struct {
	Sends  bool
	Recvs  bool
	Closes bool
}

func (e ChanEffect) isZero() bool { return !e.Sends && !e.Recvs && !e.Closes }

func (e ChanEffect) merge(o ChanEffect) ChanEffect {
	return ChanEffect{
		Sends:  e.Sends || o.Sends,
		Recvs:  e.Recvs || o.Recvs,
		Closes: e.Closes || o.Closes,
	}
}

// WGEffect records sync.WaitGroup effects through a *sync.WaitGroup
// parameter: the summed constant Add argument (AddUnknown when any
// Add argument is non-constant), the number of Done calls, and
// whether Wait is called.
type WGEffect struct {
	AddDelta   int
	AddUnknown bool
	Dones      int
	CallsWait  bool
}

func (e WGEffect) isZero() bool {
	return e.AddDelta == 0 && !e.AddUnknown && e.Dones == 0 && !e.CallsWait
}

func (e WGEffect) merge(o WGEffect) WGEffect {
	return WGEffect{
		AddDelta:   e.AddDelta + o.AddDelta,
		AddUnknown: e.AddUnknown || o.AddUnknown,
		Dones:      e.Dones + o.Dones,
		CallsWait:  e.CallsWait || o.CallsWait,
	}
}

// refineConcurrency recomputes the concurrency facts of one summary
// from scratch and reports whether anything changed. Called from the
// SCC fixpoint in refineSummary: callee summaries below the current
// SCC are final, in-SCC callees converge over iterations.
func (f *FactStore) refineConcurrency(info *types.Info, node *CGNode, s *FuncSummary) bool {
	body := node.Decl.Body
	sig, _ := node.Fn.Type().(*types.Signature)
	chanIdx, wgIdx := concParamIndex(sig)

	chans, wgs := f.collectParamEffects(info, body, chanIdx, wgIdx)
	mayBlock, blockWhy := f.bodyMayBlock(info, body)
	observes := f.bodyObservesCancel(info, body)
	unobserved := len(f.unobservedLoops(info, body)) > 0

	changed := false
	if !chanEffectsEqual(s.ChanParams, chans) {
		s.ChanParams = chans
		changed = true
	}
	if !wgEffectsEqual(s.WGParams, wgs) {
		s.WGParams = wgs
		changed = true
	}
	if mayBlock && !s.MayBlock {
		s.MayBlock, s.BlockWhy = true, blockWhy
		changed = true
	}
	if observes && !s.ObservesCancel {
		s.ObservesCancel = true
		changed = true
	}
	if unobserved != s.HasUnobservedLoop {
		// May flip back to false as in-SCC callees are proved to
		// observe cancellation; ObservesCancel itself is monotone, so
		// this flips at most once per direction.
		s.HasUnobservedLoop = unobserved
		changed = true
	}
	return changed
}

func chanEffectsEqual(a, b map[int]ChanEffect) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func wgEffectsEqual(a, b map[int]WGEffect) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// concParamIndex maps the declared parameter objects of interest to
// their signature index: channel-typed parameters and *sync.WaitGroup
// parameters.
func concParamIndex(sig *types.Signature) (chans, wgs map[types.Object]int) {
	chans = make(map[types.Object]int)
	wgs = make(map[types.Object]int)
	if sig == nil {
		return chans, wgs
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isChanType(p.Type()) {
			chans[p] = i
		} else if isWaitGroupPtr(p.Type()) {
			wgs[p] = i
		}
	}
	return chans, wgs
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isBuiltinIdent reports whether id is an unshadowed use of the named
// builtin (close, make, ...). go/types records builtin uses as
// *types.Builtin objects, so a plain nil check would miss them.
func isBuiltinIdent(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// isWaitGroupPtr reports whether t is *sync.WaitGroup.
func isWaitGroupPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isSyncNamed(ptr.Elem(), "WaitGroup")
}

// isSyncNamed reports whether t is the named sync.<name> type.
func isSyncNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// collectParamEffects walks the whole body — including function
// literals and spawned goroutines, whose effects the call graph
// attributes to the enclosing function — recording channel and
// WaitGroup operations on the tracked parameter objects, both direct
// ops and ops performed by summarized callees the parameter is passed
// to.
func (f *FactStore) collectParamEffects(info *types.Info, body *ast.BlockStmt, chanIdx, wgIdx map[types.Object]int) (map[int]ChanEffect, map[int]WGEffect) {
	chans := make(map[int]ChanEffect)
	wgs := make(map[int]WGEffect)
	addChan := func(obj types.Object, e ChanEffect) {
		if i, ok := chanIdx[obj]; ok {
			chans[i] = chans[i].merge(e)
		}
	}
	addWG := func(obj types.Object, e WGEffect) {
		if i, ok := wgIdx[obj]; ok {
			wgs[i] = wgs[i].merge(e)
		}
	}
	paramObj := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return info.Uses[id]
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			addChan(paramObj(n.Chan), ChanEffect{Sends: true})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				addChan(paramObj(n.X), ChanEffect{Recvs: true})
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) {
				addChan(paramObj(n.X), ChanEffect{Recvs: true})
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) == 1 && isBuiltinIdent(info, id, "close") {
				addChan(paramObj(n.Args[0]), ChanEffect{Closes: true})
				return true
			}
			// WaitGroup method on a tracked parameter.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					if obj := paramObj(sel.X); obj != nil {
						switch fn.Name() {
						case "Add":
							e := WGEffect{AddUnknown: true}
							if len(n.Args) == 1 {
								if v, ok := constIntArg(info, n.Args[0]); ok {
									e = WGEffect{AddDelta: v}
								}
							}
							addWG(obj, e)
						case "Done":
							addWG(obj, WGEffect{Dones: 1})
						case "Wait":
							addWG(obj, WGEffect{CallsWait: true})
						}
					}
				}
			}
			// Forwarding a tracked parameter to a summarized callee
			// inherits the callee's effects on it.
			callee := staticCallee(info, n)
			if callee == nil {
				return true
			}
			cs := f.Summary(callee)
			if cs == nil {
				return true
			}
			for ai, arg := range n.Args {
				obj := paramObj(arg)
				if obj == nil {
					// &wg forwarded to a *sync.WaitGroup parameter.
					if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
						obj = paramObj(u.X)
					}
				}
				if obj == nil {
					continue
				}
				if e, ok := cs.ChanParams[ai]; ok {
					addChan(obj, e)
				}
				if e, ok := cs.WGParams[ai]; ok {
					addWG(obj, e)
				}
			}
		}
		return true
	})
	return chans, wgs
}

// constIntArg evaluates e as a constant int, for WaitGroup Add deltas.
func constIntArg(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	i, exact := constant.Int64Val(v)
	if !exact {
		return 0, false
	}
	return int(i), true
}

// blockSite is one potentially-blocking operation.
type blockSite struct {
	pos token.Pos
	why string
}

// bodyMayBlock reports whether executing the body can park the calling
// goroutine, and why. Spawned goroutines are skipped (they block
// themselves, not the caller); deferred calls and function literals
// are included, matching the call graph's attribution.
func (f *FactStore) bodyMayBlock(info *types.Info, body *ast.BlockStmt) (bool, string) {
	sites := findBlockSites(info, f, body, blockScanOpts{skipGo: true})
	if len(sites) == 0 {
		return false, ""
	}
	return true, sites[0].why
}

type blockScanOpts struct {
	// skipGo skips go-statement subtrees: a spawned body blocks the
	// goroutine it starts, not the function that starts it.
	skipGo bool
	// skipFuncLit skips nested function literals: used by mutexblock,
	// where a literal merely defined while a lock is held does not
	// execute under it.
	skipFuncLit bool
	// skipDefer skips defer statements: deferred calls run at return,
	// after deferred unlocks are scheduled, so mutexblock excludes
	// them.
	skipDefer bool
	// firstOnly stops at the first site found.
	firstOnly bool
	// nonBlocking marks additional comm statements known to be inside
	// a select-with-default. CFG-based callers need this: the CFG
	// hands out comm statements detached from their enclosing
	// SelectStmt, so the per-node scan below cannot see the default.
	nonBlocking map[ast.Stmt]bool
	// shallowRange stops at range statement bodies: a CFG range head
	// carries the whole statement, and the body's operations replay in
	// their own blocks. Whole-body scans leave this false.
	shallowRange bool
}

// findBlockSites walks n and returns the potentially-blocking
// operations it performs: channel sends/receives outside a
// select-with-default, ranging over a channel, blocking standard
// library calls (WaitGroup.Wait, Cond.Wait, time.Sleep, network and
// file I/O), and calls to module functions whose summary says
// MayBlock.
func findBlockSites(info *types.Info, facts *FactStore, n ast.Node, opts blockScanOpts) []blockSite {
	nonBlocking := nonBlockingComms(n)
	for s := range opts.nonBlocking {
		nonBlocking[s] = true
	}
	var out []blockSite
	add := func(pos token.Pos, why string) {
		out = append(out, blockSite{pos: pos, why: why})
	}
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		if opts.firstOnly && len(out) > 0 {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return !opts.skipFuncLit
		case *ast.GoStmt:
			return !opts.skipGo
		case *ast.DeferStmt:
			return !opts.skipDefer
		case ast.Stmt:
			if nonBlocking[n] {
				return false // comm of a select with a default: never parks
			}
			if s, ok := n.(*ast.SendStmt); ok {
				add(s.Arrow, "channel send")
			}
			if r, ok := n.(*ast.RangeStmt); ok {
				if isChanType(info.TypeOf(r.X)) {
					add(r.For, "range over channel")
				}
				if opts.shallowRange {
					ast.Inspect(r.X, walk)
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(n.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			if why, ok := blockingCall(info, facts, n); ok {
				add(n.Pos(), why)
			}
		}
		return true
	}
	ast.Inspect(n, walk)
	return out
}

// nonBlockingComms collects the comm statements of every select that
// has a default clause under root: those sends/receives never park
// (the default takes over), so the block scan skips them.
func nonBlockingComms(root ast.Node) map[ast.Stmt]bool {
	out := make(map[ast.Stmt]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		var comms []ast.Stmt
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				hasDefault = true
			} else {
				comms = append(comms, cc.Comm)
			}
		}
		if hasDefault {
			for _, c := range comms {
				out[c] = true
			}
		}
		return true
	})
	return out
}

// blockingFileMethods are the *os.File methods treated as file I/O.
var blockingFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "ReadFrom": true,
	"Write": true, "WriteAt": true, "WriteString": true, "WriteTo": true,
	"Sync": true,
}

// blockingOSFuncs are the package-level os functions treated as file I/O.
var blockingOSFuncs = map[string]bool{
	"ReadFile": true, "WriteFile": true, "Open": true, "OpenFile": true,
	"Create": true,
}

// blockingIOFuncs are the io helpers that loop over reads/writes.
var blockingIOFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true,
	"ReadAll": true, "ReadFull": true,
}

// blockingCall classifies a call as potentially blocking: the
// standard-library park points, or a module callee whose summary says
// MayBlock. sync.Cond.Wait counts here (the summary is about parking);
// mutexblock separately exempts direct Cond.Wait calls, which are
// designed to run with the mutex held.
func blockingCall(info *types.Info, facts *FactStore, call *ast.CallExpr) (string, bool) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch {
	case pkg == "sync" && name == "Wait":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if isWaitGroupPtr(sig.Recv().Type()) {
				return "sync.WaitGroup.Wait", true
			}
			return "sync.Cond.Wait", true
		}
	case pkg == "time" && name == "Sleep":
		return "time.Sleep", true
	case pkg == "net" || hasPathPrefix(pkg, "net/"):
		return "network I/O (" + pkg + "." + name + ")", true
	case pkg == "os/exec":
		return "subprocess I/O (os/exec." + name + ")", true
	case pkg == "os":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if blockingFileMethods[name] {
				return "file I/O (os.File." + name + ")", true
			}
		} else if blockingOSFuncs[name] {
			return "file I/O (os." + name + ")", true
		}
	case pkg == "io" && blockingIOFuncs[name]:
		return "I/O (io." + name + ")", true
	}
	if s := facts.Summary(fn); s != nil && s.MayBlock {
		return "call to " + fn.Name() + " (" + s.BlockWhy + ")", true
	}
	return "", false
}

func hasPathPrefix(path, prefix string) bool {
	return len(path) >= len(prefix) && path[:len(prefix)] == prefix
}

// bodyObservesCancel reports whether the body observes cancellation
// somewhere outside nested function literals and spawned goroutines.
func (f *FactStore) bodyObservesCancel(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		if observesCancelNode(info, f, n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// observesCancelNode reports whether the single node n is a
// cancellation observation: a receive from ctx.Done(), a ctx.Err()
// call, a comma-ok channel receive (which sees channel close), a range
// over a channel (which exits on close), or a call to a module
// function whose summary observes cancellation.
func observesCancelNode(info *types.Info, facts *FactStore, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.UnaryExpr:
		return n.Op == token.ARROW && isContextMethodCall(info, n.X, "Done")
	case *ast.CallExpr:
		if isContextMethodCallExpr(info, n, "Err") {
			return true
		}
		if callee := staticCallee(info, n); callee != nil {
			if s := facts.Summary(callee); s != nil && s.ObservesCancel {
				return true
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
			if u, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true // v, ok := <-ch observes close
			}
		}
	case *ast.RangeStmt:
		return isChanType(info.TypeOf(n.X))
	}
	return false
}

// isContextMethodCall reports whether e is a call of the named
// context.Context method.
func isContextMethodCall(info *types.Info, e ast.Expr, name string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isContextMethodCallExpr(info, call, name)
}

func isContextMethodCallExpr(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// nodeObserves deep-walks one CFG node (skipping nested function
// literals and go statements) looking for a cancellation observation.
func nodeObserves(info *types.Info, facts *FactStore, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		if observesCancelNode(info, facts, n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// unobservedLoops returns the positions of every unconditional `for`
// loop in body whose CFG has a cycle through the loop head that passes
// no cancellation observation — the loop can iterate forever without
// noticing ctx.Done() or a channel close. Conditional and range loops
// are exempt (their condition bounds them, or close exits them); a
// select statement observes on every case when any of its comms does,
// because dispatch re-polls all channels each iteration.
func (f *FactStore) unobservedLoops(info *types.Info, body *ast.BlockStmt) []token.Pos {
	// Cheap syntactic gate: no unconditional for loop outside nested
	// function literals, no CFG work.
	bare := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				bare = true
			}
		}
		return !bare
	})
	if !bare {
		return nil
	}

	g := BuildCFG(body, TerminatesCall(info, f))

	// Comms of a select with an observing comm all observe: whichever
	// case fires, the dispatch polled the cancellation channel.
	selObserving := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			observes := false
			var comms []ast.Stmt
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				comms = append(comms, cc.Comm)
				if nodeObserves(info, f, cc.Comm) {
					observes = true
				}
			}
			if observes {
				for _, c := range comms {
					selObserving[c] = true
				}
			}
		}
		return true
	})

	observing := make([]bool, len(g.Blocks))
	for i, b := range g.Blocks {
		for _, n := range b.Nodes {
			if selObserving[n] || nodeObserves(info, f, n) {
				observing[i] = true
				break
			}
		}
	}

	var out []token.Pos
	for _, b := range g.Blocks {
		fs, ok := b.Loop.(*ast.ForStmt)
		if !ok || fs.Cond != nil || observing[b.Index] {
			continue
		}
		if cycleThrough(g, b, observing) {
			out = append(out, fs.Pos())
		}
	}
	return out
}

// cycleThrough reports whether the CFG has a cycle through start that
// avoids every observing block.
func cycleThrough(g *CFG, start *Block, observing []bool) bool {
	seen := make([]bool, len(g.Blocks))
	work := []*Block{}
	for _, s := range start.Succs {
		if !observing[s.Index] {
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if b == start {
			return true
		}
		if seen[b.Index] || observing[b.Index] {
			continue
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !observing[s.Index] {
				work = append(work, s)
			}
		}
	}
	return false
}
