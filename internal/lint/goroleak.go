package lint

// goroleak checks that every `go` statement spawns something that can
// actually finish. A long-running service (the ROADMAP's tecserve)
// leaks a goroutine per request if a worker loop has no ctx.Done()/
// channel-close exit, and the leak is invisible until memory or the
// scheduler gives out — the CFG already knows at lint time.
//
// For a spawned function literal, the literal's own CFG must reach
// its exit block: a `for { select { case <-ctx.Done(): return ... } }`
// loop terminates (the return edge), `for {}` and `select {}` do not,
// and a `for range ch` loop terminates when the channel is closed
// (the range exit edge models exactly that). For a named callee, the
// answer comes from the bottom-up function summary (NeverTerminates),
// so spawning a helper whose loop forgot its exit path is caught at
// the `go` statement even when the helper lives in another package.
// Unresolvable callees (function values, interface methods) are
// trusted.

import (
	"go/ast"
)

var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement must spawn a function whose CFG can reach its exit (a ctx.Done()/channel-close termination path); named callees answer through function summaries",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g)
			return true
		})
	}
}

func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if bodyCannotFinish(pass, fun.Body) {
			pass.Reportf(g.Pos(), "goroutine can never finish: no path reaches return (add a ctx.Done() or channel-close exit)")
		}
	default:
		callee := staticCallee(pass.Info, g.Call)
		if callee == nil {
			return
		}
		if s := pass.Facts.Summary(callee); s != nil && s.NeverTerminates {
			pass.Reportf(g.Pos(), "goroutine runs %s, which can never finish: no path reaches return (add a ctx.Done() or channel-close exit)", callee.Name())
		}
	}
}

// bodyCannotFinish builds the body's CFG and reports whether its exit
// block is unreachable from entry.
func bodyCannotFinish(pass *Pass, body *ast.BlockStmt) bool {
	g := BuildCFG(body, pass.Terminates)
	reached := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, succ := range b.Succs {
			if !reached[succ] {
				reached[succ] = true
				work = append(work, succ)
			}
		}
	}
	return !reached[g.Exit]
}
