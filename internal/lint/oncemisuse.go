package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
)

// OnceMisuse audits sync.Once usage. A Once's whole contract is "this
// exact initialization runs exactly once"; three idioms silently break
// it:
//
//   - passing a sync.Once by value (the copy has its own done flag, so
//     "once" becomes "once per copy");
//   - reassigning a Once (`o = sync.Once{}`) to "reset" it — racy
//     against concurrent Do callers and almost always a design smell;
//   - calling Do on the same Once with different functions: only the
//     first ever runs, and which one is first depends on scheduling.
//     Sites are grouped by Once identity — the variable object for
//     plain identifiers, the receiver type plus field path for field
//     selections (every instance of a struct should initialize its
//     Once field the same way) — and the Do argument is fingerprinted
//     by its printed source, so textually identical closures at
//     several call sites (the keyed-cache dedup idiom) do not fire.
var OnceMisuse = &Analyzer{
	Name: "oncemisuse",
	Doc:  "flags by-value sync.Once parameters, Once reassignment, and Do calls with differing functions on the same Once",
	Run:  runOnceMisuse,
}

func runOnceMisuse(pass *Pass) {
	checkOnceParams(pass)
	checkOnceReassign(pass)
	checkDoIdentity(pass)
}

// checkOnceParams reports sync.Once (value) parameters.
func checkOnceParams(pass *Pass) {
	check := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			t := pass.TypeOf(field.Type)
			if t == nil || !isSyncNamed(t, "Once") {
				continue
			}
			pass.Reportf(field.Type.Pos(), "sync.Once parameter passed by value; the copy has its own done flag, so the function body can run again — take *sync.Once")
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				check(n.Type)
			case *ast.FuncLit:
				check(n.Type)
			}
			return true
		})
	}
}

// checkOnceReassign reports assignments (not definitions) whose target
// is a sync.Once: overwriting a Once resets its done flag with no
// synchronization against racing Do callers.
func checkOnceReassign(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range as.Lhs {
				t := pass.TypeOf(lhs)
				if t == nil || !isSyncNamed(t, "Once") {
					continue
				}
				pass.Reportf(lhs.Pos(), "sync.Once reassigned; resetting a Once races concurrent Do callers — allocate a fresh Once where the guarded state is created")
			}
			return true
		})
	}
}

// doSite is one (*sync.Once).Do call site.
type doSite struct {
	pos         token.Pos
	fingerprint string
}

// checkDoIdentity groups Do call sites by Once identity and reports
// sites whose function argument differs from the group's first.
func checkDoIdentity(pass *Pass) {
	type group struct {
		sites []doSite
	}
	groups := make(map[any]*group)
	var order []any
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Do" {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Do" {
				return true
			}
			key := onceIdentity(pass, sel.X)
			if key == nil {
				return true
			}
			g, ok := groups[key]
			if !ok {
				g = &group{}
				groups[key] = g
				order = append(order, key)
			}
			g.sites = append(g.sites, doSite{pos: call.Args[0].Pos(), fingerprint: fingerprintExpr(pass.Fset, call.Args[0])})
			return true
		})
	}
	for _, key := range order {
		g := groups[key]
		if len(g.sites) < 2 {
			continue
		}
		sort.Slice(g.sites, func(i, j int) bool { return g.sites[i].pos < g.sites[j].pos })
		first := g.sites[0]
		for _, s := range g.sites[1:] {
			if s.fingerprint != first.fingerprint {
				pass.Reportf(s.pos, "Once.Do called with a different function than at line %d; only the first Do ever runs, so one of these initializations is silently skipped", pass.Fset.Position(first.pos).Line)
			}
		}
	}
}

// onceIdentity computes a grouping key for the Once receiver
// expression: the variable object for a plain identifier, the
// "type.field[.field...]" path for a field selection, nil when the
// expression is too dynamic to group (map index, call result).
func onceIdentity(pass *Pass, recv ast.Expr) any {
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		if o := pass.Info.Uses[e]; o != nil {
			return o
		}
		return nil
	case *ast.SelectorExpr:
		base := pass.TypeOf(e.X)
		if base == nil {
			return nil
		}
		return types.TypeString(derefType(base), nil) + "." + e.Sel.Name
	case *ast.StarExpr:
		return onceIdentity(pass, e.X)
	}
	return nil
}

// fingerprintExpr canonicalizes the Do argument: the printed source of
// the expression, which go/printer normalizes (whitespace, formatting)
// so that textually identical closures compare equal.
func fingerprintExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
