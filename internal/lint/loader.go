package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked analysis unit: either a package together
// with its in-package _test.go files, or an external "_test" package.
type Unit struct {
	Fset  *token.FileSet
	Dir   string
	Path  string // import path ("tecopt/internal/mat", or ".../mat_test")
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library. Imports within the module are resolved by
// mapping the import path onto the module directory tree; standard
// library imports are type-checked from GOROOT source via go/importer.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string

	std     types.Importer
	cache   map[string]*types.Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at moduleRoot, reading the module
// path from go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", moduleRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleRoot: moduleRoot,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir looking for a go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import resolves an import path for the type checker: module-internal
// paths load from the module tree (non-test files only), everything
// else defers to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importModulePackage(path)
	}
	return l.std.Import(path)
}

func (l *Loader) importModulePackage(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.ModuleRoot
	if path != l.ModulePath {
		dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	}
	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s for import %q", dir, path)
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// Load parses and type-checks the package in dir for analysis. It
// returns one unit for the package including its in-package test files
// and, if present, a second unit for the external _test package.
func (l *Loader) Load(dir string) ([]*Unit, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	all, err := l.parseDir(dir, func(string) bool { return true })
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	path := l.importPathFor(dir)

	// Split into the base package (plus in-package tests) and the
	// external test package, by package clause.
	var base, xtest []*ast.File
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			base = append(base, f)
		}
	}

	var units []*Unit
	if len(base) > 0 {
		pkg, info, err := l.check(path, base)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		units = append(units, &Unit{Fset: l.Fset, Dir: dir, Path: path, Files: base, Pkg: pkg, Info: info})
	}
	if len(xtest) > 0 {
		xpath := path + "_test"
		pkg, info, err := l.check(xpath, xtest)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", xpath, err)
		}
		units = append(units, &Unit{Fset: l.Fset, Dir: dir, Path: xpath, Files: xtest, Pkg: pkg, Info: info})
	}
	return units, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !keep(name) {
			continue
		}
		// Respect build constraints (//go:build tags, GOOS/GOARCH file
		// suffixes) for the default build configuration, so that e.g.
		// race-only and non-race variants of a file are never loaded
		// into the same package.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// PackageDirs returns every directory under root containing Go source,
// skipping testdata, hidden, and VCS directories. Paths are returned in
// sorted order for deterministic runs.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}
