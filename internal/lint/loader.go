package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Unit is one type-checked analysis unit: either a package together
// with its in-package _test.go files, or an external "_test" package.
type Unit struct {
	Fset  *token.FileSet
	Dir   string
	Path  string // import path ("tecopt/internal/mat", or ".../mat_test")
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Facts is the loader's cross-package fact store, shared by every
	// unit the loader produced.
	Facts *FactStore
}

// FactStore accumulates facts derived across every package the loader
// type-checks — including module-internal packages loaded only as
// imports — so the path-sensitive analyzers can reason about callees
// outside the unit under analysis. It is deliberately lightweight:
// facts are computed from syntax and types already in hand, never by
// re-analyzing a package.
//
// Facts recorded:
//
//   - no-return functions: a function whose body cannot complete
//     normally (ends in panic, os.Exit, log.Fatal*, an empty select,
//     or a call to another no-return function, with no reachable
//     return statement). The CFG builder uses these so code after
//     `fatal(err)` is not treated as a live path.
//   - Validate methods: whether a type's method set carries
//     `Validate() error` (cached; used by the validatefirst taint
//     analysis to decide which values need validation).
//
// All methods are safe on a nil receiver (returning zero values) and
// safe for concurrent use, since cmd/teclint analyzes units in
// parallel once loading completes.
type FactStore struct {
	mu        sync.Mutex
	noReturn  map[*types.Func]bool
	validate  map[types.Type]bool
	summaries map[*types.Func]*FuncSummary
	genTypes  map[*types.Named]string // cache-keyed type -> generation field
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{
		noReturn:  make(map[*types.Func]bool),
		validate:  make(map[types.Type]bool),
		summaries: make(map[*types.Func]*FuncSummary),
		genTypes:  make(map[*types.Named]string),
	}
}

// NoReturn reports whether fn was proved to never return.
func (f *FactStore) NoReturn(fn *types.Func) bool {
	if f == nil || fn == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.noReturn[fn]
}

// HasValidate reports whether t (or *t) has a Validate() error method.
func (f *FactStore) HasValidate(t types.Type) bool {
	if f == nil || t == nil {
		return false
	}
	f.mu.Lock()
	if v, ok := f.validate[t]; ok {
		f.mu.Unlock()
		return v
	}
	f.mu.Unlock()
	v := hasValidateMethod(t)
	f.mu.Lock()
	f.validate[t] = v
	f.mu.Unlock()
	return v
}

func hasValidateMethod(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			fn, ok := ms.At(i).Obj().(*types.Func)
			if !ok || fn.Name() != "Validate" {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type()) {
				return true
			}
		}
	}
	return false
}

// CtxVariant returns the context-accepting sibling of fn — the
// function or method named fn.Name()+"Ctx" in the same scope (package
// scope for functions, the receiver's method set for methods) whose
// first parameter is a context.Context — or nil when none exists.
func (f *FactStore) CtxVariant(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	want := fn.Name() + "Ctx"
	var cand *types.Func
	if recv := sig.Recv(); recv != nil {
		ms := types.NewMethodSet(recv.Type())
		if sel := ms.Lookup(fn.Pkg(), want); sel != nil {
			cand, _ = sel.Obj().(*types.Func)
		}
	} else if fn.Pkg() != nil {
		cand, _ = fn.Pkg().Scope().Lookup(want).(*types.Func)
	}
	if cand == nil {
		return nil
	}
	csig, ok := cand.Type().(*types.Signature)
	if !ok || csig.Params().Len() == 0 || !isContextType(csig.Params().At(0).Type()) {
		return nil
	}
	return cand
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// recordNoReturns scans a type-checked package's declarations for
// functions that cannot return, iterating to a local fixpoint so
// helpers that call other no-return helpers are found regardless of
// declaration order.
func (f *FactStore) recordNoReturns(info *types.Info, files []*ast.File) {
	if f == nil {
		return
	}
	for {
		added := false
		for _, file := range files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := info.Defs[fd.Name].(*types.Func)
				if !ok || f.NoReturn(obj) {
					continue
				}
				if f.bodyNeverReturns(info, fd.Body) {
					f.mu.Lock()
					f.noReturn[obj] = true
					f.mu.Unlock()
					added = true
				}
			}
		}
		if !added {
			return
		}
	}
}

// bodyNeverReturns is a conservative syntactic check: the body must
// contain no return statement (outside nested function literals) and
// its final statement must be a terminating call or an empty select.
func (f *FactStore) bodyNeverReturns(info *types.Info, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	hasReturn := false
	for _, st := range body.List {
		ast.Inspect(st, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				hasReturn = true
			}
			return !hasReturn
		})
	}
	if hasReturn {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		return ok && f.callNeverReturns(info, call)
	case *ast.SelectStmt:
		return len(last.Body.List) == 0
	}
	return false
}

func (f *FactStore) callNeverReturns(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			obj, ok := info.Uses[fun]
			if !ok || obj == nil || obj == types.Universe.Lookup("panic") {
				return true
			}
		}
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return stdNoReturn(fn) || f.NoReturn(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return stdNoReturn(fn) || f.NoReturn(fn)
		}
	}
	return false
}

// Loader parses and type-checks packages of a single module using only
// the standard library. Imports within the module are resolved by
// mapping the import path onto the module directory tree; standard
// library imports are type-checked from GOROOT source via go/importer.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string

	std     types.Importer
	cache   map[string]*types.Package
	loading map[string]bool
	facts   *FactStore
}

// Facts exposes the loader's cross-package fact store.
func (l *Loader) Facts() *FactStore { return l.facts }

// NewLoader creates a loader rooted at moduleRoot, reading the module
// path from go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", moduleRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleRoot: moduleRoot,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*types.Package),
		loading:    make(map[string]bool),
		facts:      NewFactStore(),
	}, nil
}

// FindModuleRoot walks up from dir looking for a go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import resolves an import path for the type checker: module-internal
// paths load from the module tree (non-test files only), everything
// else defers to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importModulePackage(path)
	}
	return l.std.Import(path)
}

func (l *Loader) importModulePackage(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.ModuleRoot
	if path != l.ModulePath {
		dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	}
	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s for import %q", dir, path)
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// Load parses and type-checks the package in dir for analysis. It
// returns one unit for the package including its in-package test files
// and, if present, a second unit for the external _test package.
func (l *Loader) Load(dir string) ([]*Unit, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	all, err := l.parseDir(dir, func(string) bool { return true })
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	path := l.importPathFor(dir)

	// Split into the base package (plus in-package tests) and the
	// external test package, by package clause.
	var base, xtest []*ast.File
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			base = append(base, f)
		}
	}

	var units []*Unit
	if len(base) > 0 {
		pkg, info, err := l.check(path, base)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		units = append(units, &Unit{Fset: l.Fset, Dir: dir, Path: path, Files: base, Pkg: pkg, Info: info, Facts: l.facts})
	}
	if len(xtest) > 0 {
		xpath := path + "_test"
		pkg, info, err := l.check(xpath, xtest)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", xpath, err)
		}
		units = append(units, &Unit{Fset: l.Fset, Dir: dir, Path: xpath, Files: xtest, Pkg: pkg, Info: info, Facts: l.facts})
	}
	return units, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !keep(name) {
			continue
		}
		// Respect build constraints (//go:build tags, GOOS/GOARCH file
		// suffixes) for the default build configuration, so that e.g.
		// race-only and non-race variants of a file are never loaded
		// into the same package.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	// Harvest cross-package facts from every package that passes
	// through the checker, imports included, so analyzers see e.g.
	// no-return helpers defined in other module packages.
	l.facts.recordNoReturns(info, files)
	// Function summaries ride the same hook: imports are checked before
	// importers, so cross-package summaries are final (bottom-up) by the
	// time a caller package is summarized. Within a package, SCC order
	// provides the same guarantee (see summary.go).
	l.facts.recordSummaries(info, files)
	return pkg, info, nil
}

// PackageDirs returns every directory under root containing Go source,
// skipping testdata, hidden, and VCS directories. Paths are returned in
// sorted order for deterministic runs.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}
