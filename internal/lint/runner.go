package lint

import (
	"path/filepath"
	"sort"

	"tecopt/internal/engine"
)

// LintDirs type-checks every package directory in dirs and runs the
// analyzers over each unit (package + in-package tests, plus any
// external _test package). Findings come back globally sorted by
// file:line:column:rule, with filenames rewritten relative to base
// (when non-empty) so output is stable regardless of where the tool
// runs from.
func LintDirs(loader *Loader, dirs []string, analyzers []*Analyzer, base string) ([]Diagnostic, error) {
	return LintDirsParallel(loader, dirs, analyzers, base, 1)
}

// LintDirsParallel is LintDirs with the analyzer runs spread over
// workers goroutines (engine.Pool semantics: <=0 means GOMAXPROCS, 1 is
// serial). Loading and type-checking stay serial — the Loader mutates
// its package cache — but a loaded Unit is immutable, the shared
// FactStore is internally locked, and token.FileSet position lookups
// are safe concurrently, so Run can fan out per unit. Results are
// collected by index and then globally sorted, making the output
// byte-identical to the serial run for any worker count.
func LintDirsParallel(loader *Loader, dirs []string, analyzers []*Analyzer, base string, workers int) ([]Diagnostic, error) {
	return LintDirsParallelStats(loader, dirs, analyzers, base, workers, nil)
}

// LintDirsParallelStats is LintDirsParallel with per-analyzer timing
// and finding counts accumulated into stats (nil disables collection).
// The StatsCollector is internally locked, so concurrent unit runs may
// share it.
func LintDirsParallelStats(loader *Loader, dirs []string, analyzers []*Analyzer, base string, workers int, stats *StatsCollector) ([]Diagnostic, error) {
	var units []*Unit
	for _, dir := range dirs {
		us, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	perUnit := make([][]Diagnostic, len(units))
	pool := engine.Pool{Workers: workers}
	if err := pool.Map(len(units), func(i int) error {
		perUnit[i] = RunStats(units[i], analyzers, stats)
		return nil
	}); err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, diags := range perUnit {
		all = append(all, diags...)
	}
	if base != "" {
		for i := range all {
			if rel, err := filepath.Rel(base, all[i].Pos.Filename); err == nil {
				all[i].Pos.Filename = filepath.ToSlash(rel)
			}
		}
	}
	SortDiagnostics(all)
	return all, nil
}

// SortDiagnostics orders findings by file, line, column, then rule.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
