package lint

import (
	"path/filepath"
	"sort"
)

// LintDirs type-checks every package directory in dirs and runs the
// analyzers over each unit (package + in-package tests, plus any
// external _test package). Findings come back globally sorted by
// file:line:column:rule, with filenames rewritten relative to base
// (when non-empty) so output is stable regardless of where the tool
// runs from.
func LintDirs(loader *Loader, dirs []string, analyzers []*Analyzer, base string) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, dir := range dirs {
		units, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		for _, unit := range units {
			all = append(all, Run(unit, analyzers)...)
		}
	}
	if base != "" {
		for i := range all {
			if rel, err := filepath.Rel(base, all[i].Pos.Filename); err == nil {
				all[i].Pos.Filename = filepath.ToSlash(rel)
			}
		}
	}
	SortDiagnostics(all)
	return all, nil
}

// SortDiagnostics orders findings by file, line, column, then rule.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
