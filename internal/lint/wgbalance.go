package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WGBalance checks sync.WaitGroup bookkeeping along CFG paths. The
// pool/gate/drain machinery all hinge on Add/Done symmetry: an Add
// with no Done hangs Wait forever (a stuck drain), a Done with no Add
// panics ("negative WaitGroup counter"), and an Add issued inside the
// spawned goroutine races the Wait it is supposed to gate. The
// analyzer reports:
//
//   - wg.Wait reached on a path whose net Add/Done delta is a known
//     positive number with no spawned goroutine covering it;
//   - a Done (or deferred Done) that drives a known delta negative
//     after the function itself added — a double-Done;
//   - wg.Add inside a go-spawned function literal when the WaitGroup
//     comes from the enclosing scope;
//   - a sync.WaitGroup parameter passed by value (Add/Done on the
//     copy never release the caller's Wait).
//
// WaitGroups are identified textually by receiver expression, like
// lockbalance's mutexes. Spawned goroutines credit one Done when
// their body (or a *sync.WaitGroup-taking callee's summary) calls
// Done on the same WaitGroup. Loops whose iterations disagree on the
// delta join to "unknown", which is silent — only provable imbalance
// is reported.
var WGBalance = &Analyzer{
	Name: "wgbalance",
	Doc:  "flags WaitGroup Add/Done imbalance along CFG paths, Add inside the spawned goroutine, and by-value WaitGroup parameters",
	Run:  runWGBalance,
}

func runWGBalance(pass *Pass) {
	checkWGParams(pass)
	checkWGAddInGo(pass)
	forEachFuncBody(pass, func(body *ast.BlockStmt) {
		checkWGPaths(pass, body)
	})
}

// checkWGParams reports sync.WaitGroup (value, not pointer) parameters.
func checkWGParams(pass *Pass) {
	check := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			t := pass.TypeOf(field.Type)
			if t == nil || !isSyncNamed(t, "WaitGroup") {
				continue
			}
			pass.Reportf(field.Type.Pos(), "sync.WaitGroup parameter passed by value; Add/Done on the copy never release the caller's Wait — take *sync.WaitGroup")
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				check(n.Type)
			case *ast.FuncLit:
				check(n.Type)
			}
			return true
		})
	}
}

// checkWGAddInGo reports wg.Add calls inside a go-spawned function
// literal when wg is declared outside the literal: the Add races the
// Wait it is supposed to cover — whether Wait sees the increment
// depends on goroutine scheduling. The fix is always to Add before
// the go statement.
func checkWGAddInGo(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, recvRoot := wgMethod(pass, call)
				if name != "Add" || recvRoot == nil {
					return true
				}
				if declaredOutsideLit(recvRoot, lit) {
					pass.Reportf(call.Pos(), "wg.Add inside the spawned goroutine races Wait; call Add before the go statement")
				}
				return true
			})
			return true
		})
	}
}

// wgMethod decodes call as a sync.WaitGroup method call, returning the
// method name and the root object of the receiver expression (the
// leftmost identifier), or "", nil.
func wgMethod(pass *Pass, call *ast.CallExpr) (string, types.Object) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isWaitGroupPtr(sig.Recv().Type()) {
		return "", nil
	}
	return fn.Name(), rootObject(pass.Info, sel.X)
}

// rootObject resolves the leftmost identifier of a selector chain.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[v]; o != nil {
				return o
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutsideLit reports whether obj's declaration lies outside lit.
func declaredOutsideLit(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// wgDelta is the abstract Add/Done balance of one WaitGroup: a known
// integer delta, or top (unknown) once paths disagree or an Add
// argument is non-constant.
type wgDelta struct {
	n   int
	top bool
}

// wgState maps WaitGroup receiver texts to their delta. Absent keys
// are delta zero.
type wgState map[string]wgDelta

type wgAnalysis struct {
	pass *Pass
	// hadAdd marks WaitGroups the function itself Adds to; negative
	// deltas are only reported for those (a bare `defer wg.Done()` in
	// a worker function is the other half of a caller's Add, not a
	// double-Done).
	hadAdd map[string]bool
}

func (a *wgAnalysis) Entry() FlowState { return wgState{} }

func (a *wgAnalysis) Equal(x, y FlowState) bool {
	sx, sy := x.(wgState), y.(wgState)
	for k, v := range sx {
		if sy.get(k) != v {
			return false
		}
	}
	for k, v := range sy {
		if sx.get(k) != v {
			return false
		}
	}
	return true
}

func (s wgState) get(k string) wgDelta { return s[k] }

func (a *wgAnalysis) Join(x, y FlowState) FlowState {
	sx, sy := x.(wgState), y.(wgState)
	out := make(wgState, len(sx)+len(sy))
	keys := make(map[string]bool, len(sx)+len(sy))
	for k := range sx {
		keys[k] = true
	}
	for k := range sy {
		keys[k] = true
	}
	for k := range keys {
		a, b := sx.get(k), sy.get(k)
		switch {
		case a == b:
			if a != (wgDelta{}) {
				out[k] = a
			}
		default:
			out[k] = wgDelta{top: true}
		}
	}
	return out
}

func (a *wgAnalysis) Transfer(n ast.Node, in FlowState) FlowState {
	ops := a.wgOps(n)
	if len(ops) == 0 {
		return in
	}
	st := in.(wgState)
	out := make(wgState, len(st)+1)
	for k, v := range st {
		out[k] = v
	}
	for _, op := range ops {
		cur := out.get(op.key)
		if op.top || cur.top {
			out[op.key] = wgDelta{top: true}
			continue
		}
		next := wgDelta{n: cur.n + op.delta}
		if next == (wgDelta{}) {
			delete(out, op.key)
		} else {
			out[op.key] = next
		}
	}
	return out
}

type wgOp struct {
	key   string
	delta int
	top   bool
	wait  bool
	pos   token.Pos
}

// wgOps extracts the WaitGroup operations performed by CFG node n:
// direct Add/Done/Wait calls (deferred Dones included — they run by
// function exit, which is the granularity the path check needs), and
// one credited Done per spawned goroutine whose body or summarized
// callee calls Done on the same WaitGroup.
func (a *wgAnalysis) wgOps(n ast.Node) []wgOp {
	var out []wgOp
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			// A CFG range head carries the whole statement; the body's
			// ops replay in their own blocks, so only the ranged
			// expression is evaluated here.
			ast.Inspect(n.X, walk)
			return false
		case *ast.GoStmt:
			for _, key := range a.spawnedDones(n) {
				out = append(out, wgOp{key: key, delta: -1, pos: n.Pos()})
			}
			return false
		case *ast.CallExpr:
			name, _ := wgMethod(a.pass, n)
			if name == "" {
				return true
			}
			sel := n.Fun.(*ast.SelectorExpr)
			key := types.ExprString(sel.X)
			switch name {
			case "Add":
				op := wgOp{key: key, top: true, pos: n.Pos()}
				if len(n.Args) == 1 {
					if v, ok := constIntArg(a.pass.Info, n.Args[0]); ok {
						op = wgOp{key: key, delta: v, pos: n.Pos()}
					}
				}
				out = append(out, op)
			case "Done":
				out = append(out, wgOp{key: key, delta: -1, pos: n.Pos()})
			case "Wait":
				out = append(out, wgOp{key: key, wait: true, pos: n.Pos()})
			}
		}
		return true
	}
	ast.Inspect(n, walk)
	return out
}

// spawnedDones returns the WaitGroup keys a go statement's target
// calls Done on: Done calls in a spawned literal's body (nested
// literals excluded), or the Done effects in a named callee's summary
// for each &wg-style argument.
func (a *wgAnalysis) spawnedDones(g *ast.GoStmt) []string {
	var keys []string
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if name, _ := wgMethod(a.pass, n); name == "Done" {
					sel := n.Fun.(*ast.SelectorExpr)
					keys = append(keys, types.ExprString(sel.X))
				}
			}
			return true
		})
	default:
		callee := staticCallee(a.pass.Info, g.Call)
		if callee == nil {
			return nil
		}
		s := a.pass.Facts.Summary(callee)
		if s == nil {
			return nil
		}
		for ai, arg := range g.Call.Args {
			e, ok := s.WGParams[ai]
			if !ok || e.Dones == 0 {
				continue
			}
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				keys = append(keys, types.ExprString(u.X))
			} else if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				keys = append(keys, id.Name)
			}
		}
	}
	return keys
}

// checkWGPaths runs the delta dataflow over one body and reports
// imbalances during a deterministic replay.
func checkWGPaths(pass *Pass, body *ast.BlockStmt) {
	a := &wgAnalysis{pass: pass, hadAdd: make(map[string]bool)}
	// Flow-insensitive pre-pass: which WaitGroups does this function
	// Add to at all?
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, _ := wgMethod(pass, call); name == "Add" {
			sel := call.Fun.(*ast.SelectorExpr)
			a.hadAdd[types.ExprString(sel.X)] = true
		}
		return true
	})

	g := BuildCFG(body, pass.Terminates)
	res := RunForward(g, a)
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		st := in
		for _, n := range b.Nodes {
			for _, op := range a.wgOps(n) {
				cur := st.(wgState).get(op.key)
				if cur.top {
					continue
				}
				if op.wait && cur.n > 0 {
					pass.Reportf(op.pos, "%s.Wait can block forever: %d Add(s) on this path have no matching Done or spawned goroutine calling Done", op.key, cur.n)
				}
				if !op.wait && !op.top && op.delta < 0 && a.hadAdd[op.key] && cur.n+op.delta < 0 {
					pass.Reportf(op.pos, "%s.Done drives the counter negative on this path (Done without a matching Add panics)", op.key)
				}
			}
			st = a.Transfer(n, st)
		}
	}
}
