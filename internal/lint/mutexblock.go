package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MutexBlock flags blocking operations performed while a sync mutex is
// held — the classic serving-latency bug (every other request on that
// lock queues behind the block) that escalates to deadlock when the
// blocking operation itself waits on work that needs the lock. The
// held-lock state machine is lockbalance's (receiver-text keys,
// Lock/RLock acquire, Unlock/RUnlock release), except that deferred
// releases do NOT discharge the lock here: `mu.Lock(); defer
// mu.Unlock()` holds the mutex across everything that follows, which
// is exactly the window this analyzer audits.
//
// Blocking operations are channel sends/receives outside a
// select-with-default, ranging over a channel, the blocking standard
// library calls (WaitGroup.Wait, time.Sleep, network/file I/O), and
// calls to module functions whose concurrency summary says MayBlock —
// so a Gate.Acquire two calls deep is still caught at the top call
// site. Direct sync.Cond.Wait calls are exempt: Cond.Wait is designed
// to run with its mutex held (it releases it while parked).
var MutexBlock = &Analyzer{
	Name: "mutexblock",
	Doc:  "flags channel ops, Waits, sleeps, I/O, and may-block callees executed while a sync mutex is held",
	Run:  runMutexBlock,
}

func runMutexBlock(pass *Pass) {
	forEachFuncBody(pass, func(body *ast.BlockStmt) {
		a := &mbAnalysis{pass: pass}
		g := BuildCFG(body, pass.Terminates)
		res := RunForward(g, a)
		// Computed over the whole body: the CFG hands out select comms
		// detached from their SelectStmt, so the per-node scan cannot
		// tell which ones a default clause covers.
		nonBlocking := nonBlockingComms(body)
		for _, b := range g.Blocks {
			in, ok := res.In[b]
			if !ok {
				continue
			}
			st := in
			for _, n := range b.Nodes {
				if held := st.(lbState); len(held) > 0 {
					reportBlockSites(pass, n, held, nonBlocking)
				}
				st = a.Transfer(n, st)
			}
		}
	})
}

// mbAnalysis tracks held locks like lockbalance but keeps
// deferred-released locks in the held set: a deferred unlock releases
// at return, so the lock is held across every intervening operation.
type mbAnalysis struct {
	pass *Pass
}

func (a *mbAnalysis) Entry() FlowState { return lbState{} }

func (a *mbAnalysis) Equal(x, y FlowState) bool {
	sx, sy := x.(lbState), y.(lbState)
	if len(sx) != len(sy) {
		return false
	}
	for k, v := range sx {
		if w, ok := sy[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// Join keeps locks held on either path (may-held is what "held across
// a blocking call" asks about); the earlier acquisition wins.
func (a *mbAnalysis) Join(x, y FlowState) FlowState {
	sx, sy := x.(lbState), y.(lbState)
	out := make(lbState, len(sx)+len(sy))
	for k, v := range sx {
		out[k] = v
	}
	for k, v := range sy {
		if w, ok := out[k]; !ok || v < w {
			out[k] = v
		}
	}
	return out
}

func (a *mbAnalysis) Transfer(n ast.Node, in FlowState) FlowState {
	ops := lockOps(a.pass, n)
	if len(ops) == 0 {
		return in
	}
	st := in.(lbState)
	out := make(lbState, len(st)+1)
	for k, v := range st {
		out[k] = v
	}
	for _, op := range ops {
		if op.acquire {
			out[op.key] = op.pos
		} else {
			delete(out, op.key)
		}
	}
	return out
}

// reportBlockSites reports every blocking operation node n performs
// while the locks in held are held. Function literals merely defined
// here do not run here; go statements block their own goroutine;
// deferred calls run at return, after this window.
func reportBlockSites(pass *Pass, n ast.Node, held lbState, nonBlocking map[ast.Stmt]bool) {
	sites := findBlockSites(pass.Info, pass.Facts, n, blockScanOpts{
		skipGo:       true,
		skipFuncLit:  true,
		skipDefer:    true,
		shallowRange: true,
		nonBlocking:  nonBlocking,
	})
	if len(sites) == 0 {
		return
	}
	// Name the longest-held lock deterministically: smallest position.
	var key lbKey
	best := token.Pos(0)
	for k, pos := range held {
		if best == 0 || pos < best || (pos == best && k.recv < key.recv) {
			key, best = k, pos
		}
	}
	for _, site := range sites {
		if condWaitSite(pass, n, site) {
			continue
		}
		pass.Reportf(site.pos, "%s is held across %s; shrink the critical section or release the lock before blocking", key.desc(), site.why)
	}
}

// condWaitSite reports whether the site is a direct sync.Cond.Wait
// call, which legitimately runs with the mutex held.
func condWaitSite(pass *Pass, n ast.Node, site blockSite) bool {
	if site.why != "sync.Cond.Wait" {
		return false
	}
	exempt := false
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok || call.Pos() != site.pos {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
				exempt = true
			}
		}
		return false
	})
	return exempt
}
