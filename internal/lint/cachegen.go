package lint

// cachegen makes factor-cache invalidation statically sound. The
// engine's FactorCache is keyed by Key{Gen, Current}: a System's
// generation number stands in for "everything the factorization
// depends on", so any mutation of that state without a generation
// bump serves stale factorizations — silently, since the stale matrix
// is numerically valid, just wrong.
//
// The loader's summary pass identifies cache-keyed types (named
// structs whose field is somewhere assigned from NextGeneration(),
// core.System being the one in production) and records which
// functions bump a generation. This analyzer then flags every write
// to a non-generation field of a cache-keyed value in a function that
// neither calls NextGeneration() itself nor calls a bumping helper
// that receives the value (per summary). Constructors are naturally
// exempt: building the struct by composite literal with a fresh
// generation is not a field write.

import (
	"go/ast"
	"go/types"
)

var CacheGen = &Analyzer{
	Name: "cachegen",
	Doc:  "mutations of cache-keyed state (types whose generation field comes from engine.NextGeneration) must be paired with a generation bump in the same function, directly or via a bumping callee",
	Run:  runCacheGen,
}

func runCacheGen(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCacheGen(pass, fd)
		}
	}
}

func checkCacheGen(pass *Pass, fd *ast.FuncDecl) {
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	s := pass.Facts.Summary(fn)
	if s == nil || !s.MutatesCacheKeyed || s.BumpsGeneration {
		return
	}
	// The function mutates cache-keyed state and never bumps: report
	// every mutation site (including inside function literals — they
	// run on behalf of this function).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, field, ok := pass.Facts.cacheKeyedFieldWrite(pass.Info, lhs); ok {
					reportCacheGen(pass, sel, field)
				}
			}
		case *ast.IncDecStmt:
			if sel, field, ok := pass.Facts.cacheKeyedFieldWrite(pass.Info, n.X); ok {
				reportCacheGen(pass, sel, field)
			}
		}
		return true
	})
}

func reportCacheGen(pass *Pass, sel *ast.SelectorExpr, field string) {
	t := pass.TypeOf(sel.X)
	genField, _ := pass.Facts.GenField(t)
	pass.Reportf(sel.Pos(), "mutating %s field %q of cache-keyed state without a generation bump: stale factorizations survive in the cache (assign %s = NextGeneration() alongside)", typeDesc(t), field, genField)
}
