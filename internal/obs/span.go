package obs

import (
	"context"
	"strconv"
	"sync"
)

// Span is a lightweight trace span: a named interval on the registry
// clock. Spans are value types — starting and ending one allocates
// nothing when tracing is off, and ending always feeds the
// "span.<name>_ns" histogram so timings appear in metric snapshots even
// without a trace file. The histogram handle is interned at StartSpan,
// so End never rebuilds the metric name. The zero Span (from StartSpan
// on a nil registry) is a no-op.
//
// When the flight recorder is on (EnableTraceOpts with Flight set) a
// span additionally carries an ID, a parent link and a track, all
// shared through one heap cell so every copy of the value — including
// the one a `defer sp.End()` captures — sees later Annotate calls.
type Span struct {
	r     *Registry
	name  string
	start int64
	hist  *Histogram // interned "span.<name>_ns" handle
	extra *spanExtra // flight-recorder state; nil unless the recorder is on
}

// spanExtra is the flight-recorder half of a span. It is allocated only
// when hierarchical recording is enabled, and shared by all copies of
// the Span value.
type spanExtra struct {
	id     uint64
	parent uint64
	track  int64
	mu     sync.Mutex
	attrs  []Attr
}

// Attr is one key/value annotation on a span or event. Attributes are
// kept as an ordered slice (not a map) so traces serialize
// deterministically.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// spanHist returns the interned "span.<name>_ns" histogram handle,
// building the name string only on the first span of each name.
func (r *Registry) spanHist(name string) *Histogram {
	if h, ok := r.spanHists.Load(name); ok {
		return h.(*Histogram)
	}
	h := r.Histogram("span." + name + "_ns")
	r.spanHists.Store(name, h)
	return h
}

// FlightOn reports whether the flight recorder (hierarchical tracing)
// is enabled. Nil-safe; instrumentation sites use it to gate work that
// only pays off when hierarchy is being recorded (per-probe events,
// attribute formatting).
func (r *Registry) FlightOn() bool {
	return r != nil && r.flight.Load()
}

// newSpan builds the span value shared by StartSpan and StartSpanCtx:
// clock read, interned histogram handle, and (flight recorder on) a
// fresh sequential ID.
func (r *Registry) newSpan(name string) Span {
	s := Span{r: r, name: name, start: r.clock.Now(), hist: r.spanHist(name)}
	if r.flight.Load() {
		s.extra = &spanExtra{id: r.spanID.Add(1)}
	}
	return s
}

// StartSpan opens a span. Close it with End.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return r.newSpan(name)
}

// StartSpanCtx opens a span as a child of the span carried by ctx (if
// any) and returns a derived context carrying the new span, so deeper
// solve layers parent to it — the context-propagation entry point of
// the flight recorder. With the recorder off it degrades to StartSpan
// and returns ctx unchanged; on a nil registry it is a no-op.
func (r *Registry) StartSpanCtx(ctx context.Context, name string) (context.Context, Span) {
	if r == nil {
		return ctx, Span{}
	}
	s := r.newSpan(name)
	if s.extra != nil {
		if parent := SpanFromContext(ctx); parent.extra != nil {
			s.extra.parent = parent.extra.id
		}
		s.extra.track = TrackFromContext(ctx)
		ctx = context.WithValue(ctx, spanKey{}, s)
	}
	return ctx, s
}

// ID returns the span's flight-recorder ID (0 when the recorder is off
// or the span is the zero value).
func (s Span) ID() uint64 {
	if s.extra == nil {
		return 0
	}
	return s.extra.id
}

// ParentID returns the ID of the span's parent (0 for a root span or
// when the recorder is off).
func (s Span) ParentID() uint64 {
	if s.extra == nil {
		return 0
	}
	return s.extra.parent
}

// Track returns the span's track (worker attribution; 0 is the main
// track).
func (s Span) Track() int64 {
	if s.extra == nil {
		return 0
	}
	return s.extra.track
}

// Annotate attaches a key/value attribute to the span's trace record —
// the regime a solve took, a guard-trip reason, a cache outcome. It is
// a no-op unless the flight recorder is on, so callers may annotate
// unconditionally on hot paths.
func (s Span) Annotate(key, value string) {
	x := s.extra
	if x == nil {
		return
	}
	x.mu.Lock()
	x.attrs = append(x.attrs, Attr{Key: key, Value: value})
	x.mu.Unlock()
}

// AnnotateInt is Annotate for integer values; the value is formatted
// only when the recorder is on.
func (s Span) AnnotateInt(key string, v int64) {
	if s.extra == nil {
		return
	}
	s.Annotate(key, strconv.FormatInt(v, 10))
}

// AnnotateFloat is Annotate for float values; the value is formatted
// (shortest round-trip form) only when the recorder is on.
func (s Span) AnnotateFloat(key string, v float64) {
	if s.extra == nil {
		return
	}
	s.Annotate(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// End closes the span, recording its duration in the span histogram and
// (when tracing is enabled) appending a trace event carrying the
// flight-recorder identity and annotations.
func (s Span) End() {
	if s.r == nil {
		return
	}
	end := s.r.clock.Now()
	dur := end - s.start
	if dur < 0 {
		dur = 0
	}
	s.hist.Observe(uint64(dur))
	ev := TraceEvent{Kind: "span", Name: s.name, StartNS: s.start, DurNS: dur}
	if x := s.extra; x != nil {
		ev.ID, ev.Parent, ev.Track = x.id, x.parent, x.track
		x.mu.Lock()
		ev.Attrs = x.attrs
		x.mu.Unlock()
	}
	s.r.traceAppend(ev)
}

// Event records a named point value into the trace stream (when
// tracing is enabled): bracket endpoints of the runaway search,
// controller current decisions, cache evictions. Events are cheap but
// not free — callers should guard with Enabled() like any other site.
func (r *Registry) Event(name string, value float64) {
	if r == nil {
		return
	}
	r.traceAppend(TraceEvent{Kind: "event", Name: name, StartNS: r.clock.Now(), Value: value})
}

// EventCtx is Event linked into the flight-recorder hierarchy: when the
// recorder is on, the event takes the context span as its parent, the
// context track, and the given attributes. With the recorder off it
// serializes byte-identically to Event (attrs are dropped), keeping
// flat JSONL traces compatible.
func (r *Registry) EventCtx(ctx context.Context, name string, value float64, attrs ...Attr) {
	if r == nil {
		return
	}
	ev := TraceEvent{Kind: "event", Name: name, StartNS: r.clock.Now(), Value: value}
	if r.flight.Load() {
		if sp := SpanFromContext(ctx); sp.extra != nil {
			ev.Parent = sp.extra.id
		}
		ev.Track = TrackFromContext(ctx)
		ev.Attrs = attrs
	}
	r.traceAppend(ev)
}
