package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Span is a lightweight trace span: a named interval on the registry
// clock. Spans are value types — starting and ending one allocates
// nothing when tracing is off, and ending always feeds the
// "span.<name>_ns" histogram so timings appear in metric snapshots even
// without a trace file. The zero Span (from StartSpan on a nil
// registry) is a no-op.
type Span struct {
	r     *Registry
	name  string
	start int64
}

// StartSpan opens a span. Close it with End.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: r.clock.Now()}
}

// End closes the span, recording its duration in the span histogram and
// (when tracing is enabled) appending a trace event.
func (s Span) End() {
	if s.r == nil {
		return
	}
	end := s.r.clock.Now()
	dur := end - s.start
	if dur < 0 {
		dur = 0
	}
	s.r.Histogram("span." + s.name + "_ns").Observe(uint64(dur))
	s.r.traceAppend(TraceEvent{Kind: "span", Name: s.name, StartNS: s.start, DurNS: dur})
}

// Event records a named point value into the trace stream (when
// tracing is enabled): bracket endpoints of the runaway search,
// controller current decisions, cache evictions. Events are cheap but
// not free — callers should guard with Enabled() like any other site.
func (r *Registry) Event(name string, value float64) {
	if r == nil {
		return
	}
	r.traceAppend(TraceEvent{Kind: "event", Name: name, StartNS: r.clock.Now(), Value: value})
}

// TraceEvent is one record of the trace stream, serialized as a JSON
// line by WriteTrace.
type TraceEvent struct {
	Kind    string  `json:"kind"` // "span" or "event"
	Name    string  `json:"name"`
	StartNS int64   `json:"start_ns"`
	DurNS   int64   `json:"dur_ns,omitempty"`
	Value   float64 `json:"value,omitempty"`
}

// defaultTraceCap bounds the in-memory trace buffer. A Table I run
// emits a few thousand spans; one million events (~56 MB) leaves room
// for long transient simulations while still bounding a runaway loop.
const defaultTraceCap = 1 << 20

// traceBuffer is a bounded, mutex-guarded event log. Past capacity it
// counts drops instead of growing.
type traceBuffer struct {
	mu      sync.Mutex
	events  []TraceEvent
	cap     int
	dropped uint64
}

// EnableTrace turns on trace recording with the given event capacity
// (<= 0 selects the default). Without this call spans still feed their
// histograms but no per-event stream is kept.
func (r *Registry) EnableTrace(capacity int) {
	if r == nil {
		return
	}
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trace == nil {
		r.trace = &traceBuffer{cap: capacity}
	}
}

// tracer returns the trace buffer under the registry read lock.
func (r *Registry) tracer() *traceBuffer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.trace
}

func (r *Registry) traceAppend(ev TraceEvent) {
	tb := r.tracer()
	if tb == nil {
		return
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if len(tb.events) >= tb.cap {
		tb.dropped++
		return
	}
	tb.events = append(tb.events, ev)
}

// WriteTrace serializes the recorded trace as JSON lines (one TraceEvent
// per line) followed by a final line reporting drops, if any. It is a
// no-op on a nil registry or when tracing was never enabled.
func (r *Registry) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	tb := r.tracer()
	if tb == nil {
		return nil
	}
	tb.mu.Lock()
	events := make([]TraceEvent, len(tb.events))
	copy(events, tb.events)
	dropped := tb.dropped
	tb.mu.Unlock()

	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if dropped > 0 {
		return enc.Encode(struct {
			Kind    string `json:"kind"`
			Dropped uint64 `json:"dropped"`
		}{Kind: "dropped", Dropped: dropped})
	}
	return nil
}
