package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's snapshot: JSON at the mount point and
// text with "?format=text". Expvar-style read-only endpoint: only GET
// and HEAD are accepted (anything else gets 405 with an Allow header),
// and responses carry X-Content-Type-Options: nosniff so a browser
// never content-sniffs the snapshot.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, http.StatusText(http.StatusMethodNotAllowed), http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("X-Content-Type-Options", "nosniff")
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if _, err := w.Write([]byte(snap.Text())); err != nil {
				return
			}
			return
		}
		b, err := snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(b); err != nil {
			return
		}
	})
}

// DebugMux builds the debug endpoint: /metrics (snapshot exposition)
// plus the full net/http/pprof suite under /debug/pprof/, mounted on a
// private mux so callers never pollute http.DefaultServeMux.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
