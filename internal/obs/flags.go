package obs

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"
)

// Flags is the uniform observability flag bundle shared by every cmd
// tool (benchtable, conjecture, runaway, report, dtmsim, thermalsim):
//
//	-metrics            print a text metric snapshot to stderr on exit
//	-metrics-out FILE   write the JSON snapshot (the machine-readable
//	                    run report) to FILE on exit
//	-trace FILE         record trace spans/events and write them to
//	                    FILE on exit
//	-trace-format FMT   trace exporter: "jsonl" (flat JSON lines, the
//	                    historical format), "flight" (JSONL with
//	                    hierarchical span IDs/parents/tracks/attrs for
//	                    cmd/tectrace), or "perfetto" (Chrome
//	                    trace-event JSON for ui.perfetto.dev)
//	-log FMT            structured logging to stderr: off, text or json
//	-log-level LVL      minimum log level: debug, info, warn or error
//	-pprof ADDR         serve /metrics and /debug/pprof on ADDR while
//	                    the tool runs
//	-timeout DUR        cancel the run after DUR (e.g. 30s, 2m); the
//	                    tool flushes whatever partial results it has and
//	                    exits with the cancelled status code
//
// With none of the flags set, Start installs nothing and the process
// runs the pre-obs disabled path (stdout byte-identical to a build
// without observability).
type Flags struct {
	Metrics     bool
	MetricsOut  string
	Trace       string
	TraceFormat string
	Log         LogFlags
	Pprof       string
	Timeout     time.Duration
}

// BindFlags registers the bundle on fs (use flag.CommandLine in main).
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Metrics, "metrics", false, "print a metric snapshot to stderr when the run completes")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write the JSON metric snapshot (run report) to this file")
	fs.StringVar(&f.Trace, "trace", "", "record trace spans and write them to this file")
	fs.StringVar(&f.TraceFormat, "trace-format", "jsonl", "trace exporter: jsonl (flat lines), flight (hierarchical JSONL) or perfetto (Chrome trace-event JSON)")
	f.Log.bind(fs)
	fs.StringVar(&f.Pprof, "pprof", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "cancel the run after this duration (0 = no limit), flushing partial results")
	return f
}

// Context returns the context governing the run: context.Background()
// without -timeout, or a deadline context honoring it. The returned
// cancel func must be called (defer it) to release the timer.
func (f *Flags) Context() (context.Context, context.CancelFunc) {
	if f.Timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), f.Timeout)
}

// enabled reports whether any observability flag was set.
func (f *Flags) enabled() bool {
	return f.Metrics || f.MetricsOut != "" || f.Trace != "" || f.Pprof != "" || f.Log.enabled()
}

// Session is one activated observability run: the installed registry
// plus the outputs owed at Close. A nil *Session (from Start with no
// flags set) is valid and Close is a no-op on it.
type Session struct {
	Reg        *Registry
	flags      Flags
	server     *http.Server
	errs       chan error // server outcome, buffered
	stderr     io.Writer
	restoreLog func() // uninstalls the slog logger; nil when -log is off
}

// Start activates the requested observability: it installs a global
// registry on the wall clock, enables tracing if -trace was given
// (hierarchical when -trace-format is flight or perfetto), installs
// the structured logger if -log was given, and starts the debug server
// if -pprof was given. It returns nil (fully disabled, zero overhead)
// when no flag was set.
func (f *Flags) Start() (*Session, error) {
	if !f.enabled() {
		return nil, nil
	}
	switch f.TraceFormat {
	case "", "jsonl", "flight", "perfetto":
	default:
		return nil, fmt.Errorf("obs: unknown -trace-format %q (want jsonl, flight or perfetto)", f.TraceFormat)
	}
	reg := New(nil)
	if f.Trace != "" {
		reg.EnableTraceOpts(TraceOptions{Flight: f.TraceFormat == "flight" || f.TraceFormat == "perfetto"})
	}
	s := &Session{Reg: reg, flags: *f, stderr: os.Stderr}
	restore, err := f.Log.Install(s.stderr)
	if err != nil {
		return nil, err
	}
	s.restoreLog = restore
	if f.Pprof != "" {
		ln, err := net.Listen("tcp", f.Pprof)
		if err != nil {
			return nil, fmt.Errorf("obs: -pprof listen on %s: %w", f.Pprof, err)
		}
		s.server = &http.Server{Handler: DebugMux(reg)}
		s.errs = make(chan error, 1)
		go func() { s.errs <- s.server.Serve(ln) }()
		fmt.Fprintf(s.stderr, "obs: serving /metrics and /debug/pprof on http://%s\n", ln.Addr())
	}
	SetGlobal(reg)
	return s, nil
}

// Close uninstalls the registry and writes everything the flags asked
// for: the stderr text snapshot (-metrics), the JSON run report
// (-metrics-out), the trace file (-trace), and a graceful shutdown of
// the debug server. Safe on a nil Session.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	SetGlobal(nil)
	if s.restoreLog != nil {
		s.restoreLog()
	}
	var errs []error
	snap := s.Reg.Snapshot()
	if s.flags.Metrics {
		if _, err := io.WriteString(s.stderr, snap.Text()); err != nil {
			errs = append(errs, err)
		}
	}
	if s.flags.MetricsOut != "" {
		b, err := snap.JSON()
		if err == nil {
			err = os.WriteFile(s.flags.MetricsOut, b, 0o644)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("obs: writing -metrics-out: %w", err))
		}
	}
	if s.flags.Trace != "" {
		if err := s.writeTraceFile(); err != nil {
			errs = append(errs, fmt.Errorf("obs: writing -trace: %w", err))
		}
	}
	if s.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := s.server.Shutdown(ctx); err != nil {
			errs = append(errs, err)
		}
		cancel()
		if err := <-s.errs; err != nil && !errors.Is(err, http.ErrServerClosed) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (s *Session) writeTraceFile() error {
	out, err := os.Create(s.flags.Trace)
	if err != nil {
		return err
	}
	write := s.Reg.WriteTrace
	if s.flags.TraceFormat == "perfetto" {
		write = s.Reg.WriteTracePerfetto
	}
	if err := write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
