// Package obs is the solver observability layer: counters, gauges,
// histograms and lightweight trace spans threaded through every hot
// path of the thermal pipeline (engine pool, factorization cache,
// CG/Cholesky solvers, runaway search, transient steppers), plus text
// and JSON snapshot exposition and an optional debug HTTP endpoint.
//
// Everything is stdlib-only. The design center is the DISABLED path:
// observability is off unless a Registry has been installed (via
// Enable or SetGlobal), and every instrumentation site reduces to one
// atomic pointer load plus a nil check when it is off. Metric handle
// methods are nil-receiver safe, so instrumented code never branches
// beyond `if r := obs.Enabled(); r != nil { ... }`.
//
// Naming convention: metric names are dot-separated
// ("engine.factor_cache.hits"); every duration-valued metric ends in
// "_ns" (nanoseconds from the registry clock). The snapshot code
// relies on that suffix to separate deterministic metrics (counts,
// iterations) from timing metrics when comparing runs — see
// Snapshot.WithoutTimings.
//
// Time never comes from time.Now() in instrumented packages: the
// Registry owns an injected monotonic Clock, and the obsclock teclint
// analyzer enforces the rule repo-wide.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value
// is ready to use; a nil *Counter ignores all writes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 metric (queue depths, in-flight
// workers). A nil *Gauge ignores all writes.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous float64 metric (last CG residual,
// commanded current). A nil *FloatGauge ignores all writes.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the gauge (0 for nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of histogram buckets: one for zero plus one
// per power of two of the uint64 range.
const histBuckets = 65

// Histogram accumulates uint64 observations into fixed log-spaced
// (power-of-two) buckets: bucket 0 counts zeros, bucket i counts values
// v with 2^(i-1) <= v < 2^i. The fixed layout keeps Observe lock-free
// (one atomic add) and snapshots mergeable. Durations are observed in
// nanoseconds; iteration counts are observed as-is. A nil *Histogram
// ignores all writes.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	min    atomic.Uint64 // valid iff count > 0; initialized to MaxUint64
	max    atomic.Uint64
	once   sync.Once
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.once.Do(func() { h.min.Store(math.MaxUint64) })
	h.counts[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Bucket is one non-empty histogram bucket in a snapshot: Count values
// were observed with value <= Le (and greater than the previous
// bucket's Le).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramValue is the exported state of one histogram.
type HistogramValue struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// value snapshots the histogram (nil-safe, returns zero value).
func (h *Histogram) value() HistogramValue {
	if h == nil {
		return HistogramValue{}
	}
	out := HistogramValue{Count: h.count.Load(), Sum: h.sum.Load()}
	if out.Count > 0 {
		out.Min = h.min.Load()
		out.Max = h.max.Load()
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := uint64(math.MaxUint64)
		if i < 64 {
			le = 1<<uint(i) - 1
		}
		out.Buckets = append(out.Buckets, Bucket{Le: le, Count: n})
	}
	return out
}

// Registry holds a process's named metrics and the monotonic clock that
// times its spans. A nil *Registry is the disabled state: every method
// is nil-safe and returns nil handles whose writes are no-ops.
type Registry struct {
	clock Clock

	mu      sync.RWMutex
	counter map[string]*Counter
	gauge   map[string]*Gauge
	fgauge  map[string]*FloatGauge
	hist    map[string]*Histogram

	trace *traceBuffer // nil when tracing is off

	// flight is true when the flight recorder (hierarchical tracing) is
	// on: spans take IDs, parent links, tracks and attributes. It is read
	// on every StartSpan, so it lives outside mu.
	flight atomic.Bool
	// spanID allocates span IDs: sequential from 1, so serial runs under
	// an injected clock produce byte-identical traces.
	spanID atomic.Uint64
	// spanHists interns the "span.<name>_ns" histogram handles so the
	// hot-loop StartSpan/End pair never rebuilds the name string
	// (map[string]*Histogram).
	spanHists sync.Map
}

// New creates a registry using the given clock (nil selects the wall
// clock).
func New(clock Clock) *Registry {
	if clock == nil {
		clock = WallClock()
	}
	return &Registry{
		clock:   clock,
		counter: make(map[string]*Counter),
		gauge:   make(map[string]*Gauge),
		fgauge:  make(map[string]*FloatGauge),
		hist:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counter[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counter[name]; c == nil {
		c = &Counter{}
		r.counter[name] = c
	}
	return c
}

// Gauge returns the named int gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauge[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauge[name]; g == nil {
		g = &Gauge{}
		r.gauge[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.fgauge[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.fgauge[name]; g == nil {
		g = &FloatGauge{}
		r.fgauge[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hist[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hist[name]; h == nil {
		h = &Histogram{}
		r.hist[name] = h
	}
	return h
}

// Now reads the registry clock in monotonic nanoseconds (0 on nil).
func (r *Registry) Now() int64 {
	if r == nil {
		return 0
	}
	return r.clock.Now()
}

// ObserveSince records the elapsed registry-clock time since start
// (floored at zero) into the named histogram — the one-liner form of
// the start := r.Now() / Observe(now-start) pattern.
func (r *Registry) ObserveSince(name string, start int64) {
	if r == nil {
		return
	}
	d := r.clock.Now() - start
	if d < 0 {
		d = 0
	}
	r.Histogram(name).Observe(uint64(d))
}

// sortedNames returns m's keys in sorted order (generic over the four
// handle maps).
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// snapshotHooks are callbacks run at the start of every Snapshot, for
// components that keep their own counters (the engine factorization
// cache) to publish them into the registry being snapshotted. Hooks
// run WITHOUT the registry lock held, so they may create and write any
// metric handle.
var (
	hooksMu       sync.Mutex
	snapshotHooks []func(*Registry)
)

// RegisterSnapshotHook adds f to the hooks run before each snapshot is
// collected. Registration is typically done in a package init; hooks
// are process-wide and never removed.
func RegisterSnapshotHook(f func(*Registry)) {
	hooksMu.Lock()
	defer hooksMu.Unlock()
	snapshotHooks = append(snapshotHooks, f)
}

// runSnapshotHooks invokes every registered hook against r.
func runSnapshotHooks(r *Registry) {
	hooksMu.Lock()
	hooks := make([]func(*Registry), len(snapshotHooks))
	copy(hooks, snapshotHooks)
	hooksMu.Unlock()
	for _, f := range hooks {
		f(r)
	}
}

// global is the process-wide registry installed by Enable/SetGlobal;
// nil means observability is disabled.
var global atomic.Pointer[Registry]

// Enabled returns the installed global registry, or nil when
// observability is off. This is THE instrumentation entry point:
//
//	if r := obs.Enabled(); r != nil {
//		r.Counter("pkg.thing").Inc()
//	}
func Enabled() *Registry {
	return global.Load()
}

// SetGlobal installs r as the process-wide registry (nil disables).
// Call once at startup, before the instrumented work begins; the
// previous registry is returned so tests can restore it.
func SetGlobal(r *Registry) *Registry {
	return global.Swap(r)
}
