package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteTracePerfetto serializes the recorded trace in Chrome
// trace-event JSON (the format ui.perfetto.dev and chrome://tracing
// load directly): spans become "X" complete events, point events
// become "i" instants, and each flight-recorder track gets a named
// thread row ("main", "worker 01", ...). Timestamps are microseconds
// with three decimals, preserving exact nanosecond precision from the
// registry clock. It is a no-op on a nil registry or when tracing was
// never enabled.
func (r *Registry) WriteTracePerfetto(w io.Writer) error {
	if r == nil {
		return nil
	}
	if tb := r.tracer(); tb == nil {
		return nil
	}
	events, dropped := r.traceSnapshot()

	// Collect the track set. Track 0 (the main goroutine) is always
	// present so the trace has at least one named row.
	trackSet := map[int64]bool{0: true}
	for _, ev := range events {
		trackSet[ev.Track] = true
	}
	tracks := make([]int64, 0, len(trackSet))
	for t := range trackSet {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })

	bw := &errWriter{w: w}
	bw.writeString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(line []byte) {
		if !first {
			bw.writeString(",\n")
		}
		first = false
		bw.write(line)
	}

	for _, t := range tracks {
		name := "main"
		if t != 0 {
			name = fmt.Sprintf("worker %02d", t)
		}
		line, err := json.Marshal(chromeMeta{
			Name: "thread_name", Phase: "M", PID: 1, TID: t,
			Args: map[string]string{"name": name},
		})
		if err != nil {
			return err
		}
		emit(line)
	}

	for _, ev := range events {
		line, err := chromeLine(ev)
		if err != nil {
			return err
		}
		emit(line)
	}

	if dropped > 0 {
		line, err := json.Marshal(chromeEvent{
			Name: "trace.dropped", Phase: "i", PID: 1, TID: 0,
			TS: json.RawMessage("0"), Scope: "t",
			Args: map[string]any{"dropped": dropped},
		})
		if err != nil {
			return err
		}
		emit(line)
	}

	bw.writeString("\n]}\n")
	return bw.err
}

// chromeMeta is a trace-event metadata record (thread naming).
type chromeMeta struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	PID   int               `json:"pid"`
	TID   int64             `json:"tid"`
	Args  map[string]string `json:"args"`
}

// chromeEvent is one trace-event record. TS and Dur are microseconds;
// they are pre-formatted strings so nanosecond precision survives
// (json.RawMessage keeps them numeric in the output).
type chromeEvent struct {
	Name  string          `json:"name"`
	Phase string          `json:"ph"`
	PID   int             `json:"pid"`
	TID   int64           `json:"tid"`
	TS    json.RawMessage `json:"ts"`
	Dur   json.RawMessage `json:"dur,omitempty"`
	Scope string          `json:"s,omitempty"`
	Args  map[string]any  `json:"args,omitempty"`
}

// usec renders ns as microseconds with exactly three decimals, so
// every distinct nanosecond maps to a distinct (and exact) value.
func usec(ns int64) json.RawMessage {
	return json.RawMessage(strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64))
}

// chromeLine converts one TraceEvent into its Chrome trace-event JSON.
func chromeLine(ev TraceEvent) ([]byte, error) {
	args := map[string]any{}
	if ev.ID != 0 {
		args["id"] = ev.ID
	}
	if ev.Parent != 0 {
		args["parent"] = ev.Parent
	}
	for _, a := range ev.Attrs {
		args[a.Key] = a.Value
	}
	ce := chromeEvent{Name: ev.Name, PID: 1, TID: ev.Track, TS: usec(ev.StartNS)}
	switch ev.Kind {
	case "span":
		ce.Phase = "X"
		ce.Dur = usec(ev.DurNS)
	default:
		ce.Phase = "i"
		ce.Scope = "t"
		args["value"] = ev.Value
	}
	if len(args) > 0 {
		ce.Args = args
	}
	return json.Marshal(ce)
}

// errWriter latches the first write error so the export loop stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) write(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(p)
}

func (b *errWriter) writeString(s string) { b.write([]byte(s)) }
