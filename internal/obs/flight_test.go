package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFlatTraceByteCompat pins the recorder-off JSONL schema: with the
// flight bit off, spans and EventCtx serialize to exactly the
// pre-flight byte layout — no id/parent/track/attrs keys, attrs
// silently dropped — so existing trace consumers keep working.
func TestFlatTraceByteCompat(t *testing.T) {
	clk := &ManualClock{}
	r := New(clk)
	r.EnableTrace(0) // flat

	_, sp := r.StartSpanCtx(context.Background(), "solve")
	sp.Annotate("regime", "smw") // must vanish: recorder off
	clk.Advance(100 * time.Nanosecond)
	sp.End()
	r.Event("bracket_hi", 2.5)
	r.EventCtx(context.Background(), "probe", 1.5, Attr{Key: "pd", Value: "true"})

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"span","name":"solve","start_ns":0,"dur_ns":100}
{"kind":"event","name":"bracket_hi","start_ns":100,"value":2.5}
{"kind":"event","name":"probe","start_ns":100,"value":1.5}
`
	if got := buf.String(); got != want {
		t.Errorf("flat trace bytes changed:\n got: %q\nwant: %q", got, want)
	}
}

// TestFlightSpanHierarchy checks ID assignment, parent links, track
// inheritance, and that annotations made after a defer-captured copy
// still land in the trace record.
func TestFlightSpanHierarchy(t *testing.T) {
	clk := &ManualClock{}
	r := New(clk)
	r.EnableTraceOpts(TraceOptions{Flight: true})

	ctx := ContextWithTrack(context.Background(), 3)
	ctx, root := r.StartSpanCtx(ctx, "outer")
	_, child := r.StartSpanCtx(ctx, "inner")
	if root.ID() == 0 || child.ID() == 0 {
		t.Fatal("flight spans must carry IDs")
	}
	if child.ParentID() != root.ID() {
		t.Errorf("child parent = %d, want %d", child.ParentID(), root.ID())
	}
	if child.Track() != 3 || root.Track() != 3 {
		t.Errorf("tracks = %d/%d, want 3", root.Track(), child.Track())
	}

	func() {
		defer child.End() // End sees annotations made after this defer
		clk.Advance(time.Microsecond)
		child.Annotate("regime", "direct")
	}()
	root.End()

	events, _ := r.traceSnapshot()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	inner := events[0]
	if inner.Name != "inner" || inner.Parent != root.ID() || inner.Track != 3 {
		t.Errorf("inner record = %+v", inner)
	}
	if len(inner.Attrs) != 1 || inner.Attrs[0] != (Attr{Key: "regime", Value: "direct"}) {
		t.Errorf("inner attrs = %v, want the post-defer annotation", inner.Attrs)
	}
}

// TestEventCtxFlightLinks checks EventCtx records parent/track/attrs
// when the recorder is on.
func TestEventCtxFlightLinks(t *testing.T) {
	r := New(&ManualClock{})
	r.EnableTraceOpts(TraceOptions{Flight: true})
	ctx := ContextWithTrack(context.Background(), 2)
	ctx, sp := r.StartSpanCtx(ctx, "outer")
	r.EventCtx(ctx, "cache.hit", 1.25, Attr{Key: "gen", Value: "7"})
	sp.End()

	events, _ := r.traceSnapshot()
	ev := events[0]
	if ev.Parent != sp.ID() || ev.Track != 2 {
		t.Errorf("event links = parent %d track %d, want %d/2", ev.Parent, ev.Track, sp.ID())
	}
	if len(ev.Attrs) != 1 || ev.Attrs[0].Key != "gen" {
		t.Errorf("event attrs = %v", ev.Attrs)
	}
}

// TestTraceDropCounterAndWarning checks satellite 1: overflow shows up
// as the trace.dropped counter in snapshots and logs exactly one
// warning through the installed slog handler.
func TestTraceDropCounterAndWarning(t *testing.T) {
	r := New(&ManualClock{})
	r.EnableTrace(1)

	var logBuf bytes.Buffer
	h, err := NewLogHandler(&logBuf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	prev := SetLogger(slog.New(h))
	defer SetLogger(prev)

	for i := 0; i < 4; i++ {
		r.Event("e", float64(i))
	}
	snap := r.Snapshot()
	if snap.Counters["trace.dropped"] != 3 {
		t.Errorf("trace.dropped counter = %d, want 3", snap.Counters["trace.dropped"])
	}
	warnings := strings.Count(logBuf.String(), "trace buffer full")
	if warnings != 1 {
		t.Errorf("drop warnings = %d, want exactly 1:\n%s", warnings, logBuf.String())
	}
}

// TestSpanEndAllocFree verifies satellite 2: with tracing off (registry
// installed, no trace buffer) a StartSpan/End pair performs zero
// allocations — the histogram handle is interned, not rebuilt per End.
func TestSpanEndAllocFree(t *testing.T) {
	r := New(&ManualClock{})
	r.StartSpan("hot.solve").End() // intern the handle outside the measurement
	allocs := testing.AllocsPerRun(100, func() {
		sp := r.StartSpan("hot.solve")
		sp.End()
	})
	if allocs != 0 { // teclint:ignore floateq AllocsPerRun counts are exact integers
		t.Errorf("StartSpan+End allocs = %g, want 0", allocs)
	}
}

// TestPerfettoExport checks the Chrome trace-event document: valid
// JSON, named thread rows per track, X/i phases, exact µs timestamps,
// and id/parent/attr args.
func TestPerfettoExport(t *testing.T) {
	clk := &ManualClock{}
	r := New(clk)
	r.EnableTraceOpts(TraceOptions{Flight: true})

	wctx := ContextWithTrack(context.Background(), 1)
	wctx, sp := r.StartSpanCtx(wctx, "task")
	sp.Annotate("regime", "smw")
	clk.Advance(1500 * time.Nanosecond)
	r.EventCtx(wctx, "probe", 2.5, Attr{Key: "pd", Value: "true"})
	sp.End()

	var buf bytes.Buffer
	if err := r.WriteTracePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TID   int64          `json:"tid"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto export not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	threads := map[int64]string{}
	var sawSpan, sawEvent bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Phase == "M" && ev.Name == "thread_name":
			threads[ev.TID], _ = ev.Args["name"].(string)
		case ev.Phase == "X":
			sawSpan = true
			if ev.Name != "task" || ev.TID != 1 || ev.Dur != 1.5 { // teclint:ignore floateq exporter emits exact-decimal timestamps; 1.5µs must round-trip bit-exactly
				t.Errorf("X event = %+v, want task on tid 1 dur 1.5µs", ev)
			}
			if ev.Args["regime"] != "smw" || ev.Args["id"] != float64(1) {
				t.Errorf("X args = %v", ev.Args)
			}
		case ev.Phase == "i":
			sawEvent = true
			if ev.Args["value"] != 2.5 || ev.Args["parent"] != float64(1) {
				t.Errorf("i args = %v", ev.Args)
			}
		}
	}
	if !sawSpan || !sawEvent {
		t.Errorf("missing phases: span=%v event=%v", sawSpan, sawEvent)
	}
	if threads[0] != "main" || threads[1] != "worker 01" {
		t.Errorf("thread names = %v", threads)
	}
}

// TestLogHandlerSpanStamping checks the shared handler attaches
// span_id/parent_id from the context span.
func TestLogHandlerSpanStamping(t *testing.T) {
	r := New(&ManualClock{})
	r.EnableTraceOpts(TraceOptions{Flight: true})
	var buf bytes.Buffer
	h, err := NewLogHandler(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	lg := slog.New(h)

	ctx, sp := r.StartSpanCtx(context.Background(), "outer")
	lg.InfoContext(ctx, "inside span", "k", "v")
	sp.End()
	lg.Info("outside span")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("log lines = %d, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["span_id"] != float64(sp.ID()) {
		t.Errorf("span_id = %v, want %d", rec["span_id"], sp.ID())
	}
	if strings.Contains(lines[1], "span_id") {
		t.Errorf("no-span line carries span_id: %s", lines[1])
	}
}

// TestLogHandlerValidation rejects unknown formats and levels.
func TestLogHandlerValidation(t *testing.T) {
	if _, err := NewLogHandler(&bytes.Buffer{}, "yaml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogHandler(&bytes.Buffer{}, "json", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
	for _, lv := range []string{"debug", "info", "warn", "warning", "error"} {
		if _, err := NewLogHandler(&bytes.Buffer{}, "text", lv); err != nil {
			t.Errorf("level %q rejected: %v", lv, err)
		}
	}
}

// TestLogFlagsInstall checks the uniform -log flag pair: off installs
// nothing, text installs a logger and restore uninstalls it.
func TestLogFlagsInstall(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := BindLogFlags(fs)
	if err := fs.Parse([]string{"-log", "text", "-log-level", "debug"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	restore, err := f.Install(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Logger() == nil {
		t.Fatal("logger not installed")
	}
	Logger().Debug("hello")
	restore()
	if Logger() != nil {
		t.Error("restore did not uninstall the logger")
	}
	if !strings.Contains(buf.String(), "hello") {
		t.Errorf("log output missing: %q", buf.String())
	}

	off := &LogFlags{Format: "off"}
	restore2, err := off.Install(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restore2()
	if Logger() != nil {
		t.Error("off format installed a logger")
	}
}

// TestHandlerMethodAndSniffGuards checks satellite 3: /metrics rejects
// non-GET/HEAD with 405 + Allow and sets nosniff on every response.
func TestHandlerMethodAndSniffGuards(t *testing.T) {
	r := New(&ManualClock{})
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Errorf("Allow = %q", allow)
	}

	resp2, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("GET status = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Content-Type-Options"); got != "nosniff" {
		t.Errorf("X-Content-Type-Options = %q, want nosniff", got)
	}
}

// TestFlagsTraceFormatValidation checks Start rejects unknown formats
// and maps flight/perfetto to the flight recorder.
func TestFlagsTraceFormatValidation(t *testing.T) {
	bad := &Flags{Trace: "x", TraceFormat: "protobuf"}
	if _, err := bad.Start(); err == nil {
		t.Error("unknown -trace-format accepted")
	}
	for _, tc := range []struct {
		format string
		flight bool
	}{{"jsonl", false}, {"", false}, {"flight", true}, {"perfetto", true}} {
		f := &Flags{Trace: t.TempDir() + "/trace", TraceFormat: tc.format}
		s, err := f.Start()
		if err != nil {
			t.Fatalf("format %q: %v", tc.format, err)
		}
		if got := s.Reg.FlightOn(); got != tc.flight {
			t.Errorf("format %q: flight = %v, want %v", tc.format, got, tc.flight)
		}
		if err := s.Close(); err != nil {
			t.Errorf("close %q: %v", tc.format, err)
		}
	}
}
