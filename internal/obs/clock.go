package obs

import (
	"sync/atomic"
	"time"
)

// Clock supplies monotonic time to a Registry. Implementations must be
// safe for concurrent use and must never run backwards. Instrumented
// packages read time ONLY through the registry clock (enforced by the
// obsclock analyzer), so tests can inject a ManualClock and pin span
// durations exactly.
type Clock interface {
	// Now returns monotonic nanoseconds since an arbitrary origin.
	Now() int64
}

// wallClock measures against the process-start-ish instant captured at
// construction; time.Since uses the runtime's monotonic reading, so the
// value never jumps with wall-clock adjustments. This is the one place
// in the observability stack allowed to touch the time package.
type wallClock struct {
	base time.Time
}

func (c wallClock) Now() int64 { return int64(time.Since(c.base)) }

// WallClock returns the default monotonic clock.
func WallClock() Clock { return wallClock{base: time.Now()} }

// ManualClock is a test clock advanced explicitly. The zero value
// starts at 0 ns.
type ManualClock struct {
	ns atomic.Int64
}

// Now returns the current manual time.
func (c *ManualClock) Now() int64 { return c.ns.Load() }

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }
