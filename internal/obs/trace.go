package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// TraceEvent is one record of the trace stream, serialized as a JSON
// line by WriteTrace. The first five fields are the original flat
// schema; ID/Parent/Track/Attrs are populated only by the flight
// recorder and are omitted when zero, so a trace taken with the
// recorder off is byte-identical to the pre-flight format.
type TraceEvent struct {
	Kind    string  `json:"kind"` // "span" or "event"
	Name    string  `json:"name"`
	StartNS int64   `json:"start_ns"`
	DurNS   int64   `json:"dur_ns,omitempty"`
	Value   float64 `json:"value,omitempty"`
	// ID is the span's flight-recorder ID (sequential from 1); 0 for
	// plain events and recorder-off traces.
	ID uint64 `json:"id,omitempty"`
	// Parent is the ID of the enclosing span (0 = root).
	Parent uint64 `json:"parent,omitempty"`
	// Track attributes the record to an execution lane: 0 is the main
	// goroutine, engine pool workers take 1..W.
	Track int64 `json:"track,omitempty"`
	// Attrs carries the span/event annotations in insertion order.
	Attrs []Attr `json:"attrs,omitempty"`
}

// spanKey carries the current Span through a context chain; trackKey
// carries the worker track.
type (
	spanKey  struct{}
	trackKey struct{}
)

// ContextWithSpan returns ctx carrying sp as the current span, so
// spans started with StartSpanCtx below it become its children. Spans
// without flight-recorder state (recorder off) are not stored — there
// is no identity to link to.
func ContextWithSpan(ctx context.Context, sp Span) context.Context {
	if sp.extra == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span carried by ctx (the zero
// Span when none).
func SpanFromContext(ctx context.Context) Span {
	if ctx == nil {
		return Span{}
	}
	sp, _ := ctx.Value(spanKey{}).(Span)
	return sp
}

// ContextWithTrack returns ctx carrying the given track ID; spans and
// events recorded below it are attributed to that track (worker lane)
// in exports. Track 0 is the main goroutine.
func ContextWithTrack(ctx context.Context, track int64) context.Context {
	return context.WithValue(ctx, trackKey{}, track)
}

// TrackFromContext returns the track carried by ctx (0 when none).
func TrackFromContext(ctx context.Context) int64 {
	if ctx == nil {
		return 0
	}
	t, _ := ctx.Value(trackKey{}).(int64)
	return t
}

// requestTracks feeds NextRequestTrack; see below for the numbering.
var requestTracks atomic.Int64

// NextRequestTrack allocates a process-unique flight-recorder track for
// one served request, so a server can give every request its own lane
// in the Perfetto view without coordinating IDs. Request tracks count
// down from -1: engine pool workers own the small positive tracks
// (1..W) and 0 is the main goroutine, so negatives can never collide
// with either. Use with ContextWithTrack:
//
//	ctx = obs.ContextWithTrack(ctx, obs.NextRequestTrack())
func NextRequestTrack() int64 {
	return -requestTracks.Add(1)
}

// defaultTraceCap bounds the in-memory trace buffer. A Table I run
// emits a few thousand spans; one million events (~56 MB) leaves room
// for long transient simulations while still bounding a runaway loop.
const defaultTraceCap = 1 << 20

// traceBuffer is a bounded, mutex-guarded event log. Past capacity it
// counts drops instead of growing.
type traceBuffer struct {
	mu      sync.Mutex
	events  []TraceEvent
	cap     int
	dropped uint64
}

// TraceOptions configures trace recording.
type TraceOptions struct {
	// Capacity bounds the in-memory event buffer (<= 0 selects the
	// default, 2^20 events).
	Capacity int
	// Flight turns on the flight recorder: spans take sequential IDs,
	// parent links, tracks and attributes, and flight-only events
	// (cache hits, runaway probes) are recorded. Off, the trace stays
	// byte-compatible with the flat JSONL schema.
	Flight bool
}

// EnableTrace turns on trace recording with the given event capacity
// (<= 0 selects the default). Without this call spans still feed their
// histograms but no per-event stream is kept.
func (r *Registry) EnableTrace(capacity int) {
	r.EnableTraceOpts(TraceOptions{Capacity: capacity})
}

// EnableTraceOpts turns on trace recording with explicit options; see
// TraceOptions. Calling it again on an already-tracing registry only
// updates the Flight bit.
func (r *Registry) EnableTraceOpts(opt TraceOptions) {
	if r == nil {
		return
	}
	if opt.Capacity <= 0 {
		opt.Capacity = defaultTraceCap
	}
	r.mu.Lock()
	if r.trace == nil {
		r.trace = &traceBuffer{cap: opt.Capacity}
	}
	r.mu.Unlock()
	r.flight.Store(opt.Flight)
}

// tracer returns the trace buffer under the registry read lock.
func (r *Registry) tracer() *traceBuffer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.trace
}

func (r *Registry) traceAppend(ev TraceEvent) {
	tb := r.tracer()
	if tb == nil {
		return
	}
	tb.mu.Lock()
	if len(tb.events) >= tb.cap {
		tb.dropped++
		first := tb.dropped == 1
		tb.mu.Unlock()
		// Surface the truncation: the counter appears in snapshots, and
		// the first drop logs one warning so a silently shortened trace
		// never masquerades as a complete one.
		r.Counter("trace.dropped").Inc()
		if first {
			logWarn("trace buffer full; dropping events",
				"capacity", tb.cap, "event", ev.Name)
		}
		return
	}
	tb.events = append(tb.events, ev)
	tb.mu.Unlock()
}

// traceSnapshot copies the recorded events and drop count out of the
// buffer (nil, 0 when tracing is off).
func (r *Registry) traceSnapshot() ([]TraceEvent, uint64) {
	if r == nil {
		return nil, 0
	}
	tb := r.tracer()
	if tb == nil {
		return nil, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	events := make([]TraceEvent, len(tb.events))
	copy(events, tb.events)
	return events, tb.dropped
}

// WriteTrace serializes the recorded trace as JSON lines (one TraceEvent
// per line) followed by a final line reporting drops, if any. It is a
// no-op on a nil registry or when tracing was never enabled.
func (r *Registry) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	if tb := r.tracer(); tb == nil {
		return nil
	}
	events, dropped := r.traceSnapshot()
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if dropped > 0 {
		return enc.Encode(struct {
			Kind    string `json:"kind"`
			Dropped uint64 `json:"dropped"`
		}{Kind: "dropped", Dropped: dropped})
	}
	return nil
}
