package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// logger is the process-wide structured logger installed by SetLogger;
// nil means logging is off. Like the metrics registry, the disabled
// path is one atomic load plus a nil check.
var logger atomic.Pointer[slog.Logger]

// SetLogger installs l as the process-wide structured logger (nil
// disables). The previous logger is returned so tests and Close paths
// can restore it.
func SetLogger(l *slog.Logger) *slog.Logger {
	return logger.Swap(l)
}

// Logger returns the installed structured logger, or nil when logging
// is off. Callers on hot paths should check for nil before building
// attributes.
func Logger() *slog.Logger {
	return logger.Load()
}

// logWarn emits a warning through the installed logger, if any. The
// obs package's own warnings (trace truncation) go through here so
// they obey the user's -log flags.
func logWarn(msg string, args ...any) {
	if l := logger.Load(); l != nil {
		l.Warn(msg, args...)
	}
}

// spanHandler decorates a slog.Handler with the flight-recorder
// identity of the context: records carry span_id/parent_id attributes
// when the context holds an active span, so log lines correlate with
// trace spans.
type spanHandler struct {
	slog.Handler
}

// Handle stamps the record with the context span's identity before
// delegating.
func (h spanHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sp := SpanFromContext(ctx); sp.extra != nil {
		rec.AddAttrs(
			slog.Uint64("span_id", sp.extra.id),
			slog.Uint64("parent_id", sp.extra.parent),
		)
	}
	return h.Handler.Handle(ctx, rec)
}

// WithAttrs preserves the span decoration on derived handlers.
func (h spanHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return spanHandler{h.Handler.WithAttrs(attrs)}
}

// WithGroup preserves the span decoration on derived handlers.
func (h spanHandler) WithGroup(name string) slog.Handler {
	return spanHandler{h.Handler.WithGroup(name)}
}

// NewLogHandler builds the shared structured-logging handler used by
// every CLI: format is "text" or "json", level one of
// debug/info/warn/error. The handler stamps span_id/parent_id from the
// context when the flight recorder is active.
func NewLogHandler(w io.Writer, format, level string) (slog.Handler, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	return spanHandler{h}, nil
}

// LogFlags is the uniform -log/-log-level flag pair shared by every
// CLI. The zero value ("off") disables structured logging.
type LogFlags struct {
	// Format is "off" (default), "text" or "json".
	Format string
	// Level is "debug", "info" (default), "warn" or "error".
	Level string
}

// BindLogFlags registers the flag pair on fs and returns the bound
// struct. It is split from BindFlags so CLIs that do not want the
// metrics/trace bundle (teclint, mkchip, benchjson) still take the
// uniform logging flags.
func BindLogFlags(fs *flag.FlagSet) *LogFlags {
	f := &LogFlags{}
	f.bind(fs)
	return f
}

// bind registers -log/-log-level on fs.
func (f *LogFlags) bind(fs *flag.FlagSet) {
	fs.StringVar(&f.Format, "log", "off", "structured logging: off, text or json (to stderr)")
	fs.StringVar(&f.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
}

// enabled reports whether the flags ask for logging.
func (f *LogFlags) enabled() bool {
	return f.Format != "" && f.Format != "off"
}

// Install builds the handler described by the flags, installs it as
// the process logger, and returns a restore function (call it at CLI
// exit). With logging off it installs nothing and the restore is a
// no-op.
func (f *LogFlags) Install(w io.Writer) (restore func(), err error) {
	if !f.enabled() {
		return func() {}, nil
	}
	h, err := NewLogHandler(w, f.Format, f.Level)
	if err != nil {
		return nil, err
	}
	prev := SetLogger(slog.New(h))
	return func() { SetLogger(prev) }, nil
}
