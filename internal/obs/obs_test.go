package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilDisabledPath pins the core contract: with no registry
// installed, every handle is nil and every operation on it is a no-op
// rather than a panic.
func TestNilDisabledPath(t *testing.T) {
	if SetGlobal(nil) != nil {
		t.Fatal("test requires a clean global registry")
	}
	r := Enabled()
	if r != nil {
		t.Fatalf("Enabled() = %v, want nil with no registry installed", r)
	}
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	r.Gauge("x").Set(3)
	r.Gauge("x").Add(-1)
	r.FloatGauge("x").Set(1.5)
	r.Histogram("x").Observe(10)
	r.Event("x", 1)
	r.EnableTrace(0)
	sp := r.StartSpan("x")
	sp.End()
	if got := r.Now(); got != 0 {
		t.Errorf("nil registry Now() = %d, want 0", got)
	}
	if err := r.WriteTrace(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteTrace: %v", err)
	}
	snap := r.Snapshot()
	if snap == nil || len(snap.Counters) != 0 {
		t.Errorf("nil registry snapshot = %+v, want empty", snap)
	}
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New(&ManualClock{})
	r.Counter("c").Add(3)
	r.Counter("c").Inc()
	if got := r.Counter("c").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-2)
	if got := r.Gauge("g").Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	r.FloatGauge("f").Set(2.5)
	if got := r.FloatGauge("f").Value(); !(got > 2.49 && got < 2.51) {
		t.Errorf("float gauge = %g, want 2.5", got)
	}

	h := r.Histogram("h")
	for _, v := range []uint64{0, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	hv := h.value()
	if hv.Count != 5 || hv.Sum != 1006 || hv.Min != 0 || hv.Max != 1000 {
		t.Errorf("histogram value = %+v", hv)
	}
	// Buckets: 0 -> bucket 0; 1 -> le 1; 2,3 -> le 3; 1000 -> le 1023.
	wantBuckets := map[uint64]uint64{0: 1, 1: 1, 3: 2, 1023: 1}
	if len(hv.Buckets) != len(wantBuckets) {
		t.Fatalf("buckets = %+v, want %v", hv.Buckets, wantBuckets)
	}
	for _, b := range hv.Buckets {
		if wantBuckets[b.Le] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, wantBuckets[b.Le])
		}
	}
}

// TestHandleIdentity checks that repeated lookups return the same
// handle, so cached handles and by-name lookups observe one value.
func TestHandleIdentity(t *testing.T) {
	r := New(&ManualClock{})
	if r.Counter("same") != r.Counter("same") {
		t.Error("Counter lookups returned different handles")
	}
	if r.Histogram("same") != r.Histogram("same") {
		t.Error("Histogram lookups returned different handles")
	}
}

func TestSpanWithManualClock(t *testing.T) {
	clk := &ManualClock{}
	r := New(clk)
	r.EnableTrace(0)
	sp := r.StartSpan("unit.work")
	clk.Advance(250 * time.Nanosecond)
	sp.End()

	hv := r.Histogram("span.unit.work_ns").value()
	if hv.Count != 1 || hv.Sum != 250 {
		t.Errorf("span histogram = %+v, want count=1 sum=250", hv)
	}

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ev TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("trace line not JSON: %v\n%s", err, buf.String())
	}
	if ev.Kind != "span" || ev.Name != "unit.work" || ev.DurNS != 250 {
		t.Errorf("trace event = %+v", ev)
	}
}

func TestTraceCapDrops(t *testing.T) {
	r := New(&ManualClock{})
	r.EnableTrace(2)
	for i := 0; i < 5; i++ {
		r.Event("e", float64(i))
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // 2 events + dropped marker
		t.Fatalf("trace lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[2], `"dropped":3`) {
		t.Errorf("missing drop marker: %s", lines[2])
	}
}

func TestSnapshotTextSortedAndStable(t *testing.T) {
	r := New(&ManualClock{})
	r.Counter("b.second").Inc()
	r.Counter("a.first").Add(2)
	r.Gauge("depth").Set(4)
	r.Histogram("iters").Observe(12)
	r.Histogram("work_ns").Observe(99)

	text := r.Snapshot().Text()
	if !strings.Contains(text, "counter a.first") || !strings.Contains(text, "counter b.second") {
		t.Fatalf("snapshot text missing counters:\n%s", text)
	}
	if strings.Index(text, "a.first") > strings.Index(text, "b.second") {
		t.Errorf("counters not sorted:\n%s", text)
	}
	if text != r.Snapshot().Text() {
		t.Error("two snapshots of an unchanged registry differ")
	}

	stripped := r.Snapshot().WithoutTimings()
	if _, ok := stripped.Histograms["work_ns"]; ok {
		t.Error("WithoutTimings kept a _ns histogram")
	}
	if _, ok := stripped.Histograms["iters"]; !ok {
		t.Error("WithoutTimings dropped a non-timing histogram")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New(&ManualClock{})
	r.Counter("n").Add(7)
	r.FloatGauge("res").Set(1e-12)
	b, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["n"] != 7 {
		t.Errorf("counter n = %d after round trip", back.Counters["n"])
	}
	if math.Abs(back.FloatGauges["res"]-1e-12) > 1e-20 {
		t.Errorf("float gauge res = %g after round trip", back.FloatGauges["res"])
	}
}

func TestHTTPHandler(t *testing.T) {
	r := New(&ManualClock{})
	r.Counter("served").Add(3)
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["served"] != 3 {
		t.Errorf("/metrics counters = %v", snap.Counters)
	}

	resp2, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline status = %d", resp2.StatusCode)
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines;
// meaningful under -race.
func TestConcurrentRegistry(t *testing.T) {
	r := New(WallClock())
	r.EnableTrace(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared").Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
				r.Histogram("vals").Observe(uint64(i))
				sp := r.StartSpan("work")
				sp.End()
				if i%50 == 0 {
					_ = r.Snapshot().Text()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*200 {
		t.Errorf("shared counter = %d, want %d", got, 8*200)
	}
	hv := r.Histogram("vals").value()
	if hv.Count != 8*200 || hv.Min != 0 || hv.Max != 199 {
		t.Errorf("vals histogram = %+v", hv)
	}
}

func TestFlagsDisabled(t *testing.T) {
	f := &Flags{}
	s, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if s != nil {
		t.Fatalf("Start with no flags = %+v, want nil session", s)
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil session Close: %v", err)
	}
	if Enabled() != nil {
		t.Error("disabled Start installed a global registry")
	}
}

func TestFlagsMetricsOut(t *testing.T) {
	out := t.TempDir() + "/run.json"
	tr := t.TempDir() + "/trace.jsonl"
	f := &Flags{MetricsOut: out, Trace: tr}
	s, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if Enabled() == nil {
		t.Fatal("Start did not install the registry")
	}
	Enabled().Counter("flagged").Add(2)
	Enabled().Event("marker", 1.5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if Enabled() != nil {
		t.Error("Close left the global registry installed")
	}

	var snap Snapshot
	b, err := readFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["flagged"] != 2 {
		t.Errorf("metrics-out counters = %v", snap.Counters)
	}
	tb, err := readFile(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tb), `"marker"`) {
		t.Errorf("trace file missing event:\n%s", tb)
	}
}

// readFile is a tiny os.ReadFile wrapper kept here so the test file
// reads top-down.
func readFile(path string) ([]byte, error) { return os.ReadFile(path) }
