package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Snapshot is a point-in-time export of every metric in a registry.
// Maps marshal with sorted keys under encoding/json and Text sorts
// explicitly, so two snapshots of identical registries serialize
// byte-identically — the property the determinism tests pin.
type Snapshot struct {
	Counters    map[string]uint64         `json:"counters,omitempty"`
	Gauges      map[string]int64          `json:"gauges,omitempty"`
	FloatGauges map[string]float64        `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramValue `json:"histograms,omitempty"`
}

// Snapshot exports the current metric values (nil registry → empty
// snapshot, never nil).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:    map[string]uint64{},
		Gauges:      map[string]int64{},
		FloatGauges: map[string]float64{},
		Histograms:  map[string]HistogramValue{},
	}
	if r == nil {
		return s
	}
	runSnapshotHooks(r)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counter {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauge {
		s.Gauges[name] = g.Value()
	}
	for name, g := range r.fgauge {
		s.FloatGauges[name] = g.Value()
	}
	for name, h := range r.hist {
		s.Histograms[name] = h.value()
	}
	return s
}

// isTiming reports whether a metric name denotes a time-derived value,
// by the repo-wide "_ns" suffix convention.
func isTiming(name string) bool { return strings.HasSuffix(name, "_ns") }

// WithoutTimings returns a copy of the snapshot with every time-derived
// metric (name ending "_ns") removed. What remains — counts,
// iterations, residual gauges, cache statistics — must be byte-identical
// across two serial runs of the same workload; the determinism tests
// compare exactly this view.
func (s *Snapshot) WithoutTimings() *Snapshot {
	out := &Snapshot{
		Counters:    map[string]uint64{},
		Gauges:      map[string]int64{},
		FloatGauges: map[string]float64{},
		Histograms:  map[string]HistogramValue{},
	}
	for name, v := range s.Counters {
		if !isTiming(name) {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		if !isTiming(name) {
			out.Gauges[name] = v
		}
	}
	for name, v := range s.FloatGauges {
		if !isTiming(name) {
			out.FloatGauges[name] = v
		}
	}
	for name, v := range s.Histograms {
		if !isTiming(name) {
			out.Histograms[name] = v
		}
	}
	return out
}

// JSON renders the snapshot as indented JSON with a trailing newline.
func (s *Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the snapshot as a sorted, aligned, human-readable block:
//
//	counter engine.factor_cache.hits          412
//	hist    span.core.factor_ns               count=96 sum=1.2e+08 min=...
func (s *Snapshot) Text() string {
	var b strings.Builder
	for _, name := range sortedNames(s.Counters) {
		fmt.Fprintf(&b, "counter %-42s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedNames(s.Gauges) {
		fmt.Fprintf(&b, "gauge   %-42s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedNames(s.FloatGauges) {
		fmt.Fprintf(&b, "gauge   %-42s %g\n", name, s.FloatGauges[name])
	}
	for _, name := range sortedNames(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "hist    %-42s count=%d sum=%d min=%d max=%d mean=%s\n",
			name, h.Count, h.Sum, h.Min, h.Max, histMean(h))
	}
	return b.String()
}

// histMean renders Sum/Count, or "-" for an empty histogram.
func histMean(h HistogramValue) string {
	if h.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(h.Sum)/float64(h.Count))
}
