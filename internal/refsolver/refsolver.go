// Package refsolver is an independent fine-grid finite-volume solver for
// the chip package, standing in for HotSpot 4.1 as the validation
// reference (Section VI: "we have first validated our thermal model
// against HotSpot 4.1 ... the worst-case difference is less than
// 1.5 C").
//
// Unlike the compact model of package thermal — coarse tiles, one node
// per layer — this solver discretizes the package on a nonuniform tensor
// grid: fine cells under the die, geometrically growing cells outside,
// multiple sublayers per physical layer, and fully gridded spreader and
// sink peripheries. Both models discretize the same steady-state heat
// equation, so agreement between them plays the same role the paper's
// HotSpot comparison plays.
package refsolver

import (
	"fmt"

	"tecopt/internal/material"
	"tecopt/internal/num"
	"tecopt/internal/sparse"
)

// Options controls the reference discretization.
type Options struct {
	// FinePitch is the cell size under the die (m). Default: half the
	// compact tile pitch.
	FinePitch float64
	// Growth is the geometric expansion ratio of cell sizes outside the
	// die region (default 1.7).
	Growth float64
	// SiliconLayers, TIMLayers, SpreaderLayers, SinkLayers set the
	// z-subdivision of each physical layer (defaults 2, 1, 2, 2).
	SiliconLayers, TIMLayers, SpreaderLayers, SinkLayers int
	// CGTol is the conjugate-gradient tolerance (default 1e-10).
	CGTol float64
	// TEC optionally inserts thin-film TEC devices (see TECSpec).
	TEC TECSpec
}

func (o Options) withDefaults(tilePitch float64) Options {
	if o.FinePitch <= 0 {
		o.FinePitch = tilePitch / 2
	}
	if o.Growth <= 1 {
		o.Growth = 1.7
	}
	if o.SiliconLayers <= 0 {
		o.SiliconLayers = 2
	}
	if o.TIMLayers <= 0 {
		o.TIMLayers = 1
	}
	if o.SpreaderLayers <= 0 {
		o.SpreaderLayers = 2
	}
	if o.SinkLayers <= 0 {
		o.SinkLayers = 2
	}
	if o.CGTol <= 0 {
		o.CGTol = 1e-10
	}
	return o
}

// Result reports the reference solution.
type Result struct {
	// TileTempsK is the silicon temperature averaged over each compact
	// tile footprint (kelvin), directly comparable to the compact
	// model's SiliconTemps.
	TileTempsK []float64
	// PeakK is the hottest tile temperature.
	PeakK float64
	// Nodes is the number of finite-volume cells solved.
	Nodes int
	// Iterations is the CG iteration count.
	Iterations int
}

// axis builds symmetric cell edges covering [-domainHalf, domainHalf]
// with uniform fine cells over [-fineHalf, fineHalf] and geometric
// growth outside.
func axis(fineHalf, domainHalf, finePitch, growth float64) []float64 {
	// Fine region: an integral number of cells.
	nFine := int(2*fineHalf/finePitch + 0.5)
	if nFine < 1 {
		nFine = 1
	}
	// Coarse region (one side).
	var widths []float64
	remaining := domainHalf - fineHalf
	w := finePitch
	for remaining > 1e-12 {
		w *= growth
		if w > remaining {
			w = remaining
		}
		widths = append(widths, w)
		remaining -= w
	}
	edges := make([]float64, 0, nFine+2*len(widths)+1)
	// Left coarse (outermost first).
	x := -domainHalf
	edges = append(edges, x)
	for i := len(widths) - 1; i >= 0; i-- {
		x += widths[i]
		edges = append(edges, x)
	}
	// Fine region.
	for i := 1; i <= nFine; i++ {
		edges = append(edges, -fineHalf+float64(i)*2*fineHalf/float64(nFine))
	}
	// Right coarse.
	for _, wd := range widths {
		x = edges[len(edges)-1] + wd
		edges = append(edges, x)
	}
	// Snap the last edge exactly.
	edges[len(edges)-1] = domainHalf
	return edges
}

type zslab struct {
	mat    material.Material
	thick  float64 // sublayer thickness
	halfW  float64 // lateral half-extent in x
	halfH  float64 // lateral half-extent in y
	convec bool    // outermost sink sublayer convects to ambient
}

// Solve computes the reference steady state for the package and per-tile
// silicon powers defined on a cols x rows compact tiling of the die.
func Solve(geom material.PackageGeometry, cols, rows int, tilePower []float64, opt Options) (*Result, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if cols <= 0 || rows <= 0 || len(tilePower) != cols*rows {
		return nil, fmt.Errorf("refsolver: bad tiling %dx%d with %d powers", cols, rows, len(tilePower))
	}
	tilePitchX := geom.DieWidth / float64(cols)
	opt = opt.withDefaults(tilePitchX)

	// Lateral grid shared by all layers (cells outside a layer's extent
	// simply do not exist in that layer).
	xs := axis(geom.DieWidth/2, geom.SinkSide/2, opt.FinePitch, opt.Growth)
	ys := axis(geom.DieHeight/2, geom.SinkSide/2, opt.FinePitch, opt.Growth)
	nx, ny := len(xs)-1, len(ys)-1

	// z-stack, silicon first (power side), sink last (ambient side).
	var slabs []zslab
	addSlabs := func(m material.Material, total float64, n int, halfW, halfH float64, convecLast bool) {
		for i := 0; i < n; i++ {
			slabs = append(slabs, zslab{
				mat: m, thick: total / float64(n), halfW: halfW, halfH: halfH,
				convec: convecLast && i == n-1,
			})
		}
	}
	addSlabs(material.Silicon, geom.DieThickness, opt.SiliconLayers, geom.DieWidth/2, geom.DieHeight/2, false)
	addSlabs(material.TIM, geom.TIMThickness, opt.TIMLayers, geom.DieWidth/2, geom.DieHeight/2, false)
	addSlabs(material.Copper, geom.SpreaderThickness, opt.SpreaderLayers, geom.SpreaderSide/2, geom.SpreaderSide/2, false)
	addSlabs(material.Copper, geom.SinkThickness, opt.SinkLayers, geom.SinkSide/2, geom.SinkSide/2, true)
	nz := len(slabs)

	// Geometry of the compact tiling in global coordinates (needed for
	// both TEC-site carving and power injection).
	dieX0, dieY0 := -geom.DieWidth/2, -geom.DieHeight/2
	tilePitchY := geom.DieHeight / float64(rows)
	tileRect := func(t int) (x0, y0, x1, y1 float64) {
		x0 = dieX0 + float64(t%cols)*tilePitchX
		y0 = dieY0 + float64(t/cols)*tilePitchY
		return x0, y0, x0 + tilePitchX, y0 + tilePitchY
	}
	timZ0 := opt.SiliconLayers
	timZ1 := opt.SiliconLayers + opt.TIMLayers
	inTECSite := func(cx, cy float64) int {
		for _, t := range opt.TEC.Sites {
			x0, y0, x1, y1 := tileRect(t)
			if cx >= x0 && cx < x1 && cy >= y0 && cy < y1 {
				return t
			}
		}
		return -1
	}
	if opt.TEC.enabled() {
		for _, t := range opt.TEC.Sites {
			if t < 0 || t >= cols*rows {
				return nil, fmt.Errorf("refsolver: TEC site %d out of range %d", t, cols*rows)
			}
		}
		if opt.TEC.Seebeck <= 0 || opt.TEC.Resistance <= 0 || opt.TEC.Kappa <= 0 ||
			opt.TEC.ContactCold <= 0 || opt.TEC.ContactHot <= 0 || opt.TEC.Current < 0 {
			return nil, fmt.Errorf("refsolver: invalid TEC spec %+v", opt.TEC)
		}
	}

	// Node numbering: only cells whose center lies inside the slab
	// extent exist; TIM cells under TEC sites are carved out and
	// replaced by the device's two lumped nodes.
	const absent = -1
	id := make([]int, nz*ny*nx)
	for i := range id {
		id[i] = absent
	}
	cellIdx := func(z, y, x int) int { return (z*ny+y)*nx + x }
	centers := func(edges []float64, i int) float64 { return 0.5 * (edges[i] + edges[i+1]) }
	nodes := 0
	for z, sl := range slabs {
		isTIM := z >= timZ0 && z < timZ1
		for y := 0; y < ny; y++ {
			cy := centers(ys, y)
			if cy < -sl.halfH || cy > sl.halfH {
				continue
			}
			for x := 0; x < nx; x++ {
				cx := centers(xs, x)
				if cx < -sl.halfW || cx > sl.halfW {
					continue
				}
				if isTIM && opt.TEC.enabled() && inTECSite(cx, cy) >= 0 {
					continue // carved out for the device
				}
				id[cellIdx(z, y, x)] = nodes
				nodes++
			}
		}
	}
	// Two lumped nodes per device, cold then hot.
	coldNode := map[int]int{}
	hotNode := map[int]int{}
	for _, t := range opt.TEC.Sites {
		coldNode[t] = nodes
		hotNode[t] = nodes + 1
		nodes += 2
	}

	b := sparse.NewBuilder(nodes, nodes)
	rhs := make([]float64, nodes)
	amb := geom.AmbientK
	sinkArea := geom.SinkSide * geom.SinkSide

	dx := func(i int) float64 { return xs[i+1] - xs[i] }
	dy := func(i int) float64 { return ys[i+1] - ys[i] }

	stamp := func(a, c int, g float64) {
		b.AddSym(a, c, -g)
		b.Add(a, a, g)
		b.Add(c, c, g)
	}

	for z, sl := range slabs {
		k := sl.mat.Conductivity
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				n0 := id[cellIdx(z, y, x)]
				if n0 == absent {
					continue
				}
				// Lateral x+.
				if x+1 < nx {
					if n1 := id[cellIdx(z, y, x+1)]; n1 != absent {
						area := dy(y) * sl.thick
						g := area / (dx(x)/(2*k) + dx(x+1)/(2*k))
						stamp(n0, n1, g)
					}
				}
				// Lateral y+.
				if y+1 < ny {
					if n1 := id[cellIdx(z, y+1, x)]; n1 != absent {
						area := dx(x) * sl.thick
						g := area / (dy(y)/(2*k) + dy(y+1)/(2*k))
						stamp(n0, n1, g)
					}
				}
				// Vertical z+.
				if z+1 < nz {
					if n1 := id[cellIdx(z+1, y, x)]; n1 != absent {
						k1 := slabs[z+1].mat.Conductivity
						area := dx(x) * dy(y)
						g := area / (sl.thick/(2*k) + slabs[z+1].thick/(2*k1))
						stamp(n0, n1, g)
					}
				}
				// Convection.
				if sl.convec {
					area := dx(x) * dy(y)
					g := area / (geom.ConvectionResistance * sinkArea)
					b.Add(n0, n0, g)
					rhs[n0] += g * amb
				}
			}
		}
	}

	// TEC device stamping: cold node to the silicon bottom sublayer,
	// hot node to the spreader top sublayer, contact conductances split
	// by overlap area; Peltier conductors enter the diagonal as -i*D and
	// the Joule heat as r*i^2/2 sources (Figure 4 on the fine grid).
	if opt.TEC.enabled() {
		i := opt.TEC.Current
		alpha := opt.TEC.Seebeck
		silZ := opt.SiliconLayers - 1
		sprZ := timZ1
		tileArea := tilePitchX * tilePitchY
		for _, t := range opt.TEC.Sites {
			x0, y0, x1, y1 := tileRect(t)
			cold, hot := coldNode[t], hotNode[t]
			couple := func(z int, dev int, contactG, kMat, subThick float64) error {
				var total float64
				for y := 0; y < ny; y++ {
					oy := overlap1D(ys[y], ys[y+1], y0, y1)
					if oy <= 0 {
						continue
					}
					for x := 0; x < nx; x++ {
						ox := overlap1D(xs[x], xs[x+1], x0, x1)
						if ox <= 0 {
							continue
						}
						n0 := id[cellIdx(z, y, x)]
						if n0 == absent {
							continue
						}
						aov := ox * oy
						frac := aov / tileArea
						halfCell := kMat * aov / (subThick / 2)
						gc := contactG * frac
						g := gc * halfCell / (gc + halfCell)
						b.AddSym(n0, dev, -g)
						b.Add(n0, n0, g)
						b.Add(dev, dev, g)
						total += aov
					}
				}
				if num.IsZero(total) {
					return fmt.Errorf("refsolver: TEC site %d has no cells at layer %d", t, z)
				}
				return nil
			}
			if err := couple(silZ, cold, opt.TEC.ContactCold, slabs[silZ].mat.Conductivity, slabs[silZ].thick); err != nil {
				return nil, err
			}
			if err := couple(sprZ, hot, opt.TEC.ContactHot, slabs[sprZ].mat.Conductivity, slabs[sprZ].thick); err != nil {
				return nil, err
			}
			// Device conduction.
			b.AddSym(cold, hot, -opt.TEC.Kappa)
			b.Add(cold, cold, opt.TEC.Kappa)
			b.Add(hot, hot, opt.TEC.Kappa)
			// Peltier diagonal: (G - i*D) with D = +alpha (hot), -alpha (cold).
			b.Add(hot, hot, -i*alpha)
			b.Add(cold, cold, +i*alpha)
			// Joule sources.
			rhs[cold] += 0.5 * opt.TEC.Resistance * i * i
			rhs[hot] += 0.5 * opt.TEC.Resistance * i * i
		}
	}

	// Inject tile powers volumetrically across the silicon sublayers by
	// lateral overlap — the same lumped-layer heating convention the
	// compact model (and HotSpot's block model) uses.
	for t, pw := range tilePower {
		if num.IsZero(pw) {
			continue
		}
		if pw < 0 {
			return nil, fmt.Errorf("refsolver: negative power at tile %d", t)
		}
		tx0 := dieX0 + float64(t%cols)*tilePitchX
		ty0 := dieY0 + float64(t/cols)*tilePitchY
		var cells []int
		var weights []float64
		var wSum float64
		for z := 0; z < opt.SiliconLayers; z++ {
			for y := 0; y < ny; y++ {
				oy := overlap1D(ys[y], ys[y+1], ty0, ty0+tilePitchY)
				if oy <= 0 {
					continue
				}
				for x := 0; x < nx; x++ {
					ox := overlap1D(xs[x], xs[x+1], tx0, tx0+tilePitchX)
					if ox <= 0 {
						continue
					}
					n0 := id[cellIdx(z, y, x)]
					if n0 == absent {
						continue
					}
					cells = append(cells, n0)
					weights = append(weights, ox*oy)
					wSum += ox * oy
				}
			}
		}
		if num.IsZero(wSum) {
			return nil, fmt.Errorf("refsolver: tile %d has no silicon cells", t)
		}
		for c, n0 := range cells {
			rhs[n0] += pw * weights[c] / wSum
		}
	}

	a := b.Build()
	pre := sparse.NewBestPreconditioner(a)
	res, err := sparse.SolveCG(a, rhs, sparse.CGOptions{Tol: opt.CGTol, Precond: pre, MaxIter: 20 * nodes})
	if err != nil {
		return nil, fmt.Errorf("refsolver: CG failed: %w", err)
	}

	// Per-tile temperatures: overlap-weighted average over the silicon
	// stack (all sublayers, mirroring the compact model's single lumped
	// silicon node per tile).
	out := &Result{
		TileTempsK: make([]float64, cols*rows),
		Nodes:      nodes,
		Iterations: res.Iterations,
	}
	for t := range tilePower {
		tx0 := dieX0 + float64(t%cols)*tilePitchX
		ty0 := dieY0 + float64(t/cols)*tilePitchY
		var acc, wSum float64
		for z := 0; z < opt.SiliconLayers; z++ {
			for y := 0; y < ny; y++ {
				oy := overlap1D(ys[y], ys[y+1], ty0, ty0+tilePitchY)
				if oy <= 0 {
					continue
				}
				for x := 0; x < nx; x++ {
					ox := overlap1D(xs[x], xs[x+1], tx0, tx0+tilePitchX)
					if ox <= 0 {
						continue
					}
					n0 := id[cellIdx(z, y, x)]
					if n0 == absent {
						continue
					}
					w := ox * oy
					acc += w * res.X[n0]
					wSum += w
				}
			}
		}
		out.TileTempsK[t] = acc / wSum
		if out.TileTempsK[t] > out.PeakK {
			out.PeakK = out.TileTempsK[t]
		}
	}
	return out, nil
}

func overlap1D(a0, a1, b0, b1 float64) float64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
